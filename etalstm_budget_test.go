package etalstm

import (
	"context"
	"strings"
	"testing"
)

// TestPlanForSurface exercises the public planning API: a generous
// budget degenerates to full storage, a tight one checkpoints within
// budget, an impossible one is flagged infeasible.
func TestPlanForSurface(t *testing.T) {
	bench, _ := BenchmarkByName("IMDB")
	small := bench.Scaled(64, 48, 4)

	free := PlanFor(small.Cfg, Baseline, 0)
	if !free.FullStorage() || !free.Feasible {
		t.Fatalf("zero budget must be full storage, got %+v", free)
	}
	if free.FullPeak <= 0 {
		t.Fatal("full-storage peak must be positive")
	}

	tight := PlanFor(small.Cfg, Baseline, free.FullPeak/4)
	if tight.FullStorage() || !tight.Feasible {
		t.Fatalf("quarter budget should checkpoint, got %+v", tight)
	}
	if tight.PredictedPeak > free.FullPeak/4 {
		t.Fatalf("predicted peak %d exceeds budget %d", tight.PredictedPeak, free.FullPeak/4)
	}
	if tight.RecomputeRatio <= 0 || tight.RecomputedCells == 0 {
		t.Fatal("tight plan must pay recompute")
	}

	// MS1 stores six P1 planes per cell where raw stores five, so the
	// same budget buys the MS1 plan no fewer checkpoint segments.
	ms1 := PlanFor(small.Cfg, MS1, free.FullPeak/4)
	if len(ms1.Boundaries) < len(tight.Boundaries) {
		t.Fatalf("MS1 plan kept fewer columns (%d) than raw (%d) under the same budget",
			len(ms1.Boundaries), len(tight.Boundaries))
	}

	if bad := PlanFor(small.Cfg, Baseline, 64); bad.Feasible {
		t.Fatal("64-byte budget cannot be feasible")
	}
}

// TestMemoryBudgetTrains drives the budget end to end through the
// public API: the trainer checkpoints, stays under budget, reports the
// placement via Plan(), and still learns.
func TestMemoryBudgetTrains(t *testing.T) {
	bench, _ := BenchmarkByName("IMDB")
	small := bench.Scaled(64, 48, 4)
	budget := PlanFor(small.Cfg, Baseline, 0).FullPeak / 4

	net, err := NewNetwork(small.Cfg, 42)
	if err != nil {
		t.Fatal(err)
	}
	tr := NewTrainer(net, Baseline, TrainerOptions{Workers: 1, MemoryBudget: budget})
	stats, err := tr.Run(context.Background(), small.Provider(3, 1), 6)
	if err != nil {
		t.Fatal(err)
	}
	if stats[len(stats)-1].MeanLoss >= stats[0].MeanLoss {
		t.Fatal("budgeted trainer failed to learn")
	}
	for _, st := range stats {
		if st.PeakStoredBytes <= 0 || st.PeakStoredBytes > budget {
			t.Fatalf("epoch %d peak %d B outside budget %d B", st.Epoch, st.PeakStoredBytes, budget)
		}
		if st.RecomputedCells == 0 {
			t.Fatalf("epoch %d did not recompute under a binding budget", st.Epoch)
		}
	}
	pl := tr.Plan()
	if pl.FullStorage() || pl.Budget != budget {
		t.Fatalf("Plan() returned %+v for budget %d", pl, budget)
	}
	if !strings.Contains(pl.String(), "checkpoint") {
		t.Fatalf("Plan().String() = %q", pl.String())
	}
}

// TestMemoryBudgetInfeasibleSurfaced: an impossible budget errors at
// the first epoch instead of silently overshooting.
func TestMemoryBudgetInfeasibleSurfaced(t *testing.T) {
	bench, _ := BenchmarkByName("IMDB")
	small := bench.Scaled(64, 12, 8)
	net, _ := NewNetwork(small.Cfg, 3)
	tr := NewTrainer(net, Baseline, TrainerOptions{Workers: 1, MemoryBudget: 64})
	if _, err := tr.Run(context.Background(), small.Provider(2, 2), 1); err == nil ||
		!strings.Contains(err.Error(), "infeasible") {
		t.Fatalf("want infeasible error, got %v", err)
	}
}

// TestAnalyzeSurfaces pins the consolidated analysis API: the
// deprecated wrappers agree with Analyze, and Trainer.Analyze reports
// the trainer's measured operating point for its own network.
func TestAnalyzeSurfaces(t *testing.T) {
	bench, _ := BenchmarkByName("BABI")
	a := Analyze(bench.Cfg, Combined)
	if DataMovement(bench.Cfg, Combined) != a.Movement {
		t.Fatal("DataMovement must shim onto Analyze")
	}
	if FootprintFor(bench.Cfg, Combined) != a.Footprint {
		t.Fatal("FootprintFor must shim onto Analyze")
	}

	small, _ := BenchmarkByName("IMDB")
	s := small.Scaled(64, 10, 8)
	net, _ := NewNetwork(s.Cfg, 5)
	tr := NewTrainer(net, Combined, TrainerOptions{Workers: 1})
	if _, err := tr.Run(context.Background(), s.Provider(2, 9), 5); err != nil {
		t.Fatal(err)
	}
	ta := tr.Analyze()
	if ta.Cfg != s.Cfg || ta.Mode != Combined {
		t.Fatalf("Trainer.Analyze misreported cfg/mode: %+v", ta)
	}
	base := Analyze(s.Cfg, Baseline)
	if ta.Footprint.Total() >= base.Footprint.Total() {
		t.Fatal("measured combined footprint must beat baseline")
	}
	if ta.Movement.Total() >= base.Movement.Total() {
		t.Fatal("measured combined movement must beat baseline")
	}
	// The deprecated per-cfg footprint agrees with the measured-point
	// analysis when asked about the trainer's own network.
	if tr.Footprint(s.Cfg) != ta.Footprint {
		t.Fatal("Trainer.Footprint(own cfg) must match Trainer.Analyze")
	}
}
