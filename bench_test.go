package etalstm

// This file is the benchmark harness of deliverable (d): one testing.B
// target per table and figure of the paper's evaluation, each invoking
// the same harness the etabench CLI uses, plus microbenchmarks of the
// core kernels and ablation benches for the design choices DESIGN.md
// calls out. Run with:
//
//	go test -bench=. -benchmem
//
// The Fig/Table benches report the experiment's headline number as a
// custom metric so `-bench` output doubles as a results table.

import (
	"context"
	"strconv"
	"strings"
	"testing"

	"etalstm/internal/arch"
	"etalstm/internal/gpu"
	"etalstm/internal/hw/accum"
	"etalstm/internal/hw/omnipe"
	"etalstm/internal/hw/sched"
	"etalstm/internal/lstm"
	"etalstm/internal/model"
	"etalstm/internal/rng"
	"etalstm/internal/skip"
	"etalstm/internal/tensor"
	"etalstm/internal/workload"
)

// runExperimentBench runs one registered experiment per iteration.
func runExperimentBench(b *testing.B, id string) *Report {
	b.Helper()
	b.ReportAllocs()
	var rep *Report
	var err error
	for i := 0; i < b.N; i++ {
		rep, err = RunExperiment(id, ExperimentOptions{Quick: true, Seed: 42})
		if err != nil {
			b.Fatal(err)
		}
	}
	return rep
}

// reportMetric extracts a named column of a labeled row as a float.
func reportMetric(b *testing.B, rep *Report, rowLabel, col string) float64 {
	b.Helper()
	ci := -1
	for i, h := range rep.Header {
		if h == col {
			ci = i
		}
	}
	if ci < 0 {
		b.Fatalf("no column %q", col)
	}
	for _, row := range rep.Rows {
		if row[0] == rowLabel {
			s := strings.TrimSuffix(strings.TrimSuffix(row[ci], "x"), "%")
			v, err := strconv.ParseFloat(s, 64)
			if err != nil {
				b.Fatalf("parse %q: %v", row[ci], err)
			}
			return v
		}
	}
	b.Fatalf("no row %q", rowLabel)
	return 0
}

// --- Fig. 3: GPU characterization sweeps ---

func BenchmarkFig3HiddenSize(b *testing.B) {
	rep := runExperimentBench(b, "fig3a")
	b.ReportMetric(reportMetric(b, rep, "H3072", "V100 TFLOPS"), "V100-TFLOPS@H3072")
}

func BenchmarkFig3LayerNumber(b *testing.B) {
	rep := runExperimentBench(b, "fig3b")
	b.ReportMetric(reportMetric(b, rep, "LN6", "V100 GFLOPS/W"), "V100-GFLOPSperW@LN6")
}

func BenchmarkFig3LayerLength(b *testing.B) {
	rep := runExperimentBench(b, "fig3c")
	b.ReportMetric(reportMetric(b, rep, "LL303", "V100 TFLOPS"), "V100-TFLOPS@LL303")
}

// --- Fig. 4 / Fig. 5: data movement and footprint characterization ---

func BenchmarkFig4DataMovement(b *testing.B) {
	rep := runExperimentBench(b, "fig4")
	b.ReportMetric(reportMetric(b, rep, "Ave", "interm/act"), "interm-vs-act-ratio")
}

func BenchmarkFig5Footprint(b *testing.B) {
	rep := runExperimentBench(b, "fig5")
	b.ReportMetric(reportMetric(b, rep, "LL303", "intermediate"), "interm-frac@LL303")
}

// --- Fig. 6 / Fig. 8: training-backed value and gradient statistics ---

func BenchmarkFig6ValueCDF(b *testing.B) {
	rep := runExperimentBench(b, "fig6")
	// Headline: P1's below-0.1 mass at the first sampled epoch.
	for _, row := range rep.Rows {
		if row[1] == "BP-EW-P1" {
			v, _ := strconv.ParseFloat(row[3], 64)
			b.ReportMetric(v, "P1-frac-below-0.1")
			break
		}
	}
}

func BenchmarkFig8GradientMagnitude(b *testing.B) {
	runExperimentBench(b, "fig8")
}

// --- Fig. 11 / Table III: accumulator ---

func BenchmarkFig11Accumulator(b *testing.B) {
	rep := runExperimentBench(b, "fig11")
	b.ReportMetric(reportMetric(b, rep, "8 (Fig.11 chart)", "total cycles"), "fig11-cycles")
}

func BenchmarkTable3Accumulator(b *testing.B) {
	rep := runExperimentBench(b, "table3")
	b.ReportMetric(reportMetric(b, rep, "Our Design", "LUT"), "our-LUT")
}

// --- Fig. 15 / 16 / 17 / 18: the evaluation headliners ---

func BenchmarkFig15Speedup(b *testing.B) {
	rep := runExperimentBench(b, "fig15a")
	b.ReportMetric(reportMetric(b, rep, "Ave", "EtaLSTM"), "etaLSTM-avg-speedup")
}

func BenchmarkFig15Energy(b *testing.B) {
	rep := runExperimentBench(b, "fig15b")
	b.ReportMetric(reportMetric(b, rep, "Ave", "EtaLSTM"), "etaLSTM-avg-energy")
}

func BenchmarkFig16EnergyEfficiency(b *testing.B) {
	rep := runExperimentBench(b, "fig16")
	b.ReportMetric(reportMetric(b, rep, "BABI", "Dyn-Arch"), "dynArch-energyEff@BABI")
}

func BenchmarkFig17DataMovement(b *testing.B) {
	runExperimentBench(b, "fig17")
}

func BenchmarkFig18Footprint(b *testing.B) {
	runExperimentBench(b, "fig18")
}

// --- Table II: accuracy impact ---

func BenchmarkTable2Accuracy(b *testing.B) {
	runExperimentBench(b, "table2")
}

// --- Core-kernel microbenchmarks ---

func benchCell(b *testing.B, hidden, batch int) (*lstm.Params, *tensor.Matrix, *tensor.Matrix, *tensor.Matrix) {
	b.Helper()
	r := rng.New(1)
	p := lstm.NewParams(hidden, hidden)
	p.Init(r)
	x := tensor.New(batch, hidden)
	h := tensor.New(batch, hidden)
	s := tensor.New(batch, hidden)
	x.RandInit(r, 1)
	return p, x, h, s
}

func BenchmarkForwardCell(b *testing.B) {
	p, x, h, s := benchCell(b, 128, 16)
	ws := tensor.NewWorkspace()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		hOut, _, cache := lstm.Forward(ws, p, x, h, s)
		ws.Put(hOut)
		cache.Release(ws)
	}
}

func BenchmarkForwardCellWithP1(b *testing.B) {
	p, x, h, s := benchCell(b, 128, 16)
	ws := tensor.NewWorkspace()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		hOut, sOut, p1 := lstm.ForwardWithP1(ws, p, x, h, s)
		ws.PutAll(hOut, sOut)
		p1.Release(ws)
	}
}

func BenchmarkBackwardCellBaseline(b *testing.B) {
	p, x, h, s := benchCell(b, 128, 16)
	ws := tensor.NewWorkspace()
	_, _, cache := lstm.Forward(ws, p, x, h, s)
	r := rng.New(2)
	dy := tensor.New(16, 128)
	dy.RandInit(r, 1)
	grads := lstm.NewGrads(p)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		out := lstm.Backward(ws, p, grads, cache, lstm.BPInput{DY: dy})
		ws.PutAll(out.DX, out.DHPrev, out.DSPrev)
	}
}

func BenchmarkBackwardCellFromP1(b *testing.B) {
	p, x, h, s := benchCell(b, 128, 16)
	ws := tensor.NewWorkspace()
	hOut, sOut, p1 := lstm.ForwardWithP1(ws, p, x, h, s)
	ws.PutAll(hOut, sOut)
	r := rng.New(2)
	dy := tensor.New(16, 128)
	dy.RandInit(r, 1)
	grads := lstm.NewGrads(p)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		out := lstm.BackwardFromP1(ws, p, grads, x, h, p1, lstm.BPInput{DY: dy})
		ws.PutAll(out.DX, out.DHPrev, out.DSPrev)
	}
}

func BenchmarkStreamingAccumulator(b *testing.B) {
	vals := make([]float32, 1024)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		accum.Accumulate(vals, 8)
	}
}

func BenchmarkOmniPEDotProduct(b *testing.B) {
	pe := omnipe.New(omnipe.Default())
	r := rng.New(3)
	a := make([]float32, 1024)
	v := make([]float32, 1024)
	for i := range a {
		a[i] = r.Uniform(-1, 1)
		v[i] = r.Uniform(-1, 1)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pe.DotProduct(a, v)
	}
}

// --- Data-parallel epoch benchmarks ---

// benchEpoch measures whole training epochs at the given replica count.
// Kernel-level parallelism is pinned to 1 for the duration so the two
// levels don't compound and the serial/parallel comparison isolates the
// replica engine (see SetWorkers).
func benchEpoch(b *testing.B, workers int) {
	b.Helper()
	prev := SetWorkers(1)
	defer SetWorkers(prev)

	bench, err := BenchmarkByName("IMDB")
	if err != nil {
		b.Fatal(err)
	}
	// Large enough that per-batch FW+BP dominates the per-group weight
	// broadcast; 8 batches = two full groups at Workers == 4.
	small := bench.Scaled(16, 32, 16)
	net, err := NewNetwork(small.Cfg, 42)
	if err != nil {
		b.Fatal(err)
	}
	tr := NewTrainer(net, Baseline, TrainerOptions{Workers: workers})
	prov := small.Provider(8, 1)
	ctx := context.Background()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := tr.RunEpoch(ctx, prov, i); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEpochSerial is the single-replica reference epoch.
func BenchmarkEpochSerial(b *testing.B) { benchEpoch(b, 1) }

// BenchmarkEpochParallel shards the same epoch across 4 replica
// workers; on a >= 4-core machine it should run >= 1.5x faster than
// BenchmarkEpochSerial.
func BenchmarkEpochParallel(b *testing.B) { benchEpoch(b, 4) }

// --- Ablation benches (DESIGN.md design choices) ---

// BenchmarkAblationSparsityThreshold sweeps MS1's pruning threshold and
// reports the footprint/latency trade at the IMDB geometry — the design
// choice behind the paper's "around 0.1" operating point.
func BenchmarkAblationSparsityThreshold(b *testing.B) {
	bench, _ := workload.ByName("IMDB")
	for _, th := range []float64{0.05, 0.1, 0.2} {
		th := th
		b.Run("threshold="+strconv.FormatFloat(th, 'g', -1, 64), func(b *testing.B) {
			var sp float64
			for i := 0; i < b.N; i++ {
				// Sparsity scales with threshold on the P1 distribution;
				// derive from a forward pass at reduced scale.
				small := bench.Scaled(64, 12, 8)
				net, err := model.NewNetwork(small.Cfg, rng.New(9))
				if err != nil {
					b.Fatal(err)
				}
				batch := small.Provider(1, 5).Batch(0)
				res, err := net.Forward(batch.Inputs, batch.Targets, model.P1Policy())
				if err != nil {
					b.Fatal(err)
				}
				var below, total float64
				for l := range res.P1 {
					for t := range res.P1[l] {
						if res.P1[l][t] == nil {
							continue
						}
						for _, m := range res.P1[l][t].Matrices() {
							below += m.FracBelow(float32(th)) * float64(m.Size())
							total += float64(m.Size())
						}
					}
				}
				sp = below / total
			}
			b.ReportMetric(sp, "P1-sparsity")
		})
	}
}

// BenchmarkAblationSwingOverhead sweeps the R2A swing tax to show how
// sensitive Dyn-Arch's win is to the reassignment cost.
func BenchmarkAblationSwingOverhead(b *testing.B) {
	bench, _ := workload.ByName("WMT")
	fw := sched.FromOpCount(lstm.ForwardOps(512, 1024, 128)).Add(
		sched.FromOpCount(lstm.P1Ops(1024, 128)))
	bp := sched.FromOpCount(lstm.BackwardFromP1Ops(512, 1024, 128, 0.65))
	_ = bench
	for i := 0; i < b.N; i++ {
		alloc := sched.StaticSplit(1280, fw.Add(bp))
		st := sched.RunPhases([]sched.Workload{fw, bp}, sched.PolicyStatic, alloc, 1280)
		dy := sched.RunPhases([]sched.Workload{fw, bp}, sched.PolicyDynamic, sched.Alloc{}, 1280)
		if i == 0 {
			b.ReportMetric(float64(st.Cycles)/float64(dy.Cycles), "static-vs-dynamic-cycles")
		}
	}
}

// BenchmarkAblationChannelScaling checks the Sec. V-D linear-scaling
// claim: step time versus channel count.
func BenchmarkAblationChannelScaling(b *testing.B) {
	bench, _ := workload.ByName("PTB")
	for _, channels := range []int{20, 40, 80} {
		channels := channels
		b.Run("channels="+strconv.Itoa(channels), func(b *testing.B) {
			hw := arch.Paper()
			hw.ChannelsPerBoard = channels
			var e arch.Eval
			for i := 0; i < b.N; i++ {
				e = arch.Evaluate(arch.DynArch, bench.Cfg, hw, gpu.V100(), arch.DefaultOptParams(bench.Cfg))
			}
			b.ReportMetric(e.StepSeconds*1000, "step-ms")
		})
	}
}

// BenchmarkAblationSkipCap sweeps MS2's convergence cap and reports the
// resulting skip fraction at the BABI geometry.
func BenchmarkAblationSkipCap(b *testing.B) {
	bench, _ := workload.ByName("BABI")
	for _, capFrac := range []float64{0.3, 0.5, 0.7} {
		capFrac := capFrac
		b.Run("cap="+strconv.FormatFloat(capFrac, 'g', -1, 64), func(b *testing.B) {
			var frac float64
			for i := 0; i < b.N; i++ {
				frac = skipFracWithCap(bench.Cfg, capFrac)
			}
			b.ReportMetric(frac, "skip-frac")
		})
	}
}

// BenchmarkAblationRecompute quantifies the paper's dismissed
// alternative (Sec. III-C): full FW recomputation during BP versus
// MS1's reordering, as BP-side wall-clock on the real substrate.
func BenchmarkAblationRecompute(b *testing.B) {
	p, x, h, s := benchCell(b, 128, 16)
	r := rng.New(4)
	dy := tensor.New(16, 128)
	dy.RandInit(r, 1)

	b.Run("recompute-then-backward", func(b *testing.B) {
		b.ReportAllocs()
		grads := lstm.NewGrads(p)
		for i := 0; i < b.N; i++ {
			cache := lstm.RecomputeForward(nil, p, x, h, s)
			lstm.Backward(nil, p, grads, cache, lstm.BPInput{DY: dy})
		}
	})
	b.Run("backward-from-p1", func(b *testing.B) {
		b.ReportAllocs()
		_, _, p1 := lstm.ForwardWithP1(nil, p, x, h, s)
		grads := lstm.NewGrads(p)
		for i := 0; i < b.N; i++ {
			lstm.BackwardFromP1(nil, p, grads, x, h, p1, lstm.BPInput{DY: dy})
		}
	})
}

// skipFracWithCap builds an Eq. 4 skip plan for cfg at the given
// convergence cap and returns the skipped fraction.
func skipFracWithCap(cfg model.Config, capFrac float64) float64 {
	pred := skip.NewPredictor(cfg.Loss, cfg.Layers, cfg.SeqLen)
	plan := skip.Build(pred, 1.0, skip.Config{
		Threshold: arch.SkipFracThreshold,
		MaxFrac:   capFrac,
		Base:      model.StoreRaw,
	})
	return plan.SkippedFrac()
}
