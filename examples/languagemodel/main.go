// Stateful language modeling (the paper's PTB workload shape): trains a
// next-token model over a corpus far longer than the unroll window by
// carrying the recurrent state across chunks — truncated BPTT with
// Network.ForwardState. This is the manual training loop; compare
// examples/quickstart for the managed Trainer.
package main

import (
	"fmt"
	"log"
	"math"

	"etalstm"
)

// Corpus geometry.
const (
	vocab    = 32
	embed    = 16
	hidden   = 48
	layers   = 2
	chunkLen = 12 // unroll window (the model.Config SeqLen)
	batch    = 4
	chunks   = 40 // corpus length = chunks × chunkLen tokens per stream
	epochs   = 3
)

func main() {
	cfg := etalstm.Config{
		InputSize: embed, Hidden: hidden, Layers: layers, SeqLen: chunkLen,
		Batch: batch, OutSize: vocab, Loss: etalstm.PerTimestampLoss,
	}
	net, err := etalstm.NewNetwork(cfg, 42)
	if err != nil {
		log.Fatal(err)
	}
	opt := &etalstm.Adam{LR: 0.01}

	tokens, table := makeCorpus()
	for epoch := 0; epoch < epochs; epoch++ {
		state := net.ZeroState() // reset at document start
		var total float64
		for c := 0; c < chunks; c++ {
			xs, targets := chunkBatch(tokens, table, c)
			res, next, err := net.ForwardState(xs, targets, nil, state)
			if err != nil {
				log.Fatal(err)
			}
			grads := net.NewGradients()
			if err := net.Backward(res, nil, grads, etalstm.BackwardOpts{}); err != nil {
				log.Fatal(err)
			}
			opt.Step(net, grads)
			state = next // carry h/s into the next chunk
			total += res.Loss
		}
		ppl := perplexity(total / chunks)
		fmt.Printf("epoch %d: loss %.4f  perplexity %.1f\n", epoch, total/chunks, ppl)
	}
	fmt.Println("\nCarrying state across chunks is how PTB-style training keeps context")
	fmt.Println("beyond the 35-step unroll window the paper's Table I lists.")
}

// makeCorpus builds batch parallel token streams from a sparse Markov
// chain plus a fixed random embedding table, deterministically.
func makeCorpus() ([][]int, [][]float32) {
	rnd := lcg(12345)
	succ := make([][3]int, vocab)
	for v := range succ {
		for k := 0; k < 3; k++ {
			succ[v][k] = int(rnd() % vocab)
		}
	}
	tokens := make([][]int, batch)
	for b := range tokens {
		cur := int(rnd() % vocab)
		stream := make([]int, chunks*chunkLen+1)
		for i := range stream {
			stream[i] = cur
			cur = succ[cur][rnd()%3]
		}
		tokens[b] = stream
	}
	table := make([][]float32, vocab)
	for v := range table {
		row := make([]float32, embed)
		for j := range row {
			row[j] = float32(int(rnd()%2000)-1000) / 1000
		}
		table[v] = row
	}
	return tokens, table
}

// chunkBatch slices chunk c of every stream into model inputs/targets.
func chunkBatch(tokens [][]int, table [][]float32, c int) ([]*etalstm.Matrix, *etalstm.Targets) {
	xs := make([]*etalstm.Matrix, chunkLen)
	tg := &etalstm.Targets{Classes: make([][]int, chunkLen)}
	for t := 0; t < chunkLen; t++ {
		m := etalstm.NewMatrix(batch, embed)
		cls := make([]int, batch)
		for b := 0; b < batch; b++ {
			tok := tokens[b][c*chunkLen+t]
			copy(m.Row(b), table[tok])
			cls[b] = tokens[b][c*chunkLen+t+1] // next token
		}
		xs[t] = m
		tg.Classes[t] = cls
	}
	return xs, tg
}

func perplexity(meanCE float64) float64 { return math.Exp(meanCE) }

// lcg is a tiny deterministic generator for the example's corpus.
func lcg(seed uint64) func() uint64 {
	s := seed
	return func() uint64 {
		s = s*6364136223846793005 + 1442695040888963407
		return s >> 33
	}
}
