// Footprint planner: answers the question the paper's Sec. III raises —
// which model geometries fit on a given device, and how far η-LSTM's
// optimizations push the wall. Sweeps layer counts at hidden size 2048
// (the paper's Fig. 3b axis) and prints the footprint per mode against
// a 16 GB budget.
package main

import (
	"fmt"

	"etalstm"
)

func main() {
	const budgetGB = 16.0
	fmt.Printf("memory footprint by training flow (H=2048, LL=35, batch 128); budget %.0f GB\n\n", budgetGB)
	fmt.Printf("%-7s %10s %10s %10s %12s %s\n",
		"layers", "Baseline", "MS1", "MS2", "Combine-MS", "fits (combined)?")

	for layers := 2; layers <= 12; layers++ {
		cfg := etalstm.Config{
			InputSize: 512, Hidden: 2048, Layers: layers, SeqLen: 35,
			Batch: 128, OutSize: 1000, Loss: etalstm.PerTimestampLoss,
		}
		row := make([]float64, 4)
		for i, mode := range []etalstm.Mode{etalstm.Baseline, etalstm.MS1, etalstm.MS2, etalstm.Combined} {
			row[i] = float64(etalstm.Analyze(cfg, mode).Footprint.Total()) / 1e9
		}
		fits := "yes"
		if row[3] > budgetGB {
			fits = "NO"
		}
		fmt.Printf("%-7d %9.2fG %9.2fG %9.2fG %11.2fG %s\n",
			layers, row[0], row[1], row[2], row[3], fits)
	}

	fmt.Println("\nThe combined optimizations roughly halve the footprint (paper Fig. 18:")
	fmt.Println("-57.5% average), letting deeper models train inside the same device budget")
	fmt.Println("- the paper's answer to the Fig. 3b memory wall.")
}
