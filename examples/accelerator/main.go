// Accelerator study: evaluates the paper's eight design scenarios on
// all six Table I benchmarks — the library-level regeneration of
// Figs. 15 and 16 — and prints the speedup/energy matrix.
package main

import (
	"fmt"

	"etalstm"
)

func main() {
	hw := etalstm.PaperAccelerator()
	fmt.Printf("eta-LSTM accelerator: %d boards x %d channels x %d Omni-PEs @ %.0f MHz\n\n",
		hw.Boards, hw.ChannelsPerBoard, hw.PEsPerChannel, hw.ClockHz/1e6)

	scenarios := []etalstm.Scenario{
		etalstm.ScenarioBaseline, etalstm.ScenarioMS1, etalstm.ScenarioMS2,
		etalstm.ScenarioCombineMS, etalstm.ScenarioLSTMInf,
		etalstm.ScenarioStaticArch, etalstm.ScenarioDynArch, etalstm.ScenarioEtaLSTM,
	}

	fmt.Printf("speedup over the V100 baseline (paper Fig. 15a):\n%-10s", "")
	for _, sc := range scenarios {
		fmt.Printf(" %11s", sc)
	}
	fmt.Println()
	sums := make([]float64, len(scenarios))
	benches := etalstm.Benchmarks()
	for _, b := range benches {
		cs := etalstm.CompareScenarios(b.Cfg)
		fmt.Printf("%-10s", b.Name)
		for i, sc := range scenarios {
			s := cs[sc].Speedup
			sums[i] += s
			fmt.Printf(" %10.2fx", s)
		}
		fmt.Println()
	}
	fmt.Printf("%-10s", "average")
	for i := range scenarios {
		fmt.Printf(" %10.2fx", sums[i]/float64(len(benches)))
	}
	fmt.Println()

	fmt.Printf("\nnormalized energy (paper Fig. 15b):\n%-10s", "")
	for _, sc := range scenarios {
		fmt.Printf(" %11s", sc)
	}
	fmt.Println()
	for _, b := range benches {
		cs := etalstm.CompareScenarios(b.Cfg)
		fmt.Printf("%-10s", b.Name)
		for _, sc := range scenarios {
			fmt.Printf(" %11.2f", cs[sc].NormalizedEnergy)
		}
		fmt.Println()
	}

	fmt.Println("\npaper headline: eta-LSTM averages 3.99x speedup (up to 5.73x) and")
	fmt.Println("63.7% energy saving (up to 76.5%) over the V100 baseline.")
}
