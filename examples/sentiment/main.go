// Sentiment analysis (the paper's IMDB workload): trains the same
// single-loss classifier under every optimization mode with identical
// data and seeds, then compares final loss, accuracy and the modeled
// footprint — the library-level view of paper Table II and Fig. 18.
package main

import (
	"context"
	"fmt"
	"log"

	"etalstm"
)

func main() {
	bench, err := etalstm.BenchmarkByName("IMDB")
	if err != nil {
		log.Fatal(err)
	}
	small := bench.Scaled(64, 16, 8)
	const epochs = 12
	evalProv := small.Provider(4, 1000)

	fmt.Printf("%-12s %10s %10s %14s\n", "mode", "final loss", "accuracy", "footprint (GB)")
	for _, mode := range []etalstm.Mode{etalstm.Baseline, etalstm.MS1, etalstm.MS2, etalstm.Combined} {
		net, err := etalstm.NewNetwork(small.Cfg, 42)
		if err != nil {
			log.Fatal(err)
		}
		trainer := etalstm.NewTrainer(net, mode, etalstm.TrainerOptions{})
		if _, err := trainer.Run(context.Background(), small.Provider(4, 1), epochs); err != nil {
			log.Fatal(err)
		}
		loss, acc, err := etalstm.Evaluate(net, evalProv)
		if err != nil {
			log.Fatal(err)
		}
		fp := trainer.Footprint(bench.Cfg)
		fmt.Printf("%-12s %10.4f %9.1f%% %14.2f\n",
			mode, loss, 100*acc, float64(fp.Total())/1e9)
	}
	fmt.Println("\nThe optimized modes track the baseline's quality (paper Table II: <1%")
	fmt.Println("difference) while the footprint at the paper's geometry shrinks (Fig. 18).")
}
