// Quickstart: train a scaled-down IMDB sentiment model with η-LSTM's
// combined memory-saving optimizations and watch the optimizations at
// work (P1 pruning from epoch 0, BP-cell skipping after warmup).
package main

import (
	"context"
	"fmt"
	"log"

	"etalstm"
)

func main() {
	bench, err := etalstm.BenchmarkByName("IMDB")
	if err != nil {
		log.Fatal(err)
	}
	// The paper geometry (H=2048, 3 layers, 100 steps) is too big to
	// train in an example; shrink it while keeping depth and loss
	// topology.
	small := bench.Scaled(64, 16, 8)
	fmt.Printf("training %s at H=%d LN=%d LL=%d\n",
		bench.Name, small.Cfg.Hidden, small.Cfg.Layers, small.Cfg.SeqLen)

	net, err := etalstm.NewNetwork(small.Cfg, 42)
	if err != nil {
		log.Fatal(err)
	}
	// Workers > 1 trains data-parallel over replica workers; Workers: 1
	// keeps the bitwise-deterministic serial path.
	trainer := etalstm.NewTrainer(net, etalstm.Combined, etalstm.TrainerOptions{Workers: 1})
	prov := small.Provider(4, 1)
	ctx := context.Background()

	for epoch := 0; epoch < 10; epoch++ {
		st, err := trainer.RunEpoch(ctx, prov, epoch)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("epoch %2d: loss %.4f (skipped %.0f%% of BP cells, pruned %.0f%% of P1)\n",
			epoch, st.MeanLoss, 100*st.SkipFrac, 100*st.PruneStats.Frac())
	}

	loss, acc, err := etalstm.Evaluate(net, small.Provider(2, 99))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("held-out: loss %.4f, accuracy %.1f%%\n", loss, 100*acc)

	// What would this flow save at the paper's full geometry?
	base := etalstm.Analyze(bench.Cfg, etalstm.Baseline).Footprint
	comb := etalstm.Analyze(bench.Cfg, etalstm.Combined).Footprint
	fmt.Printf("footprint at paper geometry: %.2f GB -> %.2f GB (-%.1f%%)\n",
		float64(base.Total())/1e9, float64(comb.Total())/1e9,
		100*(1-float64(comb.Total())/float64(base.Total())))
}
