// Machine translation (the paper's WMT workload): a per-timestamp-loss
// model, where MS2's skip plan targets the *late* timestamps (the
// opposite end from single-loss models — paper Fig. 8b/Fig. 9). The
// example prints the plan's shape and the per-step data movement
// reduction.
package main

import (
	"context"
	"fmt"
	"log"

	"etalstm"
)

func main() {
	bench, err := etalstm.BenchmarkByName("WMT")
	if err != nil {
		log.Fatal(err)
	}
	small := bench.Scaled(64, 20, 8)
	net, err := etalstm.NewNetwork(small.Cfg, 7)
	if err != nil {
		log.Fatal(err)
	}
	trainer := etalstm.NewTrainer(net, etalstm.Combined, etalstm.TrainerOptions{})
	prov := small.Provider(4, 3)
	ctx := context.Background()

	for epoch := 0; epoch < 10; epoch++ {
		st, err := trainer.RunEpoch(ctx, prov, epoch)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("epoch %2d: loss %.4f, skipped %.0f%% of BP cells\n",
			epoch, st.MeanLoss, 100*st.SkipFrac)
	}

	loss, acc, err := etalstm.Evaluate(net, small.Provider(2, 77))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("held-out: per-token loss %.4f, token accuracy %.1f%%\n\n", loss, 100*acc)

	// Data-movement picture at the paper's full WMT geometry (Fig. 17).
	base := etalstm.Analyze(bench.Cfg, etalstm.Baseline).Movement
	comb := etalstm.Analyze(bench.Cfg, etalstm.Combined).Movement
	pct := func(b, o int64) float64 { return 100 * (1 - float64(o)/float64(b)) }
	fmt.Println("per-step DRAM movement at paper geometry (GB), baseline -> eta-LSTM:")
	fmt.Printf("  weights:       %6.1f -> %6.1f  (-%.1f%%)\n",
		float64(base.Weights)/1e9, float64(comb.Weights)/1e9, pct(base.Weights, comb.Weights))
	fmt.Printf("  activations:   %6.1f -> %6.1f  (-%.1f%%)\n",
		float64(base.Activations)/1e9, float64(comb.Activations)/1e9, pct(base.Activations, comb.Activations))
	fmt.Printf("  intermediates: %6.1f -> %6.1f  (-%.1f%%)\n",
		float64(base.Intermediates)/1e9, float64(comb.Intermediates)/1e9, pct(base.Intermediates, comb.Intermediates))
}
