package etalstm

import (
	"context"
	"errors"
	"testing"
)

func TestQuickstartFlow(t *testing.T) {
	bench, err := BenchmarkByName("IMDB")
	if err != nil {
		t.Fatal(err)
	}
	small := bench.Scaled(64, 12, 8)
	net, err := NewNetwork(small.Cfg, 42)
	if err != nil {
		t.Fatal(err)
	}
	tr := NewTrainer(net, Combined, TrainerOptions{Workers: 1})
	stats, err := tr.Run(context.Background(), small.Provider(3, 1), 8)
	if err != nil {
		t.Fatal(err)
	}
	if stats[len(stats)-1].MeanLoss >= stats[0].MeanLoss {
		t.Fatal("quickstart flow failed to learn")
	}
	if tr.Mode() != Combined {
		t.Fatal("mode")
	}
	loss, acc, err := Evaluate(net, small.Provider(2, 2))
	if err != nil || loss <= 0 {
		t.Fatalf("evaluate: %v %v", loss, err)
	}
	_ = acc
}

func TestAllModesTrain(t *testing.T) {
	bench, _ := BenchmarkByName("PTB")
	small := bench.Scaled(64, 10, 8)
	for _, mode := range []Mode{Baseline, MS1, MS2, Combined} {
		net, err := NewNetwork(small.Cfg, 7)
		if err != nil {
			t.Fatal(err)
		}
		tr := NewTrainer(net, mode, TrainerOptions{Workers: 1})
		stats, err := tr.Run(context.Background(), small.Provider(3, 3), 6)
		if err != nil {
			t.Fatalf("%v: %v", mode, err)
		}
		if stats[len(stats)-1].MeanLoss >= stats[0].MeanLoss {
			t.Fatalf("%v failed to learn", mode)
		}
	}
}

func TestModeStrings(t *testing.T) {
	for m, want := range map[Mode]string{
		Baseline: "Baseline", MS1: "MS1", MS2: "MS2", Combined: "Combine-MS",
	} {
		if m.String() != want {
			t.Fatalf("%v", m)
		}
	}
}

func TestBenchmarksExposed(t *testing.T) {
	if len(Benchmarks()) != 6 {
		t.Fatal("six Table I benchmarks expected")
	}
	if _, err := BenchmarkByName("nope"); err == nil {
		t.Fatal("expected error")
	}
}

func TestFootprintAndMovementShrink(t *testing.T) {
	bench, _ := BenchmarkByName("BABI")
	base := Analyze(bench.Cfg, Baseline).Footprint
	comb := Analyze(bench.Cfg, Combined).Footprint
	if comb.Total() >= base.Total() {
		t.Fatal("combined footprint must shrink")
	}
	mb := Analyze(bench.Cfg, Baseline).Movement
	mc := Analyze(bench.Cfg, Combined).Movement
	if mc.Total() >= mb.Total() {
		t.Fatal("combined movement must shrink")
	}
	if mc.Intermediates >= mb.Intermediates/2 {
		t.Fatal("intermediate movement should shrink dramatically (paper: -80%)")
	}
}

func TestTrainerFootprintUsesMeasuredPoint(t *testing.T) {
	bench, _ := BenchmarkByName("IMDB")
	small := bench.Scaled(64, 10, 8)
	net, _ := NewNetwork(small.Cfg, 5)
	tr := NewTrainer(net, Combined, TrainerOptions{})
	if _, err := tr.Run(context.Background(), small.Provider(2, 9), 5); err != nil {
		t.Fatal(err)
	}
	fp := tr.Footprint(bench.Cfg)
	base := Analyze(bench.Cfg, Baseline).Footprint
	if fp.Total() >= base.Total() {
		t.Fatal("measured combined footprint must beat baseline")
	}
}

func TestCompareScenarios(t *testing.T) {
	bench, _ := BenchmarkByName("WMT")
	cs := CompareScenarios(bench.Cfg)
	if len(cs) != 8 {
		t.Fatalf("scenario count: %d", len(cs))
	}
	if cs[ScenarioEtaLSTM].Speedup <= cs[ScenarioBaseline].Speedup {
		t.Fatal("η-LSTM must beat the baseline")
	}
}

func TestRunExperiment(t *testing.T) {
	rep, err := RunExperiment("table3", ExperimentOptions{Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	if rep.ID != "table3" {
		t.Fatal("wrong report")
	}
	_, err = RunExperiment("nope", ExperimentOptions{})
	var ue *UnknownExperimentError
	if !errors.As(err, &ue) || ue.ID != "nope" {
		t.Fatalf("expected UnknownExperimentError, got %v", err)
	}
}

func TestCheckpointRoundtrip(t *testing.T) {
	bench, _ := BenchmarkByName("PTB")
	small := bench.Scaled(64, 8, 4)
	net, _ := NewNetwork(small.Cfg, 11)
	tr := NewTrainer(net, MS1, TrainerOptions{})
	if _, err := tr.Run(context.Background(), small.Provider(2, 1), 3); err != nil {
		t.Fatal(err)
	}
	path := t.TempDir() + "/ckpt"
	if err := SaveNetwork(path, net); err != nil {
		t.Fatal(err)
	}
	got, err := LoadNetwork(path)
	if err != nil {
		t.Fatal(err)
	}
	// Loaded network evaluates identically.
	l1, a1, _ := Evaluate(net, small.Provider(1, 2))
	l2, a2, _ := Evaluate(got, small.Provider(1, 2))
	if l1 != l2 || a1 != a2 {
		t.Fatalf("checkpoint changed behaviour: %v/%v vs %v/%v", l1, a1, l2, a2)
	}
}

func TestExperimentIDsStable(t *testing.T) {
	ids := ExperimentIDs()
	if len(ids) != 18 {
		t.Fatalf("experiment ids: %v", ids)
	}
}
