package etalstm

import (
	"net/http"

	"etalstm/internal/obs"
)

// Metrics returns a flat name→value snapshot of the process-wide
// telemetry registry: every training instrument (epoch loss, gradient
// norm, the MS1 prune ratio, the MS2 skip ratio, workspace-arena
// traffic, …) keyed by its Prometheus name, with histograms flattened
// to <name>_count / _sum / _p50 / _p99. The map is JSON-ready.
//
// Servers keep per-instance registries instead; their metrics are
// served by the Server itself (GET /metrics and /statz).
func Metrics() map[string]float64 { return obs.Default.Snapshot() }

// MetricsHandler returns an http.Handler that serves the process-wide
// registry in the Prometheus text exposition format — mount it on any
// mux (etatrain's -metrics-addr flag does exactly this).
func MetricsHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = obs.Default.WritePrometheus(w)
	})
}

// PhaseStat is one row of a phase-latency breakdown: how often a
// training-step phase (FW, BP-EW-P1, BP-EW-P2, BP-MatMul, all-reduce,
// optimizer) ran and its total wall time.
type PhaseStat = obs.PhaseStat

// Phases returns the trainer's accumulated phase-latency breakdown in
// execution order, or nil unless TrainerOptions.RecordPhases was set
// before training. etabench -phases renders this as a table.
func (t *Trainer) Phases() []PhaseStat { return t.inner.Phases() }
