GO ?= go

.PHONY: build test race bench vet fmt check all

all: build test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# Race-detector pass over the packages with real concurrency: the
# data-parallel engine, the trainer that drives it, the public API
# (whose tests exercise multi-worker training end to end), and the
# workspace-threaded FW/BP stack (lstm kernels + model), where replica
# confinement of the scratch arenas is the thing under test.
race:
	$(GO) test -race ./internal/parallel ./internal/core ./internal/tensor ./internal/lstm ./internal/model .

bench:
	$(GO) test -bench=. -benchmem ./...

vet:
	$(GO) vet ./...

fmt:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then echo "gofmt needed:"; echo "$$out"; exit 1; fi

# check is the pre-commit gate: vet + formatting + build + tests.
check: vet fmt build test
