GO ?= go

# Budget per fuzz target for `make fuzz` (go test -fuzztime syntax).
FUZZTIME ?= 30s

.PHONY: build test race bench vet fmt check fuzz cover serve-smoke obs-smoke longseq-smoke dist-smoke fleet-smoke trace-smoke all

all: build test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# Race-detector pass over the packages with real concurrency: the
# data-parallel engine, the trainer that drives it, the public API
# (whose tests exercise multi-worker training end to end), the
# workspace-threaded FW/BP stack (lstm kernels + model), where replica
# confinement of the scratch arenas is the thing under test, the MS2
# planner, the differential harness (whose equivalence engine runs
# serial and concurrent replicas against each other), the serving
# subsystem (micro-batcher, session table, graceful drain), the
# telemetry layer (concurrent registry, per-replica span recorders),
# the checkpoint planner whose placements the replicas recompute
# under concurrently, the distributed gradient transport (reader
# goroutines handing decode buffers to the coordinator's merge loop),
# the fleet router (concurrent forwarding, prober-driven membership
# churn, hot-swap rolls under load), and the request tracer (spans
# finishing on worker goroutines while HTTP handlers read the ring).
race:
	$(GO) test -race ./internal/parallel ./internal/core ./internal/tensor ./internal/lstm ./internal/model ./internal/check ./internal/skip ./internal/train ./internal/serve ./internal/obs ./internal/memplan ./internal/dist ./internal/fleet ./internal/rtrace .

bench:
	$(GO) test -bench=. -benchmem ./...

# fuzz runs every Fuzz* target for FUZZTIME each (Go allows one target
# per invocation). -fuzzminimizetime=1x keeps the budget spent on
# exploration instead of input minimization.
fuzz:
	$(GO) test -run='^$$' -fuzz=FuzzEncodeDecode -fuzztime=$(FUZZTIME) -fuzzminimizetime=1x ./internal/compress
	$(GO) test -run='^$$' -fuzz=FuzzLoad -fuzztime=$(FUZZTIME) -fuzzminimizetime=1x ./internal/persist
	$(GO) test -run='^$$' -fuzz=FuzzGradCheck -fuzztime=$(FUZZTIME) -fuzzminimizetime=1x ./internal/check
	$(GO) test -run='^$$' -fuzz=FuzzEquivalence -fuzztime=$(FUZZTIME) -fuzzminimizetime=1x ./internal/check
	$(GO) test -run='^$$' -fuzz=FuzzCheckpointed -fuzztime=$(FUZZTIME) -fuzzminimizetime=1x ./internal/check
	$(GO) test -run='^$$' -fuzz=FuzzSparseBackward -fuzztime=$(FUZZTIME) -fuzzminimizetime=1x ./internal/check
	$(GO) test -run='^$$' -fuzz=FuzzSparseDecode -fuzztime=$(FUZZTIME) -fuzzminimizetime=1x ./internal/compress
	$(GO) test -run='^$$' -fuzz=FuzzFrameDecode -fuzztime=$(FUZZTIME) -fuzzminimizetime=1x ./internal/dist

# cover enforces statement-coverage floors on the numerically critical
# packages. Floors sit a few points below current coverage: they catch a
# PR that deletes tests or lands large untested code, without turning
# every small change into a floor-tuning exercise.
cover:
	@set -e; \
	check() { \
		pct=$$($(GO) test -cover $$1 | sed -n 's/.*coverage: \([0-9.]*\)%.*/\1/p'); \
		if [ -z "$$pct" ]; then echo "cover: no coverage reported for $$1"; exit 1; fi; \
		ok=$$(awk "BEGIN{print ($$pct >= $$2) ? 1 : 0}"); \
		if [ "$$ok" != 1 ]; then echo "cover: $$1 at $$pct% is below the $$2% floor"; exit 1; fi; \
		echo "cover: $$1 $$pct% (floor $$2%)"; \
	}; \
	check ./internal/lstm 85; \
	check ./internal/model 85; \
	check ./internal/skip 90; \
	check ./internal/serve 65; \
	check ./internal/obs 85; \
	check ./internal/memplan 90; \
	check ./internal/dist 85; \
	check ./internal/compress 85; \
	check ./internal/fleet 85; \
	check ./internal/rtrace 85

# serve-smoke is the end-to-end serving check: checkpoint -> etaserve
# on an ephemeral port -> loadgen burst -> graceful drain, all through
# the real binary paths (cmd/etaserve's run seam).
serve-smoke:
	$(GO) test -run TestServeSmoke -v ./cmd/etaserve

# obs-smoke is the end-to-end telemetry check: a training run with
# -metrics-addr on an ephemeral port is scraped over HTTP until the
# MS1 prune-ratio gauge shows up in the Prometheus text output.
obs-smoke:
	$(GO) test -run TestObsSmoke -v ./cmd/etatrain

# longseq-smoke is the end-to-end memory-budget check: a seqlen-4096
# byte-level LM run under a quarter-of-peak budget that provably cannot
# hold full storage, asserted to stay under budget via the measured
# peak-stored-bytes report.
longseq-smoke:
	$(GO) test -run TestLongSeqSmoke -v ./cmd/etatrain

# dist-smoke is the end-to-end distributed-training check: a gradient
# coordinator plus two compressed workers over loopback, asserted to
# form a session, converge, and report their bytes-on-wire accounting.
dist-smoke:
	$(GO) test -run TestDistSmoke -v ./cmd/etatrain

# fleet-smoke is the end-to-end horizontal-serving check: three
# replicas behind etarouter (real binary paths via cmd/etarouter's run
# seam), a Zipf-skewed load burst, one replica killed mid-run with
# zero surfaced errors after ejection settles, and a checkpoint
# hot-swap rolled across the survivors under load with zero dropped
# requests.
fleet-smoke:
	$(GO) test -run TestFleetSmoke -v ./cmd/etarouter

# trace-smoke is the end-to-end tracing check: two traced replicas
# behind etarouter (real binary paths), a loadgen burst minting
# traceparents, one minted id resolved at the router into a
# cross-process span tree (router → replica → sweep → phase), and a
# SIGQUIT dump of the router's flight recorder asserted.
trace-smoke:
	$(GO) test -run TestTraceSmoke -v ./cmd/etarouter

vet:
	$(GO) vet ./...

fmt:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then echo "gofmt needed:"; echo "$$out"; exit 1; fi

# check is the pre-commit gate: vet + formatting + build + tests.
check: vet fmt build test
