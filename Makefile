GO ?= go

.PHONY: build test race bench vet all

all: build test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# Race-detector pass over the packages with real concurrency: the
# data-parallel engine, the trainer that drives it, and the public API
# (whose tests exercise multi-worker training end to end).
race:
	$(GO) test -race ./internal/parallel ./internal/core ./internal/tensor .

bench:
	$(GO) test -bench=. -benchmem ./...

vet:
	$(GO) vet ./...
