package etalstm

import (
	"context"
	"sync"
	"testing"

	"etalstm/internal/check"
	"etalstm/internal/obs"
)

// stridedShard is worker `offset`'s view of a shared epoch: batch i of
// the shard is global batch i*stride+offset, so step s across `stride`
// single-replica workers covers exactly the batch group an in-process
// engine with Workers == stride would hand its replicas at group s.
type stridedShard struct {
	inner          Provider
	stride, offset int
}

func (p stridedShard) NumBatches() int { return p.inner.NumBatches() / p.stride }
func (p stridedShard) Batch(i int) Batch {
	return p.inner.Batch(i*p.stride + p.offset)
}

// runTCPWorkers trains one single-replica trainer per TCP worker
// against a shared coordinator, each on its stride of the union
// provider, all from the same seed. It returns per-worker parameter
// checksums, per-worker epoch stats (indexed by worker id), and the
// workers themselves (for wire accounting).
func runTCPWorkers(t *testing.T, coordAddr string, small Benchmark, union Provider, workers, epochs int, comp *CompressOptions, metrics []*obs.Dist) ([]uint64, [][]EpochStats, []*WorkerSync) {
	t.Helper()
	sums := make([]uint64, workers)
	stats := make([][]EpochStats, workers)
	syncs := make([]*WorkerSync, workers)
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			opts := WorkerSyncOptions{Compression: comp}
			if metrics != nil {
				opts.Metrics = metrics[i]
			}
			wk, err := DialSync(coordAddr, small.Cfg, opts)
			if err != nil {
				t.Errorf("worker %d dial: %v", i, err)
				return
			}
			defer wk.Close()
			net, err := NewNetwork(small.Cfg, 42)
			if err != nil {
				t.Error(err)
				return
			}
			tr := NewTrainer(net, Baseline, TrainerOptions{Workers: 1, Sync: wk})
			shard := stridedShard{inner: union, stride: workers, offset: wk.ID()}
			st, err := tr.Run(context.Background(), shard, epochs)
			if err != nil {
				t.Errorf("worker %d run: %v", wk.ID(), err)
				return
			}
			sums[wk.ID()] = paramChecksum(net)
			stats[wk.ID()] = st
			syncs[wk.ID()] = wk
		}(i)
	}
	wg.Wait()
	if t.Failed() {
		t.FailNow()
	}
	return sums, stats, syncs
}

// TestDistributedDenseBitwise is the seam-transparency acceptance test:
// four worker processes (here goroutines, but full TCP loopback — every
// gradient crosses a socket) training dense through a coordinator must
// land on exactly the weights the in-process Workers=4 engine produces
// from the same batches, bit for bit.
func TestDistributedDenseBitwise(t *testing.T) {
	bench, err := BenchmarkByName("IMDB")
	if err != nil {
		t.Fatal(err)
	}
	small := bench.Scaled(64, 12, 8)
	const workers = 4
	const epochs = 3
	union := small.Provider(2*workers, 1)

	// Reference: the classic in-process engine over the union provider.
	refNet, err := NewNetwork(small.Cfg, 42)
	if err != nil {
		t.Fatal(err)
	}
	refTr := NewTrainer(refNet, Baseline, TrainerOptions{Workers: workers})
	refStats, err := refTr.Run(context.Background(), union, epochs)
	if err != nil {
		t.Fatal(err)
	}
	refSum := paramChecksum(refNet)

	coord, err := StartCoordinator("127.0.0.1:0", small.Cfg, CoordinatorOptions{ExpectWorkers: workers})
	if err != nil {
		t.Fatal(err)
	}
	defer coord.Close()

	sums, stats, _ := runTCPWorkers(t, coord.Addr().String(), small, union, workers, epochs, nil, nil)
	if err := coord.Wait(); err != nil {
		t.Fatalf("coordinator: %v", err)
	}
	for id, sum := range sums {
		if sum != refSum {
			t.Errorf("worker %d final weights %#x differ from in-process engine %#x", id, sum, refSum)
		}
	}
	// Per-shard mean losses must average to the engine's epoch mean
	// (equal shard sizes), confirming the runs saw the same batches.
	for e := 0; e < epochs; e++ {
		var mean float64
		for id := 0; id < workers; id++ {
			mean += stats[id][e].MeanLoss
		}
		mean /= workers
		if diff := mean - refStats[e].MeanLoss; diff > 1e-9 || diff < -1e-9 {
			t.Errorf("epoch %d: worker mean loss %g vs engine %g", e, mean, refStats[e].MeanLoss)
		}
	}
	if got := coord.Steps(); got != int64(epochs*union.NumBatches()/workers) {
		t.Errorf("coordinator served %d merge steps, want %d", got, epochs*union.NumBatches()/workers)
	}
}

// TestDistributedCompressedAcceptance is the headline acceptance run:
// four TCP workers training with top-k compression (keep 5%) on both
// uplink and downlink must cut bytes-on-wire at least 5× against the
// dense equivalent — per the transport's own wire gauge — while the
// final loss stays inside the bounded-divergence band of the dense run.
func TestDistributedCompressedAcceptance(t *testing.T) {
	bench, err := BenchmarkByName("IMDB")
	if err != nil {
		t.Fatal(err)
	}
	small := bench.Scaled(16, 8, 4)
	const workers = 4
	const epochs = 10
	union := small.Provider(4*workers, 1)

	// Dense reference trajectory (in-process engine, same batches).
	refNet, err := NewNetwork(small.Cfg, 42)
	if err != nil {
		t.Fatal(err)
	}
	refTr := NewTrainer(refNet, Baseline, TrainerOptions{Workers: workers})
	refStats, err := refTr.Run(context.Background(), union, epochs)
	if err != nil {
		t.Fatal(err)
	}

	comp := &CompressOptions{KeepFrac: 0.05, WarmupSteps: 4}
	coord, err := StartCoordinator("127.0.0.1:0", small.Cfg, CoordinatorOptions{
		ExpectWorkers: workers,
		Compression:   comp,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer coord.Close()

	metrics := make([]*obs.Dist, workers)
	for i := range metrics {
		metrics[i] = obs.NewDist(obs.NewRegistry())
	}
	sums, stats, syncs := runTCPWorkers(t, coord.Addr().String(), small, union, workers, epochs, comp, metrics)
	if err := coord.Wait(); err != nil {
		t.Fatalf("coordinator: %v", err)
	}

	// Compressed workers still move in lockstep: identical broadcasts,
	// identical optimizer state, identical weights.
	for id := 1; id < workers; id++ {
		if sums[id] != sums[0] {
			t.Errorf("worker %d weights %#x forked from worker 0 %#x", id, sums[id], sums[0])
		}
	}

	// ≥5× payload reduction, read from the bytes-on-wire gauge each
	// worker's metrics bundle maintains (and cross-checked against the
	// worker's own accounting).
	for id, wk := range syncs {
		wire := float64(metrics[id].WireBytes.Value())
		dense := float64(metrics[id].DenseBytes.Value())
		if wire <= 0 || dense <= 0 {
			t.Fatalf("worker %d: wire gauge never moved (wire %g dense %g)", id, wire, dense)
		}
		if ratio := dense / wire; ratio < 5 {
			t.Errorf("worker %d: compression ratio %.2fx from wire gauge, acceptance bar is 5x", id, ratio)
		}
		if r := wk.Ratio(); r < 5 {
			t.Errorf("worker %d: Ratio() = %.2fx, acceptance bar is 5x", id, r)
		}
	}

	// Final loss within the bounded-divergence band of the dense run.
	// Shards are equal-sized, so averaging per-worker means recovers the
	// full-epoch mean loss.
	denseTrace := make([]float64, epochs)
	compTrace := make([]float64, epochs)
	for e := 0; e < epochs; e++ {
		denseTrace[e] = refStats[e].MeanLoss
		for id := 0; id < workers; id++ {
			compTrace[e] += stats[id][e].MeanLoss
		}
		compTrace[e] /= workers
	}
	// Band 0.25 against a 0.05 convergence floor: both runs start at
	// ~0.71 loss, so the compressed tail must land within 0.0125 of the
	// dense tail — ~2% of the loss the dense run worked off.
	if err := check.CheckLossBand(denseTrace, compTrace, 0.25, 0.05); err != nil {
		t.Errorf("compressed run left the divergence band: %v", err)
	}
	t.Logf("dense trace %v", denseTrace)
	t.Logf("comp  trace %v (ratio %.1fx)", compTrace, syncs[0].Ratio())
}
