package etalstm

import (
	"etalstm/internal/arch"
	"etalstm/internal/experiments"
	"etalstm/internal/gpu"
)

// Scenario identifies one of the paper's comparison cases (Fig. 15).
type Scenario = arch.Scenario

// The eight design scenarios of the paper's evaluation.
const (
	ScenarioBaseline   = arch.Baseline
	ScenarioMS1        = arch.MS1
	ScenarioMS2        = arch.MS2
	ScenarioCombineMS  = arch.CombineMS
	ScenarioLSTMInf    = arch.LSTMInf
	ScenarioStaticArch = arch.StaticArch
	ScenarioDynArch    = arch.DynArch
	ScenarioEtaLSTM    = arch.EtaLSTM
)

// Comparison is one scenario's modeled training step normalized
// against the GPU baseline.
type Comparison = arch.Comparison

// AcceleratorConfig describes the η-LSTM accelerator build.
type AcceleratorConfig = arch.HWConfig

// PaperAccelerator returns the paper's configuration: 4 VCU128 boards
// × 40 channels × 32 Omni-PEs at 500 MHz with 224 GB/s HBM per board.
func PaperAccelerator() AcceleratorConfig { return arch.Paper() }

// defaultOptParams derives the optimization operating point for cfg.
func defaultOptParams(cfg Config) arch.OptParams {
	return arch.DefaultOptParams(cfg)
}

// CompareScenarios evaluates every design scenario on cfg against the
// V100 GPU baseline — one benchmark's column of the paper's Fig. 15
// and Fig. 16. The returned slice is indexed by Scenario.
func CompareScenarios(cfg Config) []Comparison {
	return arch.Compare(cfg, arch.Paper(), gpu.V100(), arch.DefaultOptParams(cfg))
}

// Report is one regenerated table or figure.
type Report = experiments.Report

// ExperimentOptions tunes the training-backed experiments.
type ExperimentOptions = experiments.Options

// ExperimentIDs lists the reproducible experiments (fig3a..table3).
func ExperimentIDs() []string { return experiments.IDs() }

// RunExperiment regenerates one of the paper's tables or figures by
// id (see ExperimentIDs). Pass a zero Options for full fidelity or
// {Quick: true} for CI-scale training runs.
func RunExperiment(id string, opts ExperimentOptions) (*Report, error) {
	runner, ok := experiments.Registry()[id]
	if !ok {
		return nil, &UnknownExperimentError{ID: id}
	}
	return runner(opts)
}

// RunAllExperiments regenerates every table and figure in id order.
func RunAllExperiments(opts ExperimentOptions) ([]*Report, error) {
	return experiments.RunAll(opts)
}

// UnknownExperimentError reports a RunExperiment id that is not
// registered.
type UnknownExperimentError struct{ ID string }

// Error implements error.
func (e *UnknownExperimentError) Error() string {
	return "etalstm: unknown experiment " + e.ID + " (see ExperimentIDs)"
}
