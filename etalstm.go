// Package etalstm is the public API of the η-LSTM reproduction: a pure
// Go library for training large LSTM models with the paper's
// memory-saving optimizations (MS1 execution reordering + compression,
// MS2 BP-cell skipping), plus the accelerator and GPU cost models that
// regenerate every table and figure of the paper's evaluation.
//
// Quickstart:
//
//	bench, _ := etalstm.BenchmarkByName("IMDB")
//	small := bench.Scaled(64, 16, 8)
//	net, _ := etalstm.NewNetwork(small.Cfg, 42)
//	tr := etalstm.NewTrainer(net, etalstm.Combined, etalstm.TrainerOptions{})
//	stats, _ := tr.Run(context.Background(), small.Provider(4, 1), 10)
//
// Training is data-parallel: TrainerOptions.Workers shards each epoch's
// minibatches across replica workers with a deterministic gradient
// all-reduce (see TrainerOptions.Workers and SetWorkers for the two
// parallelism levels). The experiment harnesses are exposed through
// RunExperiment; the architecture comparison through CompareScenarios.
// See README.md for the full tour and DESIGN.md for the system
// inventory.
package etalstm

import (
	"context"
	"fmt"
	"io"
	"os"
	"runtime"

	"etalstm/internal/core"
	"etalstm/internal/corpus"
	"etalstm/internal/dist"
	"etalstm/internal/memplan"
	"etalstm/internal/model"
	"etalstm/internal/persist"
	"etalstm/internal/rng"
	"etalstm/internal/serve"
	"etalstm/internal/tensor"
	"etalstm/internal/trace"
	"etalstm/internal/train"
	"etalstm/internal/workload"
)

// Config describes a stacked LSTM model (hidden size, layer number,
// layer length, batch, loss topology).
type Config = model.Config

// LossKind selects the loss topology (single, per-timestamp,
// regression) — the property that determines which BP cells MS2 may
// skip.
type LossKind = model.LossKind

// The three loss topologies.
const (
	SingleLoss       = model.SingleLoss
	PerTimestampLoss = model.PerTimestampLoss
	RegressionLoss   = model.RegressionLoss
)

// Network is a stacked LSTM with a linear output projection.
type Network = model.Network

// Targets carries minibatch supervision.
type Targets = model.Targets

// Batch is one minibatch of inputs and supervision.
type Batch = train.Batch

// Provider supplies the minibatches of an epoch.
type Provider = train.Provider

// Optimizer applies gradients; SGD and Adam are provided.
type Optimizer = train.Optimizer

// SGD is stochastic gradient descent with optional momentum.
type SGD = train.SGD

// Adam is the Adam optimizer.
type Adam = train.Adam

// Benchmark couples a paper Table I geometry with a synthetic task
// generator.
type Benchmark = workload.Benchmark

// NewNetwork builds a stacked LSTM with seeded initialization.
func NewNetwork(cfg Config, seed uint64) (*Network, error) {
	return model.NewNetwork(cfg, rng.New(seed))
}

// Benchmarks returns the six Table I benchmarks with the paper's exact
// geometry.
func Benchmarks() []Benchmark { return workload.Suite() }

// BenchmarkByName looks a benchmark up by its paper name (TREC-10,
// PTB, IMDB, WAYMO, WMT, BABI).
func BenchmarkByName(name string) (Benchmark, error) { return workload.ByName(name) }

// Mode selects which of η-LSTM's software optimizations a Trainer
// applies.
type Mode int

// Training modes, mirroring the paper's comparison cases.
const (
	// Baseline stores raw intermediates and executes every BP cell.
	Baseline Mode = iota
	// MS1 reorders execution: BP-EW-P1 is computed during FW and
	// near-zero pruned (Sec. IV-A).
	MS1
	// MS2 predicts and skips insignificant BP cells (Sec. IV-B).
	MS2
	// Combined applies both (the paper's Combine-MS).
	Combined
)

// String implements fmt.Stringer.
func (m Mode) String() string {
	switch m {
	case Baseline:
		return "Baseline"
	case MS1:
		return "MS1"
	case MS2:
		return "MS2"
	case Combined:
		return "Combine-MS"
	}
	return fmt.Sprintf("Mode(%d)", int(m))
}

// NoClip disables gradient clipping when assigned to
// TrainerOptions.Clip (any negative value works; this constant is the
// readable spelling).
const NoClip = -1

// Reducer is the pluggable final stage of a training step: it receives
// the merged gradients of one optimizer step and performs averaging,
// clipping and the weight update. Supply one through
// TrainerOptions.Reducer to slot in custom clipping schemes or future
// multi-backend/sharded reducers; the default is clip-then-step.
type Reducer = train.Reducer

// ClipStep is the default Reducer: average over replicas, clip the
// global L2 norm (Clip <= 0 disables), apply Opt.
type ClipStep = train.ClipStep

// GradientSync is the transport seam of a training step: the stage
// that merges one step's gradient contributions, possibly across
// processes. Supply one through TrainerOptions.Sync; nil keeps the
// built-in deterministic in-process all-reduce. NewCompressedSync and
// DialSync build the provided implementations.
type GradientSync = train.GradientSync

// CompressOptions tunes gradient compression on syncs that support it:
// top-k fraction or MS1-style near-zero threshold.
type CompressOptions = dist.CompressOptions

// CompressedSync sparsifies each replica's gradient contribution with
// per-replica error feedback before merging — MS1's (value, index)
// compression applied to all-reduce traffic. Its byte accounting (and
// the etalstm_dist_* instruments) reports the wire cost the payloads
// would have on the TCP transport.
type CompressedSync = dist.Compressed

// Coordinator is the merge hub of multi-process data-parallel
// training: it collects worker gradient frames, merges them
// deterministically, and broadcasts the result. It never trains.
type Coordinator = dist.Coordinator

// CoordinatorOptions configures a Coordinator: worker count, quorum +
// deadline for bounded-staleness admission, downlink compression.
type CoordinatorOptions = dist.CoordinatorOptions

// WorkerSync is the worker-process side of the TCP gradient transport;
// it implements GradientSync.
type WorkerSync = dist.Worker

// WorkerSyncOptions configures a WorkerSync (uplink compression, dial
// timeout).
type WorkerSyncOptions = dist.WorkerOptions

// NewCompressedSync builds an in-process compressed gradient sync.
func NewCompressedSync(opts CompressOptions) *CompressedSync {
	return &dist.Compressed{Opts: opts}
}

// StartCoordinator starts a gradient-merge coordinator for a
// multi-process run of cfg-shaped models. It returns once the listener
// is bound; the session serves in the background until every worker
// disconnects (Coordinator.Wait returns nil) or Close is called.
func StartCoordinator(addr string, cfg Config, opts CoordinatorOptions) (*Coordinator, error) {
	return dist.StartCoordinator(addr, cfg, opts)
}

// DialSync connects a worker process to a coordinator and blocks until
// the full worker set has joined. Plug the returned sync into
// TrainerOptions.Sync; its ID/Total report this process's position for
// sharding the data provider.
func DialSync(addr string, cfg Config, opts WorkerSyncOptions) (*WorkerSync, error) {
	return dist.Dial(addr, cfg, opts)
}

// TrainerOptions tunes a Trainer; zero values select the paper's
// operating points.
type TrainerOptions struct {
	// Optimizer defaults to Adam(lr=0.01).
	Optimizer Optimizer
	// Clip is the max gradient L2 norm (0 = 5; negative, e.g. NoClip,
	// disables clipping entirely).
	Clip float64
	// Workers is the data-parallel replica count. 0 derives a count
	// from runtime.NumCPU() (capped at 8); 1 forces the serial trainer
	// (one optimizer step per minibatch, bitwise identical to the
	// classic loop); > 1 shards each epoch's minibatches across that
	// many replica workers with one optimizer step per group of Workers
	// batches, merged by a deterministic tree all-reduce — reproducible
	// run-to-run for any fixed worker count. Replica workers multiply
	// with the kernel-level parallelism set by SetWorkers; see
	// SetWorkers for the combined tuning story.
	Workers int
	// Reducer overrides the merge-clip-step stage (nil = ClipStep with
	// the options above).
	Reducer Reducer
	// PruneThreshold is MS1's near-zero cutoff (0 = 0.1).
	PruneThreshold float32
	// SparseBackward routes BP through the pair-driven sparse kernels,
	// which touch only the P1 pairs surviving MS1's pruning — BP-EW-P2
	// and BP-MatMul time shrinks with the measured prune ratio. Only
	// meaningful in MS1/Combined modes; at a zero effective threshold
	// the result is bitwise identical to the dense path.
	SparseBackward bool
	// BackwardTopK, with SparseBackward, caps each batch row of the
	// weight-gradient MatMuls to its BackwardTopK largest-|δgate|
	// columns (Zhu et al., arXiv:1806.00512). 0 disables; ≥ hidden size
	// is the identity.
	BackwardTopK int
	// StoreF16 rounds the stored P1 intermediates to float16 precision
	// (compute stays float32), halving what the compressed activation
	// store holds. Only meaningful in MS1/Combined modes.
	StoreF16 bool
	// SkipThreshold is MS2's significance cutoff (0 = 0.08).
	SkipThreshold float64
	// MaxSkipFrac caps MS2's skipped share per layer (0 = 0.5).
	MaxSkipFrac float64
	// WarmupEpochs run unskipped before Eq. 5 has history (0 = 3).
	WarmupEpochs int
	// MemoryBudget caps the stored activation bytes of one FW+BP pass
	// per replica (0 = classic full-storage BPTT). A positive budget
	// below the full-storage peak switches the trainer to checkpointed
	// BPTT: only the placement's (h,s) columns are kept through FW and
	// the segments between them are recomputed during BP, with losses
	// and gradients bitwise identical to full storage. PlanFor previews
	// the placement a budget buys; Trainer.Plan returns the one in use.
	// An infeasible budget (below even per-step checkpointing) fails at
	// the first RunEpoch with a diagnostic.
	MemoryBudget int64
	// Observer, when non-nil, receives each epoch's stats right after
	// the epoch completes — loss, wall time, prune/skip behaviour — for
	// live logging without polling. It runs on the training goroutine;
	// keep it fast.
	Observer func(EpochStats)
	// RecordPhases enables per-phase span recording (see
	// Trainer.Phases). Off by default; disabled recording costs one nil
	// test per phase boundary, so the FW/BP hot path stays
	// allocation-free either way.
	RecordPhases bool
	// Sync routes each optimizer step's gradient merge through a
	// transport (NewCompressedSync for in-process compression, DialSync
	// to join a multi-process run). nil keeps the built-in paths bitwise
	// intact. The trainer owns the reducer averaging: it divides by the
	// contribution count the sync reports, so a distributed sync makes
	// this trainer one member of a larger data-parallel group.
	Sync GradientSync
}

// Trainer trains a Network under the selected optimization mode.
type Trainer struct {
	inner *core.Trainer
	mode  Mode
}

// EpochStats reports one epoch's loss and optimization behaviour.
type EpochStats = core.Stats

// defaultReplicaWorkers derives the replica count for Workers == 0: one
// replica per CPU, capped so replica- and kernel-level parallelism do
// not oversubscribe wildly on very wide machines.
func defaultReplicaWorkers() int {
	w := runtime.NumCPU()
	if w > 8 {
		w = 8
	}
	if w < 1 {
		w = 1
	}
	return w
}

// NewTrainer builds a trainer for net in the given mode.
func NewTrainer(net *Network, mode Mode, opts TrainerOptions) *Trainer {
	opt := opts.Optimizer
	if opt == nil {
		opt = &train.Adam{LR: 0.01}
	}
	clip := opts.Clip
	switch {
	case clip == 0:
		clip = 5
	case clip < 0:
		clip = 0 // an explicit "no clipping" request
	}
	workers := opts.Workers
	if workers == 0 {
		workers = defaultReplicaWorkers()
	}
	cfg := core.Config{
		EnableMS1:      mode == MS1 || mode == Combined,
		EnableMS2:      mode == MS2 || mode == Combined,
		PruneThreshold: opts.PruneThreshold,
		SparseBackward: opts.SparseBackward,
		BackwardTopK:   opts.BackwardTopK,
		StoreF16:       opts.StoreF16,
		SkipThreshold:  opts.SkipThreshold,
		MaxSkipFrac:    opts.MaxSkipFrac,
		WarmupEpochs:   opts.WarmupEpochs,
		MemoryBudget:   opts.MemoryBudget,
	}
	inner := core.New(net, opt, clip, cfg)
	inner.Workers = workers
	inner.Reducer = opts.Reducer
	inner.Sync = opts.Sync
	inner.Observer = opts.Observer
	inner.RecordPhases = opts.RecordPhases
	return &Trainer{inner: inner, mode: mode}
}

// Mode returns the trainer's optimization mode.
func (t *Trainer) Mode() Mode { return t.mode }

// Workers returns the trainer's resolved data-parallel replica count.
func (t *Trainer) Workers() int { return t.inner.Workers }

// Run trains for epochs epochs over p. ctx cancels training between
// minibatch groups; the returned error is then ctx.Err() and the stats
// of fully completed epochs are still returned.
func (t *Trainer) Run(ctx context.Context, p Provider, epochs int) ([]EpochStats, error) {
	return t.inner.Run(ctx, p, epochs)
}

// RunEpoch trains a single epoch, honouring ctx as Run does.
func (t *Trainer) RunEpoch(ctx context.Context, p Provider, epoch int) (EpochStats, error) {
	return t.inner.RunEpoch(ctx, p, epoch)
}

// Losses returns the recorded per-epoch mean losses.
func (t *Trainer) Losses() []float64 { return t.inner.Losses() }

// Plan returns the checkpoint placement this trainer uses for its
// MemoryBudget. With no budget (or one the full-storage peak fits) the
// placement is a single segment and Plan().FullStorage() is true.
func (t *Trainer) Plan() Plan { return *t.inner.Placement() }

// Analyze evaluates both analytic cost models — per-step DRAM traffic
// and training memory footprint — for this trainer's own network at its
// measured operating point (the P1 sparsity its pruning actually
// achieved, the skip fraction its latest plan actually chose), rather
// than the paper's defaults the package-level Analyze assumes.
func (t *Trainer) Analyze() Analysis {
	sparsity, skipFrac := t.inner.OperatingPoint()
	return analyzeAt(t.inner.Net.Cfg, t.mode, sparsity, skipFrac)
}

// Footprint returns the modeled training memory footprint of cfg at
// this trainer's measured operating point, split into the paper's
// parameter / activation / intermediate categories.
//
// Deprecated: use Trainer.Analyze, which reports the footprint and the
// DRAM traffic of the trainer's own network in one call, or the
// package-level Analyze for arbitrary configurations.
func (t *Trainer) Footprint(cfg Config) Footprint {
	b := memplan.Footprint(cfg, t.inner.FootprintMode(), t.inner.FootprintParams())
	return Footprint{
		Parameter:    b.Parameter,
		Activations:  b.Activations,
		Intermediate: b.Intermediate,
	}
}

// Footprint is a memory footprint split by the paper's categories
// (bytes).
type Footprint struct {
	Parameter    int64
	Activations  int64
	Intermediate int64
}

// Total returns the summed footprint.
func (f Footprint) Total() int64 { return f.Parameter + f.Activations + f.Intermediate }

// Evaluate runs forward-only over p and returns mean loss and
// classification accuracy (0 for regression models).
func Evaluate(net *Network, p Provider) (meanLoss, accuracy float64, err error) {
	return train.Evaluate(net, p)
}

// EvaluateMAE returns the mean absolute error of a regression model.
func EvaluateMAE(net *Network, p Provider) (float64, error) {
	return train.EvaluateMAE(net, p)
}

// Movement is DRAM traffic in bytes by category.
type Movement struct {
	Weights       int64
	Activations   int64
	Intermediates int64
}

// Total returns the summed traffic.
func (m Movement) Total() int64 { return m.Weights + m.Activations + m.Intermediates }

// Analysis couples the two analytic cost models for one configuration
// under one optimization mode: the per-step DRAM traffic (Movement) and
// the training memory footprint (Footprint), both at the paper's
// operating points (65 % P1 sparsity, geometry-derived skip fraction).
type Analysis struct {
	Cfg       Config
	Mode      Mode
	Movement  Movement
	Footprint Footprint
}

// memMode maps a public training Mode onto the memplan cost-model mode.
func memMode(mode Mode) memplan.Mode {
	switch mode {
	case MS1:
		return memplan.MS1
	case MS2:
		return memplan.MS2
	case Combined:
		return memplan.Combined
	}
	return memplan.Baseline
}

// analyzeAt evaluates both analytic models at an explicit operating
// point — the shared core of Analyze (paper defaults) and
// Trainer.Analyze (measured values).
func analyzeAt(cfg Config, mode Mode, p1Sparsity, skipFrac float64) Analysis {
	var m trace.Movement
	switch mode {
	case MS1:
		m = trace.WithMS1(cfg, p1Sparsity)
	case MS2:
		m = trace.WithMS2(cfg, skipFrac)
	case Combined:
		m = trace.Combined(cfg, p1Sparsity, skipFrac)
	default:
		m = trace.Baseline(cfg)
	}
	mp := memplan.Params{P1KeepRatio: memplan.FromSparsity(p1Sparsity), SkipFrac: skipFrac}
	b := memplan.Footprint(cfg, memMode(mode), mp)
	return Analysis{
		Cfg:       cfg,
		Mode:      mode,
		Movement:  Movement{Weights: m.Weights, Activations: m.Activations, Intermediates: m.Intermediates},
		Footprint: Footprint{Parameter: b.Parameter, Activations: b.Activations, Intermediate: b.Intermediate},
	}
}

// Analyze models cfg under mode and returns both the DRAM traffic and
// the memory footprint in one call — the single entry point behind the
// deprecated DataMovement and FootprintFor wrappers, at the paper's
// operating points (65 % P1 sparsity, geometry-derived skip fraction).
// Use Trainer.Analyze for a trained run's measured operating point, and
// PlanFor for what a memory budget does to the training loop itself.
func Analyze(cfg Config, mode Mode) Analysis {
	p := defaultOptParams(cfg)
	return analyzeAt(cfg, mode, p.P1Sparsity, p.SkipFrac)
}

// Plan is a checkpointed-BPTT placement: which (h,s) columns FW keeps
// resident, the segments recomputed during BP, and the predicted peak
// bytes / recompute overhead that buys. Produce one with PlanFor or
// read a trainer's active placement with Trainer.Plan.
type Plan = memplan.Placement

// PlanFor plans checkpointed BPTT for cfg under mode within budget
// bytes — the planning half of TrainerOptions.MemoryBudget, exposed so
// callers can preview what a budget costs (Plan.RecomputeRatio,
// Plan.PredictedPeak) before committing to a training run. budget <= 0,
// or one the full-storage peak already fits, returns the trivial
// single-segment placement (Plan.FullStorage() == true); a budget no
// placement can satisfy returns Plan.Feasible == false.
func PlanFor(cfg Config, mode Mode, budget int64) Plan {
	return memplan.Plan(cfg, memMode(mode), budget)
}

// DataMovement returns the modeled per-step DRAM traffic of cfg under
// the given mode at the paper's operating points.
//
// Deprecated: use Analyze, which returns the traffic and the footprint
// from one mode dispatch.
func DataMovement(cfg Config, mode Mode) Movement { return Analyze(cfg, mode).Movement }

// FootprintFor returns the modeled footprint of cfg under mode at the
// paper's operating points (use Trainer.Footprint for a trained run's
// measured point).
//
// Deprecated: use Analyze, which returns the footprint and the traffic
// from one mode dispatch.
func FootprintFor(cfg Config, mode Mode) Footprint { return Analyze(cfg, mode).Footprint }

// SetWorkers sets the kernel-level parallelism: how many goroutines a
// single tensor kernel (MatMul, element-wise ops) may fan out to
// (clamped to >= 1). It returns the previous value. This is the inner
// of the two parallelism levels — TrainerOptions.Workers controls the
// outer, replica level. The two multiply: total concurrency is roughly
// replicas × kernel workers, so on a machine with C cores the usual
// tunings are {Workers: C, SetWorkers(1)} for epoch throughput on small
// models (replica parallelism has less synchronization overhead than
// per-kernel fan-out) or {Workers: 1, SetWorkers(C)} for the lowest
// single-batch latency on large models. The default — Workers derived
// from NumCPU and kernel workers at GOMAXPROCS — oversubscribes mildly,
// which the Go scheduler absorbs; pin one of the two levels to 1 when
// profiling.
func SetWorkers(n int) int { return tensor.SetWorkers(n) }

// Workers returns the current kernel-level parallelism (see SetWorkers).
func Workers() int { return tensor.Workers() }

// SaveNetwork writes a trained network to path in the versioned binary
// checkpoint format (CRC-protected, atomic rename).
func SaveNetwork(path string, net *Network) error {
	return persist.SaveFile(path, net)
}

// LoadNetwork reads a checkpoint written by SaveNetwork.
func LoadNetwork(path string) (*Network, error) {
	return persist.LoadFile(path)
}

// CheckConfig compares a loaded checkpoint's geometry against the
// caller's expectation and reports every differing field by name with
// got/want values (nil when they match).
func CheckConfig(got, want Config) error { return persist.CheckConfig(got, want) }

// Server is a model inference server: it loads one checkpoint and
// serves it over HTTP+JSON, coalescing concurrent requests into dense
// micro-batches (see internal/serve and DESIGN.md §9).
type Server = serve.Server

// ServeOptions tunes a Server; zero values select sensible defaults
// (MaxBatch 32, 2ms batching window, worker pool sized from NumCPU).
type ServeOptions = serve.Options

// ServeStats is a Server's self-reported operational snapshot (also
// served as JSON at /statz).
type ServeStats = serve.Stats

// InferResult is one inference answer: the final-timestep output
// vector and the argmax class (-1 for regression models).
type InferResult = serve.Result

// NewServer builds an inference server around a trained network. The
// caller owns shutdown: either cancel the context given to
// Server.Serve or call Server.Close.
func NewServer(net *Network, opts ServeOptions) *Server { return serve.New(net, opts) }

// Infer answers a batch of variable-length sequences in one packed
// sweep — the library-level entry to the serving path, without the
// HTTP server or micro-batching queue.
func Infer(net *Network, seqs [][][]float32) ([]InferResult, error) {
	return serve.Infer(net, seqs)
}

// State carries recurrent state across sequence chunks for truncated
// BPTT (see Network.ForwardState / Network.ZeroState).
type State = model.State

// ForwardResult is one forward pass (see Network.Forward).
type ForwardResult = model.ForwardResult

// Gradients collects a backward pass's weight gradients.
type Gradients = model.Gradients

// BackwardOpts tunes Network.Backward.
type BackwardOpts = model.BackwardOpts

// StoragePolicy selects per-cell storage for manual training loops;
// most users should use Trainer instead.
type StoragePolicy = model.StoragePolicy

// Matrix is the dense float32 matrix inputs and targets are built from.
type Matrix = tensor.Matrix

// NewMatrix returns a zeroed rows×cols matrix.
func NewMatrix(rows, cols int) *Matrix { return tensor.New(rows, cols) }

// Corpus is tokenized user text for byte-level language modeling.
type Corpus = corpus.Corpus

// LoadCorpus tokenizes text from r for next-byte prediction with the
// given embedding width.
func LoadCorpus(r io.Reader, embedDim int, seed uint64) (*Corpus, error) {
	return corpus.Load(r, embedDim, seed)
}

// LoadCorpusFile tokenizes a text file.
func LoadCorpusFile(path string, embedDim int, seed uint64) (*Corpus, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return corpus.Load(f, embedDim, seed)
}
