package gpu

import (
	"testing"

	"etalstm/internal/trace"
	"etalstm/internal/workload"
)

// TestFig3aThroughputSaturates: throughput rises with hidden size and
// saturates (each doubling adds less).
func TestFig3aThroughputSaturates(t *testing.T) {
	dev := V100()
	var prev, prevGain float64
	for i, sc := range workload.Fig3HiddenSweep() {
		r := Step(dev, sc.Cfg)
		if r.OOM {
			t.Fatalf("%s: unexpected OOM", sc.Label)
		}
		if r.Throughput <= prev {
			t.Fatalf("%s: throughput %v must rise with hidden size (prev %v)",
				sc.Label, r.Throughput, prev)
		}
		gain := r.Throughput - prev
		if i >= 3 && gain >= prevGain {
			t.Fatalf("%s: gains must diminish toward saturation: %v vs %v", sc.Label, gain, prevGain)
		}
		prev, prevGain = r.Throughput, gain
	}
}

// TestFig3aEnergyEffPeaksThenDeclines: GFLOPS/W peaks before the
// largest hidden size and declines after.
func TestFig3aEnergyEffPeaksThenDeclines(t *testing.T) {
	dev := V100()
	var effs []float64
	for _, sc := range workload.Fig3HiddenSweep() {
		effs = append(effs, Step(dev, sc.Cfg).GFLOPSperW)
	}
	last := effs[len(effs)-1]
	peak := 0.0
	peakIdx := 0
	for i, e := range effs {
		if e > peak {
			peak, peakIdx = e, i
		}
	}
	if peakIdx == len(effs)-1 {
		t.Fatalf("energy efficiency must peak before H3072: %v", effs)
	}
	if last >= peak {
		t.Fatalf("energy efficiency must decline past saturation: %v", effs)
	}
}

// TestFig3bThroughputFlatEnergyDeclines: layer number barely moves
// throughput but erodes energy efficiency.
func TestFig3bThroughputFlatEnergyDeclines(t *testing.T) {
	dev := V100()
	var thr, eff []float64
	for _, sc := range workload.Fig3LayerSweep() {
		r := Step(dev, sc.Cfg)
		if r.OOM {
			continue // V100 32GB trains all of them per the paper
		}
		thr = append(thr, r.Throughput)
		eff = append(eff, r.GFLOPSperW)
	}
	if len(thr) != 7 {
		t.Fatalf("V100 must train all 7 layer configs, got %d", len(thr))
	}
	spread := (maxF(thr) - minF(thr)) / maxF(thr)
	if spread > 0.15 {
		t.Fatalf("throughput must vary little with layer number: spread %.3f", spread)
	}
	if eff[len(eff)-1] >= eff[0] {
		t.Fatalf("energy efficiency must decline with layer number: %v", eff)
	}
}

// TestFig3bRTX5000MemoryWall: the 16 GB RTX 5000 cannot train the 7-
// and 8-layer models (paper Sec. III-A).
func TestFig3bRTX5000MemoryWall(t *testing.T) {
	dev := RTX5000()
	for _, sc := range workload.Fig3LayerSweep() {
		r := Step(dev, sc.Cfg)
		wantOOM := sc.Cfg.Layers >= 7
		if r.OOM != wantOOM {
			t.Errorf("%s on RTX5000: OOM=%v want %v (footprint %.1f GB)",
				sc.Label, r.OOM, wantOOM, FootprintGB(sc.Cfg))
		}
	}
	// The V100's 32 GB trains all of them.
	for _, sc := range workload.Fig3LayerSweep() {
		if Step(V100(), sc.Cfg).OOM {
			t.Errorf("%s must fit the V100", sc.Label)
		}
	}
}

// TestFig3cThroughputDeclinesWithLength: longer layer lengths stretch
// the FW→BP reuse distance and drag throughput and energy efficiency
// down.
func TestFig3cThroughputDeclinesWithLength(t *testing.T) {
	dev := V100()
	var prevThr, prevEff float64
	for i, sc := range workload.Fig3LengthSweep() {
		r := Step(dev, sc.Cfg)
		if i > 0 {
			if r.Throughput >= prevThr {
				t.Fatalf("%s: throughput %v must decline with length (prev %v)",
					sc.Label, r.Throughput, prevThr)
			}
			if r.GFLOPSperW >= prevEff {
				t.Fatalf("%s: energy efficiency must decline with length", sc.Label)
			}
		}
		prevThr, prevEff = r.Throughput, r.GFLOPSperW
	}
	// The overall decline should be substantial (paper: roughly halves).
	first := Step(dev, workload.Fig3LengthSweep()[0].Cfg).Throughput
	if prevThr > first*0.75 {
		t.Fatalf("LL303 throughput %.2e should be well below LL18's %.2e", prevThr, first)
	}
}

// TestRTXSlowerThanV100: the weaker device must be slower and the
// throughput ordering must hold across the sweep.
func TestRTXSlowerThanV100(t *testing.T) {
	for _, sc := range workload.Fig3HiddenSweep() {
		v := Step(V100(), sc.Cfg)
		r := Step(RTX5000(), sc.Cfg)
		if r.Throughput >= v.Throughput {
			t.Fatalf("%s: RTX5000 %.2e must trail V100 %.2e", sc.Label, r.Throughput, v.Throughput)
		}
	}
}

func TestStepFLOPsScalesWithModel(t *testing.T) {
	base := workload.Fig3HiddenSweep()[0].Cfg
	big := base
	big.SeqLen *= 2
	if StepFLOPs(big) <= StepFLOPs(base)*1.9 {
		t.Fatal("FLOPs must scale ~linearly with sequence length")
	}
	bigger := base
	bigger.Layers++
	if StepFLOPs(bigger) <= StepFLOPs(base) {
		t.Fatal("FLOPs must grow with layers")
	}
}

// TestOptimizedStepFaster: feeding the model MS1-reduced traffic and
// FLOPs must produce a faster, lower-energy step — the software-only
// rows of Fig. 15.
func TestOptimizedStepFaster(t *testing.T) {
	cfg := workload.Fig3LengthSweep()[3].Cfg // LL151
	dev := V100()
	base := Step(dev, cfg)
	optTraffic := trace.WithMS1(cfg, 0.65)
	optFlops := StepFLOPs(cfg) * 0.8
	opt := StepOptimized(dev, cfg, optFlops, optTraffic, 0.5)
	if opt.StepSeconds >= base.StepSeconds {
		t.Fatalf("optimized step %v must beat baseline %v", opt.StepSeconds, base.StepSeconds)
	}
	if opt.EnergyJ >= base.EnergyJ {
		t.Fatal("optimized step must use less energy")
	}
}

func TestPowerWithinDeviceEnvelope(t *testing.T) {
	for _, sc := range workload.AllFig3Sweeps() {
		r := Step(V100(), sc.Cfg)
		if r.OOM {
			continue
		}
		if r.PowerW < V100().IdleW || r.PowerW > V100().TDP*1.5 {
			t.Errorf("%s: power %.1f W outside envelope", sc.Label, r.PowerW)
		}
	}
}

func TestThroughputPlausible(t *testing.T) {
	// Paper Fig. 3: V100 sustains roughly 4-11 TFLOPS on these models.
	for _, sc := range workload.AllFig3Sweeps() {
		r := Step(V100(), sc.Cfg)
		if r.OOM {
			continue
		}
		tf := r.Throughput / 1e12
		if tf < 1 || tf > 14 {
			t.Errorf("%s: %.2f TFLOPS implausible", sc.Label, tf)
		}
	}
}

func maxF(xs []float64) float64 {
	m := xs[0]
	for _, x := range xs {
		if x > m {
			m = x
		}
	}
	return m
}

func minF(xs []float64) float64 {
	m := xs[0]
	for _, x := range xs {
		if x < m {
			m = x
		}
	}
	return m
}
