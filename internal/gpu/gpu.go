// Package gpu is the analytic GPU cost model behind the paper's
// characterization (Fig. 3, 4, 5) and the Fig. 15 "Baseline" — the
// state-of-the-art GPU LSTM training the accelerator is compared
// against.
//
// The model reproduces the paper's observed *mechanisms* rather than
// micro-architectural detail:
//
//   - MatMul efficiency saturates with hidden size (thread parallelism
//     fills the SMs; Fig. 3a's rise-then-plateau);
//   - memory-subsystem congestion grows with the FW→BP reuse distance
//     of the intermediate variables, which is set by the *per-layer*
//     intermediate footprint (layer length × batch × hidden). This is
//     why throughput falls with layer length (Fig. 3c) but "varies
//     little" with layer number (Fig. 3b) — adding layers does not
//     stretch the reuse distance;
//   - DRAM/LDST power grows with both the traffic rate and the spill
//     factor of the total footprint, which is why energy efficiency
//     declines past the throughput saturation point (Fig. 3a) and with
//     layer number (Fig. 3b).
//
// Constants are calibrated against the paper's V100/RTX 5000 curves;
// see DESIGN.md §5.
package gpu

import (
	"math"

	"etalstm/internal/lstm"
	"etalstm/internal/memplan"
	"etalstm/internal/model"
	"etalstm/internal/trace"
)

// Device describes a GPU.
type Device struct {
	Name         string
	PeakFLOPS    float64 // FP32 peak
	MemBW        float64 // bytes/s
	MemBytes     int64   // device memory
	TDP          float64 // board power at full load, watts
	IdleW        float64 // static power, watts
	LaunchSec    float64 // per-kernel launch overhead
	MaxMatMulEff float64 // achievable fraction of peak on large GEMMs
}

// V100 returns the Nvidia Tesla V100 32 GB (Volta) model.
func V100() Device {
	return Device{
		Name: "V100", PeakFLOPS: 14e12, MemBW: 900e9,
		MemBytes: 32 << 30, TDP: 300, IdleW: 50,
		LaunchSec: 6e-6, MaxMatMulEff: 0.82,
	}
}

// RTX5000 returns the Nvidia Quadro RTX 5000 16 GB (Turing) model.
func RTX5000() Device {
	return Device{
		Name: "RTX5000", PeakFLOPS: 11.2e12, MemBW: 448e9,
		MemBytes: 16 << 30, TDP: 265, IdleW: 40,
		LaunchSec: 6e-6, MaxMatMulEff: 0.78,
	}
}

// PyTorchOverheadFactor maps the analytic footprint lower bound of
// internal/memplan to the observed framework footprint: PyTorch's
// op-granular autograd storage and caching allocator multiply the
// conceptual 5-planes-per-cell accounting. Calibrated so the Fig. 3b
// memory wall lands where the paper observed it (LN7/LN8 at hidden
// 2048 OOM on the 16 GB RTX 5000, fit on the 32 GB V100).
const PyTorchOverheadFactor = 5.5

// Model-calibration constants (DESIGN.md §5).
const (
	// effHalfHidden is the hidden size at which MatMul efficiency
	// reaches half its maximum (thread-parallelism saturation).
	effHalfHidden = 700.0
	// congestionCoeff scales the reuse-distance congestion term:
	// 1 + coeff·sqrt(per-layer intermediate GB).
	congestionCoeff = 1.0
	// dramPJPerByte is the effective DRAM+LDST energy per byte moved
	// (includes the load/store pipeline the paper saw saturating).
	dramPJPerByte = 120.0
	// spillCoeff grows DRAM energy with the total footprint (cache/TLB
	// dilution): spill = 1 + coeff·footprintGB.
	spillCoeff = 0.6
	// ewKernelsPerCell approximates the element-wise kernel launches of
	// one unfused LSTM cell in FW+BP.
	ewKernelsPerCell = 10.0
)

// Result is one modeled training step.
type Result struct {
	StepSeconds float64
	FLOPs       float64
	Throughput  float64 // FLOP/s achieved
	PowerW      float64
	EnergyJ     float64
	GFLOPSperW  float64
	Traffic     trace.Movement
	OOM         bool // footprint exceeds device memory (Fig. 3b wall)
}

// StepFLOPs returns the model FLOPs of one training step of cfg
// (FW + BP over every cell, plus the output projection).
func StepFLOPs(cfg model.Config) float64 {
	var total int64
	for l := 0; l < cfg.Layers; l++ {
		in := cfg.Hidden
		if l == 0 {
			in = cfg.InputSize
		}
		fw := lstm.ForwardOps(in, cfg.Hidden, cfg.Batch)
		bp := lstm.BackwardOps(in, cfg.Hidden, cfg.Batch)
		total += (fw.FLOPs() + bp.FLOPs()) * int64(cfg.SeqLen)
	}
	steps := cfg.SeqLen
	if cfg.Loss == model.SingleLoss {
		steps = 1
	}
	// Projection forward + backward: 3 GEMMs of batch×hidden×out.
	total += int64(6*cfg.Batch*cfg.Hidden*cfg.OutSize) * int64(steps)
	return float64(total)
}

// matmulEff returns the achieved fraction of peak for the
// configuration's GEMM sizes.
func matmulEff(d Device, cfg model.Config) float64 {
	h := float64(cfg.Hidden)
	eff := d.MaxMatMulEff * h / (h + effHalfHidden)
	// Small batches cut occupancy further.
	b := float64(cfg.Batch)
	eff *= b / (b + 16)
	return eff
}

// perLayerIntermGB returns the per-layer intermediate footprint — the
// reuse-distance proxy of the congestion term.
func perLayerIntermGB(cfg model.Config) float64 {
	return float64(5*cfg.SeqLen*cfg.Batch*cfg.Hidden) * 4 / 1e9
}

// congestion returns the memory-subsystem slowdown factor.
func congestion(cfg model.Config) float64 {
	return 1 + congestionCoeff*math.Sqrt(perLayerIntermGB(cfg))
}

// footprintGB returns the framework-level footprint in GB.
func footprintGB(cfg model.Config) float64 {
	base := memplan.Footprint(cfg, memplan.Baseline, memplan.Params{}).Total()
	return float64(base) * PyTorchOverheadFactor / 1e9
}

// Step models one baseline training step of cfg on d.
func Step(d Device, cfg model.Config) Result {
	return stepWith(d, cfg, StepFLOPs(cfg), trace.Baseline(cfg), 1)
}

// StepOptimized models a training step whose software flow was changed
// by η-LSTM's memory-saving optimizations: flops and traffic reflect
// the optimized workload; intermScale scales the congestion term's
// reuse-distance proxy (MS1 compresses the traveling intermediates,
// MS2 removes the skipped cells' share).
func StepOptimized(d Device, cfg model.Config, flops float64, traffic trace.Movement, intermScale float64) Result {
	return stepWith(d, cfg, flops, traffic, intermScale)
}

func stepWith(d Device, cfg model.Config, flops float64, traffic trace.Movement, intermScale float64) Result {
	res := Result{FLOPs: flops, Traffic: traffic}
	if int64(footprintGB(cfg)*1e9) > d.MemBytes {
		res.OOM = true
		return res
	}

	eff := matmulEff(d, cfg)
	computeSec := flops / (d.PeakFLOPS * eff)

	cong := 1 + congestionCoeff*math.Sqrt(perLayerIntermGB(cfg)*intermScale)
	memSec := float64(traffic.Total()) / d.MemBW
	launches := ewKernelsPerCell * float64(2*cfg.Layers*cfg.SeqLen)
	launchSec := launches * d.LaunchSec

	res.StepSeconds = math.Max(computeSec*cong, memSec) + launchSec
	res.Throughput = flops / res.StepSeconds

	util := res.Throughput / d.PeakFLOPS
	spill := 1 + spillCoeff*footprintGB(cfg)
	trafficRate := float64(traffic.Total()) / res.StepSeconds
	memPower := trafficRate * dramPJPerByte * 1e-12 * spill
	res.PowerW = d.IdleW + (d.TDP-d.IdleW)*util + memPower
	res.EnergyJ = res.PowerW * res.StepSeconds
	res.GFLOPSperW = res.Throughput / 1e9 / res.PowerW
	return res
}

// Congestion exposes the congestion factor for tests and experiments.
func Congestion(cfg model.Config) float64 { return congestion(cfg) }

// FootprintGB exposes the framework-level footprint estimate.
func FootprintGB(cfg model.Config) float64 { return footprintGB(cfg) }
