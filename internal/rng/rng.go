// Package rng provides a small, deterministic pseudo-random number
// generator used for weight initialization and synthetic workload
// generation. Every experiment in this repository is seeded, so results
// are bit-reproducible across runs and platforms.
//
// The generator is SplitMix64 (for seeding) feeding xoshiro256**, which
// is fast, has a 2^256-1 period, and passes BigCrush. We do not use
// math/rand because we need stable cross-version streams: the Go team
// reserves the right to change math/rand's algorithm, and our recorded
// experiment outputs in EXPERIMENTS.md must stay reproducible.
package rng

import "math"

// RNG is a deterministic pseudo-random number generator. The zero value
// is not usable; construct with New.
type RNG struct {
	s [4]uint64
	// cached spare Gaussian deviate for Box-Muller
	spare    float64
	hasSpare bool
}

// New returns a generator seeded from seed. Distinct seeds produce
// decorrelated streams (SplitMix64 seeding).
func New(seed uint64) *RNG {
	r := &RNG{}
	sm := seed
	for i := range r.s {
		sm += 0x9e3779b97f4a7c15
		z := sm
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		r.s[i] = z ^ (z >> 31)
	}
	return r
}

// Split derives an independent generator from r. The derived stream is
// decorrelated from r's future output, letting callers hand independent
// sources to concurrent workers.
func (r *RNG) Split() *RNG {
	return New(r.Uint64() ^ 0xa3ec647659359acd)
}

func rotl(x uint64, k uint) uint64 { return (x << k) | (x >> (64 - k)) }

// Uint64 returns the next 64 uniformly distributed bits.
func (r *RNG) Uint64() uint64 {
	result := rotl(r.s[1]*5, 7) * 9
	t := r.s[1] << 17
	r.s[2] ^= r.s[0]
	r.s[3] ^= r.s[1]
	r.s[1] ^= r.s[2]
	r.s[0] ^= r.s[3]
	r.s[2] ^= t
	r.s[3] = rotl(r.s[3], 45)
	return result
}

// Intn returns a uniformly distributed int in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Float64 returns a uniformly distributed float64 in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Float32 returns a uniformly distributed float32 in [0, 1).
func (r *RNG) Float32() float32 {
	return float32(r.Uint64()>>40) / (1 << 24)
}

// Uniform returns a float32 uniformly distributed in [lo, hi).
func (r *RNG) Uniform(lo, hi float32) float32 {
	return lo + (hi-lo)*r.Float32()
}

// Norm returns a normally distributed float64 with mean 0 and standard
// deviation 1, using the polar Box-Muller transform.
func (r *RNG) Norm() float64 {
	if r.hasSpare {
		r.hasSpare = false
		return r.spare
	}
	for {
		u := 2*r.Float64() - 1
		v := 2*r.Float64() - 1
		s := u*u + v*v
		if s >= 1 || s == 0 {
			continue
		}
		m := math.Sqrt(-2 * math.Log(s) / s)
		r.spare = v * m
		r.hasSpare = true
		return u * m
	}
}

// Norm32 returns a normally distributed float32 with the given mean and
// standard deviation.
func (r *RNG) Norm32(mean, std float32) float32 {
	return mean + std*float32(r.Norm())
}

// Perm returns a pseudo-random permutation of [0, n).
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}
