package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a := New(42)
	b := New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("streams diverged at step %d", i)
		}
	}
}

func TestSeedsDecorrelated(t *testing.T) {
	a := New(1)
	b := New(2)
	same := 0
	for i := 0; i < 1000; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("distinct seeds produced %d identical outputs", same)
	}
}

func TestSplitIndependence(t *testing.T) {
	a := New(7)
	c := a.Split()
	// The split stream must differ from the parent's continuation.
	same := 0
	for i := 0; i < 1000; i++ {
		if a.Uint64() == c.Uint64() {
			same++
		}
	}
	if same > 5 {
		t.Fatalf("split stream tracks parent: %d collisions", same)
	}
}

func TestFloat64Range(t *testing.T) {
	r := New(3)
	for i := 0; i < 10000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of range: %v", f)
		}
	}
}

func TestFloat32Range(t *testing.T) {
	r := New(4)
	for i := 0; i < 10000; i++ {
		f := r.Float32()
		if f < 0 || f >= 1 {
			t.Fatalf("Float32 out of range: %v", f)
		}
	}
}

func TestUniformRange(t *testing.T) {
	r := New(5)
	for i := 0; i < 10000; i++ {
		f := r.Uniform(-0.5, 0.5)
		if f < -0.5 || f >= 0.5 {
			t.Fatalf("Uniform out of range: %v", f)
		}
	}
}

func TestIntnRange(t *testing.T) {
	r := New(6)
	seen := make(map[int]bool)
	for i := 0; i < 10000; i++ {
		v := r.Intn(10)
		if v < 0 || v >= 10 {
			t.Fatalf("Intn out of range: %d", v)
		}
		seen[v] = true
	}
	if len(seen) != 10 {
		t.Fatalf("Intn(10) did not cover all values: %d", len(seen))
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for Intn(0)")
		}
	}()
	New(1).Intn(0)
}

func TestNormMoments(t *testing.T) {
	r := New(8)
	const n = 200000
	var sum, sumsq float64
	for i := 0; i < n; i++ {
		v := r.Norm()
		sum += v
		sumsq += v * v
	}
	mean := sum / n
	variance := sumsq/n - mean*mean
	if math.Abs(mean) > 0.02 {
		t.Fatalf("Norm mean too far from 0: %v", mean)
	}
	if math.Abs(variance-1) > 0.03 {
		t.Fatalf("Norm variance too far from 1: %v", variance)
	}
}

func TestNorm32Parameters(t *testing.T) {
	r := New(9)
	const n = 100000
	var sum float64
	for i := 0; i < n; i++ {
		sum += float64(r.Norm32(3, 0.5))
	}
	mean := sum / n
	if math.Abs(mean-3) > 0.02 {
		t.Fatalf("Norm32 mean: got %v want ~3", mean)
	}
}

func TestPermIsPermutation(t *testing.T) {
	r := New(10)
	for _, n := range []int{0, 1, 2, 17, 100} {
		p := r.Perm(n)
		if len(p) != n {
			t.Fatalf("Perm(%d) length %d", n, len(p))
		}
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				t.Fatalf("Perm(%d) invalid: %v", n, p)
			}
			seen[v] = true
		}
	}
}

func TestUniformityChiSquare(t *testing.T) {
	// Coarse chi-square over 16 buckets; catches gross bias.
	r := New(11)
	const n = 160000
	var buckets [16]int
	for i := 0; i < n; i++ {
		buckets[r.Intn(16)]++
	}
	expected := float64(n) / 16
	var chi2 float64
	for _, c := range buckets {
		d := float64(c) - expected
		chi2 += d * d / expected
	}
	// 15 degrees of freedom; 99.9th percentile ~ 37.7.
	if chi2 > 37.7 {
		t.Fatalf("chi-square too high: %v", chi2)
	}
}

func TestPropertyFloat64AlwaysInRange(t *testing.T) {
	f := func(seed uint64, steps uint8) bool {
		r := New(seed)
		for i := 0; i < int(steps); i++ {
			v := r.Float64()
			if v < 0 || v >= 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPropertySameSeedSameStream(t *testing.T) {
	f := func(seed uint64) bool {
		a, b := New(seed), New(seed)
		for i := 0; i < 64; i++ {
			if a.Uint64() != b.Uint64() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
