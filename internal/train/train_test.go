package train

import (
	"math"
	"testing"

	"etalstm/internal/lstm"
	"etalstm/internal/model"
	"etalstm/internal/rng"
	"etalstm/internal/tensor"
)

// syntheticProvider is a tiny deterministic classification task: the
// target class is a fixed linear function of the inputs, so a working
// trainer must drive the loss down quickly.
type syntheticProvider struct {
	batches []Batch
}

func (p *syntheticProvider) NumBatches() int   { return len(p.batches) }
func (p *syntheticProvider) Batch(i int) Batch { return p.batches[i] }

func newSyntheticTask(cfg model.Config, nBatches int, seed uint64) *syntheticProvider {
	r := rng.New(seed)
	p := &syntheticProvider{}
	for b := 0; b < nBatches; b++ {
		xs := make([]*tensor.Matrix, cfg.SeqLen)
		for t := range xs {
			xs[t] = tensor.New(cfg.Batch, cfg.InputSize)
			xs[t].RandInit(r, 1)
		}
		tg := &model.Targets{Classes: make([][]int, cfg.SeqLen)}
		for t := range tg.Classes {
			tg.Classes[t] = make([]int, cfg.Batch)
			for i := range tg.Classes[t] {
				// Deterministic rule: class = sign pattern of the first
				// two features of the last input step.
				v := xs[cfg.SeqLen-1].At(i, 0)
				cls := 0
				if v > 0 {
					cls = 1
				}
				tg.Classes[t][i] = cls
			}
		}
		p.batches = append(p.batches, Batch{Inputs: xs, Targets: tg})
	}
	return p
}

func smallConfig() model.Config {
	return model.Config{
		InputSize: 4, Hidden: 8, Layers: 2, SeqLen: 5,
		Batch: 8, OutSize: 2, Loss: model.SingleLoss,
	}
}

func TestSGDReducesLoss(t *testing.T) {
	cfg := smallConfig()
	r := rng.New(42)
	net, _ := model.NewNetwork(cfg, r)
	prov := newSyntheticTask(cfg, 4, 7)
	tr := &Trainer{Net: net, Opt: &SGD{LR: 0.5}, Clip: 5}
	stats, err := tr.Run(prov, 30)
	if err != nil {
		t.Fatal(err)
	}
	first, last := stats[0].MeanLoss, stats[len(stats)-1].MeanLoss
	if last >= first*0.8 {
		t.Fatalf("SGD failed to learn: first %v last %v", first, last)
	}
}

func TestMomentumReducesLoss(t *testing.T) {
	cfg := smallConfig()
	r := rng.New(43)
	net, _ := model.NewNetwork(cfg, r)
	prov := newSyntheticTask(cfg, 4, 8)
	tr := &Trainer{Net: net, Opt: &SGD{LR: 0.1, Momentum: 0.9}, Clip: 5}
	stats, err := tr.Run(prov, 12)
	if err != nil {
		t.Fatal(err)
	}
	if stats[len(stats)-1].MeanLoss >= stats[0].MeanLoss {
		t.Fatal("momentum SGD failed to reduce loss")
	}
}

func TestAdamReducesLoss(t *testing.T) {
	cfg := smallConfig()
	r := rng.New(44)
	net, _ := model.NewNetwork(cfg, r)
	prov := newSyntheticTask(cfg, 4, 9)
	tr := &Trainer{Net: net, Opt: &Adam{LR: 0.01}, Clip: 5}
	stats, err := tr.Run(prov, 12)
	if err != nil {
		t.Fatal(err)
	}
	if stats[len(stats)-1].MeanLoss >= stats[0].MeanLoss*0.8 {
		t.Fatalf("Adam failed to learn: %v -> %v", stats[0].MeanLoss, stats[len(stats)-1].MeanLoss)
	}
}

func TestEpochLossesRecorded(t *testing.T) {
	cfg := smallConfig()
	r := rng.New(45)
	net, _ := model.NewNetwork(cfg, r)
	prov := newSyntheticTask(cfg, 2, 10)
	tr := &Trainer{Net: net, Opt: &SGD{LR: 0.1}}
	if _, err := tr.Run(prov, 3); err != nil {
		t.Fatal(err)
	}
	if len(tr.EpochLosses) != 3 {
		t.Fatalf("EpochLosses: %d", len(tr.EpochLosses))
	}
}

func TestPolicyHookInvoked(t *testing.T) {
	cfg := smallConfig()
	r := rng.New(46)
	net, _ := model.NewNetwork(cfg, r)
	prov := newSyntheticTask(cfg, 2, 11)
	epochs := []int{}
	tr := &Trainer{
		Net: net, Opt: &SGD{LR: 0.1},
		PolicyFor: func(e int) model.StoragePolicy {
			epochs = append(epochs, e)
			return model.P1Policy()
		},
	}
	if _, err := tr.Run(prov, 2); err != nil {
		t.Fatal(err)
	}
	if len(epochs) != 2 || epochs[0] != 0 || epochs[1] != 1 {
		t.Fatalf("PolicyFor calls: %v", epochs)
	}
}

func TestOnGradientsHook(t *testing.T) {
	cfg := smallConfig()
	r := rng.New(47)
	net, _ := model.NewNetwork(cfg, r)
	prov := newSyntheticTask(cfg, 2, 12)
	calls := 0
	tr := &Trainer{
		Net: net, Opt: &SGD{LR: 0.1},
		OnGradients: func(e, b int, g *model.Gradients) { calls++ },
	}
	if _, err := tr.RunEpoch(prov, 0); err != nil {
		t.Fatal(err)
	}
	if calls != 2 {
		t.Fatalf("OnGradients calls: %d", calls)
	}
}

func TestP1PolicyTrainsIdentically(t *testing.T) {
	// MS1 is exact: training under the P1 policy must produce the same
	// weights as the baseline policy, step for step.
	cfg := smallConfig()
	prov := newSyntheticTask(cfg, 3, 13)

	r1 := rng.New(48)
	netA, _ := model.NewNetwork(cfg, r1)
	trA := &Trainer{Net: netA, Opt: &SGD{LR: 0.2}}
	if _, err := trA.Run(prov, 3); err != nil {
		t.Fatal(err)
	}

	r2 := rng.New(48)
	netB, _ := model.NewNetwork(cfg, r2)
	trB := &Trainer{
		Net: netB, Opt: &SGD{LR: 0.2},
		PolicyFor: func(int) model.StoragePolicy { return model.P1Policy() },
	}
	if _, err := trB.Run(prov, 3); err != nil {
		t.Fatal(err)
	}

	for l := range netA.Layer {
		for g := lstm.Gate(0); g < lstm.NumGates; g++ {
			if !netA.Layer[l].W[g].Equal(netB.Layer[l].W[g], 1e-4) {
				t.Fatalf("layer %d W[%v] diverged between baseline and P1 training", l, g)
			}
		}
	}
}

func TestClipGradients(t *testing.T) {
	cfg := smallConfig()
	r := rng.New(49)
	net, _ := model.NewNetwork(cfg, r)
	g := net.NewGradients()
	g.Proj.Fill(100)
	norm := ClipGradients(g, 1)
	if norm <= 1 {
		t.Fatalf("expected large pre-clip norm, got %v", norm)
	}
	var sq float64
	for _, v := range g.Proj.Data {
		sq += float64(v) * float64(v)
	}
	if math.Sqrt(sq) > 1.0001 {
		t.Fatalf("post-clip norm %v > 1", math.Sqrt(sq))
	}
}

func TestClipNoopBelowThreshold(t *testing.T) {
	cfg := smallConfig()
	r := rng.New(50)
	net, _ := model.NewNetwork(cfg, r)
	g := net.NewGradients()
	g.Proj.Set(0, 0, 0.5)
	ClipGradients(g, 10)
	if g.Proj.At(0, 0) != 0.5 {
		t.Fatal("clip must not rescale small gradients")
	}
}

func TestEvaluateAccuracy(t *testing.T) {
	cfg := smallConfig()
	r := rng.New(51)
	net, _ := model.NewNetwork(cfg, r)
	prov := newSyntheticTask(cfg, 4, 14)
	tr := &Trainer{Net: net, Opt: &Adam{LR: 0.02}, Clip: 5}
	if _, err := tr.Run(prov, 25); err != nil {
		t.Fatal(err)
	}
	_, acc, err := Evaluate(net, prov)
	if err != nil {
		t.Fatal(err)
	}
	if acc < 0.8 {
		t.Fatalf("trained accuracy too low: %v", acc)
	}
}

func TestEvaluateMAERequiresRegression(t *testing.T) {
	cfg := smallConfig()
	r := rng.New(52)
	net, _ := model.NewNetwork(cfg, r)
	if _, err := EvaluateMAE(net, newSyntheticTask(cfg, 1, 15)); err == nil {
		t.Fatal("expected error for non-regression model")
	}
}

func TestBLEUPerfectMatch(t *testing.T) {
	seq := []int{1, 2, 3, 4, 5, 6}
	if got := BLEU(seq, seq); math.Abs(got-1) > 1e-9 {
		t.Fatalf("BLEU(identical) = %v", got)
	}
}

func TestBLEUDisjoint(t *testing.T) {
	a := []int{1, 2, 3, 4, 5}
	b := []int{6, 7, 8, 9, 10}
	if got := BLEU(a, b); got > 0.2 {
		t.Fatalf("BLEU(disjoint) too high: %v", got)
	}
}

func TestBLEUBrevityPenalty(t *testing.T) {
	ref := []int{1, 2, 3, 4, 5, 6, 7, 8}
	short := []int{1, 2, 3, 4}
	full := []int{1, 2, 3, 4, 5, 6, 7, 8}
	if BLEU(short, ref) >= BLEU(full, ref) {
		t.Fatal("brevity penalty must penalize short candidates")
	}
}

func TestBLEUEmpty(t *testing.T) {
	if BLEU(nil, []int{1}) != 0 || BLEU([]int{1}, nil) != 0 {
		t.Fatal("empty sequences must score 0")
	}
}

func TestCorpusBLEURange(t *testing.T) {
	c := [][]int{{1, 2, 3, 4}, {5, 6, 7, 8}}
	got := CorpusBLEU(c, c)
	if math.Abs(got-100) > 1e-9 {
		t.Fatalf("CorpusBLEU(identical) = %v", got)
	}
	if CorpusBLEU(nil, nil) != 0 {
		t.Fatal("empty corpus must score 0")
	}
}

func TestTrainerRequiresNetAndOpt(t *testing.T) {
	tr := &Trainer{}
	if _, err := tr.RunEpoch(&syntheticProvider{}, 0); err == nil {
		t.Fatal("expected error for missing Net/Opt")
	}
}

func TestOptimizerNames(t *testing.T) {
	if (&SGD{LR: 0.1}).Name() == "" || (&Adam{LR: 0.1}).Name() == "" {
		t.Fatal("optimizers must have names")
	}
}
