package train

import "etalstm/internal/model"

// GradientSync is the transport seam of the all-reduce path: it merges
// the gradient contributions of one optimizer step — the local replicas'
// sets plus whatever the transport adds (remote workers' contributions,
// late gradients folded from earlier steps) — into the single gradient
// set the Reducer applies.
//
// The contract mirrors the tree all-reduce it replaces:
//
//   - local is this process's per-replica gradient sets in slot order;
//     implementations may mutate them (the in-process reduction
//     accumulates in place).
//   - The returned gradient set is the step's merged sum and the int is
//     the number of replica contributions it represents — the divisor
//     the Reducer averages by. Over a distributed transport this counts
//     every process's contributions, not just the local ones.
//   - The returned set may alias local[0] (in-process) or an internal
//     receive buffer reused between steps (wire transports); it is only
//     valid until the next Reduce call and the Reducer may mutate it.
//
// Implementations live in internal/dist: Inproc is the deterministic
// tree all-reduce the engine always used (bitwise identical, proven by
// the golden reproducibility tests), Compressed sparsifies each
// contribution with error feedback before merging, and Worker ships
// contributions to a TCP coordinator that merges and broadcasts.
type GradientSync interface {
	// Reduce merges one step's contributions; see the type comment for
	// the aliasing and mutation rules.
	Reduce(local []*model.Gradients) (*model.Gradients, int, error)
	// Close releases transport resources (network connections, buffers).
	// The in-process implementations are no-ops.
	Close() error
}
