// Package train drives LSTM training: optimizers (SGD, momentum, Adam),
// gradient clipping, an epoch loop over minibatch providers, and the
// evaluation metrics of paper Table II (accuracy, perplexity, MAE, and
// a BLEU-style n-gram score).
package train

import (
	"fmt"
	"math"

	"etalstm/internal/lstm"
	"etalstm/internal/model"
	"etalstm/internal/tensor"
)

// Optimizer applies accumulated gradients to a network's parameters.
type Optimizer interface {
	// Step applies grads to net and advances the optimizer state.
	Step(net *model.Network, grads *model.Gradients)
	// Name identifies the optimizer in logs and experiment records.
	Name() string
}

// SGD is plain stochastic gradient descent with optional momentum.
type SGD struct {
	LR       float32
	Momentum float32

	vel *velocity
}

// velocity mirrors the parameter shapes for momentum accumulation.
type velocity struct {
	layerW, layerU [][]*tensor.Matrix
	layerB         [][][]float32
	proj           *tensor.Matrix
	projB          []float32
}

func newVelocity(net *model.Network) *velocity {
	v := &velocity{
		proj:  tensor.New(net.Proj.Rows, net.Proj.Cols),
		projB: make([]float32, len(net.ProjB)),
	}
	for _, p := range net.Layer {
		var ws, us []*tensor.Matrix
		var bs [][]float32
		for g := lstm.Gate(0); g < lstm.NumGates; g++ {
			ws = append(ws, tensor.New(p.W[g].Rows, p.W[g].Cols))
			us = append(us, tensor.New(p.U[g].Rows, p.U[g].Cols))
			bs = append(bs, make([]float32, len(p.B[g])))
		}
		v.layerW = append(v.layerW, ws)
		v.layerU = append(v.layerU, us)
		v.layerB = append(v.layerB, bs)
	}
	return v
}

// Name implements Optimizer.
func (s *SGD) Name() string { return fmt.Sprintf("sgd(lr=%g,mom=%g)", s.LR, s.Momentum) }

// Step implements Optimizer.
func (s *SGD) Step(net *model.Network, grads *model.Gradients) {
	if s.Momentum != 0 && s.vel == nil {
		s.vel = newVelocity(net)
	}
	applyVec := func(param, grad, vel []float32) {
		for i := range param {
			g := grad[i]
			if vel != nil {
				vel[i] = s.Momentum*vel[i] + g
				g = vel[i]
			}
			param[i] -= s.LR * g
		}
	}
	for l, p := range net.Layer {
		for g := lstm.Gate(0); g < lstm.NumGates; g++ {
			var vw, vu []float32
			var vb []float32
			if s.vel != nil {
				vw = s.vel.layerW[l][g].Data
				vu = s.vel.layerU[l][g].Data
				vb = s.vel.layerB[l][g]
			}
			applyVec(p.W[g].Data, grads.Layer[l].W[g].Data, vw)
			applyVec(p.U[g].Data, grads.Layer[l].U[g].Data, vu)
			applyVec(p.B[g], grads.Layer[l].B[g], vb)
		}
	}
	var vp []float32
	var vpb []float32
	if s.vel != nil {
		vp = s.vel.proj.Data
		vpb = s.vel.projB
	}
	applyVec(net.Proj.Data, grads.Proj.Data, vp)
	applyVec(net.ProjB, grads.ProjB, vpb)
}

// Adam implements the Adam optimizer (Kingma & Ba). The zero value is
// not usable; set LR (and optionally the betas) before the first Step.
type Adam struct {
	LR    float32
	Beta1 float32 // default 0.9
	Beta2 float32 // default 0.999
	Eps   float32 // default 1e-8

	t    int
	m, v *velocity
}

// Name implements Optimizer.
func (a *Adam) Name() string { return fmt.Sprintf("adam(lr=%g)", a.LR) }

// Step implements Optimizer.
func (a *Adam) Step(net *model.Network, grads *model.Gradients) {
	if a.Beta1 == 0 {
		a.Beta1 = 0.9
	}
	if a.Beta2 == 0 {
		a.Beta2 = 0.999
	}
	if a.Eps == 0 {
		a.Eps = 1e-8
	}
	if a.m == nil {
		a.m = newVelocity(net)
		a.v = newVelocity(net)
	}
	a.t++
	bc1 := 1 - float32(math.Pow(float64(a.Beta1), float64(a.t)))
	bc2 := 1 - float32(math.Pow(float64(a.Beta2), float64(a.t)))

	applyVec := func(param, grad, m, v []float32) {
		for i := range param {
			g := grad[i]
			m[i] = a.Beta1*m[i] + (1-a.Beta1)*g
			v[i] = a.Beta2*v[i] + (1-a.Beta2)*g*g
			mh := m[i] / bc1
			vh := v[i] / bc2
			param[i] -= a.LR * mh / (float32(math.Sqrt(float64(vh))) + a.Eps)
		}
	}
	for l, p := range net.Layer {
		for g := lstm.Gate(0); g < lstm.NumGates; g++ {
			applyVec(p.W[g].Data, grads.Layer[l].W[g].Data, a.m.layerW[l][g].Data, a.v.layerW[l][g].Data)
			applyVec(p.U[g].Data, grads.Layer[l].U[g].Data, a.m.layerU[l][g].Data, a.v.layerU[l][g].Data)
			applyVec(p.B[g], grads.Layer[l].B[g], a.m.layerB[l][g], a.v.layerB[l][g])
		}
	}
	applyVec(net.Proj.Data, grads.Proj.Data, a.m.proj.Data, a.v.proj.Data)
	applyVec(net.ProjB, grads.ProjB, a.m.projB, a.v.projB)
}

// ClipGradients rescales all gradients so their global L2 norm does not
// exceed maxNorm (the standard defence against LSTM gradient blow-up).
// It returns the pre-clip norm.
func ClipGradients(grads *model.Gradients, maxNorm float64) float64 {
	var sq float64
	add := func(v float32) { sq += float64(v) * float64(v) }
	for _, lg := range grads.Layer {
		for g := lstm.Gate(0); g < lstm.NumGates; g++ {
			for _, v := range lg.W[g].Data {
				add(v)
			}
			for _, v := range lg.U[g].Data {
				add(v)
			}
			for _, v := range lg.B[g] {
				add(v)
			}
		}
	}
	for _, v := range grads.Proj.Data {
		add(v)
	}
	for _, v := range grads.ProjB {
		add(v)
	}
	norm := math.Sqrt(sq)
	if norm <= maxNorm || norm == 0 {
		return norm
	}
	scale := float32(maxNorm / norm)
	for _, lg := range grads.Layer {
		lg.Scale(scale)
	}
	tensor.Scale(grads.Proj, grads.Proj, scale)
	for i := range grads.ProjB {
		grads.ProjB[i] *= scale
	}
	return norm
}
