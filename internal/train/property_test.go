package train

import (
	"math"
	"testing"
	"testing/quick"

	"etalstm/internal/lstm"
	"etalstm/internal/model"
	"etalstm/internal/rng"
	"etalstm/internal/tensor"
)

func randomGrads(t *testing.T, seed uint64) (*model.Network, *model.Gradients) {
	t.Helper()
	cfg := model.Config{InputSize: 3, Hidden: 4, Layers: 2, SeqLen: 2,
		Batch: 2, OutSize: 3, Loss: model.SingleLoss}
	net, err := model.NewNetwork(cfg, rng.New(seed))
	if err != nil {
		t.Fatal(err)
	}
	g := net.NewGradients()
	r := rng.New(seed ^ 0xdead)
	for l := range g.Layer {
		for gate := lstm.Gate(0); gate < lstm.NumGates; gate++ {
			g.Layer[l].W[gate].RandInit(r, 2)
			g.Layer[l].U[gate].RandInit(r, 2)
			for j := range g.Layer[l].B[gate] {
				g.Layer[l].B[gate][j] = r.Uniform(-2, 2)
			}
		}
	}
	g.Proj.RandInit(r, 2)
	return net, g
}

// Property: clipping is idempotent — clipping an already-clipped
// gradient set changes nothing.
func TestPropertyClipIdempotent(t *testing.T) {
	f := func(seed uint64) bool {
		_, g := randomGrads(t, seed)
		ClipGradients(g, 1)
		before := g.Proj.Clone()
		norm := ClipGradients(g, 1)
		return norm <= 1.0001 && g.Proj.Equal(before, 1e-7)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

// Property: an Adam first step moves every parameter opposite its
// gradient's sign (for non-tiny gradients).
func TestPropertyAdamFirstStepDirection(t *testing.T) {
	f := func(seed uint64) bool {
		net, g := randomGrads(t, seed)
		before := net.Proj.Clone()
		opt := &Adam{LR: 0.01}
		opt.Step(net, g)
		for i, grad := range g.Proj.Data {
			if math.Abs(float64(grad)) < 1e-3 {
				continue
			}
			delta := net.Proj.Data[i] - before.Data[i]
			if grad > 0 && delta >= 0 {
				return false
			}
			if grad < 0 && delta <= 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

// Property: SGD without momentum is exactly param -= lr·grad.
func TestPropertySGDExactUpdate(t *testing.T) {
	f := func(seed uint64) bool {
		net, g := randomGrads(t, seed)
		before := net.Proj.Clone()
		opt := &SGD{LR: 0.1}
		opt.Step(net, g)
		for i := range net.Proj.Data {
			want := before.Data[i] - 0.1*g.Proj.Data[i]
			if math.Abs(float64(net.Proj.Data[i]-want)) > 1e-6 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

// TestDivergenceGuard: a ridiculous learning rate must be caught as a
// non-finite loss error rather than silently training on NaNs.
func TestDivergenceGuard(t *testing.T) {
	cfg := model.Config{InputSize: 4, Hidden: 8, Layers: 2, SeqLen: 6,
		Batch: 8, OutSize: 4, Loss: model.RegressionLoss}
	net, err := model.NewNetwork(cfg, rng.New(9))
	if err != nil {
		t.Fatal(err)
	}
	prov := &explodingProvider{cfg: cfg}
	tr := &Trainer{Net: net, Opt: &SGD{LR: 1e6}}
	_, runErr := tr.Run(prov, 50)
	if runErr == nil {
		t.Fatal("expected divergence to surface as an error")
	}
}

// explodingProvider feeds large-magnitude regression targets that make
// an LR=1e6 SGD run blow up quickly.
type explodingProvider struct {
	cfg model.Config
}

func (p *explodingProvider) NumBatches() int { return 2 }

func (p *explodingProvider) Batch(i int) Batch {
	r := rng.New(uint64(i) + 1)
	b := Batch{Targets: &model.Targets{}}
	for t := 0; t < p.cfg.SeqLen; t++ {
		x := tensor.New(p.cfg.Batch, p.cfg.InputSize)
		x.RandInit(r, 10)
		b.Inputs = append(b.Inputs, x)
		tgt := tensor.New(p.cfg.Batch, p.cfg.OutSize)
		tgt.RandInit(r, 100)
		b.Targets.Regress = append(b.Targets.Regress, tgt)
	}
	return b
}
