package train

import "etalstm/internal/model"

// Reducer is the final stage of a training step: it receives the merged
// gradients of one optimizer step (the sum over one or more replica
// contributions) and is responsible for everything between BP and the
// weight update — averaging, clipping, and the optimizer application.
// The serial trainer uses it with replicas == 1; the data-parallel
// engine (internal/parallel) feeds it tree-reduced sums. Implementing
// this interface is the extension point for future multi-backend or
// sharded reducers.
type Reducer interface {
	// Apply consumes grads (the summed contribution of `replicas`
	// gradient sets) and updates net. Implementations may mutate grads.
	Apply(net *model.Network, grads *model.Gradients, replicas int)
}

// ClipStep is the standard reducer: average the summed gradients over
// the contributing replicas, clip the global L2 norm to Clip (<= 0
// disables clipping), and apply Opt. With replicas == 1 the averaging
// is skipped entirely, so a serial step is bit-for-bit the classic
// clip-then-step sequence.
type ClipStep struct {
	Opt  Optimizer
	Clip float64

	// OnApply, when non-nil, observes each step's pre-clip global L2
	// norm and whether clipping actually rescaled. It is only invoked
	// when Clip > 0 — with clipping disabled the norm is never computed,
	// and the hook stays free.
	OnApply func(norm float64, clipped bool)
}

// Apply implements Reducer.
func (c ClipStep) Apply(net *model.Network, grads *model.Gradients, replicas int) {
	if replicas > 1 {
		grads.Scale(1 / float32(replicas))
	}
	if c.Clip > 0 {
		norm := ClipGradients(grads, c.Clip)
		if c.OnApply != nil {
			c.OnApply(norm, norm > c.Clip)
		}
	}
	c.Opt.Step(net, grads)
}
