package train

import "math"

// BLEU computes a BLEU-style score between a candidate token sequence
// and a reference: geometric mean of 1..4-gram precisions with a
// brevity penalty. This is the metric shape of paper Table II's WMT
// row; we use it to compare baseline vs optimized translations of the
// synthetic MT task.
func BLEU(candidate, reference []int) float64 {
	if len(candidate) == 0 || len(reference) == 0 {
		return 0
	}
	const maxN = 4
	logSum := 0.0
	for n := 1; n <= maxN; n++ {
		p := ngramPrecision(candidate, reference, n)
		if p == 0 {
			// Standard smoothing: substitute a tiny precision so a
			// single missing n-gram order doesn't zero the score.
			p = 1.0 / float64(2*len(candidate))
		}
		logSum += math.Log(p)
	}
	score := math.Exp(logSum / maxN)
	// Brevity penalty.
	c, r := float64(len(candidate)), float64(len(reference))
	if c < r {
		score *= math.Exp(1 - r/c)
	}
	return score
}

func ngramPrecision(candidate, reference []int, n int) float64 {
	if len(candidate) < n {
		return 0
	}
	refCounts := make(map[string]int)
	for i := 0; i+n <= len(reference); i++ {
		refCounts[ngramKey(reference[i:i+n])]++
	}
	matches, total := 0, 0
	for i := 0; i+n <= len(candidate); i++ {
		total++
		k := ngramKey(candidate[i : i+n])
		if refCounts[k] > 0 {
			refCounts[k]--
			matches++
		}
	}
	if total == 0 {
		return 0
	}
	return float64(matches) / float64(total)
}

func ngramKey(toks []int) string {
	// Tokens are small vocab indices; a byte-packed key is cheap and
	// collision-free for vocab < 2^16.
	b := make([]byte, 0, 2*len(toks))
	for _, t := range toks {
		b = append(b, byte(t), byte(t>>8))
	}
	return string(b)
}

// CorpusBLEU averages sentence BLEU over aligned candidate/reference
// pairs, scaled by 100 to the conventional range.
func CorpusBLEU(candidates, references [][]int) float64 {
	if len(candidates) == 0 || len(candidates) != len(references) {
		return 0
	}
	var s float64
	for i := range candidates {
		s += BLEU(candidates[i], references[i])
	}
	return 100 * s / float64(len(candidates))
}
