package train

import (
	"fmt"
	"math"

	"etalstm/internal/model"
	"etalstm/internal/tensor"
)

// Batch is one minibatch of inputs and supervision.
type Batch struct {
	Inputs  []*tensor.Matrix // SeqLen entries, each Batch×InputSize
	Targets *model.Targets
}

// Provider supplies the minibatches of one epoch. Implementations live
// in internal/workload.
type Provider interface {
	// NumBatches returns how many batches one epoch visits.
	NumBatches() int
	// Batch returns batch i (0 ≤ i < NumBatches). Implementations may
	// reuse buffers between calls; the trainer consumes each batch
	// fully before requesting the next.
	Batch(i int) Batch
}

// Trainer runs epochs of forward/backward/update. The two function
// hooks are where η-LSTM's software optimizations attach without the
// trainer knowing about them:
//
//   - PolicyFor chooses the per-cell storage policy for an epoch
//     (baseline, MS1's P1 policy, MS2's skip plan, or the combination);
//   - OnGradients edits gradients after BP and before clipping — MS2's
//     convergence-aware scaling applies here.
type Trainer struct {
	Net  *model.Network
	Opt  Optimizer
	Clip float64 // max gradient L2 norm; 0 disables clipping

	PolicyFor   func(epoch int) model.StoragePolicy
	OnGradients func(epoch, batch int, grads *model.Gradients)

	// EpochLosses records the mean loss of every completed epoch —
	// the history MS2's loss predictor (paper Eq. 5) extrapolates.
	EpochLosses []float64
}

// EpochStats summarizes one training epoch.
type EpochStats struct {
	Epoch         int
	MeanLoss      float64
	Batches       int
	SkippedCells  int
	ExecutedCells int
}

// RunEpoch trains over every batch of p once and records the epoch's
// mean loss.
func (tr *Trainer) RunEpoch(p Provider, epoch int) (EpochStats, error) {
	if tr.Net == nil || tr.Opt == nil {
		return EpochStats{}, fmt.Errorf("train: Trainer requires Net and Opt")
	}
	var policy model.StoragePolicy
	if tr.PolicyFor != nil {
		policy = tr.PolicyFor(epoch)
	}

	stats := EpochStats{Epoch: epoch}
	var totalLoss float64
	for b := 0; b < p.NumBatches(); b++ {
		batch := p.Batch(b)
		res, err := tr.Net.Forward(batch.Inputs, batch.Targets, policy)
		if err != nil {
			return stats, fmt.Errorf("train: epoch %d batch %d forward: %w", epoch, b, err)
		}
		if math.IsNaN(res.Loss) || math.IsInf(res.Loss, 0) {
			return stats, fmt.Errorf("train: epoch %d batch %d: non-finite loss %v (diverged; lower the learning rate)",
				epoch, b, res.Loss)
		}
		grads := tr.Net.NewGradients()
		if err := tr.Net.Backward(res, policy, grads, model.BackwardOpts{}); err != nil {
			return stats, fmt.Errorf("train: epoch %d batch %d backward: %w", epoch, b, err)
		}
		if tr.OnGradients != nil {
			tr.OnGradients(epoch, b, grads)
		}
		if tr.Clip > 0 {
			ClipGradients(grads, tr.Clip)
		}
		tr.Opt.Step(tr.Net, grads)

		totalLoss += res.Loss
		stats.Batches++
		stats.SkippedCells += grads.SkippedCells
		stats.ExecutedCells += grads.ExecutedCells
	}
	if stats.Batches > 0 {
		stats.MeanLoss = totalLoss / float64(stats.Batches)
	}
	tr.EpochLosses = append(tr.EpochLosses, stats.MeanLoss)
	return stats, nil
}

// Run trains for epochs epochs and returns the per-epoch statistics.
func (tr *Trainer) Run(p Provider, epochs int) ([]EpochStats, error) {
	out := make([]EpochStats, 0, epochs)
	for e := 0; e < epochs; e++ {
		st, err := tr.RunEpoch(p, e)
		if err != nil {
			return out, err
		}
		out = append(out, st)
	}
	return out, nil
}

// Evaluate runs forward-only over p and returns the mean loss plus
// classification accuracy where applicable (loss kinds with class
// targets; NaN-free: accuracy is 0 for regression).
func Evaluate(net *model.Network, p Provider) (meanLoss, accuracy float64, err error) {
	var totalLoss float64
	correct, seen := 0, 0
	for b := 0; b < p.NumBatches(); b++ {
		batch := p.Batch(b)
		res, ferr := net.Forward(batch.Inputs, batch.Targets, nil)
		if ferr != nil {
			return 0, 0, ferr
		}
		totalLoss += res.Loss
		if net.Cfg.Loss == model.RegressionLoss {
			continue
		}
		// Accuracy over the evaluated timesteps.
		for t, logits := range res.Logits {
			if logits == nil {
				continue
			}
			var tgt []int
			if net.Cfg.Loss == model.SingleLoss {
				tgt = batch.Targets.Classes[len(batch.Targets.Classes)-1]
			} else {
				tgt = batch.Targets.Classes[t]
			}
			pred := model.Argmax(logits)
			for i, want := range tgt {
				if want < 0 {
					continue
				}
				seen++
				if pred[i] == want {
					correct++
				}
			}
		}
	}
	n := p.NumBatches()
	if n > 0 {
		meanLoss = totalLoss / float64(n)
	}
	if seen > 0 {
		accuracy = float64(correct) / float64(seen)
	}
	return meanLoss, accuracy, nil
}

// EvaluateMAE runs forward-only and returns the mean absolute error for
// regression models (the WAYMO metric of Table II).
func EvaluateMAE(net *model.Network, p Provider) (float64, error) {
	if net.Cfg.Loss != model.RegressionLoss {
		return 0, fmt.Errorf("train: EvaluateMAE requires a regression model")
	}
	var total float64
	var steps int
	for b := 0; b < p.NumBatches(); b++ {
		batch := p.Batch(b)
		res, err := net.Forward(batch.Inputs, batch.Targets, nil)
		if err != nil {
			return 0, err
		}
		for t, logits := range res.Logits {
			if logits == nil {
				continue
			}
			total += model.MeanAbsoluteError(logits, batch.Targets.Regress[t])
			steps++
		}
	}
	if steps == 0 {
		return 0, nil
	}
	return total / float64(steps), nil
}
