package dist

import (
	"bytes"
	"encoding/binary"
	"sync"
	"testing"
	"time"

	"etalstm/internal/model"
	"etalstm/internal/rtrace"
)

// TestFrameVersionCompat pins the wire compatibility contract: v1
// frames (no trace context) still decode, v2 frames round-trip their
// 25-byte trace context, and a frame decoded at either version
// re-encodes to its exact original bytes.
func TestFrameVersionCompat(t *testing.T) {
	// A hand-built v1 frame, as an old peer would emit it.
	var v1 []byte
	body := []byte("payload")
	v1 = binary.BigEndian.AppendUint32(v1, uint32(frameHeader+len(body)))
	v1 = append(v1, 1, byte(FrameGrads))
	v1 = binary.BigEndian.AppendUint32(v1, 7)
	v1 = append(v1, body...)

	f, n, err := DecodeFrame(v1)
	if err != nil {
		t.Fatalf("v1 frame rejected: %v", err)
	}
	if n != len(v1) {
		t.Fatalf("v1 consumed %d of %d bytes", n, len(v1))
	}
	if f.Ver != 1 || f.Type != FrameGrads || f.Step != 7 || !bytes.Equal(f.Body, body) {
		t.Fatalf("v1 decode: %+v", f)
	}
	if f.Traced() || f.Sampled() {
		t.Fatalf("v1 frame must carry a zero trace context: %+v", f)
	}
	if re := AppendFrame(nil, f); !bytes.Equal(re, v1) {
		t.Fatalf("v1 re-encode mismatch:\n got %x\nwant %x", re, v1)
	}

	// A v2 frame with a trace context round-trips it.
	tid, sid := rtrace.NewIDs()
	want := Frame{Type: FrameMerged, Step: 9, TraceID: tid, SpanID: sid, Flags: FlagSampled, Body: []byte{0, 0, 0, 2}}
	enc := AppendFrame(nil, want)
	got, n, err := DecodeFrame(enc)
	if err != nil {
		t.Fatalf("v2 frame rejected: %v", err)
	}
	if n != len(enc) {
		t.Fatalf("v2 consumed %d of %d bytes", n, len(enc))
	}
	if got.Ver != FrameVersion || got.TraceID != tid || got.SpanID != sid || !got.Sampled() || !got.Traced() {
		t.Fatalf("v2 trace context lost: %+v", got)
	}
	if !bytes.Equal(got.Body, want.Body) || got.Step != want.Step || got.Type != want.Type {
		t.Fatalf("v2 decode: %+v", got)
	}
	if re := AppendFrame(nil, got); !bytes.Equal(re, enc) {
		t.Fatalf("v2 re-encode mismatch")
	}

	// The streaming reader agrees on both versions.
	stream := append(append([]byte(nil), v1...), enc...)
	r := bytes.NewReader(stream)
	f1, scratch, err := ReadFrame(r, nil)
	if err != nil || f1.Ver != 1 || f1.Traced() {
		t.Fatalf("ReadFrame v1: %+v err=%v", f1, err)
	}
	f2, _, err := ReadFrame(r, scratch)
	if err != nil || f2.TraceID != tid || !f2.Sampled() {
		t.Fatalf("ReadFrame v2: %+v err=%v", f2, err)
	}

	// A v2 frame whose length cannot hold the trace context is rejected.
	short := []byte{0, 0, 0, 6, 2, 1, 0, 0, 0, 0}
	if _, _, err := DecodeFrame(short); err == nil {
		t.Fatal("short v2 frame accepted")
	}
}

// TestTCPStepTrace runs a 2-worker merge session with one flight
// recorder per process role and checks the acceptance contract: a
// single distributed optimizer step resolves to one trace — the
// coordinator's "dist.step" span at the root, its "dist.merge" child,
// and both workers' "dist.upload" spans re-parented onto it via the
// merged broadcast's trace context. The workers' own "train.step"
// spans (installed through SetStepSpan) adopt the same trace id, so
// the whole local step rides along.
func TestTCPStepTrace(t *testing.T) {
	cfg := testCfg()
	const workers = 2
	const steps = 2
	coordTr := rtrace.New(rtrace.Options{Process: "coordinator"})
	workerTrs := []*rtrace.Tracer{
		rtrace.New(rtrace.Options{Process: "worker-0"}),
		rtrace.New(rtrace.Options{Process: "worker-1"}),
	}
	c := startTestCoordinator(t, cfg, CoordinatorOptions{ExpectWorkers: workers, Tracer: coordTr})

	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			w := dialTestWorker(t, c.Addr().String(), cfg, WorkerOptions{Tracer: workerTrs[i]})
			for s := 0; s < steps; s++ {
				step := workerTrs[i].StartSpan("train.step")
				w.SetStepSpan(step)
				g, err := model.NewGradientsFor(cfg)
				if err != nil {
					t.Error(err)
					return
				}
				fillGradients(g, uint64(10*w.ID()+s+1))
				if _, _, err := w.Reduce([]*model.Gradients{g}); err != nil {
					t.Errorf("worker %d step %d: %v", w.ID(), s, err)
					return
				}
				step.Finish()
			}
			w.Close()
		}(i)
	}
	wg.Wait()
	if t.Failed() {
		t.FailNow()
	}
	if err := c.Wait(); err != nil {
		t.Fatal(err)
	}

	// Locate the coordinator's step-0 span.
	var root rtrace.SpanData
	found := false
	for _, sd := range coordTr.Spans() {
		if sd.Name != "dist.step" {
			continue
		}
		for _, a := range sd.Attrs {
			if a.Key == "step" && a.Value == "0" {
				root, found = sd, true
			}
		}
	}
	if !found {
		t.Fatal("coordinator recorded no dist.step span for step 0")
	}
	uploads := 0
	for _, ev := range root.Events {
		if ev.Name == "upload" {
			uploads++
		}
	}
	if uploads != workers {
		t.Fatalf("step span has %d upload events, want %d", uploads, workers)
	}

	// Gather every process's spans for that trace and assemble one tree.
	var spans []rtrace.WireSpan
	for _, sd := range coordTr.Trace(root.TraceID) {
		spans = append(spans, sd.Wire())
	}
	for i, tr := range workerTrs {
		group := tr.Trace(root.TraceID)
		var upload, local bool
		for _, sd := range group {
			spans = append(spans, sd.Wire())
			switch sd.Name {
			case "dist.upload":
				upload = true
				if sd.Parent != root.SpanID {
					t.Fatalf("worker %d upload span parent %s, want coordinator step span %s",
						i, sd.Parent, root.SpanID)
				}
			case "train.step":
				// The worker's own step span adopted the coordinator's
				// trace id when the broadcast arrived.
				local = true
			}
		}
		if !upload {
			t.Fatalf("worker %d recorded no dist.upload span in trace %s", i, root.TraceID)
		}
		if !local {
			t.Fatalf("worker %d train.step span did not join trace %s", i, root.TraceID)
		}
	}
	tree := rtrace.Assemble(spans)
	var stepNode *rtrace.Node
	for _, n := range tree {
		if n.Name == "dist.step" {
			stepNode = n
		}
	}
	if stepNode == nil {
		t.Fatalf("assembled trace has no dist.step root (roots: %d)", len(tree))
	}
	var merge, uploadKids int
	for _, ch := range stepNode.Children {
		switch ch.Name {
		case "dist.merge":
			merge++
		case "dist.upload":
			uploadKids++
		}
	}
	if merge != 1 || uploadKids != workers {
		t.Fatalf("dist.step children: %d dist.merge + %d dist.upload, want 1 + %d",
			merge, uploadKids, workers)
	}
}

// TestTCPQuorumTraceEvents reruns the bounded-staleness scenario with a
// flight recorder attached and checks the scheduling decisions appear
// as span events: a partial-quorum admission records "quorum-admit"
// with the straggler wait, and the straggler's catch-up contribution
// records "late-fold" on the step it folded into.
func TestTCPQuorumTraceEvents(t *testing.T) {
	cfg := testCfg()
	const workers = 3
	const steps = 4
	coordTr := rtrace.New(rtrace.Options{Process: "coordinator"})
	c := startTestCoordinator(t, cfg, CoordinatorOptions{
		ExpectWorkers: workers,
		Quorum:        2,
		Deadline:      30 * time.Millisecond,
		Tracer:        coordTr,
	})

	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			w := dialTestWorker(t, c.Addr().String(), cfg, WorkerOptions{})
			for s := 0; s < steps; s++ {
				if w.ID() == 0 && s == 1 {
					time.Sleep(300 * time.Millisecond)
				}
				g, err := model.NewGradientsFor(cfg)
				if err != nil {
					t.Error(err)
					return
				}
				fillGradients(g, uint64(10*w.ID()+s+1))
				if _, _, err := w.Reduce([]*model.Gradients{g}); err != nil {
					t.Errorf("worker %d step %d: %v", w.ID(), s, err)
					return
				}
			}
			w.Close()
		}(i)
	}
	wg.Wait()
	if t.Failed() {
		t.FailNow()
	}
	if err := c.Wait(); err != nil {
		t.Fatal(err)
	}

	var quorumAdmits, lateFolds int
	for _, sd := range coordTr.Spans() {
		if sd.Name != "dist.step" {
			continue
		}
		for _, ev := range sd.Events {
			switch ev.Name {
			case "quorum-admit":
				quorumAdmits++
				ok := false
				for _, a := range ev.Attrs {
					if a.Key == "straggler_wait_ms" {
						ok = true
					}
				}
				if !ok {
					t.Fatalf("quorum-admit event lacks straggler_wait_ms: %+v", ev)
				}
			case "late-fold":
				lateFolds++
			}
		}
	}
	if quorumAdmits == 0 {
		t.Fatal("no quorum-admit event recorded despite a stale admission")
	}
	if int64(lateFolds) != c.LateFolds() {
		t.Fatalf("late-fold events %d, coordinator counted %d", lateFolds, c.LateFolds())
	}
}
