package dist

import (
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"math"

	"etalstm/internal/compress"
	"etalstm/internal/model"
	"etalstm/internal/tensor"
)

// Gradient payload layout (the body of FrameGrads/FrameMerged after the
// 4-byte contribution count):
//
//	[1B encoding: 0 dense | 1 sparse]
//	per tensor, in canonical order (per layer: W0..W3, U0..U3, B0..B3;
//	then Proj, ProjB):
//	  dense:  [4B element count][count × 4B float32 bits LE]
//	  sparse: [4B pair count][count × 4B float32 bits LE values]
//	          [count × 4B uint32 LE flat indices, strictly increasing]
//
// Both sides derive tensor shapes from their own model geometry — the
// handshake's geometry checksum guarantees they agree — so the payload
// carries only counts for validation, not shapes.
const (
	encDense  = 0
	encSparse = 1
)

// GeomSum folds cfg's geometry into the 8-byte checksum the handshake
// compares, so a worker and coordinator built from different flags fail
// fast instead of mis-decoding each other's payloads.
func GeomSum(cfg model.Config) uint64 {
	h := fnv.New64a()
	var b [8]byte
	for _, v := range []int{cfg.InputSize, cfg.Hidden, cfg.Layers, cfg.SeqLen, cfg.Batch, cfg.OutSize, int(cfg.Loss)} {
		binary.LittleEndian.PutUint64(b[:], uint64(v))
		h.Write(b[:])
	}
	return h.Sum64()
}

// tensorsOf returns flat matrix views of every tensor in g in canonical
// order; bias vectors are wrapped as 1×n matrices sharing storage.
func tensorsOf(g *model.Gradients) []*tensor.Matrix {
	out := make([]*tensor.Matrix, 0, 12*len(g.Layer)+2)
	for _, lg := range g.Layer {
		for i := range lg.W {
			out = append(out, lg.W[i])
		}
		for i := range lg.U {
			out = append(out, lg.U[i])
		}
		for i := range lg.B {
			out = append(out, &tensor.Matrix{Rows: 1, Cols: len(lg.B[i]), Data: lg.B[i]})
		}
	}
	out = append(out, g.Proj)
	return append(out, &tensor.Matrix{Rows: 1, Cols: len(g.ProjB), Data: g.ProjB})
}

// denseBytes is the dense wire cost of a gradient set's tensors: the
// payload the transport ships when compression is off (4 bytes per
// element plus the per-tensor count word).
func denseBytes(tensors []*tensor.Matrix) int64 {
	var n int64
	for _, m := range tensors {
		n += 4 + 4*int64(len(m.Data))
	}
	return n
}

// sparseWireBytes is the wire cost of one sparse-encoded tensor: the
// count word plus a (value, index) pair per survivor. Unlike
// Sparse.Bytes — the paper's 16-bit-index DMA estimate — this reflects
// what the TCP codec actually ships.
func sparseWireBytes(nnz int) int64 { return 4 + 8*int64(nnz) }

// appendDense appends the dense encoding of tensors to dst.
func appendDense(dst []byte, tensors []*tensor.Matrix) []byte {
	dst = append(dst, encDense)
	for _, m := range tensors {
		dst = binary.BigEndian.AppendUint32(dst, uint32(len(m.Data)))
		for _, v := range m.Data {
			dst = binary.LittleEndian.AppendUint32(dst, math.Float32bits(v))
		}
	}
	return dst
}

// appendSparse appends the sparse encoding of tensors to dst, running
// each tensor through its error-feedback accumulator first (fb[i]
// belongs to tensors[i] and persists across steps). It reports the
// wire and dense byte costs of the payload it built.
func appendSparse(dst []byte, tensors []*tensor.Matrix, fb []*compress.Feedback, opts CompressOptions, scratch *compress.Sparse) (out []byte, wire, dense int64) {
	dst = append(dst, encSparse)
	for i, m := range tensors {
		var s *compress.Sparse
		if opts.Threshold > 0 {
			s = fb[i].EncodeInto(scratch, m, opts.Threshold)
		} else {
			s = fb[i].EncodeTopK(scratch, m, opts.keep())
		}
		dst = binary.BigEndian.AppendUint32(dst, uint32(s.NNZ()))
		for _, v := range s.Values {
			dst = binary.LittleEndian.AppendUint32(dst, math.Float32bits(v))
		}
		for _, idx := range s.Indices {
			dst = binary.LittleEndian.AppendUint32(dst, uint32(idx))
		}
		wire += sparseWireBytes(s.NNZ())
		dense += 4 + 4*int64(len(m.Data))
	}
	return dst, wire, dense
}

// decodeGradients decodes a gradient payload into g, whose geometry
// supplies every tensor shape. Dense payloads overwrite every element;
// sparse payloads zero each tensor and scatter the pairs, so g always
// leaves holding exactly the transmitted values.
func decodeGradients(body []byte, g *model.Gradients) error {
	if len(body) < 1 {
		return fmt.Errorf("dist: gradient payload missing encoding byte")
	}
	enc := body[0]
	if enc != encDense && enc != encSparse {
		return fmt.Errorf("dist: unknown gradient encoding %d", enc)
	}
	body = body[1:]
	u32 := func() (uint32, error) {
		if len(body) < 4 {
			return 0, fmt.Errorf("dist: gradient payload truncated")
		}
		v := binary.BigEndian.Uint32(body)
		body = body[4:]
		return v, nil
	}
	for _, m := range tensorsOf(g) {
		n, err := u32()
		if err != nil {
			return err
		}
		switch enc {
		case encDense:
			if int(n) != len(m.Data) {
				return fmt.Errorf("dist: dense tensor count %d, geometry wants %d", n, len(m.Data))
			}
			if len(body) < 4*int(n) {
				return fmt.Errorf("dist: gradient payload truncated")
			}
			for i := range m.Data {
				m.Data[i] = math.Float32frombits(binary.LittleEndian.Uint32(body[4*i:]))
			}
			body = body[4*n:]
		case encSparse:
			if int(n) > len(m.Data) {
				return fmt.Errorf("dist: sparse tensor %d pairs exceed %d elements", n, len(m.Data))
			}
			if len(body) < 8*int(n) {
				return fmt.Errorf("dist: gradient payload truncated")
			}
			for i := range m.Data {
				m.Data[i] = 0
			}
			idxs := body[4*n:]
			prev := -1
			for i := 0; i < int(n); i++ {
				idx := int(binary.LittleEndian.Uint32(idxs[4*i:]))
				if idx >= len(m.Data) || idx <= prev {
					return fmt.Errorf("dist: sparse index %d out of order or range (%d elements)", idx, len(m.Data))
				}
				prev = idx
				m.Data[idx] = math.Float32frombits(binary.LittleEndian.Uint32(body[4*i:]))
			}
			body = body[8*n:]
		default:
			return fmt.Errorf("dist: unknown gradient encoding %d", enc)
		}
	}
	if len(body) != 0 {
		return fmt.Errorf("dist: %d trailing bytes after gradient payload", len(body))
	}
	return nil
}

// feedbackFor sizes an error-feedback accumulator set for one gradient
// set's tensors (one Feedback per tensor, persisting across steps).
func feedbackFor(tensors []*tensor.Matrix) []*compress.Feedback {
	fb := make([]*compress.Feedback, len(tensors))
	for i := range fb {
		fb[i] = &compress.Feedback{}
	}
	return fb
}
