package dist

import (
	"math"
	"strings"
	"testing"

	"etalstm/internal/compress"
	"etalstm/internal/model"
	"etalstm/internal/rng"
)

func testCfg() model.Config {
	return model.Config{InputSize: 3, Hidden: 4, Layers: 2, SeqLen: 5, Batch: 2, OutSize: 3, Loss: model.SingleLoss}
}

// fillGradients populates every tensor with a deterministic mix of
// signed values and exact zeros.
func fillGradients(g *model.Gradients, seed uint64) {
	r := rng.New(seed)
	for _, m := range tensorsOf(g) {
		for i := range m.Data {
			if r.Intn(4) == 0 {
				m.Data[i] = 0
				continue
			}
			m.Data[i] = float32(r.Uniform(-2, 2))
		}
	}
}

func gradientsEqual(a, b *model.Gradients) bool {
	ta, tb := tensorsOf(a), tensorsOf(b)
	if len(ta) != len(tb) {
		return false
	}
	for i := range ta {
		if len(ta[i].Data) != len(tb[i].Data) {
			return false
		}
		for j := range ta[i].Data {
			if math.Float32bits(ta[i].Data[j]) != math.Float32bits(tb[i].Data[j]) {
				return false
			}
		}
	}
	return true
}

func TestDenseCodecRoundtripBitwise(t *testing.T) {
	cfg := testCfg()
	src, err := model.NewGradientsFor(cfg)
	if err != nil {
		t.Fatal(err)
	}
	fillGradients(src, 7)
	body := appendDense(nil, tensorsOf(src))
	if got, want := int64(len(body)-1), denseBytes(tensorsOf(src)); got != want {
		t.Fatalf("dense payload %d bytes, accounting says %d", got, want)
	}
	dst, err := model.NewGradientsFor(cfg)
	if err != nil {
		t.Fatal(err)
	}
	fillGradients(dst, 99) // stale values must be fully overwritten
	if err := decodeGradients(body, dst); err != nil {
		t.Fatal(err)
	}
	if !gradientsEqual(src, dst) {
		t.Fatal("dense roundtrip not bitwise")
	}
}

func TestSparseCodecRoundtripThreshold(t *testing.T) {
	cfg := testCfg()
	src, err := model.NewGradientsFor(cfg)
	if err != nil {
		t.Fatal(err)
	}
	fillGradients(src, 11)
	tensors := tensorsOf(src)
	fb := feedbackFor(tensors)
	var scratch compress.Sparse
	// Threshold 0 keeps every nonzero compensated value: decoding must
	// reproduce src exactly (first step, residuals all zero — only exact
	// zeros are dropped, and decode re-zeroes them).
	body, wire, dense := appendSparse(nil, tensors, fb, CompressOptions{Threshold: math.SmallestNonzeroFloat32}, &scratch)
	if wire <= 0 || dense != denseBytes(tensors) {
		t.Fatalf("accounting: wire %d dense %d want dense %d", wire, dense, denseBytes(tensors))
	}
	dst, err := model.NewGradientsFor(cfg)
	if err != nil {
		t.Fatal(err)
	}
	fillGradients(dst, 99)
	if err := decodeGradients(body, dst); err != nil {
		t.Fatal(err)
	}
	if !gradientsEqual(src, dst) {
		t.Fatal("keep-everything sparse roundtrip not bitwise")
	}
}

// TestSparseErrorFeedbackConservation pins the mass-conservation
// identity: at every step, for every element,
// raw + residual_in == transmitted + residual_out exactly.
func TestSparseErrorFeedbackConservation(t *testing.T) {
	cfg := testCfg()
	g, err := model.NewGradientsFor(cfg)
	if err != nil {
		t.Fatal(err)
	}
	recv, err := model.NewGradientsFor(cfg)
	if err != nil {
		t.Fatal(err)
	}
	tensors := tensorsOf(g)
	fb := feedbackFor(tensors)
	var scratch compress.Sparse
	for step := 0; step < 5; step++ {
		fillGradients(g, uint64(step+1))
		resIn := make([][]float32, len(tensors))
		for i := range tensors {
			resIn[i] = append([]float32(nil), fb[i].Residual()...)
		}
		body, _, _ := appendSparse(nil, tensors, fb, CompressOptions{KeepFrac: 0.1}, &scratch)
		if err := decodeGradients(body, recv); err != nil {
			t.Fatal(err)
		}
		rt := tensorsOf(recv)
		for i, m := range tensors {
			resOut := fb[i].Residual()
			for j, raw := range m.Data {
				var prev float32
				if len(resIn[i]) > j {
					prev = resIn[i][j]
				}
				want := raw + prev
				got := rt[i].Data[j] + resOut[j]
				if math.Float32bits(want) != math.Float32bits(got) {
					t.Fatalf("step %d tensor %d elem %d: raw+res_in %v != sent+res_out %v", step, i, j, want, got)
				}
			}
		}
	}
}

func TestDecodeGradientsRejectsCorruption(t *testing.T) {
	cfg := testCfg()
	src, _ := model.NewGradientsFor(cfg)
	fillGradients(src, 3)
	dst, _ := model.NewGradientsFor(cfg)
	dense := appendDense(nil, tensorsOf(src))

	fb := feedbackFor(tensorsOf(src))
	var scratch compress.Sparse
	sparse, _, _ := appendSparse(nil, tensorsOf(src), fb, CompressOptions{KeepFrac: 0.2}, &scratch)

	cases := []struct {
		name string
		body []byte
		want string
	}{
		{"empty", nil, "encoding"},
		{"unknown-encoding", []byte{7}, "encoding"},
		{"dense-truncated", dense[:len(dense)-2], "truncated"},
		{"dense-trailing", append(append([]byte(nil), dense...), 0), "trailing"},
		{"sparse-truncated", sparse[:len(sparse)-1], "truncated"},
		{"dense-count-mismatch", func() []byte {
			b := append([]byte(nil), dense...)
			b[4] ^= 0x01 // flip the first tensor's element count
			return b
		}(), ""},
		{"sparse-index-out-of-range", func() []byte {
			b := append([]byte(nil), sparse...)
			n := int(uint32(b[1])<<24 | uint32(b[2])<<16 | uint32(b[3])<<8 | uint32(b[4]))
			if n == 0 {
				t.Skip("first tensor empty under this seed")
			}
			// Last index of the first tensor's index block (LE u32).
			off := 5 + 4*n + 4*(n-1)
			b[off] = 0xff
			b[off+1] = 0xff
			return b
		}(), "index"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := decodeGradients(tc.body, dst)
			if err == nil {
				t.Fatal("corrupt payload accepted")
			}
			if tc.want != "" && !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("want error containing %q, got %v", tc.want, err)
			}
		})
	}
}

func TestGeomSumDiscriminates(t *testing.T) {
	base := testCfg()
	mut := []func(*model.Config){
		func(c *model.Config) { c.InputSize++ },
		func(c *model.Config) { c.Hidden++ },
		func(c *model.Config) { c.Layers++ },
		func(c *model.Config) { c.SeqLen++ },
		func(c *model.Config) { c.Batch++ },
		func(c *model.Config) { c.OutSize++ },
		func(c *model.Config) { c.Loss = model.PerTimestampLoss },
	}
	want := GeomSum(base)
	if want != GeomSum(base) {
		t.Fatal("GeomSum not deterministic")
	}
	for i, m := range mut {
		c := base
		m(&c)
		if GeomSum(c) == want {
			t.Fatalf("mutation %d not reflected in geometry checksum", i)
		}
	}
}
