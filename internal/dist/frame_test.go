package dist

import (
	"bytes"
	"io"
	"strings"
	"testing"
)

func TestFrameRoundtrip(t *testing.T) {
	frames := []Frame{
		{Type: FrameHello, Body: []byte{1, 2, 3, 4, 5, 6, 7, 8}},
		{Type: FrameWelcome, Step: 0, Body: make([]byte, 8)},
		{Type: FrameGrads, Step: 41, Body: []byte("payload")},
		{Type: FrameMerged, Step: 42, Body: nil},
		{Type: FrameBye},
		{Type: FrameError, Body: []byte("boom")},
	}
	var stream []byte
	for _, f := range frames {
		stream = AppendFrame(stream, f)
	}
	// Decode the concatenated stream frame by frame.
	rest := stream
	for i, want := range frames {
		got, n, err := DecodeFrame(rest)
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		if got.Type != want.Type || got.Step != want.Step || !bytes.Equal(got.Body, want.Body) {
			t.Fatalf("frame %d roundtrip: got %+v want %+v", i, got, want)
		}
		rest = rest[n:]
	}
	if len(rest) != 0 {
		t.Fatalf("%d undecoded bytes", len(rest))
	}

	// The streaming reader must agree, reusing one scratch buffer.
	r := bytes.NewReader(stream)
	var scratch []byte
	for i, want := range frames {
		var got Frame
		var err error
		got, scratch, err = ReadFrame(r, scratch)
		if err != nil {
			t.Fatalf("ReadFrame %d: %v", i, err)
		}
		if got.Type != want.Type || got.Step != want.Step || !bytes.Equal(got.Body, want.Body) {
			t.Fatalf("ReadFrame %d: got %+v want %+v", i, got, want)
		}
	}
	if _, _, err := ReadFrame(r, scratch); err != io.EOF {
		t.Fatalf("expected EOF at stream end, got %v", err)
	}
}

func TestDecodeFrameRejectsCorruption(t *testing.T) {
	good := AppendFrame(nil, Frame{Type: FrameGrads, Step: 7, Body: []byte("abc")})
	cases := []struct {
		name string
		mut  func([]byte) []byte
		want string
	}{
		{"short-prefix", func(b []byte) []byte { return b[:3] }, "truncated"},
		{"truncated-body", func(b []byte) []byte { return b[:len(b)-1] }, "truncated"},
		{"undersized-length", func(b []byte) []byte { b[3] = 5; return b }, "outside"},
		{"oversized-length", func(b []byte) []byte { b[0] = 0xff; return b }, "outside"},
		{"bad-version", func(b []byte) []byte { b[4] = 9; return b }, "version"},
		{"bad-type", func(b []byte) []byte { b[5] = 0; return b }, "type"},
		{"bad-type-high", func(b []byte) []byte { b[5] = 200; return b }, "type"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			b := tc.mut(append([]byte(nil), good...))
			if _, _, err := DecodeFrame(b); err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("want error containing %q, got %v", tc.want, err)
			}
		})
	}
}

func TestReadFrameRejectsHostileLength(t *testing.T) {
	// A hostile length prefix must be rejected before any allocation of
	// its claimed size.
	b := []byte{0xff, 0xff, 0xff, 0xff}
	if _, _, err := ReadFrame(bytes.NewReader(b), nil); err == nil {
		t.Fatal("hostile length accepted")
	}
}
