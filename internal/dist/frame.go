package dist

import (
	"encoding/binary"
	"fmt"
	"io"
)

// The TCP transport speaks length-prefixed frames:
//
//	[4B big-endian length N][1B version][1B type][4B step][N-6 byte body]
//
// The length counts everything after itself (version through body), so
// N >= 6 always; a reader can frame the stream with one 4-byte read.
// Step is the coordinator's monotone optimizer-step counter for
// gradient frames and 0 for control frames.
const (
	// FrameVersion is the protocol version; a mismatch fails the
	// handshake rather than guessing at payload layouts.
	FrameVersion = 1
	// frameHeader is the byte count the length prefix covers before the
	// body (version + type + step).
	frameHeader = 6
	// MaxFrameBody caps decoded body sizes so a corrupt or hostile
	// length prefix cannot ask the reader to allocate gigabytes.
	MaxFrameBody = 1 << 28
)

// FrameType discriminates the transport's messages.
type FrameType byte

// The frame types, in handshake-then-steady-state order.
const (
	// FrameHello is worker → coordinator: body is the 8-byte geometry
	// checksum of the worker's model config.
	FrameHello FrameType = 1 + iota
	// FrameWelcome is coordinator → worker once every expected worker
	// has joined: body is [4B worker id][4B total workers].
	FrameWelcome
	// FrameGrads is worker → coordinator: body is [4B contribution
	// count] followed by a gradient payload (see codec.go).
	FrameGrads
	// FrameMerged is coordinator → worker: same body layout as
	// FrameGrads, holding the step's merged gradients and the total
	// contribution count to average by.
	FrameMerged
	// FrameBye is worker → coordinator: clean disconnect, empty body.
	FrameBye
	// FrameError carries a fatal diagnostic as a UTF-8 body in either
	// direction before the sender closes the connection.
	FrameError
)

func (t FrameType) valid() bool { return t >= FrameHello && t <= FrameError }

// Frame is one decoded transport message. Body aliases the decode
// buffer: it is only valid until that buffer's next use.
type Frame struct {
	Type FrameType
	Step uint32
	Body []byte
}

// AppendFrame appends f's length-prefixed encoding to dst and returns
// the extended slice (append-style, alloc-free once dst has capacity).
func AppendFrame(dst []byte, f Frame) []byte {
	n := frameHeader + len(f.Body)
	dst = binary.BigEndian.AppendUint32(dst, uint32(n))
	dst = append(dst, FrameVersion, byte(f.Type))
	dst = binary.BigEndian.AppendUint32(dst, f.Step)
	return append(dst, f.Body...)
}

// DecodeFrame parses one length-prefixed frame from the front of b,
// returning the frame (Body aliases b) and the bytes consumed. It
// rejects short inputs, oversized or undersized lengths, version
// mismatches and unknown types — the validation surface FuzzFrameDecode
// hammers.
func DecodeFrame(b []byte) (Frame, int, error) {
	if len(b) < 4 {
		return Frame{}, 0, fmt.Errorf("dist: frame truncated before length prefix (%d bytes)", len(b))
	}
	n := binary.BigEndian.Uint32(b)
	if n < frameHeader || n > frameHeader+MaxFrameBody {
		return Frame{}, 0, fmt.Errorf("dist: frame length %d outside [%d, %d]", n, frameHeader, frameHeader+MaxFrameBody)
	}
	total := 4 + int(n)
	if len(b) < total {
		return Frame{}, 0, fmt.Errorf("dist: frame truncated: length prefix says %d, have %d", total, len(b))
	}
	if b[4] != FrameVersion {
		return Frame{}, 0, fmt.Errorf("dist: frame version %d, want %d", b[4], FrameVersion)
	}
	typ := FrameType(b[5])
	if !typ.valid() {
		return Frame{}, 0, fmt.Errorf("dist: unknown frame type %d", typ)
	}
	return Frame{Type: typ, Step: binary.BigEndian.Uint32(b[6:]), Body: b[10:total]}, total, nil
}

// ReadFrame reads one frame from r into scratch (grown as needed) and
// returns the frame plus the possibly-grown scratch for reuse — the
// streaming counterpart of DecodeFrame with identical validation.
func ReadFrame(r io.Reader, scratch []byte) (Frame, []byte, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return Frame{}, scratch, err
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n < frameHeader || n > frameHeader+MaxFrameBody {
		return Frame{}, scratch, fmt.Errorf("dist: frame length %d outside [%d, %d]", n, frameHeader, frameHeader+MaxFrameBody)
	}
	need := 4 + int(n)
	if cap(scratch) < need {
		scratch = make([]byte, need)
	}
	scratch = scratch[:need]
	copy(scratch, hdr[:])
	if _, err := io.ReadFull(r, scratch[4:]); err != nil {
		return Frame{}, scratch, fmt.Errorf("dist: frame body: %w", err)
	}
	f, _, err := DecodeFrame(scratch)
	return f, scratch, err
}

// writeFrame encodes f into buf and writes it to w in one call,
// returning the grown buffer. Single-writer connections reuse buf so
// the steady-state send path does not allocate.
func writeFrame(w io.Writer, buf []byte, f Frame) ([]byte, error) {
	buf = AppendFrame(buf[:0], f)
	_, err := w.Write(buf)
	return buf, err
}
