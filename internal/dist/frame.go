package dist

import (
	"encoding/binary"
	"fmt"
	"io"

	"etalstm/internal/rtrace"
)

// The TCP transport speaks length-prefixed frames:
//
//	v1: [4B big-endian length N][1B version][1B type][4B step][N-6 byte body]
//	v2: [4B length N][1B version][1B type][4B step]
//	    [16B trace id][8B span id][1B flags][N-31 byte body]
//
// The length counts everything after itself (version through body), so
// N >= 6 always; a reader can frame the stream with one 4-byte read.
// Step is the coordinator's monotone optimizer-step counter for
// gradient frames and 0 for control frames.
//
// v2 extends every frame with a 25-byte trace context so one optimizer
// step resolves to a single cross-process trace: FrameGrads carries the
// worker's upload-span identity, FrameMerged the coordinator's step
// span, and workers re-parent their spans onto the coordinator's trace
// (rtrace.Span.Adopt). A zero trace id means "no trace"; the flags bit
// FlagSampled forwards the head-sampling decision so every process in
// the step keeps or drops the trace together. Decoders accept both
// versions — a v1 frame simply has a zero trace context — while
// encoders emit v2 unless the frame pins Ver.
const (
	// FrameVersion is the protocol version new frames are encoded with;
	// decoders also accept v1 so mixed-version fleets can drain.
	FrameVersion = 2
	// frameHeader is the v1 byte count the length prefix covers before
	// the body (version + type + step).
	frameHeader = 6
	// traceCtxLen is the v2 trace-context extension: trace id, span id
	// and a flags byte.
	traceCtxLen = 16 + 8 + 1
	// frameHeaderV2 is the v2 pre-body byte count.
	frameHeaderV2 = frameHeader + traceCtxLen
	// MaxFrameBody caps decoded body sizes so a corrupt or hostile
	// length prefix cannot ask the reader to allocate gigabytes.
	MaxFrameBody = 1 << 28

	// FlagSampled marks the frame's trace as head-sampled: the
	// receiving process's flight recorder should keep it too.
	FlagSampled byte = 1 << 0
)

// FrameType discriminates the transport's messages.
type FrameType byte

// The frame types, in handshake-then-steady-state order.
const (
	// FrameHello is worker → coordinator: body is the 8-byte geometry
	// checksum of the worker's model config.
	FrameHello FrameType = 1 + iota
	// FrameWelcome is coordinator → worker once every expected worker
	// has joined: body is [4B worker id][4B total workers].
	FrameWelcome
	// FrameGrads is worker → coordinator: body is [4B contribution
	// count] followed by a gradient payload (see codec.go).
	FrameGrads
	// FrameMerged is coordinator → worker: same body layout as
	// FrameGrads, holding the step's merged gradients and the total
	// contribution count to average by.
	FrameMerged
	// FrameBye is worker → coordinator: clean disconnect, empty body.
	FrameBye
	// FrameError carries a fatal diagnostic as a UTF-8 body in either
	// direction before the sender closes the connection.
	FrameError
)

func (t FrameType) valid() bool { return t >= FrameHello && t <= FrameError }

// Frame is one decoded transport message. Body aliases the decode
// buffer: it is only valid until that buffer's next use.
type Frame struct {
	// Ver pins the encoding version (0 = FrameVersion). Decoders set it
	// to the version they saw, so decode → encode reproduces the exact
	// wire bytes for either version.
	Ver  byte
	Type FrameType
	Step uint32
	// TraceID/SpanID/Flags are the v2 trace context (zero on v1 frames
	// and on untraced v2 frames).
	TraceID rtrace.TraceID
	SpanID  rtrace.SpanID
	Flags   byte
	Body    []byte
}

// Traced reports whether the frame carries a trace context.
func (f Frame) Traced() bool { return !f.TraceID.IsZero() }

// Sampled reports the frame's head-sampling decision.
func (f Frame) Sampled() bool { return f.Flags&FlagSampled != 0 }

// AppendFrame appends f's length-prefixed encoding to dst and returns
// the extended slice (append-style, alloc-free once dst has capacity).
func AppendFrame(dst []byte, f Frame) []byte {
	ver := f.Ver
	if ver == 0 {
		ver = FrameVersion
	}
	hdr := frameHeader
	if ver >= 2 {
		hdr = frameHeaderV2
	}
	n := hdr + len(f.Body)
	dst = binary.BigEndian.AppendUint32(dst, uint32(n))
	dst = append(dst, ver, byte(f.Type))
	dst = binary.BigEndian.AppendUint32(dst, f.Step)
	if ver >= 2 {
		dst = append(dst, f.TraceID[:]...)
		dst = append(dst, f.SpanID[:]...)
		dst = append(dst, f.Flags)
	}
	return append(dst, f.Body...)
}

// DecodeFrame parses one length-prefixed frame from the front of b,
// returning the frame (Body aliases b) and the bytes consumed. It
// rejects short inputs, oversized or undersized lengths, version
// mismatches and unknown types — the validation surface FuzzFrameDecode
// hammers. Both v1 and v2 frames decode; v1 yields a zero trace
// context.
func DecodeFrame(b []byte) (Frame, int, error) {
	if len(b) < 4 {
		return Frame{}, 0, fmt.Errorf("dist: frame truncated before length prefix (%d bytes)", len(b))
	}
	n := binary.BigEndian.Uint32(b)
	if n < frameHeader || n > frameHeaderV2+MaxFrameBody {
		return Frame{}, 0, fmt.Errorf("dist: frame length %d outside [%d, %d]", n, frameHeader, frameHeaderV2+MaxFrameBody)
	}
	total := 4 + int(n)
	if len(b) < total {
		return Frame{}, 0, fmt.Errorf("dist: frame truncated: length prefix says %d, have %d", total, len(b))
	}
	ver := b[4]
	var hdr int
	switch ver {
	case 1:
		hdr = frameHeader
	case 2:
		if n < frameHeaderV2 {
			return Frame{}, 0, fmt.Errorf("dist: v2 frame length %d shorter than header %d", n, frameHeaderV2)
		}
		hdr = frameHeaderV2
	default:
		return Frame{}, 0, fmt.Errorf("dist: frame version %d, want 1 or %d", ver, FrameVersion)
	}
	if int(n)-hdr > MaxFrameBody {
		return Frame{}, 0, fmt.Errorf("dist: frame body %d exceeds cap %d", int(n)-hdr, MaxFrameBody)
	}
	typ := FrameType(b[5])
	if !typ.valid() {
		return Frame{}, 0, fmt.Errorf("dist: unknown frame type %d", typ)
	}
	f := Frame{Ver: ver, Type: typ, Step: binary.BigEndian.Uint32(b[6:])}
	off := 4 + frameHeader
	if ver >= 2 {
		copy(f.TraceID[:], b[off:off+16])
		copy(f.SpanID[:], b[off+16:off+24])
		f.Flags = b[off+24]
		off += traceCtxLen
	}
	f.Body = b[off:total]
	return f, total, nil
}

// ReadFrame reads one frame from r into scratch (grown as needed) and
// returns the frame plus the possibly-grown scratch for reuse — the
// streaming counterpart of DecodeFrame with identical validation.
func ReadFrame(r io.Reader, scratch []byte) (Frame, []byte, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return Frame{}, scratch, err
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n < frameHeader || n > frameHeaderV2+MaxFrameBody {
		return Frame{}, scratch, fmt.Errorf("dist: frame length %d outside [%d, %d]", n, frameHeader, frameHeaderV2+MaxFrameBody)
	}
	need := 4 + int(n)
	if cap(scratch) < need {
		scratch = make([]byte, need)
	}
	scratch = scratch[:need]
	copy(scratch, hdr[:])
	if _, err := io.ReadFull(r, scratch[4:]); err != nil {
		return Frame{}, scratch, fmt.Errorf("dist: frame body: %w", err)
	}
	f, _, err := DecodeFrame(scratch)
	return f, scratch, err
}

// writeFrame encodes f into buf and writes it to w in one call,
// returning the grown buffer. Single-writer connections reuse buf so
// the steady-state send path does not allocate.
func writeFrame(w io.Writer, buf []byte, f Frame) ([]byte, error) {
	buf = AppendFrame(buf[:0], f)
	_, err := w.Write(buf)
	return buf, err
}
