package dist

import (
	"strings"
	"sync"
	"testing"
	"time"

	"etalstm/internal/model"
	"etalstm/internal/obs"
)

func startTestCoordinator(t *testing.T, cfg model.Config, opts CoordinatorOptions) *Coordinator {
	t.Helper()
	if opts.Metrics == nil {
		opts.Metrics = obs.NewDist(obs.NewRegistry())
	}
	c, err := StartCoordinator("127.0.0.1:0", cfg, opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	return c
}

func dialTestWorker(t *testing.T, addr string, cfg model.Config, opts WorkerOptions) *Worker {
	t.Helper()
	if opts.Metrics == nil {
		opts.Metrics = obs.NewDist(obs.NewRegistry())
	}
	w, err := Dial(addr, cfg, opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { w.Close() })
	return w
}

// TestTCPDenseLossless: with dense frames and a full quorum, the TCP
// transport must be invisible — every worker receives bitwise the same
// merged set the in-process tree all-reduce would produce from the same
// contributions, with the right contribution count.
func TestTCPDenseLossless(t *testing.T) {
	cfg := testCfg()
	const workers = 4
	const steps = 3
	c := startTestCoordinator(t, cfg, CoordinatorOptions{ExpectWorkers: workers})

	type out struct {
		id     int
		merged []*model.Gradients // cloned per step
		totals []int
	}
	outs := make([]out, workers)
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			w := dialTestWorker(t, c.Addr().String(), cfg, WorkerOptions{})
			o := out{id: w.ID()}
			for s := 0; s < steps; s++ {
				g, err := model.NewGradientsFor(cfg)
				if err != nil {
					t.Error(err)
					return
				}
				// Deterministic per (worker id, step) contribution.
				fillGradients(g, uint64(1000*w.ID()+s+1))
				m, n, err := w.Reduce([]*model.Gradients{g})
				if err != nil {
					t.Errorf("worker %d step %d: %v", w.ID(), s, err)
					return
				}
				o.merged = append(o.merged, m.Clone())
				o.totals = append(o.totals, n)
			}
			w.Close()
			outs[i] = o
		}(i)
	}
	wg.Wait()
	if t.Failed() {
		t.FailNow()
	}
	if err := c.Wait(); err != nil {
		t.Fatalf("coordinator: %v", err)
	}

	// Reference: the in-process tree reduce over the same contributions,
	// merged in worker-id order.
	for s := 0; s < steps; s++ {
		sets := make([]*model.Gradients, workers)
		for id := 0; id < workers; id++ {
			g, _ := model.NewGradientsFor(cfg)
			fillGradients(g, uint64(1000*id+s+1))
			sets[id] = g
		}
		want := TreeReduce(sets)
		for _, o := range outs {
			if o.totals[s] != workers {
				t.Fatalf("worker %d step %d: total %d want %d", o.id, s, o.totals[s], workers)
			}
			if !gradientsEqual(o.merged[s], want) {
				t.Fatalf("worker %d step %d: merged set differs from in-process tree reduce", o.id, s)
			}
		}
	}
	if c.Steps() != steps {
		t.Fatalf("coordinator served %d steps, want %d", c.Steps(), steps)
	}
	if c.StaleSteps() != 0 || c.LateFolds() != 0 {
		t.Fatalf("full-quorum run reported staleness: %d stale, %d late", c.StaleSteps(), c.LateFolds())
	}
}

// TestTCPCompressedRoundtrip: compressed uplink+downlink still delivers
// a well-formed merged set to every worker, identically across workers,
// and the wire accounting shows a real reduction.
func TestTCPCompressedRoundtrip(t *testing.T) {
	cfg := testCfg()
	const workers = 2
	const steps = 4
	comp := &CompressOptions{KeepFrac: 0.1}
	c := startTestCoordinator(t, cfg, CoordinatorOptions{ExpectWorkers: workers, Compression: comp})

	merged := make([][]*model.Gradients, workers)
	ws := make([]*Worker, workers)
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			w := dialTestWorker(t, c.Addr().String(), cfg, WorkerOptions{Compression: comp})
			ws[i] = w
			for s := 0; s < steps; s++ {
				g, err := model.NewGradientsFor(cfg)
				if err != nil {
					t.Error(err)
					return
				}
				fillGradients(g, uint64(100*w.ID()+s+1))
				m, _, err := w.Reduce([]*model.Gradients{g})
				if err != nil {
					t.Errorf("worker %d step %d: %v", w.ID(), s, err)
					return
				}
				merged[w.ID()] = append(merged[w.ID()], m.Clone())
			}
			w.Close()
		}(i)
	}
	wg.Wait()
	if t.Failed() {
		t.FailNow()
	}
	if err := c.Wait(); err != nil {
		t.Fatal(err)
	}
	for s := 0; s < steps; s++ {
		if !gradientsEqual(merged[0][s], merged[1][s]) {
			t.Fatalf("step %d: workers received different merged sets — weights would fork", s)
		}
	}
	for _, w := range ws {
		if r := w.Ratio(); r < 3 {
			t.Fatalf("compressed worker ratio %.2f, want a real reduction", r)
		}
	}
}

// TestTCPQuorumStaleness: with quorum 2 of 3 and a short deadline, a
// straggling worker's step is admitted without it, counted stale, and
// the straggler's contribution folds into the next step — so by the
// final (all-present) step no gradient mass has been dropped: the sum
// of per-step contribution totals equals the number of contributions
// sent.
func TestTCPQuorumStaleness(t *testing.T) {
	cfg := testCfg()
	const workers = 3
	const steps = 4
	c := startTestCoordinator(t, cfg, CoordinatorOptions{
		ExpectWorkers: workers,
		Quorum:        2,
		Deadline:      30 * time.Millisecond,
	})

	totals := make([][]int, workers)
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			w := dialTestWorker(t, c.Addr().String(), cfg, WorkerOptions{})
			for s := 0; s < steps; s++ {
				if w.ID() == 0 && s == 1 {
					// One mid-run straggle, far beyond the deadline; the
					// run ends with everyone synchronous so the last step
					// can absorb the late fold.
					time.Sleep(300 * time.Millisecond)
				}
				g, err := model.NewGradientsFor(cfg)
				if err != nil {
					t.Error(err)
					return
				}
				fillGradients(g, uint64(10*w.ID()+s+1))
				_, n, err := w.Reduce([]*model.Gradients{g})
				if err != nil {
					t.Errorf("worker %d step %d: %v", w.ID(), s, err)
					return
				}
				totals[w.ID()] = append(totals[w.ID()], n)
			}
			w.Close()
		}(i)
	}
	wg.Wait()
	if t.Failed() {
		t.FailNow()
	}
	if err := c.Wait(); err != nil {
		t.Fatal(err)
	}
	if c.StaleSteps() == 0 {
		t.Fatal("straggler never triggered a stale admission")
	}
	if c.LateFolds() == 0 {
		t.Fatal("straggler's contribution never folded late")
	}
	// Conservation: every contribution sent was merged into some step,
	// except late arrivals for the session's final step, which have no
	// next step and are accounted as tail drops.
	sent := workers * steps
	got := 0
	for _, ts := range totals[0] {
		got += ts
	}
	if got+int(c.TailDropped()) != sent {
		t.Fatalf("contribution mass: %d merged + %d tail-dropped vs %d sent — late gradients vanished unaccounted",
			got, c.TailDropped(), sent)
	}
	// All workers saw identical per-step totals (identical broadcasts).
	for id := 1; id < workers; id++ {
		for s := range totals[0] {
			if totals[id][s] != totals[0][s] {
				t.Fatalf("step %d: worker %d total %d vs worker 0 total %d", s, id, totals[id][s], totals[0][s])
			}
		}
	}
}

// TestTCPCoordinatorDrainsOnWorkerDisconnect: when a worker vanishes
// mid-run without a goodbye, the survivors keep training and the
// coordinator drains cleanly once they finish. Run under -race this
// also pins the reader/collector buffer handoff.
func TestTCPCoordinatorDrainsOnWorkerDisconnect(t *testing.T) {
	cfg := testCfg()
	const workers = 3
	c := startTestCoordinator(t, cfg, CoordinatorOptions{ExpectWorkers: workers})

	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			w := dialTestWorker(t, c.Addr().String(), cfg, WorkerOptions{})
			steps := 6
			if i == 0 {
				steps = 2 // this one abandons the run
			}
			for s := 0; s < steps; s++ {
				g, err := model.NewGradientsFor(cfg)
				if err != nil {
					t.Error(err)
					return
				}
				fillGradients(g, uint64(10*i+s+1))
				if _, _, err := w.Reduce([]*model.Gradients{g}); err != nil {
					t.Errorf("worker %d step %d: %v", i, s, err)
					return
				}
			}
			if i == 0 {
				// Abrupt close, no FrameBye: the coordinator must treat
				// the read error as a disconnect.
				w.conn.Close()
			} else {
				w.Close()
			}
		}(i)
	}
	wg.Wait()
	if t.Failed() {
		t.FailNow()
	}
	if err := c.Wait(); err != nil {
		t.Fatalf("coordinator did not drain cleanly: %v", err)
	}
	if c.Steps() < 6 {
		t.Fatalf("survivors only got %d steps", c.Steps())
	}
}

func TestTCPGeometryMismatchRejected(t *testing.T) {
	cfg := testCfg()
	c := startTestCoordinator(t, cfg, CoordinatorOptions{ExpectWorkers: 1})
	bad := cfg
	bad.Hidden *= 2
	_, err := Dial(c.Addr().String(), bad, WorkerOptions{DialTimeout: 2 * time.Second})
	if err == nil || !strings.Contains(err.Error(), "geometry") {
		t.Fatalf("want geometry rejection, got %v", err)
	}
	// The coordinator must still be accepting: the right geometry joins.
	w := dialTestWorker(t, c.Addr().String(), cfg, WorkerOptions{})
	if w.Total() != 1 {
		t.Fatalf("worker set size %d", w.Total())
	}
}

func TestCoordinatorCloseUnblocksDial(t *testing.T) {
	cfg := testCfg()
	c := startTestCoordinator(t, cfg, CoordinatorOptions{ExpectWorkers: 2})
	errCh := make(chan error, 1)
	go func() {
		// Only one worker ever joins; Close must unblock its handshake.
		_, err := Dial(c.Addr().String(), cfg, WorkerOptions{DialTimeout: 5 * time.Second})
		errCh <- err
	}()
	time.Sleep(50 * time.Millisecond)
	c.Close()
	select {
	case err := <-errCh:
		if err == nil {
			t.Fatal("dial succeeded against a closed coordinator")
		}
	case <-time.After(10 * time.Second):
		t.Fatal("dial still blocked after coordinator close")
	}
}

// TestTCPLateFoldIntoNextStep arranges for a straggler's late
// contribution to arrive while the session is still serving steps, so
// it must fold into a subsequent merge rather than the termination tail:
// more late contributions arrive than are tail-dropped, proving at
// least one was merged forward.
func TestTCPLateFoldIntoNextStep(t *testing.T) {
	cfg := testCfg()
	const workers = 3
	const steps = 10
	c := startTestCoordinator(t, cfg, CoordinatorOptions{
		ExpectWorkers: workers,
		Quorum:        2,
		Deadline:      20 * time.Millisecond,
	})

	totals := make([][]int, workers)
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			w := dialTestWorker(t, c.Addr().String(), cfg, WorkerOptions{})
			for s := 0; s < steps; s++ {
				if w.ID() == 0 && s == 1 {
					// Straggle once, long enough to go stale but well
					// inside the session: the other workers pace
					// themselves below, so merges keep happening for
					// ~300ms after this worker wakes.
					time.Sleep(250 * time.Millisecond)
				} else if w.ID() != 0 {
					time.Sleep(30 * time.Millisecond)
				}
				g, err := model.NewGradientsFor(cfg)
				if err != nil {
					t.Error(err)
					return
				}
				fillGradients(g, uint64(10*w.ID()+s+1))
				_, n, err := w.Reduce([]*model.Gradients{g})
				if err != nil {
					t.Errorf("worker %d step %d: %v", w.ID(), s, err)
					return
				}
				totals[w.ID()] = append(totals[w.ID()], n)
			}
			w.Close()
		}(i)
	}
	wg.Wait()
	if t.Failed() {
		t.FailNow()
	}
	if err := c.Wait(); err != nil {
		t.Fatal(err)
	}
	if c.LateFolds() == 0 {
		t.Fatal("straggler never produced a late contribution")
	}
	if c.TailDropped() >= c.LateFolds() {
		t.Fatalf("all %d late contributions tail-dropped — none folded into a later merge", c.LateFolds())
	}
	// Conservation still holds across folds and drops.
	sent := workers * steps
	got := 0
	for _, ts := range totals[1] {
		got += ts
	}
	if got+int(c.TailDropped()) != sent {
		t.Fatalf("contribution mass: %d merged + %d tail-dropped vs %d sent", got, c.TailDropped(), sent)
	}
}

// TestInprocIsTreeReduce: the extracted in-process sync is exactly the
// deterministic tree all-reduce with the local contribution count.
func TestInprocIsTreeReduce(t *testing.T) {
	cfg := testCfg()
	sets := make([]*model.Gradients, 3)
	ref := make([]*model.Gradients, 3)
	for i := range sets {
		g, err := model.NewGradientsFor(cfg)
		if err != nil {
			t.Fatal(err)
		}
		fillGradients(g, uint64(i+1))
		sets[i] = g
		r, _ := model.NewGradientsFor(cfg)
		fillGradients(r, uint64(i+1))
		ref[i] = r
	}
	merged, n, err := Inproc{}.Reduce(sets)
	if err != nil {
		t.Fatal(err)
	}
	if n != len(sets) {
		t.Fatalf("contribs %d, want %d", n, len(sets))
	}
	if !gradientsEqual(merged, TreeReduce(ref)) {
		t.Fatal("Inproc.Reduce differs from TreeReduce")
	}
	if err := (Inproc{}).Close(); err != nil {
		t.Fatal(err)
	}
}

// TestCompressedSyncAccounting drives the in-process compressed sync
// through a dense warm-up step and compressed steps, checking the
// wire/dense accounting and that warm-up really ships dense.
func TestCompressedSyncAccounting(t *testing.T) {
	cfg := testCfg()
	c := &Compressed{
		Opts:    CompressOptions{KeepFrac: 0.1, WarmupSteps: 1},
		Metrics: obs.NewDist(obs.NewRegistry()),
	}
	defer c.Close()
	step := func() {
		g, err := model.NewGradientsFor(cfg)
		if err != nil {
			t.Fatal(err)
		}
		fillGradients(g, uint64(c.steps+1))
		if _, n, err := c.Reduce([]*model.Gradients{g}); err != nil || n != 1 {
			t.Fatalf("reduce: n=%d err=%v", n, err)
		}
	}
	step() // warm-up: dense
	if c.Ratio() != 1 {
		t.Fatalf("warm-up step ratio %.2f, want 1 (dense)", c.Ratio())
	}
	for i := 0; i < 3; i++ {
		step()
	}
	if c.WireBytes() <= 0 || c.DenseBytes() <= c.WireBytes() {
		t.Fatalf("accounting: wire %d dense %d", c.WireBytes(), c.DenseBytes())
	}
	if c.Ratio() <= 1 {
		t.Fatalf("compressed ratio %.2f, want > 1", c.Ratio())
	}
}
