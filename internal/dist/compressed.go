package dist

import (
	"etalstm/internal/compress"
	"etalstm/internal/model"
	"etalstm/internal/obs"
	"etalstm/internal/rtrace"
	"etalstm/internal/train"
)

// DefaultKeepFrac is the top-k fraction compressed syncs keep per
// tensor when neither KeepFrac nor Threshold is set: 5 % of entries,
// an 8-pair-per-element → ~10× payload reduction that error feedback
// keeps convergence-safe at training scale.
const DefaultKeepFrac = 0.05

// CompressOptions tunes gradient compression on any sync that supports
// it (Compressed, Worker uplink, Coordinator downlink).
type CompressOptions struct {
	// KeepFrac keeps the top fraction of entries per tensor by
	// compensated magnitude (0 = DefaultKeepFrac). Ignored when
	// Threshold is set.
	KeepFrac float64
	// Threshold, when positive, switches from top-k selection to MS1's
	// fixed near-zero cutoff: entries with compensated |v| below it are
	// dropped. Payload size then tracks the gradients' actual sparsity
	// instead of a fixed budget.
	Threshold float32
	// WarmupSteps ships the first N optimizer steps dense before
	// sparsification kicks in, the warm-up DGC-style systems use so the
	// optimizer's moment estimates settle on exact gradients. Both ends
	// of a wire transport derive the switch from the shared step
	// counter, so it never desynchronizes them.
	WarmupSteps int
}

// warm reports whether step is still inside the dense warm-up window.
func (o CompressOptions) warm(step int) bool { return step < o.WarmupSteps }

func (o CompressOptions) keep() float64 {
	if o.KeepFrac <= 0 {
		return DefaultKeepFrac
	}
	return o.KeepFrac
}

// Compressed is the in-process compressed gradient sync: each replica's
// contribution is sparsified — compensated by that replica's error
// feedback, top-k or threshold selected, and replaced by its (value,
// index) decoding — before the inner sync merges. The wire/dense byte
// accounting reports what the payloads would cost on the TCP transport,
// so the compression-ratio gauge means the same thing in and out of
// process.
type Compressed struct {
	// Inner merges the sparsified contributions (nil = Inproc).
	Inner train.GradientSync
	// Opts selects the compression mode and strength.
	Opts CompressOptions
	// Metrics overrides the obs bundle (nil = lazily bound to
	// obs.Default).
	Metrics *obs.Dist

	fb      [][]*compress.Feedback // per replica slot, per tensor
	scratch compress.Sparse
	sel     []float32

	wire, dense int64
	steps       int64
}

// Reduce implements train.GradientSync.
func (c *Compressed) Reduce(local []*model.Gradients) (*model.Gradients, int, error) {
	var stepWire, stepDense int64
	warm := c.Opts.warm(int(c.steps))
	for slot, g := range local {
		tensors := tensorsOf(g)
		for len(c.fb) <= slot {
			c.fb = append(c.fb, feedbackFor(tensors))
		}
		if warm {
			// Dense warm-up step: contributions pass through untouched
			// and would ship at full dense cost.
			stepWire += denseBytes(tensors)
			stepDense += denseBytes(tensors)
			continue
		}
		for i, m := range tensors {
			var s *compress.Sparse
			if c.Opts.Threshold > 0 {
				s = c.fb[slot][i].EncodeInto(&c.scratch, m, c.Opts.Threshold)
			} else {
				s = c.fb[slot][i].EncodeTopK(&c.scratch, m, c.Opts.keep())
			}
			// The replica's dense gradients become exactly what a wire
			// transport would deliver: the kept pairs, zeros elsewhere.
			s.MustDecode(m)
			stepWire += sparseWireBytes(s.NNZ())
			stepDense += 4 + 4*int64(len(m.Data))
		}
	}
	c.wire += stepWire
	c.dense += stepDense
	c.steps++
	ins := lazyDist(&c.Metrics)
	ins.WireBytes.Add(stepWire)
	ins.DenseBytes.Add(stepDense)
	ins.Steps.Inc()
	if stepWire > 0 {
		ins.Compression.Set(float64(stepDense) / float64(stepWire))
	}
	inner := c.Inner
	if inner == nil {
		inner = Inproc{}
	}
	return inner.Reduce(local)
}

// SetStepSpan forwards the trainer's step span to the inner sync when
// it supports the tracing seam (a wrapped TCP Worker does).
func (c *Compressed) SetStepSpan(sp *rtrace.Span) {
	if s, ok := c.Inner.(StepSpanSetter); ok {
		s.SetStepSpan(sp)
	}
}

// Close implements train.GradientSync.
func (c *Compressed) Close() error {
	if c.Inner != nil {
		return c.Inner.Close()
	}
	return nil
}

// WireBytes returns the cumulative gradient payload bytes the sync
// would have put on the wire; DenseBytes the uncompressed cost of the
// same payloads; Ratio their quotient (≥ 1, higher is better).
func (c *Compressed) WireBytes() int64  { return c.wire }
func (c *Compressed) DenseBytes() int64 { return c.dense }

// Ratio returns the cumulative dense/wire payload ratio (0 before any
// step).
func (c *Compressed) Ratio() float64 {
	if c.wire == 0 {
		return 0
	}
	return float64(c.dense) / float64(c.wire)
}
