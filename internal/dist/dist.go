// Package dist implements the gradient-sync transports behind the
// train.GradientSync seam — the all-reduce path of data-parallel
// training, refactored out of the engine so replicas can live in one
// process or many:
//
//   - Inproc is the deterministic in-process tree all-reduce the engine
//     always used, moved behind the seam unchanged (bitwise identical,
//     pinned by the golden reproducibility tests).
//   - Compressed wraps any sync and sparsifies each replica's
//     contribution first — MS1's (value, index) encoding applied to
//     gradient traffic, with per-replica error feedback so dropped mass
//     carries into later steps instead of vanishing.
//   - Worker/Coordinator are the TCP transport: workers ship
//     length-prefixed gradient frames to a coordinator that merges in
//     worker-id order and broadcasts the result, optionally admitting a
//     step after a quorum when stragglers exceed a wait deadline
//     (bounded staleness; late gradients fold into the next step).
package dist

import (
	"etalstm/internal/model"
	"etalstm/internal/obs"
)

// TreeReduce merges the gradient sets pairwise with stride doubling
// (g[i] += g[i+s] for i ≡ 0 mod 2s, s = 1, 2, 4, …) and returns
// grads[0], which afterwards holds the element-wise sum of all inputs.
// The reduction order depends only on len(grads), giving bit-for-bit
// reproducible float accumulation for any fixed replica count; a
// single-element slice is returned untouched (the Workers == 1
// identity). The inputs are mutated.
func TreeReduce(grads []*model.Gradients) *model.Gradients {
	if len(grads) == 0 {
		return nil
	}
	for s := 1; s < len(grads); s *= 2 {
		for i := 0; i+s < len(grads); i += 2 * s {
			grads[i].Add(grads[i+s])
		}
	}
	return grads[0]
}

// Inproc is the in-process gradient sync: the deterministic tree
// all-reduce over the local replica contributions, nothing on any wire.
// It is the seam's identity transport and the default the engine uses
// when no sync is configured.
type Inproc struct{}

// Reduce implements train.GradientSync.
func (Inproc) Reduce(local []*model.Gradients) (*model.Gradients, int, error) {
	return TreeReduce(local), len(local), nil
}

// Close implements train.GradientSync (no resources).
func (Inproc) Close() error { return nil }

// lazyDist binds ins to the process-wide registry on first use unless
// the caller injected a bundle (tests and experiments use private
// registries).
func lazyDist(ins **obs.Dist) *obs.Dist {
	if *ins == nil {
		*ins = obs.NewDist(obs.Default)
	}
	return *ins
}
