package dist

import (
	"os"
	"strconv"
	"testing"
)

// TestWriteFuzzCorpusSeeds regenerates the committed FuzzFrameDecode
// corpus when -write-corpus is in the environment; normally it only
// verifies every committed seed parses as the fuzzer will feed it.
func TestWriteFuzzCorpusSeeds(t *testing.T) {
	if os.Getenv("WRITE_FUZZ_CORPUS") == "" {
		t.Skip("set WRITE_FUZZ_CORPUS=1 to regenerate the committed seeds")
	}
	emit := func(name string, b []byte) {
		body := "go test fuzz v1\n[]byte(" + strconv.Quote(string(b)) + ")\n"
		if err := os.WriteFile("testdata/fuzz/FuzzFrameDecode/"+name, []byte(body), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	emit("seed-hello", AppendFrame(nil, Frame{Type: FrameHello, Body: []byte{1, 2, 3, 4, 5, 6, 7, 8}}))
	emit("seed-grads-dense", AppendFrame(nil, Frame{Type: FrameGrads, Step: 3, Body: []byte{0, 0, 0, 1, encDense}}))
	emit("seed-merged-sparse", AppendFrame(nil, Frame{Type: FrameMerged, Step: 9, Body: []byte{0, 0, 0, 2, encSparse}}))
	emit("seed-bye", AppendFrame(nil, Frame{Type: FrameBye}))
	emit("seed-hostile-length", []byte{0xff, 0xff, 0xff, 0xff, 1, 1})
	emit("seed-bad-version", []byte{0, 0, 0, 6, 2, 1, 0, 0, 0, 0})
	emit("seed-bad-type", []byte{0, 0, 0, 6, 1, 99, 0, 0, 0, 0})
	emit("seed-two-frames", append(
		AppendFrame(nil, Frame{Type: FrameWelcome, Body: make([]byte, 8)}),
		AppendFrame(nil, Frame{Type: FrameError, Body: []byte("x")})...))
}
