package dist

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"net"
	"sort"
	"strconv"
	"time"

	"etalstm/internal/compress"
	"etalstm/internal/model"
	"etalstm/internal/obs"
	"etalstm/internal/rtrace"
	"etalstm/internal/train"
)

// The TCP transport: N worker processes train replicas and ship their
// per-step gradient contributions to one coordinator, which merges them
// in worker-id order (the same deterministic tree reduction as the
// in-process path) and broadcasts the merged set back. Every worker
// applies the identical broadcast with an identical reducer, so worker
// weights stay bitwise in lockstep — the coordinator never trains, it
// only merges.
//
// Staleness. With Quorum < ExpectWorkers the coordinator admits a step
// once Quorum contributions have arrived and stragglers have exceeded
// the wait Deadline; a straggler's contribution is never dropped — it
// folds into the next step's merge (error against the current weights
// is the one-step-staleness the bounded-divergence contract covers).
// Because the coordinator still broadcasts every merged step to every
// live worker, and each worker consumes exactly one broadcast per step,
// worker weights never fork even when contributions land late.

const defaultHandshakeTimeout = 10 * time.Second

// CoordinatorOptions configures a merge coordinator.
type CoordinatorOptions struct {
	// ExpectWorkers is how many workers must join before training
	// starts (required, >= 1). Welcome frames — and therefore every
	// worker's Dial return — are held until the full set has connected.
	ExpectWorkers int
	// Quorum admits a step once this many contributions have arrived
	// and the Deadline has passed for the rest (0 or >= ExpectWorkers =
	// wait for everyone; the deterministic mode).
	Quorum int
	// Deadline is how long the coordinator waits for stragglers after
	// the quorum is met (0 = 50ms). Only meaningful with a partial
	// Quorum.
	Deadline time.Duration
	// Compression, when non-nil, sparsifies the merged broadcast with
	// coordinator-side error feedback; nil broadcasts dense.
	Compression *CompressOptions
	// HandshakeTimeout bounds each joining connection's hello exchange
	// (0 = 10s).
	HandshakeTimeout time.Duration
	// Metrics overrides the obs bundle (nil = lazily bound to
	// obs.Default).
	Metrics *obs.Dist
	// Tracer overrides the flight recorder the coordinator's per-step
	// "dist.step" spans land in (nil = rtrace.Default(), which may
	// itself be nil = tracing disabled).
	Tracer *rtrace.Tracer
}

func (o CoordinatorOptions) deadline() time.Duration {
	if o.Deadline <= 0 {
		return 50 * time.Millisecond
	}
	return o.Deadline
}

func (o CoordinatorOptions) handshake() time.Duration {
	if o.HandshakeTimeout <= 0 {
		return defaultHandshakeTimeout
	}
	return o.HandshakeTimeout
}

// coordWorker is the coordinator's per-connection state. The buffer
// handshake: the reader goroutine decodes each gradient frame into buf,
// posts an event, and blocks until the collector acks that it has
// consumed the buffer — so buf never changes under the merge.
type coordWorker struct {
	id   int
	conn net.Conn
	bw   *bufio.Writer
	buf  *model.Gradients
	ack  chan struct{}
}

type coordEvent struct {
	id       int
	step     uint32
	contribs int
	wire     int64 // received gradient payload bytes
	gone     bool
	err      error
	// tid/sid are the worker upload span's trace context (zero when the
	// worker traced nothing or spoke frame v1).
	tid rtrace.TraceID
	sid rtrace.SpanID
}

// Coordinator merges and broadcasts gradient steps for a set of TCP
// workers. Create one with StartCoordinator; it serves on its own
// goroutine until every worker disconnects or Close is called.
type Coordinator struct {
	ln   net.Listener
	cfg  model.Config
	opts CoordinatorOptions

	quit chan struct{} // closed by Close
	done chan struct{} // closed when serve returns
	err  error         // set before done closes

	steps       int64
	staleSteps  int64
	lateFolds   int64
	tailDropped int64
}

// StartCoordinator listens on addr and serves a merge session for
// opts.ExpectWorkers workers training cfg-shaped models. It returns as
// soon as the listener is bound (Addr reports the resolved address, so
// ":0" works for tests); the session runs on a background goroutine
// until all workers disconnect (Wait returns nil) or a fatal transport
// error occurs (Wait returns it).
func StartCoordinator(addr string, cfg model.Config, opts CoordinatorOptions) (*Coordinator, error) {
	if opts.ExpectWorkers < 1 {
		return nil, fmt.Errorf("dist: coordinator requires ExpectWorkers >= 1")
	}
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	c := &Coordinator{
		ln: ln, cfg: cfg, opts: opts,
		quit: make(chan struct{}), done: make(chan struct{}),
	}
	go c.serve()
	return c, nil
}

// Addr returns the coordinator's bound listen address.
func (c *Coordinator) Addr() net.Addr { return c.ln.Addr() }

// Wait blocks until the merge session ends and returns its outcome
// (nil on a clean drain — every worker disconnected).
func (c *Coordinator) Wait() error {
	<-c.done
	return c.err
}

// Close shuts the session down: the listener and every worker
// connection are closed and Wait unblocks.
func (c *Coordinator) Close() error {
	select {
	case <-c.quit:
	default:
		close(c.quit)
	}
	c.ln.Close()
	<-c.done
	return nil
}

// StaleSteps reports how many steps were admitted without every live
// worker; LateFolds how many late contributions were folded forward.
func (c *Coordinator) StaleSteps() int64 { return c.staleSteps }
func (c *Coordinator) LateFolds() int64  { return c.lateFolds }

// TailDropped reports contributions that arrived late for the session's
// final step and so had no next step to fold into — the one place
// bounded staleness can lose gradient mass, and only at termination.
func (c *Coordinator) TailDropped() int64 { return c.tailDropped }

// Steps reports the merged optimizer steps served so far.
func (c *Coordinator) Steps() int64 { return c.steps }

func (c *Coordinator) serve() {
	defer close(c.done)
	workers, err := c.acceptWorkers()
	if err != nil {
		c.err = err
		return
	}
	defer func() {
		for _, w := range workers {
			w.conn.Close()
		}
	}()
	c.err = c.mergeLoop(workers)
}

// acceptWorkers admits ExpectWorkers connections: each must open with a
// hello frame whose geometry checksum matches the coordinator's model
// config. Only once the full set has joined does every worker receive
// its welcome (id, total) — the start barrier.
func (c *Coordinator) acceptWorkers() ([]*coordWorker, error) {
	var workers []*coordWorker
	geom := GeomSum(c.cfg)
	var scratch []byte
	for len(workers) < c.opts.ExpectWorkers {
		conn, err := c.ln.Accept()
		if err != nil {
			select {
			case <-c.quit:
				return nil, fmt.Errorf("dist: coordinator closed while waiting for workers (%d of %d joined)",
					len(workers), c.opts.ExpectWorkers)
			default:
			}
			return nil, err
		}
		conn.SetDeadline(time.Now().Add(c.opts.handshake()))
		var f Frame
		f, scratch, err = ReadFrame(conn, scratch)
		if err != nil || f.Type != FrameHello || len(f.Body) != 8 {
			conn.Close()
			continue // not a worker; keep waiting
		}
		if got := binary.BigEndian.Uint64(f.Body); got != geom {
			writeFrame(conn, nil, Frame{Type: FrameError,
				Body: []byte(fmt.Sprintf("model geometry mismatch: worker %#x, coordinator %#x (check -bench/-hidden-div/-seq/-batch)", got, geom))})
			conn.Close()
			continue
		}
		conn.SetDeadline(time.Time{})
		buf, err := model.NewGradientsFor(c.cfg)
		if err != nil {
			conn.Close()
			return nil, err
		}
		workers = append(workers, &coordWorker{
			id: len(workers), conn: conn, bw: bufio.NewWriter(conn),
			buf: buf, ack: make(chan struct{}, 1),
		})
	}
	var wbuf []byte
	for _, w := range workers {
		var body [8]byte
		binary.BigEndian.PutUint32(body[:4], uint32(w.id))
		binary.BigEndian.PutUint32(body[4:], uint32(len(workers)))
		var err error
		if wbuf, err = writeFrame(w.bw, wbuf, Frame{Type: FrameWelcome, Body: body[:]}); err == nil {
			err = w.bw.Flush()
		}
		if err != nil {
			return nil, fmt.Errorf("dist: welcome to worker %d: %w", w.id, err)
		}
	}
	return workers, nil
}

// reader pumps one worker's frames into events, decoding gradient
// payloads into the worker's buffer and waiting for the collector's
// ack before each next read (see coordWorker).
func (c *Coordinator) reader(w *coordWorker, events chan<- coordEvent) {
	var scratch []byte
	br := bufio.NewReader(w.conn)
	for {
		f, s, err := ReadFrame(br, scratch)
		scratch = s
		if err != nil {
			events <- coordEvent{id: w.id, gone: true}
			return
		}
		switch f.Type {
		case FrameBye:
			events <- coordEvent{id: w.id, gone: true}
			return
		case FrameGrads:
			if len(f.Body) < 4 {
				events <- coordEvent{id: w.id, gone: true, err: fmt.Errorf("dist: worker %d: short gradient frame", w.id)}
				return
			}
			contribs := int(binary.BigEndian.Uint32(f.Body))
			if err := decodeGradients(f.Body[4:], w.buf); err != nil {
				events <- coordEvent{id: w.id, gone: true, err: fmt.Errorf("dist: worker %d: %w", w.id, err)}
				return
			}
			events <- coordEvent{id: w.id, step: f.Step, contribs: contribs, wire: int64(len(f.Body)),
				tid: f.TraceID, sid: f.SpanID}
			select {
			case <-w.ack:
			case <-c.quit:
				return
			}
		case FrameError:
			events <- coordEvent{id: w.id, gone: true, err: fmt.Errorf("dist: worker %d: %s", w.id, f.Body)}
			return
		default:
			events <- coordEvent{id: w.id, gone: true, err: fmt.Errorf("dist: worker %d: unexpected frame type %d", w.id, f.Type)}
			return
		}
	}
}

// mergeLoop is the coordinator's steady state: collect one step's
// contributions (all live workers, or quorum + deadline), merge in
// worker-id order, fold forward any late arrivals, broadcast, repeat —
// until the last worker disconnects.
func (c *Coordinator) mergeLoop(workers []*coordWorker) error {
	events := make(chan coordEvent, len(workers))
	for _, w := range workers {
		go c.reader(w, events)
	}
	ins := lazyDist(&c.opts.Metrics)
	tracer := c.opts.Tracer
	if tracer == nil {
		tracer = rtrace.Default()
	}
	byID := make(map[int]*coordWorker, len(workers))
	live := make(map[int]bool, len(workers))
	for _, w := range workers {
		byID[w.id] = w
		live[w.id] = true
	}

	late, err := model.NewGradientsFor(c.cfg)
	if err != nil {
		return err
	}
	lateN := 0
	var downFB []*compress.Feedback
	var scratch compress.Sparse
	var body, sendBuf []byte
	denseTmpl := denseBytes(tensorsOf(late))

	quorum := c.opts.Quorum
	if quorum <= 0 || quorum > c.opts.ExpectWorkers {
		quorum = c.opts.ExpectWorkers
	}

	var step uint32
	for len(live) > 0 {
		// The step span: the coordinator owns the step's trace, and its
		// context rides the merged broadcast so every worker's upload
		// span re-parents onto it (one cross-process step trace).
		sp := tracer.StartSpan("dist.step")
		sp.Attr("step", strconv.Itoa(int(step)))
		contrib := map[int]int{} // worker id -> contribution count, this step
		var stepWire, stepDense int64
		var timer *time.Timer
		var deadlineC <-chan time.Time
		var quorumAt time.Time
		stopTimer := func() {
			if timer != nil {
				timer.Stop()
				timer, deadlineC = nil, nil
			}
		}

	collect:
		for {
			// Complete when every live worker has contributed (workers
			// that contributed and then vanished keep their slot).
			pending := 0
			for id := range live {
				if _, ok := contrib[id]; !ok {
					pending++
				}
			}
			if pending == 0 {
				break
			}
			// Bounded staleness: once a partial quorum has contributed,
			// give stragglers one deadline and then admit the step
			// without them. (If deaths leave fewer live workers than the
			// quorum, the pending == 0 check above still terminates the
			// collect — no deadlock, just no early admission.)
			if deadlineC == nil && quorum < c.opts.ExpectWorkers && len(contrib) >= quorum {
				timer = time.NewTimer(c.opts.deadline())
				deadlineC = timer.C
				quorumAt = time.Now()
			}
			select {
			case ev := <-events:
				w := byID[ev.id]
				switch {
				case ev.gone:
					delete(live, ev.id)
					sp.Event("worker-gone", "worker", strconv.Itoa(ev.id))
					if ev.err != nil && c.err == nil {
						// Remember the first worker-side fault for Wait,
						// but keep draining the rest of the session.
						c.err = ev.err
					}
				case ev.step == step:
					contrib[ev.id] = ev.contribs
					stepWire += ev.wire
					stepDense += denseTmpl
					sp.Event("upload", "worker", strconv.Itoa(ev.id), "span", ev.sid.String())
				case ev.step < step:
					// A straggler's contribution for an already-admitted
					// step: fold it into this one so no mass is lost.
					late.Add(w.buf)
					lateN += ev.contribs
					c.lateFolds++
					ins.LateContribs.Inc()
					stepWire += ev.wire
					stepDense += denseTmpl
					sp.Event("late-fold", "worker", strconv.Itoa(ev.id), "from_step", strconv.Itoa(int(ev.step)))
					w.ack <- struct{}{}
				default:
					err := fmt.Errorf("dist: worker %d sent step %d while coordinator at %d", ev.id, ev.step, step)
					sp.FinishErr(err)
					return err
				}
			case <-deadlineC:
				deadlineC, timer = nil, nil
				sp.Event("quorum-admit",
					"contributed", strconv.Itoa(len(contrib)),
					"live", strconv.Itoa(len(live)),
					"straggler_wait_ms", strconv.FormatInt(time.Since(quorumAt).Milliseconds(), 10))
				break collect
			case <-c.quit:
				stopTimer()
				err := fmt.Errorf("dist: coordinator closed at step %d", step)
				sp.FinishErr(err)
				return err
			}
		}
		stopTimer()
		if len(live) == 0 && len(contrib) == 0 {
			sp.Finish()
			break
		}

		// Merge in ascending worker-id order — the same deterministic
		// tree the in-process path uses.
		msp := sp.Child("dist.merge")
		ids := make([]int, 0, len(contrib))
		for id := range contrib {
			ids = append(ids, id)
		}
		sort.Ints(ids)
		sets := make([]*model.Gradients, 0, len(ids))
		total := 0
		for _, id := range ids {
			sets = append(sets, byID[id].buf)
			total += contrib[id]
		}
		merged := TreeReduce(sets)
		if lateN > 0 {
			merged.Add(late)
			total += lateN
			lateN = 0
			zeroGradients(late)
		}
		stale := false
		for id := range live {
			if _, ok := contrib[id]; !ok {
				stale = true
				break
			}
		}
		if stale {
			c.staleSteps++
			ins.StaleSteps.Inc()
			sp.Attr("stale", "true")
		}

		// Encode once, broadcast the identical payload to every live
		// worker — that is what keeps worker weights in lockstep.
		body = body[:0]
		body = binary.BigEndian.AppendUint32(body, uint32(total))
		var payloadWire int64
		if opt := c.opts.Compression; opt != nil && !opt.warm(int(step)) {
			tensors := tensorsOf(merged)
			if downFB == nil {
				downFB = feedbackFor(tensors)
			}
			var wire int64
			body, wire, _ = appendSparse(body, tensors, downFB, *opt, &scratch)
			payloadWire = wire
		} else {
			body = appendDense(body, tensorsOf(merged))
			payloadWire = denseTmpl
		}
		var flags byte
		if sp.Sampled() {
			flags |= FlagSampled
		}
		for _, w := range live2slice(byID, live) {
			var werr error
			if sendBuf, werr = writeFrame(w.bw, sendBuf, Frame{Type: FrameMerged, Step: step, Body: body,
				TraceID: sp.TraceID(), SpanID: sp.SpanID(), Flags: flags}); werr == nil {
				werr = w.bw.Flush()
			}
			if werr != nil {
				delete(live, w.id)
				w.conn.Close()
				continue
			}
			stepWire += payloadWire
			stepDense += denseTmpl
		}
		msp.Attr("contribs", strconv.Itoa(total))
		msp.Finish()
		// Release the contributors' buffers for the next decode.
		for _, id := range ids {
			byID[id].ack <- struct{}{}
		}
		sp.Finish()

		c.steps++
		ins.Steps.Inc()
		ins.WireBytes.Add(stepWire)
		ins.DenseBytes.Add(stepDense)
		if stepWire > 0 {
			ins.Compression.Set(float64(stepDense) / float64(stepWire))
		}
		step++
	}
	// Contributions folded into `late` after the final merge have no
	// next step; surface them instead of losing them silently.
	c.tailDropped = int64(lateN)
	return c.err
}

// live2slice returns the live workers (order irrelevant; the broadcast
// payload is identical for all).
func live2slice(byID map[int]*coordWorker, live map[int]bool) []*coordWorker {
	out := make([]*coordWorker, 0, len(live))
	for id := range live {
		out = append(out, byID[id])
	}
	return out
}

// zeroGradients clears every tensor of g in place.
func zeroGradients(g *model.Gradients) {
	for _, m := range tensorsOf(g) {
		for i := range m.Data {
			m.Data[i] = 0
		}
	}
}

// WorkerOptions configures a TCP gradient-sync worker.
type WorkerOptions struct {
	// Compression, when non-nil, sparsifies the uplink contribution
	// with worker-side error feedback; nil sends dense.
	Compression *CompressOptions
	// DialTimeout bounds the connect + handshake (0 = 10s). Note the
	// handshake completes only once every expected worker has joined
	// the coordinator, so this must cover the slowest peer's arrival.
	DialTimeout time.Duration
	// Metrics overrides the obs bundle (nil = lazily bound to
	// obs.Default).
	Metrics *obs.Dist
	// Tracer overrides the flight recorder the worker's "dist.upload"
	// spans land in (nil = rtrace.Default()).
	Tracer *rtrace.Tracer
}

// Worker is the worker-process side of the TCP transport; it implements
// train.GradientSync, so a trainer plugs it in where the in-process
// tree all-reduce would run.
type Worker struct {
	conn  net.Conn
	br    *bufio.Reader
	id    int
	total int
	cfg   model.Config
	opts  WorkerOptions

	step    uint32
	recv    *model.Gradients
	fb      []*compress.Feedback
	scratch compress.Sparse
	body    []byte
	sendBuf []byte
	readBuf []byte

	wire, dense int64
	closed      bool

	// stepSpan, when set, parents the next Reduce's upload span — the
	// trainer's per-step span (core/parallel install it via the
	// StepSpanSetter seam so the upload nests under the training step).
	stepSpan *rtrace.Span
}

// SetStepSpan parents the next Reduce's "dist.upload" span under sp —
// the seam trainers use to nest the network exchange inside their
// per-step trace. Passing nil reverts to root upload spans.
func (w *Worker) SetStepSpan(sp *rtrace.Span) { w.stepSpan = sp }

// StepSpanSetter is the optional interface a train.GradientSync
// implements when it can nest its per-step wire exchange under the
// trainer's step span.
type StepSpanSetter interface {
	SetStepSpan(sp *rtrace.Span)
}

var _ train.GradientSync = (*Worker)(nil)

// Dial connects to a coordinator serving cfg-shaped models and blocks
// until the coordinator has admitted the full worker set (the start
// barrier). The returned Worker is ready to Reduce.
func Dial(addr string, cfg model.Config, opts WorkerOptions) (*Worker, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	timeout := opts.DialTimeout
	if timeout <= 0 {
		timeout = defaultHandshakeTimeout
	}
	conn, err := net.DialTimeout("tcp", addr, timeout)
	if err != nil {
		return nil, err
	}
	var hello [8]byte
	binary.BigEndian.PutUint64(hello[:], GeomSum(cfg))
	if _, err := writeFrame(conn, nil, Frame{Type: FrameHello, Body: hello[:]}); err != nil {
		conn.Close()
		return nil, err
	}
	conn.SetReadDeadline(time.Now().Add(timeout))
	br := bufio.NewReader(conn)
	f, readBuf, err := ReadFrame(br, nil)
	if err != nil {
		conn.Close()
		return nil, fmt.Errorf("dist: awaiting welcome: %w", err)
	}
	conn.SetReadDeadline(time.Time{})
	switch f.Type {
	case FrameWelcome:
		if len(f.Body) != 8 {
			conn.Close()
			return nil, fmt.Errorf("dist: malformed welcome frame")
		}
	case FrameError:
		msg := string(f.Body)
		conn.Close()
		return nil, fmt.Errorf("dist: coordinator rejected worker: %s", msg)
	default:
		conn.Close()
		return nil, fmt.Errorf("dist: unexpected frame type %d during handshake", f.Type)
	}
	recv, err := model.NewGradientsFor(cfg)
	if err != nil {
		conn.Close()
		return nil, err
	}
	return &Worker{
		conn: conn, br: br, cfg: cfg, opts: opts,
		id:    int(binary.BigEndian.Uint32(f.Body[:4])),
		total: int(binary.BigEndian.Uint32(f.Body[4:])),
		recv:  recv, readBuf: readBuf,
	}, nil
}

// ID returns the coordinator-assigned worker id (0-based); Total the
// size of the admitted worker set. Useful for sharding data providers.
func (w *Worker) ID() int    { return w.id }
func (w *Worker) Total() int { return w.total }

// WireBytes / DenseBytes / Ratio report this worker's cumulative
// gradient payload traffic (both directions) and the dense-equivalent
// cost, mirroring Compressed's accounting.
func (w *Worker) WireBytes() int64  { return w.wire }
func (w *Worker) DenseBytes() int64 { return w.dense }

// Ratio returns the cumulative dense/wire payload ratio (0 before any
// step).
func (w *Worker) Ratio() float64 {
	if w.wire == 0 {
		return 0
	}
	return float64(w.dense) / float64(w.wire)
}

// Reduce implements train.GradientSync: locally tree-reduce the
// replica contributions, ship the sum to the coordinator, and return
// the broadcast merged set with its global contribution count. The
// returned set aliases the worker's receive buffer — valid until the
// next Reduce.
func (w *Worker) Reduce(local []*model.Gradients) (*model.Gradients, int, error) {
	if w.closed {
		return nil, 0, fmt.Errorf("dist: Reduce on a closed worker")
	}
	if len(local) == 0 {
		return nil, 0, fmt.Errorf("dist: Reduce requires at least one local contribution")
	}
	// The upload span: nested under the trainer's step span when one was
	// installed, a root otherwise. Its identity rides the FrameGrads
	// trace context; the merged broadcast then re-parents it onto the
	// coordinator's step trace (Adopt), so the whole local step — FW/BP
	// phases included — lands in one cross-process trace.
	tracer := w.opts.Tracer
	if tracer == nil {
		tracer = rtrace.Default()
	}
	var sp *rtrace.Span
	if w.stepSpan != nil {
		sp = w.stepSpan.Child("dist.upload")
	} else {
		sp = tracer.StartSpan("dist.upload")
	}
	sp.Attr("worker", strconv.Itoa(w.id))
	sp.Attr("step", strconv.Itoa(int(w.step)))
	sum := TreeReduce(local)
	w.body = w.body[:0]
	w.body = binary.BigEndian.AppendUint32(w.body, uint32(len(local)))
	tensors := tensorsOf(sum)
	dense := denseBytes(tensors)
	var upWire int64
	if opt := w.opts.Compression; opt != nil && !opt.warm(int(w.step)) {
		if w.fb == nil {
			w.fb = feedbackFor(tensors)
		}
		var wire int64
		w.body, wire, _ = appendSparse(w.body, tensors, w.fb, *opt, &w.scratch)
		upWire = wire
	} else {
		w.body = appendDense(w.body, tensors)
		upWire = dense
	}
	var flags byte
	if sp.Sampled() {
		flags |= FlagSampled
	}
	var err error
	if w.sendBuf, err = writeFrame(w.conn, w.sendBuf, Frame{Type: FrameGrads, Step: w.step, Body: w.body,
		TraceID: sp.TraceID(), SpanID: sp.SpanID(), Flags: flags}); err != nil {
		err = fmt.Errorf("dist: sending step %d: %w", w.step, err)
		sp.FinishErr(err)
		return nil, 0, err
	}

	f, readBuf, err := ReadFrame(w.br, w.readBuf)
	w.readBuf = readBuf
	if err != nil {
		err = fmt.Errorf("dist: awaiting merged step %d: %w", w.step, err)
		sp.FinishErr(err)
		return nil, 0, err
	}
	switch f.Type {
	case FrameMerged:
	case FrameError:
		err = fmt.Errorf("dist: coordinator error: %s", f.Body)
		sp.FinishErr(err)
		return nil, 0, err
	default:
		err = fmt.Errorf("dist: unexpected frame type %d at step %d", f.Type, w.step)
		sp.FinishErr(err)
		return nil, 0, err
	}
	if f.Step != w.step {
		err = fmt.Errorf("dist: merged frame for step %d, expected %d", f.Step, w.step)
		sp.FinishErr(err)
		return nil, 0, err
	}
	if len(f.Body) < 4 {
		err = fmt.Errorf("dist: short merged frame")
		sp.FinishErr(err)
		return nil, 0, err
	}
	// Re-parent onto the coordinator's step trace: the broadcast is the
	// first moment this worker learns which trace the step belongs to.
	if f.Traced() {
		sp.Adopt(f.TraceID, f.SpanID, f.Sampled())
	}
	total := int(binary.BigEndian.Uint32(f.Body))
	if err := decodeGradients(f.Body[4:], w.recv); err != nil {
		sp.FinishErr(err)
		return nil, 0, err
	}
	downWire := int64(len(f.Body) - 4)
	w.wire += upWire + downWire
	w.dense += 2 * dense
	ins := lazyDist(&w.opts.Metrics)
	ins.WireBytes.Add(upWire + downWire)
	ins.DenseBytes.Add(2 * dense)
	ins.Steps.Inc()
	if upWire+downWire > 0 {
		ins.Compression.Set(float64(2*dense) / float64(upWire+downWire))
	}
	sp.Attr("contribs", strconv.Itoa(total))
	sp.Finish()
	w.step++
	return w.recv, total, nil
}

// Close sends a clean goodbye and closes the connection. Safe to call
// more than once.
func (w *Worker) Close() error {
	if w.closed {
		return nil
	}
	w.closed = true
	writeFrame(w.conn, w.sendBuf, Frame{Type: FrameBye})
	return w.conn.Close()
}
