package dist

import (
	"bytes"
	"testing"
)

// FuzzFrameDecode hammers the length-prefixed frame decoder — the bytes
// a coordinator reads straight off accepted sockets — with the
// invariants a hostile or corrupt peer must not be able to break:
// no panic, no oversized allocation, and decode(encode(f)) == f for
// every frame the decoder accepts.
func FuzzFrameDecode(f *testing.F) {
	// Seeds: every frame type round-tripped, plus the corrupt shapes the
	// unit tests pin (short prefix, truncated body, hostile length,
	// version and type mismatches). testdata/fuzz/FuzzFrameDecode holds
	// further committed regression inputs.
	for _, fr := range []Frame{
		{Type: FrameHello, Body: []byte{1, 2, 3, 4, 5, 6, 7, 8}},
		{Type: FrameWelcome, Body: make([]byte, 8)},
		{Type: FrameGrads, Step: 3, Body: []byte{0, 0, 0, 1, encDense}},
		{Type: FrameMerged, Step: 9, Body: []byte{0, 0, 0, 2, encSparse}},
		{Type: FrameBye},
		{Type: FrameError, Body: []byte("bad geometry")},
	} {
		f.Add(AppendFrame(nil, fr))
	}
	f.Add([]byte{})
	f.Add([]byte{0, 0, 0})
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 1, 1})
	f.Add([]byte{0, 0, 0, 6, 2, 1, 0, 0, 0, 0})       // bad version
	f.Add([]byte{0, 0, 0, 6, 1, 99, 0, 0, 0, 0})      // bad type
	f.Add([]byte{0, 0, 0, 7, 1, 3, 0, 0, 0, 0, 0xAB}) // 1-byte body

	f.Fuzz(func(t *testing.T, data []byte) {
		fr, n, err := DecodeFrame(data)
		if err != nil {
			return
		}
		if n < frameHeader+4 || n > len(data) {
			t.Fatalf("consumed %d of %d bytes", n, len(data))
		}
		if !fr.Type.valid() {
			t.Fatalf("decoder accepted invalid type %d", fr.Type)
		}
		if len(fr.Body) > MaxFrameBody {
			t.Fatalf("body %d exceeds cap", len(fr.Body))
		}
		// Accepted frames must re-encode to exactly the consumed bytes.
		if re := AppendFrame(nil, fr); !bytes.Equal(re, data[:n]) {
			t.Fatalf("re-encode mismatch:\n got %x\nwant %x", re, data[:n])
		}
		// And the streaming reader must agree with the in-memory decoder.
		fr2, _, err := ReadFrame(bytes.NewReader(data), nil)
		if err != nil {
			t.Fatalf("ReadFrame rejected what DecodeFrame accepted: %v", err)
		}
		if fr2.Type != fr.Type || fr2.Step != fr.Step || !bytes.Equal(fr2.Body, fr.Body) {
			t.Fatal("ReadFrame and DecodeFrame disagree")
		}
	})
}
