package parallel

import (
	"context"
	"errors"
	"fmt"
	"math"
	"testing"
	"time"

	"etalstm/internal/model"
	"etalstm/internal/rng"
	"etalstm/internal/tensor"
	"etalstm/internal/train"
	"etalstm/internal/workload"
)

func testNetwork(t *testing.T, seed uint64) (*model.Network, train.Provider) {
	t.Helper()
	bench, err := workload.ByName("IMDB")
	if err != nil {
		t.Fatal(err)
	}
	small := bench.Scaled(64, 8, 4)
	net, err := model.NewNetwork(small.Cfg, rng.New(seed))
	if err != nil {
		t.Fatal(err)
	}
	return net, small.Provider(8, seed)
}

// baselineFn is the simplest possible BatchFn: raw-cache forward, full
// backward, no pruning or skipping.
func baselineFn(net *model.Network, b train.Batch, _ int) (BatchResult, error) {
	res, err := net.Forward(b.Inputs, b.Targets, nil)
	if err != nil {
		return BatchResult{}, err
	}
	grads := net.NewGradients()
	if err := net.Backward(res, nil, grads, model.BackwardOpts{}); err != nil {
		return BatchResult{}, err
	}
	return BatchResult{Grads: grads, Loss: res.Loss}, nil
}

func checksum(net *model.Network) uint64 {
	var sum uint64
	for _, p := range net.Layer {
		for g := 0; g < 4; g++ {
			for _, v := range p.W[g].Data {
				sum += uint64(math.Float32bits(v))
			}
			for _, v := range p.U[g].Data {
				sum += uint64(math.Float32bits(v))
			}
			for _, v := range p.B[g] {
				sum += uint64(math.Float32bits(v))
			}
		}
	}
	for _, v := range net.Proj.Data {
		sum += uint64(math.Float32bits(v))
	}
	for _, v := range net.ProjB {
		sum += uint64(math.Float32bits(v))
	}
	return sum
}

// TestTreeReduceExactSum feeds integer-valued gradients (exact in
// float32 regardless of summation order) through TreeReduce and checks
// the result equals the arithmetic sum, for every width including the
// identity case.
func TestTreeReduceExactSum(t *testing.T) {
	net, _ := testNetwork(t, 1)
	for _, n := range []int{1, 2, 3, 4, 5, 8} {
		grads := make([]*model.Gradients, n)
		for i := range grads {
			grads[i] = net.NewGradients()
			grads[i].Layer[0].W[0].Data[0] = float32(i + 1)
			grads[i].ProjB[0] = float32(10 * (i + 1))
			grads[i].SkippedCells = i
			grads[i].ExecutedCells = 2 * i
		}
		first := grads[0]
		merged := TreeReduce(grads)
		if merged != first {
			t.Fatalf("n=%d: TreeReduce must reduce into grads[0]", n)
		}
		wantW := float32(n * (n + 1) / 2)
		if got := merged.Layer[0].W[0].Data[0]; got != wantW {
			t.Errorf("n=%d: W sum = %v, want %v", n, got, wantW)
		}
		if got := merged.ProjB[0]; got != 10*wantW {
			t.Errorf("n=%d: ProjB sum = %v, want %v", n, got, 10*wantW)
		}
		wantSkip := n * (n - 1) / 2
		if merged.SkippedCells != wantSkip || merged.ExecutedCells != 2*wantSkip {
			t.Errorf("n=%d: cell counters %d/%d, want %d/%d",
				n, merged.SkippedCells, merged.ExecutedCells, wantSkip, 2*wantSkip)
		}
	}
}

// TestTreeReduceDeterministic reduces the same irrational-valued
// gradient sets twice and demands bitwise-identical results — the tree
// order must be a function of the count alone.
func TestTreeReduceDeterministic(t *testing.T) {
	net, _ := testNetwork(t, 2)
	build := func() []*model.Gradients {
		r := rng.New(99)
		grads := make([]*model.Gradients, 7)
		for i := range grads {
			grads[i] = net.NewGradients()
			for _, m := range []*[]float32{&grads[i].Layer[0].W[0].Data, &grads[i].Proj.Data} {
				for j := range *m {
					(*m)[j] = float32(r.Float64()) - 0.5
				}
			}
		}
		return grads
	}
	a := TreeReduce(build())
	b := TreeReduce(build())
	for j := range a.Proj.Data {
		if math.Float32bits(a.Proj.Data[j]) != math.Float32bits(b.Proj.Data[j]) {
			t.Fatalf("Proj[%d] differs between identical reductions", j)
		}
	}
	for j := range a.Layer[0].W[0].Data {
		if math.Float32bits(a.Layer[0].W[0].Data[j]) != math.Float32bits(b.Layer[0].W[0].Data[j]) {
			t.Fatalf("W[%d] differs between identical reductions", j)
		}
	}
}

// TestEngineMatchesSerial runs the same epoch through a Workers == 1
// engine and through a hand-written serial loop with the identical
// reducer, and demands bitwise-equal weights: the engine's one-batch
// groups and identity reduce must add no float operations.
func TestEngineMatchesSerial(t *testing.T) {
	red := train.ClipStep{Opt: &train.SGD{LR: 0.05}, Clip: 5}

	netA, provA := testNetwork(t, 7)
	eng := New(netA, 1, red)
	if err := eng.Validate(); err != nil {
		t.Fatal(err)
	}
	resA, err := eng.RunEpoch(context.Background(), provA, baselineFn)
	if err != nil {
		t.Fatal(err)
	}

	netB, provB := testNetwork(t, 7)
	var serialLoss float64
	for b := 0; b < provB.NumBatches(); b++ {
		r, err := baselineFn(netB, provB.Batch(b), b)
		if err != nil {
			t.Fatal(err)
		}
		serialLoss += r.Loss
		red.Apply(netB, r.Grads, 1)
	}

	if checksum(netA) != checksum(netB) {
		t.Error("Workers == 1 engine diverged bitwise from the serial loop")
	}
	if resA.TotalLoss != serialLoss {
		t.Errorf("loss differs: engine %x, serial %x", resA.TotalLoss, serialLoss)
	}
	if resA.Batches != provA.NumBatches() {
		t.Errorf("engine processed %d batches, want %d", resA.Batches, provA.NumBatches())
	}
}

// TestEngineReproducible runs the same epoch twice at Workers == 3 (an
// uneven divisor of the batch count, so the last group is partial) and
// checks bitwise reproducibility.
func TestEngineReproducible(t *testing.T) {
	run := func() uint64 {
		net, prov := testNetwork(t, 11)
		eng := New(net, 3, train.ClipStep{Opt: &train.Adam{LR: 0.01}, Clip: 5})
		if _, err := eng.RunEpoch(context.Background(), prov, baselineFn); err != nil {
			t.Fatal(err)
		}
		return checksum(net)
	}
	if run() != run() {
		t.Error("Workers == 3 epoch is not reproducible run-to-run")
	}
}

// TestEngineErrorOrder makes batch 2 fail and checks the engine surfaces
// exactly that error with the statistics of the batches before it — the
// same observable state as a serial run stopping at the first failure.
func TestEngineErrorOrder(t *testing.T) {
	boom := errors.New("boom")
	net, prov := testNetwork(t, 5)
	eng := New(net, 4, train.ClipStep{Opt: &train.SGD{LR: 0.05}, Clip: 5})
	fn := func(n *model.Network, b train.Batch, index int) (BatchResult, error) {
		if index == 2 {
			return BatchResult{}, fmt.Errorf("batch %d: %w", index, boom)
		}
		return baselineFn(n, b, index)
	}
	res, err := eng.RunEpoch(context.Background(), prov, fn)
	if !errors.Is(err, boom) {
		t.Fatalf("want the injected error, got %v", err)
	}
	if res.Batches != 2 {
		t.Errorf("folded %d batches before the failure, want 2 (batch order)", res.Batches)
	}
}

// TestEngineCancellation checks an already-cancelled context stops the
// epoch before any batch runs, and that the error is ctx.Err().
func TestEngineCancellation(t *testing.T) {
	net, prov := testNetwork(t, 6)
	eng := New(net, 2, train.ClipStep{Opt: &train.SGD{LR: 0.05}, Clip: 5})
	before := checksum(net)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res, err := eng.RunEpoch(ctx, prov, baselineFn)
	if err != context.Canceled {
		t.Fatalf("want context.Canceled, got %v", err)
	}
	if res.Batches != 0 {
		t.Errorf("cancelled epoch still folded %d batches", res.Batches)
	}
	if checksum(net) != before {
		t.Error("cancelled epoch mutated the master weights")
	}
}

// TestObservedFold checks calibration grids are summed element-wise in
// batch order across a group.
func TestObservedFold(t *testing.T) {
	net, prov := testNetwork(t, 8)
	eng := New(net, 4, train.ClipStep{Opt: &train.SGD{LR: 0.01}, Clip: 5})
	fn := func(n *model.Network, b train.Batch, index int) (BatchResult, error) {
		r, err := baselineFn(n, b, index)
		if err != nil {
			return r, err
		}
		r.Observed = [][]float64{{1, float64(index)}}
		return r, nil
	}
	res, err := eng.RunEpoch(context.Background(), prov, fn)
	if err != nil {
		t.Fatal(err)
	}
	n := prov.NumBatches()
	if got := res.Observed[0][0]; got != float64(n) {
		t.Errorf("Observed[0][0] = %v, want %d", got, n)
	}
	if got, want := res.Observed[0][1], float64(n*(n-1)/2); got != want {
		t.Errorf("Observed[0][1] = %v, want %v", got, want)
	}
}

// TestNewClampsWorkers checks the replica count is clamped to >= 1 and
// reported via Workers.
func TestNewClampsWorkers(t *testing.T) {
	net, _ := testNetwork(t, 9)
	if got := New(net, 0, train.ClipStep{Opt: &train.SGD{LR: 1}}).Workers(); got != 1 {
		t.Fatalf("Workers() = %d, want clamp to 1", got)
	}
	if got := New(net, 5, train.ClipStep{Opt: &train.SGD{LR: 1}}).Workers(); got != 5 {
		t.Fatalf("Workers() = %d, want 5", got)
	}
}

// TestReplicaWorkspaceIsolation pins the confinement rule behind the
// workspace layer: every replica is a Clone and therefore owns a
// private scratch workspace (never shared with the master or another
// replica), and after an epoch each replica has exercised its own —
// which is what makes concurrent FW/BP passes race-free without any
// locking in the arena.
func TestReplicaWorkspaceIsolation(t *testing.T) {
	net, prov := testNetwork(t, 13)
	eng := New(net, 4, train.ClipStep{Opt: &train.SGD{LR: 0.05}, Clip: 5})
	seen := map[*tensor.Workspace]bool{net.Workspace(): true}
	for i, rep := range eng.replicas {
		ws := rep.Workspace()
		if seen[ws] {
			t.Fatalf("replica %d shares a workspace with another network", i)
		}
		seen[ws] = true
	}
	if _, err := eng.RunEpoch(context.Background(), prov, baselineFn); err != nil {
		t.Fatal(err)
	}
	// 8 batches over 4 workers: every replica ran FW+BP and must have
	// drawn from (and recycled into) its own arena.
	for i, rep := range eng.replicas {
		st := rep.Workspace().Stats()
		if st.Gets == 0 || st.Puts == 0 {
			t.Errorf("replica %d workspace saw no traffic: %+v", i, st)
		}
	}
	if st := net.Workspace().Stats(); st.Gets != 0 {
		t.Errorf("master workspace must stay idle during a parallel epoch: %+v", st)
	}
}

// TestOnWaitCompleteSampleSet pins the OnWait contract the straggler
// telemetry depends on: every worker that ran a batch in a group
// reports exactly once, the group's last finisher reports a zero
// duration, and earlier finishers report how long they idled. An
// incomplete sample set (e.g. dropping the last finisher) would bias
// every percentile the wait histogram feeds.
func TestOnWaitCompleteSampleSet(t *testing.T) {
	net, prov := testNetwork(t, 21)
	const workers = 4
	eng := New(net, workers, train.ClipStep{Opt: &train.SGD{LR: 0.01}, Clip: 5})

	type sample struct {
		replica int
		d       time.Duration
	}
	var samples []sample
	eng.OnWait = func(replica int, d time.Duration) {
		samples = append(samples, sample{replica, d})
	}
	// Give replicas strongly distinct finish times so "last finisher"
	// is unambiguous: replica slot s sleeps s×5ms after its batch.
	fn := func(n *model.Network, b train.Batch, index int) (BatchResult, error) {
		r, err := baselineFn(n, b, index)
		time.Sleep(time.Duration(index%workers) * 5 * time.Millisecond)
		return r, err
	}
	if _, err := eng.RunEpoch(context.Background(), prov, fn); err != nil {
		t.Fatal(err)
	}

	n := prov.NumBatches()
	if len(samples) != n {
		t.Fatalf("%d OnWait samples for %d batches — sample set incomplete", len(samples), n)
	}
	groups := (n + workers - 1) / workers
	perGroup := make([][]sample, groups)
	for g, i := 0, 0; g < groups; g++ {
		size := workers
		if rem := n - g*workers; rem < size {
			size = rem
		}
		perGroup[g] = samples[i : i+size]
		i += size
	}
	for g, grp := range perGroup {
		seen := map[int]int{}
		zeros := 0
		for _, s := range grp {
			seen[s.replica]++
			if s.d == 0 {
				zeros++
			}
			if s.d < 0 {
				t.Fatalf("group %d replica %d: negative wait %v", g, s.replica, s.d)
			}
		}
		for r, c := range seen {
			if c != 1 {
				t.Errorf("group %d: replica %d reported %d times", g, r, c)
			}
		}
		if len(seen) != len(grp) {
			t.Errorf("group %d: %d distinct replicas for %d samples", g, len(seen), len(grp))
		}
		// The last finisher waited for nobody: at least one exact zero.
		if zeros < 1 {
			t.Errorf("group %d: no zero-duration sample — last finisher missing from the set", g)
		}
		// With 5ms-stepped finish times, the slot-0 replica (first to
		// finish) must have recorded a real wait in full groups.
		if len(grp) == workers {
			var w0 time.Duration
			for _, s := range grp {
				if s.replica == 0 {
					w0 = s.d
				}
			}
			if w0 <= 0 {
				t.Errorf("group %d: first finisher reports no wait (%v)", g, w0)
			}
		}
	}
}
