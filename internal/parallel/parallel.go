// Package parallel is the data-parallel training engine: it shards an
// epoch's minibatches across N replica workers, runs FW+BP concurrently
// on each replica, and merges the results through a deterministic tree
// all-reduce before a single optimizer step per group.
//
// Execution model. Batches are processed in groups of Workers: within a
// group, worker i runs the caller-supplied BatchFn on batch g*W+i using
// its own deep-copied model.Network replica (so no weight memory is
// shared during concurrent passes), then the W gradient sets are merged
// through a train.GradientSync transport — by default dist.Inproc, the
// deterministic pairwise tree all-reduce (TreeReduce) — and handed to a
// train.Reducer for averaging/clipping/the optimizer step. Replicas are
// re-synchronized from the master network before the next group. A
// distributed sync (dist.Worker) extends the same group step across
// processes: the merged set then carries remote contributions too, and
// the reducer averages by the sync's reported contribution count.
//
// Determinism. The batch→worker assignment, the tree reduction order,
// and the order in which per-batch statistics (losses, prune counters,
// calibration magnitudes) are folded are all functions of the batch
// index alone, never of goroutine scheduling. A run with a fixed worker
// count is therefore reproducible bit-for-bit, and a run with
// Workers == 1 is exactly the serial trainer: one batch per group, an
// identity reduce, and the same fold order the serial loop uses.
//
// MS1/MS2 compose cleanly: the skip plan and storage policy are
// per-epoch read-only state shared by all replicas, MS1's prune
// statistics are Add-merged in batch order, and MS2's calibration
// magnitudes are summed in batch order — the same bookkeeping the
// serial η-LSTM trainer keeps, just gathered from replicas.
package parallel

import (
	"context"
	"fmt"
	"strconv"
	"sync"
	"time"

	"etalstm/internal/dist"
	"etalstm/internal/model"
	"etalstm/internal/obs"
	"etalstm/internal/reorder"
	"etalstm/internal/rtrace"
	"etalstm/internal/train"
)

// BatchResult is what one replica produced from one minibatch. Grads is
// consumed by the all-reduce; the remaining fields are epoch statistics
// folded in batch order.
type BatchResult struct {
	// Grads is the batch's accumulated weight gradients (after any
	// per-replica editing such as MS2's convergence-aware scaling).
	Grads *model.Gradients
	// Loss is the batch's scalar training loss.
	Loss float64
	// Prune reports what MS1's near-zero pruning removed on this batch.
	Prune reorder.PruneStats
	// Observed carries optional per-cell gradient magnitudes
	// ([layer][t], summed over the batch) during MS2's epoch-0
	// calibration; nil otherwise.
	Observed [][]float64
	// PeakStored is the measured peak of stored activation bytes during
	// the batch's checkpointed FW+BP (0 when training runs full
	// storage); Recomputed counts the FW cells replayed during BP.
	PeakStored int64
	Recomputed int
}

// BatchFn runs FW+BP for one minibatch on the given network (a replica
// owned exclusively by the calling worker for the duration of the call)
// and returns the gradients plus statistics. index is the global batch
// index within the epoch. BatchFn must not mutate net's parameters.
type BatchFn func(net *model.Network, b train.Batch, index int) (BatchResult, error)

// EpochResult aggregates a full epoch, folded in batch order.
type EpochResult struct {
	Batches       int
	TotalLoss     float64
	Prune         reorder.PruneStats
	SkippedCells  int
	ExecutedCells int
	// Observed is the element-wise sum of every batch's Observed grid
	// (nil when no batch reported one).
	Observed [][]float64
	// PeakStored is the max over batches of the measured peak stored
	// bytes (each replica has its own arena, so the epoch's true peak is
	// the worst single batch); RecomputedCells sums the FW cells
	// replayed during BP across the epoch.
	PeakStored      int64
	RecomputedCells int
}

// Engine executes epochs data-parallel over a fixed replica set.
type Engine struct {
	master   *model.Network
	replicas []*model.Network
	reducer  train.Reducer

	// Rec, when non-nil, receives the coordinator-side phase spans (the
	// tree all-reduce and the optimizer step). It is used only from the
	// goroutine calling RunEpoch, matching obs.Recorder's confinement.
	Rec *obs.Recorder
	// OnStep, when non-nil, observes each optimizer step's wall time —
	// one step per batch group, measured from re-sync to weight update.
	OnStep func(d time.Duration)
	// OnWait, when non-nil, observes the per-replica straggler wait:
	// how long each finished worker sat idle before the group's last
	// worker finished and the all-reduce could begin. Every worker that
	// ran a batch in the group reports exactly once — including the
	// group's last finisher, which reports a zero duration — so each
	// group contributes a complete sample set.
	OnWait func(replica int, d time.Duration)
	// Sync is the gradient transport the engine merges each group
	// through (nil = dist.Inproc, the deterministic in-process tree
	// all-reduce). Distributed trainers plug a dist.Worker or
	// dist.Compressed in here; the reducer then averages by the
	// contribution count the sync reports, which may exceed the local
	// replica count when remote processes contribute.
	Sync train.GradientSync
}

// New builds an engine with `workers` replicas of net (clamped to >= 1).
// net stays the single source of truth for weights: the reducer's
// optimizer step mutates only net, and replicas are re-synced from it
// between batch groups.
func New(net *model.Network, workers int, reducer train.Reducer) *Engine {
	if workers < 1 {
		workers = 1
	}
	e := &Engine{master: net, reducer: reducer}
	for i := 0; i < workers; i++ {
		e.replicas = append(e.replicas, net.Clone())
	}
	return e
}

// Workers returns the engine's replica count.
func (e *Engine) Workers() int { return len(e.replicas) }

// Replicas exposes the engine's replica networks so the trainer can
// attach per-replica state (phase recorders on their workspaces, arena
// accounting). The slice is owned by the engine; replicas must only be
// touched between epochs, never while RunEpoch is in flight.
func (e *Engine) Replicas() []*model.Network { return e.replicas }

// RunEpoch shards p's batches into groups of Workers, runs fn on each
// group concurrently, tree-reduces the gradients and applies them
// through the reducer — one optimizer step per group. ctx is checked
// between batch groups and before each worker launch; on cancellation
// the epoch stops without applying the in-flight group and returns
// ctx.Err() alongside the statistics folded so far.
func (e *Engine) RunEpoch(ctx context.Context, p train.Provider, fn BatchFn) (EpochResult, error) {
	var res EpochResult
	w := len(e.replicas)
	n := p.NumBatches()
	rtr := rtrace.Default()
	repBefore := make([]obs.PhaseSnapshot, w)
	for lo := 0; lo < n; lo += w {
		if err := ctx.Err(); err != nil {
			return res, err
		}
		hi := lo + w
		if hi > n {
			hi = n
		}
		stepStart := time.Now()
		// The group's step span: one optimizer step. Straggler waits land
		// as events, each replica's FW/BP phase wall time and the
		// coordinator-side all-reduce/optimizer phases as child spans.
		var sp *rtrace.Span
		var recBefore obs.PhaseSnapshot
		if rtr != nil {
			sp = rtr.StartSpan("train.step")
			sp.Attr("batches", fmt.Sprintf("%d-%d", lo, hi-1))
			sp.Attr("workers", strconv.Itoa(hi-lo))
			recBefore = e.Rec.Snapshot()
			for i := 0; i < hi-lo; i++ {
				repBefore[i] = e.replicas[i].Workspace().Recorder().Snapshot()
			}
		}
		// Re-sync replica weights from the master. The clone geometry
		// always matches, so the error path is unreachable in practice.
		for i := 0; i < hi-lo; i++ {
			if err := e.replicas[i].CopyWeightsFrom(e.master); err != nil {
				sp.FinishErr(err)
				return res, err
			}
		}

		results := make([]BatchResult, hi-lo)
		errs := make([]error, hi-lo)
		finished := make([]time.Time, hi-lo)
		var wg sync.WaitGroup
		for b := lo; b < hi; b++ {
			slot := b - lo
			// The provider is consulted serially from this goroutine;
			// only the returned batches are held concurrently.
			batch := p.Batch(b)
			if err := ctx.Err(); err != nil {
				errs[slot] = err
				break
			}
			wg.Add(1)
			go func(slot, index int, batch train.Batch) {
				defer wg.Done()
				results[slot], errs[slot] = fn(e.replicas[slot], batch, index)
				finished[slot] = time.Now()
			}(slot, b, batch)
		}
		wg.Wait()
		if e.OnWait != nil || sp != nil {
			// The group's all-reduce begins when its last worker lands;
			// every earlier finisher waited for the stragglers.
			var last time.Time
			for _, t := range finished {
				if t.After(last) {
					last = t
				}
			}
			for slot, t := range finished {
				if t.IsZero() {
					continue
				}
				wait := last.Sub(t)
				if e.OnWait != nil {
					e.OnWait(slot, wait)
				}
				if sp != nil && wait > 0 {
					sp.Event("straggler-wait",
						"replica", strconv.Itoa(slot),
						"wait_ms", strconv.FormatFloat(float64(wait)/1e6, 'f', 3, 64))
				}
			}
		}
		if sp != nil {
			// Each replica's FW/BP phase wall time, measured by its
			// workspace recorder during the concurrent passes.
			for i := 0; i < hi-lo; i++ {
				rec := e.replicas[i].Workspace().Recorder()
				rtrace.FoldPhases(sp, stepStart, rec.Snapshot().Delta(repBefore[i]),
					"replica", strconv.Itoa(i))
			}
		}

		// Fold statistics and surface errors in batch order, so the
		// reported state is identical to a serial run that stopped at
		// the first failing batch.
		grads := make([]*model.Gradients, 0, hi-lo)
		for slot := range results {
			if errs[slot] != nil {
				sp.FinishErr(errs[slot])
				return res, errs[slot]
			}
			r := results[slot]
			res.Batches++
			res.TotalLoss += r.Loss
			res.Prune = res.Prune.Add(r.Prune)
			if r.Grads != nil {
				res.SkippedCells += r.Grads.SkippedCells
				res.ExecutedCells += r.Grads.ExecutedCells
				grads = append(grads, r.Grads)
			}
			if r.Observed != nil {
				res.Observed = addObserved(res.Observed, r.Observed)
			}
			if r.PeakStored > res.PeakStored {
				res.PeakStored = r.PeakStored
			}
			res.RecomputedCells += r.Recomputed
		}
		if len(grads) == 0 {
			sp.Finish()
			continue
		}
		sync := e.Sync
		if sync == nil {
			sync = dist.Inproc{}
		}
		if s, ok := sync.(dist.StepSpanSetter); ok {
			s.SetStepSpan(sp)
		}
		psp := e.Rec.Begin(obs.PhaseAllReduce)
		merged, contribs, err := sync.Reduce(grads)
		psp.End()
		if err != nil {
			sp.FinishErr(err)
			return res, err
		}
		psp = e.Rec.Begin(obs.PhaseOptimizer)
		e.reducer.Apply(e.master, merged, contribs)
		psp.End()
		if sp != nil {
			// Coordinator-side phases (all-reduce, optimizer) recorded on
			// the engine's own recorder during this group.
			rtrace.FoldPhases(sp, stepStart, e.Rec.Snapshot().Delta(recBefore))
			sp.Finish()
		}
		if e.OnStep != nil {
			e.OnStep(time.Since(stepStart))
		}
	}
	return res, nil
}

// TreeReduce forwards to dist.TreeReduce, where the deterministic tree
// all-reduce now lives behind the train.GradientSync seam; kept here so
// existing callers of the engine package keep working.
func TreeReduce(grads []*model.Gradients) *model.Gradients {
	return dist.TreeReduce(grads)
}

// addObserved element-wise adds src into dst (allocating dst on first
// use), preserving the [layer][t] shape.
func addObserved(dst, src [][]float64) [][]float64 {
	if dst == nil {
		dst = make([][]float64, len(src))
		for l := range src {
			dst[l] = make([]float64, len(src[l]))
		}
	}
	for l := range src {
		for t := range src[l] {
			dst[l][t] += src[l][t]
		}
	}
	return dst
}

// Validate sanity-checks an engine configuration before an epoch runs.
func (e *Engine) Validate() error {
	if e.master == nil {
		return fmt.Errorf("parallel: engine requires a master network")
	}
	if e.reducer == nil {
		return fmt.Errorf("parallel: engine requires a reducer")
	}
	return nil
}
