package tensor

import (
	"testing"
	"testing/quick"

	"etalstm/internal/rng"
)

func TestSetWorkers(t *testing.T) {
	prev := SetWorkers(3)
	defer SetWorkers(prev)
	if Workers() != 3 {
		t.Fatalf("Workers: %d", Workers())
	}
	SetWorkers(0) // clamps to 1
	if Workers() != 1 {
		t.Fatalf("Workers after clamp: %d", Workers())
	}
}

// TestParallelMatchesSerial: large kernels must produce identical
// results at any worker count.
func TestParallelMatchesSerial(t *testing.T) {
	r := rng.New(1)
	a := New(130, 97)
	b := New(97, 113)
	a.RandInit(r, 1)
	b.RandInit(r, 1)

	prev := SetWorkers(1)
	defer SetWorkers(prev)
	serial := MatMul(nil, a, b)
	serialTB := MatMulTransB(nil, a, Transpose(nil, b))
	big := New(97, 113)
	big.Fill(0.5)
	serialAdd := big.Clone()
	AddMatMulTransA(serialAdd, a, MatMul(nil, a, b))

	for _, w := range []int{2, 4, 16} {
		SetWorkers(w)
		if got := MatMul(nil, a, b); !got.Equal(serial, 0) {
			t.Fatalf("MatMul differs at %d workers", w)
		}
		if got := MatMulTransB(nil, a, Transpose(nil, b)); !got.Equal(serialTB, 0) {
			t.Fatalf("MatMulTransB differs at %d workers", w)
		}
		add := big.Clone()
		AddMatMulTransA(add, a, MatMul(nil, a, b))
		if !add.Equal(serialAdd, 0) {
			t.Fatalf("AddMatMulTransA differs at %d workers", w)
		}
	}
}

// TestSmallKernelsStaySerial: tiny products must not fan out (the
// threshold guards goroutine overhead); indirectly verified by
// correctness at worker counts exceeding the row count.
func TestSmallKernelsStaySerial(t *testing.T) {
	prev := SetWorkers(64)
	defer SetWorkers(prev)
	a := NewFromData(2, 2, []float32{1, 2, 3, 4})
	b := NewFromData(2, 2, []float32{5, 6, 7, 8})
	got := MatMul(nil, a, b)
	want := NewFromData(2, 2, []float32{19, 22, 43, 50})
	if !got.Equal(want, 0) {
		t.Fatalf("small MatMul: %v", got.Data)
	}
}

// Property: MatMulTransA equals its definition at high worker counts.
func TestPropertyParallelTransA(t *testing.T) {
	prev := SetWorkers(8)
	defer SetWorkers(prev)
	f := func(seed uint64) bool {
		r := rng.New(seed)
		a := New(33, 41)
		b := New(33, 29)
		a.RandInit(r, 1)
		b.RandInit(r, 1)
		got := MatMulTransA(nil, a, b)
		want := MatMul(nil, Transpose(nil, a), b)
		return got.Equal(want, 1e-3)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}
