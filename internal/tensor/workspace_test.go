package tensor

import "testing"

func TestWorkspaceRecycles(t *testing.T) {
	ws := NewWorkspace()
	a := ws.Get(4, 8)
	if a.Rows != 4 || a.Cols != 8 || len(a.Data) != 32 {
		t.Fatalf("Get shape: %v len %d", a, len(a.Data))
	}
	a.Fill(3)
	ws.Put(a)
	b := ws.Get(8, 4) // same element count, different shape
	if b != a {
		t.Fatal("same-bucket Get must recycle the freed buffer")
	}
	if b.Rows != 8 || b.Cols != 4 {
		t.Fatalf("recycled shape: %v", b)
	}
	for _, v := range b.Data {
		if v != 0 {
			t.Fatal("recycled buffer must be zeroed")
		}
	}
	st := ws.Stats()
	if st.Gets != 2 || st.Hits != 1 || st.Misses != 1 || st.Puts != 1 {
		t.Fatalf("stats: %+v", st)
	}
}

func TestWorkspaceBuckets(t *testing.T) {
	for _, tc := range []struct{ n, want int }{
		{0, 1}, {1, 1}, {2, 2}, {3, 4}, {4, 4}, {5, 8}, {1024, 1024}, {1025, 2048},
	} {
		if got := bucketFor(tc.n); got != tc.want {
			t.Errorf("bucketFor(%d) = %d, want %d", tc.n, got, tc.want)
		}
	}
	ws := NewWorkspace()
	// A freed foreign 33-element buffer (cap 33 rounds down to bucket
	// 32) must not serve a 40-element request (bucket 64) it cannot
	// hold...
	small := New(1, 33)
	ws.Put(small)
	big := ws.Get(1, 40)
	if big == small {
		t.Fatal("Get handed out a too-small buffer")
	}
	// ...but a smaller request from the same bucket reuses it.
	if again := ws.Get(1, 20); again != small {
		t.Fatal("Get must reuse a same-bucket buffer for a smaller shape")
	}
}

func TestWorkspaceForeignPut(t *testing.T) {
	ws := NewWorkspace()
	m := New(3, 3) // cap 9, floor bucket 8
	ws.Put(m)
	got := ws.Get(2, 4) // 8 elements, ceil bucket 8
	if got != m {
		t.Fatal("foreign matrix must be recyclable")
	}
	if got.Rows != 2 || got.Cols != 4 || len(got.Data) != 8 {
		t.Fatalf("reshaped foreign matrix: %v len %d", got, len(got.Data))
	}
}

func TestWorkspaceNilSafe(t *testing.T) {
	var ws *Workspace
	m := ws.Get(2, 3)
	if m == nil || m.Rows != 2 || m.Cols != 3 {
		t.Fatal("nil workspace Get must behave like New")
	}
	ws.Put(m)
	ws.PutAll(m, nil)
	if ws.GetObj(1) != nil {
		t.Fatal("nil workspace GetObj must return nil")
	}
	ws.PutObj(1, m)
	ws.Reset()
	if st := ws.Stats(); st != (WorkspaceStats{}) {
		t.Fatalf("nil workspace stats: %+v", st)
	}
}

func TestWorkspaceObjSlots(t *testing.T) {
	ws := NewWorkspace()
	type header struct{ x int }
	if ws.GetObj(7) != nil {
		t.Fatal("empty slot must return nil")
	}
	h := &header{x: 1}
	ws.PutObj(7, h)
	if got := ws.GetObj(7); got != any(h) {
		t.Fatalf("GetObj returned %v", got)
	}
	if ws.GetObj(7) != nil {
		t.Fatal("slot must be empty after pop")
	}
}

func TestWorkspaceRetainedReset(t *testing.T) {
	ws := NewWorkspace()
	ws.Put(New(4, 4))
	ws.Put(New(2, 2))
	n, el := ws.Retained()
	if n != 2 || el != 20 {
		t.Fatalf("Retained = %d, %d", n, el)
	}
	ws.Reset()
	if n, _ := ws.Retained(); n != 0 {
		t.Fatal("Reset must drop the free lists")
	}
}

// TestWorkspacePoisonedBufferZeroed attacks the recycling contract
// directly: a returned buffer full of garbage — including the spare
// capacity beyond the logical shape, which a smaller follow-up Get
// would otherwise inherit — must come back indistinguishable from a
// fresh allocation.
func TestWorkspacePoisonedBufferZeroed(t *testing.T) {
	ws := NewWorkspace()
	m := ws.Get(4, 8)
	poison := m.Data[:cap(m.Data)]
	for i := range poison {
		poison[i] = float32(i) + 0.5
	}
	ws.Put(m)
	got := ws.Get(4, 5) // 20 elements rounds up into the same 32 bucket
	if got != m {
		t.Fatal("expected the poisoned buffer back from the same bucket")
	}
	for i, v := range got.Data {
		if v != 0 {
			t.Fatalf("recycled Data[%d] = %v, want 0", i, v)
		}
	}
}

// TestWorkspaceSteadyStateAllocs pins the arena promise at the tensor
// level: a warm Get/Put cycle performs zero heap allocations.
func TestWorkspaceSteadyStateAllocs(t *testing.T) {
	ws := NewWorkspace()
	ws.Put(New(16, 16))
	avg := testing.AllocsPerRun(100, func() {
		m := ws.Get(16, 16)
		ws.Put(m)
	})
	if avg > 0 {
		t.Fatalf("warm Get/Put allocates %.1f times per cycle, want 0", avg)
	}
}
