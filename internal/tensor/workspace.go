package tensor

import (
	"math/bits"

	"etalstm/internal/obs"
)

// Workspace is an allocation arena for the FW/BP hot path: a set of
// size-bucketed free lists that recycle Matrix buffers (and, through
// the opaque object slots, the small cache headers the lstm package
// wraps around them). The training loops re-allocate the same few
// scratch shapes per cell per timestep per minibatch; routing those
// through a workspace turns steady-state training into near-zero
// allocation, the Go-runtime analogue of the intermediate-variable DRAM
// pressure the paper attacks.
//
// Contract:
//
//   - Get returns a zeroed rows×cols matrix, so a recycled buffer is
//     indistinguishable from a fresh tensor.New — callers that relied
//     on zero initialization stay bitwise identical.
//   - Put hands a buffer back for reuse. The caller must guarantee no
//     live reference remains; a double Put (or a Put of a buffer that
//     is still reachable) silently aliases two future Gets onto the
//     same storage. Ownership rules for the training stack are spelled
//     out in DESIGN.md ("The workspace layer").
//   - Put accepts foreign matrices (built by New) as well as
//     workspace-born ones, and losing a buffer is always safe: an
//     un-Put matrix is simply garbage collected.
//   - A nil *Workspace is valid everywhere: Get degrades to New, Put
//     and the object slots to no-ops. Kernels therefore accept a nil
//     workspace from callers that do not manage lifetimes.
//
// A Workspace is confined to one goroutine at a time — one per serial
// trainer, one per data-parallel replica worker. It is NOT safe for
// concurrent use; the goroutines a tensor kernel fans out to never
// touch the workspace.
type Workspace struct {
	// free buckets recycled matrices by the power-of-two floor of
	// cap(Data), so every list member can back any request that rounds
	// up into the bucket.
	free map[int][]*Matrix
	// objs recycles small pointer-shaped headers (lstm's FWCache/P1)
	// keyed by a caller-chosen slot. Pointers stored in an interface do
	// not allocate, keeping GetObj/PutObj on the zero-alloc path.
	objs map[uint8][]any

	// rec, when set, receives the phase spans of every kernel running
	// on this workspace. The workspace is the natural vehicle: it is
	// already threaded through the whole FW/BP hot path and confined to
	// one goroutine, exactly the confinement obs.Recorder requires. nil
	// (the default) disables span recording at a pointer test per phase
	// boundary.
	rec *obs.Recorder

	stats WorkspaceStats
}

// WorkspaceStats counts workspace traffic, for tests and profiling.
type WorkspaceStats struct {
	Gets   int64 // matrices handed out
	Hits   int64 // Gets served from a free list
	Puts   int64 // matrices handed back
	Misses int64 // Gets that had to allocate
}

// NewWorkspace returns an empty workspace.
func NewWorkspace() *Workspace {
	return &Workspace{
		free: make(map[int][]*Matrix),
		objs: make(map[uint8][]any),
	}
}

// bucketFor is the power-of-two ceiling of n — the bucket a request for
// n elements is served from.
func bucketFor(n int) int {
	if n <= 1 {
		return 1
	}
	return 1 << bits.Len(uint(n-1))
}

// bucketOf is the power-of-two floor of a buffer's capacity — the
// bucket whose every member has cap >= bucket, so Get's round-up lookup
// always finds a large-enough buffer.
func bucketOf(c int) int {
	if c <= 1 {
		return 1
	}
	return 1 << (bits.Len(uint(c)) - 1)
}

// Get returns a zeroed rows×cols matrix, recycling a free buffer when
// one of sufficient capacity is available. On a nil workspace it is
// exactly New.
func (w *Workspace) Get(rows, cols int) *Matrix {
	if w == nil {
		return New(rows, cols)
	}
	n := rows * cols
	w.stats.Gets++
	b := bucketFor(n)
	if list := w.free[b]; len(list) > 0 {
		m := list[len(list)-1]
		w.free[b] = list[:len(list)-1]
		w.stats.Hits++
		m.Rows, m.Cols = rows, cols
		m.Data = m.Data[:n]
		m.Zero()
		return m
	}
	w.stats.Misses++
	// Allocate at full bucket capacity so the buffer rounds back into
	// the same bucket on Put regardless of the shape it served.
	return &Matrix{Rows: rows, Cols: cols, Data: make([]float32, n, b)}
}

// Put returns m's storage to the workspace. m must have no other live
// references. nil workspace and nil matrix are no-ops.
func (w *Workspace) Put(m *Matrix) {
	if w == nil || m == nil || cap(m.Data) == 0 {
		return
	}
	w.stats.Puts++
	b := bucketOf(cap(m.Data))
	w.free[b] = append(w.free[b], m)
}

// PutAll returns every non-nil matrix in ms to the workspace.
func (w *Workspace) PutAll(ms ...*Matrix) {
	for _, m := range ms {
		w.Put(m)
	}
}

// GetObj pops a recycled header from slot, or returns nil when the slot
// is empty (the caller then allocates). Headers are opaque to the
// workspace; each slot must only ever hold one concrete type.
func (w *Workspace) GetObj(slot uint8) any {
	if w == nil {
		return nil
	}
	list := w.objs[slot]
	if len(list) == 0 {
		return nil
	}
	v := list[len(list)-1]
	list[len(list)-1] = nil
	w.objs[slot] = list[:len(list)-1]
	return v
}

// PutObj recycles a header into slot. The caller must clear the
// header's fields first; the workspace does not inspect it.
func (w *Workspace) PutObj(slot uint8, v any) {
	if w == nil || v == nil {
		return
	}
	w.objs[slot] = append(w.objs[slot], v)
}

// SetRecorder attaches (or, with nil, detaches) a phase-span recorder.
// The recorder inherits the workspace's goroutine confinement. No-op on
// a nil workspace.
func (w *Workspace) SetRecorder(r *obs.Recorder) {
	if w == nil {
		return
	}
	w.rec = r
}

// Recorder returns the attached span recorder (nil when recording is
// off or the workspace is nil). Kernels call it once per pass and open
// spans through the nil-safe obs.Recorder.Begin.
func (w *Workspace) Recorder() *obs.Recorder {
	if w == nil {
		return nil
	}
	return w.rec
}

// Stats returns a snapshot of the workspace's traffic counters.
func (w *Workspace) Stats() WorkspaceStats {
	if w == nil {
		return WorkspaceStats{}
	}
	return w.stats
}

// Retained returns the number of matrices currently sitting in free
// lists and their total element capacity — the arena's resident size.
func (w *Workspace) Retained() (buffers int, elements int64) {
	if w == nil {
		return 0, 0
	}
	for _, list := range w.free {
		buffers += len(list)
		for _, m := range list {
			elements += int64(cap(m.Data))
		}
	}
	return buffers, elements
}

// Reset drops every free list, releasing the retained storage to the
// garbage collector. Outstanding buffers are unaffected.
func (w *Workspace) Reset() {
	if w == nil {
		return
	}
	w.free = make(map[int][]*Matrix)
	w.objs = make(map[uint8][]any)
}
