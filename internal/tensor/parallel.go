package tensor

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// maxWorkers bounds the goroutines a single kernel may fan out to.
// Defaults to GOMAXPROCS; SetWorkers overrides (1 forces serial
// execution, useful for deterministic profiling).
var maxWorkers int64

func init() { maxWorkers = int64(runtime.GOMAXPROCS(0)) }

// SetWorkers sets the kernel parallelism (clamped to ≥ 1) and returns
// the previous value.
func SetWorkers(n int) int {
	if n < 1 {
		n = 1
	}
	return int(atomic.SwapInt64(&maxWorkers, int64(n)))
}

// Workers returns the current kernel parallelism.
func Workers() int { return int(atomic.LoadInt64(&maxWorkers)) }

// parallelThreshold is the minimum multiply-accumulate count before a
// kernel fans out; below it goroutine overhead dominates.
const parallelThreshold = 1 << 16

// serialRows reports whether a rows×flops kernel should run serially.
// Callers branch on it BEFORE building the closure for parallelRows, so
// the (heap-allocated, because of the go statement) closure only exists
// on the fan-out path and small kernels stay allocation-free.
func serialRows(rows int, flops int64) bool {
	return Workers() <= 1 || flops < parallelThreshold || rows < 2
}

// parallelRows splits [0, rows) across workers and runs fn on each
// span. Callers must have ruled out the serial case via serialRows.
func parallelRows(rows int, fn func(lo, hi int)) {
	workers := Workers()
	if workers <= 1 || rows < 2 {
		fn(0, rows)
		return
	}
	if workers > rows {
		workers = rows
	}
	var wg sync.WaitGroup
	chunk := (rows + workers - 1) / workers
	for lo := 0; lo < rows; lo += chunk {
		hi := lo + chunk
		if hi > rows {
			hi = rows
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			fn(lo, hi)
		}(lo, hi)
	}
	wg.Wait()
}
