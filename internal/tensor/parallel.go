package tensor

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// maxWorkers bounds the goroutines a single kernel may fan out to.
// Defaults to GOMAXPROCS; SetWorkers overrides (1 forces serial
// execution, useful for deterministic profiling).
var maxWorkers int64

func init() { maxWorkers = int64(runtime.GOMAXPROCS(0)) }

// SetWorkers sets the kernel parallelism (clamped to ≥ 1) and returns
// the previous value.
func SetWorkers(n int) int {
	if n < 1 {
		n = 1
	}
	return int(atomic.SwapInt64(&maxWorkers, int64(n)))
}

// Workers returns the current kernel parallelism.
func Workers() int { return int(atomic.LoadInt64(&maxWorkers)) }

// parallelThreshold is the minimum multiply-accumulate count before a
// kernel fans out; below it goroutine overhead dominates.
const parallelThreshold = 1 << 16

// parallelRows splits [0, rows) across workers and runs fn on each
// span. flops guides the serial/parallel decision.
func parallelRows(rows int, flops int64, fn func(lo, hi int)) {
	workers := Workers()
	if workers <= 1 || flops < parallelThreshold || rows < 2 {
		fn(0, rows)
		return
	}
	if workers > rows {
		workers = rows
	}
	var wg sync.WaitGroup
	chunk := (rows + workers - 1) / workers
	for lo := 0; lo < rows; lo += chunk {
		hi := lo + chunk
		if hi > rows {
			hi = rows
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			fn(lo, hi)
		}(lo, hi)
	}
	wg.Wait()
}
