package tensor

import (
	"testing"

	"etalstm/internal/rng"
)

func benchPair(n int) (*Matrix, *Matrix) {
	r := rng.New(1)
	a := New(n, n)
	b := New(n, n)
	a.RandInit(r, 1)
	b.RandInit(r, 1)
	return a, b
}

func BenchmarkMatMul256(b *testing.B) {
	x, y := benchPair(256)
	dst := New(256, 256)
	b.SetBytes(int64(256 * 256 * 256 * 2))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		MatMul(dst, x, y)
	}
}

func BenchmarkMatMulSerial256(b *testing.B) {
	prev := SetWorkers(1)
	defer SetWorkers(prev)
	x, y := benchPair(256)
	dst := New(256, 256)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		MatMul(dst, x, y)
	}
}

func BenchmarkMatMulTransB256(b *testing.B) {
	x, y := benchPair(256)
	dst := New(256, 256)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		MatMulTransB(dst, x, y)
	}
}

func BenchmarkAddMatMulTransA256(b *testing.B) {
	x, y := benchPair(256)
	dst := New(256, 256)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		AddMatMulTransA(dst, x, y)
	}
}

func BenchmarkSigmoid(b *testing.B) {
	r := rng.New(2)
	x := New(128, 1024)
	x.RandInit(r, 4)
	dst := New(128, 1024)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Sigmoid(dst, x)
	}
}

func BenchmarkMulAdd(b *testing.B) {
	x, y := benchPair(512)
	dst := New(512, 512)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		MulAdd(dst, x, y)
	}
}
