// Package tensor implements the dense float32 linear algebra used by the
// LSTM training substrate: matrices, matrix multiplication (inner and
// outer product forms), element-wise kernels, and the activation
// functions of the LSTM cell together with their derivatives.
//
// The package is deliberately small and allocation-conscious: every
// routine that produces a matrix accepts a destination so hot training
// loops can reuse buffers. Matrices are dense row-major; there is no
// broadcasting — shapes must match exactly, and mismatches panic, since
// a shape error in training code is a programming bug, not a runtime
// condition to handle.
package tensor

import (
	"fmt"
	"math"

	"etalstm/internal/rng"
)

// Matrix is a dense row-major float32 matrix. The zero value is an empty
// matrix; use New or NewFromData for a sized one.
type Matrix struct {
	Rows, Cols int
	Data       []float32 // len == Rows*Cols, row-major
}

// New returns a zeroed rows×cols matrix.
func New(rows, cols int) *Matrix {
	if rows < 0 || cols < 0 {
		panic(fmt.Sprintf("tensor: negative dimensions %dx%d", rows, cols))
	}
	return &Matrix{Rows: rows, Cols: cols, Data: make([]float32, rows*cols)}
}

// NewFromData wraps data (not copied) as a rows×cols matrix.
func NewFromData(rows, cols int, data []float32) *Matrix {
	if len(data) != rows*cols {
		panic(fmt.Sprintf("tensor: data length %d != %d*%d", len(data), rows, cols))
	}
	return &Matrix{Rows: rows, Cols: cols, Data: data}
}

// At returns element (i, j).
func (m *Matrix) At(i, j int) float32 { return m.Data[i*m.Cols+j] }

// Set assigns element (i, j).
func (m *Matrix) Set(i, j int, v float32) { m.Data[i*m.Cols+j] = v }

// Row returns row i as a slice aliasing the matrix storage.
func (m *Matrix) Row(i int) []float32 { return m.Data[i*m.Cols : (i+1)*m.Cols] }

// Clone returns a deep copy of m.
func (m *Matrix) Clone() *Matrix {
	c := New(m.Rows, m.Cols)
	copy(c.Data, m.Data)
	return c
}

// CopyFrom copies src into m. Shapes must match.
func (m *Matrix) CopyFrom(src *Matrix) {
	m.mustSameShape(src, "CopyFrom")
	copy(m.Data, src.Data)
}

// Zero sets every element of m to 0.
func (m *Matrix) Zero() {
	for i := range m.Data {
		m.Data[i] = 0
	}
}

// Fill sets every element of m to v.
func (m *Matrix) Fill(v float32) {
	for i := range m.Data {
		m.Data[i] = v
	}
}

// Size returns the number of elements.
func (m *Matrix) Size() int { return m.Rows * m.Cols }

// Bytes returns the storage size in bytes (4 bytes per float32).
func (m *Matrix) Bytes() int64 { return int64(m.Size()) * 4 }

func (m *Matrix) mustSameShape(o *Matrix, op string) {
	if m.Rows != o.Rows || m.Cols != o.Cols {
		panic(fmt.Sprintf("tensor: %s shape mismatch %dx%d vs %dx%d",
			op, m.Rows, m.Cols, o.Rows, o.Cols))
	}
}

// String implements fmt.Stringer with a compact shape-first rendering.
func (m *Matrix) String() string {
	return fmt.Sprintf("Matrix(%dx%d)", m.Rows, m.Cols)
}

// RandInit fills m with Uniform(-scale, scale) values — the standard
// LSTM initialization (scale typically 1/sqrt(hidden)).
func (m *Matrix) RandInit(r *rng.RNG, scale float32) {
	for i := range m.Data {
		m.Data[i] = r.Uniform(-scale, scale)
	}
}

// XavierInit fills m with the Glorot uniform distribution for fanIn/fanOut.
func (m *Matrix) XavierInit(r *rng.RNG, fanIn, fanOut int) {
	scale := float32(math.Sqrt(6.0 / float64(fanIn+fanOut)))
	m.RandInit(r, scale)
}

// MatMul computes dst = a · b (a: m×k, b: k×n, dst: m×n). dst may not
// alias a or b. It returns dst for chaining; if dst is nil a new matrix
// is allocated.
func MatMul(dst, a, b *Matrix) *Matrix {
	if a.Cols != b.Rows {
		panic(fmt.Sprintf("tensor: MatMul inner dims %d vs %d", a.Cols, b.Rows))
	}
	if dst == nil {
		dst = New(a.Rows, b.Cols)
	} else if dst.Rows != a.Rows || dst.Cols != b.Cols {
		panic(fmt.Sprintf("tensor: MatMul dst %dx%d want %dx%d",
			dst.Rows, dst.Cols, a.Rows, b.Cols))
	}
	dst.Zero()
	// ikj loop order: streams b rows, keeps dst row hot. Rows of a are
	// independent, so large products shard across workers. The serial
	// branch calls the span directly: building the closure only on the
	// parallel path keeps small products allocation-free.
	flops := int64(a.Rows) * int64(a.Cols) * int64(b.Cols)
	if serialRows(a.Rows, flops) {
		matmulSpan(dst, a, b, 0, a.Rows)
	} else {
		parallelRows(a.Rows, func(lo, hi int) { matmulSpan(dst, a, b, lo, hi) })
	}
	return dst
}

func matmulSpan(dst, a, b *Matrix, lo, hi int) {
	for i := lo; i < hi; i++ {
		arow := a.Row(i)
		drow := dst.Row(i)
		for k := 0; k < a.Cols; k++ {
			av := arow[k]
			if av == 0 {
				continue
			}
			brow := b.Row(k)
			for j, bv := range brow {
				drow[j] += av * bv
			}
		}
	}
}

// MatMulTransA computes dst = aᵀ · b (a: k×m, b: k×n, dst: m×n) without
// materializing the transpose.
func MatMulTransA(dst, a, b *Matrix) *Matrix {
	if a.Rows != b.Rows {
		panic(fmt.Sprintf("tensor: MatMulTransA inner dims %d vs %d", a.Rows, b.Rows))
	}
	if dst == nil {
		dst = New(a.Cols, b.Cols)
	} else if dst.Rows != a.Cols || dst.Cols != b.Cols {
		panic(fmt.Sprintf("tensor: MatMulTransA dst %dx%d want %dx%d",
			dst.Rows, dst.Cols, a.Cols, b.Cols))
	}
	dst.Zero()
	AddMatMulTransA(dst, a, b)
	return dst
}

// MatMulTransB computes dst = a · bᵀ (a: m×k, b: n×k, dst: m×n) without
// materializing the transpose.
func MatMulTransB(dst, a, b *Matrix) *Matrix {
	if a.Cols != b.Cols {
		panic(fmt.Sprintf("tensor: MatMulTransB inner dims %d vs %d", a.Cols, b.Cols))
	}
	if dst == nil {
		dst = New(a.Rows, b.Rows)
	} else if dst.Rows != a.Rows || dst.Cols != b.Rows {
		panic(fmt.Sprintf("tensor: MatMulTransB dst %dx%d want %dx%d",
			dst.Rows, dst.Cols, a.Rows, b.Rows))
	}
	flops := int64(a.Rows) * int64(a.Cols) * int64(b.Rows)
	if serialRows(a.Rows, flops) {
		matmulTransBSpan(dst, a, b, 0, a.Rows)
	} else {
		parallelRows(a.Rows, func(lo, hi int) { matmulTransBSpan(dst, a, b, lo, hi) })
	}
	return dst
}

func matmulTransBSpan(dst, a, b *Matrix, lo, hi int) {
	for i := lo; i < hi; i++ {
		arow := a.Row(i)
		drow := dst.Row(i)
		for j := 0; j < b.Rows; j++ {
			brow := b.Row(j)
			var sum float32
			for k, av := range arow {
				sum += av * brow[k]
			}
			drow[j] = sum
		}
	}
}

// AddMatMulTransA computes dst += aᵀ · b. This is the outer-product
// weight-gradient accumulation of LSTM BP (paper Eq. 3): when a holds
// batch×m activations and b holds batch×n gate gradients, dst
// accumulates the m×n weight gradient.
func AddMatMulTransA(dst, a, b *Matrix) {
	if a.Rows != b.Rows {
		panic(fmt.Sprintf("tensor: AddMatMulTransA inner dims %d vs %d", a.Rows, b.Rows))
	}
	if dst.Rows != a.Cols || dst.Cols != b.Cols {
		panic(fmt.Sprintf("tensor: AddMatMulTransA dst %dx%d want %dx%d",
			dst.Rows, dst.Cols, a.Cols, b.Cols))
	}
	// Shard over dst rows (columns of a): each worker owns a disjoint
	// slice of the accumulator, so the += stays race-free.
	flops := int64(a.Rows) * int64(a.Cols) * int64(b.Cols)
	if serialRows(a.Cols, flops) {
		addMatMulTransASpan(dst, a, b, 0, a.Cols)
	} else {
		parallelRows(a.Cols, func(lo, hi int) { addMatMulTransASpan(dst, a, b, lo, hi) })
	}
}

func addMatMulTransASpan(dst, a, b *Matrix, lo, hi int) {
	for k := 0; k < a.Rows; k++ {
		arow := a.Row(k)
		brow := b.Row(k)
		for i := lo; i < hi; i++ {
			av := arow[i]
			if av == 0 {
				continue
			}
			drow := dst.Row(i)
			for j, bv := range brow {
				drow[j] += av * bv
			}
		}
	}
}

// Transpose returns aᵀ as a new matrix (or into dst when non-nil).
func Transpose(dst, a *Matrix) *Matrix {
	if dst == nil {
		dst = New(a.Cols, a.Rows)
	} else if dst.Rows != a.Cols || dst.Cols != a.Rows {
		panic("tensor: Transpose dst shape")
	}
	for i := 0; i < a.Rows; i++ {
		for j := 0; j < a.Cols; j++ {
			dst.Set(j, i, a.At(i, j))
		}
	}
	return dst
}

// Add computes dst = a + b element-wise.
func Add(dst, a, b *Matrix) *Matrix {
	a.mustSameShape(b, "Add")
	if dst == nil {
		dst = New(a.Rows, a.Cols)
	}
	dst.mustSameShape(a, "Add dst")
	for i, av := range a.Data {
		dst.Data[i] = av + b.Data[i]
	}
	return dst
}

// AddInPlace computes dst += a element-wise.
func AddInPlace(dst, a *Matrix) {
	dst.mustSameShape(a, "AddInPlace")
	for i, av := range a.Data {
		dst.Data[i] += av
	}
}

// Sub computes dst = a - b element-wise.
func Sub(dst, a, b *Matrix) *Matrix {
	a.mustSameShape(b, "Sub")
	if dst == nil {
		dst = New(a.Rows, a.Cols)
	}
	dst.mustSameShape(a, "Sub dst")
	for i, av := range a.Data {
		dst.Data[i] = av - b.Data[i]
	}
	return dst
}

// Mul computes dst = a ⊙ b (Hadamard product).
func Mul(dst, a, b *Matrix) *Matrix {
	a.mustSameShape(b, "Mul")
	if dst == nil {
		dst = New(a.Rows, a.Cols)
	}
	dst.mustSameShape(a, "Mul dst")
	for i, av := range a.Data {
		dst.Data[i] = av * b.Data[i]
	}
	return dst
}

// MulAdd computes dst += a ⊙ b (fused multiply-accumulate form used
// throughout BP-EW).
func MulAdd(dst, a, b *Matrix) {
	dst.mustSameShape(a, "MulAdd")
	a.mustSameShape(b, "MulAdd")
	for i, av := range a.Data {
		dst.Data[i] += av * b.Data[i]
	}
}

// Scale computes dst = a * s element-wise.
func Scale(dst, a *Matrix, s float32) *Matrix {
	if dst == nil {
		dst = New(a.Rows, a.Cols)
	}
	dst.mustSameShape(a, "Scale dst")
	for i, av := range a.Data {
		dst.Data[i] = av * s
	}
	return dst
}

// AddRowVector computes dst = a + rowvec broadcast over rows; rowvec
// must have length a.Cols. This applies a bias to every batch row.
func AddRowVector(dst, a *Matrix, rowvec []float32) *Matrix {
	if len(rowvec) != a.Cols {
		panic(fmt.Sprintf("tensor: AddRowVector len %d != cols %d", len(rowvec), a.Cols))
	}
	if dst == nil {
		dst = New(a.Rows, a.Cols)
	}
	dst.mustSameShape(a, "AddRowVector dst")
	for i := 0; i < a.Rows; i++ {
		arow := a.Row(i)
		drow := dst.Row(i)
		for j, av := range arow {
			drow[j] = av + rowvec[j]
		}
	}
	return dst
}

// SumRows accumulates each column of a into vec (len a.Cols): the bias
// gradient reduction.
func SumRows(vec []float32, a *Matrix) {
	if len(vec) != a.Cols {
		panic("tensor: SumRows length mismatch")
	}
	for i := 0; i < a.Rows; i++ {
		arow := a.Row(i)
		for j, av := range arow {
			vec[j] += av
		}
	}
}

// Sigmoid computes dst = σ(a) element-wise.
func Sigmoid(dst, a *Matrix) *Matrix {
	if dst == nil {
		dst = New(a.Rows, a.Cols)
	}
	dst.mustSameShape(a, "Sigmoid dst")
	for i, av := range a.Data {
		dst.Data[i] = sigmoid32(av)
	}
	return dst
}

// Tanh computes dst = tanh(a) element-wise.
func Tanh(dst, a *Matrix) *Matrix {
	if dst == nil {
		dst = New(a.Rows, a.Cols)
	}
	dst.mustSameShape(a, "Tanh dst")
	for i, av := range a.Data {
		dst.Data[i] = tanh32(av)
	}
	return dst
}

func sigmoid32(x float32) float32 {
	return float32(1 / (1 + math.Exp(-float64(x))))
}

func tanh32(x float32) float32 {
	return float32(math.Tanh(float64(x)))
}

// Sigmoid32 exposes the scalar sigmoid for callers that operate on raw
// values (the hardware activation LUT validates against it).
func Sigmoid32(x float32) float32 { return sigmoid32(x) }

// Tanh32 exposes the scalar tanh.
func Tanh32(x float32) float32 { return tanh32(x) }

// AbsSum returns Σ|a_ij| — the "magnitude" statistic the paper uses for
// per-cell weight gradients (Fig. 8).
func (m *Matrix) AbsSum() float64 {
	var s float64
	for _, v := range m.Data {
		s += math.Abs(float64(v))
	}
	return s
}

// MaxAbs returns max |a_ij|.
func (m *Matrix) MaxAbs() float32 {
	var mx float32
	for _, v := range m.Data {
		if v < 0 {
			v = -v
		}
		if v > mx {
			mx = v
		}
	}
	return mx
}

// FracBelow returns the fraction of elements with |v| < threshold —
// the sparsity statistic behind Fig. 6 and the compression module.
func (m *Matrix) FracBelow(threshold float32) float64 {
	if len(m.Data) == 0 {
		return 0
	}
	n := 0
	for _, v := range m.Data {
		if v < 0 {
			v = -v
		}
		if v < threshold {
			n++
		}
	}
	return float64(n) / float64(len(m.Data))
}

// Norm2 returns the Frobenius norm of m.
func (m *Matrix) Norm2() float64 {
	var s float64
	for _, v := range m.Data {
		s += float64(v) * float64(v)
	}
	return math.Sqrt(s)
}

// Equal reports whether m and o have identical shape and elements
// within tol.
func (m *Matrix) Equal(o *Matrix, tol float32) bool {
	if m.Rows != o.Rows || m.Cols != o.Cols {
		return false
	}
	for i, v := range m.Data {
		d := v - o.Data[i]
		if d < 0 {
			d = -d
		}
		if d > tol {
			return false
		}
	}
	return true
}
