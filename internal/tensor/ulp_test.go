package tensor

import (
	"math"
	"testing"
)

func TestULPDiff32(t *testing.T) {
	next := math.Nextafter32
	cases := []struct {
		a, b float32
		want int64
	}{
		{1, 1, 0},
		{0, float32(math.Copysign(0, -1)), 0}, // +0 and -0 are the same value
		{1, next(1, 2), 1},
		{1, next(next(1, 2), 2), 2},
		{-1, next(-1, -2), 1},
		{-1, next(-1, 0), 1},
		{0, next(0, 1), 1},  // smallest positive subnormal
		{0, next(0, -1), 1}, // smallest negative subnormal
		{next(0, -1), next(0, 1), 2},
	}
	for _, tc := range cases {
		if got := ULPDiff32(tc.a, tc.b); got != tc.want {
			t.Errorf("ULPDiff32(%g, %g) = %d, want %d", tc.a, tc.b, got, tc.want)
		}
		if got := ULPDiff32(tc.b, tc.a); got != tc.want {
			t.Errorf("ULPDiff32(%g, %g) = %d, want %d (symmetry)", tc.b, tc.a, got, tc.want)
		}
	}
	nan := float32(math.NaN())
	if got := ULPDiff32(nan, 1); got != math.MaxInt64 {
		t.Errorf("ULPDiff32(NaN, 1) = %d, want MaxInt64", got)
	}
	if WithinULP(nan, nan, math.MaxInt64-1) {
		t.Error("NaN must never be WithinULP of anything")
	}
	if !WithinULP(1, next(1, 2), 1) {
		t.Error("adjacent values must be within 1 ULP")
	}
}

func TestMaxULPDiff(t *testing.T) {
	a := NewFromData(1, 3, []float32{1, 2, 3})
	b := NewFromData(1, 3, []float32{1, math.Nextafter32(2, 3), 3})
	if got := MaxULPDiff(a, b); got != 1 {
		t.Fatalf("MaxULPDiff = %d, want 1", got)
	}
	if got := MaxULPDiff(a, a); got != 0 {
		t.Fatalf("MaxULPDiff(a, a) = %d, want 0", got)
	}
}
