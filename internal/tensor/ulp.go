package tensor

import "math"

// ULP comparison helpers for the differential-testing harness
// (internal/check). Two float32 values that differ only by floating-
// point reassociation — e.g. the baseline BP-EW expressions versus the
// P1-factored ones — land within a handful of representable values of
// each other; comparing in ULPs (units in the last place) expresses
// that bound independently of magnitude, where an absolute epsilon
// would be either too loose for small values or too tight for large
// ones.

// ulpIndex maps a float32 onto a signed integer line where adjacent
// representable values differ by exactly 1 and ordering matches numeric
// ordering. Both zeros map to 0.
func ulpIndex(f float32) int64 {
	b := math.Float32bits(f)
	if b&0x80000000 != 0 {
		return -int64(b & 0x7fffffff)
	}
	return int64(b)
}

// ULPDiff32 returns the distance between a and b in units of last
// place: 0 means bitwise-equal (or +0 vs -0), 1 means adjacent
// representable values. If either value is NaN it returns
// math.MaxInt64, so NaNs never compare as close.
func ULPDiff32(a, b float32) int64 {
	if a != a || b != b { // NaN
		return math.MaxInt64
	}
	d := ulpIndex(a) - ulpIndex(b)
	if d < 0 {
		d = -d
	}
	return d
}

// WithinULP reports whether a and b are within maxULP units of last
// place of each other.
func WithinULP(a, b float32, maxULP int64) bool {
	return ULPDiff32(a, b) <= maxULP
}

// MaxULPDiff32 returns the largest per-element float32 ULP distance
// between m and o — the bound the float16-storage contract is stated
// in (a binary16 round trip of a normal float32 moves it at most 2^12
// single-precision ULPs, since half keeps 10 of the 23 mantissa bits).
func MaxULPDiff32(m, o *Matrix) int64 { return MaxULPDiff(m, o) }

// MaxULPDiff returns the largest per-element ULP distance between m and
// o. Shapes must match (mismatches panic, consistent with the rest of
// the package). An empty matrix compares as identical (0).
func MaxULPDiff(m, o *Matrix) int64 {
	m.mustSameShape(o, "MaxULPDiff")
	var mx int64
	for i, v := range m.Data {
		if d := ULPDiff32(v, o.Data[i]); d > mx {
			mx = d
		}
	}
	return mx
}
