package tensor

import (
	"math"
	"testing"
	"testing/quick"

	"etalstm/internal/rng"
)

func TestNewZeroed(t *testing.T) {
	m := New(3, 4)
	if m.Rows != 3 || m.Cols != 4 || len(m.Data) != 12 {
		t.Fatalf("bad shape: %v", m)
	}
	for _, v := range m.Data {
		if v != 0 {
			t.Fatal("New must zero")
		}
	}
}

func TestNewFromDataPanicsOnLen(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewFromData(2, 2, []float32{1, 2, 3})
}

func TestAtSetRow(t *testing.T) {
	m := New(2, 3)
	m.Set(1, 2, 5)
	if m.At(1, 2) != 5 {
		t.Fatal("At/Set roundtrip")
	}
	r := m.Row(1)
	if r[2] != 5 {
		t.Fatal("Row aliasing")
	}
	r[0] = 7
	if m.At(1, 0) != 7 {
		t.Fatal("Row must alias storage")
	}
}

func TestCloneIndependent(t *testing.T) {
	m := New(2, 2)
	m.Fill(3)
	c := m.Clone()
	c.Set(0, 0, 9)
	if m.At(0, 0) != 3 {
		t.Fatal("Clone must deep-copy")
	}
}

func TestMatMulKnown(t *testing.T) {
	a := NewFromData(2, 3, []float32{1, 2, 3, 4, 5, 6})
	b := NewFromData(3, 2, []float32{7, 8, 9, 10, 11, 12})
	got := MatMul(nil, a, b)
	want := NewFromData(2, 2, []float32{58, 64, 139, 154})
	if !got.Equal(want, 1e-6) {
		t.Fatalf("MatMul: got %v", got.Data)
	}
}

func TestMatMulIdentity(t *testing.T) {
	r := rng.New(1)
	a := New(4, 4)
	a.RandInit(r, 1)
	id := New(4, 4)
	for i := 0; i < 4; i++ {
		id.Set(i, i, 1)
	}
	got := MatMul(nil, a, id)
	if !got.Equal(a, 1e-6) {
		t.Fatal("A·I != A")
	}
}

func TestMatMulShapePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	MatMul(nil, New(2, 3), New(2, 3))
}

func TestMatMulTransA(t *testing.T) {
	r := rng.New(2)
	a := New(5, 3)
	b := New(5, 4)
	a.RandInit(r, 1)
	b.RandInit(r, 1)
	want := MatMul(nil, Transpose(nil, a), b)
	got := MatMulTransA(nil, a, b)
	if !got.Equal(want, 1e-4) {
		t.Fatal("MatMulTransA disagrees with explicit transpose")
	}
}

func TestMatMulTransB(t *testing.T) {
	r := rng.New(3)
	a := New(4, 6)
	b := New(5, 6)
	a.RandInit(r, 1)
	b.RandInit(r, 1)
	want := MatMul(nil, a, Transpose(nil, b))
	got := MatMulTransB(nil, a, b)
	if !got.Equal(want, 1e-4) {
		t.Fatal("MatMulTransB disagrees with explicit transpose")
	}
}

func TestAddMatMulTransAAccumulates(t *testing.T) {
	r := rng.New(4)
	a := New(3, 2)
	b := New(3, 5)
	a.RandInit(r, 1)
	b.RandInit(r, 1)
	dst := New(2, 5)
	dst.Fill(1)
	want := Add(nil, dst, MatMulTransA(nil, a, b))
	AddMatMulTransA(dst, a, b)
	if !dst.Equal(want, 1e-4) {
		t.Fatal("AddMatMulTransA accumulation wrong")
	}
}

func TestTransposeInvolution(t *testing.T) {
	r := rng.New(5)
	a := New(3, 7)
	a.RandInit(r, 1)
	tt := Transpose(nil, Transpose(nil, a))
	if !tt.Equal(a, 0) {
		t.Fatal("(Aᵀ)ᵀ != A")
	}
}

func TestElementwiseOps(t *testing.T) {
	a := NewFromData(1, 4, []float32{1, 2, 3, 4})
	b := NewFromData(1, 4, []float32{10, 20, 30, 40})
	if got := Add(nil, a, b); got.Data[3] != 44 {
		t.Fatalf("Add: %v", got.Data)
	}
	if got := Sub(nil, b, a); got.Data[0] != 9 {
		t.Fatalf("Sub: %v", got.Data)
	}
	if got := Mul(nil, a, b); got.Data[2] != 90 {
		t.Fatalf("Mul: %v", got.Data)
	}
	if got := Scale(nil, a, 2); got.Data[1] != 4 {
		t.Fatalf("Scale: %v", got.Data)
	}
}

func TestMulAdd(t *testing.T) {
	dst := NewFromData(1, 3, []float32{1, 1, 1})
	a := NewFromData(1, 3, []float32{2, 3, 4})
	b := NewFromData(1, 3, []float32{5, 6, 7})
	MulAdd(dst, a, b)
	want := []float32{11, 19, 29}
	for i, v := range want {
		if dst.Data[i] != v {
			t.Fatalf("MulAdd: got %v want %v", dst.Data, want)
		}
	}
}

func TestAddInPlace(t *testing.T) {
	dst := NewFromData(1, 2, []float32{1, 2})
	a := NewFromData(1, 2, []float32{10, 20})
	AddInPlace(dst, a)
	if dst.Data[0] != 11 || dst.Data[1] != 22 {
		t.Fatalf("AddInPlace: %v", dst.Data)
	}
}

func TestAddRowVectorAndSumRows(t *testing.T) {
	a := New(3, 2)
	bias := []float32{1, -1}
	got := AddRowVector(nil, a, bias)
	for i := 0; i < 3; i++ {
		if got.At(i, 0) != 1 || got.At(i, 1) != -1 {
			t.Fatalf("AddRowVector row %d: %v", i, got.Row(i))
		}
	}
	vec := make([]float32, 2)
	SumRows(vec, got)
	if vec[0] != 3 || vec[1] != -3 {
		t.Fatalf("SumRows: %v", vec)
	}
}

func TestSigmoidTanhValues(t *testing.T) {
	a := NewFromData(1, 3, []float32{0, 100, -100})
	s := Sigmoid(nil, a)
	if math.Abs(float64(s.Data[0])-0.5) > 1e-6 {
		t.Fatalf("sigmoid(0)=%v", s.Data[0])
	}
	if s.Data[1] < 0.999 || s.Data[2] > 0.001 {
		t.Fatalf("sigmoid saturation: %v", s.Data)
	}
	th := Tanh(nil, a)
	if th.Data[0] != 0 || th.Data[1] < 0.999 || th.Data[2] > -0.999 {
		t.Fatalf("tanh: %v", th.Data)
	}
}

func TestSigmoidRange(t *testing.T) {
	r := rng.New(6)
	a := New(10, 10)
	a.RandInit(r, 20)
	s := Sigmoid(nil, a)
	for _, v := range s.Data {
		if v < 0 || v > 1 {
			t.Fatalf("sigmoid out of (0,1): %v", v)
		}
	}
}

func TestAbsSumMaxAbsFracBelow(t *testing.T) {
	m := NewFromData(1, 4, []float32{-1, 0.05, 2, -0.01})
	if got := m.AbsSum(); math.Abs(got-3.06) > 1e-6 {
		t.Fatalf("AbsSum: %v", got)
	}
	if m.MaxAbs() != 2 {
		t.Fatalf("MaxAbs: %v", m.MaxAbs())
	}
	if got := m.FracBelow(0.1); got != 0.5 {
		t.Fatalf("FracBelow: %v", got)
	}
}

func TestNorm2(t *testing.T) {
	m := NewFromData(1, 2, []float32{3, 4})
	if math.Abs(m.Norm2()-5) > 1e-6 {
		t.Fatalf("Norm2: %v", m.Norm2())
	}
}

func TestXavierInitScale(t *testing.T) {
	r := rng.New(7)
	m := New(64, 64)
	m.XavierInit(r, 64, 64)
	limit := float32(math.Sqrt(6.0 / 128.0))
	for _, v := range m.Data {
		if v < -limit || v > limit {
			t.Fatalf("Xavier value %v outside ±%v", v, limit)
		}
	}
	if m.MaxAbs() < limit/2 {
		t.Fatal("Xavier init suspiciously small")
	}
}

// Property: (A·B)·C == A·(B·C) within float tolerance.
func TestPropertyMatMulAssociativity(t *testing.T) {
	f := func(seed uint64) bool {
		r := rng.New(seed)
		a, b, c := New(3, 4), New(4, 5), New(5, 2)
		a.RandInit(r, 1)
		b.RandInit(r, 1)
		c.RandInit(r, 1)
		l := MatMul(nil, MatMul(nil, a, b), c)
		rm := MatMul(nil, a, MatMul(nil, b, c))
		return l.Equal(rm, 1e-3)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// Property: MatMul distributes over Add.
func TestPropertyMatMulDistributive(t *testing.T) {
	f := func(seed uint64) bool {
		r := rng.New(seed)
		a, b1, b2 := New(3, 4), New(4, 3), New(4, 3)
		a.RandInit(r, 1)
		b1.RandInit(r, 1)
		b2.RandInit(r, 1)
		l := MatMul(nil, a, Add(nil, b1, b2))
		rm := Add(nil, MatMul(nil, a, b1), MatMul(nil, a, b2))
		return l.Equal(rm, 1e-3)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// Property: transpose identity (A·B)ᵀ == Bᵀ·Aᵀ.
func TestPropertyMatMulTransposeIdentity(t *testing.T) {
	f := func(seed uint64) bool {
		r := rng.New(seed)
		a, b := New(3, 5), New(5, 4)
		a.RandInit(r, 1)
		b.RandInit(r, 1)
		l := Transpose(nil, MatMul(nil, a, b))
		rm := MatMul(nil, Transpose(nil, b), Transpose(nil, a))
		return l.Equal(rm, 1e-4)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// Property: sigmoid'(x) = σ(x)(1-σ(x)) numerically.
func TestPropertySigmoidDerivative(t *testing.T) {
	f := func(x float32) bool {
		if x > 10 || x < -10 {
			x = float32(math.Mod(float64(x), 10))
		}
		const h = 1e-3
		num := (Sigmoid32(x+h) - Sigmoid32(x-h)) / (2 * h)
		s := Sigmoid32(x)
		ana := s * (1 - s)
		return math.Abs(float64(num-ana)) < 1e-3
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: tanh'(x) = 1 - tanh²(x) numerically.
func TestPropertyTanhDerivative(t *testing.T) {
	f := func(x float32) bool {
		if x > 10 || x < -10 {
			x = float32(math.Mod(float64(x), 10))
		}
		const h = 1e-3
		num := (Tanh32(x+h) - Tanh32(x-h)) / (2 * h)
		th := Tanh32(x)
		ana := 1 - th*th
		return math.Abs(float64(num-ana)) < 1e-3
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestBytes(t *testing.T) {
	if New(10, 10).Bytes() != 400 {
		t.Fatal("Bytes")
	}
}

func TestEqualShapeMismatch(t *testing.T) {
	if New(2, 3).Equal(New(3, 2), 1) {
		t.Fatal("Equal must reject shape mismatch")
	}
}
