package tensor

import "math"

// IEEE 754 binary16 storage conversions. The η-LSTM design keeps all
// *compute* in float32 and narrows only *stored* intermediates — the
// BP-EW-P1 products are all bounded in [-1, 1], so a half-precision
// container loses mantissa bits but can never overflow. ToF16/FromF16
// are the codec; QuantizeF16 applies the round trip in place, which is
// exactly what a run that stored its intermediates in half precision
// would read back at BP time.

// ToF16 converts a float32 to IEEE 754 binary16 bits with
// round-to-nearest-even. Overflow saturates to ±Inf, NaN stays NaN
// (payload truncated, quietness forced), and values below half's
// subnormal range flush to signed zero.
func ToF16(x float32) uint16 {
	b := math.Float32bits(x)
	sign := uint16((b >> 16) & 0x8000)
	b &= 0x7fffffff
	if b >= 0x7f800000 { // Inf or NaN
		if b > 0x7f800000 {
			n := uint16((b >> 13) & 0x3ff)
			if n == 0 {
				n = 1 // keep NaN-ness when the payload bits truncate away
			}
			return sign | 0x7c00 | n
		}
		return sign | 0x7c00
	}
	e := int32(b>>23) - 127 + 15
	m := b & 0x7fffff
	switch {
	case e >= 31: // above half's finite range: round to Inf
		return sign | 0x7c00
	case e <= 0: // half subnormal (or underflow to zero)
		if e < -10 {
			return sign
		}
		m |= 0x800000 // make the implicit leading 1 explicit
		return sign | uint16(rneShift(m, uint32(14-e)))
	default:
		// A mantissa that rounds up past 10 bits carries into the
		// exponent field, and e==30 carrying to 31 yields Inf — both are
		// plain binary carries, so no special casing.
		return sign | uint16(uint32(e)<<10+rneShift(m, 13))
	}
}

// rneShift shifts v right by s bits, rounding the dropped bits to
// nearest, ties to even.
func rneShift(v, s uint32) uint32 {
	q := v >> s
	rem := v & (1<<s - 1)
	half := uint32(1) << (s - 1)
	if rem > half || (rem == half && q&1 == 1) {
		q++
	}
	return q
}

// FromF16 converts IEEE 754 binary16 bits to float32. The conversion is
// exact: every half value is representable in single precision.
func FromF16(h uint16) float32 {
	sign := uint32(h&0x8000) << 16
	e := uint32(h >> 10 & 0x1f)
	m := uint32(h & 0x3ff)
	switch {
	case e == 0x1f: // Inf or NaN
		return math.Float32frombits(sign | 0x7f800000 | m<<13)
	case e == 0:
		if m == 0 {
			return math.Float32frombits(sign)
		}
		// Subnormal half: normalize into a single-precision normal.
		e = 1
		for m&0x400 == 0 {
			m <<= 1
			e--
		}
		return math.Float32frombits(sign | (e+112)<<23 | (m&0x3ff)<<13)
	default:
		return math.Float32frombits(sign | (e+112)<<23 | m<<13)
	}
}

// QuantizeF16 rounds every element of m through binary16 storage in
// place: what a float16-stored intermediate yields when read back for
// float32 compute. Zeros pass through bitwise (including -0), so
// quantizing after near-zero pruning never disturbs the pruned pattern.
func QuantizeF16(m *Matrix) {
	for i, v := range m.Data {
		m.Data[i] = FromF16(ToF16(v))
	}
}
