package tensor

import (
	"math"
	"testing"
	"testing/quick"

	"etalstm/internal/rng"
)

// Every binary16 value is exactly representable in binary32, so
// half → single → half must be a bitwise identity over the entire
// 16-bit space — including ±0, ±Inf, subnormals, and every NaN payload.
func TestF16ExhaustiveRoundtrip(t *testing.T) {
	for h := 0; h <= 0xffff; h++ {
		if got := ToF16(FromF16(uint16(h))); got != uint16(h) {
			t.Fatalf("half %#04x -> f32 %v -> half %#04x", h, FromF16(uint16(h)), got)
		}
	}
}

// A single-precision normal inside half's normal range moves at most
// 2^12 float32 ULPs through the storage round trip (half keeps 10 of
// the 23 mantissa bits), and the relative error stays within half an
// half-ULP (2^-11) — RNE's guarantee.
func TestF16RoundtripULPBound(t *testing.T) {
	f := func(seed uint64) bool {
		r := rng.New(seed)
		for i := 0; i < 256; i++ {
			x := float32(r.Uniform(-1, 1))
			if math.Abs(float64(x)) < 6.2e-5 { // below half-normal range
				continue
			}
			y := FromF16(ToF16(x))
			if ULPDiff32(x, y) > 4096 {
				return false
			}
			if math.Abs(float64(y-x)) > math.Abs(float64(x))/2048+1e-12 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestF16SpecialValues(t *testing.T) {
	cases := []struct {
		in   float32
		want uint16
	}{
		{0, 0x0000},
		{float32(math.Copysign(0, -1)), 0x8000},
		{1, 0x3c00},
		{-2, 0xc000},
		{65504, 0x7bff},                 // largest finite half
		{65520, 0x7c00},                 // rounds up to Inf
		{float32(math.Inf(1)), 0x7c00},  // Inf stays Inf
		{float32(math.Inf(-1)), 0xfc00}, //
		{5.9604645e-08, 0x0001},         // smallest half subnormal
		{2.9e-08, 0x0000},               // below half the subnormal step: flushes
		{-5.9604645e-08, 0x8001},        // sign survives the subnormal path
		{6.097555e-05, 0x03ff},          // largest half subnormal
		{6.1035156e-05, 0x0400},         // smallest half normal
		{1 + 1.0/2048, 0x3c00},          // tie rounds to even (down)
		{1 + 3.0/2048, 0x3c02},          // tie rounds to even (up)
	}
	for _, c := range cases {
		if got := ToF16(c.in); got != c.want {
			t.Errorf("ToF16(%g) = %#04x, want %#04x", c.in, got, c.want)
		}
	}
	if h := ToF16(float32(math.NaN())); h&0x7c00 != 0x7c00 || h&0x3ff == 0 {
		t.Errorf("NaN must stay NaN: %#04x", h)
	}
	if v := FromF16(0x7e00); !math.IsNaN(float64(v)) {
		t.Errorf("half NaN must decode to NaN, got %v", v)
	}
}

// Quantization is idempotent, and exact zeros — the pruned pattern —
// pass through with their sign bit intact.
func TestQuantizeF16(t *testing.T) {
	r := rng.New(7)
	m := New(4, 8)
	m.RandInit(r, 1)
	m.Data[3] = 0
	m.Data[5] = float32(math.Copysign(0, -1))
	orig := m.Clone()
	QuantizeF16(m)
	if d := MaxULPDiff32(orig, m); d > 4096 {
		t.Fatalf("quantization moved a value %d ULPs", d)
	}
	if math.Float32bits(m.Data[3]) != 0 || math.Float32bits(m.Data[5]) != 0x80000000 {
		t.Fatal("signed zeros must pass through bitwise")
	}
	once := m.Clone()
	QuantizeF16(m)
	if MaxULPDiff32(once, m) != 0 {
		t.Fatal("quantization must be idempotent")
	}
}

func TestMaxULPDiff32MatchesMaxULPDiff(t *testing.T) {
	a := NewFromData(1, 3, []float32{1, 2, 3})
	b := NewFromData(1, 3, []float32{1, math.Nextafter32(2, 3), 3})
	if MaxULPDiff32(a, b) != MaxULPDiff(a, b) || MaxULPDiff32(a, b) != 1 {
		t.Fatalf("MaxULPDiff32 = %d", MaxULPDiff32(a, b))
	}
}
