package memplan

import (
	"math"
	"testing"

	"etalstm/internal/model"
	"etalstm/internal/workload"
)

func ptbCfg() model.Config {
	return model.Config{InputSize: 512, Hidden: 1024, Layers: 3, SeqLen: 35,
		Batch: 128, OutSize: 1000, Loss: model.PerTimestampLoss}
}

func TestBaselineBreakdownPositive(t *testing.T) {
	b := Footprint(ptbCfg(), Baseline, Params{})
	if b.Parameter <= 0 || b.Activations <= 0 || b.Intermediate <= 0 {
		t.Fatalf("breakdown: %+v", b)
	}
	if b.Total() != b.Parameter+b.Activations+b.Intermediate {
		t.Fatal("Total must sum categories")
	}
}

func TestIntermediateBytesFormula(t *testing.T) {
	cfg := ptbCfg()
	b := Footprint(cfg, Baseline, Params{})
	want := int64(5*cfg.Layers*cfg.SeqLen*cfg.Batch*cfg.Hidden) * 4
	if b.Intermediate != want {
		t.Fatalf("intermediate: %d want %d", b.Intermediate, want)
	}
}

// TestIntermediateFracGrowsWithLength reproduces the Fig. 5 trend: the
// intermediate share grows with layer length and reaches ~74 % at the
// LL303 extreme.
func TestIntermediateFracGrowsWithLength(t *testing.T) {
	prev := 0.0
	for _, sc := range workload.Fig3LengthSweep() {
		f := Footprint(sc.Cfg, Baseline, Params{}).IntermediateFrac()
		if f <= prev {
			t.Fatalf("%s: intermediate frac %v not growing (prev %v)", sc.Label, f, prev)
		}
		prev = f
	}
	if prev < 0.65 || prev > 0.9 {
		t.Fatalf("LL303 intermediate frac %v outside the paper's ~74%% regime", prev)
	}
}

// TestIntermediateFracAverage: across the 17 Fig. 3 configurations the
// average intermediate share should sit in the paper's ~47 % regime.
func TestIntermediateFracAverage(t *testing.T) {
	var sum float64
	sweeps := workload.AllFig3Sweeps()
	for _, sc := range sweeps {
		sum += Footprint(sc.Cfg, Baseline, Params{}).IntermediateFrac()
	}
	avg := sum / float64(len(sweeps))
	if avg < 0.30 || avg > 0.65 {
		t.Fatalf("average intermediate frac %v outside the paper regime (~0.47)", avg)
	}
}

func TestFromSparsity(t *testing.T) {
	// 65% sparsity: 6 planes × 0.35 × 6B / (5 planes × 4B) = 0.63.
	got := FromSparsity(0.65)
	if math.Abs(got-0.63) > 1e-9 {
		t.Fatalf("FromSparsity(0.65) = %v", got)
	}
	if FromSparsity(1) != 0 {
		t.Fatal("full sparsity keeps nothing")
	}
}

func TestMS1ReducesOnlyIntermediates(t *testing.T) {
	cfg := ptbCfg()
	base := Footprint(cfg, Baseline, Params{})
	ms1 := Footprint(cfg, MS1, Params{P1KeepRatio: 0.6})
	if ms1.Parameter != base.Parameter || ms1.Activations != base.Activations {
		t.Fatal("MS1 must not change parameter/activation footprint")
	}
	if ms1.Intermediate >= base.Intermediate {
		t.Fatal("MS1 must shrink intermediates")
	}
	if ms1.Intermediate != int64(float64(base.Intermediate)*0.6) {
		t.Fatalf("MS1 keep ratio not applied: %d", ms1.Intermediate)
	}
}

func TestMS2ScalesCellStorage(t *testing.T) {
	cfg := ptbCfg()
	base := Footprint(cfg, Baseline, Params{})
	ms2 := Footprint(cfg, MS2, Params{SkipFrac: 0.5})
	if ms2.Parameter != base.Parameter {
		t.Fatal("MS2 must not change parameters")
	}
	if ms2.Intermediate != base.Intermediate/2 {
		t.Fatalf("MS2 intermediates: %d want %d", ms2.Intermediate, base.Intermediate/2)
	}
	if ms2.Activations >= base.Activations {
		t.Fatal("MS2 must shrink activations (skipped cells store no h)")
	}
	// But not below the fixed input/output share.
	if ms2.Activations <= 0 {
		t.Fatal("activations cannot vanish")
	}
}

func TestCombinedComposes(t *testing.T) {
	cfg := ptbCfg()
	p := Params{P1KeepRatio: 0.6, SkipFrac: 0.5}
	comb := Footprint(cfg, Combined, p)
	ms1 := Footprint(cfg, MS1, p)
	ms2 := Footprint(cfg, MS2, p)
	if comb.Total() >= ms1.Total() || comb.Total() >= ms2.Total() {
		t.Fatal("Combined must beat both single optimizations")
	}
	base := Footprint(cfg, Baseline, p)
	if comb.Intermediate != int64(float64(base.Intermediate)*0.6*0.5) {
		t.Fatalf("Combined intermediate composition: %d", comb.Intermediate)
	}
}

func TestReductionMetric(t *testing.T) {
	cfg := ptbCfg()
	r := Reduction(cfg, Combined, Params{P1KeepRatio: 0.55, SkipFrac: 0.6})
	if r <= 0 || r >= 1 {
		t.Fatalf("reduction out of range: %v", r)
	}
	if Reduction(cfg, Baseline, Params{}) != 0 {
		t.Fatal("baseline reduction must be 0")
	}
}

// TestCombinedReductionPaperRegime: with the paper's operating points
// (65 % P1 sparsity, ~50-70 % skip on long benchmarks) the combined
// footprint reduction on the long-sequence benchmarks — the ones
// Fig. 18 actually plots (IMDB, WAYMO, BABI) — lands in the 35-85 %
// band around the paper's avg 57.52 % / max 75.75 %.
func TestCombinedReductionPaperRegime(t *testing.T) {
	for _, b := range workload.Suite() {
		skipFrac := 0.4
		if b.Cfg.SeqLen >= 100 {
			skipFrac = 0.65
		}
		r := Reduction(b.Cfg, Combined, Params{P1KeepRatio: FromSparsity(0.65), SkipFrac: skipFrac})
		if b.Cfg.SeqLen >= 100 {
			if r < 0.35 || r > 0.85 {
				t.Errorf("%s: combined reduction %.3f outside the Fig. 18 band", b.Name, r)
			}
		} else if r <= 0 || r > 0.85 {
			t.Errorf("%s: combined reduction %.3f implausible", b.Name, r)
		}
	}
}

// TestBABIIntermediateFracMatchesPaperMax: at the BABI geometry
// (LL=303) the intermediate share must sit near the paper's reported
// maximum of 74.01 %.
func TestBABIIntermediateFracMatchesPaperMax(t *testing.T) {
	b, err := workload.ByName("BABI")
	if err != nil {
		t.Fatal(err)
	}
	f := Footprint(b.Cfg, Baseline, Params{}).IntermediateFrac()
	if f < 0.68 || f > 0.82 {
		t.Fatalf("BABI intermediate frac %.3f, paper reports ~0.74", f)
	}
}

// TestFitsIn exercises the Fig. 3b memory-wall mechanism: footprint
// grows with layer number until the largest configurations no longer
// fit the device. Our analytic footprint is the conceptual minimum
// (5 planes/cell, no allocator overhead) — the paper's PyTorch stack
// hits the wall at 16 GB; the analytic model hits it at the same layer
// counts when the budget is scaled by the framework-overhead factor
// the Fig. 3 harness documents.
func TestFitsIn(t *testing.T) {
	const gib = int64(1) << 30
	gibF := float64(gib)
	budget := int64(2.9 * gibF) // 16 GiB / PyTorchOverheadFactor (5.5)
	for _, sc := range workload.Fig3LayerSweep() {
		fits := FitsIn(sc.Cfg, budget)
		wantFits := sc.Cfg.Layers <= 6
		if fits != wantFits {
			total := Footprint(sc.Cfg, Baseline, Params{}).Total()
			t.Errorf("%s: fits=%v want %v (total %.2f GiB)", sc.Label, fits, wantFits,
				float64(total)/float64(gib))
		}
	}
}

// TestFootprintMonotonicInEveryDimension: growing any of the three
// model-size axes must grow the total footprint.
func TestFootprintMonotonicInEveryDimension(t *testing.T) {
	for _, sweep := range [][]workload.SweepConfig{
		workload.Fig3HiddenSweep(), workload.Fig3LayerSweep(), workload.Fig3LengthSweep(),
	} {
		var prev int64
		for _, sc := range sweep {
			total := Footprint(sc.Cfg, Baseline, Params{}).Total()
			if total <= prev {
				t.Fatalf("%s: footprint %d not monotone (prev %d)", sc.Label, total, prev)
			}
			prev = total
		}
	}
}

func TestMS1NeverCostsFootprint(t *testing.T) {
	// At low sparsity value+index pairs would exceed the dense raw
	// intermediates; the dense/sparse fallback must cap the cost.
	cfg := ptbCfg()
	base := Footprint(cfg, Baseline, Params{})
	low := Footprint(cfg, MS1, Params{P1KeepRatio: FromSparsity(0.1)})
	if low.Intermediate > base.Intermediate {
		t.Fatalf("MS1 at low sparsity must fall back to dense storage: %d vs %d",
			low.Intermediate, base.Intermediate)
	}
}

func TestModeString(t *testing.T) {
	for m, want := range map[Mode]string{Baseline: "Baseline", MS1: "MS1", MS2: "MS2", Combined: "Combine-MS"} {
		if m.String() != want {
			t.Fatalf("%v", m)
		}
	}
}
