package memplan

import (
	"fmt"

	"etalstm/internal/model"
)

// This file is the checkpoint-placement side of the package: given a
// byte budget, decide which (h,s) timestep columns BPTT keeps so that
// everything else can be recomputed segment-by-segment during BP
// (Gruslys et al., "Memory-Efficient Backpropagation Through Time").
//
// Two byte accountings coexist in this package, deliberately:
//
//   - Footprint models the PAPER's flows (Fig. 5/18), where MS1 stores
//     P1 as compressed value+index pairs — the numbers the figures and
//     their regression tests pin.
//   - Plan models what THIS implementation keeps resident: the in-memory
//     P1 store is dense (six batch×hidden planes; pruning zeroes values
//     without shrinking storage), so a budget that must actually hold is
//     computed against six planes per P1 cell, five per raw cell. The
//     planner must never promise a peak the measured run exceeds.

// Placement is a checkpoint plan for one configuration: which timestep
// columns to snapshot, and the predicted cost of honoring them.
type Placement struct {
	Cfg    model.Config
	Mode   Mode
	Budget int64 // requested budget in bytes; <= 0 means unlimited

	// Boundaries are the segment starts, ascending, always beginning
	// with 0. Segment i spans [Boundaries[i], Boundaries[i+1]) (the last
	// runs to SeqLen). Every boundary after the first pins an (h,s)
	// column for all layers; the final segment's cells are stored
	// directly during the main FW pass and never recomputed.
	Boundaries []int

	// PredictedPeak is the modeled peak of stored activation bytes under
	// this placement; FullPeak is the same model at full storage
	// (Boundaries == [0]). CheckpointBytes is what the pinned columns
	// alone cost.
	PredictedPeak   int64
	FullPeak        int64
	CheckpointBytes int64

	// RecomputedCells counts the FW cells re-executed during one BP pass
	// (layers × timesteps before the last segment); RecomputeFLOPs is
	// their modeled cost; RecomputeRatio is RecomputedCells over the
	// total cell count.
	RecomputedCells int
	RecomputeFLOPs  int64
	RecomputeRatio  float64

	// Feasible is false when even one checkpoint per timestep cannot fit
	// the budget; Boundaries then hold that densest plan and
	// PredictedPeak reports how far over budget it lands.
	Feasible bool
}

// FullStorage reports whether the plan stores every column (classic
// BPTT, zero recompute).
func (p Placement) FullStorage() bool { return len(p.Boundaries) <= 1 }

// Segments returns the number of FW segments.
func (p Placement) Segments() int { return len(p.Boundaries) }

// Checkpoints returns the number of pinned (h,s) columns.
func (p Placement) Checkpoints() int {
	if len(p.Boundaries) <= 1 {
		return 0
	}
	return len(p.Boundaries) - 1
}

// String summarizes the plan for CLI output.
func (p Placement) String() string {
	if p.FullStorage() {
		return fmt.Sprintf("full storage (peak %d B)", p.PredictedPeak)
	}
	return fmt.Sprintf("%d checkpoint columns / %d segments, predicted peak %d B, recompute %.1f%% of FW cells",
		p.Checkpoints(), p.Segments(), p.PredictedPeak, 100*p.RecomputeRatio)
}

// planCosts are the resident byte weights of one configuration under
// one mode — the terms the placement search optimizes over.
type planCosts struct {
	plane      int64 // one batch×hidden float32 plane
	stepStored int64 // h + intermediates for all layers of one stored timestep
	colBytes   int64 // one (h,s) checkpoint column across all layers
	fixed      int64 // projection-gradient accumulators, alive for the whole pass
	evalAt     func(t int) int64
	cellFLOPs  int64 // modeled FW cost of one timestep across all layers
}

func costsFor(cfg model.Config, mode Mode) planCosts {
	plane := int64(cfg.Batch*cfg.Hidden) * 4
	// Resident planes per cell: h plus the intermediates the storage
	// policy keeps. The dense in-memory P1 store holds SIX planes
	// (Pf..Pfs) regardless of prune ratio, one more than raw storage.
	inter := int64(5)
	if mode == MS1 || mode == Combined {
		inter = 6
	}
	// MS2's skip plan is epoch-dependent (warmup epochs run every cell
	// dense), so the planner budgets for zero skipping: conservative for
	// steady state, exact for warmup.
	c := planCosts{
		plane:      plane,
		stepStored: int64(cfg.Layers) * (1 + inter) * plane,
		colBytes:   2 * int64(cfg.Layers) * plane,
		fixed:      int64(cfg.Hidden*cfg.OutSize+cfg.OutSize) * 4,
	}
	c.evalAt = func(t int) int64 {
		if cfg.Loss == model.SingleLoss && t != cfg.SeqLen-1 {
			return 0
		}
		return plane // the segment's dY seed for this timestep
	}
	for l := 0; l < cfg.Layers; l++ {
		in := cfg.Hidden
		if l == 0 {
			in = cfg.InputSize
		}
		c.cellFLOPs += int64(2*cfg.Batch*(in+cfg.Hidden)*4*cfg.Hidden) +
			int64(10*cfg.Batch*cfg.Hidden)
	}
	return c
}

// segBytes is the resident cost of backpropagating segment [lo,hi): its
// stored cells plus the dY seeds of its evaluated timesteps. The peak
// sits at the segment's BP start — each consumed cell frees more (h +
// intermediates + dY) than the dX it produces.
func (c planCosts) segBytes(lo, hi int) int64 {
	b := int64(hi-lo) * c.stepStored
	for t := lo; t < hi; t++ {
		b += c.evalAt(t)
	}
	return b
}

// peakOf evaluates the model's peak for a boundary set: while segment i
// is being backpropagated, columns 1..i are still pinned (later ones
// were already released), so the max is taken per segment. The i == K−1
// term is also the FW-end state.
func (c planCosts) peakOf(boundaries []int, seqLen int) int64 {
	var peak int64
	for i, lo := range boundaries {
		hi := seqLen
		if i+1 < len(boundaries) {
			hi = boundaries[i+1]
		}
		b := c.fixed + int64(i)*c.colBytes + c.segBytes(lo, hi)
		if b > peak {
			peak = b
		}
	}
	return peak
}

// Plan chooses a checkpoint placement for cfg under mode that keeps the
// predicted peak of stored activation bytes within budget while
// minimizing recompute. A budget <= 0 (or one the full-storage peak
// already fits) returns the full-storage plan.
//
// The underlying problem is the interval-partition DP
//
//	best[t] = min over s <= t with segBytes(s,t) <= limit of 1 + best[s]
//
// (fewest segments covering [0,T) under a per-segment byte limit); because
// per-step weights are positive, the greedy sweep that grows each
// segment maximal from the END solves it exactly, and putting the
// longest feasible segment last is precisely what minimizes recompute —
// only the non-last segments are ever replayed. The search tries
// K = 1, 2, … segments, shrinking the per-segment cap by the bytes the
// K−1 pinned columns cost, and takes the first K the greedy sweep
// satisfies.
func Plan(cfg model.Config, mode Mode, budget int64) Placement {
	T := cfg.SeqLen
	c := costsFor(cfg, mode)
	p := Placement{Cfg: cfg, Mode: mode, Budget: budget, Feasible: true}
	p.FullPeak = c.peakOf([]int{0}, T)

	if budget <= 0 || p.FullPeak <= budget || T <= 1 {
		p.Boundaries = []int{0}
		p.PredictedPeak = p.FullPeak
		return p
	}

	for k := 2; k <= T; k++ {
		limit := budget - c.fixed - int64(k-1)*c.colBytes
		b := greedyFromEnd(c, T, limit)
		if b == nil {
			break // even single-step segments exceed cap; larger k only shrinks it
		}
		if len(b) <= k {
			p.Boundaries = b
			p.finish(c)
			return p
		}
	}

	// Nothing fits: report the densest possible plan, flagged.
	p.Feasible = false
	p.Boundaries = make([]int, T)
	for t := range p.Boundaries {
		p.Boundaries[t] = t
	}
	p.finish(c)
	return p
}

// greedyFromEnd partitions [0,T) into maximal segments growing backward
// from the end, each within limit. Returns nil when some single step
// alone exceeds limit.
func greedyFromEnd(c planCosts, T int, limit int64) []int {
	if limit <= 0 {
		return nil
	}
	var rev []int // segment starts, collected descending
	cur := int64(0)
	for t := T - 1; t >= 0; t-- {
		w := c.stepStored + c.evalAt(t)
		if w > limit {
			return nil
		}
		if cur+w > limit {
			rev = append(rev, t+1)
			cur = 0
		}
		cur += w
	}
	rev = append(rev, 0)
	b := make([]int, len(rev))
	for i, v := range rev {
		b[len(rev)-1-i] = v
	}
	return b
}

// finish fills the derived cost fields from Boundaries.
func (p *Placement) finish(c planCosts) {
	T := p.Cfg.SeqLen
	p.PredictedPeak = c.peakOf(p.Boundaries, T)
	p.CheckpointBytes = int64(p.Checkpoints()) * c.colBytes
	lastLo := p.Boundaries[len(p.Boundaries)-1]
	p.RecomputedCells = p.Cfg.Layers * lastLo
	p.RecomputeFLOPs = int64(lastLo) * c.cellFLOPs
	if T > 0 {
		p.RecomputeRatio = float64(lastLo) / float64(T)
	}
}
