package memplan

import (
	"strings"
	"testing"

	"etalstm/internal/model"
)

func planConfigs() []model.Config {
	return []model.Config{
		{InputSize: 8, Hidden: 16, Layers: 2, SeqLen: 32, Batch: 4, OutSize: 4, Loss: model.SingleLoss},
		{InputSize: 8, Hidden: 8, Layers: 1, SeqLen: 64, Batch: 2, OutSize: 8, Loss: model.PerTimestampLoss},
		{InputSize: 16, Hidden: 32, Layers: 3, SeqLen: 48, Batch: 2, OutSize: 16, Loss: model.RegressionLoss},
		{InputSize: 4, Hidden: 4, Layers: 2, SeqLen: 7, Batch: 1, OutSize: 3, Loss: model.PerTimestampLoss},
	}
}

func planModes() []Mode { return []Mode{Baseline, MS1, MS2, Combined} }

// validatePlacement re-derives the plan's peak independently and checks
// structural invariants.
func validatePlacement(t *testing.T, p Placement) {
	t.Helper()
	if len(p.Boundaries) == 0 || p.Boundaries[0] != 0 {
		t.Fatalf("boundaries must start at 0: %v", p.Boundaries)
	}
	for i := 1; i < len(p.Boundaries); i++ {
		if p.Boundaries[i] <= p.Boundaries[i-1] || p.Boundaries[i] >= p.Cfg.SeqLen {
			t.Fatalf("boundaries not strictly ascending in [0,T): %v (T=%d)", p.Boundaries, p.Cfg.SeqLen)
		}
	}
	c := costsFor(p.Cfg, p.Mode)
	if got := c.peakOf(p.Boundaries, p.Cfg.SeqLen); got != p.PredictedPeak {
		t.Fatalf("PredictedPeak %d != recomputed %d", p.PredictedPeak, got)
	}
	lastLo := p.Boundaries[len(p.Boundaries)-1]
	if want := p.Cfg.Layers * lastLo; p.RecomputedCells != want {
		t.Fatalf("RecomputedCells %d != layers*lastLo %d", p.RecomputedCells, want)
	}
}

func TestPlanNeverExceedsBudget(t *testing.T) {
	for _, cfg := range planConfigs() {
		for _, mode := range planModes() {
			full := Plan(cfg, mode, 0)
			// Sweep budgets from generous down to the infeasible floor.
			for div := int64(1); div <= 64; div *= 2 {
				budget := full.FullPeak / div
				p := Plan(cfg, mode, budget)
				validatePlacement(t, p)
				if !p.Feasible {
					continue
				}
				if p.PredictedPeak > budget && budget < full.FullPeak {
					t.Errorf("%v/%v budget %d: predicted peak %d exceeds budget", cfg.Loss, mode, budget, p.PredictedPeak)
				}
			}
		}
	}
}

func TestPlanRecomputeMonotone(t *testing.T) {
	for _, cfg := range planConfigs() {
		for _, mode := range planModes() {
			full := Plan(cfg, mode, 0)
			prev := -1 // recompute of the previous (smaller) budget
			for div := int64(64); div >= 1; div /= 2 {
				p := Plan(cfg, mode, full.FullPeak/div)
				if !p.Feasible {
					continue
				}
				if prev >= 0 && p.RecomputedCells > prev {
					t.Errorf("%v/%v: recompute grew from %d to %d as budget grew", cfg.Loss, mode, prev, p.RecomputedCells)
				}
				prev = p.RecomputedCells
			}
		}
	}
}

func TestPlanDegeneratesToFullStorage(t *testing.T) {
	for _, cfg := range planConfigs() {
		for _, mode := range planModes() {
			for _, budget := range []int64{0, -5, 1 << 50} {
				p := Plan(cfg, mode, budget)
				if !p.FullStorage() || p.RecomputedCells != 0 || p.RecomputeRatio != 0 {
					t.Fatalf("budget %d should be full storage, got %v", budget, p.Boundaries)
				}
				if p.Checkpoints() != 0 || p.CheckpointBytes != 0 {
					t.Fatalf("full storage must pin no columns: %+v", p)
				}
				if p.PredictedPeak != p.FullPeak {
					t.Fatalf("full storage peak mismatch: %d vs %d", p.PredictedPeak, p.FullPeak)
				}
			}
		}
	}
}

func TestPlanInfeasibleFlagged(t *testing.T) {
	cfg := planConfigs()[0]
	p := Plan(cfg, Baseline, 64) // can't even hold one timestep column
	if p.Feasible {
		t.Fatalf("64-byte budget should be infeasible, got %v", p.Boundaries)
	}
	if len(p.Boundaries) != cfg.SeqLen {
		t.Fatalf("infeasible plan should report the densest placement, got %d boundaries", len(p.Boundaries))
	}
	if p.PredictedPeak <= 64 {
		t.Fatalf("infeasible plan must report the over-budget peak, got %d", p.PredictedPeak)
	}
	validatePlacement(t, p)
}

func TestPlanTightBudgetShortensLastSegment(t *testing.T) {
	cfg := planConfigs()[1] // per-timestamp, T=64
	full := Plan(cfg, Baseline, 0)
	loose := Plan(cfg, Baseline, full.FullPeak/2)
	tight := Plan(cfg, Baseline, full.FullPeak/8)
	if loose.FullStorage() || tight.FullStorage() {
		t.Fatalf("both budgets should force checkpointing: %v / %v", loose.Boundaries, tight.Boundaries)
	}
	if tight.Segments() <= loose.Segments() {
		t.Errorf("tighter budget should need more segments: %d vs %d", tight.Segments(), loose.Segments())
	}
	if tight.RecomputeRatio <= loose.RecomputeRatio {
		t.Errorf("tighter budget should recompute more: %.3f vs %.3f", tight.RecomputeRatio, loose.RecomputeRatio)
	}
	if tight.RecomputeFLOPs <= loose.RecomputeFLOPs {
		t.Errorf("FLOP model should track recompute: %d vs %d", tight.RecomputeFLOPs, loose.RecomputeFLOPs)
	}
}

func TestPlanP1CostsMoreThanRaw(t *testing.T) {
	// The dense in-memory P1 store keeps six planes per cell vs five raw,
	// so under the same budget MS1 must checkpoint at least as densely.
	cfg := planConfigs()[0]
	full := Plan(cfg, Baseline, 0)
	raw := Plan(cfg, Baseline, full.FullPeak/4)
	p1 := Plan(cfg, MS1, full.FullPeak/4)
	if p1.Segments() < raw.Segments() {
		t.Errorf("P1 plan uses fewer segments (%d) than raw (%d) under the same budget", p1.Segments(), raw.Segments())
	}
	if Plan(cfg, MS1, 0).FullPeak <= full.FullPeak {
		t.Errorf("resident P1 full peak should exceed raw full peak")
	}
}

func TestPlacementString(t *testing.T) {
	cfg := planConfigs()[0]
	full := Plan(cfg, Baseline, 0)
	if !strings.Contains(full.String(), "full storage") {
		t.Errorf("full-storage String: %q", full.String())
	}
	p := Plan(cfg, Baseline, full.FullPeak/4)
	s := p.String()
	if !strings.Contains(s, "checkpoint columns") || !strings.Contains(s, "recompute") {
		t.Errorf("budgeted String: %q", s)
	}
}
