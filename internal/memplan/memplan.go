// Package memplan models the training-time memory footprint of an LSTM
// configuration under the baseline flow and under η-LSTM's software
// optimizations — the quantities of paper Fig. 5 (breakdown and total)
// and Fig. 18 (reduction under MS1/MS2/Combined).
//
// Categories follow the paper's three bars:
//
//   - Parameter: the weight matrices plus the gradient buffers that
//     mirror them during BP;
//   - Activations: the per-timestep data every flow must keep for BP —
//     layer inputs, hidden outputs h, and the output/loss buffers;
//   - Intermediate_Variable: the per-cell FW-EW products (f, i, c̃, o, s)
//     whose long FW→BP reuse distance parks them in DRAM — the paper's
//     root cause of large-LSTM inefficiency.
//
// All quantities are bytes for one in-flight training step at the
// configured batch size, in float32.
package memplan

import (
	"etalstm/internal/model"
)

// Mode selects the training flow being modeled.
type Mode int

// The four flows compared in Fig. 18.
const (
	Baseline Mode = iota
	MS1           // cell-level variable reduction (compressed P1)
	MS2           // BP-cell skipping
	Combined      // MS1 + MS2 (η-LSTM software level)
)

// String implements fmt.Stringer.
func (m Mode) String() string {
	switch m {
	case Baseline:
		return "Baseline"
	case MS1:
		return "MS1"
	case MS2:
		return "MS2"
	case Combined:
		return "Combine-MS"
	}
	return "Mode(?)"
}

// Params carries the measured inputs the optimized modes need.
type Params struct {
	// P1KeepRatio is the compressed size of a P1 set relative to the
	// dense raw intermediates it replaces: (6 planes × (1-sparsity) ×
	// 6 B/pair) / (5 planes × 4 B). Derive with FromSparsity.
	P1KeepRatio float64
	// SkipFrac is the fraction of cells whose BP execution (and hence
	// FW-side storage) MS2 eliminates.
	SkipFrac float64
}

// FromSparsity converts a measured P1 near-zero fraction into the
// P1KeepRatio MS1 achieves with 4 B values + 2 B indices: six P1 planes
// replace five raw planes.
func FromSparsity(sparsity float64) float64 {
	const planesP1, planesRaw = 6.0, 5.0
	const pairBytes, denseBytes = 6.0, 4.0
	return planesP1 * (1 - sparsity) * pairBytes / (planesRaw * denseBytes)
}

// Breakdown is a footprint split by the paper's categories.
type Breakdown struct {
	Parameter    int64
	Activations  int64
	Intermediate int64
}

// Total returns the summed footprint.
func (b Breakdown) Total() int64 { return b.Parameter + b.Activations + b.Intermediate }

// IntermediateFrac returns the intermediate share of the total (the
// 47.18 % average / 74.01 % max statistic of Sec. III-B).
func (b Breakdown) IntermediateFrac() float64 {
	t := b.Total()
	if t == 0 {
		return 0
	}
	return float64(b.Intermediate) / float64(t)
}

// weightBytes returns the weight storage of cfg (all layers' W, U, b
// plus the output projection).
func weightBytes(cfg model.Config) int64 {
	var b int64
	for l := 0; l < cfg.Layers; l++ {
		in := cfg.Hidden
		if l == 0 {
			in = cfg.InputSize
		}
		b += int64(4*(in*cfg.Hidden+cfg.Hidden*cfg.Hidden+cfg.Hidden)) * 4
	}
	b += int64(cfg.Hidden*cfg.OutSize+cfg.OutSize) * 4
	return b
}

// activationBytes returns the stored activations: external inputs,
// every cell's h output, and the output-side buffers (logits and their
// gradients at evaluated timesteps).
func activationBytes(cfg model.Config) int64 {
	b := int64(cfg.SeqLen*cfg.Batch*cfg.InputSize) * 4         // inputs
	b += int64(cfg.Layers*cfg.SeqLen*cfg.Batch*cfg.Hidden) * 4 // h per cell
	steps := cfg.SeqLen
	if cfg.Loss == model.SingleLoss {
		steps = 1
	}
	b += int64(2*steps*cfg.Batch*cfg.OutSize) * 4 // logits + dLogits
	// BP seed planes: the dY = dLogits·Projᵀ buffers materialized per
	// evaluated timestep at the start of BP. These live in the output/loss
	// share, NOT the per-cell share — MS2 creates them even for skipped
	// top-layer cells (the seed exists before the skip decision), so they
	// must not scale with liveFrac. Earlier revisions omitted them, which
	// under-counted the fixed share exactly where MS2's skip scaling made
	// the discrepancy visible.
	b += int64(steps*cfg.Batch*cfg.Hidden) * 4
	return b
}

// intermediateBytes returns the baseline per-step intermediate storage:
// five batch×hidden planes per cell.
func intermediateBytes(cfg model.Config) int64 {
	return int64(5*cfg.Layers*cfg.SeqLen*cfg.Batch*cfg.Hidden) * 4
}

// Footprint returns the modeled footprint of cfg under mode.
func Footprint(cfg model.Config, mode Mode, p Params) Breakdown {
	w := weightBytes(cfg)
	b := Breakdown{
		// weights + mirrored gradient buffers
		Parameter:    2 * w,
		Activations:  activationBytes(cfg),
		Intermediate: intermediateBytes(cfg),
	}
	keep := p.P1KeepRatio
	if keep == 0 {
		keep = FromSparsity(0.65) // the paper's Fig. 6 operating point
	}
	// When the measured sparsity is too low for value+index pairs to
	// pay off, the flow stores the raw intermediates exactly as the
	// baseline would (the DMA's dense/sparse discriminator, Fig. 14),
	// so MS1 can never cost footprint.
	if keep > 1 {
		keep = 1
	}
	liveFrac := 1 - p.SkipFrac
	switch mode {
	case Baseline:
	case MS1:
		b.Intermediate = int64(float64(b.Intermediate) * keep)
	case MS2:
		// Skipped cells store no intermediates and no BP-side
		// activations (their FW runs in inference mode). Inputs and the
		// output buffers remain.
		b.Intermediate = int64(float64(b.Intermediate) * liveFrac)
		b.Activations = scaleCellActivations(cfg, b.Activations, liveFrac)
	case Combined:
		b.Intermediate = int64(float64(b.Intermediate) * keep * liveFrac)
		b.Activations = scaleCellActivations(cfg, b.Activations, liveFrac)
	}
	return b
}

// scaleCellActivations scales only the per-cell h storage by liveFrac,
// leaving the external inputs and output buffers whole.
func scaleCellActivations(cfg model.Config, total int64, liveFrac float64) int64 {
	cellH := int64(cfg.Layers*cfg.SeqLen*cfg.Batch*cfg.Hidden) * 4
	fixed := total - cellH
	return fixed + int64(float64(cellH)*liveFrac)
}

// Reduction returns 1 − footprint(mode)/footprint(baseline): the Fig. 18
// metric.
func Reduction(cfg model.Config, mode Mode, p Params) float64 {
	base := Footprint(cfg, Baseline, p).Total()
	if base == 0 {
		return 0
	}
	opt := Footprint(cfg, mode, p).Total()
	return 1 - float64(opt)/float64(base)
}

// FitsIn reports whether the baseline footprint of cfg fits in a device
// with memBytes of DRAM — the Fig. 3b observation that 7- and 8-layer
// models cannot train on a 16 GB RTX 5000.
func FitsIn(cfg model.Config, memBytes int64) bool {
	return Footprint(cfg, Baseline, Params{}).Total() <= memBytes
}
