package serve

import (
	"context"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"etalstm/internal/model"
	"etalstm/internal/persist"
	"etalstm/internal/rng"
)

// newTestHTTP serves an already-built Server (testServer always calls
// New; standby tests need to construct their own).
func newTestHTTP(t *testing.T, s *Server) string {
	t.Helper()
	hs := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		hs.Close()
		s.Close(context.Background())
	})
	return hs.URL
}

// altNet builds a serving-compatible network with different weights
// (and, deliberately, a different training shape — SeqLen/Batch must
// not block a swap).
func altNet(t testing.TB, seed uint64) *model.Network {
	t.Helper()
	cfg := model.Config{
		InputSize: 4, Hidden: 8, Layers: 2, SeqLen: 16, Batch: 2,
		OutSize: 3, Loss: model.SingleLoss,
	}
	net, err := model.NewNetwork(cfg, rng.New(seed))
	if err != nil {
		t.Fatal(err)
	}
	return net
}

// TestReloadZeroDrop is the hot-swap acceptance test: concurrent
// inference traffic across several checkpoint swaps completes with
// zero dropped (errored) requests, and the generation/digest advance.
func TestReloadZeroDrop(t *testing.T) {
	s := New(testNet(t), Options{MaxBatch: 4, Window: time.Millisecond})
	defer s.Close(context.Background())
	_, d0 := s.Generation()

	var errs atomic.Int64
	var done atomic.Bool
	var wg sync.WaitGroup
	for c := 0; c < 4; c++ {
		wg.Add(1)
		go func(seed uint64) {
			defer wg.Done()
			r := rng.New(seed)
			for !done.Load() {
				req := Request{Inputs: seqJSON(r, 3, 4)}
				if seed%2 == 0 {
					req.Session = "swap-sess"
				}
				if _, err := s.Infer(context.Background(), req); err != nil {
					t.Errorf("infer during swap: %v", err)
					errs.Add(1)
				}
			}
		}(uint64(c + 1))
	}

	for i := 0; i < 3; i++ {
		time.Sleep(5 * time.Millisecond)
		if err := s.Reload(altNet(t, uint64(100+i)), ""); err != nil {
			t.Fatalf("reload %d: %v", i, err)
		}
	}
	time.Sleep(5 * time.Millisecond)
	done.Store(true)
	wg.Wait()

	if n := errs.Load(); n != 0 {
		t.Fatalf("%d requests dropped across 3 hot-swaps, want 0", n)
	}
	gen, d3 := s.Generation()
	if gen != 4 {
		t.Fatalf("generation = %d after 3 swaps, want 4", gen)
	}
	if d3 == d0 || len(d3) != 64 {
		t.Fatalf("digest did not change across swap: %q -> %q", d0, d3)
	}
	if st := s.Stats(); st.Failed != 0 || st.SwapGeneration != 4 {
		t.Fatalf("stats after swaps: %+v", st)
	}
}

// TestReloadIncompatibleRejected: a checkpoint with a different serving
// geometry must be refused (live sessions would hold mis-shaped state).
func TestReloadIncompatibleRejected(t *testing.T) {
	s := New(testNet(t), Options{MaxBatch: 4, Window: time.Millisecond})
	defer s.Close(context.Background())

	cfg := model.Config{InputSize: 4, Hidden: 16, Layers: 2, SeqLen: 8, Batch: 1,
		OutSize: 3, Loss: model.SingleLoss}
	wrong, err := model.NewNetwork(cfg, rng.New(7))
	if err != nil {
		t.Fatal(err)
	}
	err = s.Reload(wrong, "")
	if err == nil || !strings.Contains(err.Error(), "incompatible") {
		t.Fatalf("incompatible reload error = %v", err)
	}
	if gen, _ := s.Generation(); gen != 1 {
		t.Fatalf("generation moved to %d on a rejected reload", gen)
	}
}

// TestStandbyReadyz: a standby server is live but not ready until its
// first checkpoint load — the /readyz half of the liveness split.
func TestStandbyReadyz(t *testing.T) {
	s := NewStandby(Options{MaxBatch: 4, Window: time.Millisecond})
	hs := newTestHTTP(t, s)

	get := func(path string) int {
		resp, err := http.Get(hs + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp.StatusCode
	}
	if got := get("/healthz"); got != http.StatusOK {
		t.Fatalf("standby healthz: HTTP %d, want 200", got)
	}
	if got := get("/readyz"); got != http.StatusServiceUnavailable {
		t.Fatalf("standby readyz: HTTP %d, want 503", got)
	}
	if got := get("/v1/model"); got != http.StatusServiceUnavailable {
		t.Fatalf("standby model: HTTP %d, want 503", got)
	}
	if _, err := s.Infer(context.Background(), Request{Inputs: seqJSON(rng.New(1), 2, 4)}); err != ErrNotReady {
		t.Fatalf("standby infer error = %v, want ErrNotReady", err)
	}

	if err := s.Reload(testNet(t), ""); err != nil {
		t.Fatalf("first reload: %v", err)
	}
	if got := get("/readyz"); got != http.StatusOK {
		t.Fatalf("readyz after first load: HTTP %d, want 200", got)
	}
	if gen, digest := s.Generation(); gen != 1 || len(digest) != 64 {
		t.Fatalf("generation after first load: %d %q", gen, digest)
	}
	if _, err := s.Infer(context.Background(), Request{Inputs: seqJSON(rng.New(1), 2, 4)}); err != nil {
		t.Fatalf("infer after first load: %v", err)
	}
}

// TestAdminReloadEndpoint drives the swap the way the fleet router
// does: save a checkpoint file, POST its path to /v1/admin/reload, and
// verify the served digest flips to the file's digest.
func TestAdminReloadEndpoint(t *testing.T) {
	s, hs := testServer(t, Options{MaxBatch: 4, Window: time.Millisecond, EnableAdmin: true})

	path := filepath.Join(t.TempDir(), "next.ckpt")
	next := altNet(t, 42)
	if err := persist.SaveFile(path, next); err != nil {
		t.Fatal(err)
	}
	want, err := persist.DigestFile(path)
	if err != nil {
		t.Fatal(err)
	}

	resp, body := postJSON(t, hs.URL+"/v1/admin/reload", reloadRequest{Path: path})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("admin reload: HTTP %d (%v)", resp.StatusCode, body)
	}
	if body["digest"] != want || body["generation"].(float64) != 2 {
		t.Fatalf("admin reload answered %v, want digest %s gen 2", body, want)
	}
	if st := s.Stats(); st.CheckpointDigest != want || st.SwapGeneration != 2 {
		t.Fatalf("statz after admin reload: gen=%d digest=%q", st.SwapGeneration, st.CheckpointDigest)
	}

	// Bad path → 400, generation unchanged.
	resp, _ = postJSON(t, hs.URL+"/v1/admin/reload", reloadRequest{Path: path + ".missing"})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("admin reload with missing file: HTTP %d, want 400", resp.StatusCode)
	}
	if gen, _ := s.Generation(); gen != 2 {
		t.Fatalf("generation moved to %d on failed reload", gen)
	}
}

// TestAdminReloadGate: the admin surface must not exist unless opted
// into, like pprof.
func TestAdminReloadGate(t *testing.T) {
	_, hs := testServer(t, Options{MaxBatch: 4, Window: time.Millisecond})
	resp, err := http.Post(hs.URL+"/v1/admin/reload", "application/json", strings.NewReader(`{"path":"x"}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("admin reload without EnableAdmin: HTTP %d, want 404", resp.StatusCode)
	}
}
