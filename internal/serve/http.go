package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/pprof"
	"time"
)

// maxBodyBytes bounds /v1/infer request bodies; a MaxSeqLen×InputSize
// float sequence in JSON stays far under this.
const maxBodyBytes = 8 << 20

// inferRequest is the JSON body of POST /v1/infer.
type inferRequest struct {
	Inputs  [][]float32 `json:"inputs"`
	Session string      `json:"session,omitempty"`
}

// inferResponse is the JSON body of a successful inference.
type inferResponse struct {
	Output    []float32 `json:"output"`
	Class     int       `json:"class"`
	LatencyMs float64   `json:"latency_ms"`
}

// modelResponse describes the served checkpoint's geometry (GET
// /v1/model) so clients — the embedded load generator included — can
// shape valid inputs without out-of-band knowledge.
type modelResponse struct {
	InputSize  int    `json:"input_size"`
	HiddenSize int    `json:"hidden_size"`
	Layers     int    `json:"layers"`
	OutSize    int    `json:"out_size"`
	Loss       string `json:"loss"`
	MaxSeqLen  int    `json:"max_seq_len"`
	MaxBatch   int    `json:"max_batch"`
}

func (s *Server) routes() *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/infer", s.handleInfer)
	mux.HandleFunc("GET /v1/model", s.handleModel)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /statz", s.handleStatz)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	if s.opts.EnablePprof {
		mux.HandleFunc("GET /debug/pprof/", pprof.Index)
		mux.HandleFunc("GET /debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("GET /debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("GET /debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("GET /debug/pprof/trace", pprof.Trace)
	}
	return mux
}

// Handler returns the server's HTTP handler: the route mux wrapped
// with per-request panic isolation, so a handler bug yields one 500
// instead of a dead process.
func (s *Server) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		defer func() {
			if rec := recover(); rec != nil {
				httpError(w, http.StatusInternalServerError,
					fmt.Sprintf("internal error: %v", rec))
			}
		}()
		s.mux.ServeHTTP(w, r)
	})
}

func (s *Server) handleInfer(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	r.Body = http.MaxBytesReader(w, r.Body, maxBodyBytes)
	var req inferRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, fmt.Sprintf("malformed JSON body: %v", err))
		return
	}
	ctx, cancel := context.WithTimeout(r.Context(), s.opts.RequestTimeout)
	defer cancel()
	res, err := s.Infer(ctx, Request{Inputs: req.Inputs, Session: req.Session})
	if err != nil {
		writeInferError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, inferResponse{
		Output:    res.Output,
		Class:     res.Class,
		LatencyMs: float64(time.Since(start)) / float64(time.Millisecond),
	})
}

// writeInferError maps the serving failure modes onto status codes:
// shed load is retryable (429 + Retry-After), drain is 503, validation
// is 400, a blown deadline is 504, everything else (sweep panic) 500.
func writeInferError(w http.ResponseWriter, err error) {
	switch {
	case errors.Is(err, ErrQueueFull):
		w.Header().Set("Retry-After", "1")
		httpError(w, http.StatusTooManyRequests, err.Error())
	case errors.Is(err, ErrClosed):
		httpError(w, http.StatusServiceUnavailable, err.Error())
	case errors.Is(err, ErrBadRequest):
		httpError(w, http.StatusBadRequest, err.Error())
	case errors.Is(err, context.DeadlineExceeded):
		httpError(w, http.StatusGatewayTimeout, err.Error())
	case errors.Is(err, context.Canceled):
		// Client went away; the status is moot but 499-style semantics
		// don't exist in net/http, so report the nearest standard code.
		httpError(w, http.StatusServiceUnavailable, err.Error())
	default:
		httpError(w, http.StatusInternalServerError, err.Error())
	}
}

func (s *Server) handleModel(w http.ResponseWriter, r *http.Request) {
	cfg := s.net.Cfg
	writeJSON(w, http.StatusOK, modelResponse{
		InputSize:  cfg.InputSize,
		HiddenSize: cfg.Hidden,
		Layers:     cfg.Layers,
		OutSize:    cfg.OutSize,
		Loss:       cfg.Loss.String(),
		MaxSeqLen:  s.opts.MaxSeqLen,
		MaxBatch:   s.opts.MaxBatch,
	})
}

// handleHealthz answers 200 while serving and 503 once draining, so a
// load balancer stops routing here before in-flight work finishes.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		httpError(w, http.StatusServiceUnavailable, "draining")
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

func (s *Server) handleStatz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.Stats())
}

// handleMetrics serves the server's registry in the Prometheus text
// exposition format — the same instruments /statz summarizes as JSON.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	_ = s.m.reg.WritePrometheus(w)
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(v)
}

func httpError(w http.ResponseWriter, code int, msg string) {
	writeJSON(w, code, map[string]string{"error": msg})
}
