package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/pprof"
	"time"

	"etalstm/internal/model"
	"etalstm/internal/persist"
	"etalstm/internal/rtrace"
)

// maxBodyBytes bounds /v1/infer request bodies; a MaxSeqLen×InputSize
// float sequence in JSON stays far under this.
const maxBodyBytes = 8 << 20

// inferRequest is the JSON body of POST /v1/infer.
type inferRequest struct {
	Inputs  [][]float32 `json:"inputs"`
	Session string      `json:"session,omitempty"`
}

// inferResponse is the JSON body of a successful inference.
type inferResponse struct {
	Output    []float32 `json:"output"`
	Class     int       `json:"class"`
	LatencyMs float64   `json:"latency_ms"`
}

// modelResponse describes the served checkpoint's geometry (GET
// /v1/model) so clients — the embedded load generator included — can
// shape valid inputs without out-of-band knowledge.
type modelResponse struct {
	InputSize  int    `json:"input_size"`
	HiddenSize int    `json:"hidden_size"`
	Layers     int    `json:"layers"`
	OutSize    int    `json:"out_size"`
	Loss       string `json:"loss"`
	MaxSeqLen  int    `json:"max_seq_len"`
	MaxBatch   int    `json:"max_batch"`
}

func (s *Server) routes() *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/infer", s.handleInfer)
	mux.HandleFunc("GET /v1/model", s.handleModel)
	mux.HandleFunc("GET /v1/sessions", s.handleSessionList)
	mux.HandleFunc("GET /v1/session/{id}/state", s.handleSessionExport)
	mux.HandleFunc("PUT /v1/session/{id}/state", s.handleSessionImport)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /readyz", s.handleReadyz)
	mux.HandleFunc("GET /statz", s.handleStatz)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	if s.opts.EnableAdmin {
		mux.HandleFunc("POST /v1/admin/reload", s.handleAdminReload)
	}
	if s.opts.Tracer != nil {
		th := s.opts.Tracer.Handler()
		mux.Handle("GET /debug/traces", th)
		mux.Handle("GET /debug/traces/{id}", th)
	}
	if s.opts.EnablePprof {
		mux.HandleFunc("GET /debug/pprof/", pprof.Index)
		mux.HandleFunc("GET /debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("GET /debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("GET /debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("GET /debug/pprof/trace", pprof.Trace)
	}
	return mux
}

// Handler returns the server's HTTP handler: the route mux wrapped
// with per-request panic isolation, so a handler bug yields one 500
// instead of a dead process.
func (s *Server) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		defer func() {
			if rec := recover(); rec != nil {
				httpError(w, http.StatusInternalServerError,
					fmt.Sprintf("internal error: %v", rec))
			}
		}()
		s.mux.ServeHTTP(w, r)
	})
}

func (s *Server) handleInfer(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	// The request span continues the caller's trace when a traceparent
	// header arrived (router or loadgen minted it) and roots a fresh
	// trace otherwise. Finishing decides keep-or-drop for the whole
	// local trace — sweep span included.
	var sp *rtrace.Span
	if t := s.opts.Tracer; t != nil {
		if tid, psid, sampled, ok := rtrace.ParseTraceparent(r.Header.Get(rtrace.TraceparentHeader)); ok {
			sp = t.StartRemote("serve.request", tid, psid, sampled)
		} else {
			sp = t.StartSpan("serve.request")
		}
		defer sp.Finish()
	}
	r.Body = http.MaxBytesReader(w, r.Body, maxBodyBytes)
	var req inferRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		sp.Errorf("malformed body")
		httpError(w, http.StatusBadRequest, fmt.Sprintf("malformed JSON body: %v", err))
		return
	}
	if req.Session != "" {
		sp.Attr("session", req.Session)
	}
	ctx, cancel := context.WithTimeout(r.Context(), s.opts.RequestTimeout)
	defer cancel()
	ctx = rtrace.ContextWithSpan(ctx, sp)
	res, err := s.Infer(ctx, Request{Inputs: req.Inputs, Session: req.Session})
	if err != nil {
		sp.SetError(err)
		writeInferError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, inferResponse{
		Output:    res.Output,
		Class:     res.Class,
		LatencyMs: float64(time.Since(start)) / float64(time.Millisecond),
	})
}

// writeInferError maps the serving failure modes onto status codes:
// shed load is retryable (429 + Retry-After), drain and not-ready are
// 503, a moved session is 410 Gone (the router's re-route signal),
// validation is 400, a blown deadline is 504, everything else (sweep
// panic) 500.
func writeInferError(w http.ResponseWriter, err error) {
	switch {
	case errors.Is(err, ErrQueueFull):
		w.Header().Set("Retry-After", "1")
		httpError(w, http.StatusTooManyRequests, err.Error())
	case errors.Is(err, ErrSessionMoved):
		httpError(w, http.StatusGone, err.Error())
	case errors.Is(err, ErrClosed), errors.Is(err, ErrNotReady):
		httpError(w, http.StatusServiceUnavailable, err.Error())
	case errors.Is(err, ErrBadRequest):
		httpError(w, http.StatusBadRequest, err.Error())
	case errors.Is(err, context.DeadlineExceeded):
		httpError(w, http.StatusGatewayTimeout, err.Error())
	case errors.Is(err, context.Canceled):
		// Client went away; the status is moot but 499-style semantics
		// don't exist in net/http, so report the nearest standard code.
		httpError(w, http.StatusServiceUnavailable, err.Error())
	default:
		httpError(w, http.StatusInternalServerError, err.Error())
	}
}

func (s *Server) handleModel(w http.ResponseWriter, r *http.Request) {
	g := s.gen.Load()
	if g == nil {
		httpError(w, http.StatusServiceUnavailable, ErrNotReady.Error())
		return
	}
	cfg := g.net.Cfg
	writeJSON(w, http.StatusOK, modelResponse{
		InputSize:  cfg.InputSize,
		HiddenSize: cfg.Hidden,
		Layers:     cfg.Layers,
		OutSize:    cfg.OutSize,
		Loss:       cfg.Loss.String(),
		MaxSeqLen:  s.opts.MaxSeqLen,
		MaxBatch:   s.opts.MaxBatch,
	})
}

// handleHealthz is liveness: 200 as long as the process answers HTTP
// at all, draining included. Restart decisions key off this; routing
// decisions key off /readyz.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

// handleReadyz is readiness: 503 while draining or before the first
// checkpoint load, so a router stops sending traffic here without
// concluding the process is dead.
func (s *Server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	switch {
	case s.draining.Load():
		httpError(w, http.StatusServiceUnavailable, "draining")
	case s.gen.Load() == nil:
		httpError(w, http.StatusServiceUnavailable, "no checkpoint loaded")
	default:
		writeJSON(w, http.StatusOK, map[string]string{"status": "ready"})
	}
}

// sessionStateBody is the wire form of a migrated session's recurrent
// state: h and s vectors per layer. Null h/s is a legal zero state (a
// session created but never swept).
type sessionStateBody struct {
	Session string      `json:"session,omitempty"`
	H       [][]float32 `json:"h"`
	S       [][]float32 `json:"s"`
}

func (s *Server) handleSessionList(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string][]string{"sessions": s.sessions.list()})
}

// handleSessionExport returns a session's state; with ?evict=1 it also
// atomically removes and tombstones the session, which is how the
// router drains sessions off a replica without ever forking them.
func (s *Server) handleSessionExport(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	evict := r.URL.Query().Get("evict") == "1"
	ctx, cancel := context.WithTimeout(r.Context(), s.opts.RequestTimeout)
	defer cancel()
	st, err := s.sessions.export(ctx, id, evict)
	if err != nil {
		writeSessionError(w, err)
		return
	}
	body := sessionStateBody{Session: id}
	if st != nil {
		body.H, body.S = st.H, st.S
	}
	writeJSON(w, http.StatusOK, body)
}

// handleSessionImport installs exported state under the id if absent
// (409 if live here). Shape is validated against the served geometry
// so a corrupt import cannot poison a future sweep.
func (s *Server) handleSessionImport(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	r.Body = http.MaxBytesReader(w, r.Body, maxBodyBytes)
	var body sessionStateBody
	if err := json.NewDecoder(r.Body).Decode(&body); err != nil {
		httpError(w, http.StatusBadRequest, fmt.Sprintf("malformed state body: %v", err))
		return
	}
	var st *model.VecState
	if body.H != nil || body.S != nil {
		cfg := s.Config()
		if err := checkStateShape(body, cfg); err != nil {
			httpError(w, http.StatusBadRequest, err.Error())
			return
		}
		st = &model.VecState{H: body.H, S: body.S}
	}
	if err := s.sessions.importState(id, st); err != nil {
		writeSessionError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"session": id, "status": "imported"})
}

// checkStateShape verifies imported h/s vectors match the served
// geometry: one row per layer, Hidden floats wide.
func checkStateShape(body sessionStateBody, cfg model.Config) error {
	if cfg.Layers == 0 {
		return errors.New("no checkpoint loaded; cannot validate state shape")
	}
	for name, rows := range map[string][][]float32{"h": body.H, "s": body.S} {
		if len(rows) != cfg.Layers {
			return fmt.Errorf("state %s has %d layers, served model has %d", name, len(rows), cfg.Layers)
		}
		for l, row := range rows {
			if len(row) != cfg.Hidden {
				return fmt.Errorf("state %s layer %d is %d wide, served model hidden size is %d",
					name, l, len(row), cfg.Hidden)
			}
		}
	}
	return nil
}

func writeSessionError(w http.ResponseWriter, err error) {
	switch {
	case errors.Is(err, ErrSessionMoved):
		httpError(w, http.StatusGone, err.Error())
	case errors.Is(err, ErrSessionUnknown):
		httpError(w, http.StatusNotFound, err.Error())
	case errors.Is(err, ErrSessionExists):
		httpError(w, http.StatusConflict, err.Error())
	case errors.Is(err, context.DeadlineExceeded):
		httpError(w, http.StatusGatewayTimeout, err.Error())
	default:
		httpError(w, http.StatusInternalServerError, err.Error())
	}
}

// reloadRequest is the JSON body of POST /v1/admin/reload.
type reloadRequest struct {
	Path string `json:"path"`
}

// handleAdminReload loads the named checkpoint file and hot-swaps it
// in, answering with the new generation and digest once the swap (and
// the old generation's drain) completed.
func (s *Server) handleAdminReload(w http.ResponseWriter, r *http.Request) {
	var req reloadRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil || req.Path == "" {
		httpError(w, http.StatusBadRequest, "body must be {\"path\": \"/path/to/checkpoint\"}")
		return
	}
	net, digest, err := persist.LoadFileDigest(req.Path)
	if err != nil {
		httpError(w, http.StatusBadRequest, fmt.Sprintf("loading checkpoint: %v", err))
		return
	}
	if err := s.Reload(net, digest); err != nil {
		switch {
		case errors.Is(err, ErrClosed):
			httpError(w, http.StatusServiceUnavailable, err.Error())
		case errors.Is(err, ErrBadRequest):
			httpError(w, http.StatusBadRequest, err.Error())
		default:
			httpError(w, http.StatusInternalServerError, err.Error())
		}
		return
	}
	gen, d := s.Generation()
	writeJSON(w, http.StatusOK, map[string]any{"generation": gen, "digest": d})
}

func (s *Server) handleStatz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.Stats())
}

// handleMetrics serves the server's registry in the Prometheus text
// exposition format — the same instruments /statz summarizes as JSON.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	_ = s.m.reg.WritePrometheus(w)
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(v)
}

func httpError(w http.ResponseWriter, code int, msg string) {
	writeJSON(w, code, map[string]string{"error": msg})
}
