package serve

import (
	"context"
	"errors"
	"fmt"
	"os"
	"strconv"
	"sync"
	"time"

	"etalstm/internal/model"
	"etalstm/internal/obs"
	"etalstm/internal/rtrace"
	"etalstm/internal/tensor"
)

// Submission failure modes the HTTP layer maps to status codes.
var (
	// ErrQueueFull is returned when the bounded admission queue is at
	// capacity — the load-shedding signal (HTTP 429 + Retry-After).
	ErrQueueFull = errors.New("serve: queue full")
	// ErrClosed is returned for submissions after drain has begun
	// (HTTP 503). Requests already admitted still complete.
	ErrClosed = errors.New("serve: server draining")
)

// pending is one admitted request waiting for (or undergoing) a
// batched sweep.
type pending struct {
	seq  model.InferSeq
	ctx  context.Context
	done chan outcome // buffered(1): the worker never blocks delivering
	enq  time.Time
}

type outcome struct {
	out model.InferOut
	err error
}

// pendingPool recycles pending structs (and their one-slot done
// channels) across submissions — two allocations per request otherwise.
// Only requests whose outcome was received go back: a canceled request
// may still get a late buffered delivery from the worker, so its
// channel can never be reused.
var pendingPool = sync.Pool{
	New: func() any { return &pending{done: make(chan outcome, 1)} },
}

// batcher coalesces concurrent submissions into dense micro-batches.
//
// State machine (DESIGN.md §9): requests are admitted into a bounded
// queue (`in`); a single collector goroutine accumulates them into the
// forming batch and flushes it to the worker pool when either (a) the
// batch reaches MaxBatch, or (b) Window has elapsed since the batch's
// first request arrived. Each worker owns a private tensor.Workspace
// and runs the flushed group through one Network.InferBatch sweep —
// the weights are shared read-only, so the pool serves one checkpoint
// without cloning it.
type batcher struct {
	net  *model.Network
	opts Options
	m    *metrics

	// mu guards closed and makes Submit's send race-free against
	// close(in): sends happen under RLock, drain flips closed under the
	// write lock, so no sender can be in flight when the channel closes.
	mu     sync.RWMutex
	closed bool
	in     chan *pending

	work chan []*pending
	wg   sync.WaitGroup // collector + workers
}

func newBatcher(net *model.Network, opts Options, m *metrics) *batcher {
	b := &batcher{
		net:  net,
		opts: opts,
		m:    m,
		in:   make(chan *pending, opts.QueueCap),
		work: make(chan []*pending),
	}
	b.wg.Add(1)
	go b.collect()
	for i := 0; i < opts.Workers; i++ {
		b.wg.Add(1)
		go b.worker()
	}
	return b
}

// submit admits one request and blocks until its batch completes or ctx
// is done. A request canceled while still queued is skipped by the
// worker (it never joins a sweep); the submitter gets ctx.Err().
func (b *batcher) submit(ctx context.Context, seq model.InferSeq) (model.InferOut, error) {
	p := pendingPool.Get().(*pending)
	p.seq, p.ctx, p.enq = seq, ctx, time.Now()
	b.mu.RLock()
	if b.closed {
		b.mu.RUnlock()
		return model.InferOut{}, ErrClosed
	}
	select {
	case b.in <- p:
		b.mu.RUnlock()
	default:
		b.mu.RUnlock()
		b.m.rejected.Add(1)
		return model.InferOut{}, ErrQueueFull
	}
	b.m.submitted.Add(1)
	select {
	case o := <-p.done:
		if o.err == nil {
			b.m.completed.Add(1)
			// The request's trace id rides the latency observation as an
			// exemplar, so the histogram's tail can name a concrete trace.
			ex := ""
			if sp := rtrace.FromContext(ctx); sp != nil {
				ex = sp.TraceID().String()
			}
			b.m.observeLatency(time.Since(p.enq), ex)
		} else {
			b.m.failed.Add(1)
		}
		p.seq, p.ctx = model.InferSeq{}, nil
		pendingPool.Put(p)
		return o.out, o.err
	case <-ctx.Done():
		b.m.canceled.Add(1)
		return model.InferOut{}, ctx.Err()
	}
}

// depth reports the admitted-but-uncollected queue length.
func (b *batcher) depth() int { return len(b.in) }

// collect is the single goroutine that forms micro-batches: flush on
// size or on the window deadline measured from the batch's first
// member. It exits (flushing the final partial batch) when drain closes
// the admission queue.
func (b *batcher) collect() {
	defer b.wg.Done()
	defer close(b.work)
	var group []*pending
	timer := time.NewTimer(0)
	if !timer.Stop() {
		<-timer.C
	}
	armed := false
	flush := func() {
		if armed && !timer.Stop() {
			// The timer fired concurrently with a size-based flush;
			// drain the stale tick so the next Reset starts clean.
			<-timer.C
		}
		armed = false
		if len(group) > 0 {
			b.work <- group
			group = nil
		}
	}
	for {
		if len(group) == 0 {
			p, ok := <-b.in
			if !ok {
				return
			}
			group = append(group, p)
			if len(group) >= b.opts.MaxBatch {
				flush()
				continue
			}
			timer.Reset(b.opts.Window)
			armed = true
			continue
		}
		select {
		case p, ok := <-b.in:
			if !ok {
				flush()
				return
			}
			group = append(group, p)
			if len(group) >= b.opts.MaxBatch {
				flush()
			}
		case <-timer.C:
			armed = false
			flush()
		}
	}
}

// worker runs flushed groups through batched sweeps. Each worker owns
// its workspace arena; the network weights are only read. With tracing
// on, the worker also owns a phase recorder riding the workspace — its
// snapshot deltas become each sweep span's FW phase children.
func (b *batcher) worker() {
	defer b.wg.Done()
	ws := tensor.NewWorkspace()
	if b.opts.Tracer != nil {
		ws.SetRecorder(obs.NewRecorder())
	}
	for group := range b.work {
		b.runGroup(ws, group)
	}
}

func (b *batcher) runGroup(ws *tensor.Workspace, group []*pending) {
	// Requests canceled while queued drop out here, before the sweep.
	live := make([]*pending, 0, len(group))
	for _, p := range group {
		if p.ctx.Err() != nil {
			continue
		}
		live = append(live, p)
	}
	if len(live) == 0 {
		return
	}
	b.m.observeBatch(len(live))
	// The sweep span is a child of the first traced request in the
	// batch; every other traced member gets a "sweep" event naming the
	// shared sweep span, so all riders resolve to the same sweep.
	var sweep *rtrace.Span
	if b.opts.Tracer != nil {
		for _, p := range live {
			sp := rtrace.FromContext(p.ctx)
			if sp == nil {
				continue
			}
			if sweep == nil {
				sweep = sp.Child("serve.sweep")
			} else {
				sp.Event("sweep", "span_id", sweep.SpanID().String())
			}
		}
		sweep.Attr("batch_size", strconv.Itoa(len(live)))
	}
	var before obs.PhaseSnapshot
	rec := ws.Recorder()
	if sweep != nil {
		before = rec.Snapshot()
	}
	sweepStart := time.Now()
	outs, err := b.infer(ws, live)
	if sweep != nil {
		rtrace.FoldPhases(sweep, sweepStart, rec.Snapshot().Delta(before))
		sweep.SetError(err)
		sweep.Finish()
	}
	if err != nil {
		// A sweep only fails by panicking; dump the flight recorder so
		// the traces leading up to the poisoned batch survive the report.
		b.opts.Log.WithTrace(traceIDOf(sweep)).Error("serve: sweep failed",
			"err", err, "batch", len(live))
		if b.opts.Tracer != nil {
			w := b.opts.TraceDumpWriter
			if w == nil {
				w = os.Stderr
			}
			b.opts.Tracer.DumpTo(w)
		}
	}
	for i, p := range live {
		if err != nil {
			p.done <- outcome{err: err}
		} else {
			p.done <- outcome{out: outs[i]}
		}
	}
}

// traceIDOf renders a span's trace id, "" on nil.
func traceIDOf(sp *rtrace.Span) string {
	if sp == nil {
		return ""
	}
	return sp.TraceID().String()
}

// infer runs one batched sweep with panic isolation: a poisoned request
// (state corrupted to a shape the kernels reject, a bug in the sweep)
// fails its group with an error instead of crashing the server, and the
// worker's arena is reset because a mid-kernel panic can strand or
// alias its buffers.
func (b *batcher) infer(ws *tensor.Workspace, live []*pending) (outs []model.InferOut, err error) {
	defer func() {
		if r := recover(); r != nil {
			ws.Reset()
			err = fmt.Errorf("serve: inference panic: %v", r)
		}
	}()
	seqs := make([]model.InferSeq, len(live))
	for i, p := range live {
		seqs[i] = p.seq
	}
	return b.net.InferBatch(ws, seqs)
}

// drain stops admission and waits (bounded by ctx) for every already
// admitted request to complete. It is idempotent; only the first call
// closes the queue.
func (b *batcher) drain(ctx context.Context) error {
	b.mu.Lock()
	wasClosed := b.closed
	b.closed = true
	b.mu.Unlock()
	if !wasClosed {
		close(b.in)
	}
	done := make(chan struct{})
	go func() {
		b.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		return fmt.Errorf("serve: drain incomplete: %w", ctx.Err())
	}
}
