package serve

import (
	"context"
	"errors"
	"sort"
	"sync"
	"time"

	"etalstm/internal/model"
)

// Session-migration failure modes (the fleet moves sessions between
// replicas; these tell the router apart from plain not-found).
var (
	// ErrSessionMoved marks a session exported to another replica: this
	// replica holds a tombstone, not state. HTTP 410 Gone — the router
	// treats it as "re-resolve the owner", never as a fresh session.
	ErrSessionMoved = errors.New("serve: session moved to another replica")
	// ErrSessionExists rejects an import over live state (HTTP 409).
	ErrSessionExists = errors.New("serve: session already exists")
	// ErrSessionUnknown rejects an export of a session this replica has
	// never seen (HTTP 404).
	ErrSessionUnknown = errors.New("serve: unknown session")
)

// session is one streaming conversation: the carried h/s state plus a
// one-slot gate that serializes requests so two concurrent submissions
// on the same session cannot interleave their state updates.
type session struct {
	gate chan struct{} // cap 1; held while a request is in flight
	// state is owned by whoever holds the gate; nil means zero start.
	state *model.VecState
	// last is the most recent acquire/release instant, guarded by the
	// table mutex (not the gate) so the evictor can read it cheaply.
	last time.Time
	// dead is set (under the table mutex) when the session is exported
	// away mid-drain. A request that was already blocked on the gate
	// when the export won it re-checks dead after acquiring and bails
	// with ErrSessionMoved — the state it would have read is on another
	// replica now, and silently resurrecting it here would fork the
	// conversation.
	dead bool
}

// sessionTable maps session ids to recurrent state with TTL eviction.
//
// Lifecycle (DESIGN.md §9): a session is created on first use, its
// state is replaced after every successful sweep, and the janitor
// evicts sessions idle longer than the TTL. Eviction only ever removes
// idle sessions — the evictor try-acquires the gate and skips sessions
// with a request in flight. A client racing its own eviction simply
// starts a fresh (zero-state) session on its next request.
type sessionTable struct {
	ttl time.Duration
	now func() time.Time // injected clock for tests

	mu sync.Mutex
	m  map[string]*session
	// tomb marks sessions exported to another replica (id → export
	// time). Tombstones make a late request on a moved session fail
	// with ErrSessionMoved instead of silently starting a fork at zero
	// state; they expire after the session TTL, by which point the
	// router has long since learned the new owner.
	tomb map[string]time.Time
}

func newSessionTable(ttl time.Duration) *sessionTable {
	return &sessionTable{ttl: ttl, now: time.Now,
		m: make(map[string]*session), tomb: make(map[string]time.Time)}
}

// acquire returns the named session with its gate held, creating it on
// first use. It blocks while another request holds the gate, honouring
// ctx.
func (t *sessionTable) acquire(ctx context.Context, id string) (*session, error) {
	t.mu.Lock()
	if _, moved := t.tomb[id]; moved {
		t.mu.Unlock()
		return nil, ErrSessionMoved
	}
	s := t.m[id]
	if s == nil {
		s = &session{gate: make(chan struct{}, 1)}
		t.m[id] = s
	}
	s.last = t.now()
	t.mu.Unlock()
	select {
	case s.gate <- struct{}{}:
		// Re-check under the mutex: an export may have won the gate
		// first, moved the state away and marked the session dead while
		// this request was blocked.
		t.mu.Lock()
		dead := s.dead
		t.mu.Unlock()
		if dead {
			<-s.gate
			return nil, ErrSessionMoved
		}
		return s, nil
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

// release refreshes the idle clock and frees the gate.
func (t *sessionTable) release(s *session) {
	t.mu.Lock()
	s.last = t.now()
	t.mu.Unlock()
	<-s.gate
}

// evict removes every idle session untouched for longer than the TTL
// (and every expired tombstone) and reports how many sessions were
// removed. Busy sessions (gate held) are skipped and re-examined on
// the next sweep.
func (t *sessionTable) evict() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	cut := t.now().Add(-t.ttl)
	n := 0
	for id, s := range t.m {
		if s.last.After(cut) {
			continue
		}
		select {
		case s.gate <- struct{}{}:
			delete(t.m, id)
			<-s.gate
			n++
		default: // in flight; not idle after all
		}
	}
	for id, when := range t.tomb {
		if !when.After(cut) {
			delete(t.tomb, id)
		}
	}
	return n
}

// count returns the live session count.
func (t *sessionTable) count() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.m)
}

// list returns the live session ids, sorted for stable output.
func (t *sessionTable) list() []string {
	t.mu.Lock()
	ids := make([]string, 0, len(t.m))
	for id := range t.m {
		ids = append(ids, id)
	}
	t.mu.Unlock()
	sort.Strings(ids)
	return ids
}

// export returns the session's recurrent state, waiting (under ctx)
// for any in-flight request to release the gate. With evict set the
// session is atomically removed and tombstoned: requests already
// blocked on the gate observe dead and fail with ErrSessionMoved, and
// later requests hit the tombstone — the session cannot be resurrected
// on this replica with stale state.
func (t *sessionTable) export(ctx context.Context, id string, evict bool) (*model.VecState, error) {
	t.mu.Lock()
	if _, moved := t.tomb[id]; moved {
		t.mu.Unlock()
		return nil, ErrSessionMoved
	}
	s := t.m[id]
	t.mu.Unlock()
	if s == nil {
		return nil, ErrSessionUnknown
	}
	select {
	case s.gate <- struct{}{}:
	case <-ctx.Done():
		return nil, ctx.Err()
	}
	st := s.state
	if evict {
		t.mu.Lock()
		s.dead = true
		delete(t.m, id)
		t.tomb[id] = t.now()
		t.mu.Unlock()
	}
	<-s.gate
	return st, nil
}

// importState installs state under id if (and only if) the id is
// absent. An import clears this replica's tombstone for the id: a
// session that moved away may legitimately move back.
func (t *sessionTable) importState(id string, st *model.VecState) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	if _, live := t.m[id]; live {
		return ErrSessionExists
	}
	delete(t.tomb, id)
	s := &session{gate: make(chan struct{}, 1), state: st, last: t.now()}
	t.m[id] = s
	return nil
}
