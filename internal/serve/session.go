package serve

import (
	"context"
	"sync"
	"time"

	"etalstm/internal/model"
)

// session is one streaming conversation: the carried h/s state plus a
// one-slot gate that serializes requests so two concurrent submissions
// on the same session cannot interleave their state updates.
type session struct {
	gate chan struct{} // cap 1; held while a request is in flight
	// state is owned by whoever holds the gate; nil means zero start.
	state *model.VecState
	// last is the most recent acquire/release instant, guarded by the
	// table mutex (not the gate) so the evictor can read it cheaply.
	last time.Time
}

// sessionTable maps session ids to recurrent state with TTL eviction.
//
// Lifecycle (DESIGN.md §9): a session is created on first use, its
// state is replaced after every successful sweep, and the janitor
// evicts sessions idle longer than the TTL. Eviction only ever removes
// idle sessions — the evictor try-acquires the gate and skips sessions
// with a request in flight. A client racing its own eviction simply
// starts a fresh (zero-state) session on its next request.
type sessionTable struct {
	ttl time.Duration
	now func() time.Time // injected clock for tests

	mu sync.Mutex
	m  map[string]*session
}

func newSessionTable(ttl time.Duration) *sessionTable {
	return &sessionTable{ttl: ttl, now: time.Now, m: make(map[string]*session)}
}

// acquire returns the named session with its gate held, creating it on
// first use. It blocks while another request holds the gate, honouring
// ctx.
func (t *sessionTable) acquire(ctx context.Context, id string) (*session, error) {
	t.mu.Lock()
	s := t.m[id]
	if s == nil {
		s = &session{gate: make(chan struct{}, 1)}
		t.m[id] = s
	}
	s.last = t.now()
	t.mu.Unlock()
	select {
	case s.gate <- struct{}{}:
		return s, nil
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

// release refreshes the idle clock and frees the gate.
func (t *sessionTable) release(s *session) {
	t.mu.Lock()
	s.last = t.now()
	t.mu.Unlock()
	<-s.gate
}

// evict removes every idle session untouched for longer than the TTL
// and reports how many were removed. Busy sessions (gate held) are
// skipped and re-examined on the next sweep.
func (t *sessionTable) evict() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	cut := t.now().Add(-t.ttl)
	n := 0
	for id, s := range t.m {
		if s.last.After(cut) {
			continue
		}
		select {
		case s.gate <- struct{}{}:
			delete(t.m, id)
			<-s.gate
			n++
		default: // in flight; not idle after all
		}
	}
	return n
}

// count returns the live session count.
func (t *sessionTable) count() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.m)
}
