package serve

import (
	"context"
	"sync"
	"testing"
	"time"

	"etalstm/internal/model"
	"etalstm/internal/rng"
	"etalstm/internal/rtrace"
)

// The acceptance geometry: a checkpoint small enough that per-request
// fixed costs (dispatch, per-cell workspace and kernel-call setup,
// per-sweep staging) dominate over per-element math — the regime
// micro-batching amortizes. On a single-core container that is where
// the batching win lives: the per-element activation math is inherently
// serial here, so kernel-level amortization alone measures only
// ~1.3-1.7x at hidden sizes of 16+. On multicore hosts the win extends
// to larger geometries because a 64-row MatMul shards across cores
// (tensor's parallelRows) while 64 sequential 1-row products cannot.
const benchSteps = 16

var benchCfg = model.Config{
	InputSize: 2, Hidden: 2, Layers: 2, SeqLen: benchSteps, Batch: 1,
	OutSize: 2, Loss: model.SingleLoss,
}

// throughput drives n closed-loop requests from conc clients through a
// batcher configured with maxBatch and returns requests/sec.
func throughput(tb testing.TB, net *model.Network, maxBatch, conc, n int) float64 {
	return throughputTraced(tb, net, maxBatch, conc, n, nil)
}

// throughputTraced is throughput with an optional flight recorder
// attached, for measuring enabled-tracing overhead.
func throughputTraced(tb testing.TB, net *model.Network, maxBatch, conc, n int, tracer *rtrace.Tracer) float64 {
	tb.Helper()
	opts := Options{MaxBatch: maxBatch, Window: 100 * time.Microsecond, QueueCap: 256,
		Tracer: tracer}.withDefaults()
	bt := newBatcher(net, opts, newMetrics(opts.MaxBatch))
	defer bt.drain(context.Background())

	r := rng.New(7)
	seqs := make([]model.InferSeq, conc)
	for i := range seqs {
		seqs[i] = testSeq(r.Split(), benchSteps, net.Cfg.InputSize)
	}
	start := time.Now()
	var wg sync.WaitGroup
	for c := 0; c < conc; c++ {
		wg.Add(1)
		go func(seq model.InferSeq) {
			defer wg.Done()
			for i := 0; i < n/conc; i++ {
				if _, err := bt.submit(context.Background(), seq); err != nil {
					tb.Error(err)
					return
				}
			}
		}(seqs[c])
	}
	wg.Wait()
	return float64(n) / time.Since(start).Seconds()
}

// BenchmarkServeThroughput is the serving subsystem's acceptance
// benchmark: requests/sec at concurrency 64 with micro-batching
// (MaxBatch 64) versus batch-size-1 through the identical pipeline on
// the same checkpoint. The batched run also reports speedup_x — its
// throughput over a batch-size-1 run of the same length. Run with
// -benchtime 2s or more: the ratio converges as scheduler noise
// averages out (short runs wobble ±20% on busy machines).
func BenchmarkServeThroughput(b *testing.B) {
	net, err := model.NewNetwork(benchCfg, rng.New(1))
	if err != nil {
		b.Fatal(err)
	}
	const conc = 64
	b.Run("batched", func(b *testing.B) {
		n := conc * (1 + b.N/conc)
		rps := throughput(b, net, 64, conc, n)
		b.ReportMetric(rps, "req/s")
		b.ReportMetric(rps/throughput(b, net, 1, conc, n), "speedup_x")
	})
	b.Run("batch1", func(b *testing.B) {
		n := conc * (1 + b.N/conc)
		b.ReportMetric(throughput(b, net, 1, conc, n), "req/s")
	})
	// batched-traced reruns the batched configuration with a flight
	// recorder attached (head sampling at the default rate) and reports
	// overhead_pct against an untraced run of the same length — the
	// acceptance bound is < 2% at converged -benchtime.
	b.Run("batched-traced", func(b *testing.B) {
		tracer := rtrace.New(rtrace.Options{Process: "bench"})
		n := conc * (1 + b.N/conc)
		traced := throughputTraced(b, net, 64, conc, n, tracer)
		plain := throughput(b, net, 64, conc, n)
		b.ReportMetric(traced, "req/s")
		b.ReportMetric((plain-traced)/plain*100, "overhead_pct")
	})
}

// TestBatchingSpeedup is the anti-regression floor behind
// BenchmarkServeThroughput: it reruns the benchmark comparison at test
// size and fails if micro-batching stops beating batch-size-1 by a
// clear margin (2x) — the failure mode being guarded is the batcher
// silently degenerating to single-request sweeps, which lands the
// ratio near 1. The full >= 3x figure is demonstrated by the benchmark
// proper, whose longer runs average out the scheduler noise that makes
// a hard 3x assertion flaky at test size. Timing ratios are
// meaningless under the race detector's 5-20x skew or on deliberately
// short runs, so both skip.
func TestBatchingSpeedup(t *testing.T) {
	if testing.Short() {
		t.Skip("timing test")
	}
	if raceEnabled {
		t.Skip("timing test: race instrumentation skews the ratio")
	}
	net, err := model.NewNetwork(benchCfg, rng.New(1))
	if err != nil {
		t.Fatal(err)
	}
	const conc, n = 64, 4096
	// Warm both paths, then keep the best ratio over a few rounds to
	// shrug off scheduler noise on loaded machines.
	throughput(t, net, 64, conc, n)
	throughput(t, net, 1, conc, n)
	best := 0.0
	for round := 0; round < 4 && best < 3; round++ {
		batched := throughput(t, net, 64, conc, n)
		single := throughput(t, net, 1, conc, n)
		if s := batched / single; s > best {
			best = s
		}
	}
	t.Logf("micro-batching speedup: %.2fx", best)
	if best < 2 {
		t.Fatalf("micro-batching speedup %.2fx, want >= 2x (batching degenerated)", best)
	}
}
