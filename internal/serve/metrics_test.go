package serve

import (
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"

	"etalstm/internal/rng"
)

// TestStatzGoldenShape pins the /statz JSON contract: the exact key
// set, in the exact order encoding/json emits for the Stats struct.
// Migrating the bookkeeping onto the obs registry must not move a
// single field — dashboards parse this shape.
func TestStatzGoldenShape(t *testing.T) {
	s, hs := testServer(t, Options{MaxBatch: 4, Window: time.Millisecond})
	cfg := s.Config()
	if _, err := s.Infer(t.Context(), Request{Inputs: seqJSON(rng.New(3), 4, cfg.InputSize)}); err != nil {
		t.Fatal(err)
	}

	resp, err := http.Get(hs.URL + "/statz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}

	// Key order is part of the golden shape: encoding/json emits struct
	// fields in declaration order, so any reordering (or a rename, or a
	// dropped field) shows up as a diff here.
	var keys []string
	dec := json.NewDecoder(strings.NewReader(string(raw)))
	if tok, err := dec.Token(); err != nil || tok != json.Delim('{') {
		t.Fatalf("statz body is not a JSON object: %s", raw)
	}
	for dec.More() {
		tok, err := dec.Token()
		if err != nil {
			t.Fatal(err)
		}
		keys = append(keys, tok.(string))
		var v json.RawMessage
		if err := dec.Decode(&v); err != nil {
			t.Fatal(err)
		}
	}
	want := []string{
		"uptime_seconds",
		"submitted", "completed", "failed", "rejected", "canceled",
		"queue_depth", "sessions", "batches", "mean_batch", "batch_hist",
		"latency_p50_ms", "latency_p99_ms",
		"swap_generation", "checkpoint_digest",
		"slow_trace_id", "slow_trace_ms",
	}
	if len(keys) != len(want) {
		t.Fatalf("statz keys = %v, want %v", keys, want)
	}
	for i, k := range keys {
		if k != want[i] {
			t.Fatalf("statz key %d = %q, want %q (full: %v)", i, k, want[i], keys)
		}
	}

	// And the values must describe the one completed request.
	var st Stats
	if err := json.Unmarshal(raw, &st); err != nil {
		t.Fatal(err)
	}
	if st.Submitted != 1 || st.Completed != 1 || st.Batches != 1 {
		t.Fatalf("statz counters wrong after one request: %+v", st)
	}
	if st.MeanBatch != 1 || len(st.BatchHist) != 4 || st.BatchHist[0] != 1 {
		t.Fatalf("statz batch stats wrong: %+v", st)
	}
	if st.LatencyP50Ms <= 0 || st.LatencyP99Ms < st.LatencyP50Ms {
		t.Fatalf("statz latency quantiles wrong: %+v", st)
	}
	if st.SwapGeneration != 1 || len(st.CheckpointDigest) != 64 {
		t.Fatalf("statz checkpoint identity wrong: gen=%d digest=%q", st.SwapGeneration, st.CheckpointDigest)
	}
}

// TestMetricsEndpoint checks GET /metrics serves the same instruments
// in Prometheus text format, from the server's own registry.
func TestMetricsEndpoint(t *testing.T) {
	s, hs := testServer(t, Options{MaxBatch: 4, Window: time.Millisecond})
	cfg := s.Config()
	if _, err := s.Infer(t.Context(), Request{Inputs: seqJSON(rng.New(4), 4, cfg.InputSize)}); err != nil {
		t.Fatal(err)
	}

	resp, err := http.Get(hs.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("metrics: HTTP %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("metrics content type = %q", ct)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	out := string(body)
	for _, want := range []string{
		"# TYPE " + metricCompleted + " counter",
		metricCompleted + " 1",
		"# TYPE " + metricBatchSize + " histogram",
		metricBatchSize + "_count 1",
		metricQueueDepth + " 0",
		metricUptime,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("metrics output missing %q\n---\n%s", want, out)
		}
	}
}

// TestMetricsRegistriesIndependent checks two servers in one process
// keep separate counters — the reason serving uses per-instance
// registries instead of the process-wide default.
func TestMetricsRegistriesIndependent(t *testing.T) {
	a, _ := testServer(t, Options{MaxBatch: 4, Window: time.Millisecond})
	b, _ := testServer(t, Options{MaxBatch: 4, Window: time.Millisecond})
	cfg := a.Config()
	if _, err := a.Infer(t.Context(), Request{Inputs: seqJSON(rng.New(5), 3, cfg.InputSize)}); err != nil {
		t.Fatal(err)
	}
	if got := a.Stats().Completed; got != 1 {
		t.Fatalf("server a completed = %d, want 1", got)
	}
	if got := b.Stats().Completed; got != 0 {
		t.Fatalf("server b completed = %d, want 0 (registries leaked across servers)", got)
	}
}

// TestPprofGate checks the profiling handlers only exist behind
// Options.EnablePprof.
func TestPprofGate(t *testing.T) {
	_, off := testServer(t, Options{MaxBatch: 4, Window: time.Millisecond})
	resp, err := http.Get(off.URL + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("pprof without EnablePprof: HTTP %d, want 404", resp.StatusCode)
	}

	_, on := testServer(t, Options{MaxBatch: 4, Window: time.Millisecond, EnablePprof: true})
	resp, err = http.Get(on.URL + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("pprof with EnablePprof: HTTP %d, want 200", resp.StatusCode)
	}
	body, _ := io.ReadAll(resp.Body)
	if !strings.Contains(string(body), "goroutine") {
		t.Fatalf("pprof index does not look like pprof output")
	}
}
