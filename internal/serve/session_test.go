package serve

import (
	"context"
	"sync"
	"testing"
	"time"

	"etalstm/internal/model"
)

// fakeClock is an injectable, lockable time source for TTL tests.
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func (c *fakeClock) now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *fakeClock) advance(d time.Duration) {
	c.mu.Lock()
	c.t = c.t.Add(d)
	c.mu.Unlock()
}

func TestSessionSerializesRequests(t *testing.T) {
	tab := newSessionTable(time.Minute)
	ctx := context.Background()

	s1, err := tab.acquire(ctx, "a")
	if err != nil {
		t.Fatal(err)
	}
	// A second acquire on the same id must block until release.
	acquired := make(chan *session)
	go func() {
		s2, err := tab.acquire(ctx, "a")
		if err != nil {
			t.Error(err)
		}
		acquired <- s2
	}()
	select {
	case <-acquired:
		t.Fatal("second acquire did not block while gate held")
	case <-time.After(10 * time.Millisecond):
	}
	tab.release(s1)
	s2 := <-acquired
	if s2 != s1 {
		t.Fatal("same id resolved to different sessions")
	}
	tab.release(s2)

	// A blocked acquire honours context cancellation.
	s3, _ := tab.acquire(ctx, "a")
	cctx, cancel := context.WithCancel(ctx)
	cancel()
	if _, err := tab.acquire(cctx, "a"); err == nil {
		t.Fatal("acquire with canceled ctx on a busy session: want error")
	}
	tab.release(s3)
}

// TestSessionStateThreading checks state carried through the table is
// the per-id state: distinct ids do not share it.
func TestSessionStateThreading(t *testing.T) {
	tab := newSessionTable(time.Minute)
	ctx := context.Background()

	sa, _ := tab.acquire(ctx, "a")
	sa.state = &model.VecState{H: [][]float32{{1}}}
	tab.release(sa)
	sb, _ := tab.acquire(ctx, "b")
	if sb.state != nil {
		t.Fatal("fresh session b inherited state")
	}
	tab.release(sb)
	sa2, _ := tab.acquire(ctx, "a")
	if sa2.state == nil || sa2.state.H[0][0] != 1 {
		t.Fatal("session a lost its state")
	}
	tab.release(sa2)
}

func TestSessionTTLEviction(t *testing.T) {
	clk := &fakeClock{t: time.Unix(1000, 0)}
	tab := newSessionTable(time.Minute)
	tab.now = clk.now
	ctx := context.Background()

	for _, id := range []string{"a", "b"} {
		s, _ := tab.acquire(ctx, id)
		tab.release(s)
	}
	// "busy" stays gate-held across the sweep.
	busy, _ := tab.acquire(ctx, "busy")
	if n := tab.count(); n != 3 {
		t.Fatalf("count=%d, want 3", n)
	}

	// Not yet idle long enough: nothing evicted.
	clk.advance(30 * time.Second)
	if n := tab.evict(); n != 0 {
		t.Fatalf("early evict removed %d", n)
	}

	// Refresh "a" so only "b" (and the skipped "busy") are stale later.
	sa, _ := tab.acquire(ctx, "a")
	tab.release(sa)
	clk.advance(45 * time.Second)
	if n := tab.evict(); n != 1 {
		t.Fatalf("evict removed %d, want 1 (only the idle stale session)", n)
	}
	if n := tab.count(); n != 2 {
		t.Fatalf("count=%d, want 2 (a refreshed, busy skipped)", n)
	}

	// Releasing "busy" refreshes it; after a full TTL everything goes.
	tab.release(busy)
	clk.advance(2 * time.Minute)
	if n := tab.evict(); n != 2 {
		t.Fatalf("final evict removed %d, want 2", n)
	}
	if n := tab.count(); n != 0 {
		t.Fatalf("count=%d, want 0", n)
	}
}

// TestSessionConcurrentAcquireEvict hammers acquire/release on a hot
// id while the evictor sweeps — the race-detector workout for the
// busy-skip path.
func TestSessionConcurrentAcquireEvict(t *testing.T) {
	tab := newSessionTable(time.Nanosecond) // everything is instantly stale
	ctx := context.Background()

	var wg sync.WaitGroup
	stop := make(chan struct{})
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			ids := []string{"x", "y", "z"}
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				s, err := tab.acquire(ctx, ids[(g+i)%len(ids)])
				if err != nil {
					t.Error(err)
					return
				}
				s.state = &model.VecState{} // the write the gate must protect
				tab.release(s)
			}
		}(g)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
				tab.evict()
			}
		}
	}()
	time.Sleep(50 * time.Millisecond)
	close(stop)
	wg.Wait()
}
