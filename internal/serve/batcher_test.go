package serve

import (
	"context"
	"errors"
	"strings"
	"sync"
	"testing"
	"time"

	"etalstm/internal/model"
	"etalstm/internal/rng"
	"etalstm/internal/tensor"
)

func testNet(t testing.TB) *model.Network {
	t.Helper()
	cfg := model.Config{
		InputSize: 4, Hidden: 8, Layers: 2, SeqLen: 8, Batch: 1,
		OutSize: 3, Loss: model.SingleLoss,
	}
	net, err := model.NewNetwork(cfg, rng.New(11))
	if err != nil {
		t.Fatal(err)
	}
	return net
}

func testSeq(r *rng.RNG, steps, width int) model.InferSeq {
	xs := make([][]float32, steps)
	for t := range xs {
		xs[t] = make([]float32, width)
		for j := range xs[t] {
			xs[t][j] = r.Uniform(-1, 1)
		}
	}
	return model.InferSeq{Inputs: xs}
}

// TestBatcherConcurrentSubmit drives many goroutines through one
// batcher and checks every submission completes with a plausible
// result and that batches actually coalesce.
func TestBatcherConcurrentSubmit(t *testing.T) {
	net := testNet(t)
	opts := Options{MaxBatch: 8, Window: time.Millisecond, Workers: 2}.withDefaults()
	m := newMetrics(opts.MaxBatch)
	b := newBatcher(net, opts, m)
	defer b.drain(context.Background())

	const n = 64
	r := rng.New(3)
	seqs := make([]model.InferSeq, n)
	for i := range seqs {
		seqs[i] = testSeq(r.Split(), 1+i%5, net.Cfg.InputSize)
	}
	var wg sync.WaitGroup
	errs := make([]error, n)
	outs := make([]model.InferOut, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			outs[i], errs[i] = b.submit(context.Background(), seqs[i])
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
		if len(outs[i].Output) != net.Cfg.OutSize {
			t.Fatalf("submit %d: output width %d, want %d", i, len(outs[i].Output), net.Cfg.OutSize)
		}
	}
	if got := m.completed.Value(); got != n {
		t.Fatalf("completed %d, want %d", got, n)
	}
	bs := m.batchSize.Snapshot()
	batches, items := bs.Count, int64(bs.Sum)
	if items != n {
		t.Fatalf("batched items %d, want %d", items, n)
	}
	if batches >= n {
		t.Fatalf("no coalescing: %d batches for %d requests", batches, n)
	}
}

// TestBatcherMatchesSingleShot checks a batched submission is bitwise
// identical to the direct single-request sweep.
func TestBatcherMatchesSingleShot(t *testing.T) {
	net := testNet(t)
	opts := Options{MaxBatch: 4, Window: time.Millisecond}.withDefaults()
	b := newBatcher(net, opts, newMetrics(opts.MaxBatch))
	defer b.drain(context.Background())

	seq := testSeq(rng.New(5), 6, net.Cfg.InputSize)
	want, err := net.InferBatch(nil, []model.InferSeq{seq})
	if err != nil {
		t.Fatal(err)
	}
	got, err := b.submit(context.Background(), seq)
	if err != nil {
		t.Fatal(err)
	}
	for j := range want[0].Output {
		if got.Output[j] != want[0].Output[j] {
			t.Fatalf("output[%d]: batched %v != direct %v", j, got.Output[j], want[0].Output[j])
		}
	}
}

// TestBatcherQueueFull verifies load shedding: with no workers draining
// the queue, submissions beyond QueueCap are rejected immediately.
func TestBatcherQueueFull(t *testing.T) {
	net := testNet(t)
	opts := Options{MaxBatch: 4, QueueCap: 2, Window: time.Hour}.withDefaults()
	m := newMetrics(opts.MaxBatch)
	// Build the batcher by hand with no collector/workers so nothing
	// drains the admission queue.
	b := &batcher{
		net: net, opts: opts, m: m,
		in:   make(chan *pending, opts.QueueCap),
		work: make(chan []*pending),
	}
	seq := testSeq(rng.New(7), 2, net.Cfg.InputSize)
	ctx, cancel := context.WithCancel(context.Background())
	var wg sync.WaitGroup
	for i := 0; i < opts.QueueCap; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			b.submit(ctx, seq) // parks until cancel
		}()
	}
	// Wait for both to be admitted (queue at capacity).
	deadline := time.Now().Add(2 * time.Second)
	for len(b.in) < opts.QueueCap {
		if time.Now().After(deadline) {
			t.Fatal("queue never filled")
		}
		time.Sleep(time.Millisecond)
	}
	if _, err := b.submit(ctx, seq); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("overflow submit: err=%v, want ErrQueueFull", err)
	}
	if m.rejected.Value() != 1 {
		t.Fatalf("rejected=%d, want 1", m.rejected.Value())
	}
	cancel()
	wg.Wait()
}

// TestBatcherCancelMidQueue checks a request canceled while queued is
// skipped by the worker: the submitter gets ctx.Err() and the canceled
// request never joins a sweep.
func TestBatcherCancelMidQueue(t *testing.T) {
	net := testNet(t)
	// A huge window so the batch sits in the collector until we cancel.
	opts := Options{MaxBatch: 64, Window: 50 * time.Millisecond, Workers: 1}.withDefaults()
	m := newMetrics(opts.MaxBatch)
	b := newBatcher(net, opts, m)
	defer b.drain(context.Background())

	seq := testSeq(rng.New(9), 3, net.Cfg.InputSize)
	ctx, cancel := context.WithCancel(context.Background())
	cancelErr := make(chan error, 1)
	go func() {
		_, err := b.submit(ctx, seq)
		cancelErr <- err
	}()
	// Give the submission time to be admitted, then cancel before the
	// window can flush it.
	time.Sleep(5 * time.Millisecond)
	cancel()
	if err := <-cancelErr; !errors.Is(err, context.Canceled) {
		t.Fatalf("canceled submit: err=%v, want context.Canceled", err)
	}
	// A live follow-up still completes, and the canceled request must
	// not have joined its sweep.
	if _, err := b.submit(context.Background(), seq); err != nil {
		t.Fatalf("follow-up submit: %v", err)
	}
	if got := m.canceled.Value(); got != 1 {
		t.Fatalf("canceled=%d, want 1", got)
	}
	if items := int64(m.batchSize.Snapshot().Sum); items != 1 {
		t.Fatalf("swept items=%d, want 1 (canceled request must not be swept)", items)
	}
}

// TestDrainNoDrops is the graceful-shutdown acceptance test: every
// request admitted before drain completes with a result; submissions
// after drain get ErrClosed; zero requests are dropped.
func TestDrainNoDrops(t *testing.T) {
	net := testNet(t)
	opts := Options{MaxBatch: 8, Window: 2 * time.Millisecond, Workers: 2, QueueCap: 1024}.withDefaults()
	m := newMetrics(opts.MaxBatch)
	b := newBatcher(net, opts, m)

	const n = 128
	r := rng.New(21)
	var wg sync.WaitGroup
	var mu sync.Mutex
	admitted, completed := 0, 0
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(seq model.InferSeq) {
			defer wg.Done()
			_, err := b.submit(context.Background(), seq)
			mu.Lock()
			defer mu.Unlock()
			switch {
			case err == nil:
				admitted++
				completed++
			case errors.Is(err, ErrClosed) || errors.Is(err, ErrQueueFull):
				// Never admitted — not a drop.
			default:
				t.Errorf("submit: unexpected error %v", err)
			}
		}(testSeq(r.Split(), 1+i%4, net.Cfg.InputSize))
	}
	// Start draining while submissions are still arriving.
	time.Sleep(time.Millisecond)
	if err := b.drain(context.Background()); err != nil {
		t.Fatalf("drain: %v", err)
	}
	wg.Wait()
	if completed != admitted {
		t.Fatalf("dropped %d admitted requests during drain", admitted-completed)
	}
	if completed == 0 {
		t.Fatal("no requests completed before drain — test raced to nothing")
	}
	if _, err := b.submit(context.Background(), testSeq(r, 2, net.Cfg.InputSize)); !errors.Is(err, ErrClosed) {
		t.Fatalf("post-drain submit: err=%v, want ErrClosed", err)
	}
	// Idempotent.
	if err := b.drain(context.Background()); err != nil {
		t.Fatalf("second drain: %v", err)
	}
}

// TestBatcherPanicIsolation simulates a poisoned model mid-flight:
// request validation passes, but the sweep panics in a kernel (here a
// projection whose shape was corrupted). The panic must fail the group
// with an error — not kill the process — and after the corruption is
// repaired the same worker (arena reset) keeps serving.
func TestBatcherPanicIsolation(t *testing.T) {
	net := testNet(t)
	opts := Options{MaxBatch: 4, Window: time.Millisecond, Workers: 1}.withDefaults()
	m := newMetrics(opts.MaxBatch)
	b := newBatcher(net, opts, m)
	defer b.drain(context.Background())

	goodProj := net.Proj
	net.Proj = tensor.New(net.Cfg.Hidden+1, net.Cfg.OutSize) // inner-dim mismatch → MatMul panics
	_, err := b.submit(context.Background(), testSeq(rng.New(31), 2, net.Cfg.InputSize))
	if err == nil {
		t.Fatal("poisoned sweep: want error, got nil")
	}
	if !strings.Contains(err.Error(), "inference panic") {
		t.Fatalf("poisoned sweep: err=%v, want inference-panic error", err)
	}
	// The batcher survived: after repairing the model, a healthy request
	// completes on the same (reset) worker arena.
	net.Proj = goodProj
	out, err := b.submit(context.Background(), testSeq(rng.New(32), 3, net.Cfg.InputSize))
	if err != nil {
		t.Fatalf("post-panic submit: %v", err)
	}
	if len(out.Output) != net.Cfg.OutSize {
		t.Fatalf("post-panic output width %d, want %d", len(out.Output), net.Cfg.OutSize)
	}
	if m.failed.Value() == 0 {
		t.Fatal("failed counter not incremented for poisoned request")
	}
}

// TestBatcherWindowFlush checks a lone request is not stuck waiting for
// MaxBatch company: the window timer flushes it.
func TestBatcherWindowFlush(t *testing.T) {
	net := testNet(t)
	opts := Options{MaxBatch: 1024, Window: time.Millisecond, QueueCap: 1024}.withDefaults()
	b := newBatcher(net, opts, newMetrics(opts.MaxBatch))
	defer b.drain(context.Background())

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if _, err := b.submit(ctx, testSeq(rng.New(41), 2, net.Cfg.InputSize)); err != nil {
		t.Fatalf("lone submit never flushed: %v", err)
	}
}
