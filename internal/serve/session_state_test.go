package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"sync"
	"testing"
	"time"

	"etalstm/internal/rng"
)

func getJSON(t *testing.T, url string) (*http.Response, map[string]any) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var m map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&m); err != nil {
		t.Fatalf("bad JSON response: %v", err)
	}
	return resp, m
}

func putJSON(t *testing.T, url string, body []byte) *http.Response {
	t.Helper()
	req, err := http.NewRequest(http.MethodPut, url, bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	return resp
}

// TestSessionMigration is the fleet drain path end to end over HTTP:
// run half a conversation on replica A, export+evict the session, PUT
// it into replica B, and finish there — the final output must equal an
// unmigrated conversation bit for bit, and A must answer 410 Gone for
// the moved session afterwards.
func TestSessionMigration(t *testing.T) {
	a, hsA := testServer(t, Options{MaxBatch: 4, Window: time.Millisecond})
	_, hsB := testServer(t, Options{MaxBatch: 4, Window: time.Millisecond})
	cfg := a.Config()

	r := rng.New(21)
	half1 := seqJSON(r, 3, cfg.InputSize)
	half2 := seqJSON(r, 3, cfg.InputSize)

	// Reference: both halves on one server, no migration.
	for _, xs := range [][][]float32{half1} {
		if resp, _ := postJSON(t, hsA.URL+"/v1/infer", inferRequest{Inputs: xs, Session: "ref"}); resp.StatusCode != 200 {
			t.Fatalf("ref first half: HTTP %d", resp.StatusCode)
		}
	}
	_, wantBody := postJSON(t, hsA.URL+"/v1/infer", inferRequest{Inputs: half2, Session: "ref"})

	// Migrated: first half on A…
	if resp, _ := postJSON(t, hsA.URL+"/v1/infer", inferRequest{Inputs: half1, Session: "mig"}); resp.StatusCode != 200 {
		t.Fatalf("mig first half: HTTP %d", resp.StatusCode)
	}
	if _, body := getJSON(t, hsA.URL+"/v1/sessions"); body["sessions"] == nil {
		t.Fatal("session list empty with live sessions")
	}
	// …export with evict…
	resp, state := getJSON(t, hsA.URL+"/v1/session/mig/state?evict=1")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("export: HTTP %d", resp.StatusCode)
	}
	raw, err := json.Marshal(state)
	if err != nil {
		t.Fatal(err)
	}
	// …import into B and finish there.
	if resp := putJSON(t, hsB.URL+"/v1/session/mig/state", raw); resp.StatusCode != http.StatusOK {
		t.Fatalf("import: HTTP %d", resp.StatusCode)
	}
	resp2, gotBody := postJSON(t, hsB.URL+"/v1/infer", inferRequest{Inputs: half2, Session: "mig"})
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("mig second half on B: HTTP %d", resp2.StatusCode)
	}
	got := gotBody["output"].([]any)
	want := wantBody["output"].([]any)
	for j := range want {
		if got[j].(float64) != want[j].(float64) {
			t.Fatalf("output[%d]: migrated %v != unmigrated %v", j, got[j], want[j])
		}
	}

	// A holds a tombstone now: late requests must get 410 Gone, not a
	// silently-forked fresh session.
	lateResp, _ := postJSON(t, hsA.URL+"/v1/infer", inferRequest{Inputs: half2, Session: "mig"})
	if lateResp.StatusCode != http.StatusGone {
		t.Fatalf("late request on moved session: HTTP %d, want 410", lateResp.StatusCode)
	}
	expResp, _ := getJSON(t, hsA.URL+"/v1/session/mig/state")
	if expResp.StatusCode != http.StatusGone {
		t.Fatalf("re-export of moved session: HTTP %d, want 410", expResp.StatusCode)
	}
}

// TestSessionStateEndpointErrors pins the non-happy paths: unknown
// export 404, duplicate import 409, mis-shaped import 400.
func TestSessionStateEndpointErrors(t *testing.T) {
	s, hs := testServer(t, Options{MaxBatch: 4, Window: time.Millisecond})
	cfg := s.Config()

	if resp, _ := getJSON(t, hs.URL+"/v1/session/nope/state"); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown export: HTTP %d, want 404", resp.StatusCode)
	}

	if resp, _ := postJSON(t, hs.URL+"/v1/infer",
		inferRequest{Inputs: seqJSON(rng.New(5), 2, cfg.InputSize), Session: "dup"}); resp.StatusCode != 200 {
		t.Fatalf("seed session: HTTP %d", resp.StatusCode)
	}
	_, state := getJSON(t, hs.URL+"/v1/session/dup/state")
	raw, _ := json.Marshal(state)
	if resp := putJSON(t, hs.URL+"/v1/session/dup/state", raw); resp.StatusCode != http.StatusConflict {
		t.Fatalf("import over live session: HTTP %d, want 409", resp.StatusCode)
	}

	bad, _ := json.Marshal(sessionStateBody{
		H: [][]float32{{1, 2}}, S: [][]float32{{1, 2}},
	})
	if resp := putJSON(t, hs.URL+"/v1/session/bad/state", bad); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("mis-shaped import: HTTP %d, want 400", resp.StatusCode)
	}
}

// TestSessionNoResurrectionMidDrain is the drain race (ISSUE satellite):
// a request already blocked on the session's gate when the export wins
// it must NOT resurrect the session with the pre-export state — it
// observes the dead mark and fails with ErrSessionMoved. Whichever
// order the gate race resolves in, the state is never forked. Run
// under -race this also proves the dance is data-race clean.
func TestSessionNoResurrectionMidDrain(t *testing.T) {
	for i := 0; i < 50; i++ {
		tbl := newSessionTable(time.Minute)
		// Seed the session and hold its gate, as an in-flight request.
		holder, err := tbl.acquire(context.Background(), "s")
		if err != nil {
			t.Fatal(err)
		}

		var wg sync.WaitGroup
		exported := make(chan error, 1)
		lateErr := make(chan error, 1)
		wg.Add(2)
		go func() { // the drain
			defer wg.Done()
			_, err := tbl.export(context.Background(), "s", true)
			exported <- err
		}()
		go func() { // a late request racing the drain
			defer wg.Done()
			sess, err := tbl.acquire(context.Background(), "s")
			if err == nil {
				tbl.release(sess)
			}
			lateErr <- err
		}()
		tbl.release(holder) // both racers unblock
		wg.Wait()

		if err := <-exported; err != nil && err != ErrSessionMoved {
			// The late request may have re-created and then the export
			// sees it; only moved/nil are legal.
			t.Fatalf("iter %d: export: %v", i, err)
		}
		if err := <-lateErr; err != nil && err != ErrSessionMoved {
			t.Fatalf("iter %d: late acquire: %v", i, err)
		}
		// After the dust settles the session must be gone for good.
		if _, err := tbl.acquire(context.Background(), "s"); err != ErrSessionMoved {
			t.Fatalf("iter %d: post-drain acquire = %v, want ErrSessionMoved", i, err)
		}
		if tbl.count() != 0 {
			t.Fatalf("iter %d: %d sessions survived the drain", i, tbl.count())
		}
	}
}
