package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sync"
	"time"

	"etalstm/internal/rng"
	"etalstm/internal/stats"
)

// LoadOptions shapes a synthetic traffic burst against a running
// server (etaserve -loadgen and the serve-smoke target).
type LoadOptions struct {
	// Target is the server base URL, e.g. "http://127.0.0.1:8080".
	Target string
	// Concurrency is the number of client goroutines (0 = 32).
	Concurrency int
	// Requests is the total request count across all clients (0 = 512).
	Requests int
	// SeqLen is the timesteps per request (0 = 8).
	SeqLen int
	// Sessions, when > 0, spreads requests over this many session ids so
	// a slice of the traffic exercises the stateful path.
	Sessions int
	// Seed makes the generated inputs reproducible (0 = 1).
	Seed uint64
}

func (o LoadOptions) withDefaults() LoadOptions {
	if o.Concurrency <= 0 {
		o.Concurrency = 32
	}
	if o.Requests <= 0 {
		o.Requests = 512
	}
	if o.SeqLen <= 0 {
		o.SeqLen = 8
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	return o
}

// LoadReport summarizes one generated burst.
type LoadReport struct {
	Sent     int
	OK       int
	Rejected int // shed with 429 — expected under deliberate overload
	Errors   int // anything else non-200
	Wall     time.Duration
	RPS      float64 // OK completions per wall-clock second
	P50Ms    float64
	P99Ms    float64
}

func (r LoadReport) String() string {
	return fmt.Sprintf("sent=%d ok=%d rejected=%d errors=%d wall=%v rps=%.1f p50=%.2fms p99=%.2fms",
		r.Sent, r.OK, r.Rejected, r.Errors, r.Wall.Round(time.Millisecond), r.RPS, r.P50Ms, r.P99Ms)
}

// RunLoad fires a closed-loop burst at the target: it probes /v1/model
// for the input geometry, then Concurrency clients each issue their
// share of Requests back to back. 429s count as rejected (shedding is
// the server working as designed), other non-200s as errors.
func RunLoad(ctx context.Context, opts LoadOptions) (LoadReport, error) {
	opts = opts.withDefaults()
	geo, err := probeModel(ctx, opts.Target)
	if err != nil {
		return LoadReport{}, err
	}
	client := &http.Client{}
	var (
		mu   sync.Mutex
		rep  LoadReport
		lats []float64
	)
	start := time.Now()
	var wg sync.WaitGroup
	root := rng.New(opts.Seed)
	perClient := (opts.Requests + opts.Concurrency - 1) / opts.Concurrency
	issued := 0
	for c := 0; c < opts.Concurrency && issued < opts.Requests; c++ {
		n := perClient
		if issued+n > opts.Requests {
			n = opts.Requests - issued
		}
		issued += n
		wg.Add(1)
		go func(r *rng.RNG, id, n int) {
			defer wg.Done()
			for i := 0; i < n; i++ {
				if ctx.Err() != nil {
					return
				}
				req := inferRequest{Inputs: randomSeq(r, opts.SeqLen, geo.InputSize)}
				if opts.Sessions > 0 {
					req.Session = fmt.Sprintf("load-%d", (id+i)%opts.Sessions)
				}
				t0 := time.Now()
				status, err := postInfer(ctx, client, opts.Target, req)
				d := time.Since(t0)
				mu.Lock()
				rep.Sent++
				switch {
				case err != nil || status >= 500:
					rep.Errors++
				case status == http.StatusTooManyRequests:
					rep.Rejected++
				case status == http.StatusOK:
					rep.OK++
					lats = append(lats, float64(d)/float64(time.Millisecond))
				default:
					rep.Errors++
				}
				mu.Unlock()
			}
		}(root.Split(), c, n)
	}
	wg.Wait()
	rep.Wall = time.Since(start)
	if rep.Wall > 0 {
		rep.RPS = float64(rep.OK) / rep.Wall.Seconds()
	}
	qs := stats.Quantiles(lats, 0.5, 0.99)
	rep.P50Ms, rep.P99Ms = qs[0], qs[1]
	return rep, nil
}

func randomSeq(r *rng.RNG, steps, width int) [][]float32 {
	xs := make([][]float32, steps)
	for t := range xs {
		row := make([]float32, width)
		for j := range row {
			row[j] = r.Uniform(-1, 1)
		}
		xs[t] = row
	}
	return xs
}

func probeModel(ctx context.Context, target string) (modelResponse, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, target+"/v1/model", nil)
	if err != nil {
		return modelResponse{}, err
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return modelResponse{}, fmt.Errorf("loadgen: cannot reach %s: %w", target, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return modelResponse{}, fmt.Errorf("loadgen: %s/v1/model: HTTP %d", target, resp.StatusCode)
	}
	var geo modelResponse
	if err := json.NewDecoder(resp.Body).Decode(&geo); err != nil {
		return modelResponse{}, fmt.Errorf("loadgen: bad /v1/model body: %w", err)
	}
	return geo, nil
}

func postInfer(ctx context.Context, client *http.Client, target string, body inferRequest) (int, error) {
	buf, err := json.Marshal(body)
	if err != nil {
		return 0, err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, target+"/v1/infer", bytes.NewReader(buf))
	if err != nil {
		return 0, err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := client.Do(req)
	if err != nil {
		return 0, err
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	return resp.StatusCode, nil
}
