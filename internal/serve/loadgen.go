package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strings"
	"sync"
	"time"

	"etalstm/internal/rng"
	"etalstm/internal/rtrace"
	"etalstm/internal/stats"
)

// LoadOptions shapes a synthetic traffic burst against a running
// server (etaserve -loadgen and the serve-smoke target).
type LoadOptions struct {
	// Target is the server base URL, e.g. "http://127.0.0.1:8080".
	Target string
	// Concurrency is the number of client goroutines (0 = 32).
	Concurrency int
	// Requests is the total request count across all clients (0 = 512).
	Requests int
	// SeqLen is the timesteps per request (0 = 8).
	SeqLen int
	// Sessions, when > 0, spreads requests over this many session ids so
	// a slice of the traffic exercises the stateful path.
	Sessions int
	// ZipfS, when > 0, draws session ids from a Zipf(ZipfS) distribution
	// over the Sessions ranks instead of round-robin — the skew knob of
	// the fleet benchmark (session "load-0" is the hottest).
	ZipfS float64
	// SessionFrac is the fraction of requests that carry a session id
	// when Sessions > 0 (0 = 1.0, every request; clamped to [0, 1]).
	// The remainder are stateless, which a fleet router spreads by body
	// digest instead of session affinity.
	SessionFrac float64
	// Seed makes the generated inputs reproducible (0 = 1).
	Seed uint64
	// TraceEvery, when > 0, mints a sampled W3C traceparent header on
	// every Nth request, originating end-to-end traces at the client the
	// way production edge clients would. The minted trace ids surface in
	// LoadReport.SampleTraces for pulling from /debug/traces/{id}.
	TraceEvery int
}

func (o LoadOptions) withDefaults() LoadOptions {
	if o.Concurrency <= 0 {
		o.Concurrency = 32
	}
	if o.Requests <= 0 {
		o.Requests = 512
	}
	if o.SeqLen <= 0 {
		o.SeqLen = 8
	}
	if o.SessionFrac <= 0 {
		o.SessionFrac = 1
	}
	if o.SessionFrac > 1 {
		o.SessionFrac = 1
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	return o
}

// SessionLoad is the per-session latency summary of a burst — the
// fleet benchmark's check that skewed hot sessions still meet tail
// latency, not just the aggregate.
type SessionLoad struct {
	Session string  `json:"session"`
	N       int     `json:"n"`
	P50Ms   float64 `json:"p50_ms"`
	P99Ms   float64 `json:"p99_ms"`
}

// LoadReport summarizes one generated burst.
type LoadReport struct {
	Sent     int
	OK       int
	Rejected int // shed with 429 — expected under deliberate overload
	Errors   int // anything else non-200
	Wall     time.Duration
	RPS      float64 // OK completions per wall-clock second
	P50Ms    float64
	P99Ms    float64
	// PerSession summarizes each session id that completed at least one
	// request, sorted by id; empty for stateless-only bursts.
	PerSession []SessionLoad
	// MaxSessionP99Ms is the worst per-session p99 — the number the
	// fleet smoke pins so one hot session cannot hide in the aggregate.
	MaxSessionP99Ms float64
	// SampleTraces holds up to eight trace ids this burst minted (only
	// with TraceEvery > 0) — resolvable at the target's /debug/traces.
	SampleTraces []string `json:",omitempty"`
}

func (r LoadReport) String() string {
	s := fmt.Sprintf("sent=%d ok=%d rejected=%d errors=%d wall=%v rps=%.1f p50=%.2fms p99=%.2fms",
		r.Sent, r.OK, r.Rejected, r.Errors, r.Wall.Round(time.Millisecond), r.RPS, r.P50Ms, r.P99Ms)
	if len(r.PerSession) > 0 {
		s += fmt.Sprintf(" sessions=%d max_session_p99=%.2fms", len(r.PerSession), r.MaxSessionP99Ms)
	}
	if len(r.SampleTraces) > 0 {
		s += " traces=" + strings.Join(r.SampleTraces, ",")
	}
	return s
}

// RunLoad fires a closed-loop burst at the target: it probes /v1/model
// for the input geometry, then Concurrency clients each issue their
// share of Requests back to back. 429s count as rejected (shedding is
// the server working as designed), other non-200s as errors.
func RunLoad(ctx context.Context, opts LoadOptions) (LoadReport, error) {
	opts = opts.withDefaults()
	geo, err := probeModel(ctx, opts.Target)
	if err != nil {
		return LoadReport{}, err
	}
	client := &http.Client{}
	var zipf *stats.Zipf
	if opts.Sessions > 0 && opts.ZipfS > 0 {
		zipf = stats.NewZipf(opts.Sessions, opts.ZipfS)
	}
	var (
		mu      sync.Mutex
		rep     LoadReport
		lats    []float64
		perSess = make(map[string][]float64)
	)
	start := time.Now()
	var wg sync.WaitGroup
	root := rng.New(opts.Seed)
	perClient := (opts.Requests + opts.Concurrency - 1) / opts.Concurrency
	issued := 0
	for c := 0; c < opts.Concurrency && issued < opts.Requests; c++ {
		n := perClient
		if issued+n > opts.Requests {
			n = opts.Requests - issued
		}
		issued += n
		wg.Add(1)
		go func(r *rng.RNG, id, n int) {
			defer wg.Done()
			for i := 0; i < n; i++ {
				if ctx.Err() != nil {
					return
				}
				req := inferRequest{Inputs: randomSeq(r, opts.SeqLen, geo.InputSize)}
				if opts.Sessions > 0 && r.Float64() < opts.SessionFrac {
					rank := (id + i) % opts.Sessions
					if zipf != nil {
						rank = zipf.Rank(r.Float64())
					}
					req.Session = fmt.Sprintf("load-%d", rank)
				}
				tp := ""
				if opts.TraceEvery > 0 && i%opts.TraceEvery == 0 {
					tid, sid := rtrace.NewIDs()
					tp = rtrace.FormatTraceparent(tid, sid, true)
					mu.Lock()
					if len(rep.SampleTraces) < 8 {
						rep.SampleTraces = append(rep.SampleTraces, tid.String())
					}
					mu.Unlock()
				}
				t0 := time.Now()
				status, err := postInfer(ctx, client, opts.Target, req, tp)
				d := time.Since(t0)
				mu.Lock()
				rep.Sent++
				switch {
				case err != nil || status >= 500:
					rep.Errors++
				case status == http.StatusTooManyRequests:
					rep.Rejected++
				case status == http.StatusOK:
					rep.OK++
					ms := float64(d) / float64(time.Millisecond)
					lats = append(lats, ms)
					if req.Session != "" {
						perSess[req.Session] = append(perSess[req.Session], ms)
					}
				default:
					rep.Errors++
				}
				mu.Unlock()
			}
		}(root.Split(), c, n)
	}
	wg.Wait()
	rep.Wall = time.Since(start)
	if rep.Wall > 0 {
		rep.RPS = float64(rep.OK) / rep.Wall.Seconds()
	}
	qs := stats.Quantiles(lats, 0.5, 0.99)
	rep.P50Ms, rep.P99Ms = qs[0], qs[1]
	for id, ls := range perSess {
		q := stats.Quantiles(ls, 0.5, 0.99)
		rep.PerSession = append(rep.PerSession, SessionLoad{Session: id, N: len(ls), P50Ms: q[0], P99Ms: q[1]})
		if q[1] > rep.MaxSessionP99Ms {
			rep.MaxSessionP99Ms = q[1]
		}
	}
	sort.Slice(rep.PerSession, func(i, j int) bool {
		return rep.PerSession[i].Session < rep.PerSession[j].Session
	})
	return rep, nil
}

func randomSeq(r *rng.RNG, steps, width int) [][]float32 {
	xs := make([][]float32, steps)
	for t := range xs {
		row := make([]float32, width)
		for j := range row {
			row[j] = r.Uniform(-1, 1)
		}
		xs[t] = row
	}
	return xs
}

func probeModel(ctx context.Context, target string) (modelResponse, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, target+"/v1/model", nil)
	if err != nil {
		return modelResponse{}, err
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return modelResponse{}, fmt.Errorf("loadgen: cannot reach %s: %w", target, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return modelResponse{}, fmt.Errorf("loadgen: %s/v1/model: HTTP %d", target, resp.StatusCode)
	}
	var geo modelResponse
	if err := json.NewDecoder(resp.Body).Decode(&geo); err != nil {
		return modelResponse{}, fmt.Errorf("loadgen: bad /v1/model body: %w", err)
	}
	return geo, nil
}

func postInfer(ctx context.Context, client *http.Client, target string, body inferRequest, traceparent string) (int, error) {
	buf, err := json.Marshal(body)
	if err != nil {
		return 0, err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, target+"/v1/infer", bytes.NewReader(buf))
	if err != nil {
		return 0, err
	}
	req.Header.Set("Content-Type", "application/json")
	if traceparent != "" {
		req.Header.Set(rtrace.TraceparentHeader, traceparent)
	}
	resp, err := client.Do(req)
	if err != nil {
		return 0, err
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	return resp.StatusCode, nil
}
