// Package serve is the inference serving subsystem: it takes a trained
// (typically persist-loaded) model.Network and serves next-token /
// classification / regression inference over HTTP+JSON or in-process
// calls, with a dynamic micro-batcher at its core.
//
// Concurrent requests are coalesced — flush on max batch size or a
// deadline window — into single batched InferBatch sweeps through a
// worker pool whose members each own a tensor.Workspace arena and share
// the checkpoint's weights read-only. Per-request inference footprint
// is tiny (the cache-free FW cell stores nothing), so throughput scales
// with the batch the coalescer can form instead of degrading with
// concurrency.
//
// Around the batcher: per-connection stateful sessions (h/s carried
// across requests for streaming, TTL-evicted), request deadlines, a
// bounded admission queue with load shedding (429 + Retry-After),
// graceful drain (zero dropped in-flight requests), panic isolation,
// and /healthz + /statz endpoints exporting queue depth, the
// batch-size histogram and p50/p99 latency. See DESIGN.md §9.
package serve

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"etalstm/internal/model"
	"etalstm/internal/obs"
	"etalstm/internal/persist"
	"etalstm/internal/rtrace"
)

// ErrBadRequest wraps request-validation failures (HTTP 400).
var ErrBadRequest = errors.New("serve: bad request")

// ErrNotReady is returned while no checkpoint is loaded (a standby
// server before its first Reload) — HTTP 503 on /readyz and /v1/infer.
var ErrNotReady = errors.New("serve: no checkpoint loaded")

// Options tunes a Server; zero values select production-sensible
// defaults.
type Options struct {
	// MaxBatch is the flush size of the micro-batcher (0 = 32): a
	// forming batch is dispatched as soon as it reaches this many
	// requests.
	MaxBatch int
	// Window is the flush deadline (0 = 2ms): a forming batch waits at
	// most this long for company before dispatching partial.
	Window time.Duration
	// QueueCap bounds the admission queue (0 = 8×MaxBatch); submissions
	// beyond it are shed with ErrQueueFull.
	QueueCap int
	// Workers is the sweep worker pool size (0 = NumCPU, capped at 8).
	// Each worker owns a private arena; weights are shared read-only.
	Workers int
	// SessionTTL evicts idle streaming sessions (0 = 5m).
	SessionTTL time.Duration
	// RequestTimeout bounds each HTTP request end to end (0 = 5s).
	RequestTimeout time.Duration
	// MaxSeqLen rejects sequences longer than this (0 = 1024) so one
	// request cannot monopolize a sweep.
	MaxSeqLen int
	// DrainTimeout bounds graceful shutdown (0 = 15s).
	DrainTimeout time.Duration
	// EnablePprof mounts net/http/pprof's profiling handlers under
	// /debug/pprof/ on the server's mux. Off by default: the profiles
	// expose internals (heap contents, goroutine stacks) that do not
	// belong on an open inference port.
	EnablePprof bool
	// EnableAdmin mounts POST /v1/admin/reload, which loads a checkpoint
	// file named by the caller and hot-swaps it in. Off by default for
	// the same reason as pprof: it lets the caller make the server read
	// arbitrary paths, which belongs on a trusted port only.
	EnableAdmin bool
	// Tracer, when non-nil, traces requests and sweeps into its flight
	// recorder and mounts GET /debug/traces (+ /debug/traces/{id}) on
	// the server's mux. nil (the default) disables tracing entirely —
	// every trace point degrades to a pointer test.
	Tracer *rtrace.Tracer
	// Log receives the server's structured log records (sweep panics,
	// drain progress), stamped with trace ids where one exists. nil (the
	// default) is silent.
	Log *obs.Logger
	// TraceDumpWriter receives the flight-recorder dump written when a
	// sweep panics (nil = os.Stderr). Only read when Tracer is set.
	TraceDumpWriter io.Writer
}

func (o Options) withDefaults() Options {
	if o.MaxBatch <= 0 {
		o.MaxBatch = 32
	}
	if o.Window <= 0 {
		o.Window = 2 * time.Millisecond
	}
	if o.QueueCap <= 0 {
		o.QueueCap = 8 * o.MaxBatch
	}
	if o.Workers <= 0 {
		o.Workers = runtime.NumCPU()
		if o.Workers > 8 {
			o.Workers = 8
		}
	}
	if o.SessionTTL <= 0 {
		o.SessionTTL = 5 * time.Minute
	}
	if o.RequestTimeout <= 0 {
		o.RequestTimeout = 5 * time.Second
	}
	if o.MaxSeqLen <= 0 {
		o.MaxSeqLen = 1024
	}
	if o.DrainTimeout <= 0 {
		o.DrainTimeout = 15 * time.Second
	}
	return o
}

// Request is one inference call: an input sequence and an optional
// session id for streaming state.
type Request struct {
	// Inputs is the sequence, one vector of width Cfg.InputSize per
	// timestep. Lengths may vary freely between requests.
	Inputs [][]float32
	// Session, when non-empty, carries h/s across requests under this
	// id: each call continues where the previous one on the same id
	// stopped. Concurrent calls on one id are serialized.
	Session string
}

// Result is the model's answer at the sequence's final timestep.
type Result struct {
	// Output is the projected output row (logits for classification,
	// values for regression), width Cfg.OutSize.
	Output []float32
	// Class is the argmax over Output for classification models, -1
	// for regression.
	Class int
}

// generation is one served checkpoint: the network, the batcher (and
// worker pool) sweeping it, and the checkpoint's identity. Hot-swap
// builds a fresh generation next to the live one and flips an atomic
// pointer, so a swap never pauses traffic: requests racing the flip
// land on whichever generation they loaded, and the old batcher's
// graceful drain finishes everything it admitted.
type generation struct {
	net    *model.Network
	b      *batcher
	digest string // hex SHA-256 checkpoint content digest
	seq    int64  // 1 for the first load, +1 per swap
}

// Server owns the session table, the metrics registry and the current
// checkpoint generation (batcher + worker pool). Sessions and metrics
// survive hot-swaps; the generation is what a swap replaces.
type Server struct {
	opts     Options
	m        *metrics
	sessions *sessionTable

	// gen is the serving generation; nil on a standby server that has
	// not loaded its first checkpoint yet.
	gen atomic.Pointer[generation]
	// swapMu serializes Reload against itself and against Close.
	swapMu sync.Mutex

	mux      *http.ServeMux
	draining atomic.Bool

	closeOnce   sync.Once
	closeErr    error
	stopJanitor chan struct{}
	janitorDone chan struct{}
}

// NewStandby builds a server with no checkpoint loaded: /healthz is
// live, /readyz answers 503, and inference fails with ErrNotReady
// until the first Reload. This is the fleet's warm-spare shape — the
// process (port, mux, sessions) exists before the weights do.
func NewStandby(opts Options) *Server {
	opts = opts.withDefaults()
	s := &Server{
		opts:        opts,
		m:           newMetrics(opts.MaxBatch),
		sessions:    newSessionTable(opts.SessionTTL),
		stopJanitor: make(chan struct{}),
		janitorDone: make(chan struct{}),
	}
	obs.RegisterBuildInfo(s.m.reg)
	// Derived gauges close over the live server; they are evaluated at
	// export time, so /metrics and /statz always agree.
	s.m.reg.GaugeFunc(metricQueueDepth, "requests waiting in the admission queue",
		func() float64 {
			if g := s.gen.Load(); g != nil {
				return float64(g.b.depth())
			}
			return 0
		})
	s.m.reg.GaugeFunc(metricSessions, "live streaming sessions",
		func() float64 { return float64(s.sessions.count()) })
	s.m.reg.GaugeFunc(metricUptime, "seconds since the server started",
		func() float64 { return time.Since(s.m.start).Seconds() })
	s.m.reg.GaugeFunc(metricSwapGen, "checkpoint generation (1 = first load, +1 per swap)",
		func() float64 {
			if g := s.gen.Load(); g != nil {
				return float64(g.seq)
			}
			return 0
		})
	s.mux = s.routes()
	go s.janitor()
	return s
}

// New builds a server around net. The network's weights are treated as
// read-only from here on; training it concurrently is not supported.
func New(net *model.Network, opts Options) *Server {
	s := NewStandby(opts)
	digest, _ := persist.Digest(net)
	s.install(&generation{net: net, b: newBatcher(net, s.opts, s.m), digest: digest, seq: 1})
	return s
}

// install publishes a generation and its identity metrics.
func (s *Server) install(g *generation) {
	s.gen.Store(g)
	s.m.reg.SetInfo(metricCheckpointDigest, "content digest of the served checkpoint",
		"digest", g.digest)
}

// checkServingCompat rejects a swap that would invalidate live session
// state or change what clients see: the serving geometry (input/output
// widths, hidden size, layer count, loss) must match. SeqLen and Batch
// are training-shape fields inference never reads, so they may differ.
func checkServingCompat(got, want model.Config) error {
	got.SeqLen, got.Batch = want.SeqLen, want.Batch
	if err := persist.CheckConfig(got, want); err != nil {
		return fmt.Errorf("%w: incompatible checkpoint: %v", ErrBadRequest, err)
	}
	return nil
}

// Reload hot-swaps the served checkpoint: build a standby generation
// (own batcher + worker pool) around net, verify it by running a probe
// inference through it, atomically flip the serving pointer, then
// gracefully drain the old generation. In-flight requests are never
// dropped — requests admitted to the old batcher complete on the old
// weights, and a submission racing the flip retries on the new
// generation (see Infer). digest may be empty; it is recomputed.
func (s *Server) Reload(net *model.Network, digest string) error {
	s.swapMu.Lock()
	defer s.swapMu.Unlock()
	if s.draining.Load() {
		return ErrClosed
	}
	old := s.gen.Load()
	if old != nil {
		if err := checkServingCompat(net.Cfg, old.net.Cfg); err != nil {
			return err
		}
	}
	if digest == "" {
		d, err := persist.Digest(net)
		if err != nil {
			return fmt.Errorf("serve: digesting checkpoint: %w", err)
		}
		digest = d
	}
	nb := newBatcher(net, s.opts, s.m)
	// Health-verify the standby before any traffic can reach it: one
	// zero-input probe must survive a full sweep.
	probeCtx, cancel := context.WithTimeout(context.Background(), s.opts.RequestTimeout)
	probe := model.InferSeq{Inputs: [][]float32{make([]float32, net.Cfg.InputSize)}}
	_, err := nb.submit(probeCtx, probe)
	cancel()
	if err != nil {
		dctx, dcancel := context.WithTimeout(context.Background(), s.opts.DrainTimeout)
		nb.drain(dctx)
		dcancel()
		return fmt.Errorf("serve: standby checkpoint failed probe: %w", err)
	}
	seq := int64(1)
	if old != nil {
		seq = old.seq + 1
	}
	s.install(&generation{net: net, b: nb, digest: digest, seq: seq})
	if old != nil {
		dctx, dcancel := context.WithTimeout(context.Background(), s.opts.DrainTimeout)
		defer dcancel()
		if err := old.b.drain(dctx); err != nil {
			return fmt.Errorf("serve: old generation: %w", err)
		}
	}
	return nil
}

// Generation returns the current checkpoint generation number and
// content digest (0, "" on a standby).
func (s *Server) Generation() (int64, string) {
	if g := s.gen.Load(); g != nil {
		return g.seq, g.digest
	}
	return 0, ""
}

// Ready reports whether the server can answer inference: a checkpoint
// is loaded and drain has not begun.
func (s *Server) Ready() bool {
	return s.gen.Load() != nil && !s.draining.Load()
}

// janitor sweeps idle sessions every quarter TTL until Close.
func (s *Server) janitor() {
	defer close(s.janitorDone)
	period := s.opts.SessionTTL / 4
	if period < time.Second {
		period = time.Second
	}
	t := time.NewTicker(period)
	defer t.Stop()
	for {
		select {
		case <-t.C:
			s.sessions.evict()
		case <-s.stopJanitor:
			return
		}
	}
}

// Config returns the served model's geometry (zero value on a standby
// with no checkpoint loaded).
func (s *Server) Config() model.Config {
	if g := s.gen.Load(); g != nil {
		return g.net.Cfg
	}
	return model.Config{}
}

// Stats returns a snapshot of the serving metrics.
func (s *Server) Stats() Stats {
	depth := 0
	var seq int64
	digest := ""
	if g := s.gen.Load(); g != nil {
		depth, seq, digest = g.b.depth(), g.seq, g.digest
	}
	return s.m.snapshot(depth, s.sessions.count(), seq, digest)
}

// validate maps malformed inputs to ErrBadRequest before they can
// reach (and fail) a whole micro-batch.
func (s *Server) validate(net *model.Network, inputs [][]float32) error {
	if len(inputs) > s.opts.MaxSeqLen {
		return fmt.Errorf("%w: sequence of %d steps exceeds the %d-step limit",
			ErrBadRequest, len(inputs), s.opts.MaxSeqLen)
	}
	if err := net.CheckInferSeq(model.InferSeq{Inputs: inputs}); err != nil {
		return fmt.Errorf("%w: %v", ErrBadRequest, err)
	}
	return nil
}

// Infer submits one request through the micro-batcher and blocks until
// its sweep completes, ctx is done, or the request is shed. It is the
// in-process entry point the HTTP handler also uses.
//
// Hot-swap transparency: a submission that lands in the gap between a
// generation flip and the old batcher's close gets ErrClosed from the
// old batcher; when a newer generation exists the request simply
// resubmits there, so a swap drops zero requests.
func (s *Server) Infer(ctx context.Context, req Request) (Result, error) {
	g := s.gen.Load()
	if g == nil {
		return Result{}, ErrNotReady
	}
	if err := s.validate(g.net, req.Inputs); err != nil {
		return Result{}, err
	}
	seq := model.InferSeq{Inputs: req.Inputs}
	var sess *session
	if req.Session != "" {
		var err error
		sess, err = s.sessions.acquire(ctx, req.Session)
		if err != nil {
			return Result{}, err
		}
		seq.State = sess.state
	}
	var out model.InferOut
	var err error
	for {
		out, err = g.b.submit(ctx, seq)
		if errors.Is(err, ErrClosed) && !s.draining.Load() {
			if ng := s.gen.Load(); ng != nil && ng != g {
				g = ng
				continue
			}
		}
		break
	}
	if sess != nil {
		if err == nil {
			sess.state = out.State
		}
		s.sessions.release(sess)
	}
	if err != nil {
		return Result{}, err
	}
	return resultOf(g.net.Cfg.Loss, out), nil
}

// resultOf shapes a sweep output into the client-facing Result.
func resultOf(loss model.LossKind, out model.InferOut) Result {
	r := Result{Output: out.Output, Class: -1}
	if loss != model.RegressionLoss {
		best := 0
		for j, v := range out.Output {
			if v > out.Output[best] {
				best = j
			}
		}
		r.Class = best
	}
	return r
}

// Serve accepts connections on ln until ctx is done, then drains
// gracefully: stop accepting, finish in-flight HTTP requests, flush
// and complete every admitted batch, stop the janitor. In-flight
// requests are never dropped; the drain is bounded by DrainTimeout.
func (s *Server) Serve(ctx context.Context, ln net.Listener) error {
	hs := &http.Server{Handler: s.Handler()}
	errc := make(chan error, 1)
	go func() { errc <- hs.Serve(ln) }()
	select {
	case err := <-errc:
		s.Close(context.Background())
		return err
	case <-ctx.Done():
	}
	s.draining.Store(true)
	drainCtx, cancel := context.WithTimeout(context.Background(), s.opts.DrainTimeout)
	defer cancel()
	// Order matters: Shutdown waits for in-flight handlers (whose
	// submissions must still be accepted), then the batcher drains.
	err := hs.Shutdown(drainCtx)
	if cerr := s.Close(drainCtx); err == nil {
		err = cerr
	}
	<-errc // hs.Serve has returned ErrServerClosed
	return err
}

// Close drains the batcher (bounded by ctx) and stops the janitor.
// Safe to call more than once; used directly by in-process embedders
// that never started Serve.
func (s *Server) Close(ctx context.Context) error {
	s.closeOnce.Do(func() {
		s.draining.Store(true)
		// swapMu keeps a concurrent Reload from installing a fresh
		// generation after this drain; Reload re-checks draining under it.
		s.swapMu.Lock()
		if g := s.gen.Load(); g != nil {
			s.closeErr = g.b.drain(ctx)
		}
		s.swapMu.Unlock()
		close(s.stopJanitor)
		<-s.janitorDone
	})
	return s.closeErr
}

// Infer runs one single-shot batched sweep over independent sequences
// without standing up a server — the library entry point for callers
// that already hold a batch (amortizing the kernel sweep exactly like
// the micro-batcher does for concurrent callers).
func Infer(net *model.Network, seqs [][][]float32) ([]Result, error) {
	reqs := make([]model.InferSeq, len(seqs))
	for i, xs := range seqs {
		reqs[i] = model.InferSeq{Inputs: xs}
	}
	outs, err := net.InferBatch(nil, reqs)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadRequest, err)
	}
	res := make([]Result, len(outs))
	for i, out := range outs {
		res[i] = resultOf(net.Cfg.Loss, out)
	}
	return res, nil
}
