// Package serve is the inference serving subsystem: it takes a trained
// (typically persist-loaded) model.Network and serves next-token /
// classification / regression inference over HTTP+JSON or in-process
// calls, with a dynamic micro-batcher at its core.
//
// Concurrent requests are coalesced — flush on max batch size or a
// deadline window — into single batched InferBatch sweeps through a
// worker pool whose members each own a tensor.Workspace arena and share
// the checkpoint's weights read-only. Per-request inference footprint
// is tiny (the cache-free FW cell stores nothing), so throughput scales
// with the batch the coalescer can form instead of degrading with
// concurrency.
//
// Around the batcher: per-connection stateful sessions (h/s carried
// across requests for streaming, TTL-evicted), request deadlines, a
// bounded admission queue with load shedding (429 + Retry-After),
// graceful drain (zero dropped in-flight requests), panic isolation,
// and /healthz + /statz endpoints exporting queue depth, the
// batch-size histogram and p50/p99 latency. See DESIGN.md §9.
package serve

import (
	"context"
	"errors"
	"fmt"
	"net"
	"net/http"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"etalstm/internal/model"
)

// ErrBadRequest wraps request-validation failures (HTTP 400).
var ErrBadRequest = errors.New("serve: bad request")

// Options tunes a Server; zero values select production-sensible
// defaults.
type Options struct {
	// MaxBatch is the flush size of the micro-batcher (0 = 32): a
	// forming batch is dispatched as soon as it reaches this many
	// requests.
	MaxBatch int
	// Window is the flush deadline (0 = 2ms): a forming batch waits at
	// most this long for company before dispatching partial.
	Window time.Duration
	// QueueCap bounds the admission queue (0 = 8×MaxBatch); submissions
	// beyond it are shed with ErrQueueFull.
	QueueCap int
	// Workers is the sweep worker pool size (0 = NumCPU, capped at 8).
	// Each worker owns a private arena; weights are shared read-only.
	Workers int
	// SessionTTL evicts idle streaming sessions (0 = 5m).
	SessionTTL time.Duration
	// RequestTimeout bounds each HTTP request end to end (0 = 5s).
	RequestTimeout time.Duration
	// MaxSeqLen rejects sequences longer than this (0 = 1024) so one
	// request cannot monopolize a sweep.
	MaxSeqLen int
	// DrainTimeout bounds graceful shutdown (0 = 15s).
	DrainTimeout time.Duration
	// EnablePprof mounts net/http/pprof's profiling handlers under
	// /debug/pprof/ on the server's mux. Off by default: the profiles
	// expose internals (heap contents, goroutine stacks) that do not
	// belong on an open inference port.
	EnablePprof bool
}

func (o Options) withDefaults() Options {
	if o.MaxBatch <= 0 {
		o.MaxBatch = 32
	}
	if o.Window <= 0 {
		o.Window = 2 * time.Millisecond
	}
	if o.QueueCap <= 0 {
		o.QueueCap = 8 * o.MaxBatch
	}
	if o.Workers <= 0 {
		o.Workers = runtime.NumCPU()
		if o.Workers > 8 {
			o.Workers = 8
		}
	}
	if o.SessionTTL <= 0 {
		o.SessionTTL = 5 * time.Minute
	}
	if o.RequestTimeout <= 0 {
		o.RequestTimeout = 5 * time.Second
	}
	if o.MaxSeqLen <= 0 {
		o.MaxSeqLen = 1024
	}
	if o.DrainTimeout <= 0 {
		o.DrainTimeout = 15 * time.Second
	}
	return o
}

// Request is one inference call: an input sequence and an optional
// session id for streaming state.
type Request struct {
	// Inputs is the sequence, one vector of width Cfg.InputSize per
	// timestep. Lengths may vary freely between requests.
	Inputs [][]float32
	// Session, when non-empty, carries h/s across requests under this
	// id: each call continues where the previous one on the same id
	// stopped. Concurrent calls on one id are serialized.
	Session string
}

// Result is the model's answer at the sequence's final timestep.
type Result struct {
	// Output is the projected output row (logits for classification,
	// values for regression), width Cfg.OutSize.
	Output []float32
	// Class is the argmax over Output for classification models, -1
	// for regression.
	Class int
}

// Server owns the batcher, the worker pool and the session table for
// one loaded checkpoint.
type Server struct {
	net      *model.Network
	opts     Options
	m        *metrics
	b        *batcher
	sessions *sessionTable

	mux      *http.ServeMux
	draining atomic.Bool

	closeOnce   sync.Once
	closeErr    error
	stopJanitor chan struct{}
	janitorDone chan struct{}
}

// New builds a server around net. The network's weights are treated as
// read-only from here on; training it concurrently is not supported.
func New(net *model.Network, opts Options) *Server {
	opts = opts.withDefaults()
	s := &Server{
		net:         net,
		opts:        opts,
		m:           newMetrics(opts.MaxBatch),
		sessions:    newSessionTable(opts.SessionTTL),
		stopJanitor: make(chan struct{}),
		janitorDone: make(chan struct{}),
	}
	s.b = newBatcher(net, opts, s.m)
	// Derived gauges close over the live server; they are evaluated at
	// export time, so /metrics and /statz always agree.
	s.m.reg.GaugeFunc(metricQueueDepth, "requests waiting in the admission queue",
		func() float64 { return float64(s.b.depth()) })
	s.m.reg.GaugeFunc(metricSessions, "live streaming sessions",
		func() float64 { return float64(s.sessions.count()) })
	s.m.reg.GaugeFunc(metricUptime, "seconds since the server started",
		func() float64 { return time.Since(s.m.start).Seconds() })
	s.mux = s.routes()
	go s.janitor()
	return s
}

// janitor sweeps idle sessions every quarter TTL until Close.
func (s *Server) janitor() {
	defer close(s.janitorDone)
	period := s.opts.SessionTTL / 4
	if period < time.Second {
		period = time.Second
	}
	t := time.NewTicker(period)
	defer t.Stop()
	for {
		select {
		case <-t.C:
			s.sessions.evict()
		case <-s.stopJanitor:
			return
		}
	}
}

// Config returns the served model's geometry.
func (s *Server) Config() model.Config { return s.net.Cfg }

// Stats returns a snapshot of the serving metrics.
func (s *Server) Stats() Stats {
	return s.m.snapshot(s.b.depth(), s.sessions.count())
}

// validate maps malformed inputs to ErrBadRequest before they can
// reach (and fail) a whole micro-batch.
func (s *Server) validate(inputs [][]float32) error {
	if len(inputs) > s.opts.MaxSeqLen {
		return fmt.Errorf("%w: sequence of %d steps exceeds the %d-step limit",
			ErrBadRequest, len(inputs), s.opts.MaxSeqLen)
	}
	if err := s.net.CheckInferSeq(model.InferSeq{Inputs: inputs}); err != nil {
		return fmt.Errorf("%w: %v", ErrBadRequest, err)
	}
	return nil
}

// Infer submits one request through the micro-batcher and blocks until
// its sweep completes, ctx is done, or the request is shed. It is the
// in-process entry point the HTTP handler also uses.
func (s *Server) Infer(ctx context.Context, req Request) (Result, error) {
	if err := s.validate(req.Inputs); err != nil {
		return Result{}, err
	}
	seq := model.InferSeq{Inputs: req.Inputs}
	var sess *session
	if req.Session != "" {
		var err error
		sess, err = s.sessions.acquire(ctx, req.Session)
		if err != nil {
			return Result{}, err
		}
		seq.State = sess.state
	}
	out, err := s.b.submit(ctx, seq)
	if sess != nil {
		if err == nil {
			sess.state = out.State
		}
		s.sessions.release(sess)
	}
	if err != nil {
		return Result{}, err
	}
	return s.result(out), nil
}

func (s *Server) result(out model.InferOut) Result {
	r := Result{Output: out.Output, Class: -1}
	if s.net.Cfg.Loss != model.RegressionLoss {
		best := 0
		for j, v := range out.Output {
			if v > out.Output[best] {
				best = j
			}
		}
		r.Class = best
	}
	return r
}

// Serve accepts connections on ln until ctx is done, then drains
// gracefully: stop accepting, finish in-flight HTTP requests, flush
// and complete every admitted batch, stop the janitor. In-flight
// requests are never dropped; the drain is bounded by DrainTimeout.
func (s *Server) Serve(ctx context.Context, ln net.Listener) error {
	hs := &http.Server{Handler: s.Handler()}
	errc := make(chan error, 1)
	go func() { errc <- hs.Serve(ln) }()
	select {
	case err := <-errc:
		s.Close(context.Background())
		return err
	case <-ctx.Done():
	}
	s.draining.Store(true)
	drainCtx, cancel := context.WithTimeout(context.Background(), s.opts.DrainTimeout)
	defer cancel()
	// Order matters: Shutdown waits for in-flight handlers (whose
	// submissions must still be accepted), then the batcher drains.
	err := hs.Shutdown(drainCtx)
	if cerr := s.Close(drainCtx); err == nil {
		err = cerr
	}
	<-errc // hs.Serve has returned ErrServerClosed
	return err
}

// Close drains the batcher (bounded by ctx) and stops the janitor.
// Safe to call more than once; used directly by in-process embedders
// that never started Serve.
func (s *Server) Close(ctx context.Context) error {
	s.closeOnce.Do(func() {
		s.draining.Store(true)
		s.closeErr = s.b.drain(ctx)
		close(s.stopJanitor)
		<-s.janitorDone
	})
	return s.closeErr
}

// Infer runs one single-shot batched sweep over independent sequences
// without standing up a server — the library entry point for callers
// that already hold a batch (amortizing the kernel sweep exactly like
// the micro-batcher does for concurrent callers).
func Infer(net *model.Network, seqs [][][]float32) ([]Result, error) {
	reqs := make([]model.InferSeq, len(seqs))
	for i, xs := range seqs {
		reqs[i] = model.InferSeq{Inputs: xs}
	}
	outs, err := net.InferBatch(nil, reqs)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadRequest, err)
	}
	res := make([]Result, len(outs))
	srv := Server{net: net}
	for i, out := range outs {
		res[i] = srv.result(out)
	}
	return res, nil
}
