//go:build !race

package serve

// raceEnabled reports whether the race detector instruments this build;
// timing-sensitive tests consult it before asserting throughput ratios.
const raceEnabled = false
