package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"etalstm/internal/rng"
	"etalstm/internal/tensor"
)

func testServer(t *testing.T, opts Options) (*Server, *httptest.Server) {
	t.Helper()
	s := New(testNet(t), opts)
	hs := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		hs.Close()
		s.Close(context.Background())
	})
	return s, hs
}

func postJSON(t *testing.T, url string, body any) (*http.Response, map[string]any) {
	t.Helper()
	buf, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(buf))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var m map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&m); err != nil {
		t.Fatalf("bad JSON response: %v", err)
	}
	return resp, m
}

func seqJSON(r *rng.RNG, steps, width int) [][]float32 {
	return testSeq(r, steps, width).Inputs
}

func TestHTTPInferAndIntrospection(t *testing.T) {
	s, hs := testServer(t, Options{MaxBatch: 4, Window: time.Millisecond})
	cfg := s.Config()

	resp, body := postJSON(t, hs.URL+"/v1/infer",
		inferRequest{Inputs: seqJSON(rng.New(1), 5, cfg.InputSize)})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("infer: HTTP %d (%v)", resp.StatusCode, body)
	}
	out, ok := body["output"].([]any)
	if !ok || len(out) != cfg.OutSize {
		t.Fatalf("infer: output %v, want %d floats", body["output"], cfg.OutSize)
	}
	if cls := body["class"].(float64); cls < 0 || int(cls) >= cfg.OutSize {
		t.Fatalf("infer: class %v out of range", cls)
	}

	gr, err := http.Get(hs.URL + "/v1/model")
	if err != nil {
		t.Fatal(err)
	}
	var geo modelResponse
	json.NewDecoder(gr.Body).Decode(&geo)
	gr.Body.Close()
	if geo.InputSize != cfg.InputSize || geo.HiddenSize != cfg.Hidden || geo.OutSize != cfg.OutSize {
		t.Fatalf("model geometry %+v does not match config %+v", geo, cfg)
	}

	hr, err := http.Get(hs.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	hr.Body.Close()
	if hr.StatusCode != http.StatusOK {
		t.Fatalf("healthz: HTTP %d", hr.StatusCode)
	}

	sr, err := http.Get(hs.URL + "/statz")
	if err != nil {
		t.Fatal(err)
	}
	var st Stats
	json.NewDecoder(sr.Body).Decode(&st)
	sr.Body.Close()
	if st.Completed < 1 || st.Batches < 1 {
		t.Fatalf("statz after one request: %+v", st)
	}
}

func TestHTTPSessionStatefulness(t *testing.T) {
	s, hs := testServer(t, Options{MaxBatch: 4, Window: time.Millisecond})
	cfg := s.Config()
	r := rng.New(2)
	half1 := seqJSON(r, 3, cfg.InputSize)
	half2 := seqJSON(r, 3, cfg.InputSize)

	// Two session calls, 3 steps each…
	for _, xs := range [][][]float32{half1, half2} {
		resp, body := postJSON(t, hs.URL+"/v1/infer", inferRequest{Inputs: xs, Session: "conv"})
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("session infer: HTTP %d (%v)", resp.StatusCode, body)
		}
	}
	// …must equal one stateless 6-step call.
	whole := append(append([][]float32{}, half1...), half2...)
	_, wantBody := postJSON(t, hs.URL+"/v1/infer", inferRequest{Inputs: whole})

	// Replay the split through a fresh session to read its final output.
	resp, gotBody := postJSON(t, hs.URL+"/v1/infer", inferRequest{Inputs: half1, Session: "conv2"})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("conv2 first half: HTTP %d", resp.StatusCode)
	}
	resp, gotBody = postJSON(t, hs.URL+"/v1/infer", inferRequest{Inputs: half2, Session: "conv2"})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("conv2 second half: HTTP %d", resp.StatusCode)
	}
	got := gotBody["output"].([]any)
	want := wantBody["output"].([]any)
	for j := range want {
		if got[j].(float64) != want[j].(float64) {
			t.Fatalf("output[%d]: split-session %v != whole-sequence %v", j, got[j], want[j])
		}
	}
	if n := s.sessions.count(); n != 2 {
		t.Fatalf("sessions=%d, want 2", n)
	}
}

func TestHTTPErrorMapping(t *testing.T) {
	s, hs := testServer(t, Options{MaxBatch: 4, Window: time.Millisecond, MaxSeqLen: 8})
	cfg := s.Config()

	cases := []struct {
		name string
		body string
		want int
	}{
		{"malformed JSON", `{"inputs": [[1,`, http.StatusBadRequest},
		{"empty sequence", `{"inputs": []}`, http.StatusBadRequest},
		{"wrong input width", `{"inputs": [[1, 2]]}`, http.StatusBadRequest},
		{"over MaxSeqLen", tooLongBody(cfg.InputSize, 9), http.StatusBadRequest},
	}
	for _, tc := range cases {
		resp, err := http.Post(hs.URL+"/v1/infer", "application/json", strings.NewReader(tc.body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != tc.want {
			t.Errorf("%s: HTTP %d, want %d", tc.name, resp.StatusCode, tc.want)
		}
	}

	if resp, err := http.Get(hs.URL + "/v1/infer"); err == nil {
		resp.Body.Close()
		if resp.StatusCode != http.StatusMethodNotAllowed {
			t.Errorf("GET /v1/infer: HTTP %d, want 405", resp.StatusCode)
		}
	}
}

func tooLongBody(width, steps int) string {
	var b strings.Builder
	b.WriteString(`{"inputs": [`)
	for t := 0; t < steps; t++ {
		if t > 0 {
			b.WriteByte(',')
		}
		b.WriteByte('[')
		for j := 0; j < width; j++ {
			if j > 0 {
				b.WriteByte(',')
			}
			b.WriteString("0.5")
		}
		b.WriteByte(']')
	}
	b.WriteString(`]}`)
	return b.String()
}

// TestHTTPPoisonedRequestIsolation corrupts the model mid-serve: the
// poisoned sweep returns a 500 to its caller, and after repair the
// server keeps answering 200 — one bad sweep never kills the process.
func TestHTTPPoisonedRequestIsolation(t *testing.T) {
	s, hs := testServer(t, Options{MaxBatch: 4, Window: time.Millisecond, Workers: 1})
	cfg := s.Config()
	r := rng.New(3)

	net := s.gen.Load().net
	goodProj := net.Proj
	net.Proj = tensor.New(cfg.Hidden+1, cfg.OutSize)
	resp, body := postJSON(t, hs.URL+"/v1/infer", inferRequest{Inputs: seqJSON(r, 4, cfg.InputSize)})
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("poisoned infer: HTTP %d (%v), want 500", resp.StatusCode, body)
	}
	if msg, _ := body["error"].(string); !strings.Contains(msg, "panic") {
		t.Fatalf("poisoned infer error %q does not mention the panic", msg)
	}

	net.Proj = goodProj
	resp, body = postJSON(t, hs.URL+"/v1/infer", inferRequest{Inputs: seqJSON(r, 4, cfg.InputSize)})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("post-poison infer: HTTP %d (%v), want 200", resp.StatusCode, body)
	}
	st := s.Stats()
	if st.Failed < 1 || st.Completed < 1 {
		t.Fatalf("stats after poisoning: %+v", st)
	}
}

// TestHTTPDrainingHealth checks the liveness/readiness split on drain:
// /readyz flips to 503 (the router's stop-routing signal), /healthz
// stays 200 (the process is alive, just finishing), and new inferences
// are refused while admitted ones finish.
func TestHTTPDrainingHealth(t *testing.T) {
	s, hs := testServer(t, Options{MaxBatch: 4, Window: time.Millisecond})
	cfg := s.Config()

	rr, err := http.Get(hs.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	rr.Body.Close()
	if rr.StatusCode != http.StatusOK {
		t.Fatalf("readyz before drain: HTTP %d, want 200", rr.StatusCode)
	}

	if err := s.Close(context.Background()); err != nil {
		t.Fatalf("close: %v", err)
	}
	hr, err := http.Get(hs.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	hr.Body.Close()
	if hr.StatusCode != http.StatusOK {
		t.Fatalf("healthz while draining: HTTP %d, want 200 (liveness)", hr.StatusCode)
	}
	rr, err = http.Get(hs.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	rr.Body.Close()
	if rr.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("readyz while draining: HTTP %d, want 503", rr.StatusCode)
	}
	resp, _ := postJSON(t, hs.URL+"/v1/infer",
		inferRequest{Inputs: seqJSON(rng.New(4), 2, cfg.InputSize)})
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("infer while draining: HTTP %d, want 503", resp.StatusCode)
	}
}

// TestServeGracefulShutdown exercises Server.Serve end to end: listen,
// serve traffic, cancel the context, and verify the drain completes
// with all in-flight work answered.
func TestServeGracefulShutdown(t *testing.T) {
	s := New(testNet(t), Options{MaxBatch: 8, Window: time.Millisecond})
	ln, err := newLocalListener()
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	serveErr := make(chan error, 1)
	go func() { serveErr <- s.Serve(ctx, ln) }()

	url := "http://" + ln.Addr().String()
	cfg := s.Config()
	for i := 0; i < 8; i++ {
		resp, body := postJSON(t, url+"/v1/infer",
			inferRequest{Inputs: seqJSON(rng.New(uint64(i)+1), 3, cfg.InputSize)})
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("infer %d: HTTP %d (%v)", i, resp.StatusCode, body)
		}
	}
	cancel()
	select {
	case err := <-serveErr:
		if err != nil {
			t.Fatalf("serve returned %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("serve did not drain")
	}
	st := s.Stats()
	if st.Completed != 8 || st.Failed != 0 {
		t.Fatalf("after drain: %+v, want 8 completed / 0 failed", st)
	}
}

// TestInferSingleShot covers the package-level batched entry point.
func TestInferSingleShot(t *testing.T) {
	net := testNet(t)
	r := rng.New(6)
	seqs := [][][]float32{
		seqJSON(r, 4, net.Cfg.InputSize),
		seqJSON(r, 2, net.Cfg.InputSize),
	}
	res, err := Infer(net, seqs)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 2 {
		t.Fatalf("results=%d, want 2", len(res))
	}
	for i, rr := range res {
		if len(rr.Output) != net.Cfg.OutSize {
			t.Fatalf("result %d: width %d, want %d", i, len(rr.Output), net.Cfg.OutSize)
		}
		if rr.Class < 0 || rr.Class >= net.Cfg.OutSize {
			t.Fatalf("result %d: class %d out of range", i, rr.Class)
		}
	}
	if _, err := Infer(net, [][][]float32{{}}); err == nil {
		t.Fatal("empty sequence: want error")
	}
}

func newLocalListener() (net.Listener, error) {
	return net.Listen("tcp", "127.0.0.1:0")
}
