package serve

import (
	"time"

	"etalstm/internal/obs"
)

// latWindow is how many recent request latencies the p50/p99 export is
// computed over — a fixed-size ring so /statz cost is bounded no matter
// how long the server runs.
const latWindow = 4096

// Serving metric names. Each Server owns a private obs.Registry (its
// counters describe one Server's lifetime, and independent servers in
// one process — or one test binary — must not share them), so these
// names never collide with the process-wide training registry.
const (
	metricSubmitted  = "etalstm_serve_submitted_total"
	metricCompleted  = "etalstm_serve_completed_total"
	metricFailed     = "etalstm_serve_failed_total"
	metricRejected   = "etalstm_serve_rejected_total"
	metricCanceled   = "etalstm_serve_canceled_total"
	metricBatchSize  = "etalstm_serve_batch_size"
	metricLatencyMs  = "etalstm_serve_latency_ms"
	metricQueueDepth = "etalstm_serve_queue_depth"
	metricSessions   = "etalstm_serve_sessions"
	metricUptime     = "etalstm_serve_uptime_seconds"
	metricSwapGen    = "etalstm_serve_swap_generation"
	// metricCheckpointDigest is an info-style gauge: constant value 1,
	// the digest carried in a label, re-labeled in place on hot-swap.
	metricCheckpointDigest = "etalstm_checkpoint_digest"
)

// metrics aggregates the serving instruments exported by /statz (JSON)
// and /metrics (Prometheus text). It is a thin view over the server's
// registry; all bookkeeping lives in the obs instruments.
type metrics struct {
	start time.Time
	reg   *obs.Registry

	submitted *obs.Counter // admitted into the queue
	completed *obs.Counter // finished with a result
	failed    *obs.Counter // finished with an error (panic, sweep failure)
	rejected  *obs.Counter // shed at admission (queue full)
	canceled  *obs.Counter // submitter gave up (deadline/cancel)

	batchSize *obs.Histogram // batch-size distribution, bins 1..MaxBatch
	latency   *obs.Histogram // request latency in ms, latWindow ring
}

func newMetrics(maxBatch int) *metrics {
	reg := obs.NewRegistry()
	return &metrics{
		start:     time.Now(),
		reg:       reg,
		submitted: reg.Counter(metricSubmitted, "requests admitted into the queue"),
		completed: reg.Counter(metricCompleted, "requests finished with a result"),
		failed:    reg.Counter(metricFailed, "requests finished with an error"),
		rejected:  reg.Counter(metricRejected, "requests shed at admission (queue full)"),
		canceled:  reg.Counter(metricCanceled, "requests whose submitter gave up"),
		// One bin per batch size: [1, maxBatch+1) over maxBatch bins.
		batchSize: reg.Histogram(metricBatchSize, "flushed micro-batch sizes",
			1, float64(maxBatch+1), maxBatch, 1024),
		latency: reg.Histogram(metricLatencyMs, "request latency in milliseconds",
			0, 1000, 100, latWindow),
	}
}

func (m *metrics) observeBatch(size int) {
	m.batchSize.Observe(float64(size))
}

// observeLatency records one request latency; traceID (possibly "")
// rides along as the histogram's slow-sample exemplar.
func (m *metrics) observeLatency(d time.Duration, traceID string) {
	m.latency.ObserveEx(float64(d)/float64(time.Millisecond), traceID)
}

// Stats is one consistent snapshot of the serving metrics — the JSON
// body of /statz. Its shape (field set, names, order) is a stable
// contract; TestStatzGoldenShape pins it.
type Stats struct {
	UptimeSeconds float64 `json:"uptime_seconds"`

	Submitted int64 `json:"submitted"`
	Completed int64 `json:"completed"`
	Failed    int64 `json:"failed"`
	Rejected  int64 `json:"rejected"`
	Canceled  int64 `json:"canceled"`

	QueueDepth int   `json:"queue_depth"`
	Sessions   int   `json:"sessions"`
	Batches    int64 `json:"batches"`
	// MeanBatch is the average flushed batch size — the headline
	// number for how well micro-batching is coalescing the load.
	MeanBatch float64 `json:"mean_batch"`
	// BatchHist[i] counts flushes of batch size i+1.
	BatchHist []int64 `json:"batch_hist"`

	LatencyP50Ms float64 `json:"latency_p50_ms"`
	LatencyP99Ms float64 `json:"latency_p99_ms"`

	// SwapGeneration counts checkpoint loads (1 = first, +1 per
	// hot-swap, 0 = standby with nothing loaded); CheckpointDigest is
	// the served checkpoint's content identity — together they are how
	// the fleet router verifies a rolling swap landed everywhere.
	SwapGeneration   int64  `json:"swap_generation"`
	CheckpointDigest string `json:"checkpoint_digest"`

	// SlowTraceID names the slowest recent traced request (the latency
	// histogram's exemplar) — pull it from /debug/traces/{id}. Empty
	// with tracing off.
	SlowTraceID string  `json:"slow_trace_id"`
	SlowTraceMs float64 `json:"slow_trace_ms"`
}

func (m *metrics) snapshot(queueDepth, sessions int, swapGen int64, digest string) Stats {
	bs := m.batchSize.Snapshot()
	lat := m.latency.Snapshot()
	s := Stats{
		UptimeSeconds:    time.Since(m.start).Seconds(),
		Submitted:        m.submitted.Value(),
		Completed:        m.completed.Value(),
		Failed:           m.failed.Value(),
		Rejected:         m.rejected.Value(),
		Canceled:         m.canceled.Value(),
		QueueDepth:       queueDepth,
		Sessions:         sessions,
		Batches:          bs.Count,
		MeanBatch:        bs.Mean(),
		BatchHist:        bs.Bins,
		LatencyP50Ms:     lat.P50,
		LatencyP99Ms:     lat.P99,
		SwapGeneration:   swapGen,
		CheckpointDigest: digest,
		SlowTraceID:      lat.ExemplarTraceID,
		SlowTraceMs:      lat.ExemplarValue,
	}
	return s
}
