package serve

import (
	"sync"
	"sync/atomic"
	"time"

	"etalstm/internal/stats"
)

// latWindow is how many recent request latencies the p50/p99 export is
// computed over — a fixed-size ring so /statz cost is bounded no matter
// how long the server runs.
const latWindow = 4096

// metrics aggregates the serving counters exported by /statz.
type metrics struct {
	start time.Time

	submitted atomic.Int64 // admitted into the queue
	completed atomic.Int64 // finished with a result
	failed    atomic.Int64 // finished with an error (panic, sweep failure)
	rejected  atomic.Int64 // shed at admission (queue full)
	canceled  atomic.Int64 // submitter gave up (deadline/cancel)

	mu      sync.Mutex
	batches int64
	items   int64
	hist    *stats.Histogram // batch-size distribution, bins 1..MaxBatch
	lat     [latWindow]float64
	latIdx  int
	latN    int
}

func newMetrics(maxBatch int) *metrics {
	return &metrics{
		start: time.Now(),
		// One bin per batch size: [1, maxBatch+1) over maxBatch bins.
		hist: stats.NewHistogram(1, float64(maxBatch+1), maxBatch),
	}
}

func (m *metrics) observeBatch(size int) {
	m.mu.Lock()
	m.batches++
	m.items += int64(size)
	m.hist.Observe(float64(size))
	m.mu.Unlock()
}

func (m *metrics) observeLatency(d time.Duration) {
	ms := float64(d) / float64(time.Millisecond)
	m.mu.Lock()
	m.lat[m.latIdx] = ms
	m.latIdx = (m.latIdx + 1) % latWindow
	if m.latN < latWindow {
		m.latN++
	}
	m.mu.Unlock()
}

// Stats is one consistent snapshot of the serving metrics — the JSON
// body of /statz.
type Stats struct {
	UptimeSeconds float64 `json:"uptime_seconds"`

	Submitted int64 `json:"submitted"`
	Completed int64 `json:"completed"`
	Failed    int64 `json:"failed"`
	Rejected  int64 `json:"rejected"`
	Canceled  int64 `json:"canceled"`

	QueueDepth int   `json:"queue_depth"`
	Sessions   int   `json:"sessions"`
	Batches    int64 `json:"batches"`
	// MeanBatch is the average flushed batch size — the headline
	// number for how well micro-batching is coalescing the load.
	MeanBatch float64 `json:"mean_batch"`
	// BatchHist[i] counts flushes of batch size i+1.
	BatchHist []int64 `json:"batch_hist"`

	LatencyP50Ms float64 `json:"latency_p50_ms"`
	LatencyP99Ms float64 `json:"latency_p99_ms"`
}

func (m *metrics) snapshot(queueDepth, sessions int) Stats {
	s := Stats{
		UptimeSeconds: time.Since(m.start).Seconds(),
		Submitted:     m.submitted.Load(),
		Completed:     m.completed.Load(),
		Failed:        m.failed.Load(),
		Rejected:      m.rejected.Load(),
		Canceled:      m.canceled.Load(),
		QueueDepth:    queueDepth,
		Sessions:      sessions,
	}
	m.mu.Lock()
	s.Batches = m.batches
	if m.batches > 0 {
		s.MeanBatch = float64(m.items) / float64(m.batches)
	}
	s.BatchHist = append([]int64(nil), m.hist.Bins...)
	window := append([]float64(nil), m.lat[:m.latN]...)
	m.mu.Unlock()
	qs := stats.Quantiles(window, 0.5, 0.99)
	s.LatencyP50Ms, s.LatencyP99Ms = qs[0], qs[1]
	return s
}
