package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"

	"etalstm/internal/rng"
	"etalstm/internal/rtrace"
	"etalstm/internal/tensor"
)

// postTraced posts one inference request carrying a minted sampled
// traceparent and returns the trace id.
func postTraced(t *testing.T, url string, body inferRequest) (rtrace.TraceID, *http.Response) {
	t.Helper()
	tid, sid := rtrace.NewIDs()
	buf, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	req, err := http.NewRequest(http.MethodPost, url, bytes.NewReader(buf))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set(rtrace.TraceparentHeader, rtrace.FormatTraceparent(tid, sid, true))
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	return tid, resp
}

// TestServeRequestTrace pins the serving plane's trace chain: an
// inbound traceparent becomes a serve.request span, the batcher's sweep
// runs as its serve.sweep child with the FW phase folded in beneath it,
// the trace resolves at GET /debug/traces/{id}, and the slowest traced
// request surfaces as a latency-histogram exemplar in /statz and the
// Prometheus export.
func TestServeRequestTrace(t *testing.T) {
	tracer := rtrace.New(rtrace.Options{Process: "replica"})
	s, hs := testServer(t, Options{MaxBatch: 4, Window: time.Millisecond, Tracer: tracer})
	cfg := s.Config()

	tid, resp := postTraced(t, hs.URL+"/v1/infer",
		inferRequest{Inputs: seqJSON(rng.New(7), 5, cfg.InputSize), Session: "traced"})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("traced infer: HTTP %d", resp.StatusCode)
	}

	spans := tracer.Trace(tid)
	if len(spans) == 0 {
		t.Fatalf("trace %s not in the flight recorder", tid)
	}
	var request, sweep *rtrace.SpanData
	for i := range spans {
		switch spans[i].Name {
		case "serve.request":
			request = &spans[i]
		case "serve.sweep":
			sweep = &spans[i]
		}
	}
	if request == nil || sweep == nil {
		t.Fatalf("trace %s misses the chain: request=%v sweep=%v", tid, request != nil, sweep != nil)
	}
	if request.Parent.IsZero() {
		t.Fatal("serve.request span lost its remote parent")
	}
	if sweep.Parent != request.SpanID {
		t.Fatalf("serve.sweep parent %s, want request span %s", sweep.Parent, request.SpanID)
	}
	session := ""
	for _, a := range request.Attrs {
		if a.Key == "session" {
			session = a.Value
		}
	}
	if session != "traced" {
		t.Fatalf("request span session attr %q", session)
	}
	fwSeen := false
	for i := range spans {
		if spans[i].Parent == sweep.SpanID && strings.HasPrefix(spans[i].Name, "FW") {
			fwSeen = true
		}
	}
	if !fwSeen {
		t.Fatalf("sweep span has no FW phase child (spans: %v)", names(spans))
	}

	// The trace resolves over HTTP, tree included.
	tr, err := http.Get(hs.URL + "/debug/traces/" + tid.String())
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Body.Close()
	if tr.StatusCode != http.StatusOK {
		t.Fatalf("GET /debug/traces/{id}: HTTP %d", tr.StatusCode)
	}
	var tres rtrace.TraceResponse
	if err := json.NewDecoder(tr.Body).Decode(&tres); err != nil {
		t.Fatal(err)
	}
	if len(tres.Tree) == 0 || len(tres.Spans) < 3 {
		t.Fatalf("trace response: %d spans, %d roots", len(tres.Spans), len(tres.Tree))
	}

	// The traced request is the slowest (only) traced observation: it
	// must ride /statz and the Prometheus +Inf bucket as an exemplar.
	st := s.Stats()
	if st.SlowTraceID != tid.String() {
		t.Fatalf("statz slow_trace_id = %q, want %s", st.SlowTraceID, tid)
	}
	if st.SlowTraceMs <= 0 {
		t.Fatalf("statz slow_trace_ms = %v", st.SlowTraceMs)
	}
	mr, err := http.Get(hs.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	mb, _ := io.ReadAll(mr.Body)
	mr.Body.Close()
	if !strings.Contains(string(mb), `trace_id="`+tid.String()+`"`) {
		t.Fatalf("metrics export lacks the trace exemplar for %s", tid)
	}
}

func names(spans []rtrace.SpanData) []string {
	out := make([]string, len(spans))
	for i := range spans {
		out[i] = spans[i].Name
	}
	return out
}

// TestServeTraceEndpointGate: without a tracer the debug endpoints do
// not exist.
func TestServeTraceEndpointGate(t *testing.T) {
	_, hs := testServer(t, Options{MaxBatch: 4, Window: time.Millisecond})
	resp, err := http.Get(hs.URL + "/debug/traces")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("/debug/traces without tracer: HTTP %d, want 404", resp.StatusCode)
	}
}

// TestSweepPanicDumpsFlightRecorder: a poisoned sweep must dump the
// flight recorder to the configured writer so the traces leading up to
// the failure survive in the incident report.
func TestSweepPanicDumpsFlightRecorder(t *testing.T) {
	net := testNet(t)
	var dump bytes.Buffer
	tracer := rtrace.New(rtrace.Options{Process: "replica"})
	opts := Options{MaxBatch: 4, Window: time.Millisecond, Workers: 1,
		Tracer: tracer, TraceDumpWriter: &dump}.withDefaults()
	m := newMetrics(opts.MaxBatch)
	b := newBatcher(net, opts, m)
	defer b.drain(context.Background())

	// One healthy traced request seeds the recorder.
	sp := tracer.StartSpan("warmup")
	ctx := rtrace.ContextWithSpan(context.Background(), sp)
	if _, err := b.submit(ctx, testSeq(rng.New(41), 2, net.Cfg.InputSize)); err != nil {
		t.Fatal(err)
	}
	sp.Finish()

	net.Proj = tensor.New(net.Cfg.Hidden+1, net.Cfg.OutSize) // inner-dim mismatch → MatMul panics
	if _, err := b.submit(context.Background(), testSeq(rng.New(42), 2, net.Cfg.InputSize)); err == nil {
		t.Fatal("poisoned sweep: want error")
	}
	out := dump.String()
	if !strings.Contains(out, "rtrace flight recorder") {
		t.Fatalf("sweep failure did not dump the flight recorder:\n%s", out)
	}
	if !strings.Contains(out, "warmup") {
		t.Fatalf("dump misses the pre-incident trace:\n%s", out)
	}
}
