package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestCDFBasics(t *testing.T) {
	// Values exact in binary so float32→float64 keeps ≤ semantics.
	c := NewCDF([]float32{-0.5, 0.125, 0.25, 0.875})
	if c.N() != 4 {
		t.Fatalf("N: %d", c.N())
	}
	if got := c.At(0.25); math.Abs(got-0.5) > 1e-9 {
		t.Fatalf("At(0.25)=%v want 0.5", got)
	}
	if got := c.At(1.0); got != 1 {
		t.Fatalf("At(1)=%v", got)
	}
	if got := c.At(0.05); got != 0 {
		t.Fatalf("At(0.05)=%v", got)
	}
}

func TestCDFAbsolute(t *testing.T) {
	c := NewCDF([]float32{-0.9})
	if c.At(0.5) != 0 || c.At(0.9) != 1 {
		t.Fatal("CDF must use absolute values")
	}
}

func TestCDFMerge(t *testing.T) {
	c := NewCDF([]float32{0.1})
	c.Merge([]float32{0.9, 0.8})
	if c.N() != 3 {
		t.Fatal("Merge count")
	}
	if math.Abs(c.At(0.5)-1.0/3) > 1e-9 {
		t.Fatalf("At after merge: %v", c.At(0.5))
	}
}

func TestCDFQuantile(t *testing.T) {
	c := NewCDF([]float32{0.1, 0.2, 0.3, 0.4, 0.5})
	if math.Abs(c.Quantile(0)-0.1) > 1e-6 || math.Abs(c.Quantile(1)-0.5) > 1e-6 {
		t.Fatal("edge quantiles")
	}
	mid := c.Quantile(0.5)
	if mid < 0.2 || mid > 0.4 {
		t.Fatalf("median: %v", mid)
	}
}

func TestCDFCurveMonotone(t *testing.T) {
	c := NewCDF([]float32{0.05, 0.2, 0.4, 0.6, 0.95})
	pts := c.Curve(1, 20)
	if len(pts) != 21 {
		t.Fatalf("curve length: %d", len(pts))
	}
	for i := 1; i < len(pts); i++ {
		if pts[i].Y < pts[i-1].Y {
			t.Fatal("CDF curve must be non-decreasing")
		}
	}
	if pts[20].Y != 1 {
		t.Fatalf("curve must reach 1: %v", pts[20].Y)
	}
}

func TestEmptyCDF(t *testing.T) {
	c := NewCDF(nil)
	if c.At(1) != 0 || c.Quantile(0.5) != 0 {
		t.Fatal("empty CDF defaults")
	}
}

func TestHistogram(t *testing.T) {
	h := NewHistogram(0, 1, 10)
	for _, v := range []float64{0.05, 0.15, 0.15, 0.95, 1.5, -0.3} {
		h.Observe(v)
	}
	if h.Total() != 6 {
		t.Fatalf("Total: %d", h.Total())
	}
	if h.Bins[0] != 2 { // 0.05 and clamped -0.3
		t.Fatalf("bin 0: %d", h.Bins[0])
	}
	if h.Bins[1] != 2 {
		t.Fatalf("bin 1: %d", h.Bins[1])
	}
	if h.Bins[9] != 2 { // 0.95 and clamped 1.5
		t.Fatalf("bin 9: %d", h.Bins[9])
	}
	if math.Abs(h.Frac(0)-1.0/3) > 1e-9 {
		t.Fatalf("Frac: %v", h.Frac(0))
	}
}

func TestHistogramPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewHistogram(1, 0, 10)
}

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{-1, 0, 1, 2})
	if s.N != 4 || s.Mean != 0.5 || s.Min != -1 || s.Max != 2 {
		t.Fatalf("Summary: %+v", s)
	}
	if math.Abs(s.AbsMean-1) > 1e-9 {
		t.Fatalf("AbsMean: %v", s.AbsMean)
	}
	if s.Std <= 0 {
		t.Fatal("Std must be positive")
	}
	if Summarize(nil).N != 0 {
		t.Fatal("empty summary")
	}
}

func TestMonotone(t *testing.T) {
	if Monotone([]float64{1, 2, 3, 4}) != 1 {
		t.Fatal("increasing")
	}
	if Monotone([]float64{4, 3, 2, 1}) != -1 {
		t.Fatal("decreasing")
	}
	if Monotone([]float64{1, 5, 1, 5}) == 1 && Monotone([]float64{1, 5, 1, 5}) == -1 {
		t.Fatal("oscillating")
	}
	if Monotone([]float64{1}) != 0 {
		t.Fatal("single point")
	}
	// Broadly increasing with one dip must still read as increasing.
	if Monotone([]float64{1, 2, 1.9, 3, 4}) != 1 {
		t.Fatal("noisy increasing")
	}
}

func TestGeoMean(t *testing.T) {
	if got := GeoMean([]float64{2, 8}); math.Abs(got-4) > 1e-9 {
		t.Fatalf("GeoMean: %v", got)
	}
	if GeoMean([]float64{-1, 0}) != 0 {
		t.Fatal("non-positive entries")
	}
}

func TestMean(t *testing.T) {
	if Mean([]float64{1, 2, 3}) != 2 || Mean(nil) != 0 {
		t.Fatal("Mean")
	}
}

// Property: CDF.At is monotone non-decreasing in x.
func TestPropertyCDFMonotone(t *testing.T) {
	f := func(vs []float32, a, b float64) bool {
		if len(vs) == 0 {
			return true
		}
		c := NewCDF(vs)
		if a > b {
			a, b = b, a
		}
		return c.At(a) <= c.At(b)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: histogram total equals number of observations.
func TestPropertyHistogramTotal(t *testing.T) {
	f := func(vs []float64) bool {
		h := NewHistogram(0, 1, 8)
		for _, v := range vs {
			h.Observe(v)
		}
		var sum int64
		for _, b := range h.Bins {
			sum += b
		}
		return sum == int64(len(vs)) && h.Total() == sum
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestQuantiles(t *testing.T) {
	// Unsorted input: Quantiles must sort a copy, not the caller's slice.
	vs := []float64{5, 1, 4, 2, 3}
	qs := Quantiles(vs, 0, 0.5, 0.99, 1)
	if qs[0] != 1 || qs[1] != 3 || qs[2] != 4 || qs[3] != 5 {
		t.Fatalf("Quantiles = %v, want [1 3 4 5]", qs)
	}
	if vs[0] != 5 {
		t.Fatal("Quantiles mutated its input")
	}
	if got := Quantiles(nil, 0.5, 0.99); got[0] != 0 || got[1] != 0 {
		t.Fatalf("empty input: %v, want zeros", got)
	}
	if got := Quantiles([]float64{7}, 0, 0.5, 1); got[0] != 7 || got[1] != 7 || got[2] != 7 {
		t.Fatalf("single element: %v, want [7 7 7]", got)
	}
	// Out-of-range q clamps to the extremes instead of indexing out.
	if got := Quantiles([]float64{1, 2, 3}, -0.5, 1.5); got[0] != 1 || got[1] != 3 {
		t.Fatalf("clamped q: %v, want [1 3]", got)
	}
}

// TestQuantilesNaNFree pins the NaN part of the contract: NaN samples
// are dropped before ranking, so quantiles over any finite data stay
// finite, and an all-NaN window degrades to the empty case (zeros).
func TestQuantilesNaNFree(t *testing.T) {
	nan := math.NaN()
	got := Quantiles([]float64{nan, 3, nan, 1, 2, nan}, 0, 0.5, 1)
	if got[0] != 1 || got[1] != 2 || got[2] != 3 {
		t.Fatalf("NaN-laced input: %v, want [1 2 3]", got)
	}
	for i, v := range Quantiles([]float64{nan, nan}, 0.5, 0.99) {
		if math.IsNaN(v) || v != 0 {
			t.Fatalf("all-NaN input, q[%d] = %v, want 0", i, v)
		}
	}
}

// Property: Quantiles output is always NaN-free and non-decreasing in q.
func TestPropertyQuantilesNaNFree(t *testing.T) {
	f := func(vs []float64, a, b float64) bool {
		if math.IsNaN(a) {
			a = 0
		}
		if math.IsNaN(b) {
			b = 0
		}
		if a > b {
			a, b = b, a
		}
		qs := Quantiles(vs, a, b)
		if math.IsNaN(qs[0]) || math.IsNaN(qs[1]) {
			return false
		}
		return qs[0] <= qs[1]
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
