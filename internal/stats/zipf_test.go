package stats

import (
	"math"
	"testing"
)

func TestZipfProbabilities(t *testing.T) {
	z := NewZipf(4, 1.0)
	// Weights 1, 1/2, 1/3, 1/4 → total 25/12.
	total := 1.0 + 0.5 + 1.0/3 + 0.25
	for k, want := range []float64{1, 0.5, 1.0 / 3, 0.25} {
		if got := z.P(k); math.Abs(got-want/total) > 1e-12 {
			t.Errorf("P(%d) = %v, want %v", k, got, want/total)
		}
	}
	if z.P(-1) != 0 || z.P(4) != 0 {
		t.Error("out-of-range rank has non-zero probability")
	}
	if z.N() != 4 {
		t.Errorf("N = %d, want 4", z.N())
	}
}

func TestZipfRankInverseCDF(t *testing.T) {
	z := NewZipf(3, 1.1)
	// The CDF edges must map exactly: u just below cum[k] → rank k.
	if z.Rank(0) != 0 {
		t.Error("Rank(0) != 0")
	}
	if z.Rank(z.cum[0]-1e-12) != 0 {
		t.Error("u just below cum[0] should land on rank 0")
	}
	if z.Rank(z.cum[0]) != 1 {
		t.Error("u == cum[0] should land on rank 1 (cum[k] > u rule)")
	}
	if z.Rank(0.999999) != 2 {
		t.Error("u near 1 should land on the last rank")
	}
	// Clamps.
	if z.Rank(-0.5) != 0 || z.Rank(1) != 2 || z.Rank(math.NaN()) != 0 {
		t.Error("edge draws did not clamp")
	}
}

// TestZipfSkewMonotone checks the defining property: lower ranks are
// strictly hotter, and a larger exponent concentrates more mass on the
// head.
func TestZipfSkewMonotone(t *testing.T) {
	z := NewZipf(64, 1.1)
	for k := 1; k < z.N(); k++ {
		if z.P(k) >= z.P(k-1) {
			t.Fatalf("P(%d)=%v not below P(%d)=%v", k, z.P(k), k-1, z.P(k-1))
		}
	}
	flat := NewZipf(64, 0.5)
	if z.P(0) <= flat.P(0) {
		t.Fatalf("s=1.1 head mass %v not above s=0.5 head mass %v", z.P(0), flat.P(0))
	}
	// Sampled frequencies follow the CDF: a uniform grid of draws lands
	// each rank a number of times proportional to its probability.
	counts := make([]int, z.N())
	const draws = 100000
	for i := 0; i < draws; i++ {
		counts[z.Rank((float64(i)+0.5)/draws)]++
	}
	for k := 0; k < 4; k++ {
		got := float64(counts[k]) / draws
		if math.Abs(got-z.P(k)) > 2e-5+1.0/draws {
			t.Errorf("rank %d sampled at %v, want %v", k, got, z.P(k))
		}
	}
}

func TestZipfPanicsOnEmpty(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewZipf(0, 1) did not panic")
		}
	}()
	NewZipf(0, 1)
}
