// Package stats provides the small statistical toolkit the experiment
// harnesses use: empirical CDFs over absolute values (paper Fig. 6),
// fixed-bin histograms, and series summaries (paper Fig. 8).
package stats

import (
	"fmt"
	"math"
	"sort"
)

// CDF is an empirical cumulative distribution over absolute values.
type CDF struct {
	sorted []float64 // ascending |v|
}

// NewCDF builds a CDF from the absolute values of vs.
func NewCDF(vs []float32) *CDF {
	s := make([]float64, len(vs))
	for i, v := range vs {
		s[i] = math.Abs(float64(v))
	}
	sort.Float64s(s)
	return &CDF{sorted: s}
}

// Merge combines another sample set into the CDF.
func (c *CDF) Merge(vs []float32) {
	for _, v := range vs {
		c.sorted = append(c.sorted, math.Abs(float64(v)))
	}
	sort.Float64s(c.sorted)
}

// N returns the sample count.
func (c *CDF) N() int { return len(c.sorted) }

// At returns P(|v| ≤ x).
func (c *CDF) At(x float64) float64 {
	if len(c.sorted) == 0 {
		return 0
	}
	idx := sort.SearchFloat64s(c.sorted, math.Nextafter(x, math.Inf(1)))
	return float64(idx) / float64(len(c.sorted))
}

// Quantile returns the q-th quantile (q in [0,1]).
func (c *CDF) Quantile(q float64) float64 {
	if len(c.sorted) == 0 {
		return 0
	}
	if q <= 0 {
		return c.sorted[0]
	}
	if q >= 1 {
		return c.sorted[len(c.sorted)-1]
	}
	idx := int(q * float64(len(c.sorted)-1))
	return c.sorted[idx]
}

// Curve samples the CDF at n+1 evenly spaced points of [0, hi] — the
// plot series of Fig. 6.
func (c *CDF) Curve(hi float64, n int) []Point {
	pts := make([]Point, 0, n+1)
	for i := 0; i <= n; i++ {
		x := hi * float64(i) / float64(n)
		pts = append(pts, Point{X: x, Y: c.At(x)})
	}
	return pts
}

// Point is one (x, y) sample of a plotted series.
type Point struct{ X, Y float64 }

// Histogram counts values into equal-width bins over [lo, hi); values
// outside clamp into the edge bins.
type Histogram struct {
	Lo, Hi float64
	Bins   []int64
	total  int64
}

// NewHistogram creates a histogram with n bins over [lo, hi).
func NewHistogram(lo, hi float64, n int) *Histogram {
	if n <= 0 || hi <= lo {
		panic(fmt.Sprintf("stats: bad histogram [%v,%v)x%d", lo, hi, n))
	}
	return &Histogram{Lo: lo, Hi: hi, Bins: make([]int64, n)}
}

// Observe adds a value.
func (h *Histogram) Observe(v float64) {
	idx := int((v - h.Lo) / (h.Hi - h.Lo) * float64(len(h.Bins)))
	if idx < 0 {
		idx = 0
	}
	if idx >= len(h.Bins) {
		idx = len(h.Bins) - 1
	}
	h.Bins[idx]++
	h.total++
}

// Total returns the observation count.
func (h *Histogram) Total() int64 { return h.total }

// Frac returns the fraction of observations in bin i.
func (h *Histogram) Frac(i int) float64 {
	if h.total == 0 {
		return 0
	}
	return float64(h.Bins[i]) / float64(h.total)
}

// Summary holds the moments of a sample.
type Summary struct {
	N         int
	Mean, Std float64
	Min, Max  float64
	AbsMean   float64
}

// Summarize computes a Summary of vs.
func Summarize(vs []float64) Summary {
	s := Summary{N: len(vs)}
	if s.N == 0 {
		return s
	}
	s.Min, s.Max = vs[0], vs[0]
	var sum, sumAbs float64
	for _, v := range vs {
		sum += v
		sumAbs += math.Abs(v)
		if v < s.Min {
			s.Min = v
		}
		if v > s.Max {
			s.Max = v
		}
	}
	s.Mean = sum / float64(s.N)
	s.AbsMean = sumAbs / float64(s.N)
	var sq float64
	for _, v := range vs {
		d := v - s.Mean
		sq += d * d
	}
	s.Std = math.Sqrt(sq / float64(s.N))
	return s
}

// Monotone classifies a series' trend: +1 broadly increasing, −1
// broadly decreasing, 0 neither (uses the sign of the endpoints' slope
// with a majority-of-steps confirmation) — how the Fig. 8 harness
// asserts the gradient-magnitude direction.
func Monotone(vs []float64) int {
	if len(vs) < 2 {
		return 0
	}
	up, down := 0, 0
	for i := 1; i < len(vs); i++ {
		switch {
		case vs[i] > vs[i-1]:
			up++
		case vs[i] < vs[i-1]:
			down++
		}
	}
	slope := vs[len(vs)-1] - vs[0]
	switch {
	case slope > 0 && up > down:
		return 1
	case slope < 0 && down > up:
		return -1
	}
	return 0
}

// GeoMean returns the geometric mean of positive values (used for the
// speedup averages of Fig. 15; non-positive entries are skipped).
func GeoMean(vs []float64) float64 {
	var logSum float64
	n := 0
	for _, v := range vs {
		if v <= 0 {
			continue
		}
		logSum += math.Log(v)
		n++
	}
	if n == 0 {
		return 0
	}
	return math.Exp(logSum / float64(n))
}

// Quantiles returns the q-th quantiles of vs (nearest-rank on a sorted
// copy) in one sort pass — the p50/p99 export of the telemetry layer
// and the serving /statz endpoint.
//
// Contract: vs is never mutated; an empty sample yields all zeros; a
// single sample yields that value for every q; q is clamped to [0, 1]
// (q≤0 → minimum, q≥1 → maximum); NaN observations are dropped before
// ranking, so the output is NaN-free whenever any finite sample exists
// (all-NaN input degrades to the empty case). NaN would otherwise
// leave sort.Float64s order unspecified and poison every quantile.
func Quantiles(vs []float64, qs ...float64) []float64 {
	out := make([]float64, len(qs))
	sorted := make([]float64, 0, len(vs))
	for _, v := range vs {
		if !math.IsNaN(v) {
			sorted = append(sorted, v)
		}
	}
	if len(sorted) == 0 {
		return out
	}
	sort.Float64s(sorted)
	for i, q := range qs {
		switch {
		case q >= 1:
			out[i] = sorted[len(sorted)-1]
		case q > 0: // finite (0,1); NaN q falls through to the minimum
			out[i] = sorted[int(q*float64(len(sorted)-1))]
		default:
			out[i] = sorted[0]
		}
	}
	return out
}

// Zipf is a deterministic sampler over ranks {0..n-1} with
// P(k) ∝ (k+1)^(−s): rank 0 is the hottest. It is built once (O(n))
// and sampled by inverse-CDF lookup from caller-supplied uniforms, so
// the draw sequence is exactly as reproducible as the RNG feeding it —
// the session-skew knob of the fleet load generator.
type Zipf struct {
	cum []float64 // normalized cumulative weights, cum[n-1] == 1
}

// NewZipf builds a Zipf(s) sampler over n ranks. n must be positive;
// s ≤ 0 degrades gracefully to a uniform (or inverted) weighting since
// the weights stay positive either way.
func NewZipf(n int, s float64) *Zipf {
	if n <= 0 {
		panic(fmt.Sprintf("stats: Zipf over %d ranks", n))
	}
	cum := make([]float64, n)
	total := 0.0
	for k := 0; k < n; k++ {
		total += math.Pow(float64(k+1), -s)
		cum[k] = total
	}
	for k := range cum {
		cum[k] /= total
	}
	return &Zipf{cum: cum}
}

// N returns the number of ranks.
func (z *Zipf) N() int { return len(z.cum) }

// P returns the probability of rank k.
func (z *Zipf) P(k int) float64 {
	if k < 0 || k >= len(z.cum) {
		return 0
	}
	if k == 0 {
		return z.cum[0]
	}
	return z.cum[k] - z.cum[k-1]
}

// Rank maps a uniform draw u ∈ [0, 1) to a rank by inverse CDF:
// the smallest k with cum[k] > u. Out-of-range u clamps to the edges.
func (z *Zipf) Rank(u float64) int {
	if u <= 0 || math.IsNaN(u) {
		return 0
	}
	if u >= 1 {
		return len(z.cum) - 1
	}
	k := sort.Search(len(z.cum), func(i int) bool { return z.cum[i] > u })
	if k >= len(z.cum) {
		k = len(z.cum) - 1
	}
	return k
}

// Mean returns the arithmetic mean (0 for an empty slice).
func Mean(vs []float64) float64 {
	if len(vs) == 0 {
		return 0
	}
	var s float64
	for _, v := range vs {
		s += v
	}
	return s / float64(len(vs))
}
