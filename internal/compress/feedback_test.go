package compress

import (
	"math"
	"testing"

	"etalstm/internal/rng"
	"etalstm/internal/tensor"
)

func TestEncodeIntoMatchesEncode(t *testing.T) {
	m := benchMatrix(0.65)
	want := Encode(m, 0.1)
	var dst Sparse
	got := EncodeInto(&dst, m, 0.1)
	if got != &dst {
		t.Fatal("EncodeInto must return its dst")
	}
	if got.Rows != want.Rows || got.Cols != want.Cols || got.NNZ() != want.NNZ() {
		t.Fatalf("shape/nnz mismatch: %dx%d/%d vs %dx%d/%d",
			got.Rows, got.Cols, got.NNZ(), want.Rows, want.Cols, want.NNZ())
	}
	for i := range want.Values {
		if math.Float32bits(got.Values[i]) != math.Float32bits(want.Values[i]) || got.Indices[i] != want.Indices[i] {
			t.Fatalf("pair %d: (%v,%d) vs (%v,%d)", i, got.Values[i], got.Indices[i], want.Values[i], want.Indices[i])
		}
	}
	// A second encode into the same dst reuses storage and overwrites.
	small := tensor.New(2, 2)
	small.Data = []float32{0, 5, 0, -7}
	EncodeInto(&dst, small, 1)
	if dst.NNZ() != 2 || dst.Values[0] != 5 || dst.Values[1] != -7 {
		t.Fatalf("reused dst holds %v", dst.Values)
	}
}

func TestTopKThresholdSelection(t *testing.T) {
	r := rng.New(7)
	data := make([]float32, 1000)
	for i := range data {
		data[i] = r.Uniform(-1, 1)
	}
	for _, keep := range []float64{0.01, 0.1, 0.5} {
		th, _ := TopKThreshold(data, keep, nil)
		kept := 0
		for _, v := range data {
			if v < 0 {
				v = -v
			}
			if v >= th {
				kept++
			}
		}
		want := int(keep*float64(len(data)) + 0.5)
		// Ties can keep slightly more than k, never fewer.
		if kept < want || kept > want+8 {
			t.Errorf("keep %g: selected %d of %d, want ~%d", keep, kept, len(data), want)
		}
	}
	// Degenerate cases: tiny tensors keep at least one entry; keep-all
	// drops only exact zeros.
	th, _ := TopKThreshold([]float32{0.5, -0.25, 0.125}, 0.01, nil)
	if th > 0.5 {
		t.Fatalf("min-1 floor violated: threshold %v drops everything", th)
	}
	th, _ = TopKThreshold([]float32{0.5, -0.25, 0}, 1, nil)
	if th != math.SmallestNonzeroFloat32 {
		t.Fatalf("keep-all threshold %v", th)
	}
}

// TestFeedbackConservation pins the error-feedback identity on the raw
// accumulator (the dist codec tests pin it end-to-end over the wire):
// elementwise, raw + residual_in == transmitted + residual_out exactly.
func TestFeedbackConservation(t *testing.T) {
	r := rng.New(11)
	m := tensor.New(8, 16)
	var fb Feedback
	var s Sparse
	for step := 0; step < 6; step++ {
		for i := range m.Data {
			m.Data[i] = r.Uniform(-1, 1)
		}
		resIn := append([]float32(nil), fb.Residual()...)
		fb.EncodeTopK(&s, m, 0.1)
		sent := make([]float32, len(m.Data))
		for i, idx := range s.Indices {
			sent[idx] = s.Values[i]
		}
		for i, raw := range m.Data {
			var prev float32
			if i < len(resIn) {
				prev = resIn[i]
			}
			want := raw + prev
			got := sent[i] + fb.Residual()[i]
			if math.Float32bits(want) != math.Float32bits(got) {
				t.Fatalf("step %d elem %d: raw+res_in %v != sent+res_out %v", step, i, want, got)
			}
		}
	}
}

// TestEncodeWarmPathAllocFree pins the satellite guarantee: once the
// reusable buffers have grown to the working set, neither the plain
// EncodeInto path nor the feedback top-k path allocates.
func TestEncodeWarmPathAllocFree(t *testing.T) {
	m := benchMatrix(0.65)
	var dst Sparse
	EncodeInto(&dst, m, 0.1) // warm dst
	if n := testing.AllocsPerRun(10, func() { EncodeInto(&dst, m, 0.1) }); n != 0 {
		t.Errorf("warm EncodeInto allocates %v times per run", n)
	}
	var fb Feedback
	fb.EncodeInto(&dst, m, 0.1) // warm fb.buf/fb.comp
	if n := testing.AllocsPerRun(10, func() { fb.EncodeInto(&dst, m, 0.1) }); n != 0 {
		t.Errorf("warm Feedback.EncodeInto allocates %v times per run", n)
	}
	var fbK Feedback
	fbK.EncodeTopK(&dst, m, 0.05) // warm fb.buf/fb.comp/fb.sel
	if n := testing.AllocsPerRun(10, func() { fbK.EncodeTopK(&dst, m, 0.05) }); n != 0 {
		t.Errorf("warm Feedback.EncodeTopK allocates %v times per run", n)
	}
}

func TestQuickselectAgainstSort(t *testing.T) {
	r := rng.New(3)
	for trial := 0; trial < 50; trial++ {
		n := 1 + r.Intn(64)
		a := make([]float32, n)
		for i := range a {
			// Duplicates on purpose: ties exercise the partition.
			a[i] = float32(r.Intn(8))
		}
		sorted := append([]float32(nil), a...)
		for i := 1; i < len(sorted); i++ { // insertion sort: reference
			for j := i; j > 0 && sorted[j] < sorted[j-1]; j-- {
				sorted[j], sorted[j-1] = sorted[j-1], sorted[j]
			}
		}
		i := r.Intn(n)
		if got := quickselect(append([]float32(nil), a...), i); got != sorted[i] {
			t.Fatalf("trial %d: quickselect(%v, %d) = %v, sorted says %v", trial, a, i, got, sorted[i])
		}
	}
}

// BenchmarkEncodeIntoWarm is the satellite's pinned benchmark: the
// reusable-buffer encode on the gradient-sync hot path, alloc-free once
// warm (ReportAllocs must show 0 allocs/op).
func BenchmarkEncodeIntoWarm(b *testing.B) {
	m := benchMatrix(0.65)
	var dst Sparse
	EncodeInto(&dst, m, 0.1)
	b.SetBytes(m.Bytes())
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		EncodeInto(&dst, m, 0.1)
	}
}

// BenchmarkEncodeTopKWarm measures the full per-tensor uplink cost of
// the compressed transport: residual compensation, quickselect top-k
// and encode, reusing every buffer.
func BenchmarkEncodeTopKWarm(b *testing.B) {
	m := benchMatrix(0.65)
	var fb Feedback
	var dst Sparse
	fb.EncodeTopK(&dst, m, 0.05)
	b.SetBytes(m.Bytes())
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		fb.EncodeTopK(&dst, m, 0.05)
	}
}
