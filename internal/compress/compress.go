// Package compress implements the near-zero pruning and sparse encoding
// the η-LSTM DMA module applies to BP-EW-P1 products (paper Sec. IV-A
// and Fig. 14): values whose magnitude falls below a threshold are
// dropped; survivors are stored as (value, index) pairs. The package
// also provides a bitmask codec as an ablation alternative and the
// sparsity statistics behind Fig. 6.
package compress

import (
	"fmt"
	"math"

	"etalstm/internal/tensor"
)

// DefaultThreshold is the near-zero pruning threshold the paper found
// to combine large memory savings with negligible accuracy loss
// (Sec. IV-A: "around 0.1").
const DefaultThreshold = 0.1

// Sparse is a value+index encoding of a pruned matrix: Values[i] lives
// at flat offset Indices[i] of the original Rows×Cols matrix. Indices
// are strictly increasing. This mirrors the WT data / WT index queue
// pair of the customized DMA module.
type Sparse struct {
	Rows, Cols int
	Values     []float32
	Indices    []int32
}

// Encode prunes |v| < threshold from m and returns the sparse encoding.
func Encode(m *tensor.Matrix, threshold float32) *Sparse {
	s := &Sparse{Rows: m.Rows, Cols: m.Cols}
	for i, v := range m.Data {
		av := v
		if av < 0 {
			av = -av
		}
		if av >= threshold {
			s.Values = append(s.Values, v)
			s.Indices = append(s.Indices, int32(i))
		}
	}
	return s
}

// Validate checks the structural invariants a record must hold before
// it can be decoded: matching Values/Indices lengths and strictly
// increasing indices inside the declared Rows×Cols range. Records built
// by Encode hold these by construction; records reassembled from
// external bytes (a wire payload, a fuzzer) may not.
func (s *Sparse) Validate() error {
	if s.Rows < 0 || s.Cols < 0 {
		return fmt.Errorf("compress: negative shape %dx%d", s.Rows, s.Cols)
	}
	if len(s.Values) != len(s.Indices) {
		return fmt.Errorf("compress: %d values vs %d indices", len(s.Values), len(s.Indices))
	}
	n := s.Rows * s.Cols
	prev := int32(-1)
	for _, idx := range s.Indices {
		if idx <= prev || int64(idx) >= int64(n) {
			return fmt.Errorf("compress: index %d out of order or range (%d elements)", idx, n)
		}
		prev = idx
	}
	return nil
}

// Decode reconstructs the dense matrix (pruned entries become zero).
// If dst is non-nil it is zeroed and filled in place; a shape mismatch
// between dst and the record is a programming error and panics, like
// the rest of the tensor package. A corrupt record — indices out of
// range or out of order, mismatched value/index counts — is rejected
// with an error rather than panicking, so hostile payloads cannot take
// the process down.
func (s *Sparse) Decode(dst *tensor.Matrix) (*tensor.Matrix, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	if dst == nil {
		dst = tensor.New(s.Rows, s.Cols)
	} else {
		if dst.Rows != s.Rows || dst.Cols != s.Cols {
			panic(fmt.Sprintf("compress: Decode dst %dx%d want %dx%d",
				dst.Rows, dst.Cols, s.Rows, s.Cols))
		}
		dst.Zero()
	}
	for i, idx := range s.Indices {
		dst.Data[idx] = s.Values[i]
	}
	return dst, nil
}

// MustDecode is Decode for records that are valid by construction
// (built by Encode in this process). It panics on a corrupt record.
func (s *Sparse) MustDecode(dst *tensor.Matrix) *tensor.Matrix {
	m, err := s.Decode(dst)
	if err != nil {
		panic(err)
	}
	return m
}

// NNZ returns the number of retained (nonzero) entries.
func (s *Sparse) NNZ() int { return len(s.Values) }

// Sparsity returns the pruned fraction in [0, 1].
func (s *Sparse) Sparsity() float64 {
	total := s.Rows * s.Cols
	if total == 0 {
		return 0
	}
	return 1 - float64(len(s.Values))/float64(total)
}

// Bytes returns the encoded size: 4 B per value + 2 B per index (the
// DMA stores 16-bit indices relative to a 64 Ki-element tile; larger
// matrices are tiled, adding one 4 B tile header per 64 Ki elements).
func (s *Sparse) Bytes() int64 {
	const tileElems = 1 << 16
	tiles := (int64(s.Rows)*int64(s.Cols) + tileElems - 1) / tileElems
	return int64(len(s.Values))*4 + int64(len(s.Indices))*2 + tiles*4
}

// CompressionRatio returns encoded bytes / dense bytes (lower is
// better; 1.0 means no saving).
func (s *Sparse) CompressionRatio() float64 {
	dense := int64(s.Rows) * int64(s.Cols) * 4
	if dense == 0 {
		return 1
	}
	return float64(s.Bytes()) / float64(dense)
}

// Bitmask is the ablation codec: one presence bit per element plus the
// packed surviving values. It beats value+index when sparsity is below
// ~50 % and loses above it; the ablation bench quantifies the crossover.
type Bitmask struct {
	Rows, Cols int
	Mask       []uint64 // ceil(Rows*Cols/64) words, bit i = element i kept
	Values     []float32
}

// EncodeBitmask prunes |v| < threshold and returns the bitmask encoding.
func EncodeBitmask(m *tensor.Matrix, threshold float32) *Bitmask {
	n := m.Rows * m.Cols
	b := &Bitmask{Rows: m.Rows, Cols: m.Cols, Mask: make([]uint64, (n+63)/64)}
	for i, v := range m.Data {
		av := v
		if av < 0 {
			av = -av
		}
		if av >= threshold {
			b.Mask[i/64] |= 1 << (uint(i) % 64)
			b.Values = append(b.Values, v)
		}
	}
	return b
}

// Validate checks the structural invariants a bitmask record must hold
// before decoding: a mask sized for the declared shape, no presence
// bits beyond it, and exactly one packed value per set bit.
func (b *Bitmask) Validate() error {
	if b.Rows < 0 || b.Cols < 0 {
		return fmt.Errorf("compress: negative shape %dx%d", b.Rows, b.Cols)
	}
	n := b.Rows * b.Cols
	if len(b.Mask) != (n+63)/64 {
		return fmt.Errorf("compress: mask %d words for %d elements", len(b.Mask), n)
	}
	set := 0
	for i, w := range b.Mask {
		if i == len(b.Mask)-1 && n%64 != 0 && w>>(uint(n)%64) != 0 {
			return fmt.Errorf("compress: mask bits set beyond %d elements", n)
		}
		for ; w != 0; w &= w - 1 {
			set++
		}
	}
	if set != len(b.Values) {
		return fmt.Errorf("compress: %d mask bits vs %d values", set, len(b.Values))
	}
	return nil
}

// Decode reconstructs the dense matrix. Like Sparse.Decode it panics on
// a dst shape mismatch (programming error) but rejects corrupt records
// — wrong mask length, stray bits, value-count mismatch — with an
// error.
func (b *Bitmask) Decode(dst *tensor.Matrix) (*tensor.Matrix, error) {
	if err := b.Validate(); err != nil {
		return nil, err
	}
	if dst == nil {
		dst = tensor.New(b.Rows, b.Cols)
	} else {
		if dst.Rows != b.Rows || dst.Cols != b.Cols {
			panic("compress: Bitmask.Decode dst shape")
		}
		dst.Zero()
	}
	vi := 0
	n := b.Rows * b.Cols
	for i := 0; i < n; i++ {
		if b.Mask[i/64]&(1<<(uint(i)%64)) != 0 {
			dst.Data[i] = b.Values[vi]
			vi++
		}
	}
	return dst, nil
}

// MustDecode is Decode for records that are valid by construction; it
// panics on a corrupt record.
func (b *Bitmask) MustDecode(dst *tensor.Matrix) *tensor.Matrix {
	m, err := b.Decode(dst)
	if err != nil {
		panic(err)
	}
	return m
}

// Bytes returns the encoded size: mask words + packed values.
func (b *Bitmask) Bytes() int64 {
	return int64(len(b.Mask))*8 + int64(len(b.Values))*4
}

// PruneError returns the max-absolute and root-mean-square error the
// pruning introduced relative to the original matrix — the quantity
// bounded by the threshold (maxErr < threshold by construction).
func PruneError(orig *tensor.Matrix, s *Sparse) (maxErr float64, rmse float64) {
	dec := s.MustDecode(nil)
	var sq float64
	for i, v := range orig.Data {
		d := math.Abs(float64(v) - float64(dec.Data[i]))
		if d > maxErr {
			maxErr = d
		}
		sq += d * d
	}
	if n := len(orig.Data); n > 0 {
		rmse = math.Sqrt(sq / float64(n))
	}
	return maxErr, rmse
}

// Stats summarizes the compressibility of a matrix set at a threshold —
// the aggregate behind Fig. 6's "fraction below 0.1" comparison.
type Stats struct {
	Elements    int64
	Pruned      int64
	DenseBytes  int64
	SparseBytes int64
}

// Measure accumulates compression stats for ms at threshold.
func Measure(ms []*tensor.Matrix, threshold float32) Stats {
	var st Stats
	for _, m := range ms {
		s := Encode(m, threshold)
		st.Elements += int64(m.Size())
		st.Pruned += int64(m.Size() - s.NNZ())
		st.DenseBytes += m.Bytes()
		st.SparseBytes += s.Bytes()
	}
	return st
}

// PrunedFrac returns the pruned fraction.
func (s Stats) PrunedFrac() float64 {
	if s.Elements == 0 {
		return 0
	}
	return float64(s.Pruned) / float64(s.Elements)
}

// Ratio returns sparse bytes / dense bytes.
func (s Stats) Ratio() float64 {
	if s.DenseBytes == 0 {
		return 1
	}
	return float64(s.SparseBytes) / float64(s.DenseBytes)
}
