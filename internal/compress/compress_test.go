package compress

import (
	"math"
	"testing"
	"testing/quick"

	"etalstm/internal/rng"
	"etalstm/internal/tensor"
)

func TestEncodeDecodeRoundtrip(t *testing.T) {
	m := tensor.NewFromData(2, 3, []float32{0.5, 0.05, -0.3, 0, 0.09, -0.8})
	s := Encode(m, 0.1)
	if s.NNZ() != 3 {
		t.Fatalf("NNZ: %d", s.NNZ())
	}
	d := s.MustDecode(nil)
	want := []float32{0.5, 0, -0.3, 0, 0, -0.8}
	for i, v := range want {
		if d.Data[i] != v {
			t.Fatalf("decode[%d]=%v want %v", i, d.Data[i], v)
		}
	}
}

func TestEncodeKeepsThresholdBoundary(t *testing.T) {
	m := tensor.NewFromData(1, 2, []float32{0.1, -0.1})
	s := Encode(m, 0.1)
	if s.NNZ() != 2 {
		t.Fatal("values exactly at threshold must be kept")
	}
}

func TestDecodeIntoDst(t *testing.T) {
	m := tensor.NewFromData(1, 4, []float32{1, 0, 2, 0})
	s := Encode(m, 0.5)
	dst := tensor.New(1, 4)
	dst.Fill(9)
	s.MustDecode(dst)
	if dst.Data[1] != 0 || dst.Data[0] != 1 {
		t.Fatalf("Decode into dst: %v", dst.Data)
	}
}

func TestDecodeShapePanic(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Encode(tensor.New(2, 2), 0.1).Decode(tensor.New(3, 3))
}

func TestSparsity(t *testing.T) {
	m := tensor.New(10, 10) // all zero
	s := Encode(m, 0.1)
	if s.Sparsity() != 1 {
		t.Fatalf("all-zero sparsity: %v", s.Sparsity())
	}
	m.Fill(1)
	s = Encode(m, 0.1)
	if s.Sparsity() != 0 {
		t.Fatalf("dense sparsity: %v", s.Sparsity())
	}
}

func TestBytesAccounting(t *testing.T) {
	m := tensor.New(10, 10)
	m.Fill(1)
	s := Encode(m, 0.1)
	// 100 values ×4 + 100 indices ×2 + 1 tile header ×4
	if s.Bytes() != 100*4+100*2+4 {
		t.Fatalf("Bytes: %d", s.Bytes())
	}
	if r := s.CompressionRatio(); r <= 1 {
		t.Fatalf("dense data must not 'compress': ratio %v", r)
	}
}

func TestCompressionWinsAtHighSparsity(t *testing.T) {
	// 65% below threshold (the paper's P1 distribution) must compress.
	r := rng.New(1)
	m := tensor.New(100, 100)
	for i := range m.Data {
		if r.Float64() < 0.65 {
			m.Data[i] = r.Uniform(-0.05, 0.05)
		} else {
			m.Data[i] = r.Uniform(0.2, 1)
		}
	}
	s := Encode(m, 0.1)
	if s.Sparsity() < 0.6 {
		t.Fatalf("expected ~0.65 sparsity, got %v", s.Sparsity())
	}
	if s.CompressionRatio() > 0.6 {
		t.Fatalf("expected <0.6 ratio at 65%% sparsity, got %v", s.CompressionRatio())
	}
}

func TestPruneErrorBounded(t *testing.T) {
	r := rng.New(2)
	m := tensor.New(50, 50)
	m.RandInit(r, 1)
	s := Encode(m, 0.1)
	maxErr, rmse := PruneError(m, s)
	if maxErr >= 0.1 {
		t.Fatalf("prune error %v must stay below threshold", maxErr)
	}
	if rmse > maxErr {
		t.Fatal("rmse cannot exceed max error")
	}
}

func TestBitmaskRoundtrip(t *testing.T) {
	r := rng.New(3)
	m := tensor.New(9, 13)
	m.RandInit(r, 1)
	b := EncodeBitmask(m, 0.1)
	s := Encode(m, 0.1)
	db := b.MustDecode(nil)
	ds := s.MustDecode(nil)
	if !db.Equal(ds, 0) {
		t.Fatal("bitmask and sparse decodes disagree")
	}
}

func TestBitmaskBytesCrossover(t *testing.T) {
	// At low sparsity bitmask wins; at high sparsity value+index wins.
	dense := tensor.New(64, 64)
	dense.Fill(1)
	bs := EncodeBitmask(dense, 0.1)
	ss := Encode(dense, 0.1)
	if bs.Bytes() >= ss.Bytes() {
		t.Fatalf("bitmask must win on dense data: %d vs %d", bs.Bytes(), ss.Bytes())
	}
	sparse := tensor.New(64, 64) // all pruned
	sparse.Data[0] = 1
	bs = EncodeBitmask(sparse, 0.1)
	ss = Encode(sparse, 0.1)
	if ss.Bytes() >= bs.Bytes() {
		t.Fatalf("value+index must win on sparse data: %d vs %d", ss.Bytes(), bs.Bytes())
	}
}

func TestMeasureStats(t *testing.T) {
	a := tensor.New(10, 10)
	a.Fill(1)
	b := tensor.New(10, 10) // all zero
	st := Measure([]*tensor.Matrix{a, b}, 0.1)
	if st.Elements != 200 || st.Pruned != 100 {
		t.Fatalf("Measure: %+v", st)
	}
	if math.Abs(st.PrunedFrac()-0.5) > 1e-9 {
		t.Fatalf("PrunedFrac: %v", st.PrunedFrac())
	}
	if st.Ratio() <= 0 || st.Ratio() > 1.6 {
		t.Fatalf("Ratio: %v", st.Ratio())
	}
}

func TestEmptyStats(t *testing.T) {
	var st Stats
	if st.PrunedFrac() != 0 || st.Ratio() != 1 {
		t.Fatal("empty stats defaults")
	}
}

// Property: decode(encode(m)) differs from m only at pruned positions,
// and every surviving value is exact.
func TestPropertyRoundtripExactness(t *testing.T) {
	f := func(seed uint64) bool {
		r := rng.New(seed)
		m := tensor.New(7, 11)
		m.RandInit(r, 1)
		s := Encode(m, 0.1)
		d := s.MustDecode(nil)
		for i, v := range m.Data {
			av := v
			if av < 0 {
				av = -av
			}
			if av >= 0.1 {
				if d.Data[i] != v {
					return false
				}
			} else if d.Data[i] != 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: indices are strictly increasing (DMA queue ordering).
func TestPropertyIndicesSorted(t *testing.T) {
	f := func(seed uint64) bool {
		r := rng.New(seed)
		m := tensor.New(5, 5)
		m.RandInit(r, 1)
		s := Encode(m, 0.3)
		for i := 1; i < len(s.Indices); i++ {
			if s.Indices[i] <= s.Indices[i-1] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
