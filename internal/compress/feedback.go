// Gradient-traffic extensions of the MS1 codec: alloc-free encoding into
// reusable buffers, top-k threshold selection, and an error-feedback
// accumulator that makes lossy gradient compression convergence-safe
// (Deep-Gradient-Compression style: dropped residuals are carried
// forward, never discarded — cf. Zhu et al., arXiv:1806.00512, on how
// much sparsification LSTM backward passes tolerate).
package compress

import (
	"math"

	"etalstm/internal/tensor"
)

// EncodeInto is the reusable-buffer variant of Encode: it prunes
// |v| < threshold from m into dst, reusing dst's Values/Indices storage
// so the warm path allocates nothing once the slices have grown to the
// working sparsity. dst must be non-nil; it is returned for chaining.
func EncodeInto(dst *Sparse, m *tensor.Matrix, threshold float32) *Sparse {
	dst.Rows, dst.Cols = m.Rows, m.Cols
	dst.Values = dst.Values[:0]
	dst.Indices = dst.Indices[:0]
	for i, v := range m.Data {
		av := v
		if av < 0 {
			av = -av
		}
		if av >= threshold {
			dst.Values = append(dst.Values, v)
			dst.Indices = append(dst.Indices, int32(i))
		}
	}
	return dst
}

// TopKThreshold returns a pruning threshold that keeps approximately
// the keepFrac largest-magnitude entries of data: the magnitude of the
// k-th largest |value| (k = max(1, round(keepFrac·len))), found by
// quickselect over scratch. Encoding with the returned threshold keeps
// every entry at least that large — ties can retain slightly more than
// k. A zero selection (k-th largest magnitude is 0) degrades to the
// smallest positive float so exact zeros are always dropped. scratch is
// reused when large enough; the possibly-grown buffer is returned so
// callers can keep the selection alloc-free across steps.
func TopKThreshold(data []float32, keepFrac float64, scratch []float32) (float32, []float32) {
	n := len(data)
	if n == 0 {
		return math.SmallestNonzeroFloat32, scratch
	}
	k := int(keepFrac*float64(n) + 0.5)
	if k < 1 {
		k = 1
	}
	if k >= n {
		// Keep everything except exact zeros.
		return math.SmallestNonzeroFloat32, scratch
	}
	if cap(scratch) < n {
		scratch = make([]float32, n)
	}
	scratch = scratch[:n]
	for i, v := range data {
		if v < 0 {
			v = -v
		}
		scratch[i] = v
	}
	th := quickselect(scratch, n-k) // k-th largest = (n-k)-th smallest
	if th <= 0 {
		th = math.SmallestNonzeroFloat32
	}
	return th, scratch
}

// quickselect returns the element that would sit at index i of the
// sorted slice, partitioning a in place (median-of-three pivots keep
// sorted and constant inputs off the quadratic path).
func quickselect(a []float32, i int) float32 {
	lo, hi := 0, len(a)-1
	for lo < hi {
		p := partition(a, lo, hi)
		switch {
		case i < p:
			hi = p - 1
		case i > p:
			lo = p + 1
		default:
			return a[p]
		}
	}
	return a[lo]
}

func partition(a []float32, lo, hi int) int {
	mid := lo + (hi-lo)/2
	if a[mid] < a[lo] {
		a[mid], a[lo] = a[lo], a[mid]
	}
	if a[hi] < a[lo] {
		a[hi], a[lo] = a[lo], a[hi]
	}
	if a[hi] < a[mid] {
		a[hi], a[mid] = a[mid], a[hi]
	}
	pivot := a[mid]
	a[mid], a[hi] = a[hi], a[mid]
	j := lo
	for i := lo; i < hi; i++ {
		if a[i] < pivot {
			a[i], a[j] = a[j], a[i]
			j++
		}
	}
	a[j], a[hi] = a[hi], a[j]
	return j
}

// Feedback is a per-tensor error-feedback accumulator for lossy
// gradient compression: each encode first adds the residual the
// previous encodes dropped, then stores whatever falls below the
// threshold back into the buffer. Gradient mass is therefore never
// lost, only delayed — elementwise, for every step,
//
//	raw + residual_in == transmitted + residual_out
//
// exactly (each element takes one float32 addition and then lands
// wholly on one side), so the cumulative transmitted signal converges
// to the cumulative raw signal.
//
// One Feedback instance belongs to one tensor of one replica's gradient
// set; it sizes itself lazily to the first encode and is not safe for
// concurrent use.
type Feedback struct {
	buf  []float32 // dropped residuals, same flat shape as the tensor
	comp []float32 // compensated values scratch
	sel  []float32 // quickselect scratch (top-k only)
}

// Residual exposes the accumulated dropped values (aliased, same flat
// layout as the tensor) — test and introspection surface.
func (f *Feedback) Residual() []float32 { return f.buf }

func (f *Feedback) ensure(n int) {
	if cap(f.buf) < n {
		grown := make([]float32, n)
		copy(grown, f.buf)
		f.buf = grown
	}
	f.buf = f.buf[:n]
	if cap(f.comp) < n {
		f.comp = make([]float32, n)
	}
	f.comp = f.comp[:n]
}

// EncodeInto compensates m with the accumulated residual, encodes the
// compensated values at the fixed threshold into dst (reusing dst's
// storage), and retains every dropped compensated value in the
// residual buffer. m itself is not modified.
func (f *Feedback) EncodeInto(dst *Sparse, m *tensor.Matrix, threshold float32) *Sparse {
	f.ensure(len(m.Data))
	for i, v := range m.Data {
		f.comp[i] = v + f.buf[i]
	}
	return f.encodeComp(dst, m, threshold)
}

// EncodeTopK compensates m with the accumulated residual, keeps the
// keepFrac largest-magnitude compensated entries (threshold via
// TopKThreshold), and retains the rest in the residual buffer.
func (f *Feedback) EncodeTopK(dst *Sparse, m *tensor.Matrix, keepFrac float64) *Sparse {
	f.ensure(len(m.Data))
	for i, v := range m.Data {
		f.comp[i] = v + f.buf[i]
	}
	th, sel := TopKThreshold(f.comp, keepFrac, f.sel)
	f.sel = sel
	return f.encodeComp(dst, m, th)
}

// encodeComp encodes f.comp into dst and splits each element between
// the encoding (kept) and the residual buffer (dropped).
func (f *Feedback) encodeComp(dst *Sparse, m *tensor.Matrix, threshold float32) *Sparse {
	dst.Rows, dst.Cols = m.Rows, m.Cols
	dst.Values = dst.Values[:0]
	dst.Indices = dst.Indices[:0]
	for i, v := range f.comp {
		av := v
		if av < 0 {
			av = -av
		}
		if av >= threshold {
			dst.Values = append(dst.Values, v)
			dst.Indices = append(dst.Indices, int32(i))
			f.buf[i] = 0
		} else {
			f.buf[i] = v
		}
	}
	return dst
}
