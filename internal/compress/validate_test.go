package compress

import (
	"encoding/binary"
	"math"
	"testing"

	"etalstm/internal/tensor"
)

// Negative tests for the decode hardening: records reassembled from
// untrusted bytes must come back as errors, never panics.

func TestDecodeRejectsOutOfRangeIndex(t *testing.T) {
	s := &Sparse{Rows: 2, Cols: 2, Values: []float32{1}, Indices: []int32{4}}
	if _, err := s.Decode(nil); err == nil {
		t.Fatal("index beyond Rows*Cols must be rejected")
	}
	s.Indices[0] = -1
	if _, err := s.Decode(nil); err == nil {
		t.Fatal("negative index must be rejected")
	}
}

func TestDecodeRejectsUnsortedIndices(t *testing.T) {
	s := &Sparse{Rows: 1, Cols: 4, Values: []float32{1, 2}, Indices: []int32{2, 1}}
	if _, err := s.Decode(nil); err == nil {
		t.Fatal("out-of-order indices must be rejected")
	}
	s.Indices = []int32{2, 2}
	if _, err := s.Decode(nil); err == nil {
		t.Fatal("duplicate indices must be rejected")
	}
}

func TestDecodeRejectsCountMismatch(t *testing.T) {
	s := &Sparse{Rows: 1, Cols: 4, Values: []float32{1, 2}, Indices: []int32{0}}
	if _, err := s.Decode(nil); err == nil {
		t.Fatal("values/indices length mismatch must be rejected")
	}
}

func TestBitmaskDecodeRejectsCorrupt(t *testing.T) {
	b := &Bitmask{Rows: 1, Cols: 4, Mask: []uint64{}, Values: nil}
	if _, err := b.Decode(nil); err == nil {
		t.Fatal("short mask must be rejected")
	}
	b = &Bitmask{Rows: 1, Cols: 4, Mask: []uint64{1 << 10}, Values: []float32{1}}
	if _, err := b.Decode(nil); err == nil {
		t.Fatal("mask bits beyond the shape must be rejected")
	}
	b = &Bitmask{Rows: 1, Cols: 4, Mask: []uint64{0b11}, Values: []float32{1}}
	if _, err := b.Decode(nil); err == nil {
		t.Fatal("mask/value count mismatch must be rejected")
	}
}

func TestValidateAcceptsEncoded(t *testing.T) {
	m := tensor.NewFromData(2, 3, []float32{0.5, 0.01, -0.3, 0, 0.09, -0.8})
	if err := Encode(m, 0.1).Validate(); err != nil {
		t.Fatalf("encoded record must validate: %v", err)
	}
	if err := EncodeBitmask(m, 0.1).Validate(); err != nil {
		t.Fatalf("encoded bitmask must validate: %v", err)
	}
}

// FuzzSparseDecode reassembles hostile Sparse and Bitmask records from
// raw bytes — the FrameDecode-style attack surface, since a wire peer
// controls every field — and checks that decode either succeeds with
// scatter semantics or rejects the record with an error. Any panic
// fails the fuzzer.
func FuzzSparseDecode(f *testing.F) {
	f.Add([]byte{2, 2, 0, 0, 0, 0x80, 0x3f})          // valid single pair
	f.Add([]byte{2, 2, 9, 0, 0, 0x80, 0x3f})          // index out of range
	f.Add([]byte{1, 4, 0x82, 1, 2, 3, 4})             // negative index
	f.Add([]byte{1, 4, 2, 0, 0, 0, 0, 1, 0, 0, 0, 0}) // out of order
	f.Fuzz(func(t *testing.T, raw []byte) {
		if len(raw) < 2 || len(raw) > 2048 {
			return
		}
		rows, cols := int(raw[0])%9, int(raw[1])%9
		raw = raw[2:]
		s := &Sparse{Rows: rows, Cols: cols}
		for len(raw) >= 5 {
			s.Indices = append(s.Indices, int32(int8(raw[0])))
			s.Values = append(s.Values, math.Float32frombits(binary.LittleEndian.Uint32(raw[1:])))
			raw = raw[5:]
		}
		if len(raw) > 0 && raw[0]&1 == 1 && len(s.Values) > 0 {
			s.Values = s.Values[:len(s.Values)-1] // sometimes desync the counts
		}
		m, err := s.Decode(nil)
		if err != nil {
			if s.Validate() == nil {
				t.Fatal("Decode errored on a record Validate accepts")
			}
		} else {
			if m.Rows != rows || m.Cols != cols {
				t.Fatalf("decoded shape %dx%d", m.Rows, m.Cols)
			}
			for i, idx := range s.Indices {
				if m.Data[idx] != s.Values[i] && !math.IsNaN(float64(s.Values[i])) {
					t.Fatalf("scatter mismatch at %d", idx)
				}
			}
		}

		// Rebuild the same pairs as a bitmask with an arbitrary mask.
		bm := &Bitmask{Rows: rows, Cols: cols, Values: s.Values}
		words := (rows*cols + 63) / 64
		if len(s.Indices)%3 == 0 {
			words++ // sometimes the wrong mask length
		}
		seed := uint64(len(s.Values)) * 0x9e3779b97f4a7c15
		for _, idx := range s.Indices {
			seed = seed*131 + uint64(uint32(idx))
		}
		for w := 0; w < words; w++ {
			seed = seed*6364136223846793005 + 1442695040888963407
			bm.Mask = append(bm.Mask, seed)
		}
		if _, err := bm.Decode(nil); err == nil && bm.Validate() != nil {
			t.Fatal("Bitmask.Decode accepted a record Validate rejects")
		}
	})
}
