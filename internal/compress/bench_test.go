package compress

import (
	"testing"

	"etalstm/internal/rng"
	"etalstm/internal/tensor"
)

func benchMatrix(sparsity float64) *tensor.Matrix {
	r := rng.New(1)
	m := tensor.New(128, 1024)
	for i := range m.Data {
		if r.Float64() < sparsity {
			m.Data[i] = r.Uniform(-0.05, 0.05)
		} else {
			m.Data[i] = r.Uniform(0.2, 1)
		}
	}
	return m
}

func BenchmarkEncodeSparse65(b *testing.B) {
	m := benchMatrix(0.65)
	b.SetBytes(m.Bytes())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Encode(m, 0.1)
	}
}

func BenchmarkDecodeSparse65(b *testing.B) {
	m := benchMatrix(0.65)
	s := Encode(m, 0.1)
	dst := tensor.New(m.Rows, m.Cols)
	b.SetBytes(m.Bytes())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.MustDecode(dst)
	}
}

func BenchmarkEncodeBitmask65(b *testing.B) {
	m := benchMatrix(0.65)
	b.SetBytes(m.Bytes())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		EncodeBitmask(m, 0.1)
	}
}
