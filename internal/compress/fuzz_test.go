package compress

import (
	"encoding/binary"
	"math"
	"testing"

	"etalstm/internal/tensor"
)

// FuzzEncodeDecode feeds arbitrary byte strings reinterpreted as
// float32 matrices through both codecs and checks the roundtrip
// invariants (survivor exactness, pruned-to-zero, codec agreement).
func FuzzEncodeDecode(f *testing.F) {
	f.Add([]byte{0, 0, 0x80, 0x3f, 0, 0, 0, 0}, float32(0.1))
	f.Add([]byte{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12}, float32(0.5))
	f.Fuzz(func(t *testing.T, raw []byte, threshold float32) {
		if len(raw) < 4 || len(raw) > 4096 {
			return
		}
		if math.IsNaN(float64(threshold)) || threshold < 0 || threshold > 10 {
			return
		}
		n := len(raw) / 4
		data := make([]float32, n)
		for i := range data {
			v := math.Float32frombits(binary.LittleEndian.Uint32(raw[4*i:]))
			if math.IsNaN(float64(v)) || math.IsInf(float64(v), 0) {
				v = 0
			}
			data[i] = v
		}
		m := tensor.NewFromData(1, n, data)

		s := Encode(m, threshold)
		d := s.MustDecode(nil)
		b := EncodeBitmask(m, threshold)
		db := b.MustDecode(nil)
		if !d.Equal(db, 0) {
			t.Fatal("sparse and bitmask decodes disagree")
		}
		for i, v := range data {
			av := v
			if av < 0 {
				av = -av
			}
			if av >= threshold {
				if d.Data[i] != v {
					t.Fatalf("survivor %d not exact", i)
				}
			} else if d.Data[i] != 0 {
				t.Fatalf("pruned %d not zero", i)
			}
		}
		if s.NNZ() != len(s.Indices) {
			t.Fatal("NNZ bookkeeping")
		}
	})
}
