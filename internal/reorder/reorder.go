// Package reorder implements MS1, η-LSTM's cell-level intermediate
// variable reduction (paper Sec. IV-A). The execution reordering itself
// — computing BP-EW-P1 during the FW pass — lives in internal/lstm
// (ForwardWithP1/BackwardFromP1); this package adds what the paper
// layers on top:
//
//   - near-zero pruning of the P1 products at a threshold (~0.1), the
//     approximation that creates the compression opportunity;
//   - the compressed P1 store that replaces the raw intermediates in
//     DRAM (value+index pairs, as the customized DMA emits);
//   - the accounting of how many bytes the store holds versus the dense
//     baseline, which the footprint and data-movement models consume.
package reorder

import (
	"fmt"

	"etalstm/internal/compress"
	"etalstm/internal/lstm"
)

// Config tunes MS1.
type Config struct {
	// Threshold is the near-zero pruning threshold; values with
	// |v| < Threshold are dropped. Zero means compress.DefaultThreshold.
	Threshold float32
}

func (c Config) threshold() float32 {
	if c.Threshold == 0 {
		return compress.DefaultThreshold
	}
	return c.Threshold
}

// PruneStats reports what pruning one P1 set (or a whole pass) removed.
type PruneStats struct {
	Elements int64 // total P1 entries seen
	Pruned   int64 // entries zeroed
}

// Frac returns the pruned fraction.
func (s PruneStats) Frac() float64 {
	if s.Elements == 0 {
		return 0
	}
	return float64(s.Pruned) / float64(s.Elements)
}

// Add merges two stat sets.
func (s PruneStats) Add(o PruneStats) PruneStats {
	return PruneStats{Elements: s.Elements + o.Elements, Pruned: s.Pruned + o.Pruned}
}

// Kept returns the entries that survived pruning — the value+index
// pairs the compressed P1 store actually holds.
func (s PruneStats) Kept() int64 { return s.Elements - s.Pruned }

// PruneInPlace zeroes every |v| < threshold entry of the P1 set —
// the approximation that training under MS1 actually experiences.
// (Encoding and decoding through the sparse codec is lossless beyond
// this pruning, so applying it in place is behaviourally identical and
// lets the trainer avoid the codec on the hot path.)
func PruneInPlace(p1 *lstm.P1, cfg Config) PruneStats {
	th := cfg.threshold()
	var st PruneStats
	for _, m := range p1.Matrices() {
		st.Elements += int64(len(m.Data))
		for i, v := range m.Data {
			av := v
			if av < 0 {
				av = -av
			}
			if av < th {
				if v != 0 {
					m.Data[i] = 0
				}
				st.Pruned++
			}
		}
	}
	return st
}

// CellRecord is the compressed form of one cell's six P1 planes — what
// travels to DRAM between the FW and BP cells under MS1.
type CellRecord struct {
	Planes [6]*compress.Sparse
}

// Bytes returns the record's compressed size.
func (c *CellRecord) Bytes() int64 {
	var b int64
	for _, p := range c.Planes {
		b += p.Bytes()
	}
	return b
}

// DenseBytes returns the size the record would occupy uncompressed.
func (c *CellRecord) DenseBytes() int64 {
	var b int64
	for _, p := range c.Planes {
		b += int64(p.Rows) * int64(p.Cols) * 4
	}
	return b
}

// Sparsity returns the pruned fraction across the record's planes.
func (c *CellRecord) Sparsity() float64 {
	var total, nnz int64
	for _, p := range c.Planes {
		total += int64(p.Rows) * int64(p.Cols)
		nnz += int64(p.NNZ())
	}
	if total == 0 {
		return 0
	}
	return 1 - float64(nnz)/float64(total)
}

// Encode compresses a P1 set into a CellRecord, pruning at the
// configured threshold.
func Encode(p1 *lstm.P1, cfg Config) *CellRecord {
	th := cfg.threshold()
	rec := &CellRecord{}
	for i, m := range p1.Matrices() {
		rec.Planes[i] = compress.Encode(m, th)
	}
	return rec
}

// Decode reconstructs a dense P1 set from a record (pruned entries are
// zero, which BackwardFromP1 interprets as skippable work).
func Decode(rec *CellRecord) *lstm.P1 {
	p1 := &lstm.P1{
		Pf:  rec.Planes[0].MustDecode(nil),
		Pi:  rec.Planes[1].MustDecode(nil),
		Pc:  rec.Planes[2].MustDecode(nil),
		Po:  rec.Planes[3].MustDecode(nil),
		Ps:  rec.Planes[4].MustDecode(nil),
		Pfs: rec.Planes[5].MustDecode(nil),
	}
	return p1
}

// Store keeps the compressed P1 records of one training step, indexed
// by (layer, timestamp). It stands in for the DRAM region the baseline
// flow would fill with raw intermediates.
type Store struct {
	cfg    Config
	layers int
	seqLen int
	recs   []*CellRecord
}

// NewStore creates a store for a layers×seqLen unrolled grid.
func NewStore(layers, seqLen int, cfg Config) *Store {
	return &Store{
		cfg:    cfg,
		layers: layers,
		seqLen: seqLen,
		recs:   make([]*CellRecord, layers*seqLen),
	}
}

func (s *Store) idx(layer, t int) int {
	if layer < 0 || layer >= s.layers || t < 0 || t >= s.seqLen {
		panic(fmt.Sprintf("reorder: cell (%d,%d) outside %dx%d grid", layer, t, s.layers, s.seqLen))
	}
	return layer*s.seqLen + t
}

// Put compresses and stores the P1 set of cell (layer, t).
func (s *Store) Put(layer, t int, p1 *lstm.P1) {
	s.recs[s.idx(layer, t)] = Encode(p1, s.cfg)
}

// Get decodes the record of cell (layer, t); nil if never stored.
func (s *Store) Get(layer, t int) *lstm.P1 {
	rec := s.recs[s.idx(layer, t)]
	if rec == nil {
		return nil
	}
	return Decode(rec)
}

// Bytes returns the store's total compressed footprint.
func (s *Store) Bytes() int64 {
	var b int64
	for _, rec := range s.recs {
		if rec != nil {
			b += rec.Bytes()
		}
	}
	return b
}

// DenseBytes returns what the same cells would occupy uncompressed.
func (s *Store) DenseBytes() int64 {
	var b int64
	for _, rec := range s.recs {
		if rec != nil {
			b += rec.DenseBytes()
		}
	}
	return b
}

// MeanSparsity returns the average pruned fraction across stored cells
// — the sparsity the BP-EW-P2 and BP-MatMul stages can skip.
func (s *Store) MeanSparsity() float64 {
	var sum float64
	n := 0
	for _, rec := range s.recs {
		if rec != nil {
			sum += rec.Sparsity()
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}
