package reorder

import (
	"math"
	"testing"

	"etalstm/internal/lstm"
	"etalstm/internal/rng"
	"etalstm/internal/tensor"
)

func makeP1(seed uint64, batch, hidden int) *lstm.P1 {
	r := rng.New(seed)
	p := lstm.NewParams(hidden, hidden)
	p.Init(r)
	x := tensor.New(batch, hidden)
	h0 := tensor.New(batch, hidden)
	s0 := tensor.New(batch, hidden)
	x.RandInit(r, 1)
	h0.RandInit(r, 0.5)
	s0.RandInit(r, 0.5)
	_, _, p1 := lstm.ForwardWithP1(nil, p, x, h0, s0)
	return p1
}

func TestPruneInPlaceThreshold(t *testing.T) {
	p1 := makeP1(1, 4, 16)
	st := PruneInPlace(p1, Config{Threshold: 0.1})
	if st.Elements != 6*4*16 {
		t.Fatalf("Elements: %d", st.Elements)
	}
	for _, m := range p1.Matrices() {
		for _, v := range m.Data {
			av := math.Abs(float64(v))
			if av != 0 && av < 0.1 {
				t.Fatalf("unpruned near-zero value %v", v)
			}
		}
	}
	if st.Frac() <= 0 {
		t.Fatal("pruning should remove something on realistic P1 data")
	}
}

func TestPruneDefaultThreshold(t *testing.T) {
	a := makeP1(2, 4, 16)
	b := makeP1(2, 4, 16)
	sa := PruneInPlace(a, Config{})
	sb := PruneInPlace(b, Config{Threshold: 0.1})
	if sa.Pruned != sb.Pruned {
		t.Fatal("zero config must default to threshold 0.1")
	}
}

func TestEncodeDecodeMatchesPruned(t *testing.T) {
	orig := makeP1(3, 4, 16)
	rec := Encode(orig, Config{Threshold: 0.1})
	dec := Decode(rec)

	pruned := makeP1(3, 4, 16)
	PruneInPlace(pruned, Config{Threshold: 0.1})

	dm, pm := dec.Matrices(), pruned.Matrices()
	for i := range dm {
		if !dm[i].Equal(pm[i], 0) {
			t.Fatalf("plane %d: codec path differs from in-place pruning", i)
		}
	}
}

func TestCellRecordBytesSaveSpace(t *testing.T) {
	p1 := makeP1(4, 8, 64)
	rec := Encode(p1, Config{Threshold: 0.1})
	if rec.Bytes() >= rec.DenseBytes() {
		t.Fatalf("compressed %d must be below dense %d at realistic sparsity (%.2f)",
			rec.Bytes(), rec.DenseBytes(), rec.Sparsity())
	}
	if rec.Sparsity() < 0.2 {
		t.Fatalf("unexpectedly dense P1: sparsity %v", rec.Sparsity())
	}
}

func TestStorePutGet(t *testing.T) {
	s := NewStore(2, 3, Config{Threshold: 0.1})
	p1 := makeP1(5, 2, 8)
	s.Put(1, 2, p1)
	got := s.Get(1, 2)
	if got == nil {
		t.Fatal("Get returned nil")
	}
	if s.Get(0, 0) != nil {
		t.Fatal("unset cell must return nil")
	}
	if s.Bytes() <= 0 || s.DenseBytes() <= 0 {
		t.Fatal("store byte accounting")
	}
}

func TestStoreCompressesRealisticCells(t *testing.T) {
	s := NewStore(1, 2, Config{Threshold: 0.1})
	s.Put(0, 0, makeP1(8, 16, 128))
	s.Put(0, 1, makeP1(9, 16, 128))
	if s.Bytes() >= s.DenseBytes() {
		t.Fatalf("store must compress realistic cells: %d vs %d (sparsity %.2f)",
			s.Bytes(), s.DenseBytes(), s.MeanSparsity())
	}
}

func TestStoreIndexPanics(t *testing.T) {
	s := NewStore(2, 3, Config{})
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	s.Get(2, 0)
}

func TestStoreMeanSparsity(t *testing.T) {
	s := NewStore(1, 2, Config{Threshold: 0.1})
	if s.MeanSparsity() != 0 {
		t.Fatal("empty store sparsity must be 0")
	}
	s.Put(0, 0, makeP1(6, 4, 32))
	s.Put(0, 1, makeP1(7, 4, 32))
	ms := s.MeanSparsity()
	if ms <= 0 || ms >= 1 {
		t.Fatalf("MeanSparsity: %v", ms)
	}
}

// TestPrunedBPStillDescends: the headline MS1 claim in miniature —
// training with pruned P1 still reduces loss (approximate computing
// with negligible accuracy impact).
func TestPrunedBPStillDescends(t *testing.T) {
	const hidden, batch = 8, 4
	r := rng.New(10)
	p := lstm.NewParams(hidden, hidden)
	p.Init(r)
	x := tensor.New(batch, hidden)
	x.RandInit(r, 1)
	target := tensor.New(batch, hidden)
	target.RandInit(r, 0.5)

	loss := func() float64 {
		h0 := tensor.New(batch, hidden)
		s0 := tensor.New(batch, hidden)
		h, _, _ := lstm.Forward(nil, p, x, h0, s0)
		var l float64
		for k := range h.Data {
			d := float64(h.Data[k] - target.Data[k])
			l += d * d
		}
		return l
	}

	before := loss()
	for step := 0; step < 30; step++ {
		h0 := tensor.New(batch, hidden)
		s0 := tensor.New(batch, hidden)
		h, _, p1 := lstm.ForwardWithP1(nil, p, x, h0, s0)
		PruneInPlace(p1, Config{Threshold: 0.1})
		dy := tensor.New(batch, hidden)
		for k := range dy.Data {
			dy.Data[k] = 2 * (h.Data[k] - target.Data[k])
		}
		grads := lstm.NewGrads(p)
		lstm.BackwardFromP1(nil, p, grads, x, h0, p1, lstm.BPInput{DY: dy})
		const lr = 0.02
		for g := lstm.Gate(0); g < lstm.NumGates; g++ {
			for i := range p.W[g].Data {
				p.W[g].Data[i] -= lr * grads.W[g].Data[i]
			}
			for i := range p.U[g].Data {
				p.U[g].Data[i] -= lr * grads.U[g].Data[i]
			}
			for i := range p.B[g] {
				p.B[g][i] -= lr * grads.B[g][i]
			}
		}
	}
	after := loss()
	if after >= before*0.9 {
		t.Fatalf("pruned-P1 training failed to descend: %v -> %v", before, after)
	}
}

func TestPruneStatsAdd(t *testing.T) {
	a := PruneStats{Elements: 10, Pruned: 4}
	b := PruneStats{Elements: 20, Pruned: 6}
	c := a.Add(b)
	if c.Elements != 30 || c.Pruned != 10 {
		t.Fatalf("Add: %+v", c)
	}
	if math.Abs(c.Frac()-1.0/3) > 1e-9 {
		t.Fatalf("Frac: %v", c.Frac())
	}
	if (PruneStats{}).Frac() != 0 {
		t.Fatal("empty Frac must be 0")
	}
}
