package check

import (
	"strings"
	"testing"

	"etalstm/internal/dist"
	"etalstm/internal/train"
)

// TestSyncBitwiseInproc: the extracted in-process sync is the seam's
// identity element — routing the merge through it must be invisible.
func TestSyncBitwiseInproc(t *testing.T) {
	for _, seed := range []uint64{3, 21, 77} {
		s := RandomScenario(seed)
		if err := CheckSyncBitwise(s, 3, func() (train.GradientSync, error) {
			return dist.Inproc{}, nil
		}); err != nil {
			t.Errorf("seed %d: %v", seed, err)
		}
	}
}

// TestSyncBitwiseTCPLoopback: dense TCP transport through a real
// coordinator is lossless — the full frame/codec/merge round trip
// reproduces the direct tree-reduce path bitwise. The worker holds the
// whole replica group of a single process, so the coordinator sees one
// worker whose contribution count is the group size.
func TestSyncBitwiseTCPLoopback(t *testing.T) {
	s := RandomScenario(9)
	c, err := dist.StartCoordinator("127.0.0.1:0", s.Cfg, dist.CoordinatorOptions{ExpectWorkers: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := CheckSyncBitwise(s, 3, func() (train.GradientSync, error) {
		w, err := dist.Dial(c.Addr().String(), s.Cfg, dist.WorkerOptions{})
		return w, err
	}); err != nil {
		t.Fatal(err)
	}
}

// TestCompressMonotoneLadder: the keep-fraction ladder satisfies the
// bounded-divergence contract — keep-all is exact, keeping less never
// brings the merged gradients closer to the dense reduce.
func TestCompressMonotoneLadder(t *testing.T) {
	for _, seed := range []uint64{4, 18} {
		s := RandomScenario(seed)
		dists, err := CheckCompressMonotone(s, []float64{1, 0.5, 0.1, 0.02}, 1e-7)
		if err != nil {
			t.Errorf("seed %d: %v (distances %v)", seed, err, dists)
		}
	}
}

func TestLossBand(t *testing.T) {
	dense := []float64{0.9, 0.5, 0.2, 0.1}
	near := []float64{0.9, 0.6, 0.25, 0.12}
	if err := CheckLossBand(dense, near, 0.3, 0); err != nil {
		t.Errorf("near trace rejected: %v", err)
	}
	far := []float64{0.9, 0.8, 0.7, 0.6}
	if err := CheckLossBand(dense, far, 0.3, 0); err == nil {
		t.Error("diverged trace accepted")
	}
	// The convergence floor absorbs jitter around a solved task: the
	// approx tail is 100x the dense tail, but both are under the floor.
	solved := []float64{0.9, 1e-5, 1e-5, 1e-5}
	jitter := []float64{0.9, 2e-3, 1e-4, 1e-3}
	if err := CheckLossBand(solved, jitter, 0.25, 0.05); err != nil {
		t.Errorf("converged jitter rejected: %v", err)
	}
	if err := CheckLossBand(solved, jitter, 0.25, 0); err == nil {
		t.Error("without a floor the same jitter must fail the relative band")
	}
	if err := CheckLossBand(nil, near, 0.3, 0); err == nil || !strings.Contains(err.Error(), "non-empty") {
		t.Errorf("empty dense trace: %v", err)
	}
}
