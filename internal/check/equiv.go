package check

import (
	"fmt"
	"math"
	"sync"

	"etalstm/internal/model"
	"etalstm/internal/parallel"
	"etalstm/internal/skip"
	"etalstm/internal/tensor"
	"etalstm/internal/train"
)

// PathSpec selects one way of executing a training scenario. The
// equivalence engine runs the same scenario under several specs and
// compares the results.
//
// Group semantics: every path processes the scenario's batches in
// fixed-size groups with one optimizer step per group (gradients
// tree-reduced in slot order, averaged over the group, clipped,
// applied). Workers controls only *how* the group's gradients are
// computed — sequentially on the master network, or concurrently on
// per-worker clones. Because the group size and the reduce order are
// path-independent, a serial and a parallel path follow the exact same
// float operation sequence, and their results must agree bitwise.
type PathSpec struct {
	Name string
	// Store is the per-cell storage mode for executed cells: StoreRaw
	// (baseline Forward+Backward) or StoreP1 (MS1's reordered
	// ForwardWithP1+BackwardFromP1).
	Store model.CellStore
	// Workers > 1 computes each group's gradients concurrently on that
	// many replica clones; <= 1 computes them sequentially on the master.
	Workers int
	// NoArena disables the workspace arena on every network the path
	// touches, so all scratch comes from fresh allocations.
	NoArena bool
	// PruneThreshold > 0 applies MS1's near-zero pruning to the P1 sets
	// between FW and BP (requires Store == StoreP1). 0 disables pruning,
	// making the P1 path an exact reordering of the baseline.
	PruneThreshold float32
	// SparseBP routes BP-cells through the pair-driven sparse kernels
	// (requires Store == StoreP1). Against the dense path consuming the
	// same (possibly pruned, possibly f16-stored) P1 sets it is a pure
	// skip of exact-zero terms, so the contract is bitwise at every
	// threshold — not just 0.
	SparseBP bool
	// TopK, with SparseBP, caps each batch row of the weight-gradient
	// MatMuls to its TopK largest-|δgate| columns. 0 disables; ≥ hidden
	// is the identity (bitwise).
	TopK int
	// F16 stores the P1 intermediates rounded through binary16 between
	// FW and BP (after pruning, compute stays float32) — the storage
	// precision axis. Losses stay exact (FW is untouched); gradients
	// move within a ULP-derived band.
	F16 bool
	// Plan, when non-nil, supplies MS2's skip grid and post-BP
	// convergence-aware scaling. The plan's base store must match Store.
	Plan *skip.Plan
	// Boundaries, when it names more than one segment, runs the batch
	// through the checkpointed FW/BP pair (ForwardCheckpointed /
	// BackwardCheckpointed) with these checkpoint columns instead of the
	// full-storage pair. nil or a single [0] runs full storage.
	Boundaries []int
	// Sync, when non-nil, merges each group's gradients through this
	// transport instead of the direct tree all-reduce, and the reducer
	// averages by the contribution count the sync reports — the seam the
	// sync-equivalence contracts exercise. nil keeps the classic path.
	Sync train.GradientSync
}

// PathResult captures what one path produced: per-batch losses, the
// last group's merged gradients (snapshotted before the reducer mutates
// them), and the post-training network.
type PathResult struct {
	Losses []float64
	// Grads is the last group's tree-reduced gradient sum, cloned
	// before averaging/clipping/stepping.
	Grads *model.Gradients
	// Net holds the post-training weights.
	Net *model.Network
}

// RunPath executes the scenario under one path spec: groups of
// groupSize batches, one ClipStep(SGD) optimizer step per group.
func RunPath(s *Scenario, p PathSpec, groupSize int) (*PathResult, error) {
	if groupSize < 1 {
		groupSize = 1
	}
	net, err := s.NewNetwork()
	if err != nil {
		return nil, err
	}
	if p.NoArena {
		net.DisableWorkspace()
	}
	policy := storePolicy(p)
	red := train.ClipStep{Opt: &train.SGD{LR: 0.05}, Clip: 5}
	batches := s.Batches()

	var replicas []*model.Network
	if p.Workers > 1 {
		for i := 0; i < groupSize; i++ {
			c := net.Clone()
			if p.NoArena {
				c.DisableWorkspace()
			}
			replicas = append(replicas, c)
		}
	}

	res := &PathResult{Net: net}
	for lo := 0; lo < len(batches); lo += groupSize {
		hi := lo + groupSize
		if hi > len(batches) {
			hi = len(batches)
		}
		group := batches[lo:hi]
		grads := make([]*model.Gradients, len(group))
		losses := make([]float64, len(group))
		errs := make([]error, len(group))

		if p.Workers > 1 {
			// Concurrent: one clone per slot, weights re-synced from the
			// master, at most Workers slots in flight at a time.
			for i := range group {
				if err := replicas[i].CopyWeightsFrom(net); err != nil {
					return nil, err
				}
			}
			sem := make(chan struct{}, p.Workers)
			var wg sync.WaitGroup
			for i := range group {
				wg.Add(1)
				sem <- struct{}{}
				go func(i int) {
					defer wg.Done()
					defer func() { <-sem }()
					grads[i], losses[i], errs[i] = pathBatchGrads(replicas[i], group[i], policy, p)
				}(i)
			}
			wg.Wait()
		} else {
			// Sequential: every batch runs on the master; weights are
			// only mutated after the whole group is reduced, so the
			// per-batch math is identical to the concurrent variant.
			for i := range group {
				grads[i], losses[i], errs[i] = pathBatchGrads(net, group[i], policy, p)
			}
		}
		for i, err := range errs {
			if err != nil {
				return nil, fmt.Errorf("check: path %s batch %d: %w", p.Name, lo+i, err)
			}
			res.Losses = append(res.Losses, losses[i])
		}
		var merged *model.Gradients
		contribs := len(group)
		if p.Sync != nil {
			m, n, err := p.Sync.Reduce(grads)
			if err != nil {
				return nil, fmt.Errorf("check: path %s sync: %w", p.Name, err)
			}
			merged, contribs = m, n
		} else {
			merged = parallel.TreeReduce(grads)
		}
		res.Grads = merged.Clone()
		red.Apply(net, merged, contribs)
	}
	return res, nil
}

func storePolicy(p PathSpec) model.StoragePolicy {
	if p.Plan != nil {
		return p.Plan.Policy()
	}
	switch p.Store {
	case model.StoreP1:
		return model.P1Policy()
	default:
		return model.BaselinePolicy()
	}
}

func pathBatchGrads(net *model.Network, b train.Batch, policy model.StoragePolicy, p PathSpec) (*model.Gradients, float64, error) {
	var (
		grads *model.Gradients
		loss  float64
		err   error
	)
	if len(p.Boundaries) > 1 {
		grads, loss, err = ckptBatchGrads(net, b, policy, p)
	} else {
		grads, loss, err = batchGrads(net, b, policy, p)
	}
	if err != nil {
		return nil, 0, err
	}
	if p.Plan != nil && p.Plan.SkippedFrac() > 0 {
		if err := p.Plan.ApplyScaling(grads); err != nil {
			return nil, 0, err
		}
	}
	return grads, loss, nil
}

// Tol bounds agreement between two gradient or weight sets. A pair of
// entries agrees when it is within Abs absolutely (covers near-zero
// values, where ULP spacing is denormal-fine) or within MaxULP
// representable values (covers everything else, scale-free).
type Tol struct {
	MaxULP int64
	Abs    float64
}

// Bitwise is the tolerance for paths that must not change the math at
// all: arena on/off and serial/parallel evaluation.
var Bitwise = Tol{MaxULP: 0, Abs: 0}

// Reassociated is the tolerance for paths that compute the same values
// with a different association order — the P1-factored BP-EW versus the
// baseline expressions. Each element-wise product differs by a few
// ULPs; the matmul reductions and the BPTT recurrence compound that
// across timestamps, so the bound is generous but still catches any
// real formula error (which shows up orders of magnitude above it).
var Reassociated = Tol{MaxULP: 4096, Abs: 1e-5}

func (tol Tol) close(a, b float32) bool {
	if math.Abs(float64(a)-float64(b)) <= tol.Abs {
		return true
	}
	return tensor.WithinULP(a, b, tol.MaxULP)
}

// CompareGradients asserts a and b agree within tol, returning a
// descriptive error naming the first offending entry.
func CompareGradients(a, b *model.Gradients, tol Tol) error {
	if len(a.Layer) != len(b.Layer) {
		return fmt.Errorf("check: gradient layer count %d vs %d", len(a.Layer), len(b.Layer))
	}
	cmp := func(name string, x, y []float32) error {
		if len(x) != len(y) {
			return fmt.Errorf("check: %s length %d vs %d", name, len(x), len(y))
		}
		for i := range x {
			if !tol.close(x[i], y[i]) {
				return fmt.Errorf("check: %s[%d] diverges: %v vs %v (ULP %d, |Δ| %g)",
					name, i, x[i], y[i], tensor.ULPDiff32(x[i], y[i]), math.Abs(float64(x[i])-float64(y[i])))
			}
		}
		return nil
	}
	for l := range a.Layer {
		for g := range a.Layer[l].W {
			if err := cmp(fmt.Sprintf("layer%d.W[%d]", l, g), a.Layer[l].W[g].Data, b.Layer[l].W[g].Data); err != nil {
				return err
			}
			if err := cmp(fmt.Sprintf("layer%d.U[%d]", l, g), a.Layer[l].U[g].Data, b.Layer[l].U[g].Data); err != nil {
				return err
			}
			if err := cmp(fmt.Sprintf("layer%d.B[%d]", l, g), a.Layer[l].B[g], b.Layer[l].B[g]); err != nil {
				return err
			}
		}
	}
	if err := cmp("proj", a.Proj.Data, b.Proj.Data); err != nil {
		return err
	}
	return cmp("projB", a.ProjB, b.ProjB)
}

// CompareWeights asserts two networks' parameters agree within tol.
func CompareWeights(a, b *model.Network, tol Tol) error {
	if a.Cfg != b.Cfg {
		return fmt.Errorf("check: network geometry %+v vs %+v", a.Cfg, b.Cfg)
	}
	cmp := func(name string, x, y []float32) error {
		for i := range x {
			if !tol.close(x[i], y[i]) {
				return fmt.Errorf("check: weight %s[%d] diverges: %v vs %v (ULP %d)",
					name, i, x[i], y[i], tensor.ULPDiff32(x[i], y[i]))
			}
		}
		return nil
	}
	for l := range a.Layer {
		for g := range a.Layer[l].W {
			if err := cmp(fmt.Sprintf("layer%d.W[%d]", l, g), a.Layer[l].W[g].Data, b.Layer[l].W[g].Data); err != nil {
				return err
			}
			if err := cmp(fmt.Sprintf("layer%d.U[%d]", l, g), a.Layer[l].U[g].Data, b.Layer[l].U[g].Data); err != nil {
				return err
			}
			if err := cmp(fmt.Sprintf("layer%d.B[%d]", l, g), a.Layer[l].B[g], b.Layer[l].B[g]); err != nil {
				return err
			}
		}
	}
	if err := cmp("proj", a.Proj.Data, b.Proj.Data); err != nil {
		return err
	}
	return cmp("projB", a.ProjB, b.ProjB)
}

// CompareLosses asserts two per-batch loss traces are identical. Losses
// come from the FW pass alone, and every path's FW pass computes
// bit-identical hidden states (pruning and skipping touch only BP), so
// this comparison is exact.
func CompareLosses(a, b []float64) error {
	if len(a) != len(b) {
		return fmt.Errorf("check: loss trace length %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			return fmt.Errorf("check: batch %d loss diverges: %v vs %v", i, a[i], b[i])
		}
	}
	return nil
}

// Equivalence runs the scenario under the full path matrix — baseline
// raw serial/arena against every optimized combination that must agree
// — and returns the first divergence. workers sets the concurrency of
// the parallel variants.
func Equivalence(s *Scenario, workers int) error {
	if workers < 2 {
		workers = 2
	}
	group := workers
	base, err := RunPath(s, PathSpec{Name: "raw/serial/arena", Store: model.StoreRaw}, group)
	if err != nil {
		return err
	}
	exact := []PathSpec{
		{Name: "raw/serial/noarena", Store: model.StoreRaw, NoArena: true},
		{Name: "raw/parallel/arena", Store: model.StoreRaw, Workers: workers},
		{Name: "raw/parallel/noarena", Store: model.StoreRaw, Workers: workers, NoArena: true},
	}
	for _, spec := range exact {
		got, err := RunPath(s, spec, group)
		if err != nil {
			return err
		}
		if err := comparePaths(base, got, spec.Name, Bitwise); err != nil {
			return err
		}
	}
	// The P1 reorder recomputes the same quantities in a different
	// association order: ULP-bounded, not bitwise. Its serial and
	// parallel variants must in turn agree bitwise with each other.
	p1, err := RunPath(s, PathSpec{Name: "p1/serial/arena", Store: model.StoreP1}, group)
	if err != nil {
		return err
	}
	if err := comparePaths(base, p1, "p1/serial/arena", Reassociated); err != nil {
		return err
	}
	p1par, err := RunPath(s, PathSpec{Name: "p1/parallel/noarena", Store: model.StoreP1, Workers: workers, NoArena: true}, group)
	if err != nil {
		return err
	}
	return comparePaths(p1, p1par, "p1/parallel/noarena", Bitwise)
}

func comparePaths(want, got *PathResult, name string, tol Tol) error {
	if err := CompareLosses(want.Losses, got.Losses); err != nil {
		return fmt.Errorf("%s: %w", name, err)
	}
	if err := CompareGradients(want.Grads, got.Grads, tol); err != nil {
		return fmt.Errorf("%s: %w", name, err)
	}
	if err := CompareWeights(want.Net, got.Net, tol); err != nil {
		return fmt.Errorf("%s: %w", name, err)
	}
	return nil
}

// GradDistance returns the relative L2 distance between two gradient
// sets: ‖a−b‖₂ / max(‖a‖₂, tiny). The bounded-divergence checks use it
// as the scalar "how wrong did the approximation make us" metric.
func GradDistance(a, b *model.Gradients) float64 {
	var num, den float64
	acc := func(x, y []float32) {
		for i := range x {
			d := float64(x[i]) - float64(y[i])
			num += d * d
			den += float64(x[i]) * float64(x[i])
		}
	}
	for l := range a.Layer {
		for g := range a.Layer[l].W {
			acc(a.Layer[l].W[g].Data, b.Layer[l].W[g].Data)
			acc(a.Layer[l].U[g].Data, b.Layer[l].U[g].Data)
			acc(a.Layer[l].B[g], b.Layer[l].B[g])
		}
	}
	acc(a.Proj.Data, b.Proj.Data)
	acc(a.ProjB, b.ProjB)
	if den == 0 {
		den = 1e-300
	}
	return math.Sqrt(num) / math.Sqrt(den)
}

// CheckPruneMonotone runs the P1 path across the pruning-threshold
// ladder and asserts the bounded-divergence contract: threshold 0
// diverges not at all from the baseline, and the divergence is monotone
// non-decreasing in the threshold (pruning at a higher threshold zeroes
// a superset of the entries). slack absorbs float measurement noise in
// the monotonicity comparison.
//
// The comparison covers exactly one optimizer step: pruning changes the
// gradients, so from the second step on the trajectories legitimately
// drift apart and the per-step distances are no longer structurally
// ordered by threshold.
func CheckPruneMonotone(s *Scenario, thresholds []float32, slack float64) ([]float64, error) {
	one := *s
	one.NumBatches = 1
	s = &one
	group := 1
	base, err := RunPath(s, PathSpec{Name: "prune-base", Store: model.StoreP1}, group)
	if err != nil {
		return nil, err
	}
	dists := make([]float64, len(thresholds))
	for i, th := range thresholds {
		got, err := RunPath(s, PathSpec{Name: fmt.Sprintf("prune-%g", th), Store: model.StoreP1, PruneThreshold: th}, group)
		if err != nil {
			return nil, err
		}
		dists[i] = GradDistance(base.Grads, got.Grads)
	}
	for i, th := range thresholds {
		if th == 0 && dists[i] != 0 {
			return dists, fmt.Errorf("check: pruning at threshold 0 diverged (distance %g)", dists[i])
		}
		if i > 0 && thresholds[i] >= thresholds[i-1] && dists[i]+slack < dists[i-1] {
			return dists, fmt.Errorf("check: divergence not monotone: threshold %g → %g but distance %g → %g",
				thresholds[i-1], th, dists[i-1], dists[i])
		}
	}
	return dists, nil
}

// CheckScaledMass asserts MS2's convergence-aware scaling conserves
// gradient mass: for every layer the plan touches, the scaled surviving
// gradients' magnitude must land within a factor of band of the dense
// (no-skip) magnitude. The plan's scale factors are derived from
// *predicted* magnitudes, so the band is loose — but a corrupted or
// missing scaling lands far outside it, which is what the negative
// test pins.
func CheckScaledMass(dense, scaled *model.Gradients, plan *skip.Plan, band float64) error {
	if band <= 1 {
		return fmt.Errorf("check: band must exceed 1, got %g", band)
	}
	for l := range dense.Layer {
		skipped := 0
		for _, s := range plan.Skip[l] {
			if s {
				skipped++
			}
		}
		if skipped == 0 {
			continue // layer untouched: nothing to conserve
		}
		want := dense.Layer[l].AbsSum()
		got := scaled.Layer[l].AbsSum()
		if want == 0 {
			continue
		}
		ratio := got / want
		if ratio < 1/band || ratio > band {
			return fmt.Errorf("check: layer %d scaled gradient mass off by %.3gx (dense %g, scaled %g, band %g)",
				l, ratio, want, got, band)
		}
	}
	return nil
}
