package check

import (
	"testing"

	"etalstm/internal/memplan"
	"etalstm/internal/model"
)

// fuzzStores are the storage modes every fuzzed gradient check covers.
var fuzzStores = []model.CellStore{model.StoreRaw, model.StoreP1}

// FuzzEquivalence feeds arbitrary byte strings through DecodeScenario
// and asserts the path-equivalence contract on whatever configuration
// falls out. Every input decodes to a valid small scenario (bytes map
// onto bounded fields), so the fuzzer explores configuration space —
// geometry × loss kind × concurrency × pruning — not crash space.
func FuzzEquivalence(f *testing.F) {
	f.Add([]byte("equivalence-seed"))
	f.Add([]byte{0, 0, 0, 0, 0, 0, 0, 0, 0, 0})
	f.Add([]byte{2, 6, 2, 4, 3, 3, 1, 0x82, 2, 7, 7})
	f.Add([]byte{1, 3, 1, 1, 0, 1, 2, 1, 3, 255, 128, 64})
	f.Fuzz(func(t *testing.T, data []byte) {
		s, flags, ok := DecodeScenario(data)
		if !ok {
			return
		}
		if err := Equivalence(s, flags.Workers); err != nil {
			t.Fatalf("scenario %+v flags %+v: %v", s, flags, err)
		}
		if step := flags.PruneStep; step > 0 {
			// Two-point bounded-divergence ladder: no pruning must not
			// diverge, the decoded threshold may diverge but boundedly
			// (monotonicity over the pair).
			th := []float32{0, PruneThresholds[step]}
			if _, err := CheckPruneMonotone(s, th, 1e-9); err != nil {
				t.Fatalf("scenario %+v threshold %g: %v", s, PruneThresholds[step], err)
			}
		}
	})
}

// FuzzCheckpointed feeds decoded (scenario, budget) pairs through the
// checkpointed-BPTT contract: the ladder rungs plus the placement the
// decoded byte budget buys must all reproduce full storage bitwise.
func FuzzCheckpointed(f *testing.F) {
	f.Add([]byte("checkpointed-seed"))
	f.Add([]byte{0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0})
	f.Add([]byte{2, 6, 2, 4, 3, 3, 1, 0x82, 2, 7, 3})
	f.Add([]byte{1, 5, 1, 2, 1, 2, 2, 1, 0, 99, 7, 13})
	f.Fuzz(func(t *testing.T, data []byte) {
		s, flags, ok := DecodeScenario(data)
		if !ok {
			return
		}
		if err := EquivalenceCheckpointed(s, flags.Workers); err != nil {
			t.Fatalf("scenario %+v flags %+v: %v", s, flags, err)
		}
		// The decoded budget's own placement, beyond the fixed ladder:
		// whatever memplan plans for it must also agree bitwise.
		budget := DecodeBudget(data, s.Cfg, memplan.Baseline)
		pl := memplan.Plan(s.Cfg, memplan.Baseline, budget)
		if !pl.Feasible || pl.FullStorage() {
			return
		}
		base, err := RunPath(s, PathSpec{Name: "fuzz/full", Store: model.StoreRaw}, flags.Workers)
		if err != nil {
			t.Fatal(err)
		}
		got, err := RunPath(s, PathSpec{
			Name: "fuzz/budget", Store: model.StoreRaw,
			Boundaries: pl.Boundaries, NoArena: flags.NoArena,
		}, flags.Workers)
		if err != nil {
			t.Fatal(err)
		}
		if err := comparePaths(base, got, "fuzz/budget", Bitwise); err != nil {
			t.Fatalf("scenario %+v budget %d (placement %v): %v", s, budget, pl.Boundaries, err)
		}
	})
}

// FuzzSparseBackward feeds decoded (scenario, threshold, top-k, f16)
// tuples through the sparse-backward contracts. Every byte maps onto a
// bounded field — geometry and concurrency via DecodeScenario, the
// pruning threshold via the PruneStep ladder, the per-row top-k cap and
// the f16 storage axis from the trailing bytes — so the fuzzer explores
// the sparse configuration space, not crash space. The oracle is the
// dense path consuming the same transformed P1 sets: bitwise whenever
// top-k is off or the identity, bounded-monotone otherwise.
func FuzzSparseBackward(f *testing.F) {
	f.Add([]byte("sparse-backward-seed"))
	f.Add([]byte{1, 6, 1, 3, 1, 1, 1, 1, 0, 5, 0, 0})
	f.Add([]byte{2, 5, 2, 4, 2, 2, 0, 2, 2, 7, 3, 1})
	f.Add([]byte{1, 4, 1, 4, 1, 2, 2, 0x81, 1, 9, 0, 1})
	f.Fuzz(func(t *testing.T, data []byte) {
		s, flags, ok := DecodeScenario(data)
		if !ok {
			return
		}
		th := PruneThresholds[flags.PruneStep]
		topK, f16 := 0, false
		if len(data) > 10 {
			topK = int(data[10]) % (s.Cfg.Hidden + 2)
		}
		if len(data) > 11 {
			f16 = data[11]&1 == 1
		}
		group := flags.Workers
		dense, err := RunPath(s, PathSpec{
			Name: "fuzz/dense", Store: model.StoreP1, PruneThreshold: th, F16: f16,
		}, group)
		if err != nil {
			t.Fatal(err)
		}
		spec := PathSpec{
			Name: "fuzz/sparse", Store: model.StoreP1, PruneThreshold: th, F16: f16,
			SparseBP: true, TopK: topK, Workers: flags.Workers, NoArena: flags.NoArena,
		}
		sparse, err := RunPath(s, spec, group)
		if err != nil {
			t.Fatal(err)
		}
		if topK == 0 || topK >= s.Cfg.Hidden {
			// Math unchanged: the full contract, bitwise.
			if err := comparePaths(dense, sparse, spec.Name, Bitwise); err != nil {
				t.Fatalf("scenario %+v th %g topk %d f16 %v: %v", s, th, topK, f16, err)
			}
		} else {
			// A biting top-k changes only the weight gradients: losses
			// stay exact up to the first optimizer step (after it the
			// trajectories legitimately drift), and the divergence obeys
			// the monotone ladder.
			n := group
			if n > len(dense.Losses) {
				n = len(dense.Losses)
			}
			if err := CompareLosses(dense.Losses[:n], sparse.Losses[:n]); err != nil {
				t.Fatalf("scenario %+v th %g topk %d f16 %v: %v", s, th, topK, f16, err)
			}
			if _, err := CheckTopKMonotone(s, []int{topK, s.Cfg.Hidden}, 1e-9); err != nil {
				t.Fatalf("scenario %+v topk %d: %v", s, topK, err)
			}
		}
	})
}

// FuzzGradCheck feeds decoded scenarios through the full trust chain:
// reference analytic gradients vs finite differences, then the float32
// raw and P1 paths vs the reference. FD probes are capped low — each
// costs two reference forward passes — so individual inputs stay fast.
func FuzzGradCheck(f *testing.F) {
	f.Add([]byte("gradcheck-seed"))
	f.Add([]byte{1, 1, 0, 0, 0, 0, 0, 0, 0, 1})
	f.Add([]byte{2, 4, 1, 2, 1, 2, 1, 0, 0, 42, 9})
	f.Add([]byte{0, 2, 2, 3, 2, 0, 2, 0, 0, 3, 1, 4})
	f.Fuzz(func(t *testing.T, data []byte) {
		s, _, ok := DecodeScenario(data)
		if !ok {
			return
		}
		for _, store := range fuzzStores {
			if err := GradCheck(s, store, 3); err != nil {
				t.Fatalf("scenario %+v %s: %v", s, storeName(store), err)
			}
		}
	})
}
