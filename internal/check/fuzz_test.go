package check

import (
	"testing"

	"etalstm/internal/memplan"
	"etalstm/internal/model"
)

// fuzzStores are the storage modes every fuzzed gradient check covers.
var fuzzStores = []model.CellStore{model.StoreRaw, model.StoreP1}

// FuzzEquivalence feeds arbitrary byte strings through DecodeScenario
// and asserts the path-equivalence contract on whatever configuration
// falls out. Every input decodes to a valid small scenario (bytes map
// onto bounded fields), so the fuzzer explores configuration space —
// geometry × loss kind × concurrency × pruning — not crash space.
func FuzzEquivalence(f *testing.F) {
	f.Add([]byte("equivalence-seed"))
	f.Add([]byte{0, 0, 0, 0, 0, 0, 0, 0, 0, 0})
	f.Add([]byte{2, 6, 2, 4, 3, 3, 1, 0x82, 2, 7, 7})
	f.Add([]byte{1, 3, 1, 1, 0, 1, 2, 1, 3, 255, 128, 64})
	f.Fuzz(func(t *testing.T, data []byte) {
		s, flags, ok := DecodeScenario(data)
		if !ok {
			return
		}
		if err := Equivalence(s, flags.Workers); err != nil {
			t.Fatalf("scenario %+v flags %+v: %v", s, flags, err)
		}
		if step := flags.PruneStep; step > 0 {
			// Two-point bounded-divergence ladder: no pruning must not
			// diverge, the decoded threshold may diverge but boundedly
			// (monotonicity over the pair).
			th := []float32{0, PruneThresholds[step]}
			if _, err := CheckPruneMonotone(s, th, 1e-9); err != nil {
				t.Fatalf("scenario %+v threshold %g: %v", s, PruneThresholds[step], err)
			}
		}
	})
}

// FuzzCheckpointed feeds decoded (scenario, budget) pairs through the
// checkpointed-BPTT contract: the ladder rungs plus the placement the
// decoded byte budget buys must all reproduce full storage bitwise.
func FuzzCheckpointed(f *testing.F) {
	f.Add([]byte("checkpointed-seed"))
	f.Add([]byte{0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0})
	f.Add([]byte{2, 6, 2, 4, 3, 3, 1, 0x82, 2, 7, 3})
	f.Add([]byte{1, 5, 1, 2, 1, 2, 2, 1, 0, 99, 7, 13})
	f.Fuzz(func(t *testing.T, data []byte) {
		s, flags, ok := DecodeScenario(data)
		if !ok {
			return
		}
		if err := EquivalenceCheckpointed(s, flags.Workers); err != nil {
			t.Fatalf("scenario %+v flags %+v: %v", s, flags, err)
		}
		// The decoded budget's own placement, beyond the fixed ladder:
		// whatever memplan plans for it must also agree bitwise.
		budget := DecodeBudget(data, s.Cfg, memplan.Baseline)
		pl := memplan.Plan(s.Cfg, memplan.Baseline, budget)
		if !pl.Feasible || pl.FullStorage() {
			return
		}
		base, err := RunPath(s, PathSpec{Name: "fuzz/full", Store: model.StoreRaw}, flags.Workers)
		if err != nil {
			t.Fatal(err)
		}
		got, err := RunPath(s, PathSpec{
			Name: "fuzz/budget", Store: model.StoreRaw,
			Boundaries: pl.Boundaries, NoArena: flags.NoArena,
		}, flags.Workers)
		if err != nil {
			t.Fatal(err)
		}
		if err := comparePaths(base, got, "fuzz/budget", Bitwise); err != nil {
			t.Fatalf("scenario %+v budget %d (placement %v): %v", s, budget, pl.Boundaries, err)
		}
	})
}

// FuzzGradCheck feeds decoded scenarios through the full trust chain:
// reference analytic gradients vs finite differences, then the float32
// raw and P1 paths vs the reference. FD probes are capped low — each
// costs two reference forward passes — so individual inputs stay fast.
func FuzzGradCheck(f *testing.F) {
	f.Add([]byte("gradcheck-seed"))
	f.Add([]byte{1, 1, 0, 0, 0, 0, 0, 0, 0, 1})
	f.Add([]byte{2, 4, 1, 2, 1, 2, 1, 0, 0, 42, 9})
	f.Add([]byte{0, 2, 2, 3, 2, 0, 2, 0, 0, 3, 1, 4})
	f.Fuzz(func(t *testing.T, data []byte) {
		s, _, ok := DecodeScenario(data)
		if !ok {
			return
		}
		for _, store := range fuzzStores {
			if err := GradCheck(s, store, 3); err != nil {
				t.Fatalf("scenario %+v %s: %v", s, storeName(store), err)
			}
		}
	})
}
