package check

import (
	"fmt"
	"math"

	"etalstm/internal/model"
	"etalstm/internal/reorder"
	"etalstm/internal/rng"
	"etalstm/internal/tensor"
	"etalstm/internal/train"
)

// Tolerances for the two links of the trust chain. The float64
// reference against its own central finite differences is tight (both
// sides are float64; the only error is O(ε²) truncation plus
// cancellation). The float32 network against the float64 reference is
// looser: every intermediate of the optimized path rounds to float32,
// and BPTT compounds those roundings across cells.
const (
	// fdRelTol / fdAbsTol bound |analytic − numeric| for the reference.
	fdRelTol = 1e-5
	fdAbsTol = 1e-8
	// netRelTol / netAbsTol bound |float32 path − reference|.
	netRelTol = 5e-3
	netAbsTol = 5e-4
)

// agree reports whether got matches want under a mixed
// absolute/relative criterion.
func agree(got, want, relTol, absTol float64) bool {
	d := math.Abs(got - want)
	return d <= absTol+relTol*math.Abs(want)
}

// GradCheck validates one scenario end to end:
//
//  1. the reference's analytic gradients against central finite
//     differences of the reference loss (a deterministic parameter
//     sample, float64 vs float64);
//  2. the optimized float32 path's gradients — under the given storage
//     policy (StoreRaw exercises Forward+Backward, StoreP1 exercises
//     ForwardWithP1+BackwardFromP1) — against the reference, every
//     parameter.
//
// maxFDSamples caps how many parameters per tensor run the (expensive,
// two-forward-passes-each) finite-difference probe; <= 0 checks all.
// The first batch of the scenario supplies data. Returns nil when every
// comparison holds.
func GradCheck(s *Scenario, store model.CellStore, maxFDSamples int) error {
	net, err := s.NewNetwork()
	if err != nil {
		return err
	}
	batch := s.Batches()[0]
	inputs, classes, regress := RefInputs(batch)

	ref := NewRef(net)
	refLoss, refGrads, err := ref.Backward(inputs, classes, regress)
	if err != nil {
		return fmt.Errorf("check: reference backward: %w", err)
	}

	if err := fdCheck(ref, refGrads, inputs, classes, regress, maxFDSamples, s.Seed); err != nil {
		return err
	}

	// Optimized float32 path under the requested storage mode.
	var policy model.StoragePolicy
	switch store {
	case model.StoreRaw:
		policy = model.BaselinePolicy()
	case model.StoreP1:
		policy = model.P1Policy()
	default:
		return fmt.Errorf("check: GradCheck does not support store mode %v", store)
	}
	res, err := net.Forward(batch.Inputs, batch.Targets, policy)
	if err != nil {
		return fmt.Errorf("check: network forward: %w", err)
	}
	if !agree(res.Loss, refLoss, 1e-3, 1e-6) {
		return fmt.Errorf("check: loss mismatch: network %v, reference %v", res.Loss, refLoss)
	}
	grads := net.NewGradients()
	if err := net.Backward(res, policy, grads, model.BackwardOpts{}); err != nil {
		return fmt.Errorf("check: network backward: %w", err)
	}
	return compareToRef(grads, refGrads, store)
}

// fdCheck probes a deterministic sample of parameters with central
// differences of the reference loss and compares against the analytic
// gradient. eps scales with the parameter's magnitude so large and tiny
// weights are probed at comparable relative step sizes.
func fdCheck(ref *Ref, g *RefGrads, inputs []*mat64, classes [][]int, regress []*mat64, maxSamples int, seed uint64) error {
	probe := func(name string, params, grads []float64) error {
		idx := sampleIndices(len(params), maxSamples, seed)
		for _, i := range idx {
			orig := params[i]
			eps := 1e-5 * math.Max(1, math.Abs(orig))
			params[i] = orig + eps
			lp, err := ref.Forward(inputs, classes, regress)
			if err != nil {
				return err
			}
			params[i] = orig - eps
			lm, err := ref.Forward(inputs, classes, regress)
			if err != nil {
				return err
			}
			params[i] = orig
			numeric := (lp - lm) / (2 * eps)
			if !agree(grads[i], numeric, fdRelTol, fdAbsTol) {
				return fmt.Errorf("check: finite-difference mismatch at %s[%d]: analytic %v, numeric %v",
					name, i, grads[i], numeric)
			}
		}
		return nil
	}
	for l := range ref.W {
		for gg := range ref.W[l] {
			if err := probe(fmt.Sprintf("layer%d.W[%d]", l, gg), ref.W[l][gg].v, g.W[l][gg].v); err != nil {
				return err
			}
			if err := probe(fmt.Sprintf("layer%d.U[%d]", l, gg), ref.U[l][gg].v, g.U[l][gg].v); err != nil {
				return err
			}
			if err := probe(fmt.Sprintf("layer%d.B[%d]", l, gg), ref.B[l][gg], g.B[l][gg]); err != nil {
				return err
			}
		}
	}
	if err := probe("proj", ref.Proj.v, g.Proj.v); err != nil {
		return err
	}
	return probe("projB", ref.ProjB, g.ProjB)
}

// sampleIndices returns up to max deterministic sample positions in
// [0, n); max <= 0 or max >= n returns every index.
func sampleIndices(n, max int, seed uint64) []int {
	if n == 0 {
		return nil
	}
	if max <= 0 || max >= n {
		idx := make([]int, n)
		for i := range idx {
			idx[i] = i
		}
		return idx
	}
	r := rng.New(seed ^ 0xfd5eed)
	perm := r.Perm(n)
	return perm[:max]
}

// compareToRef checks every float32 gradient entry against the float64
// reference under the mixed tolerance.
func compareToRef(grads *model.Gradients, ref *RefGrads, store model.CellStore) error {
	cmp := func(name string, got []float32, want []float64) error {
		for i := range got {
			if !agree(float64(got[i]), want[i], netRelTol, netAbsTol) {
				return fmt.Errorf("check: %v path gradient mismatch at %s[%d]: network %v, reference %v",
					storeName(store), name, i, got[i], want[i])
			}
		}
		return nil
	}
	for l, lg := range grads.Layer {
		for gg := range lg.W {
			if err := cmp(fmt.Sprintf("layer%d.W[%d]", l, gg), lg.W[gg].Data, ref.W[l][gg].v); err != nil {
				return err
			}
			if err := cmp(fmt.Sprintf("layer%d.U[%d]", l, gg), lg.U[gg].Data, ref.U[l][gg].v); err != nil {
				return err
			}
			if err := cmp(fmt.Sprintf("layer%d.B[%d]", l, gg), lg.B[gg], ref.B[l][gg]); err != nil {
				return err
			}
		}
	}
	if err := cmp("proj", grads.Proj.Data, ref.Proj.v); err != nil {
		return err
	}
	return cmp("projB", grads.ProjB, ref.ProjB)
}

func storeName(s model.CellStore) string {
	switch s {
	case model.StoreRaw:
		return "raw"
	case model.StoreP1:
		return "P1"
	case model.StoreNone:
		return "skip"
	}
	return fmt.Sprintf("store(%d)", int(s))
}

// batchGrads runs one FW+BP pass on net and returns the gradients and
// loss — the shared unit of work for the equivalence engine. Between FW
// and BP the stored P1 sets go through the spec's storage
// transformations: PruneThreshold > 0 applies MS1's near-zero pruning
// (the approximation the compressed store introduces) and F16 rounds
// the survivors through binary16. BP itself runs dense or sparse per
// p.SparseBP/p.TopK.
func batchGrads(net *model.Network, b train.Batch, policy model.StoragePolicy, p PathSpec) (*model.Gradients, float64, error) {
	res, err := net.Forward(b.Inputs, b.Targets, policy)
	if err != nil {
		return nil, 0, err
	}
	loss := res.Loss
	if p.PruneThreshold > 0 || p.F16 {
		pcfg := reorder.Config{Threshold: p.PruneThreshold}
		for l := range res.P1 {
			for t := range res.P1[l] {
				if p1 := res.P1[l][t]; p1 != nil {
					if p.PruneThreshold > 0 {
						reorder.PruneInPlace(p1, pcfg)
					}
					if p.F16 {
						for _, m := range p1.Matrices() {
							tensor.QuantizeF16(m)
						}
					}
				}
			}
		}
	}
	grads := net.NewGradients()
	opts := model.BackwardOpts{SparseBP: p.SparseBP, TopK: p.TopK}
	if err := net.Backward(res, policy, grads, opts); err != nil {
		return nil, 0, err
	}
	return grads, loss, nil
}
