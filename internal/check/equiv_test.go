package check

import (
	"fmt"
	"testing"

	"etalstm/internal/model"
	"etalstm/internal/skip"
)

// TestEquivalenceRandomized runs the full path matrix — serial/parallel
// × arena/no-arena × raw/P1 storage — over randomized scenarios and
// asserts the bitwise and ULP-bounded agreement contracts.
func TestEquivalenceRandomized(t *testing.T) {
	for _, seed := range []uint64{2, 4, 6, 10, 12} {
		seed := seed
		s := RandomScenario(seed)
		t.Run(fmt.Sprintf("seed%d/%+v", seed, s.Cfg), func(t *testing.T) {
			t.Parallel()
			if err := Equivalence(s, 2); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestEquivalenceWorkers3 varies the concurrency (and so the group
// size) to make sure the serial/parallel agreement is not an artifact
// of pairs.
func TestEquivalenceWorkers3(t *testing.T) {
	s := RandomScenario(42)
	s.NumBatches = 5 // a ragged final group of 2
	if err := Equivalence(s, 3); err != nil {
		t.Fatal(err)
	}
}

// TestLossesBitwiseAcrossStores pins the strongest cross-path claim:
// the FW pass is shared by every storage mode, so per-batch losses are
// bit-identical between the raw and P1 paths — not merely close.
func TestLossesBitwiseAcrossStores(t *testing.T) {
	s := RandomScenario(17)
	raw, err := RunPath(s, PathSpec{Name: "raw", Store: model.StoreRaw}, 2)
	if err != nil {
		t.Fatal(err)
	}
	p1, err := RunPath(s, PathSpec{Name: "p1", Store: model.StoreP1}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := CompareLosses(raw.Losses, p1.Losses); err != nil {
		t.Fatal(err)
	}
}

// TestPruneMonotoneDivergence is the bounded-divergence contract for
// MS1's near-zero pruning: threshold 0 must not diverge at all, and the
// gradient distance from the unpruned baseline must grow monotonically
// with the threshold.
func TestPruneMonotoneDivergence(t *testing.T) {
	for _, seed := range []uint64{9, 23} {
		s := RandomScenario(seed)
		dists, err := CheckPruneMonotone(s, PruneThresholds, 1e-9)
		if err != nil {
			t.Fatalf("seed %d: %v (distances %v)", seed, err, dists)
		}
		t.Logf("seed %d: thresholds %v → distances %v", seed, PruneThresholds, dists)
	}
}

// buildSkipPlan constructs an MS2 plan that actually skips cells for
// the scenario's geometry (relative threshold high enough to bite, base
// mode as given).
func buildSkipPlan(s *Scenario, base model.CellStore) *skip.Plan {
	p := skip.NewPredictor(s.Cfg.Loss, s.Cfg.Layers, s.Cfg.SeqLen)
	return skip.Build(p, 1.0, skip.Config{Threshold: 0.6, Base: base})
}

// skipScenario returns a geometry long and deep enough that the plan
// has room to skip (SeqLen 1–2 layers leave nothing to drop). A single
// batch: skipping changes the gradients, so from the second optimizer
// step on, the dense and skipped trajectories legitimately diverge —
// the bounded-divergence contracts compare within one step.
func skipScenario() *Scenario {
	return &Scenario{
		Seed: 31,
		Cfg: model.Config{
			InputSize: 2, Hidden: 4, Layers: 2, SeqLen: 6,
			Batch: 2, OutSize: 3, Loss: model.SingleLoss,
		},
		NumBatches: 1,
	}
}

// TestScaledMassConserved is the bounded-divergence contract for MS2:
// after convergence-aware scaling, each touched layer's surviving
// gradient mass must land within a loose band of the dense mass.
func TestScaledMassConserved(t *testing.T) {
	s := skipScenario()
	plan := buildSkipPlan(s, model.StoreRaw)
	if plan.SkippedFrac() == 0 {
		t.Fatal("test plan skips nothing; raise the threshold")
	}

	dense, err := RunPath(s, PathSpec{Name: "dense", Store: model.StoreRaw}, 1)
	if err != nil {
		t.Fatal(err)
	}
	scaled, err := RunPath(s, PathSpec{Name: "skip+scale", Store: model.StoreRaw, Plan: plan}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := CheckScaledMass(dense.Grads, scaled.Grads, plan, 10); err != nil {
		t.Fatal(err)
	}
	// Losses stay bitwise equal: skipping affects only BP, never FW.
	if err := CompareLosses(dense.Losses, scaled.Losses); err != nil {
		t.Fatal(err)
	}
}

// TestScaledMassDetectsCorruption is the required negative case: the
// bounded-divergence assertion must catch an intentionally corrupted
// gradient. A gradient set whose scaling was destroyed (zeroed out on a
// skipped layer's survivors) lands far outside the mass band.
func TestScaledMassDetectsCorruption(t *testing.T) {
	s := skipScenario()
	plan := buildSkipPlan(s, model.StoreRaw)
	dense, err := RunPath(s, PathSpec{Name: "dense", Store: model.StoreRaw}, 1)
	if err != nil {
		t.Fatal(err)
	}
	scaled, err := RunPath(s, PathSpec{Name: "skip+scale", Store: model.StoreRaw, Plan: plan}, 1)
	if err != nil {
		t.Fatal(err)
	}
	corrupt := scaled.Grads.Clone()
	for l := range corrupt.Layer {
		touched := false
		for _, sk := range plan.Skip[l] {
			if sk {
				touched = true
			}
		}
		if touched {
			// Simulate a lost/garbled scaling step: crush the layer's
			// surviving gradients to 2% of their value.
			corrupt.Layer[l].Scale(0.02)
		}
	}
	if err := CheckScaledMass(dense.Grads, corrupt, plan, 10); err == nil {
		t.Fatal("mass-conservation check accepted a corrupted gradient set")
	} else {
		t.Logf("corruption detected as expected: %v", err)
	}
}

// TestSkipPlanComposesWithP1 runs MS1+MS2 together (P1 storage under a
// skip plan) against plain P1: losses stay bitwise identical, the
// FW/BP pipeline completes, and the executed-cell accounting matches
// the plan.
func TestSkipPlanComposesWithP1(t *testing.T) {
	s := skipScenario()
	plan := buildSkipPlan(s, model.StoreP1)
	full, err := RunPath(s, PathSpec{Name: "p1", Store: model.StoreP1}, 1)
	if err != nil {
		t.Fatal(err)
	}
	skipped, err := RunPath(s, PathSpec{Name: "p1+skip", Store: model.StoreP1, Plan: plan}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := CompareLosses(full.Losses, skipped.Losses); err != nil {
		t.Fatal(err)
	}
	cells := s.Cfg.Layers * s.Cfg.SeqLen
	wantSkipped := int(plan.SkippedFrac()*float64(cells) + 0.5)
	if skipped.Grads.SkippedCells != wantSkipped {
		t.Fatalf("skipped %d BP cells, plan says %d", skipped.Grads.SkippedCells, wantSkipped)
	}
	if full.Grads.SkippedCells != 0 {
		t.Fatalf("dense path skipped %d cells", full.Grads.SkippedCells)
	}
}

// TestGradDistanceBasics pins the metric the divergence checks stand
// on: identical sets at distance 0, and a known perturbation at the
// expected relative distance.
func TestGradDistanceBasics(t *testing.T) {
	s := RandomScenario(5)
	res, err := RunPath(s, PathSpec{Name: "base", Store: model.StoreRaw}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if d := GradDistance(res.Grads, res.Grads); d != 0 {
		t.Fatalf("self-distance %g, want 0", d)
	}
	pert := res.Grads.Clone()
	pert.Proj.Data[0] += 1
	if d := GradDistance(res.Grads, pert); d <= 0 {
		t.Fatalf("perturbed distance %g, want > 0", d)
	}
}
