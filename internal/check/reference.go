// Package check is the differential-correctness harness: a deliberately
// naive float64 reference LSTM that serves as ground truth, a central
// finite-difference gradient checker, and an equivalence engine that
// runs one training scenario through every optimized execution path
// (serial/parallel workers, arena/nil workspace, raw/P1 storage,
// pruning and skipping) and bounds how far each is allowed to diverge.
//
// The trust chain has two links, each independently verifiable:
//
//  1. the reference's analytic gradients are validated against central
//     finite differences of its own loss (pure float64, tight bounds);
//  2. the optimized float32 paths (model.Network Forward/Backward, the
//     P1-reordered flow, the data-parallel engine) are validated
//     against the reference, and against each other in ULPs.
//
// Every routine here favours obviousness over speed: plain loops, no
// workspace, no reordering, no shared buffers. Nothing in this package
// may be called from production code — it exists so that every future
// performance PR has an oracle to run against.
package check

import (
	"fmt"
	"math"

	"etalstm/internal/lstm"
	"etalstm/internal/model"
)

// mat64 is a dense row-major float64 matrix — the only data structure
// the reference uses.
type mat64 struct {
	rows, cols int
	v          []float64
}

func newMat64(rows, cols int) *mat64 {
	return &mat64{rows: rows, cols: cols, v: make([]float64, rows*cols)}
}

func (m *mat64) at(i, j int) float64     { return m.v[i*m.cols+j] }
func (m *mat64) set(i, j int, x float64) { m.v[i*m.cols+j] = x }

// Ref is the naive float64 reference network: a deep copy of a
// model.Network's weights, widened to float64, with loop-only FW, BP
// and loss. It is the oracle the optimized float32 paths are checked
// against.
type Ref struct {
	Cfg model.Config

	// Per layer, per gate: W [in×hidden], U [hidden×hidden], B [hidden].
	W, U [][lstm.NumGates]*mat64
	B    [][lstm.NumGates][]float64

	Proj  *mat64 // hidden×out
	ProjB []float64
}

// RefGrads holds the reference's analytic gradients, mirroring the
// parameter layout.
type RefGrads struct {
	W, U  [][lstm.NumGates]*mat64
	B     [][lstm.NumGates][]float64
	Proj  *mat64
	ProjB []float64
}

// NewRef copies net's weights into a float64 reference.
func NewRef(net *model.Network) *Ref {
	cfg := net.Cfg
	r := &Ref{Cfg: cfg, ProjB: make([]float64, cfg.OutSize)}
	for l := 0; l < cfg.Layers; l++ {
		p := net.Layer[l]
		var w, u [lstm.NumGates]*mat64
		var b [lstm.NumGates][]float64
		for g := lstm.Gate(0); g < lstm.NumGates; g++ {
			w[g] = newMat64(p.W[g].Rows, p.W[g].Cols)
			for i, x := range p.W[g].Data {
				w[g].v[i] = float64(x)
			}
			u[g] = newMat64(p.U[g].Rows, p.U[g].Cols)
			for i, x := range p.U[g].Data {
				u[g].v[i] = float64(x)
			}
			b[g] = make([]float64, len(p.B[g]))
			for i, x := range p.B[g] {
				b[g][i] = float64(x)
			}
		}
		r.W = append(r.W, w)
		r.U = append(r.U, u)
		r.B = append(r.B, b)
	}
	r.Proj = newMat64(net.Proj.Rows, net.Proj.Cols)
	for i, x := range net.Proj.Data {
		r.Proj.v[i] = float64(x)
	}
	for i, x := range net.ProjB {
		r.ProjB[i] = float64(x)
	}
	return r
}

func (r *Ref) newGrads() *RefGrads {
	g := &RefGrads{
		Proj:  newMat64(r.Proj.rows, r.Proj.cols),
		ProjB: make([]float64, len(r.ProjB)),
	}
	for l := range r.W {
		var w, u [lstm.NumGates]*mat64
		var b [lstm.NumGates][]float64
		for gg := lstm.Gate(0); gg < lstm.NumGates; gg++ {
			w[gg] = newMat64(r.W[l][gg].rows, r.W[l][gg].cols)
			u[gg] = newMat64(r.U[l][gg].rows, r.U[l][gg].cols)
			b[gg] = make([]float64, len(r.B[l][gg]))
		}
		g.W = append(g.W, w)
		g.U = append(g.U, u)
		g.B = append(g.B, b)
	}
	return g
}

// refState is everything one forward pass stored — every intermediate,
// for every cell, with no lifetime management at all.
type refState struct {
	x          [][]*mat64 // [layer][t] layer input (batch×in)
	f, i, c, o [][]*mat64 // gate activations (batch×hidden)
	s          [][]*mat64 // cell state s_t
	h          [][]*mat64 // hidden output h_t
	logits     []*mat64   // [t], nil where not evaluated
	dLogits    []*mat64
	loss       float64
}

// Forward runs the reference FW pass and loss over float64-widened
// inputs, returning the loss. Inputs and targets use the same types as
// the optimized path; widening happens on read.
func (r *Ref) Forward(inputs []*mat64, classes [][]int, regress []*mat64) (float64, error) {
	st, err := r.forward(inputs, classes, regress)
	if err != nil {
		return 0, err
	}
	return st.loss, nil
}

func sigmoid64(x float64) float64 { return 1 / (1 + math.Exp(-x)) }

func (r *Ref) forward(inputs []*mat64, classes [][]int, regress []*mat64) (*refState, error) {
	cfg := r.Cfg
	if len(inputs) != cfg.SeqLen {
		return nil, fmt.Errorf("check: %d input steps, want %d", len(inputs), cfg.SeqLen)
	}
	st := &refState{
		x: grid(cfg.Layers, cfg.SeqLen), f: grid(cfg.Layers, cfg.SeqLen),
		i: grid(cfg.Layers, cfg.SeqLen), c: grid(cfg.Layers, cfg.SeqLen),
		o: grid(cfg.Layers, cfg.SeqLen), s: grid(cfg.Layers, cfg.SeqLen),
		h:      grid(cfg.Layers, cfg.SeqLen),
		logits: make([]*mat64, cfg.SeqLen), dLogits: make([]*mat64, cfg.SeqLen),
	}
	B, H := cfg.Batch, cfg.Hidden
	for l := 0; l < cfg.Layers; l++ {
		in := cfg.InputSize
		if l > 0 {
			in = H
		}
		hPrev := newMat64(B, H) // zero initial state
		sPrev := newMat64(B, H)
		for t := 0; t < cfg.SeqLen; t++ {
			x := inputs[t]
			if l > 0 {
				x = st.h[l-1][t]
			}
			st.x[l][t] = x
			f, i, c, o := newMat64(B, H), newMat64(B, H), newMat64(B, H), newMat64(B, H)
			s, h := newMat64(B, H), newMat64(B, H)
			for b := 0; b < B; b++ {
				for j := 0; j < H; j++ {
					// raw_g = x·W_g + hPrev·U_g + b_g, one gate at a time.
					var raw [lstm.NumGates]float64
					for g := lstm.Gate(0); g < lstm.NumGates; g++ {
						acc := r.B[l][g][j]
						for k := 0; k < in; k++ {
							acc += x.at(b, k) * r.W[l][g].at(k, j)
						}
						for k := 0; k < H; k++ {
							acc += hPrev.at(b, k) * r.U[l][g].at(k, j)
						}
						raw[g] = acc
					}
					fv := sigmoid64(raw[lstm.GateF])
					iv := sigmoid64(raw[lstm.GateI])
					cv := math.Tanh(raw[lstm.GateC])
					ov := sigmoid64(raw[lstm.GateO])
					sv := fv*sPrev.at(b, j) + iv*cv
					f.set(b, j, fv)
					i.set(b, j, iv)
					c.set(b, j, cv)
					o.set(b, j, ov)
					s.set(b, j, sv)
					h.set(b, j, ov*math.Tanh(sv))
				}
			}
			st.f[l][t], st.i[l][t], st.c[l][t], st.o[l][t] = f, i, c, o
			st.s[l][t], st.h[l][t] = s, h
			hPrev, sPrev = h, s
		}
	}
	if err := r.computeLoss(st, classes, regress); err != nil {
		return nil, err
	}
	return st, nil
}

func grid(layers, seqLen int) [][]*mat64 {
	g := make([][]*mat64, layers)
	for l := range g {
		g[l] = make([]*mat64, seqLen)
	}
	return g
}

// computeLoss mirrors model.Network.computeLoss in float64: the same
// three loss topologies, the same masking, the same normalization.
func (r *Ref) computeLoss(st *refState, classes [][]int, regress []*mat64) error {
	cfg := r.Cfg
	top := st.h[cfg.Layers-1]
	evalStep := func(t int) *mat64 {
		logits := newMat64(cfg.Batch, cfg.OutSize)
		for b := 0; b < cfg.Batch; b++ {
			for j := 0; j < cfg.OutSize; j++ {
				acc := r.ProjB[j]
				for k := 0; k < cfg.Hidden; k++ {
					acc += top[t].at(b, k) * r.Proj.at(k, j)
				}
				logits.set(b, j, acc)
			}
		}
		st.logits[t] = logits
		return logits
	}
	switch cfg.Loss {
	case model.SingleLoss:
		if len(classes) == 0 {
			return fmt.Errorf("check: single loss requires class targets")
		}
		t := cfg.SeqLen - 1
		loss, dl := crossEntropy64(evalStep(t), classes[len(classes)-1])
		st.loss = loss
		st.dLogits[t] = dl
	case model.PerTimestampLoss:
		if len(classes) != cfg.SeqLen {
			return fmt.Errorf("check: per-timestamp loss requires %d class steps", cfg.SeqLen)
		}
		inv := 1 / float64(cfg.SeqLen)
		for t := 0; t < cfg.SeqLen; t++ {
			loss, dl := crossEntropy64(evalStep(t), classes[t])
			st.loss += loss * inv
			for i := range dl.v {
				dl.v[i] *= inv
			}
			st.dLogits[t] = dl
		}
	case model.RegressionLoss:
		if len(regress) != cfg.SeqLen {
			return fmt.Errorf("check: regression loss requires %d target steps", cfg.SeqLen)
		}
		inv := 1 / float64(cfg.SeqLen)
		for t := 0; t < cfg.SeqLen; t++ {
			loss, dl := squaredError64(evalStep(t), regress[t])
			st.loss += loss * inv
			for i := range dl.v {
				dl.v[i] *= inv
			}
			st.dLogits[t] = dl
		}
	default:
		return fmt.Errorf("check: unknown loss kind %v", cfg.Loss)
	}
	return nil
}

// crossEntropy64 is model.SoftmaxCrossEntropy in float64: mean over
// unmasked rows, targets of -1 masked out, log-sum-exp stabilized.
func crossEntropy64(logits *mat64, targets []int) (float64, *mat64) {
	d := newMat64(logits.rows, logits.cols)
	active := 0
	for _, tgt := range targets {
		if tgt >= 0 {
			active++
		}
	}
	if active == 0 {
		return 0, d
	}
	inv := 1 / float64(active)
	var loss float64
	for b := 0; b < logits.rows; b++ {
		tgt := targets[b]
		if tgt < 0 {
			continue
		}
		mx := logits.at(b, 0)
		for j := 1; j < logits.cols; j++ {
			if v := logits.at(b, j); v > mx {
				mx = v
			}
		}
		var sum float64
		for j := 0; j < logits.cols; j++ {
			sum += math.Exp(logits.at(b, j) - mx)
		}
		logZ := math.Log(sum) + mx
		loss += (logZ - logits.at(b, tgt)) * inv
		for j := 0; j < logits.cols; j++ {
			p := math.Exp(logits.at(b, j)-mx) / sum
			d.set(b, j, p*inv)
		}
		d.set(b, tgt, d.at(b, tgt)-inv)
	}
	return loss, d
}

// squaredError64 is model.SquaredError in float64.
func squaredError64(pred, target *mat64) (float64, *mat64) {
	d := newMat64(pred.rows, pred.cols)
	n := float64(len(pred.v))
	if n == 0 {
		return 0, d
	}
	var loss float64
	for k := range pred.v {
		diff := pred.v[k] - target.v[k]
		loss += diff * diff / n
		d.v[k] = 2 * diff / n
	}
	return loss, d
}

// Backward runs the full reference pass — FW, loss, naive BPTT — and
// returns the loss plus analytic gradients for every parameter.
func (r *Ref) Backward(inputs []*mat64, classes [][]int, regress []*mat64) (float64, *RefGrads, error) {
	st, err := r.forward(inputs, classes, regress)
	if err != nil {
		return 0, nil, err
	}
	cfg := r.Cfg
	B, H := cfg.Batch, cfg.Hidden
	g := r.newGrads()

	// Loss → projection gradients and the top layer's δY seeds.
	dY := make([]*mat64, cfg.SeqLen)
	top := st.h[cfg.Layers-1]
	for t := 0; t < cfg.SeqLen; t++ {
		dl := st.dLogits[t]
		if dl == nil {
			continue
		}
		// δProj += topᵀ·dl ; δProjB += Σrows dl ; δY = dl·Projᵀ
		for k := 0; k < H; k++ {
			for j := 0; j < cfg.OutSize; j++ {
				for b := 0; b < B; b++ {
					g.Proj.set(k, j, g.Proj.at(k, j)+top[t].at(b, k)*dl.at(b, j))
				}
			}
		}
		for j := 0; j < cfg.OutSize; j++ {
			for b := 0; b < B; b++ {
				g.ProjB[j] += dl.at(b, j)
			}
		}
		dy := newMat64(B, H)
		for b := 0; b < B; b++ {
			for k := 0; k < H; k++ {
				var acc float64
				for j := 0; j < cfg.OutSize; j++ {
					acc += dl.at(b, j) * r.Proj.at(k, j)
				}
				dy.set(b, k, acc)
			}
		}
		dY[t] = dy
	}

	for l := cfg.Layers - 1; l >= 0; l-- {
		in := cfg.InputSize
		if l > 0 {
			in = H
		}
		dXBelow := make([]*mat64, cfg.SeqLen)
		dhNext := newMat64(B, H) // δH from t+1 (zero at the last timestamp)
		dsNext := newMat64(B, H) // δS from t+1
		for t := cfg.SeqLen - 1; t >= 0; t-- {
			f, i, c, o := st.f[l][t], st.i[l][t], st.c[l][t], st.o[l][t]
			s := st.s[l][t]
			var hPrev, sPrev *mat64
			if t > 0 {
				hPrev, sPrev = st.h[l][t-1], st.s[l][t-1]
			} else {
				hPrev, sPrev = newMat64(B, H), newMat64(B, H)
			}
			var dGate [lstm.NumGates]*mat64
			for gg := lstm.Gate(0); gg < lstm.NumGates; gg++ {
				dGate[gg] = newMat64(B, H)
			}
			dsPrev := newMat64(B, H)
			for b := 0; b < B; b++ {
				for j := 0; j < H; j++ {
					dh := dhNext.at(b, j)
					if dY[t] != nil {
						dh += dY[t].at(b, j)
					}
					ts := math.Tanh(s.at(b, j))
					ds := dh*o.at(b, j)*(1-ts*ts) + dsNext.at(b, j)
					dGate[lstm.GateO].set(b, j, dh*ts*o.at(b, j)*(1-o.at(b, j)))
					dGate[lstm.GateF].set(b, j, ds*sPrev.at(b, j)*f.at(b, j)*(1-f.at(b, j)))
					dGate[lstm.GateI].set(b, j, ds*c.at(b, j)*i.at(b, j)*(1-i.at(b, j)))
					dGate[lstm.GateC].set(b, j, ds*i.at(b, j)*(1-c.at(b, j)*c.at(b, j)))
					dsPrev.set(b, j, ds*f.at(b, j))
				}
			}
			// Weight gradients and propagated gradients, gate by gate.
			x := st.x[l][t]
			dx := newMat64(B, in)
			dhPrev := newMat64(B, H)
			for gg := lstm.Gate(0); gg < lstm.NumGates; gg++ {
				for k := 0; k < in; k++ {
					for j := 0; j < H; j++ {
						var acc float64
						for b := 0; b < B; b++ {
							acc += x.at(b, k) * dGate[gg].at(b, j)
						}
						g.W[l][gg].set(k, j, g.W[l][gg].at(k, j)+acc)
					}
				}
				for k := 0; k < H; k++ {
					for j := 0; j < H; j++ {
						var acc float64
						for b := 0; b < B; b++ {
							acc += hPrev.at(b, k) * dGate[gg].at(b, j)
						}
						g.U[l][gg].set(k, j, g.U[l][gg].at(k, j)+acc)
					}
				}
				for j := 0; j < H; j++ {
					for b := 0; b < B; b++ {
						g.B[l][gg][j] += dGate[gg].at(b, j)
					}
				}
			}
			// δX and δH_{t-1}: dx = Σ_g dGate_g·W_gᵀ, dhPrev = Σ_g dGate_g·U_gᵀ.
			for gg := lstm.Gate(0); gg < lstm.NumGates; gg++ {
				for b := 0; b < B; b++ {
					for k := 0; k < in; k++ {
						var acc float64
						for j := 0; j < H; j++ {
							acc += dGate[gg].at(b, j) * r.W[l][gg].at(k, j)
						}
						dx.set(b, k, dx.at(b, k)+acc)
					}
					for k := 0; k < H; k++ {
						var acc float64
						for j := 0; j < H; j++ {
							acc += dGate[gg].at(b, j) * r.U[l][gg].at(k, j)
						}
						dhPrev.set(b, k, dhPrev.at(b, k)+acc)
					}
				}
			}
			dhNext, dsNext = dhPrev, dsPrev
			dXBelow[t] = dx
		}
		// Gradients past t=0 are discarded (truncated BPTT, zero start).
		dY = dXBelow
	}
	return st.loss, g, nil
}
