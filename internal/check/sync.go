package check

import (
	"fmt"

	"etalstm/internal/dist"
	"etalstm/internal/model"
	"etalstm/internal/train"
)

// The gradient-sync contracts: what any train.GradientSync owes the
// trainer, checkable against the classic direct-reduce path.
//
//   - A lossless sync (Inproc, or the TCP transport with dense frames
//     and a full quorum) must be invisible: losses, gradients and
//     weights bitwise identical to the direct path (CheckSyncBitwise).
//   - A compressed sync is an approximation, so it owes bounded,
//     monotone divergence instead: keeping everything diverges not at
//     all, and keeping less never helps (CheckCompressMonotone) —
//     the same shape of contract MS1's pruning ladder satisfies.
//   - Over a whole run, error feedback must keep the approximation's
//     trajectory near the dense one: the final losses agree within a
//     relative band (CheckLossBand).

// CheckSyncBitwise asserts the sync mk builds is lossless: the scenario
// run through it matches the direct tree-reduce path bitwise — losses,
// final-step gradients and post-training weights. mk is called once per
// path so stateful syncs start fresh; the returned sync is closed when
// its path finishes.
func CheckSyncBitwise(s *Scenario, workers int, mk func() (train.GradientSync, error)) error {
	if workers < 2 {
		workers = 2
	}
	base, err := RunPath(s, PathSpec{Name: "sync-base", Store: model.StoreRaw}, workers)
	if err != nil {
		return err
	}
	sync, err := mk()
	if err != nil {
		return err
	}
	defer sync.Close()
	got, err := RunPath(s, PathSpec{Name: "sync-seam", Store: model.StoreRaw, Sync: sync}, workers)
	if err != nil {
		return err
	}
	return comparePaths(base, got, "sync-seam", Bitwise)
}

// CheckCompressMonotone runs one optimizer step through compressed
// syncs across a keep-fraction ladder (descending coverage) and asserts
// the bounded-divergence contract: KeepFrac 1 diverges not at all from
// the dense reduce, and divergence is monotone non-increasing in the
// kept fraction, within slack. Fresh syncs per rung keep error feedback
// out of the comparison (it is a cross-step mechanism; a single step
// sees only the raw sparsification error).
func CheckCompressMonotone(s *Scenario, keeps []float64, slack float64) ([]float64, error) {
	one := *s
	one.NumBatches = 1
	s = &one
	base, err := RunPath(s, PathSpec{Name: "compress-base", Store: model.StoreRaw}, 1)
	if err != nil {
		return nil, err
	}
	dists := make([]float64, len(keeps))
	for i, keep := range keeps {
		sync := &dist.Compressed{Opts: dist.CompressOptions{KeepFrac: keep}}
		got, err := RunPath(s, PathSpec{Name: fmt.Sprintf("compress-%g", keep), Store: model.StoreRaw, Sync: sync}, 1)
		if err != nil {
			return nil, err
		}
		dists[i] = GradDistance(base.Grads, got.Grads)
	}
	for i, keep := range keeps {
		if keep >= 1 && dists[i] != 0 {
			return dists, fmt.Errorf("check: compression at keep %g diverged (distance %g)", keep, dists[i])
		}
		if i > 0 && keeps[i] <= keeps[i-1] && dists[i]+slack < dists[i-1] {
			return dists, fmt.Errorf("check: divergence not monotone: keep %g → %g but distance %g → %g",
				keeps[i-1], keep, dists[i-1], dists[i])
		}
	}
	return dists, nil
}

// CheckLossBand asserts an approximate run's final loss lands within a
// relative band of the dense run's: |approx − dense| <= relBand ×
// max(|dense|, floor). It is the whole-run bounded-divergence contract
// compressed training owes — error feedback makes per-step drift
// transient, so trajectories stay close even though no step matches
// exactly.
//
// Each side's "final loss" is the mean of its trailing three epochs: a
// converged sparsified run oscillates around zero with per-epoch jitter
// the size of the sparsification error, and a single endpoint sample
// would make the contract a coin flip. floor is the convergence floor —
// the loss magnitude at which the task counts as solved — so once the
// dense run is below it, the band is measured against the floor instead
// of a vanishing dense loss.
func CheckLossBand(dense, approx []float64, relBand, floor float64) error {
	if len(dense) == 0 || len(approx) == 0 {
		return fmt.Errorf("check: loss band needs non-empty traces (dense %d, approx %d)", len(dense), len(approx))
	}
	d := tailMean(dense)
	a := tailMean(approx)
	scale := d
	if scale < 0 {
		scale = -scale
	}
	if scale < floor {
		scale = floor
	}
	if scale < 1e-8 {
		scale = 1e-8
	}
	if diff := a - d; diff > relBand*scale || diff < -relBand*scale {
		return fmt.Errorf("check: final loss %g diverges from dense %g by %g (band %g rel = %g)",
			a, d, a-d, relBand, relBand*scale)
	}
	return nil
}

// tailMean averages the last three entries of trace (fewer if the trace
// is shorter).
func tailMean(trace []float64) float64 {
	n := len(trace)
	w := 3
	if n < w {
		w = n
	}
	var sum float64
	for _, v := range trace[n-w:] {
		sum += v
	}
	return sum / float64(w)
}
