package check

import (
	"fmt"
	"testing"

	"etalstm/internal/model"
)

// TestEquivalenceSparseRandomized runs the sparse-backward contract
// matrix — sparse/dense × {0, pruned thresholds, top-k} × {f32, f16
// storage} × serial/parallel × full/checkpointed — over randomized
// scenarios.
func TestEquivalenceSparseRandomized(t *testing.T) {
	for _, seed := range []uint64{3, 8, 21} {
		seed := seed
		s := RandomScenario(seed)
		t.Run(fmt.Sprintf("seed%d/%+v", seed, s.Cfg), func(t *testing.T) {
			t.Parallel()
			if err := EquivalenceSparse(s, 2); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestTopKMonotoneDivergence is the bounded-divergence contract for the
// structured top-k sparsifier: k ≥ hidden must not diverge at all, and
// the gradient distance from the uncapped sparse path must shrink
// monotonically as k grows.
func TestTopKMonotoneDivergence(t *testing.T) {
	for _, seed := range []uint64{7, 19} {
		s := RandomScenario(seed)
		ks := []int{1, 2, s.Cfg.Hidden, s.Cfg.Hidden + 3}
		dists, err := CheckTopKMonotone(s, ks, 1e-9)
		if err != nil {
			t.Fatalf("seed %d: %v (distances %v)", seed, err, dists)
		}
		t.Logf("seed %d hidden %d: ks %v → distances %v", seed, s.Cfg.Hidden, ks, dists)
	}
}

// TestF16BandHoldsAndBites pins both directions of the f16 storage
// contract: the banded check passes at the documented band, and the
// underlying distance is genuinely nonzero (half-precision rounding of
// random products must move the gradients), so the band is a live
// assertion rather than a comparison of identical values.
func TestF16BandHoldsAndBites(t *testing.T) {
	s := RandomScenario(11)
	if err := CheckF16Band(s, F16GradBand); err != nil {
		t.Fatal(err)
	}
	one := *s
	one.NumBatches = 1
	base, err := RunPath(&one, PathSpec{Name: "f32", Store: model.StoreP1}, 1)
	if err != nil {
		t.Fatal(err)
	}
	f16, err := RunPath(&one, PathSpec{Name: "f16", Store: model.StoreP1, F16: true}, 1)
	if err != nil {
		t.Fatal(err)
	}
	d := GradDistance(base.Grads, f16.Grads)
	if d == 0 {
		t.Fatal("f16 storage left gradients bitwise identical; the band check is vacuous")
	}
	if d > F16GradBand {
		t.Fatalf("f16 distance %g exceeds the band %g", d, F16GradBand)
	}
	t.Logf("f16 gradient distance %g (band %g)", d, F16GradBand)
}

// TestSparseLossBandVsDense asserts the training-level contract the
// etabench acceptance uses: a pruned sparse-backward run converges to a
// final loss inside CheckLossBand of the unpruned dense run.
func TestSparseLossBandVsDense(t *testing.T) {
	s := RandomScenario(29)
	s.NumBatches = 6
	dense, err := RunPath(s, PathSpec{Name: "dense", Store: model.StoreP1}, 2)
	if err != nil {
		t.Fatal(err)
	}
	sparse, err := RunPath(s, PathSpec{
		Name: "sparse@0.1", Store: model.StoreP1, SparseBP: true, PruneThreshold: 0.1,
	}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := CheckLossBand(dense.Losses, sparse.Losses, 0.3, 0.05); err != nil {
		t.Fatal(err)
	}
}
