package check

import (
	"fmt"

	"etalstm/internal/model"
)

// F16GradBand bounds the relative L2 gradient distance the binary16
// storage rounding may introduce. Each stored P1 operand moves by at
// most 2⁻¹¹ relatively (half-precision rounding), and the BPTT
// recurrence compounds that across cells; a real formula error lands
// orders of magnitude above this band.
const F16GradBand = 0.05

// EquivalenceSparse asserts the sparse-backward contract matrix on one
// scenario:
//
//   - sparse BP at threshold 0 — and with a top-k at or above the row
//     length — reproduces the dense P1 path bitwise, serial and
//     parallel, arena on and off;
//   - at every pruning threshold, sparse BP reproduces the dense path
//     consuming the same pruned P1 sets bitwise (skipping exact-zero
//     operands is a no-op term by term, so the contract does not loosen
//     with the threshold);
//   - the checkpointed FW/BP pair under sparse BP reproduces the
//     full-storage sparse path bitwise;
//   - binary16 storage leaves the loss trace exact (FW is untouched),
//     moves gradients only within F16GradBand, and is itself a storage
//     transformation the sparse/dense and serial/parallel contracts
//     hold bitwise across.
//
// workers sets the concurrency of the parallel variants.
func EquivalenceSparse(s *Scenario, workers int) error {
	if workers < 2 {
		workers = 2
	}
	group := workers
	hidden := s.Cfg.Hidden

	base, err := RunPath(s, PathSpec{Name: "p1/dense", Store: model.StoreP1}, group)
	if err != nil {
		return err
	}
	// Axis 1: math-unchanged sparse variants, all bitwise against dense.
	exact := []PathSpec{
		{Name: "sparse@0/serial", Store: model.StoreP1, SparseBP: true},
		{Name: "sparse@0/parallel", Store: model.StoreP1, SparseBP: true, Workers: workers},
		{Name: "sparse@0/noarena", Store: model.StoreP1, SparseBP: true, NoArena: true},
		{Name: "sparse@0/topk=rowlen", Store: model.StoreP1, SparseBP: true, TopK: hidden},
		{Name: "sparse@0/topk>rowlen", Store: model.StoreP1, SparseBP: true, TopK: hidden + 7},
	}
	for _, spec := range exact {
		got, err := RunPath(s, spec, group)
		if err != nil {
			return err
		}
		if err := comparePaths(base, got, spec.Name, Bitwise); err != nil {
			return err
		}
	}

	// Axis 2: pruned operands. The oracle is the dense path consuming
	// the *same* pruned P1 sets — sparse-vs-dense stays bitwise at every
	// threshold because the pairs enumerate exactly the nonzero terms.
	for _, th := range []float32{0.05, 0.1, 0.3} {
		dense, err := RunPath(s, PathSpec{
			Name: fmt.Sprintf("dense@%g", th), Store: model.StoreP1, PruneThreshold: th,
		}, group)
		if err != nil {
			return err
		}
		specs := []PathSpec{
			{Name: fmt.Sprintf("sparse@%g/serial", th), Store: model.StoreP1, SparseBP: true, PruneThreshold: th},
			{Name: fmt.Sprintf("sparse@%g/parallel", th), Store: model.StoreP1, SparseBP: true, PruneThreshold: th, Workers: workers, NoArena: true},
		}
		for _, spec := range specs {
			got, err := RunPath(s, spec, group)
			if err != nil {
				return err
			}
			if err := comparePaths(dense, got, spec.Name, Bitwise); err != nil {
				return err
			}
		}
	}

	// Axis 3: checkpointed BPTT. Pruning and sparse BP both commute with
	// segment recompute (the OnP1 hook transforms each replayed P1 set
	// exactly as the full-storage path did), so the pair stays bitwise.
	if T := s.Cfg.SeqLen; T >= 2 {
		full, err := RunPath(s, PathSpec{
			Name: "sparse-full", Store: model.StoreP1, SparseBP: true, PruneThreshold: 0.1,
		}, group)
		if err != nil {
			return err
		}
		ckpt, err := RunPath(s, PathSpec{
			Name: "sparse-ckpt", Store: model.StoreP1, SparseBP: true, PruneThreshold: 0.1,
			Boundaries: []int{0, T / 2},
		}, group)
		if err != nil {
			return err
		}
		if err := comparePaths(full, ckpt, "sparse-ckpt", Bitwise); err != nil {
			return err
		}
	}

	// Axis 4: binary16 storage. Sparse-vs-dense and serial-vs-parallel
	// stay bitwise on the f16-rounded operands; against full-precision
	// storage the loss trace is exact and the gradients banded.
	f16, err := RunPath(s, PathSpec{Name: "f16/dense", Store: model.StoreP1, F16: true}, group)
	if err != nil {
		return err
	}
	f16exact := []PathSpec{
		{Name: "f16/sparse", Store: model.StoreP1, F16: true, SparseBP: true},
		{Name: "f16/sparse/parallel", Store: model.StoreP1, F16: true, SparseBP: true, Workers: workers},
		{Name: "f16/dense/noarena", Store: model.StoreP1, F16: true, NoArena: true},
	}
	for _, spec := range f16exact {
		got, err := RunPath(s, spec, group)
		if err != nil {
			return err
		}
		if err := comparePaths(f16, got, spec.Name, Bitwise); err != nil {
			return err
		}
	}
	prunedF16, err := RunPath(s, PathSpec{
		Name: "f16/pruned/dense", Store: model.StoreP1, F16: true, PruneThreshold: 0.1,
	}, group)
	if err != nil {
		return err
	}
	prunedF16Sparse, err := RunPath(s, PathSpec{
		Name: "f16/pruned/sparse", Store: model.StoreP1, F16: true, PruneThreshold: 0.1, SparseBP: true,
	}, group)
	if err != nil {
		return err
	}
	if err := comparePaths(prunedF16, prunedF16Sparse, "f16/pruned/sparse", Bitwise); err != nil {
		return err
	}
	return CheckF16Band(s, F16GradBand)
}

// CheckF16Band asserts the binary16 storage contract on one optimizer
// step: the loss is exact (quantization happens after FW) and the
// gradient's relative L2 distance from the full-precision path stays
// within band. One step only — from the second step on the weight
// trajectories legitimately drift and the distance is no longer a pure
// storage-rounding measurement.
func CheckF16Band(s *Scenario, band float64) error {
	one := *s
	one.NumBatches = 1
	base, err := RunPath(&one, PathSpec{Name: "f16band-base", Store: model.StoreP1}, 1)
	if err != nil {
		return err
	}
	got, err := RunPath(&one, PathSpec{Name: "f16band-f16", Store: model.StoreP1, F16: true}, 1)
	if err != nil {
		return err
	}
	if err := CompareLosses(base.Losses, got.Losses); err != nil {
		return fmt.Errorf("f16 storage must not move the loss: %w", err)
	}
	if d := GradDistance(base.Grads, got.Grads); d > band {
		return fmt.Errorf("check: f16 storage moved gradients by %g (band %g)", d, band)
	}
	return nil
}

// CheckTopKMonotone runs the sparse path across a ladder of per-row
// top-k caps and asserts the structured-sparsity contract: divergence
// from the uncapped sparse path is monotone non-increasing in k (a
// larger k keeps a superset of each row's terms... of the k largest
// magnitudes, so the dropped mass can only shrink), and k at or above
// the row length diverges not at all. slack absorbs float measurement
// noise. ks must be ascending. One optimizer step, for the same reason
// as CheckPruneMonotone.
func CheckTopKMonotone(s *Scenario, ks []int, slack float64) ([]float64, error) {
	one := *s
	one.NumBatches = 1
	base, err := RunPath(&one, PathSpec{Name: "topk-base", Store: model.StoreP1, SparseBP: true}, 1)
	if err != nil {
		return nil, err
	}
	dists := make([]float64, len(ks))
	for i, k := range ks {
		got, err := RunPath(&one, PathSpec{
			Name: fmt.Sprintf("topk-%d", k), Store: model.StoreP1, SparseBP: true, TopK: k,
		}, 1)
		if err != nil {
			return nil, err
		}
		dists[i] = GradDistance(base.Grads, got.Grads)
	}
	for i, k := range ks {
		if k >= one.Cfg.Hidden && dists[i] != 0 {
			return dists, fmt.Errorf("check: top-k at k=%d ≥ hidden=%d diverged (distance %g)", k, one.Cfg.Hidden, dists[i])
		}
		if i > 0 && ks[i] >= ks[i-1] && dists[i] > dists[i-1]+slack {
			return dists, fmt.Errorf("check: top-k divergence not monotone: k %d → %d but distance %g → %g",
				ks[i-1], k, dists[i-1], dists[i])
		}
	}
	return dists, nil
}
