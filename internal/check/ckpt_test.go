package check

import (
	"fmt"
	"testing"

	"etalstm/internal/memplan"
	"etalstm/internal/model"
)

// ckptScenario returns a fixed geometry per loss kind, long enough that
// every ladder rung (mid, per-step, memplan's quarter-budget placement)
// is a genuinely different partition.
func ckptScenario(loss model.LossKind) *Scenario {
	return &Scenario{
		Seed: 31 + uint64(loss),
		Cfg: model.Config{
			InputSize: 3, Hidden: 4, Layers: 2, SeqLen: 8, Batch: 2,
			OutSize: 3, Loss: loss,
		},
		NumBatches: 4,
	}
}

// TestEquivalenceCheckpointed runs the full checkpointed matrix —
// budget ladder × raw/P1/pruned-P1 × serial/parallel/no-arena — for
// every loss topology and asserts bitwise agreement with full storage.
func TestEquivalenceCheckpointed(t *testing.T) {
	for _, loss := range []model.LossKind{model.SingleLoss, model.PerTimestampLoss, model.RegressionLoss} {
		loss := loss
		t.Run(loss.String(), func(t *testing.T) {
			t.Parallel()
			if err := EquivalenceCheckpointed(ckptScenario(loss), 2); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestEquivalenceCheckpointedRandomized sweeps randomized geometries
// through the same contract (Workers 3 on one of them for a ragged
// group).
func TestEquivalenceCheckpointedRandomized(t *testing.T) {
	for i, seed := range []uint64{3, 11, 19} {
		seed, workers := seed, 2
		if i == 1 {
			workers = 3
		}
		s := RandomScenario(seed)
		t.Run(fmt.Sprintf("seed%d/%+v", seed, s.Cfg), func(t *testing.T) {
			t.Parallel()
			if err := EquivalenceCheckpointed(s, workers); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestBudgetLadderShape pins what the ladder contains: the ∞ rung is
// always first and full-storage; tiny is per-step; every rung's
// boundaries are valid for the geometry.
func TestBudgetLadderShape(t *testing.T) {
	cfg := ckptScenario(model.SingleLoss).Cfg
	rungs := BudgetLadder(cfg, memplan.Baseline)
	if rungs[0].Name != "inf" || len(rungs[0].Boundaries) != 1 {
		t.Fatalf("first rung must be full storage, got %+v", rungs[0])
	}
	names := map[string]bool{}
	for _, r := range rungs {
		names[r.Name] = true
		if r.Boundaries[0] != 0 {
			t.Fatalf("rung %s must start at column 0", r.Name)
		}
		for i := 1; i < len(r.Boundaries); i++ {
			if r.Boundaries[i] <= r.Boundaries[i-1] || r.Boundaries[i] >= cfg.SeqLen {
				t.Fatalf("rung %s has invalid boundaries %v", r.Name, r.Boundaries)
			}
		}
		if r.Name == "tiny" && len(r.Boundaries) != cfg.SeqLen {
			t.Fatalf("tiny rung must checkpoint every step, got %v", r.Boundaries)
		}
	}
	if !names["mid"] || !names["tiny"] {
		t.Fatalf("ladder missing contract rungs: %v", names)
	}
}

// TestDecodeBudgetBounded: any byte string yields a budget in
// [FullPeak/8, FullPeak] — the fuzzer explores budget space without
// ever producing a degenerate negative value.
func TestDecodeBudgetBounded(t *testing.T) {
	cfg := ckptScenario(model.SingleLoss).Cfg
	full := memplan.Plan(cfg, memplan.Baseline, 0).FullPeak
	for b := 0; b < 256; b++ {
		data := append(make([]byte, 10), byte(b))
		got := DecodeBudget(data, cfg, memplan.Baseline)
		if got < full/8 || got > full {
			t.Fatalf("byte %d: budget %d outside [%d, %d]", b, got, full/8, full)
		}
	}
	if DecodeBudget([]byte{1, 2, 3}, cfg, memplan.Baseline) != 0 {
		t.Fatal("short input must decode to no budget")
	}
}
