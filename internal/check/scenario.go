package check

import (
	"etalstm/internal/model"
	"etalstm/internal/rng"
	"etalstm/internal/tensor"
	"etalstm/internal/train"
)

// Scenario is one fully-determined training situation: a model
// geometry, a weight-initialization seed, and a deterministic stream of
// minibatches. Everything derives from (Seed, Cfg, NumBatches) alone,
// so two paths given the same scenario see bit-identical weights and
// data — any disagreement downstream is the path's fault, never the
// scenario's.
type Scenario struct {
	Seed       uint64
	Cfg        model.Config
	NumBatches int
}

// NewNetwork builds the scenario's network — the same weights every
// call (rng stream keyed by Seed).
func (s *Scenario) NewNetwork() (*model.Network, error) {
	return model.NewNetwork(s.Cfg, rng.New(s.Seed))
}

// Batches materializes the scenario's minibatches. The data stream is
// keyed by Seed+1 so it is independent of weight initialization.
func (s *Scenario) Batches() []train.Batch {
	r := rng.New(s.Seed + 1)
	cfg := s.Cfg
	out := make([]train.Batch, 0, s.NumBatches)
	for n := 0; n < s.NumBatches; n++ {
		b := train.Batch{Targets: &model.Targets{}}
		for t := 0; t < cfg.SeqLen; t++ {
			x := tensor.New(cfg.Batch, cfg.InputSize)
			for i := range x.Data {
				x.Data[i] = r.Uniform(-1, 1)
			}
			b.Inputs = append(b.Inputs, x)
		}
		switch cfg.Loss {
		case model.SingleLoss, model.PerTimestampLoss:
			for t := 0; t < cfg.SeqLen; t++ {
				classes := make([]int, cfg.Batch)
				for i := range classes {
					classes[i] = r.Intn(cfg.OutSize)
					// Occasionally mask a sample out, so the -1 padding
					// path is part of what equivalence covers.
					if cfg.Batch > 1 && r.Intn(8) == 0 {
						classes[i] = -1
					}
				}
				b.Targets.Classes = append(b.Targets.Classes, classes)
			}
		case model.RegressionLoss:
			for t := 0; t < cfg.SeqLen; t++ {
				y := tensor.New(cfg.Batch, cfg.OutSize)
				for i := range y.Data {
					y.Data[i] = r.Uniform(-1, 1)
				}
				b.Targets.Regress = append(b.Targets.Regress, y)
			}
		}
		out = append(out, b)
	}
	return out
}

// RefInputs widens one batch's inputs and targets for the reference
// oracle.
func RefInputs(b train.Batch) (inputs []*mat64, classes [][]int, regress []*mat64) {
	for _, x := range b.Inputs {
		inputs = append(inputs, widen(x))
	}
	if b.Targets != nil {
		classes = b.Targets.Classes
		for _, y := range b.Targets.Regress {
			regress = append(regress, widen(y))
		}
	}
	return inputs, classes, regress
}

func widen(m *tensor.Matrix) *mat64 {
	w := newMat64(m.Rows, m.Cols)
	for i, v := range m.Data {
		w.v[i] = float64(v)
	}
	return w
}

// RandomScenario derives a randomized small scenario from a seed: the
// geometry sweep (layers × loss kind × seqlen × batch) the gradient
// checker and equivalence tests sample from. Sizes stay small enough
// that the float64 reference (O(cells × batch × hidden²)) and the
// finite-difference sweep stay fast.
func RandomScenario(seed uint64) *Scenario {
	r := rng.New(seed ^ 0x5ca1ab1e)
	cfg := model.Config{
		InputSize: 1 + r.Intn(4),
		Hidden:    2 + r.Intn(5),
		Layers:    1 + r.Intn(3),
		SeqLen:    1 + r.Intn(6),
		Batch:     1 + r.Intn(3),
		OutSize:   2 + r.Intn(4),
		Loss:      model.LossKind(r.Intn(3)),
	}
	return &Scenario{Seed: seed, Cfg: cfg, NumBatches: 2 + r.Intn(3)}
}

// DecodeScenario turns a fuzzer byte string into a scenario plus path
// flags, or ok=false when the input is too short. Every byte maps onto
// a bounded field, so arbitrary mutations always yield a valid, small
// configuration — the fuzzer explores configuration space, not crash
// space.
func DecodeScenario(data []byte) (s *Scenario, flags PathFlags, ok bool) {
	if len(data) < 10 {
		return nil, PathFlags{}, false
	}
	cfg := model.Config{
		Layers:    1 + int(data[0])%3,
		SeqLen:    1 + int(data[1])%7,
		Batch:     1 + int(data[2])%3,
		Hidden:    2 + int(data[3])%5,
		InputSize: 1 + int(data[4])%4,
		OutSize:   2 + int(data[5])%4,
		Loss:      model.LossKind(int(data[6]) % 3),
	}
	flags = PathFlags{
		Workers:   1 + int(data[7])%3,
		NoArena:   data[7]&0x80 != 0,
		PruneStep: int(data[8]) % 4,
	}
	var seed uint64
	for _, b := range data[9:] {
		seed = seed*131 + uint64(b)
	}
	return &Scenario{Seed: seed, Cfg: cfg, NumBatches: 2}, flags, true
}

// PathFlags is the fuzzer's decoded path selection.
type PathFlags struct {
	// Workers is the concurrency used for the parallel variant.
	Workers int
	// NoArena additionally runs the workspace-disabled variant.
	NoArena bool
	// PruneStep indexes a small ladder of MS1 pruning thresholds
	// (0 = no pruning) for the bounded-divergence check.
	PruneStep int
}

// PruneThresholds is the ladder PathFlags.PruneStep indexes into.
var PruneThresholds = []float32{0, 0.05, 0.1, 0.3}
