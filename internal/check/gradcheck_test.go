package check

import (
	"fmt"
	"testing"

	"etalstm/internal/model"
)

// maxFDSamples bounds per-tensor finite-difference probes in the
// randomized sweeps; each probe costs two full reference forward
// passes.
const maxFDSamples = 6

// TestGradCheckRandomized is the acceptance sweep: at least 8
// randomized configurations (layers × loss kinds × seqlen × batch),
// each validated through the full trust chain — finite differences →
// float64 reference → float32 optimized path — for both the baseline
// (StoreRaw) and the MS1-reordered (StoreP1) BP.
func TestGradCheckRandomized(t *testing.T) {
	seeds := []uint64{1, 2, 3, 5, 8, 13, 21, 34, 55, 89}
	for _, seed := range seeds {
		s := RandomScenario(seed)
		for _, store := range []model.CellStore{model.StoreRaw, model.StoreP1} {
			store := store
			t.Run(fmt.Sprintf("seed%d/%s/%+v", seed, storeName(store), s.Cfg), func(t *testing.T) {
				t.Parallel()
				if err := GradCheck(s, store, maxFDSamples); err != nil {
					t.Fatal(err)
				}
			})
		}
	}
}

// TestGradCheckEveryLossKind pins one hand-picked configuration per
// loss kind so a regression in any single loss's BP seeding is caught
// by name, not by luck of the random sweep.
func TestGradCheckEveryLossKind(t *testing.T) {
	for _, loss := range []model.LossKind{model.SingleLoss, model.PerTimestampLoss, model.RegressionLoss} {
		loss := loss
		t.Run(fmt.Sprintf("loss%d", int(loss)), func(t *testing.T) {
			t.Parallel()
			s := &Scenario{
				Seed: 7,
				Cfg: model.Config{
					InputSize: 3, Hidden: 4, Layers: 2, SeqLen: 5,
					Batch: 2, OutSize: 3, Loss: loss,
				},
				NumBatches: 1,
			}
			for _, store := range []model.CellStore{model.StoreRaw, model.StoreP1} {
				if err := GradCheck(s, store, maxFDSamples); err != nil {
					t.Fatalf("%s: %v", storeName(store), err)
				}
			}
		})
	}
}

// TestGradCheckDeepNarrow covers the corner the random sweep rarely
// draws: maximum depth with minimum width and a single-step sequence
// (the t==0 P1 zero-hPrev path in every layer).
func TestGradCheckDeepNarrow(t *testing.T) {
	s := &Scenario{
		Seed: 11,
		Cfg: model.Config{
			InputSize: 1, Hidden: 2, Layers: 3, SeqLen: 1,
			Batch: 1, OutSize: 2, Loss: model.SingleLoss,
		},
		NumBatches: 1,
	}
	for _, store := range []model.CellStore{model.StoreRaw, model.StoreP1} {
		if err := GradCheck(s, store, 0); err != nil {
			t.Fatalf("%s: %v", storeName(store), err)
		}
	}
}

// TestGradCheckDetectsCorruption is the harness's own negative control:
// a reference whose analytic gradient is deliberately corrupted must
// fail the finite-difference probe. A checker that cannot fail proves
// nothing.
func TestGradCheckDetectsCorruption(t *testing.T) {
	s := &Scenario{
		Seed: 3,
		Cfg: model.Config{
			InputSize: 2, Hidden: 3, Layers: 1, SeqLen: 3,
			Batch: 2, OutSize: 2, Loss: model.SingleLoss,
		},
		NumBatches: 1,
	}
	net, err := s.NewNetwork()
	if err != nil {
		t.Fatal(err)
	}
	inputs, classes, regress := RefInputs(s.Batches()[0])
	ref := NewRef(net)
	_, grads, err := ref.Backward(inputs, classes, regress)
	if err != nil {
		t.Fatal(err)
	}
	// Sanity: uncorrupted gradients pass.
	if err := fdCheck(ref, grads, inputs, classes, regress, 0, s.Seed); err != nil {
		t.Fatalf("clean gradients failed the probe: %v", err)
	}
	grads.Proj.v[0] += 0.5
	if err := fdCheck(ref, grads, inputs, classes, regress, 0, s.Seed); err == nil {
		t.Fatal("finite-difference probe accepted a corrupted gradient")
	}
}
