package check

import (
	"fmt"

	"etalstm/internal/lstm"
	"etalstm/internal/memplan"
	"etalstm/internal/model"
	"etalstm/internal/reorder"
	"etalstm/internal/tensor"
	"etalstm/internal/train"
)

// ckptBatchGrads is batchGrads for the checkpointed FW/BP pair. MS1's
// pruning (and the F16 storage rounding) moves into the OnP1 hook: the
// hook sees each P1 set exactly once — from the last stored segment
// before BP and from each replayed segment during BP — so BP consumes
// the same transformed products the full-storage path does.
func ckptBatchGrads(net *model.Network, b train.Batch, policy model.StoragePolicy, p PathSpec) (*model.Gradients, float64, error) {
	res, _, err := net.ForwardCheckpointed(b.Inputs, b.Targets, policy, nil, p.Boundaries)
	if err != nil {
		return nil, 0, err
	}
	opts := model.BackwardOpts{SparseBP: p.SparseBP, TopK: p.TopK}
	if p.PruneThreshold > 0 || p.F16 {
		pcfg := reorder.Config{Threshold: p.PruneThreshold}
		opts.OnP1 = func(l, t int, p1 *lstm.P1) {
			if p.PruneThreshold > 0 {
				reorder.PruneInPlace(p1, pcfg)
			}
			if p.F16 {
				for _, m := range p1.Matrices() {
					tensor.QuantizeF16(m)
				}
			}
		}
	}
	grads := net.NewGradients()
	if err := net.BackwardCheckpointed(res, policy, grads, opts); err != nil {
		return nil, 0, err
	}
	return grads, res.Loss, nil
}

// BudgetRung is one rung of the checkpointed-equivalence ladder: a
// named checkpoint boundary set.
type BudgetRung struct {
	Name       string
	Boundaries []int
}

// BudgetLadder is the boundary-set ladder EquivalenceCheckpointed runs:
// the three budgets of the contract (∞ = full storage, mid = two
// segments, tiny = a checkpoint every step) plus, when feasible, the
// placement an actual quarter-peak byte budget buys from memplan.
func BudgetLadder(cfg model.Config, mode memplan.Mode) []BudgetRung {
	T := cfg.SeqLen
	out := []BudgetRung{{"inf", []int{0}}}
	if T >= 2 {
		out = append(out, BudgetRung{"mid", []int{0, T / 2}})
		per := make([]int, T)
		for t := range per {
			per[t] = t
		}
		out = append(out, BudgetRung{"tiny", per})
	}
	full := memplan.Plan(cfg, mode, 0)
	if pl := memplan.Plan(cfg, mode, full.FullPeak/4); pl.Feasible && !pl.FullStorage() {
		out = append(out, BudgetRung{"budget", pl.Boundaries})
	}
	return out
}

// EquivalenceCheckpointed asserts the checkpointed-BPTT contract: for
// every budget rung (∞ / mid / tiny / a real memplan placement), for
// raw and P1 storage (the latter with and without pruning), serial and
// parallel, the checkpointed path reproduces the full-storage path's
// per-batch losses, gradients and post-training weights bitwise.
// workers sets the concurrency of the parallel variants.
func EquivalenceCheckpointed(s *Scenario, workers int) error {
	if workers < 2 {
		workers = 2
	}
	group := workers
	type variant struct {
		name  string
		store model.CellStore
		mode  memplan.Mode
		prune float32
	}
	variants := []variant{
		{"raw", model.StoreRaw, memplan.Baseline, 0},
		{"p1", model.StoreP1, memplan.MS1, 0},
		{"p1-pruned", model.StoreP1, memplan.MS1, 0.1},
	}
	for _, v := range variants {
		base, err := RunPath(s, PathSpec{
			Name: v.name + "/full", Store: v.store, PruneThreshold: v.prune,
		}, group)
		if err != nil {
			return err
		}
		for _, rung := range BudgetLadder(s.Cfg, v.mode) {
			if len(rung.Boundaries) <= 1 {
				continue // ∞ rung: identical spec to base by construction
			}
			specs := []PathSpec{
				{Name: fmt.Sprintf("%s/ckpt-%s/serial", v.name, rung.Name),
					Store: v.store, PruneThreshold: v.prune, Boundaries: rung.Boundaries},
				{Name: fmt.Sprintf("%s/ckpt-%s/parallel", v.name, rung.Name),
					Store: v.store, PruneThreshold: v.prune, Boundaries: rung.Boundaries, Workers: workers},
				{Name: fmt.Sprintf("%s/ckpt-%s/noarena", v.name, rung.Name),
					Store: v.store, PruneThreshold: v.prune, Boundaries: rung.Boundaries, NoArena: true},
			}
			for _, spec := range specs {
				got, err := RunPath(s, spec, group)
				if err != nil {
					return err
				}
				if err := comparePaths(base, got, spec.Name, Bitwise); err != nil {
					return err
				}
			}
		}
	}
	return nil
}

// DecodeBudget extends DecodeScenario's byte mapping with a memory
// budget: the byte after the scenario prefix picks a divisor of the
// full-storage peak (1 = everything fits, up to 8 = a quarter-ish
// budget for small configs). Returns the budget in bytes for the
// decoded scenario under the given mode.
func DecodeBudget(data []byte, cfg model.Config, mode memplan.Mode) int64 {
	full := memplan.Plan(cfg, mode, 0)
	if len(data) < 11 {
		return 0
	}
	div := 1 + int64(data[10])%8
	return full.FullPeak / div
}
