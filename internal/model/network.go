package model

import (
	"fmt"

	"etalstm/internal/lstm"
	"etalstm/internal/obs"
	"etalstm/internal/rng"
	"etalstm/internal/tensor"
)

// Network is a stacked LSTM with a linear output projection. Layer 0
// consumes the external inputs; layer l>0 consumes layer l-1's hidden
// outputs. All unrolled cells of a layer share one lstm.Params.
type Network struct {
	Cfg Config

	Layer []*lstm.Params // len Cfg.Layers
	Proj  *tensor.Matrix // Hidden×OutSize
	ProjB []float32      // len OutSize

	// ws recycles FW/BP scratch across sequences (see Workspace). It
	// makes the network single-goroutine for forward/backward passes:
	// concurrent training uses one Clone per worker, never a shared
	// Network.
	ws *tensor.Workspace
	// wsOff forces Workspace() to return nil, making every FW/BP pass
	// allocate fresh buffers. See DisableWorkspace.
	wsOff bool
}

// Workspace returns the network's scratch arena, creating it on first
// use. Every ForwardState draws its per-sequence buffers from it and
// Backward returns them as the BP sweep consumes them, so steady-state
// training reuses the same storage batch after batch. A Clone starts
// with a fresh workspace of its own — that per-replica confinement is
// what keeps the data-parallel engine race-free.
func (n *Network) Workspace() *tensor.Workspace {
	if n.wsOff {
		return nil
	}
	if n.ws == nil {
		n.ws = tensor.NewWorkspace()
	}
	return n.ws
}

// DisableWorkspace makes the network run FW/BP without a scratch arena:
// Workspace() returns nil, which every kernel accepts (Get degrades to
// a plain allocation, Put to a no-op). The buffer-recycling contract
// promises this changes allocation behaviour only, never the math — the
// differential harness (internal/check) runs the same scenario with the
// arena on and off and asserts bitwise-identical results.
func (n *Network) DisableWorkspace() {
	n.wsOff = true
	n.ws = nil
}

// NewNetwork builds a network with initialized weights.
func NewNetwork(cfg Config, r *rng.RNG) (*Network, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	n := &Network{Cfg: cfg, ProjB: make([]float32, cfg.OutSize)}
	for l := 0; l < cfg.Layers; l++ {
		in := cfg.Hidden
		if l == 0 {
			in = cfg.InputSize
		}
		p := lstm.NewParams(in, cfg.Hidden)
		p.Init(r)
		n.Layer = append(n.Layer, p)
	}
	n.Proj = tensor.New(cfg.Hidden, cfg.OutSize)
	n.Proj.XavierInit(r, cfg.Hidden, cfg.OutSize)
	return n, nil
}

// Clone returns a deep copy of n: same geometry, independent parameter
// storage. Data-parallel replicas are built from clones so concurrent
// FW/BP passes never share mutable weight memory with the master.
func (n *Network) Clone() *Network {
	c := &Network{Cfg: n.Cfg, ProjB: make([]float32, len(n.ProjB))}
	for _, p := range n.Layer {
		c.Layer = append(c.Layer, p.Clone())
	}
	c.Proj = n.Proj.Clone()
	copy(c.ProjB, n.ProjB)
	return c
}

// CopyWeightsFrom overwrites n's parameters with src's. Both networks
// must share the same geometry (typically n is a Clone of src). This is
// the replica re-synchronization step after each data-parallel
// optimizer step.
func (n *Network) CopyWeightsFrom(src *Network) error {
	if n.Cfg != src.Cfg {
		return fmt.Errorf("model: CopyWeightsFrom geometry mismatch: %+v vs %+v", n.Cfg, src.Cfg)
	}
	for l, p := range n.Layer {
		sp := src.Layer[l]
		for g := 0; g < len(p.W); g++ {
			p.W[g].CopyFrom(sp.W[g])
			p.U[g].CopyFrom(sp.U[g])
			copy(p.B[g], sp.B[g])
		}
	}
	n.Proj.CopyFrom(src.Proj)
	copy(n.ProjB, src.ProjB)
	return nil
}

// ParamBytes returns total parameter storage (weight matrices +
// projection), the "Parameter" bar of paper Fig. 5.
func (n *Network) ParamBytes() int64 {
	var b int64
	for _, p := range n.Layer {
		b += p.Bytes()
	}
	b += n.Proj.Bytes() + int64(len(n.ProjB))*4
	return b
}

// Targets carries supervision for one minibatch. Exactly one of the
// fields is consulted, selected by Config.Loss:
//   - SingleLoss: Classes[SeqLen-1] (other timesteps ignored);
//   - PerTimestampLoss: Classes[t] for every t;
//   - RegressionLoss: Regress[t] for every t.
//
// A class of -1 masks that sample/timestep out of the loss.
type Targets struct {
	Classes [][]int          // [t][batch]
	Regress []*tensor.Matrix // [t], each batch×OutSize
}

// ForwardResult holds everything one FW pass produced: outputs, the
// per-cell stored state (raw caches, P1 products or nothing, per the
// policy), the losses, and the output-gradient seeds for BP.
type ForwardResult struct {
	// H[l][t] is layer l's hidden output at timestamp t. These are the
	// activations (plus the external inputs) that every flow stores.
	H [][]*tensor.Matrix
	// Inputs are the external x_t fed to layer 0.
	Inputs []*tensor.Matrix
	// Cache[l][t] is non-nil iff the policy said StoreRaw.
	Cache [][]*lstm.FWCache
	// P1[l][t] is non-nil iff the policy said StoreP1.
	P1 [][]*lstm.P1

	// Loss is the scalar training loss of the minibatch.
	Loss float64
	// PerStepLoss[t] is the loss contribution of timestamp t (single
	// loss: all mass at SeqLen-1). MS2's Eq. 4 predictor consumes this.
	PerStepLoss []float64
	// Logits[t] is the projected output at t (nil where the loss kind
	// does not evaluate that timestamp).
	Logits []*tensor.Matrix

	dLogits []*tensor.Matrix
	// initState is the carried-in state (nil for zero start); Backward
	// needs it as h_{t-1} for the first timestamp's P1 cells.
	initState *State
}

// State carries the recurrent state (h, s per layer) across sequence
// chunks — truncated BPTT, the standard training flow for language
// modeling where documents are longer than the unroll window.
type State struct {
	H, S []*tensor.Matrix // per layer, batch×hidden
}

// ZeroState returns a fresh all-zero state for n.
func (n *Network) ZeroState() *State {
	st := &State{}
	for l := 0; l < n.Cfg.Layers; l++ {
		st.H = append(st.H, tensor.New(n.Cfg.Batch, n.Cfg.Hidden))
		st.S = append(st.S, tensor.New(n.Cfg.Batch, n.Cfg.Hidden))
	}
	return st
}

// Forward runs the full FW phase over a minibatch from a zero initial
// state. xs has SeqLen entries of shape batch×InputSize. policy selects
// per-cell storage; targets may be nil to run inference only (no loss,
// no BP seeds).
func (n *Network) Forward(xs []*tensor.Matrix, targets *Targets, policy StoragePolicy) (*ForwardResult, error) {
	res, _, err := n.ForwardState(xs, targets, policy, nil)
	return res, err
}

// ForwardState runs the FW phase starting from state (nil = zero) and
// returns the carried-out state for the next chunk. Gradients do not
// flow across the chunk boundary (truncated BPTT).
func (n *Network) ForwardState(xs []*tensor.Matrix, targets *Targets, policy StoragePolicy, state *State) (*ForwardResult, *State, error) {
	cfg := n.Cfg
	if len(xs) != cfg.SeqLen {
		return nil, nil, fmt.Errorf("model: got %d input steps, want %d", len(xs), cfg.SeqLen)
	}
	for t, x := range xs {
		if x.Rows != cfg.Batch || x.Cols != cfg.InputSize {
			return nil, nil, fmt.Errorf("model: input %d is %dx%d, want %dx%d",
				t, x.Rows, x.Cols, cfg.Batch, cfg.InputSize)
		}
	}
	if state != nil && (len(state.H) != cfg.Layers || len(state.S) != cfg.Layers) {
		return nil, nil, fmt.Errorf("model: state has %d/%d layers, want %d",
			len(state.H), len(state.S), cfg.Layers)
	}
	if policy == nil {
		policy = BaselinePolicy()
	}

	res := &ForwardResult{
		Inputs:      xs,
		H:           make([][]*tensor.Matrix, cfg.Layers),
		Cache:       make([][]*lstm.FWCache, cfg.Layers),
		P1:          make([][]*lstm.P1, cfg.Layers),
		PerStepLoss: make([]float64, cfg.SeqLen),
		Logits:      make([]*tensor.Matrix, cfg.SeqLen),
		dLogits:     make([]*tensor.Matrix, cfg.SeqLen),
		initState:   state,
	}
	for l := 0; l < cfg.Layers; l++ {
		res.H[l] = make([]*tensor.Matrix, cfg.SeqLen)
		res.Cache[l] = make([]*lstm.FWCache, cfg.SeqLen)
		res.P1[l] = make([]*lstm.P1, cfg.SeqLen)
	}

	ws := n.Workspace()
	out := &State{H: make([]*tensor.Matrix, cfg.Layers), S: make([]*tensor.Matrix, cfg.Layers)}
	for l := 0; l < cfg.Layers; l++ {
		h := ws.Get(cfg.Batch, cfg.Hidden)
		s := ws.Get(cfg.Batch, cfg.Hidden)
		if state != nil {
			// Truncated BPTT: copy so BP cannot reach into the previous
			// chunk and the caller's state stays immutable.
			h.CopyFrom(state.H[l])
			s.CopyFrom(state.S[l])
		}
		// sRetained marks that the current s is held by a StoreRaw cache
		// (as its S, or as the next cell's SPrev); such buffers stay live
		// until BP releases the cache, so the FW loop must not recycle
		// them.
		sRetained := false
		for t := 0; t < cfg.SeqLen; t++ {
			x := xs[t]
			if l > 0 {
				x = res.H[l-1][t]
			}
			oldH, oldS := h, s
			store := policy.Store(l, t)
			switch store {
			case StoreRaw:
				var cache *lstm.FWCache
				h, s, cache = lstm.Forward(ws, n.Layer[l], x, h, s)
				res.Cache[l][t] = cache
			case StoreP1:
				var p1 *lstm.P1
				h, s, p1 = lstm.ForwardWithP1(ws, n.Layer[l], x, h, s)
				res.P1[l][t] = p1
			case StoreNone:
				h, s = lstm.InferenceForward(ws, n.Layer[l], x, h, s)
			}
			res.H[l][t] = h
			if store == StoreRaw {
				// The new cache retains oldS as SPrev (and, at t == 0,
				// oldH as HPrev); both stay live until BP consumes the
				// cell.
				sRetained = true
			} else {
				// MS1/inference cells consume their inputs on the spot:
				// the previous cell state dies once this cell has run
				// (unless a raw cache still holds it), and the
				// initial-h copy dies after the first cell.
				if !sRetained {
					ws.Put(oldS)
				}
				sRetained = false
				if t == 0 {
					ws.Put(oldH)
				}
			}
		}
		out.H[l] = h.Clone()
		out.S[l] = s.Clone()
		if !sRetained {
			ws.Put(s)
		}
	}

	if targets != nil {
		if err := n.computeLoss(res, targets); err != nil {
			return nil, nil, err
		}
	}
	return res, out, nil
}

func (n *Network) computeLoss(res *ForwardResult, targets *Targets) error {
	// The output projection and loss run at the tail of the FW pass, so
	// their time records under the FW phase.
	sp := n.Workspace().Recorder().Begin(obs.PhaseFW)
	defer sp.End()
	cfg := n.Cfg
	top := res.H[cfg.Layers-1]
	evalStep := func(t int) {
		logits := tensor.MatMul(nil, top[t], n.Proj)
		tensor.AddRowVector(logits, logits, n.ProjB)
		res.Logits[t] = logits
	}
	switch cfg.Loss {
	case SingleLoss:
		if len(targets.Classes) == 0 {
			return fmt.Errorf("model: single loss requires class targets")
		}
		t := cfg.SeqLen - 1
		evalStep(t)
		loss, dl := SoftmaxCrossEntropy(res.Logits[t], targets.Classes[len(targets.Classes)-1])
		res.Loss = loss
		res.PerStepLoss[t] = loss
		res.dLogits[t] = dl
	case PerTimestampLoss:
		if len(targets.Classes) != cfg.SeqLen {
			return fmt.Errorf("model: per-timestamp loss requires %d class target steps, got %d",
				cfg.SeqLen, len(targets.Classes))
		}
		inv := float32(1) / float32(cfg.SeqLen)
		for t := 0; t < cfg.SeqLen; t++ {
			evalStep(t)
			loss, dl := SoftmaxCrossEntropy(res.Logits[t], targets.Classes[t])
			res.Loss += loss / float64(cfg.SeqLen)
			res.PerStepLoss[t] = loss / float64(cfg.SeqLen)
			res.dLogits[t] = tensor.Scale(dl, dl, inv)
		}
	case RegressionLoss:
		if len(targets.Regress) != cfg.SeqLen {
			return fmt.Errorf("model: regression loss requires %d target steps, got %d",
				cfg.SeqLen, len(targets.Regress))
		}
		inv := float32(1) / float32(cfg.SeqLen)
		for t := 0; t < cfg.SeqLen; t++ {
			evalStep(t)
			loss, dl := SquaredError(res.Logits[t], targets.Regress[t])
			res.Loss += loss / float64(cfg.SeqLen)
			res.PerStepLoss[t] = loss / float64(cfg.SeqLen)
			res.dLogits[t] = tensor.Scale(dl, dl, inv)
		}
	default:
		return fmt.Errorf("model: unknown loss kind %v", cfg.Loss)
	}
	return nil
}

// Gradients collects the result of one BP pass.
type Gradients struct {
	Layer []*lstm.Grads  // per layer, accumulated over timestamps
	Proj  *tensor.Matrix // Hidden×OutSize
	ProjB []float32
	// SkippedCells counts BP cells the policy skipped (MS2).
	SkippedCells int
	// ExecutedCells counts BP cells actually run.
	ExecutedCells int
}

// NewGradients allocates zeroed gradients for n.
func (n *Network) NewGradients() *Gradients {
	g := &Gradients{
		Proj:  tensor.New(n.Cfg.Hidden, n.Cfg.OutSize),
		ProjB: make([]float32, n.Cfg.OutSize),
	}
	for _, p := range n.Layer {
		g.Layer = append(g.Layer, lstm.NewGrads(p))
	}
	return g
}

// NewGradientsFor allocates zeroed gradients shaped for cfg without
// building a network — the decode template the distributed gradient
// transports use (a coordinator merges gradients it never trains with).
func NewGradientsFor(cfg Config) (*Gradients, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	g := &Gradients{
		Proj:  tensor.New(cfg.Hidden, cfg.OutSize),
		ProjB: make([]float32, cfg.OutSize),
	}
	for l := 0; l < cfg.Layers; l++ {
		in := cfg.Hidden
		if l == 0 {
			in = cfg.InputSize
		}
		lg := &lstm.Grads{Input: in, Hidden: cfg.Hidden}
		for i := lstm.Gate(0); i < lstm.NumGates; i++ {
			lg.W[i] = tensor.New(in, cfg.Hidden)
			lg.U[i] = tensor.New(cfg.Hidden, cfg.Hidden)
			lg.B[i] = make([]float32, cfg.Hidden)
		}
		g.Layer = append(g.Layer, lg)
	}
	return g, nil
}

// Add accumulates o into g (shapes must match). The skip/execute
// counters sum as well, so a merged gradient set reports the combined
// BP-cell accounting of its contributors. This is the element step of
// the data-parallel tree all-reduce.
func (g *Gradients) Add(o *Gradients) {
	for l, lg := range g.Layer {
		lg.Add(o.Layer[l])
	}
	tensor.AddInPlace(g.Proj, o.Proj)
	for i := range g.ProjB {
		g.ProjB[i] += o.ProjB[i]
	}
	g.SkippedCells += o.SkippedCells
	g.ExecutedCells += o.ExecutedCells
}

// Clone returns a deep copy of g — same values, independent storage.
// The equivalence harness snapshots merged gradients with it before a
// reducer mutates them in place.
func (g *Gradients) Clone() *Gradients {
	c := &Gradients{
		Proj:          g.Proj.Clone(),
		ProjB:         make([]float32, len(g.ProjB)),
		SkippedCells:  g.SkippedCells,
		ExecutedCells: g.ExecutedCells,
	}
	copy(c.ProjB, g.ProjB)
	for _, lg := range g.Layer {
		nl := &lstm.Grads{Input: lg.Input, Hidden: lg.Hidden}
		for i := lstm.Gate(0); i < lstm.NumGates; i++ {
			nl.W[i] = lg.W[i].Clone()
			nl.U[i] = lg.U[i].Clone()
			nl.B[i] = append([]float32(nil), lg.B[i]...)
		}
		c.Layer = append(c.Layer, nl)
	}
	return c
}

// Scale multiplies every gradient entry by s (replica averaging after
// an all-reduce; the cell counters are left untouched).
func (g *Gradients) Scale(s float32) {
	for _, lg := range g.Layer {
		lg.Scale(s)
	}
	tensor.Scale(g.Proj, g.Proj, s)
	for i := range g.ProjB {
		g.ProjB[i] *= s
	}
}

// BackwardOpts tunes the BP pass.
type BackwardOpts struct {
	// OnCell, when non-nil, receives each executed BP cell's own weight
	// gradients before they are merged into the layer total. Used to
	// collect the per-timestamp magnitudes of paper Fig. 8. Costs one
	// extra Grads allocation per cell.
	OnCell func(layer, t int, cell *lstm.Grads)

	// OnP1, when non-nil, is invoked for every P1 set a checkpointed BP
	// pass materializes — the stored last segment's sets before BP
	// consumes them, and each recomputed segment's sets right after its
	// replay. It is the hook MS1's near-zero pruning uses so regenerated
	// P1 pairs see exactly the compression the full-storage flow applies
	// between FW and BP. Backward (full storage) never calls it: there
	// the caller prunes ForwardResult.P1 directly.
	OnP1 func(layer, t int, p1 *lstm.P1)

	// SparseBP routes every P1-based BP cell through the pair-driven
	// sparse kernels (lstm.BackwardFromP1Sparse): BP-EW-P2 touches only
	// the pairs that survived pruning and BP-MatMul gathers over each
	// gate's surviving columns. On an unpruned P1 set this changes
	// nothing (bitwise); on a pruned set it converts MS1's storage
	// saving into compute saving. Cells stored as raw caches are
	// unaffected.
	SparseBP bool

	// TopK, when positive and SparseBP is set, additionally caps each
	// batch row of the weight-gradient MatMuls to its TopK
	// largest-|δgate| columns (structurally sparsified backward
	// propagation, Zhu et al. arXiv:1806.00512). Propagated gradients
	// always use the full pattern. TopK ≥ hidden is the identity.
	TopK int
}

// backwardFromP1 dispatches one P1-based BP cell to the dense or sparse
// kernel per opts.
func (opts BackwardOpts) backwardFromP1(ws *tensor.Workspace, p *lstm.Params, grads *lstm.Grads, x, hPrev *tensor.Matrix, p1 *lstm.P1, in lstm.BPInput) lstm.BPOutput {
	if opts.SparseBP {
		return lstm.BackwardFromP1Sparse(ws, p, grads, x, hPrev, p1, in, opts.TopK)
	}
	return lstm.BackwardFromP1(ws, p, grads, x, hPrev, p1, in)
}

// Backward runs BP through time over a ForwardResult. The same policy
// used for Forward must be passed so the driver knows whether to use
// raw caches, P1 products, or to skip (StoreNone) each cell. Skipping a
// cell breaks the δH/δS chain at that point and propagates no δX to the
// layer below (the paper's "as if performing inference" semantics); the
// convergence-aware scaling that compensates lives in internal/skip.
//
// Backward consumes res: as the reverse-time sweep visits each cell it
// releases that cell's cache/P1 set, its stored hidden output and the
// gradients feeding it back to the network's workspace (the in-memory
// analogue of the paper's free-on-consume of intermediates). res must
// not be used again afterwards — its H/Cache/P1/dLogits entries are
// nil-ed as they are consumed.
func (n *Network) Backward(res *ForwardResult, policy StoragePolicy, grads *Gradients, opts BackwardOpts) error {
	cfg := n.Cfg
	if policy == nil {
		policy = BaselinePolicy()
	}
	ws := n.Workspace()

	// Seed: δY for the top layer comes from the loss through the
	// projection; the projection gradient accumulates alongside. The
	// loss-side dLogits are consumed here and released immediately.
	// Projection backward is matrix work, so it records as BP-MatMul.
	sp := ws.Recorder().Begin(obs.PhaseBPMatMul)
	dY := make([]*tensor.Matrix, cfg.SeqLen)
	top := res.H[cfg.Layers-1]
	for t := 0; t < cfg.SeqLen; t++ {
		dl := res.dLogits[t]
		if dl == nil {
			continue
		}
		tensor.AddMatMulTransA(grads.Proj, top[t], dl)
		tensor.SumRows(grads.ProjB, dl)
		dY[t] = tensor.MatMulTransB(ws.Get(cfg.Batch, cfg.Hidden), dl, n.Proj)
		ws.Put(dl)
		res.dLogits[t] = nil
	}
	sp.End()

	for l := cfg.Layers - 1; l >= 0; l-- {
		var dH, dS *tensor.Matrix
		dXBelow := make([]*tensor.Matrix, cfg.SeqLen)
		for t := cfg.SeqLen - 1; t >= 0; t-- {
			if policy.Store(l, t) == StoreNone {
				grads.SkippedCells++
				// The chain breaks here: the pending gradients and this
				// cell's stored output die unconsumed.
				ws.PutAll(dY[t], dH, dS, res.H[l][t])
				dY[t], res.H[l][t] = nil, nil
				dH, dS = nil, nil
				continue
			}
			grads.ExecutedCells++
			in := lstm.BPInput{DY: dY[t], DH: dH, DS: dS}

			target := grads.Layer[l]
			var cellGrads *lstm.Grads
			if opts.OnCell != nil {
				cellGrads = lstm.NewGrads(n.Layer[l])
				target = cellGrads
			}

			var out lstm.BPOutput
			switch {
			case res.Cache[l][t] != nil:
				out = lstm.Backward(ws, n.Layer[l], target, res.Cache[l][t], in)
				res.Cache[l][t].Release(ws)
				res.Cache[l][t] = nil
			case res.P1[l][t] != nil:
				x := res.Inputs[t]
				if l > 0 {
					x = res.H[l-1][t]
				}
				// zeroH is only drawn for the zero-start first timestamp;
				// a carried-in state belongs to the caller and must not
				// be recycled.
				var hPrev, zeroH *tensor.Matrix
				switch {
				case t > 0:
					hPrev = res.H[l][t-1]
				case res.initState != nil:
					hPrev = res.initState.H[l]
				default:
					zeroH = ws.Get(cfg.Batch, cfg.Hidden)
					hPrev = zeroH
				}
				out = opts.backwardFromP1(ws, n.Layer[l], target, x, hPrev, res.P1[l][t], in)
				ws.Put(zeroH)
				res.P1[l][t].Release(ws)
				res.P1[l][t] = nil
			default:
				return fmt.Errorf("model: cell (%d,%d) has no stored state but policy says execute", l, t)
			}

			if opts.OnCell != nil {
				opts.OnCell(l, t, cellGrads)
				grads.Layer[l].Add(cellGrads)
			}
			// Release-on-consume: this cell was the last reader of its
			// incoming gradients and of its own stored hidden output.
			ws.PutAll(dY[t], dH, dS, res.H[l][t])
			dY[t], res.H[l][t] = nil, nil
			dH, dS = out.DHPrev, out.DSPrev
			dXBelow[t] = out.DX
		}
		// Gradients flowing past t=0 into the previous chunk are
		// discarded (truncated BPTT).
		ws.PutAll(dH, dS)
		dY = dXBelow
	}
	for _, d := range dY {
		ws.Put(d)
	}
	return nil
}
