package model

import (
	"fmt"
	"time"

	"etalstm/internal/lstm"
	"etalstm/internal/obs"
	"etalstm/internal/tensor"
)

// Checkpointed BPTT (memory-budgeted training, DESIGN.md §11).
//
// The full-storage flow keeps every cell's intermediates from FW until
// the matching BP cell — the paper's long-reuse-distance problem, with
// sequence length as a hard RAM ceiling. The checkpointed flow instead
// partitions time into segments (memplan.Plan picks the boundaries):
// the main FW pass runs segments before the last in inference mode,
// snapshotting only the (h,s) column entering each boundary, and stores
// per-cell state only for the final segment. BP then walks the segments
// in reverse, replaying FW over each earlier segment from its column
// snapshot to regenerate exactly the per-cell state (raw caches or MS1
// P1 products, per the same storage policy) the full flow would have
// kept — the Gruslys et al. recipe composed with MS1/MS2.
//
// Bitwise discipline. The checkpointed pass reproduces full-storage
// results bit for bit:
//
//   - FW values: Forward, ForwardWithP1 and InferenceForward share one
//     kernel, so replaying a segment produces the identical h/s/P1
//     values the main pass (or the full-storage pass) computed.
//   - Losses: evaluated timesteps are visited in ascending t with the
//     same projection/loss/scale operations as computeLoss.
//   - Projection gradients: accumulated during FW in ascending t — the
//     exact op sequence of Backward's seed loop — then folded into the
//     zero-initialized Gradients, which is exact.
//   - Layer gradients: within a segment BP runs layer-major with t
//     descending, and segments are processed last-to-first, so each
//     layer's accumulation order over global t is identical to the full
//     Backward; the δH/δS carries thread across segment boundaries
//     unchanged. The δY seeds are recomputed per segment from the
//     stored top-layer h (a deterministic function), matching the
//     full-storage seeds bitwise.
type CheckpointedResult struct {
	// Inputs are the external x_t (caller-owned, retained for replay).
	Inputs []*tensor.Matrix
	// Boundaries are the segment starts (ascending, Boundaries[0] == 0).
	Boundaries []int
	// Targets are retained: the BP pass recomputes the per-step dLogits
	// from them instead of storing T output-sized gradient planes.
	Targets *Targets

	// Loss and PerStepLoss match ForwardResult's semantics bitwise.
	Loss        float64
	PerStepLoss []float64

	// cols[i] is the (h,s) column entering Boundaries[i] (cols[0] stays
	// nil — segment 0 restarts from initState or zeros).
	cols []*State
	// seg is the last segment, stored during the main FW pass.
	seg *ckptSegment
	// projG/projBG accumulate the projection gradients during FW, in
	// ascending-t order, so no per-step dLogits/dY planes are retained.
	projG  *tensor.Matrix
	projBG []float32

	initState       *State
	recomputedCells int
	tracker         byteTracker
}

// PeakStoredBytes returns the measured peak of bytes held for later BP
// consumption over the pass so far: checkpoint columns, stored per-cell
// state (h + caches/P1), in-flight δ planes, and the projection-gradient
// accumulators. The running (h,s) state and per-cell scratch are
// transient and excluded — the same accounting memplan.Plan predicts.
func (r *CheckpointedResult) PeakStoredBytes() int64 { return r.tracker.peak }

// RecomputedCells returns how many FW cells were re-executed during BP.
func (r *CheckpointedResult) RecomputedCells() int { return r.recomputedCells }

// ckptSegment is the stored state of one FW segment [lo,hi): per-cell
// hidden outputs plus whatever the storage policy keeps, indexed
// [layer][t-lo].
type ckptSegment struct {
	lo, hi int
	H      [][]*tensor.Matrix
	Cache  [][]*lstm.FWCache
	P1     [][]*lstm.P1
	// sRetained marks layers whose final s is held by a StoreRaw cache
	// (see ForwardState's recycling rules).
	sRetained []bool
}

// byteTracker is a high-water-mark counter for stored bytes.
type byteTracker struct{ cur, peak int64 }

func (b *byteTracker) add(n int64) {
	b.cur += n
	if b.cur > b.peak {
		b.peak = b.cur
	}
}
func (b *byteTracker) sub(n int64) { b.cur -= n }

// evaluates reports whether the loss kind evaluates timestep t.
func (n *Network) evaluates(t int) bool {
	return n.Cfg.Loss != SingleLoss || t == n.Cfg.SeqLen-1
}

// evalOutput projects top (batch×hidden) through the output layer and
// returns timestep t's raw loss plus the dLogits, scaled exactly as
// computeLoss scales them. It is shared by the FW loss accumulation and
// the BP seed recompute, which must produce bitwise-identical values.
func (n *Network) evalOutput(top *tensor.Matrix, targets *Targets, t int) (float64, *tensor.Matrix, error) {
	cfg := n.Cfg
	ws := n.Workspace()
	logits := tensor.MatMul(ws.Get(cfg.Batch, cfg.OutSize), top, n.Proj)
	tensor.AddRowVector(logits, logits, n.ProjB)
	var loss float64
	var dl *tensor.Matrix
	switch cfg.Loss {
	case SingleLoss:
		if len(targets.Classes) == 0 {
			return 0, nil, fmt.Errorf("model: single loss requires class targets")
		}
		loss, dl = SoftmaxCrossEntropy(logits, targets.Classes[len(targets.Classes)-1])
	case PerTimestampLoss:
		if len(targets.Classes) != cfg.SeqLen {
			return 0, nil, fmt.Errorf("model: per-timestamp loss requires %d class target steps, got %d",
				cfg.SeqLen, len(targets.Classes))
		}
		loss, dl = SoftmaxCrossEntropy(logits, targets.Classes[t])
		dl = tensor.Scale(dl, dl, 1/float32(cfg.SeqLen))
	case RegressionLoss:
		if len(targets.Regress) != cfg.SeqLen {
			return 0, nil, fmt.Errorf("model: regression loss requires %d target steps, got %d",
				cfg.SeqLen, len(targets.Regress))
		}
		loss, dl = SquaredError(logits, targets.Regress[t])
		dl = tensor.Scale(dl, dl, 1/float32(cfg.SeqLen))
	default:
		return 0, nil, fmt.Errorf("model: unknown loss kind %v", cfg.Loss)
	}
	ws.Put(logits)
	return loss, dl, nil
}

// foldLoss accumulates one evaluated timestep into the result's loss
// fields and projection-gradient accumulators, mirroring computeLoss's
// arithmetic (and its ascending-t order, which the caller guarantees).
func (n *Network) foldLoss(res *CheckpointedResult, top *tensor.Matrix, t int) error {
	sp := n.Workspace().Recorder().Begin(obs.PhaseFW)
	defer sp.End()
	loss, dl, err := n.evalOutput(top, res.Targets, t)
	if err != nil {
		return err
	}
	if n.Cfg.Loss == SingleLoss {
		res.Loss = loss
		res.PerStepLoss[t] = loss
	} else {
		res.Loss += loss / float64(n.Cfg.SeqLen)
		res.PerStepLoss[t] = loss / float64(n.Cfg.SeqLen)
	}
	tensor.AddMatMulTransA(res.projG, top, dl)
	tensor.SumRows(res.projBG, dl)
	n.Workspace().Put(dl)
	return nil
}

// validBoundaries checks the segment-start invariants.
func validBoundaries(boundaries []int, seqLen int) error {
	if len(boundaries) == 0 || boundaries[0] != 0 {
		return fmt.Errorf("model: boundaries must start at 0, got %v", boundaries)
	}
	for i := 1; i < len(boundaries); i++ {
		if boundaries[i] <= boundaries[i-1] || boundaries[i] >= seqLen {
			return fmt.Errorf("model: boundaries must ascend within [0,%d): %v", seqLen, boundaries)
		}
	}
	return nil
}

// ForwardCheckpointed runs the FW phase under a checkpoint plan:
// segments before the last execute in inference mode (only the (h,s)
// column entering each boundary is snapshotted), the last segment
// stores per-cell state per policy, and losses/projection-gradient
// seeds accumulate along the way. boundaries must satisfy
// validBoundaries; []int{0} (or nil) degenerates to a single stored
// segment — full storage, minus the per-step Logits retention.
// state carries recurrent state across chunks exactly as ForwardState.
func (n *Network) ForwardCheckpointed(xs []*tensor.Matrix, targets *Targets, policy StoragePolicy, state *State, boundaries []int) (*CheckpointedResult, *State, error) {
	cfg := n.Cfg
	if len(boundaries) == 0 {
		boundaries = []int{0}
	}
	if err := validBoundaries(boundaries, cfg.SeqLen); err != nil {
		return nil, nil, err
	}
	if len(xs) != cfg.SeqLen {
		return nil, nil, fmt.Errorf("model: got %d input steps, want %d", len(xs), cfg.SeqLen)
	}
	for t, x := range xs {
		if x.Rows != cfg.Batch || x.Cols != cfg.InputSize {
			return nil, nil, fmt.Errorf("model: input %d is %dx%d, want %dx%d",
				t, x.Rows, x.Cols, cfg.Batch, cfg.InputSize)
		}
	}
	if state != nil && (len(state.H) != cfg.Layers || len(state.S) != cfg.Layers) {
		return nil, nil, fmt.Errorf("model: state has %d/%d layers, want %d",
			len(state.H), len(state.S), cfg.Layers)
	}
	if policy == nil {
		policy = BaselinePolicy()
	}
	ws := n.Workspace()

	K := len(boundaries)
	res := &CheckpointedResult{
		Inputs:      xs,
		Boundaries:  append([]int(nil), boundaries...),
		Targets:     targets,
		PerStepLoss: make([]float64, cfg.SeqLen),
		cols:        make([]*State, K),
		projG:       ws.Get(cfg.Hidden, cfg.OutSize),
		projBG:      make([]float32, cfg.OutSize),
		initState:   state,
	}
	res.tracker.add(res.projG.Bytes() + int64(len(res.projBG))*4)

	// Running recurrent state, copied so the caller's state stays
	// immutable (truncated BPTT, same as ForwardState).
	h := make([]*tensor.Matrix, cfg.Layers)
	s := make([]*tensor.Matrix, cfg.Layers)
	for l := 0; l < cfg.Layers; l++ {
		h[l] = ws.Get(cfg.Batch, cfg.Hidden)
		s[l] = ws.Get(cfg.Batch, cfg.Hidden)
		if state != nil {
			h[l].CopyFrom(state.H[l])
			s[l].CopyFrom(state.S[l])
		}
	}

	// Inference sweep over the recomputable region, time-major: a
	// column's lower-layer output feeds its upper layer immediately, so
	// only the 2·Layers running planes stay live.
	lastLo := boundaries[K-1]
	nextB := 1
	for t := 0; t < lastLo; t++ {
		if nextB < K-1 && t == boundaries[nextB] {
			res.snapshotColumn(nextB, h, s)
			nextB++
		}
		for l := 0; l < cfg.Layers; l++ {
			x := xs[t]
			if l > 0 {
				x = h[l-1]
			}
			oldH, oldS := h[l], s[l]
			h[l], s[l] = lstm.InferenceForward(ws, n.Layer[l], x, oldH, oldS)
			ws.Put(oldS)
			ws.Put(oldH)
		}
		if targets != nil && n.evaluates(t) {
			if err := n.foldLoss(res, h[cfg.Layers-1], t); err != nil {
				return nil, nil, err
			}
		}
	}
	if K > 1 {
		res.snapshotColumn(K-1, h, s)
	}

	// Stored segment: the tail runs exactly like the full-storage FW.
	seg := n.runStoredSegment(res, policy, lastLo, cfg.SeqLen, h, s)
	res.seg = seg
	if targets != nil {
		for t := lastLo; t < cfg.SeqLen; t++ {
			if !n.evaluates(t) {
				continue
			}
			if err := n.foldLoss(res, seg.H[cfg.Layers-1][t-lastLo], t); err != nil {
				return nil, nil, err
			}
		}
	}

	out := &State{H: make([]*tensor.Matrix, cfg.Layers), S: make([]*tensor.Matrix, cfg.Layers)}
	for l := 0; l < cfg.Layers; l++ {
		out.H[l] = h[l].Clone()
		out.S[l] = s[l].Clone()
		// h[l] aliases the segment's last column (BP releases it); s[l]
		// dies here unless a raw cache retains it.
		if !seg.sRetained[l] {
			ws.Put(s[l])
		}
	}
	return res, out, nil
}

// snapshotColumn pins a copy of the running (h,s) column as cols[i].
func (res *CheckpointedResult) snapshotColumn(i int, h, s []*tensor.Matrix) {
	col := &State{}
	var bytes int64
	for l := range h {
		ch := h[l].Clone()
		cs := s[l].Clone()
		col.H = append(col.H, ch)
		col.S = append(col.S, cs)
		bytes += ch.Bytes() + cs.Bytes()
	}
	res.cols[i] = col
	res.tracker.add(bytes)
}

// runStoredSegment advances the running state over [lo,hi), storing
// each cell per policy — the shared tail of the main FW pass and the
// BP-time segment replay. h/s are owned running buffers and are mutated
// in place; on return each h[l] aliases the segment's last column (owned
// by the segment), and s[l] must be recycled by the caller unless
// sRetained[l] says a raw cache holds it.
func (n *Network) runStoredSegment(res *CheckpointedResult, policy StoragePolicy, lo, hi int, h, s []*tensor.Matrix) *ckptSegment {
	cfg := n.Cfg
	ws := n.Workspace()
	seg := &ckptSegment{
		lo: lo, hi: hi,
		H:         make([][]*tensor.Matrix, cfg.Layers),
		Cache:     make([][]*lstm.FWCache, cfg.Layers),
		P1:        make([][]*lstm.P1, cfg.Layers),
		sRetained: make([]bool, cfg.Layers),
	}
	for l := 0; l < cfg.Layers; l++ {
		seg.H[l] = make([]*tensor.Matrix, hi-lo)
		seg.Cache[l] = make([]*lstm.FWCache, hi-lo)
		seg.P1[l] = make([]*lstm.P1, hi-lo)
	}
	for t := lo; t < hi; t++ {
		j := t - lo
		for l := 0; l < cfg.Layers; l++ {
			x := res.Inputs[t]
			if l > 0 {
				x = h[l-1]
			}
			oldH, oldS := h[l], s[l]
			store := policy.Store(l, t)
			switch store {
			case StoreRaw:
				var cache *lstm.FWCache
				h[l], s[l], cache = lstm.Forward(ws, n.Layer[l], x, oldH, oldS)
				seg.Cache[l][j] = cache
				res.tracker.add(cache.IntermediateBytes())
			case StoreP1:
				var p1 *lstm.P1
				h[l], s[l], p1 = lstm.ForwardWithP1(ws, n.Layer[l], x, oldH, oldS)
				seg.P1[l][j] = p1
				res.tracker.add(p1.Bytes())
			case StoreNone:
				h[l], s[l] = lstm.InferenceForward(ws, n.Layer[l], x, oldH, oldS)
			}
			seg.H[l][j] = h[l]
			res.tracker.add(h[l].Bytes())
			if store == StoreRaw {
				// The cache retains oldS as SPrev (and, on the segment's
				// first step, oldH as HPrev) until BP releases the cell.
				seg.sRetained[l] = true
			} else {
				if !seg.sRetained[l] {
					ws.Put(oldS)
				}
				seg.sRetained[l] = false
				if j == 0 {
					ws.Put(oldH)
				}
			}
		}
	}
	return seg
}

// recomputeSegment replays FW over segment i from its checkpoint column
// (or the initial state), storing per-cell state per policy — the
// recompute-FW phase. The per-cell kernel spans are suppressed for the
// replay and its whole wall time is folded into PhaseRecomputeFW, so
// recompute cost never inflates the FW/BP-EW rows of a phase breakdown.
func (n *Network) recomputeSegment(res *CheckpointedResult, i, lo, hi int, policy StoragePolicy, opts BackwardOpts) *ckptSegment {
	cfg := n.Cfg
	ws := n.Workspace()
	h := make([]*tensor.Matrix, cfg.Layers)
	s := make([]*tensor.Matrix, cfg.Layers)
	for l := 0; l < cfg.Layers; l++ {
		h[l] = ws.Get(cfg.Batch, cfg.Hidden)
		s[l] = ws.Get(cfg.Batch, cfg.Hidden)
		switch {
		case i > 0:
			h[l].CopyFrom(res.cols[i].H[l])
			s[l].CopyFrom(res.cols[i].S[l])
		case res.initState != nil:
			h[l].CopyFrom(res.initState.H[l])
			s[l].CopyFrom(res.initState.S[l])
		}
	}
	rec := ws.Recorder()
	var t0 time.Time
	if rec != nil {
		ws.SetRecorder(nil)
		t0 = time.Now()
	}
	seg := n.runStoredSegment(res, policy, lo, hi, h, s)
	if rec != nil {
		ws.SetRecorder(rec)
		rec.Observe(obs.PhaseRecomputeFW, time.Since(t0))
	}
	res.recomputedCells += (hi - lo) * cfg.Layers
	for l := 0; l < cfg.Layers; l++ {
		if !seg.sRetained[l] {
			ws.Put(s[l])
		}
	}
	if opts.OnP1 != nil {
		for l := range seg.P1 {
			for j, p1 := range seg.P1[l] {
				if p1 != nil {
					opts.OnP1(l, lo+j, p1)
				}
			}
		}
	}
	return seg
}

// BackwardCheckpointed runs BP through time over a CheckpointedResult,
// recomputing each earlier segment's per-cell state from its checkpoint
// column as the reverse sweep reaches it. The same policy passed to
// ForwardCheckpointed must be supplied. Like Backward, it consumes res —
// stored state, checkpoint columns and accumulators are released as the
// sweep passes them, and res must not be reused. grads should be fresh
// (zero): the FW-accumulated projection gradients are folded in with one
// exact addition.
func (n *Network) BackwardCheckpointed(res *CheckpointedResult, policy StoragePolicy, grads *Gradients, opts BackwardOpts) error {
	cfg := n.Cfg
	if policy == nil {
		policy = BaselinePolicy()
	}
	if res.Targets == nil {
		return fmt.Errorf("model: checkpointed backward requires targets (run ForwardCheckpointed with supervision)")
	}
	if res.seg == nil {
		return fmt.Errorf("model: checkpointed result already consumed")
	}
	ws := n.Workspace()
	rec := ws.Recorder()

	// Fold the FW-accumulated projection gradients. grads starts zero,
	// so this addition reproduces the full-storage seed loop bitwise.
	sp := rec.Begin(obs.PhaseBPMatMul)
	tensor.AddInPlace(grads.Proj, res.projG)
	for i := range grads.ProjB {
		grads.ProjB[i] += res.projBG[i]
	}
	sp.End()

	// The stored last segment's P1 sets see the same pre-BP hook
	// (MS1 pruning) the full-storage flow applies between FW and BP;
	// recomputed segments get theirs inside recomputeSegment.
	if opts.OnP1 != nil {
		for l := range res.seg.P1 {
			for j, p1 := range res.seg.P1[l] {
				if p1 != nil {
					opts.OnP1(l, res.seg.lo+j, p1)
				}
			}
		}
	}

	K := len(res.Boundaries)
	// δH/δS carries persist across segment boundaries, preserving each
	// layer's global reverse-time accumulation chain.
	dH := make([]*tensor.Matrix, cfg.Layers)
	dS := make([]*tensor.Matrix, cfg.Layers)

	for i := K - 1; i >= 0; i-- {
		lo := res.Boundaries[i]
		hi := cfg.SeqLen
		if i+1 < K {
			hi = res.Boundaries[i+1]
		}
		var seg *ckptSegment
		if i == K-1 {
			seg, res.seg = res.seg, nil
		} else {
			seg = n.recomputeSegment(res, i, lo, hi, policy, opts)
		}

		// Seed δY from the loss: the dLogits are recomputed from the
		// segment's stored top-layer h (bitwise identical to the values
		// the FW pass folded into the loss) instead of having been stored.
		dY := make([]*tensor.Matrix, hi-lo)
		sp := rec.Begin(obs.PhaseBPMatMul)
		for t := lo; t < hi; t++ {
			if !n.evaluates(t) {
				continue
			}
			_, dl, err := n.evalOutput(seg.H[cfg.Layers-1][t-lo], res.Targets, t)
			if err != nil {
				sp.End()
				return err
			}
			dY[t-lo] = tensor.MatMulTransB(ws.Get(cfg.Batch, cfg.Hidden), dl, n.Proj)
			res.tracker.add(dY[t-lo].Bytes())
			ws.Put(dl)
		}
		sp.End()

		for l := cfg.Layers - 1; l >= 0; l-- {
			dHl, dSl := dH[l], dS[l]
			dXBelow := make([]*tensor.Matrix, hi-lo)
			for t := hi - 1; t >= lo; t-- {
				j := t - lo
				if policy.Store(l, t) == StoreNone {
					grads.SkippedCells++
					res.releaseDelta(dY[j])
					res.tracker.sub(seg.H[l][j].Bytes())
					ws.PutAll(dY[j], dHl, dSl, seg.H[l][j])
					dY[j], seg.H[l][j] = nil, nil
					dHl, dSl = nil, nil
					continue
				}
				grads.ExecutedCells++
				in := lstm.BPInput{DY: dY[j], DH: dHl, DS: dSl}

				target := grads.Layer[l]
				var cellGrads *lstm.Grads
				if opts.OnCell != nil {
					cellGrads = lstm.NewGrads(n.Layer[l])
					target = cellGrads
				}

				var out lstm.BPOutput
				switch {
				case seg.Cache[l][j] != nil:
					res.tracker.sub(seg.Cache[l][j].IntermediateBytes())
					out = lstm.Backward(ws, n.Layer[l], target, seg.Cache[l][j], in)
					seg.Cache[l][j].Release(ws)
					seg.Cache[l][j] = nil
				case seg.P1[l][j] != nil:
					x := res.Inputs[t]
					if l > 0 {
						x = seg.H[l-1][j]
					}
					// hPrev on the segment's first step comes from the
					// checkpoint column (or the carried-in/zero state) —
					// the same h_{t-1} the full-storage path stored.
					var hPrev, zeroH *tensor.Matrix
					switch {
					case j > 0:
						hPrev = seg.H[l][j-1]
					case i > 0:
						hPrev = res.cols[i].H[l]
					case res.initState != nil:
						hPrev = res.initState.H[l]
					default:
						zeroH = ws.Get(cfg.Batch, cfg.Hidden)
						hPrev = zeroH
					}
					res.tracker.sub(seg.P1[l][j].Bytes())
					out = opts.backwardFromP1(ws, n.Layer[l], target, x, hPrev, seg.P1[l][j], in)
					ws.Put(zeroH)
					seg.P1[l][j].Release(ws)
					seg.P1[l][j] = nil
				default:
					return fmt.Errorf("model: cell (%d,%d) has no stored state but policy says execute", l, t)
				}

				if opts.OnCell != nil {
					opts.OnCell(l, t, cellGrads)
					grads.Layer[l].Add(cellGrads)
				}
				res.releaseDelta(dY[j])
				res.tracker.sub(seg.H[l][j].Bytes())
				ws.PutAll(dY[j], dHl, dSl, seg.H[l][j])
				dY[j], seg.H[l][j] = nil, nil
				dHl, dSl = out.DHPrev, out.DSPrev
				dXBelow[j] = out.DX
				res.tracker.add(out.DX.Bytes())
			}
			dH[l], dS[l] = dHl, dSl
			dY = dXBelow
		}
		for _, d := range dY {
			res.releaseDelta(d)
			ws.Put(d)
		}
		if i > 0 {
			col := res.cols[i]
			for l := range col.H {
				res.tracker.sub(col.H[l].Bytes() + col.S[l].Bytes())
			}
			ws.PutAll(col.H...)
			ws.PutAll(col.S...)
			res.cols[i] = nil
		}
	}
	// Gradients flowing past t=0 into the previous chunk are discarded
	// (truncated BPTT).
	for l := 0; l < cfg.Layers; l++ {
		ws.PutAll(dH[l], dS[l])
	}
	res.tracker.sub(res.projG.Bytes() + int64(len(res.projBG))*4)
	ws.Put(res.projG)
	res.projG = nil
	return nil
}

// releaseDelta discounts a δ plane from the stored-bytes tracker.
func (res *CheckpointedResult) releaseDelta(d *tensor.Matrix) {
	if d != nil {
		res.tracker.sub(d.Bytes())
	}
}
