// Package model builds multi-layer LSTM networks on top of the cell in
// internal/lstm: stacked layers with a linear output projection, the
// three loss topologies the paper distinguishes (single loss,
// per-timestamp loss, regression), and a backpropagation-through-time
// driver whose per-cell storage behaviour is pluggable — the hook MS1
// (store P1 instead of raw gates) and MS2 (store nothing for skipped
// cells) attach to.
package model

import "fmt"

// LossKind selects the loss topology, which the paper shows determines
// the per-timestamp gradient-magnitude pattern (Fig. 8) and therefore
// which BP cells MS2 may skip.
type LossKind int

const (
	// SingleLoss computes one cross-entropy loss from the final
	// timestamp of the top layer (e.g. IMDB sentiment, TREC-10, BABI).
	SingleLoss LossKind = iota
	// PerTimestampLoss computes a cross-entropy loss at every timestamp
	// of the top layer (e.g. PTB language modeling, WMT translation).
	PerTimestampLoss
	// RegressionLoss computes a squared-error loss at every timestamp
	// against real-valued targets (e.g. WAYMO trajectory tracking).
	RegressionLoss
)

// String implements fmt.Stringer.
func (k LossKind) String() string {
	switch k {
	case SingleLoss:
		return "single-loss"
	case PerTimestampLoss:
		return "per-timestamp-loss"
	case RegressionLoss:
		return "regression-loss"
	}
	return fmt.Sprintf("LossKind(%d)", int(k))
}

// Config describes a stacked LSTM model with the geometry vocabulary of
// the paper: hidden size, layer number (LN) and layer length (LL).
type Config struct {
	InputSize int      // feature width of x_t
	Hidden    int      // hidden size (H)
	Layers    int      // layer number (LN)
	SeqLen    int      // layer length (LL) — timestamps per unrolled layer
	Batch     int      // minibatch size
	OutSize   int      // output width (vocab or regression dims)
	Loss      LossKind // loss topology
}

// Validate reports a descriptive error for an unusable configuration.
func (c Config) Validate() error {
	switch {
	case c.InputSize <= 0:
		return fmt.Errorf("model: InputSize %d must be positive", c.InputSize)
	case c.Hidden <= 0:
		return fmt.Errorf("model: Hidden %d must be positive", c.Hidden)
	case c.Layers <= 0:
		return fmt.Errorf("model: Layers %d must be positive", c.Layers)
	case c.SeqLen <= 0:
		return fmt.Errorf("model: SeqLen %d must be positive", c.SeqLen)
	case c.Batch <= 0:
		return fmt.Errorf("model: Batch %d must be positive", c.Batch)
	case c.OutSize <= 0:
		return fmt.Errorf("model: OutSize %d must be positive", c.OutSize)
	}
	return nil
}

// Cells returns the number of unrolled cells (Layers × SeqLen).
func (c Config) Cells() int { return c.Layers * c.SeqLen }

// CellStore tells the BPTT driver what a given FW cell retains for its
// BP counterpart.
type CellStore int

const (
	// StoreRaw keeps the five raw intermediates (baseline flow).
	StoreRaw CellStore = iota
	// StoreP1 keeps only the BP-EW-P1 products (MS1 reordered flow).
	StoreP1
	// StoreNone keeps nothing; the BP cell is skipped (MS2 flow —
	// "as if performing LSTM inference" for that cell).
	StoreNone
)

// StoragePolicy decides the storage mode per unrolled cell. Implemented
// by the baseline (always StoreRaw), MS1 (always StoreP1), MS2 (StoreRaw
// or StoreNone per skip plan) and the combined η-LSTM policy.
type StoragePolicy interface {
	Store(layer, t int) CellStore
}

// PolicyFunc adapts a function to the StoragePolicy interface.
type PolicyFunc func(layer, t int) CellStore

// Store implements StoragePolicy.
func (f PolicyFunc) Store(layer, t int) CellStore { return f(layer, t) }

// BaselinePolicy stores raw intermediates everywhere.
func BaselinePolicy() StoragePolicy {
	return PolicyFunc(func(int, int) CellStore { return StoreRaw })
}

// P1Policy stores P1 products everywhere (pure MS1).
func P1Policy() StoragePolicy {
	return PolicyFunc(func(int, int) CellStore { return StoreP1 })
}
