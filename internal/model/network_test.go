package model

import (
	"math"
	"testing"

	"etalstm/internal/lstm"
	"etalstm/internal/rng"
	"etalstm/internal/tensor"
)

func testConfig(loss LossKind) Config {
	return Config{
		InputSize: 5, Hidden: 4, Layers: 2, SeqLen: 3,
		Batch: 2, OutSize: 6, Loss: loss,
	}
}

func makeInputs(cfg Config, r *rng.RNG) []*tensor.Matrix {
	xs := make([]*tensor.Matrix, cfg.SeqLen)
	for t := range xs {
		xs[t] = tensor.New(cfg.Batch, cfg.InputSize)
		xs[t].RandInit(r, 1)
	}
	return xs
}

func makeClassTargets(cfg Config, r *rng.RNG) *Targets {
	tg := &Targets{Classes: make([][]int, cfg.SeqLen)}
	for t := range tg.Classes {
		tg.Classes[t] = make([]int, cfg.Batch)
		for b := range tg.Classes[t] {
			tg.Classes[t][b] = r.Intn(cfg.OutSize)
		}
	}
	return tg
}

func TestConfigValidate(t *testing.T) {
	good := testConfig(SingleLoss)
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := good
	bad.Hidden = 0
	if err := bad.Validate(); err == nil {
		t.Fatal("expected error for zero hidden")
	}
	bad = good
	bad.SeqLen = -1
	if err := bad.Validate(); err == nil {
		t.Fatal("expected error for negative seqlen")
	}
}

func TestForwardShapesAndLoss(t *testing.T) {
	for _, kind := range []LossKind{SingleLoss, PerTimestampLoss, RegressionLoss} {
		cfg := testConfig(kind)
		r := rng.New(1)
		n, err := NewNetwork(cfg, r)
		if err != nil {
			t.Fatal(err)
		}
		xs := makeInputs(cfg, r)
		var tg *Targets
		if kind == RegressionLoss {
			tg = &Targets{Regress: make([]*tensor.Matrix, cfg.SeqLen)}
			for i := range tg.Regress {
				tg.Regress[i] = tensor.New(cfg.Batch, cfg.OutSize)
				tg.Regress[i].RandInit(r, 1)
			}
		} else {
			tg = makeClassTargets(cfg, r)
		}
		res, err := n.Forward(xs, tg, nil)
		if err != nil {
			t.Fatal(err)
		}
		if res.Loss <= 0 {
			t.Fatalf("%v: loss must be positive at init, got %v", kind, res.Loss)
		}
		if len(res.H) != cfg.Layers || len(res.H[0]) != cfg.SeqLen {
			t.Fatalf("%v: bad H dims", kind)
		}
	}
}

func TestSingleLossOnlyLastStep(t *testing.T) {
	cfg := testConfig(SingleLoss)
	r := rng.New(2)
	n, _ := NewNetwork(cfg, r)
	res, err := n.Forward(makeInputs(cfg, r), makeClassTargets(cfg, r), nil)
	if err != nil {
		t.Fatal(err)
	}
	for t0 := 0; t0 < cfg.SeqLen-1; t0++ {
		if res.PerStepLoss[t0] != 0 {
			t.Fatalf("single loss must concentrate at the last step, step %d = %v", t0, res.PerStepLoss[t0])
		}
	}
	if res.PerStepLoss[cfg.SeqLen-1] != res.Loss {
		t.Fatal("last-step loss must equal total")
	}
}

func TestPerTimestampLossAllSteps(t *testing.T) {
	cfg := testConfig(PerTimestampLoss)
	r := rng.New(3)
	n, _ := NewNetwork(cfg, r)
	res, err := n.Forward(makeInputs(cfg, r), makeClassTargets(cfg, r), nil)
	if err != nil {
		t.Fatal(err)
	}
	for t0 := 0; t0 < cfg.SeqLen; t0++ {
		if res.PerStepLoss[t0] <= 0 {
			t.Fatalf("per-timestamp loss missing at step %d", t0)
		}
	}
}

func TestForwardInputValidation(t *testing.T) {
	cfg := testConfig(SingleLoss)
	r := rng.New(4)
	n, _ := NewNetwork(cfg, r)
	if _, err := n.Forward(makeInputs(cfg, r)[:1], nil, nil); err == nil {
		t.Fatal("expected error for wrong step count")
	}
	bad := makeInputs(cfg, r)
	bad[0] = tensor.New(cfg.Batch, cfg.InputSize+1)
	if _, err := n.Forward(bad, nil, nil); err == nil {
		t.Fatal("expected error for wrong input width")
	}
}

// TestNetworkGradCheck verifies end-to-end BPTT gradients through the
// stacked network, projection and softmax against central differences.
func TestNetworkGradCheck(t *testing.T) {
	cfg := Config{InputSize: 3, Hidden: 3, Layers: 2, SeqLen: 3, Batch: 2, OutSize: 4, Loss: PerTimestampLoss}
	r := rng.New(5)
	n, _ := NewNetwork(cfg, r)
	xs := makeInputs(cfg, r)
	tg := makeClassTargets(cfg, r)

	lossAt := func() float64 {
		res, err := n.Forward(xs, tg, nil)
		if err != nil {
			t.Fatal(err)
		}
		return res.Loss
	}

	res, _ := n.Forward(xs, tg, nil)
	grads := n.NewGradients()
	if err := n.Backward(res, nil, grads, BackwardOpts{}); err != nil {
		t.Fatal(err)
	}

	const eps = 1e-3
	check := func(name string, theta []float32, idx int, analytic float32) {
		t.Helper()
		orig := theta[idx]
		theta[idx] = orig + eps
		lp := lossAt()
		theta[idx] = orig - eps
		lm := lossAt()
		theta[idx] = orig
		num := (lp - lm) / (2 * eps)
		diff := math.Abs(float64(analytic) - num)
		denom := math.Max(1e-4, math.Abs(num)+math.Abs(float64(analytic)))
		if diff/denom > 3e-2 {
			t.Errorf("%s[%d]: analytic %v numeric %v", name, idx, analytic, num)
		}
	}

	for l := 0; l < cfg.Layers; l++ {
		for g := lstm.Gate(0); g < lstm.NumGates; g++ {
			check("W", n.Layer[l].W[g].Data, 0, grads.Layer[l].W[g].Data[0])
			check("U", n.Layer[l].U[g].Data, 4, grads.Layer[l].U[g].Data[4])
			check("B", n.Layer[l].B[g], 1, grads.Layer[l].B[g][1])
		}
	}
	check("Proj", n.Proj.Data, 0, grads.Proj.Data[0])
	check("Proj", n.Proj.Data, cfg.Hidden*cfg.OutSize-1, grads.Proj.Data[cfg.Hidden*cfg.OutSize-1])
	check("ProjB", n.ProjB, 0, grads.ProjB[0])
}

// TestP1PolicyGradEquivalence: training with the MS1 policy must give
// identical gradients to the baseline policy.
func TestP1PolicyGradEquivalence(t *testing.T) {
	cfg := testConfig(PerTimestampLoss)
	r := rng.New(6)
	n, _ := NewNetwork(cfg, r)
	xs := makeInputs(cfg, r)
	tg := makeClassTargets(cfg, r)

	resBase, _ := n.Forward(xs, tg, BaselinePolicy())
	gBase := n.NewGradients()
	if err := n.Backward(resBase, BaselinePolicy(), gBase, BackwardOpts{}); err != nil {
		t.Fatal(err)
	}

	resP1, _ := n.Forward(xs, tg, P1Policy())
	gP1 := n.NewGradients()
	if err := n.Backward(resP1, P1Policy(), gP1, BackwardOpts{}); err != nil {
		t.Fatal(err)
	}

	const tol = 1e-4
	for l := range gBase.Layer {
		for g := lstm.Gate(0); g < lstm.NumGates; g++ {
			if !gBase.Layer[l].W[g].Equal(gP1.Layer[l].W[g], tol) {
				t.Errorf("layer %d W[%v] differs between baseline and P1 policies", l, g)
			}
			if !gBase.Layer[l].U[g].Equal(gP1.Layer[l].U[g], tol) {
				t.Errorf("layer %d U[%v] differs", l, g)
			}
		}
	}
	if !gBase.Proj.Equal(gP1.Proj, tol) {
		t.Error("projection gradient differs")
	}
}

func TestSkipPolicyBreaksChain(t *testing.T) {
	// Skipping all cells of timestamps < SeqLen-1 must equal truncated
	// BPTT: the last cell still produces gradients, earlier cells none.
	cfg := testConfig(SingleLoss)
	r := rng.New(7)
	n, _ := NewNetwork(cfg, r)
	xs := makeInputs(cfg, r)
	tg := makeClassTargets(cfg, r)

	last := cfg.SeqLen - 1
	policy := PolicyFunc(func(l, t int) CellStore {
		if t == last {
			return StoreRaw
		}
		return StoreNone
	})
	res, err := n.Forward(xs, tg, policy)
	if err != nil {
		t.Fatal(err)
	}
	grads := n.NewGradients()
	if err := n.Backward(res, policy, grads, BackwardOpts{}); err != nil {
		t.Fatal(err)
	}
	if grads.SkippedCells != cfg.Layers*(cfg.SeqLen-1) {
		t.Fatalf("SkippedCells = %d", grads.SkippedCells)
	}
	if grads.ExecutedCells != cfg.Layers {
		t.Fatalf("ExecutedCells = %d", grads.ExecutedCells)
	}
	for l := range grads.Layer {
		if grads.Layer[l].AbsSum() == 0 {
			t.Fatalf("layer %d should still get gradients from the last cell", l)
		}
	}
}

func TestSkipAllProducesNoGradients(t *testing.T) {
	cfg := testConfig(SingleLoss)
	r := rng.New(8)
	n, _ := NewNetwork(cfg, r)
	xs := makeInputs(cfg, r)
	tg := makeClassTargets(cfg, r)
	policy := PolicyFunc(func(l, t int) CellStore { return StoreNone })
	res, _ := n.Forward(xs, tg, policy)
	grads := n.NewGradients()
	if err := n.Backward(res, policy, grads, BackwardOpts{}); err != nil {
		t.Fatal(err)
	}
	for l := range grads.Layer {
		if grads.Layer[l].AbsSum() != 0 {
			t.Fatal("fully skipped network must produce zero LSTM gradients")
		}
	}
	// The projection still learns (its inputs are stored outputs).
	if grads.Proj.AbsSum() == 0 {
		t.Fatal("projection gradient should be nonzero")
	}
}

func TestOnCellHookSumsToTotal(t *testing.T) {
	cfg := testConfig(PerTimestampLoss)
	r := rng.New(9)
	n, _ := NewNetwork(cfg, r)
	xs := makeInputs(cfg, r)
	tg := makeClassTargets(cfg, r)

	res, _ := n.Forward(xs, tg, nil)
	gPlain := n.NewGradients()
	if err := n.Backward(res, nil, gPlain, BackwardOpts{}); err != nil {
		t.Fatal(err)
	}

	res2, _ := n.Forward(xs, tg, nil)
	gHooked := n.NewGradients()
	cells := 0
	err := n.Backward(res2, nil, gHooked, BackwardOpts{
		OnCell: func(l, t int, cg *lstm.Grads) { cells++ },
	})
	if err != nil {
		t.Fatal(err)
	}
	if cells != cfg.Cells() {
		t.Fatalf("hook saw %d cells, want %d", cells, cfg.Cells())
	}
	for l := range gPlain.Layer {
		if math.Abs(gPlain.Layer[l].AbsSum()-gHooked.Layer[l].AbsSum()) > 1e-3 {
			t.Fatalf("hooked BP changed layer %d gradients", l)
		}
	}
}

func TestSoftmaxCrossEntropyGradient(t *testing.T) {
	r := rng.New(10)
	logits := tensor.New(3, 5)
	logits.RandInit(r, 2)
	targets := []int{1, 4, 0}
	_, d := SoftmaxCrossEntropy(logits, targets)
	// Gradient rows must sum to ~0 (softmax minus one-hot).
	for b := 0; b < 3; b++ {
		var s float64
		for _, v := range d.Row(b) {
			s += float64(v)
		}
		if math.Abs(s) > 1e-5 {
			t.Fatalf("row %d gradient sum %v", b, s)
		}
	}
	// Numerical check on one element.
	const eps = 1e-3
	idx := 7
	orig := logits.Data[idx]
	logits.Data[idx] = orig + eps
	lp, _ := SoftmaxCrossEntropy(logits, targets)
	logits.Data[idx] = orig - eps
	lm, _ := SoftmaxCrossEntropy(logits, targets)
	logits.Data[idx] = orig
	num := (lp - lm) / (2 * eps)
	if math.Abs(num-float64(d.Data[idx])) > 1e-3 {
		t.Fatalf("CE grad: numeric %v analytic %v", num, d.Data[idx])
	}
}

func TestSoftmaxCrossEntropyMasking(t *testing.T) {
	r := rng.New(11)
	logits := tensor.New(2, 3)
	logits.RandInit(r, 1)
	loss, d := SoftmaxCrossEntropy(logits, []int{-1, 2})
	if loss <= 0 {
		t.Fatal("masked loss should still be positive from active rows")
	}
	for _, v := range d.Row(0) {
		if v != 0 {
			t.Fatal("masked row must have zero gradient")
		}
	}
}

func TestSquaredErrorGradient(t *testing.T) {
	pred := tensor.NewFromData(1, 2, []float32{1, 2})
	tgt := tensor.NewFromData(1, 2, []float32{0, 0})
	loss, d := SquaredError(pred, tgt)
	if math.Abs(loss-2.5) > 1e-6 {
		t.Fatalf("MSE loss: %v", loss)
	}
	if math.Abs(float64(d.Data[0])-1) > 1e-6 || math.Abs(float64(d.Data[1])-2) > 1e-6 {
		t.Fatalf("MSE grad: %v", d.Data)
	}
}

func TestMAEAndPerplexity(t *testing.T) {
	pred := tensor.NewFromData(1, 2, []float32{1, -1})
	tgt := tensor.NewFromData(1, 2, []float32{0, 0})
	if got := MeanAbsoluteError(pred, tgt); math.Abs(got-1) > 1e-9 {
		t.Fatalf("MAE: %v", got)
	}
	if got := Perplexity(0); got != 1 {
		t.Fatalf("Perplexity(0): %v", got)
	}
	if got := Perplexity(math.Log(100)); math.Abs(got-100) > 1e-9 {
		t.Fatalf("Perplexity(ln 100): %v", got)
	}
}

func TestArgmax(t *testing.T) {
	m := tensor.NewFromData(2, 3, []float32{1, 5, 2, 9, 0, 3})
	got := Argmax(m)
	if got[0] != 1 || got[1] != 0 {
		t.Fatalf("Argmax: %v", got)
	}
}

func TestParamBytes(t *testing.T) {
	cfg := testConfig(SingleLoss)
	r := rng.New(12)
	n, _ := NewNetwork(cfg, r)
	var want int64
	for _, p := range n.Layer {
		want += p.Bytes()
	}
	want += n.Proj.Bytes() + int64(cfg.OutSize)*4
	if n.ParamBytes() != want {
		t.Fatalf("ParamBytes: %d want %d", n.ParamBytes(), want)
	}
}

func TestCloneIndependence(t *testing.T) {
	cfg := testConfig(SingleLoss)
	n, err := NewNetwork(cfg, rng.New(3))
	if err != nil {
		t.Fatal(err)
	}
	c := n.Clone()
	if c.Cfg != n.Cfg {
		t.Fatal("clone geometry differs")
	}
	if c.Layer[0].W[0].Data[0] != n.Layer[0].W[0].Data[0] {
		t.Fatal("clone weights differ")
	}
	// Mutating the clone must not reach the original (and vice versa).
	c.Layer[0].W[0].Data[0] += 1
	c.Proj.Data[0] += 1
	c.ProjB[0] += 1
	if c.Layer[0].W[0].Data[0] == n.Layer[0].W[0].Data[0] ||
		c.Proj.Data[0] == n.Proj.Data[0] || c.ProjB[0] == n.ProjB[0] {
		t.Fatal("clone shares parameter storage with the original")
	}
}

func TestCopyWeightsFrom(t *testing.T) {
	cfg := testConfig(SingleLoss)
	src, _ := NewNetwork(cfg, rng.New(4))
	dst, _ := NewNetwork(cfg, rng.New(5))
	if err := dst.CopyWeightsFrom(src); err != nil {
		t.Fatal(err)
	}
	for l := range src.Layer {
		for g := 0; g < 4; g++ {
			for i, v := range src.Layer[l].W[g].Data {
				if dst.Layer[l].W[g].Data[i] != v {
					t.Fatalf("layer %d W[%d][%d] not copied", l, g, i)
				}
			}
		}
	}
	for i, v := range src.Proj.Data {
		if dst.Proj.Data[i] != v {
			t.Fatalf("Proj[%d] not copied", i)
		}
	}
	other := testConfig(SingleLoss)
	other.Hidden = 8
	big, _ := NewNetwork(other, rng.New(6))
	if err := dst.CopyWeightsFrom(big); err == nil {
		t.Fatal("geometry mismatch must error")
	}
}

func TestGradientsAddScale(t *testing.T) {
	cfg := testConfig(SingleLoss)
	n, _ := NewNetwork(cfg, rng.New(7))
	a, b := n.NewGradients(), n.NewGradients()
	a.Layer[0].W[0].Data[0] = 2
	a.Proj.Data[0] = 3
	a.ProjB[0] = 4
	a.SkippedCells, a.ExecutedCells = 1, 2
	b.Layer[0].W[0].Data[0] = 10
	b.Proj.Data[0] = 20
	b.ProjB[0] = 30
	b.SkippedCells, b.ExecutedCells = 3, 4
	a.Add(b)
	if a.Layer[0].W[0].Data[0] != 12 || a.Proj.Data[0] != 23 || a.ProjB[0] != 34 {
		t.Fatalf("Add: got %v %v %v", a.Layer[0].W[0].Data[0], a.Proj.Data[0], a.ProjB[0])
	}
	if a.SkippedCells != 4 || a.ExecutedCells != 6 {
		t.Fatalf("Add must sum cell counters: %d/%d", a.SkippedCells, a.ExecutedCells)
	}
	a.Scale(0.5)
	if a.Layer[0].W[0].Data[0] != 6 || a.Proj.Data[0] != 11.5 || a.ProjB[0] != 17 {
		t.Fatalf("Scale: got %v %v %v", a.Layer[0].W[0].Data[0], a.Proj.Data[0], a.ProjB[0])
	}
	if a.SkippedCells != 4 || a.ExecutedCells != 6 {
		t.Fatal("Scale must leave cell counters untouched")
	}
}
