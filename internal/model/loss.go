package model

import (
	"math"

	"etalstm/internal/tensor"
)

// SoftmaxCrossEntropy computes the mean cross-entropy of logits
// (batch×classes) against integer targets and the gradient d loss /
// d logits (already divided by batch). A target of -1 masks the sample
// out of the loss (padding).
func SoftmaxCrossEntropy(logits *tensor.Matrix, targets []int) (loss float64, dLogits *tensor.Matrix) {
	if len(targets) != logits.Rows {
		panic("model: targets length != batch")
	}
	dLogits = tensor.New(logits.Rows, logits.Cols)
	active := 0
	for b := 0; b < logits.Rows; b++ {
		if targets[b] >= 0 {
			active++
		}
	}
	if active == 0 {
		return 0, dLogits
	}
	inv := 1 / float64(active)
	for b := 0; b < logits.Rows; b++ {
		tgt := targets[b]
		if tgt < 0 {
			continue
		}
		row := logits.Row(b)
		drow := dLogits.Row(b)
		// log-sum-exp with max subtraction for stability
		mx := row[0]
		for _, v := range row {
			if v > mx {
				mx = v
			}
		}
		var sum float64
		for _, v := range row {
			sum += math.Exp(float64(v - mx))
		}
		logZ := math.Log(sum) + float64(mx)
		loss += (logZ - float64(row[tgt])) * inv
		for j, v := range row {
			p := math.Exp(float64(v-mx)) / sum
			drow[j] = float32(p * inv)
		}
		drow[tgt] -= float32(inv)
	}
	return loss, dLogits
}

// Argmax returns the per-row argmax of logits — predicted classes.
func Argmax(logits *tensor.Matrix) []int {
	out := make([]int, logits.Rows)
	for b := 0; b < logits.Rows; b++ {
		row := logits.Row(b)
		best, bv := 0, row[0]
		for j, v := range row {
			if v > bv {
				best, bv = j, v
			}
		}
		out[b] = best
	}
	return out
}

// SquaredError computes the mean squared error between pred and target
// (both batch×dims) and the gradient d loss / d pred.
func SquaredError(pred, target *tensor.Matrix) (loss float64, dPred *tensor.Matrix) {
	if pred.Rows != target.Rows || pred.Cols != target.Cols {
		panic("model: SquaredError shape mismatch")
	}
	dPred = tensor.New(pred.Rows, pred.Cols)
	n := float64(pred.Size())
	if n == 0 {
		return 0, dPred
	}
	for k := range pred.Data {
		d := float64(pred.Data[k]) - float64(target.Data[k])
		loss += d * d / n
		dPred.Data[k] = float32(2 * d / n)
	}
	return loss, dPred
}

// MeanAbsoluteError computes mean |pred-target| — the WAYMO metric of
// Table II. It is reported, not differentiated (training uses MSE).
func MeanAbsoluteError(pred, target *tensor.Matrix) float64 {
	if pred.Rows != target.Rows || pred.Cols != target.Cols {
		panic("model: MAE shape mismatch")
	}
	var s float64
	for k := range pred.Data {
		s += math.Abs(float64(pred.Data[k]) - float64(target.Data[k]))
	}
	if pred.Size() == 0 {
		return 0
	}
	return s / float64(pred.Size())
}

// Perplexity converts a mean cross-entropy (nats) into perplexity — the
// PTB metric of Table II.
func Perplexity(meanCE float64) float64 { return math.Exp(meanCE) }
