package model

import (
	"fmt"
	"testing"

	"etalstm/internal/rng"
	"etalstm/internal/tensor"
)

func inferTestNet(t *testing.T) *Network {
	t.Helper()
	cfg := Config{InputSize: 5, Hidden: 9, Layers: 3, SeqLen: 6, Batch: 4, OutSize: 7, Loss: SingleLoss}
	net, err := NewNetwork(cfg, rng.New(7))
	if err != nil {
		t.Fatal(err)
	}
	return net
}

func randomSeq(r *rng.RNG, steps, width int) [][]float32 {
	xs := make([][]float32, steps)
	for t := range xs {
		xs[t] = make([]float32, width)
		for j := range xs[t] {
			xs[t][j] = r.Uniform(-1, 1)
		}
	}
	return xs
}

// referenceInfer runs one request through the training-path forward
// (ForwardState on a Batch=1 clone) and projects the final hidden row —
// the oracle the packed batched sweep must match bitwise.
func referenceInfer(t *testing.T, net *Network, seq InferSeq) (output []float32, st *State) {
	t.Helper()
	ref := net.Clone()
	ref.Cfg.Batch = 1
	ref.Cfg.SeqLen = len(seq.Inputs)
	xs := make([]*tensor.Matrix, len(seq.Inputs))
	for i, x := range seq.Inputs {
		xs[i] = tensor.NewFromData(1, len(x), append([]float32(nil), x...))
	}
	var in *State
	if seq.State != nil {
		in = &State{}
		for l := 0; l < ref.Cfg.Layers; l++ {
			in.H = append(in.H, tensor.NewFromData(1, ref.Cfg.Hidden, append([]float32(nil), seq.State.H[l]...)))
			in.S = append(in.S, tensor.NewFromData(1, ref.Cfg.Hidden, append([]float32(nil), seq.State.S[l]...)))
		}
	}
	res, out, err := ref.ForwardState(xs, nil, nil, in)
	if err != nil {
		t.Fatal(err)
	}
	top := res.H[ref.Cfg.Layers-1][len(seq.Inputs)-1]
	logits := tensor.MatMul(nil, top, ref.Proj)
	tensor.AddRowVector(logits, logits, ref.ProjB)
	return logits.Row(0), out
}

// TestInferBatchMatchesForward packs requests of different lengths,
// with and without carried-in state, and checks every output and
// carried-out state row bitwise against the Batch=1 training forward.
func TestInferBatchMatchesForward(t *testing.T) {
	net := inferTestNet(t)
	r := rng.New(99)
	lens := []int{4, 1, 6, 4, 2}
	reqs := make([]InferSeq, len(lens))
	for i, L := range lens {
		reqs[i] = InferSeq{Inputs: randomSeq(r, L, net.Cfg.InputSize)}
	}
	// Give one request a non-zero carried-in state.
	st := &VecState{}
	for l := 0; l < net.Cfg.Layers; l++ {
		h := make([]float32, net.Cfg.Hidden)
		s := make([]float32, net.Cfg.Hidden)
		for j := range h {
			h[j], s[j] = r.Uniform(-1, 1), r.Uniform(-1, 1)
		}
		st.H = append(st.H, h)
		st.S = append(st.S, s)
	}
	reqs[3].State = st

	for _, ws := range []*tensor.Workspace{nil, tensor.NewWorkspace()} {
		outs, err := net.InferBatch(ws, reqs)
		if err != nil {
			t.Fatal(err)
		}
		if len(outs) != len(reqs) {
			t.Fatalf("got %d outputs, want %d", len(outs), len(reqs))
		}
		for i := range reqs {
			wantOut, wantState := referenceInfer(t, net, reqs[i])
			for j := range wantOut {
				if outs[i].Output[j] != wantOut[j] {
					t.Fatalf("req %d output[%d] = %v, want %v (bitwise)", i, j, outs[i].Output[j], wantOut[j])
				}
			}
			for l := 0; l < net.Cfg.Layers; l++ {
				for j := 0; j < net.Cfg.Hidden; j++ {
					if outs[i].State.H[l][j] != wantState.H[l].Row(0)[j] {
						t.Fatalf("req %d state H[%d][%d] mismatch", i, l, j)
					}
					if outs[i].State.S[l][j] != wantState.S[l].Row(0)[j] {
						t.Fatalf("req %d state S[%d][%d] mismatch", i, l, j)
					}
				}
			}
		}
	}
}

// TestInferBatchStateCarry splits one sequence across two calls via the
// carried state and checks the result is bitwise identical to the
// single-shot run — the streaming-session contract.
func TestInferBatchStateCarry(t *testing.T) {
	net := inferTestNet(t)
	r := rng.New(3)
	full := randomSeq(r, 6, net.Cfg.InputSize)

	whole, err := net.InferBatch(nil, []InferSeq{{Inputs: full}})
	if err != nil {
		t.Fatal(err)
	}
	first, err := net.InferBatch(nil, []InferSeq{{Inputs: full[:4]}})
	if err != nil {
		t.Fatal(err)
	}
	second, err := net.InferBatch(nil, []InferSeq{{Inputs: full[4:], State: first[0].State}})
	if err != nil {
		t.Fatal(err)
	}
	for j := range whole[0].Output {
		if whole[0].Output[j] != second[0].Output[j] {
			t.Fatalf("output[%d]: chunked %v != single-shot %v", j, second[0].Output[j], whole[0].Output[j])
		}
	}
	for l := 0; l < net.Cfg.Layers; l++ {
		for j := 0; j < net.Cfg.Hidden; j++ {
			if whole[0].State.H[l][j] != second[0].State.H[l][j] ||
				whole[0].State.S[l][j] != second[0].State.S[l][j] {
				t.Fatalf("state layer %d col %d diverged across the chunk boundary", l, j)
			}
		}
	}
}

// TestInferBatchWorkspaceBalance checks the packed sweep returns every
// scratch buffer it takes: after a call, the arena holds as many
// buffers as Gets minus what the results own (results copy out, so
// everything goes back).
func TestInferBatchWorkspaceBalance(t *testing.T) {
	net := inferTestNet(t)
	r := rng.New(5)
	ws := tensor.NewWorkspace()
	reqs := []InferSeq{
		{Inputs: randomSeq(r, 3, net.Cfg.InputSize)},
		{Inputs: randomSeq(r, 5, net.Cfg.InputSize)},
	}
	if _, err := net.InferBatch(ws, reqs); err != nil {
		t.Fatal(err)
	}
	st := ws.Stats()
	if st.Gets != st.Puts {
		t.Fatalf("workspace leak: %d Gets vs %d Puts", st.Gets, st.Puts)
	}
	// A second identical call must be served entirely from the arena.
	before := ws.Stats().Misses
	if _, err := net.InferBatch(ws, reqs); err != nil {
		t.Fatal(err)
	}
	if after := ws.Stats().Misses; after != before {
		t.Errorf("second call allocated %d fresh buffers, want 0", after-before)
	}
}

func TestInferBatchValidation(t *testing.T) {
	net := inferTestNet(t)
	r := rng.New(11)
	good := randomSeq(r, 3, net.Cfg.InputSize)
	cases := []struct {
		name string
		seq  InferSeq
	}{
		{"empty", InferSeq{}},
		{"bad width", InferSeq{Inputs: randomSeq(r, 2, net.Cfg.InputSize+1)}},
		{"bad state layers", InferSeq{Inputs: good, State: &VecState{H: make([][]float32, 1), S: make([][]float32, 1)}}},
		{"bad state width", InferSeq{Inputs: good, State: &VecState{
			H: [][]float32{make([]float32, 2), make([]float32, 2), make([]float32, 2)},
			S: [][]float32{make([]float32, 2), make([]float32, 2), make([]float32, 2)},
		}}},
	}
	for _, c := range cases {
		if err := net.CheckInferSeq(c.seq); err == nil {
			t.Errorf("%s: CheckInferSeq accepted an invalid request", c.name)
		}
		if _, err := net.InferBatch(nil, []InferSeq{c.seq}); err == nil {
			t.Errorf("%s: InferBatch accepted an invalid request", c.name)
		}
	}
	if err := net.CheckInferSeq(InferSeq{Inputs: good}); err != nil {
		t.Errorf("valid request rejected: %v", err)
	}
}

func TestInferBatchEmpty(t *testing.T) {
	net := inferTestNet(t)
	outs, err := net.InferBatch(nil, nil)
	if err != nil || outs != nil {
		t.Fatalf("empty batch: got %v, %v; want nil, nil", outs, err)
	}
}

// BenchmarkInferBatchPacked measures the packed sweep at a serving-like
// batch, the kernel the micro-batcher amortizes requests into.
func BenchmarkInferBatchPacked(b *testing.B) {
	cfg := Config{InputSize: 32, Hidden: 128, Layers: 2, SeqLen: 8, Batch: 1, OutSize: 16, Loss: SingleLoss}
	net, err := NewNetwork(cfg, rng.New(1))
	if err != nil {
		b.Fatal(err)
	}
	r := rng.New(2)
	for _, n := range []int{1, 32} {
		reqs := make([]InferSeq, n)
		for i := range reqs {
			reqs[i] = InferSeq{Inputs: randomSeq(r, 8, cfg.InputSize)}
		}
		b.Run(fmt.Sprintf("batch%d", n), func(b *testing.B) {
			ws := tensor.NewWorkspace()
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := net.InferBatch(ws, reqs); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
