package model

import (
	"strings"
	"testing"

	"etalstm/internal/lstm"
	"etalstm/internal/obs"
	"etalstm/internal/rng"
	"etalstm/internal/tensor"
)

func ckptConfig(loss LossKind) Config {
	return Config{
		InputSize: 5, Hidden: 4, Layers: 2, SeqLen: 8,
		Batch: 2, OutSize: 6, Loss: loss,
	}
}

func ckptTargets(cfg Config, r *rng.RNG) *Targets {
	if cfg.Loss == RegressionLoss {
		tg := &Targets{Regress: make([]*tensor.Matrix, cfg.SeqLen)}
		for i := range tg.Regress {
			tg.Regress[i] = tensor.New(cfg.Batch, cfg.OutSize)
			tg.Regress[i].RandInit(r, 1)
		}
		return tg
	}
	return makeClassTargets(cfg, r)
}

// matEq asserts bitwise equality of two matrices.
func matEq(t *testing.T, name string, a, b *tensor.Matrix) {
	t.Helper()
	if a.Rows != b.Rows || a.Cols != b.Cols {
		t.Fatalf("%s: shape %dx%d vs %dx%d", name, a.Rows, a.Cols, b.Rows, b.Cols)
	}
	for k := range a.Data {
		if a.Data[k] != b.Data[k] {
			t.Fatalf("%s: element %d differs: %g vs %g", name, k, a.Data[k], b.Data[k])
		}
	}
}

func gradsEq(t *testing.T, a, b *Gradients) {
	t.Helper()
	matEq(t, "Proj", a.Proj, b.Proj)
	for i := range a.ProjB {
		if a.ProjB[i] != b.ProjB[i] {
			t.Fatalf("ProjB[%d]: %g vs %g", i, a.ProjB[i], b.ProjB[i])
		}
	}
	for l := range a.Layer {
		for g := lstm.Gate(0); g < lstm.NumGates; g++ {
			matEq(t, "W", a.Layer[l].W[g], b.Layer[l].W[g])
			matEq(t, "U", a.Layer[l].U[g], b.Layer[l].U[g])
			for i := range a.Layer[l].B[g] {
				if a.Layer[l].B[g][i] != b.Layer[l].B[g][i] {
					t.Fatalf("B[%d][%v][%d] differs", l, g, i)
				}
			}
		}
	}
	if a.SkippedCells != b.SkippedCells || a.ExecutedCells != b.ExecutedCells {
		t.Fatalf("cell counters differ: %d/%d vs %d/%d",
			a.SkippedCells, a.ExecutedCells, b.SkippedCells, b.ExecutedCells)
	}
}

// runFull runs the full-storage FW+BP pair on a fresh clone.
func runFull(t *testing.T, n *Network, xs []*tensor.Matrix, tg *Targets, policy StoragePolicy, state *State) (*Gradients, *ForwardResult) {
	t.Helper()
	res, _, err := n.ForwardState(xs, tg, policy, state)
	if err != nil {
		t.Fatal(err)
	}
	grads := n.NewGradients()
	// Snapshot the loss fields before Backward consumes res.
	snap := &ForwardResult{Loss: res.Loss, PerStepLoss: append([]float64(nil), res.PerStepLoss...)}
	if err := n.Backward(res, policy, grads, BackwardOpts{}); err != nil {
		t.Fatal(err)
	}
	return grads, snap
}

func runCkpt(t *testing.T, n *Network, xs []*tensor.Matrix, tg *Targets, policy StoragePolicy, state *State, boundaries []int) (*Gradients, *CheckpointedResult) {
	t.Helper()
	res, _, err := n.ForwardCheckpointed(xs, tg, policy, state, boundaries)
	if err != nil {
		t.Fatal(err)
	}
	grads := n.NewGradients()
	if err := n.BackwardCheckpointed(res, policy, grads, BackwardOpts{}); err != nil {
		t.Fatal(err)
	}
	return grads, res
}

func boundarySets(seqLen int) map[string][]int {
	everyStep := make([]int, seqLen)
	for t := range everyStep {
		everyStep[t] = t
	}
	return map[string][]int{
		"full":    {0},
		"mid":     {0, seqLen / 2},
		"thirds":  {0, seqLen / 3, 2 * seqLen / 3},
		"densest": everyStep,
	}
}

func TestCheckpointedBitwiseMatchesFull(t *testing.T) {
	policies := map[string]StoragePolicy{
		"raw": BaselinePolicy(),
		"p1":  P1Policy(),
		"mixed": PolicyFunc(func(l, ts int) CellStore {
			if (l+ts)%3 == 0 {
				return StoreNone
			}
			return StoreP1
		}),
	}
	for _, kind := range []LossKind{SingleLoss, PerTimestampLoss, RegressionLoss} {
		cfg := ckptConfig(kind)
		r := rng.New(7)
		base, err := NewNetwork(cfg, r)
		if err != nil {
			t.Fatal(err)
		}
		xs := makeInputs(cfg, r)
		tg := ckptTargets(cfg, r)
		for pname, policy := range policies {
			wantG, wantRes := runFull(t, base.Clone(), xs, tg, policy, nil)
			for bname, bnd := range boundarySets(cfg.SeqLen) {
				gotG, gotRes := runCkpt(t, base.Clone(), xs, tg, policy, nil, bnd)
				if gotRes.Loss != wantRes.Loss {
					t.Fatalf("%v/%s/%s: loss %v != full %v", kind, pname, bname, gotRes.Loss, wantRes.Loss)
				}
				for ts := range wantRes.PerStepLoss {
					if gotRes.PerStepLoss[ts] != wantRes.PerStepLoss[ts] {
						t.Fatalf("%v/%s/%s: per-step loss %d differs", kind, pname, bname, ts)
					}
				}
				gradsEq(t, gotG, wantG)
			}
		}
	}
}

func TestCheckpointedStateCarry(t *testing.T) {
	cfg := ckptConfig(PerTimestampLoss)
	r := rng.New(11)
	base, err := NewNetwork(cfg, r)
	if err != nil {
		t.Fatal(err)
	}
	warm := makeInputs(cfg, r)
	xs := makeInputs(cfg, r)
	tg := ckptTargets(cfg, r)

	// Produce a carried-in state with a warmup chunk.
	_, state, err := base.Clone().ForwardState(warm, nil, nil, nil)
	if err != nil {
		t.Fatal(err)
	}

	wantG, wantRes := runFull(t, base.Clone(), xs, tg, P1Policy(), state)
	gotG, gotRes := runCkpt(t, base.Clone(), xs, tg, P1Policy(), state, []int{0, 3, 6})
	if gotRes.Loss != wantRes.Loss {
		t.Fatalf("carried-state loss %v != %v", gotRes.Loss, wantRes.Loss)
	}
	gradsEq(t, gotG, wantG)
}

func TestCheckpointedOutStateMatchesFull(t *testing.T) {
	cfg := ckptConfig(SingleLoss)
	r := rng.New(3)
	base, err := NewNetwork(cfg, r)
	if err != nil {
		t.Fatal(err)
	}
	xs := makeInputs(cfg, r)
	tg := ckptTargets(cfg, r)
	_, wantOut, err := base.Clone().ForwardState(xs, tg, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	_, gotOut, err := base.Clone().ForwardCheckpointed(xs, tg, nil, nil, []int{0, 2, 5})
	if err != nil {
		t.Fatal(err)
	}
	for l := range wantOut.H {
		matEq(t, "out.H", gotOut.H[l], wantOut.H[l])
		matEq(t, "out.S", gotOut.S[l], wantOut.S[l])
	}
}

func TestCheckpointedNoArenaBitwise(t *testing.T) {
	cfg := ckptConfig(PerTimestampLoss)
	r := rng.New(5)
	base, err := NewNetwork(cfg, r)
	if err != nil {
		t.Fatal(err)
	}
	xs := makeInputs(cfg, r)
	tg := ckptTargets(cfg, r)
	arena := base.Clone()
	bare := base.Clone()
	bare.DisableWorkspace()
	gotA, resA := runCkpt(t, arena, xs, tg, nil, nil, []int{0, 4})
	gotB, resB := runCkpt(t, bare, xs, tg, nil, nil, []int{0, 4})
	if resA.Loss != resB.Loss {
		t.Fatalf("arena loss %v != no-arena %v", resA.Loss, resB.Loss)
	}
	gradsEq(t, gotA, gotB)
}

func TestCheckpointedBoundaryValidation(t *testing.T) {
	cfg := ckptConfig(SingleLoss)
	r := rng.New(9)
	n, err := NewNetwork(cfg, r)
	if err != nil {
		t.Fatal(err)
	}
	xs := makeInputs(cfg, r)
	tg := ckptTargets(cfg, r)
	for _, bad := range [][]int{{1}, {0, 0}, {0, 5, 3}, {0, cfg.SeqLen}} {
		if _, _, err := n.ForwardCheckpointed(xs, tg, nil, nil, bad); err == nil {
			t.Errorf("boundaries %v should be rejected", bad)
		}
	}
}

func TestCheckpointedConsumedResultErrors(t *testing.T) {
	cfg := ckptConfig(SingleLoss)
	r := rng.New(13)
	n, err := NewNetwork(cfg, r)
	if err != nil {
		t.Fatal(err)
	}
	xs := makeInputs(cfg, r)
	tg := ckptTargets(cfg, r)
	res, _, err := n.ForwardCheckpointed(xs, tg, nil, nil, []int{0, 4})
	if err != nil {
		t.Fatal(err)
	}
	if err := n.BackwardCheckpointed(res, nil, n.NewGradients(), BackwardOpts{}); err != nil {
		t.Fatal(err)
	}
	err = n.BackwardCheckpointed(res, nil, n.NewGradients(), BackwardOpts{})
	if err == nil || !strings.Contains(err.Error(), "consumed") {
		t.Fatalf("reusing a consumed result should error, got %v", err)
	}

	// Targets are required: without them there are no dLogits to recompute.
	res2, _, err := n.ForwardCheckpointed(xs, nil, nil, nil, []int{0, 4})
	if err != nil {
		t.Fatal(err)
	}
	if err := n.BackwardCheckpointed(res2, nil, n.NewGradients(), BackwardOpts{}); err == nil {
		t.Fatal("backward without targets should error")
	}
}

func TestCheckpointedTrackerBalances(t *testing.T) {
	cfg := ckptConfig(PerTimestampLoss)
	r := rng.New(17)
	n, err := NewNetwork(cfg, r)
	if err != nil {
		t.Fatal(err)
	}
	xs := makeInputs(cfg, r)
	tg := ckptTargets(cfg, r)
	res, _, err := n.ForwardCheckpointed(xs, tg, nil, nil, []int{0, 2, 4, 6})
	if err != nil {
		t.Fatal(err)
	}
	if res.PeakStoredBytes() <= 0 {
		t.Fatal("peak stored bytes should be positive after FW")
	}
	if err := n.BackwardCheckpointed(res, nil, n.NewGradients(), BackwardOpts{}); err != nil {
		t.Fatal(err)
	}
	if res.tracker.cur != 0 {
		t.Fatalf("tracker should balance to zero after BP, got %d", res.tracker.cur)
	}
	if res.RecomputedCells() != cfg.Layers*6 {
		t.Fatalf("recomputed cells: got %d, want %d", res.RecomputedCells(), cfg.Layers*6)
	}
}

func TestCheckpointedRecomputeSpanRecorded(t *testing.T) {
	cfg := ckptConfig(SingleLoss)
	r := rng.New(19)
	n, err := NewNetwork(cfg, r)
	if err != nil {
		t.Fatal(err)
	}
	rec := obs.NewRecorder()
	n.Workspace().SetRecorder(rec)
	xs := makeInputs(cfg, r)
	tg := ckptTargets(cfg, r)
	res, _, err := n.ForwardCheckpointed(xs, tg, nil, nil, []int{0, 3, 6})
	if err != nil {
		t.Fatal(err)
	}
	if err := n.BackwardCheckpointed(res, nil, n.NewGradients(), BackwardOpts{}); err != nil {
		t.Fatal(err)
	}
	if got := rec.Observed(obs.PhaseRecomputeFW); got != 2 {
		t.Fatalf("recompute-FW spans: got %d, want one per replayed segment (2)", got)
	}
	if rec.Observed(obs.PhaseBPMatMul) == 0 || rec.Observed(obs.PhaseFW) == 0 {
		t.Fatal("FW/BP phases should still record")
	}
}

func TestCheckpointedHooks(t *testing.T) {
	cfg := ckptConfig(PerTimestampLoss)
	r := rng.New(23)
	n, err := NewNetwork(cfg, r)
	if err != nil {
		t.Fatal(err)
	}
	xs := makeInputs(cfg, r)
	tg := ckptTargets(cfg, r)
	res, _, err := n.ForwardCheckpointed(xs, tg, P1Policy(), nil, []int{0, 4})
	if err != nil {
		t.Fatal(err)
	}
	var p1Cells, onCells int
	seen := make(map[[2]int]bool)
	opts := BackwardOpts{
		OnP1: func(l, ts int, p1 *lstm.P1) {
			p1Cells++
			key := [2]int{l, ts}
			if seen[key] {
				t.Fatalf("cell (%d,%d) saw OnP1 twice — prune would double-apply", l, ts)
			}
			seen[key] = true
		},
		OnCell: func(l, ts int, cell *lstm.Grads) { onCells++ },
	}
	grads := n.NewGradients()
	if err := n.BackwardCheckpointed(res, P1Policy(), grads, opts); err != nil {
		t.Fatal(err)
	}
	want := cfg.Layers * cfg.SeqLen
	if p1Cells != want {
		t.Fatalf("OnP1 invocations: got %d, want every P1 cell (%d)", p1Cells, want)
	}
	if onCells != grads.ExecutedCells || onCells != want {
		t.Fatalf("OnCell invocations: got %d, want %d", onCells, want)
	}
}
