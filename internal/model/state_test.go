package model

import (
	"testing"

	"etalstm/internal/lstm"
	"etalstm/internal/rng"
	"etalstm/internal/tensor"
)

// TestStateContinuity: running 2T steps in one pass must equal running
// two T-step chunks with carried state — the truncated-BPTT forward
// contract.
func TestStateContinuity(t *testing.T) {
	const T = 3
	longCfg := Config{InputSize: 4, Hidden: 5, Layers: 2, SeqLen: 2 * T,
		Batch: 2, OutSize: 3, Loss: PerTimestampLoss}
	chunkCfg := longCfg
	chunkCfg.SeqLen = T

	r := rng.New(1)
	long, _ := NewNetwork(longCfg, rng.New(7))
	chunked, _ := NewNetwork(chunkCfg, rng.New(7)) // identical weights

	xs := make([]*tensor.Matrix, 2*T)
	for i := range xs {
		xs[i] = tensor.New(2, 4)
		xs[i].RandInit(r, 1)
	}

	resLong, err := long.Forward(xs, nil, nil)
	if err != nil {
		t.Fatal(err)
	}

	res1, st, err := chunked.ForwardState(xs[:T], nil, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	res2, _, err := chunked.ForwardState(xs[T:], nil, nil, st)
	if err != nil {
		t.Fatal(err)
	}

	top := longCfg.Layers - 1
	for i := 0; i < T; i++ {
		if !resLong.H[top][i].Equal(res1.H[top][i], 1e-6) {
			t.Fatalf("chunk 1 step %d diverges", i)
		}
		if !resLong.H[top][T+i].Equal(res2.H[top][i], 1e-6) {
			t.Fatalf("chunk 2 step %d diverges", i)
		}
	}
}

func TestStateValidation(t *testing.T) {
	cfg := Config{InputSize: 3, Hidden: 4, Layers: 2, SeqLen: 2,
		Batch: 2, OutSize: 2, Loss: SingleLoss}
	n, _ := NewNetwork(cfg, rng.New(1))
	xs := []*tensor.Matrix{tensor.New(2, 3), tensor.New(2, 3)}
	bad := &State{H: []*tensor.Matrix{tensor.New(2, 4)}, S: []*tensor.Matrix{tensor.New(2, 4)}}
	if _, _, err := n.ForwardState(xs, nil, nil, bad); err == nil {
		t.Fatal("expected error for wrong state layer count")
	}
}

func TestZeroStateShapes(t *testing.T) {
	cfg := Config{InputSize: 3, Hidden: 4, Layers: 3, SeqLen: 2,
		Batch: 5, OutSize: 2, Loss: SingleLoss}
	n, _ := NewNetwork(cfg, rng.New(2))
	st := n.ZeroState()
	if len(st.H) != 3 || len(st.S) != 3 {
		t.Fatal("state layer count")
	}
	if st.H[0].Rows != 5 || st.H[0].Cols != 4 {
		t.Fatal("state shape")
	}
}

func TestCallerStateImmutable(t *testing.T) {
	cfg := Config{InputSize: 3, Hidden: 4, Layers: 1, SeqLen: 2,
		Batch: 2, OutSize: 2, Loss: SingleLoss}
	n, _ := NewNetwork(cfg, rng.New(3))
	r := rng.New(4)
	st := n.ZeroState()
	st.H[0].RandInit(r, 1)
	before := st.H[0].Clone()
	xs := []*tensor.Matrix{tensor.New(2, 3), tensor.New(2, 3)}
	xs[0].RandInit(r, 1)
	xs[1].RandInit(r, 1)
	if _, _, err := n.ForwardState(xs, nil, nil, st); err != nil {
		t.Fatal(err)
	}
	if !st.H[0].Equal(before, 0) {
		t.Fatal("ForwardState must not mutate the caller's state")
	}
}

// TestStatefulBackwardGradCheck: gradients with a nonzero carried-in
// state must still be exact (the t=0 cell's h_{t-1} is the state, not
// zeros) — covering the P1 path's initState handling.
func TestStatefulBackwardGradCheck(t *testing.T) {
	cfg := Config{InputSize: 3, Hidden: 3, Layers: 2, SeqLen: 2,
		Batch: 2, OutSize: 3, Loss: PerTimestampLoss}
	n, _ := NewNetwork(cfg, rng.New(5))
	r := rng.New(6)
	st := n.ZeroState()
	for l := range st.H {
		st.H[l].RandInit(r, 0.5)
		st.S[l].RandInit(r, 0.5)
	}
	xs := make([]*tensor.Matrix, cfg.SeqLen)
	for i := range xs {
		xs[i] = tensor.New(cfg.Batch, cfg.InputSize)
		xs[i].RandInit(r, 1)
	}
	tg := &Targets{Classes: make([][]int, cfg.SeqLen)}
	for i := range tg.Classes {
		tg.Classes[i] = make([]int, cfg.Batch)
		for b := range tg.Classes[i] {
			tg.Classes[i][b] = r.Intn(cfg.OutSize)
		}
	}

	// Gradients must be identical between the raw-cache policy and the
	// P1 policy under a carried state (they compute the same math).
	resRaw, _, err := n.ForwardState(xs, tg, BaselinePolicy(), st)
	if err != nil {
		t.Fatal(err)
	}
	gRaw := n.NewGradients()
	if err := n.Backward(resRaw, BaselinePolicy(), gRaw, BackwardOpts{}); err != nil {
		t.Fatal(err)
	}

	resP1, _, err := n.ForwardState(xs, tg, P1Policy(), st)
	if err != nil {
		t.Fatal(err)
	}
	gP1 := n.NewGradients()
	if err := n.Backward(resP1, P1Policy(), gP1, BackwardOpts{}); err != nil {
		t.Fatal(err)
	}

	for l := range gRaw.Layer {
		for g := lstm.Gate(0); g < lstm.NumGates; g++ {
			if !gRaw.Layer[l].U[g].Equal(gP1.Layer[l].U[g], 1e-5) {
				t.Fatalf("layer %d U[%v]: P1 path mishandles the carried state", l, g)
			}
			if !gRaw.Layer[l].W[g].Equal(gP1.Layer[l].W[g], 1e-5) {
				t.Fatalf("layer %d W[%v] diverges under carried state", l, g)
			}
		}
	}
}
