package model

import (
	"fmt"
	"sort"

	"etalstm/internal/lstm"
	"etalstm/internal/tensor"
)

// VecState is the recurrent state of a single sample: one h and one s
// row per layer, each of length Cfg.Hidden. It is the serving-side
// analogue of State (which carries batch×hidden matrices for truncated
// BPTT): a streaming session holds one VecState and threads it through
// successive InferBatch calls so the model sees one long sequence.
type VecState struct {
	H [][]float32 // per layer, len Hidden
	S [][]float32
}

// InferSeq is one inference request: a variable-length input sequence
// and an optional carried-in state (nil = zero start). Sequences in one
// InferBatch call may have different lengths.
type InferSeq struct {
	Inputs [][]float32 // len >= 1 timesteps, each of len Cfg.InputSize
	State  *VecState
}

// InferOut is the result for one InferSeq: the projected output at the
// sequence's final timestep and the carried-out recurrent state (always
// freshly allocated — it never aliases the request's State).
type InferOut struct {
	Output []float32 // len Cfg.OutSize
	State  *VecState
}

// CheckInferSeq validates one request against the network's geometry
// without running it: non-empty sequence, input width, and (when a
// state is carried in) state layer count and width. Serving layers call
// it per request so one malformed request fails alone instead of
// failing the whole micro-batch it would have joined.
func (n *Network) CheckInferSeq(seq InferSeq) error {
	cfg := n.Cfg
	if len(seq.Inputs) == 0 {
		return fmt.Errorf("model: empty input sequence")
	}
	for t, x := range seq.Inputs {
		if len(x) != cfg.InputSize {
			return fmt.Errorf("model: input step %d has width %d, want %d", t, len(x), cfg.InputSize)
		}
	}
	if st := seq.State; st != nil {
		if len(st.H) != cfg.Layers || len(st.S) != cfg.Layers {
			return fmt.Errorf("model: state has %d/%d layers, want %d", len(st.H), len(st.S), cfg.Layers)
		}
		for l := 0; l < cfg.Layers; l++ {
			if len(st.H[l]) != cfg.Hidden || len(st.S[l]) != cfg.Hidden {
				return fmt.Errorf("model: state layer %d is %d/%d wide, want %d",
					l, len(st.H[l]), len(st.S[l]), cfg.Hidden)
			}
		}
	}
	return nil
}

// rowPrefix views the first rows rows of m without copying. Views are
// read-only borrows: they are never handed back to a workspace (only
// their owning matrix is).
func rowPrefix(m *tensor.Matrix, rows int) *tensor.Matrix {
	if rows == m.Rows {
		return m
	}
	return &tensor.Matrix{Rows: rows, Cols: m.Cols, Data: m.Data[:rows*m.Cols]}
}

// InferBatch runs one inference-only forward sweep over a batch of
// independent variable-length sequences, packed so every timestep's
// cell call is a single dense batched kernel. Requests are sorted by
// length (descending) into the batch rows; as shorter sequences finish,
// the active row count shrinks and later timesteps run on a prefix of
// the batch — no masking, no wasted compute on finished rows. Each
// sample's final h/s rows are extracted at its own last timestep, and
// the output projection runs once over all final hidden rows.
//
// The batch dimension here is the number of requests, independent of
// Cfg.Batch, and sequence lengths are independent of Cfg.SeqLen — the
// serving path is not tied to the training geometry.
//
// ws supplies scratch (nil = plain allocation). InferBatch only reads
// the network's weights, so concurrent calls on one Network are safe as
// long as each caller brings its own workspace — that is how the
// serving worker pool shares one checkpoint across goroutines without
// cloning weights.
//
// Results are returned in request order.
func (n *Network) InferBatch(ws *tensor.Workspace, reqs []InferSeq) ([]InferOut, error) {
	cfg := n.Cfg
	if len(reqs) == 0 {
		return nil, nil
	}
	for i := range reqs {
		if err := n.CheckInferSeq(reqs[i]); err != nil {
			return nil, fmt.Errorf("request %d: %w", i, err)
		}
	}

	// Row assignment: longest sequence first, so the rows active at any
	// timestep are exactly a prefix. The sort is stable in effect (ties
	// keep request order) to make packing deterministic.
	order := make([]int, len(reqs))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool {
		return len(reqs[order[a]].Inputs) > len(reqs[order[b]].Inputs)
	})
	maxLen := len(reqs[order[0]].Inputs)

	// act[t] = rows still running at timestep t (a prefix of the batch).
	cnt := make([]int, maxLen+2)
	for i := range reqs {
		cnt[len(reqs[i].Inputs)]++
	}
	act := make([]int, maxLen+1)
	running := len(reqs)
	for t := 0; t < maxLen; t++ {
		act[t] = running
		running -= cnt[t+1]
	}

	// Carried-out states are allocated as one backing block per request
	// (not per vector): serving allocates a fresh state on every request,
	// so the constant count here is squarely on the hot path. A shared
	// whole-batch block would be smaller still, but states escape into
	// sessions with unbounded lifetimes and must not pin each other.
	outs := make([]InferOut, len(reqs))
	states := make([]VecState, len(reqs))
	for i := range outs {
		st := &states[i]
		rows := make([][]float32, 2*cfg.Layers)
		backing := make([]float32, 2*cfg.Layers*cfg.Hidden)
		for l := range rows {
			rows[l] = backing[l*cfg.Hidden : (l+1)*cfg.Hidden : (l+1)*cfg.Hidden]
		}
		st.H, st.S = rows[:cfg.Layers], rows[cfg.Layers:]
		outs[i].State = st
	}

	// below[t] holds the previous layer's hidden output at timestep t
	// (act[t] rows); nil for layer 0, which reads the request inputs.
	var below []*tensor.Matrix
	for l := 0; l < cfg.Layers; l++ {
		hOwner := ws.Get(len(reqs), cfg.Hidden)
		sOwner := ws.Get(len(reqs), cfg.Hidden)
		for row, idx := range order {
			if st := reqs[idx].State; st != nil {
				copy(hOwner.Row(row), st.H[l])
				copy(sOwner.Row(row), st.S[l])
			}
		}
		outsT := make([]*tensor.Matrix, maxLen)
		for t := 0; t < maxLen; t++ {
			active := act[t]
			var x *tensor.Matrix
			if l == 0 {
				x = ws.Get(active, cfg.InputSize)
				for row := 0; row < active; row++ {
					copy(x.Row(row), reqs[order[row]].Inputs[t])
				}
			} else {
				x = below[t]
			}
			hNew, sNew := lstm.InferenceForward(ws, n.Layer[l],
				x, rowPrefix(hOwner, active), rowPrefix(sOwner, active))
			if l == 0 {
				ws.Put(x)
			}
			// Rows finishing at this timestep carry their state out.
			next := 0
			if t+1 < maxLen {
				next = act[t+1]
			}
			for row := next; row < active; row++ {
				idx := order[row]
				copy(outs[idx].State.H[l], hNew.Row(row))
				copy(outs[idx].State.S[l], sNew.Row(row))
			}
			// The consumed h: at t == 0 it is the carried-in copy (dies
			// now); at t > 0 it is outsT[t-1], which the layer above
			// still reads, so it stays live. The consumed s dies either
			// way — finished rows were extracted at their own step.
			if t == 0 {
				ws.Put(hOwner)
			}
			ws.Put(sOwner)
			hOwner, sOwner = hNew, sNew
			outsT[t] = hNew
		}
		ws.Put(sOwner)
		if l > 0 {
			ws.PutAll(below...)
		}
		below = outsT
	}

	// One batched projection over every sample's final top-layer hidden
	// row (already extracted into the per-request states above).
	top := cfg.Layers - 1
	finalH := ws.Get(len(reqs), cfg.Hidden)
	for i := range reqs {
		copy(finalH.Row(i), outs[i].State.H[top])
	}
	logits := tensor.MatMul(ws.Get(len(reqs), cfg.OutSize), finalH, n.Proj)
	tensor.AddRowVector(logits, logits, n.ProjB)
	// One backing block for every output row; a few tens of floats, so
	// one surviving Result pinning its batch-mates' rows is harmless.
	outBlock := make([]float32, len(reqs)*cfg.OutSize)
	copy(outBlock, logits.Data)
	for i := range outs {
		outs[i].Output = outBlock[i*cfg.OutSize : (i+1)*cfg.OutSize : (i+1)*cfg.OutSize]
	}
	ws.PutAll(finalH, logits)
	ws.PutAll(below...)
	return outs, nil
}
