package skip

import (
	"math"
	"testing"
	"testing/quick"

	"etalstm/internal/model"
	"etalstm/internal/rng"
	"etalstm/internal/tensor"
)

func TestPredictorBetaByLossKind(t *testing.T) {
	if NewPredictor(model.SingleLoss, 3, 35).Beta != 1 {
		t.Fatal("single loss must use β=1")
	}
	if NewPredictor(model.PerTimestampLoss, 3, 35).Beta != -1 {
		t.Fatal("per-timestamp loss must use β=-1")
	}
	if NewPredictor(model.RegressionLoss, 3, 35).Beta != -1 {
		t.Fatal("regression loss must use β=-1")
	}
}

// TestMagnitudeTrendSingleLoss reproduces the Fig. 8a shape: within a
// layer, magnitude decreases from the last timestamp toward the first.
func TestMagnitudeTrendSingleLoss(t *testing.T) {
	p := NewPredictor(model.SingleLoss, 3, 20)
	for l := 0; l < 3; l++ {
		for ts := 1; ts < 20; ts++ {
			prev := p.Magnitude(1.0, l, ts-1)
			cur := p.Magnitude(1.0, l, ts)
			if cur <= prev {
				t.Fatalf("single loss: magnitude must increase with t (layer %d, t %d): %v vs %v",
					l, ts, prev, cur)
			}
		}
	}
}

// TestMagnitudeTrendPerTimestamp reproduces the Fig. 8b shape: within a
// layer, magnitude grows from the last timestamp toward the first.
func TestMagnitudeTrendPerTimestamp(t *testing.T) {
	p := NewPredictor(model.PerTimestampLoss, 3, 20)
	for l := 0; l < 3; l++ {
		for ts := 1; ts < 20; ts++ {
			prev := p.Magnitude(1.0, l, ts-1)
			cur := p.Magnitude(1.0, l, ts)
			if cur >= prev {
				t.Fatalf("per-ts loss: magnitude must decrease with t (layer %d, t %d): %v vs %v",
					l, ts, prev, cur)
			}
		}
	}
}

// TestMagnitudeTrendAcrossLayers: at a fixed timestamp the magnitude
// increases from the last layer to the first (paper's correlation (1)).
func TestMagnitudeTrendAcrossLayers(t *testing.T) {
	for _, kind := range []model.LossKind{model.SingleLoss, model.PerTimestampLoss} {
		p := NewPredictor(kind, 4, 10)
		for ts := 0; ts < 10; ts++ {
			for l := 1; l < 4; l++ {
				if p.Magnitude(1.0, l, ts) >= p.Magnitude(1.0, l-1, ts) {
					t.Fatalf("%v: magnitude must decrease with layer (t=%d, l=%d)", kind, ts, l)
				}
			}
		}
	}
}

func TestSumLoss(t *testing.T) {
	ps := NewPredictor(model.SingleLoss, 2, 10)
	if ps.SumLoss(5, 0) != 5 || ps.SumLoss(5, 9) != 5 {
		t.Fatal("single loss SumLoss must be the whole loss")
	}
	pt := NewPredictor(model.PerTimestampLoss, 2, 10)
	if pt.SumLoss(10, 0) != 10 {
		t.Fatal("per-ts SumLoss at t=0 must be total")
	}
	if math.Abs(pt.SumLoss(10, 9)-1) > 1e-9 {
		t.Fatalf("per-ts SumLoss at last step: %v", pt.SumLoss(10, 9))
	}
}

func TestCalibrate(t *testing.T) {
	p := NewPredictor(model.SingleLoss, 2, 4)
	// Fabricate observations that are exactly 3× the α=1 prediction.
	obs := make([][]float64, 2)
	for l := range obs {
		obs[l] = make([]float64, 4)
		for ts := range obs[l] {
			obs[l][ts] = 3 * p.Magnitude(2.0, l, ts)
		}
	}
	p.Calibrate(2.0, obs)
	if math.Abs(p.Alpha-3) > 1e-9 {
		t.Fatalf("Calibrate: α=%v want 3", p.Alpha)
	}
}

func TestCalibrateEmptyKeepsAlpha(t *testing.T) {
	p := NewPredictor(model.SingleLoss, 1, 2)
	p.Alpha = 7
	p.Calibrate(1, [][]float64{{0, 0}})
	if p.Alpha != 7 {
		t.Fatal("empty calibration must not change α")
	}
}

func TestLossPredictEq5(t *testing.T) {
	// Geometric decay 8,4,2 → Eq. 5 predicts 2 − (4−2)²/(8−4) = 1.
	var h LossHistory
	h.Record(8)
	h.Record(4)
	h.Record(2)
	pred, ok := h.Predict()
	if !ok {
		t.Fatal("3 epochs must predict")
	}
	if math.Abs(pred-1) > 1e-9 {
		t.Fatalf("Eq.5: got %v want 1", pred)
	}
}

func TestLossPredictNeedsThreeEpochs(t *testing.T) {
	var h LossHistory
	h.Record(5)
	h.Record(4)
	if _, ok := h.Predict(); ok {
		t.Fatal("must not predict with <3 epochs")
	}
}

func TestLossPredictPlateau(t *testing.T) {
	var h LossHistory
	h.Record(2)
	h.Record(2)
	h.Record(2)
	pred, ok := h.Predict()
	if !ok || pred != 2 {
		t.Fatalf("plateau must predict the plateau value: %v %v", pred, ok)
	}
}

func TestLossPredictClampsNegative(t *testing.T) {
	var h LossHistory
	h.Record(10)
	h.Record(2)
	h.Record(1.9) // Δ² extrapolation goes below zero
	pred, ok := h.Predict()
	if !ok || pred < 0 {
		t.Fatalf("prediction must clamp at 0: %v", pred)
	}
}

func TestLossHistoryLast(t *testing.T) {
	var h LossHistory
	if h.Last() != 0 {
		t.Fatal("empty Last")
	}
	h.Record(3)
	if h.Last() != 3 || h.Len() != 1 {
		t.Fatal("Last/Len")
	}
}

func TestBuildSkipsInsignificantCells(t *testing.T) {
	p := NewPredictor(model.SingleLoss, 2, 50)
	plan := Build(p, 1.0, Config{Threshold: 0.1, Base: model.StoreRaw})
	if plan.SkippedFrac() == 0 {
		t.Fatal("a 50-step single-loss layer must have insignificant early cells")
	}
	// The most significant cell (last timestamp) must never be skipped.
	for l := range plan.Skip {
		if plan.Skip[l][49] {
			t.Fatalf("layer %d last cell skipped", l)
		}
	}
	// Skips concentrate at early timestamps for single loss.
	if !plan.Skip[0][0] {
		t.Fatal("earliest cell of a long single-loss layer should be skipped")
	}
}

func TestBuildPerTimestampSkipsLateCells(t *testing.T) {
	p := NewPredictor(model.PerTimestampLoss, 2, 50)
	plan := Build(p, 1.0, Config{Threshold: 0.1, Base: model.StoreRaw})
	if plan.SkippedFrac() == 0 {
		t.Fatal("expected skips")
	}
	for l := range plan.Skip {
		if plan.Skip[l][0] {
			t.Fatalf("layer %d first cell skipped (it has max magnitude)", l)
		}
	}
	if !plan.Skip[0][49] {
		t.Fatal("latest cell of a long per-ts layer should be skipped")
	}
}

func TestScaleFactorCompensates(t *testing.T) {
	p := NewPredictor(model.SingleLoss, 1, 30)
	plan := Build(p, 1.0, Config{Threshold: 0.2, Base: model.StoreRaw})
	if plan.SkippedFrac() == 0 {
		t.Skip("no skips at this threshold")
	}
	if plan.Scale[0] <= 1 {
		t.Fatalf("scaling factor must exceed 1 when cells are skipped: %v", plan.Scale[0])
	}
	// Factor must equal sum(all)/sum(kept) of predicted magnitudes.
	var all, kept float64
	for ts := 0; ts < 30; ts++ {
		m := p.Magnitude(1.0, 0, ts)
		all += m
		if !plan.Skip[0][ts] {
			kept += m
		}
	}
	if math.Abs(plan.Scale[0]-all/kept) > 1e-9 {
		t.Fatalf("scale %v want %v", plan.Scale[0], all/kept)
	}
}

func TestMaxFracCapsSkipping(t *testing.T) {
	// A 300-step single-loss layer would skip almost everything at a
	// generous threshold; the cap must hold it to DefaultMaxFrac.
	p := NewPredictor(model.SingleLoss, 1, 300)
	plan := Build(p, 1.0, Config{Threshold: 0.2, Base: model.StoreRaw})
	if plan.SkippedFrac() > DefaultMaxFrac+1e-9 {
		t.Fatalf("skip frac %.3f exceeds cap", plan.SkippedFrac())
	}
	// Uncapped, the same threshold skips far more.
	wild := Build(p, 1.0, Config{Threshold: 0.2, MaxFrac: -1, Base: model.StoreRaw})
	if wild.SkippedFrac() <= DefaultMaxFrac {
		t.Fatalf("uncapped plan should skip more: %.3f", wild.SkippedFrac())
	}
	// The cap keeps the highest-magnitude (latest) cells.
	row := plan.Skip[0]
	if row[len(row)-1] {
		t.Fatal("cap must preserve the most significant cells")
	}
}

func TestMaxFracCustom(t *testing.T) {
	p := NewPredictor(model.SingleLoss, 1, 100)
	plan := Build(p, 1.0, Config{Threshold: 0.5, MaxFrac: 0.25, Base: model.StoreRaw})
	if plan.SkippedFrac() > 0.25+1e-9 {
		t.Fatalf("custom cap violated: %.3f", plan.SkippedFrac())
	}
}

func TestNoSkipPlan(t *testing.T) {
	plan := NoSkip(3, 7, model.StoreP1)
	if plan.SkippedFrac() != 0 {
		t.Fatal("NoSkip must skip nothing")
	}
	pol := plan.Policy()
	if pol.Store(1, 3) != model.StoreP1 {
		t.Fatal("NoSkip policy must pass through the base store")
	}
	for _, s := range plan.Scale {
		if s != 1 {
			t.Fatal("NoSkip scale must be 1")
		}
	}
}

func TestPolicyMapsSkips(t *testing.T) {
	p := NewPredictor(model.SingleLoss, 2, 40)
	plan := Build(p, 1.0, Config{Threshold: 0.15, Base: model.StoreP1})
	pol := plan.Policy()
	for l := range plan.Skip {
		for ts, s := range plan.Skip[l] {
			got := pol.Store(l, ts)
			if s && got != model.StoreNone {
				t.Fatalf("cell (%d,%d) should be StoreNone", l, ts)
			}
			if !s && got != model.StoreP1 {
				t.Fatalf("cell (%d,%d) should be StoreP1", l, ts)
			}
		}
	}
}

func TestApplyScaling(t *testing.T) {
	cfg := model.Config{InputSize: 3, Hidden: 3, Layers: 2, SeqLen: 4, Batch: 2, OutSize: 2, Loss: model.SingleLoss}
	r := rng.New(1)
	net, _ := model.NewNetwork(cfg, r)
	g := net.NewGradients()
	g.Layer[0].W[0].Fill(1)
	g.Layer[1].W[0].Fill(1)
	plan := NoSkip(2, 4, model.StoreRaw)
	plan.Scale[1] = 2
	if err := plan.ApplyScaling(g); err != nil {
		t.Fatal(err)
	}
	if g.Layer[0].W[0].At(0, 0) != 1 || g.Layer[1].W[0].At(0, 0) != 2 {
		t.Fatal("scaling must apply per layer")
	}
	bad := NoSkip(3, 4, model.StoreRaw)
	if err := bad.ApplyScaling(g); err == nil {
		t.Fatal("layer-count mismatch must error")
	}
}

// TestSkipTrainingStillConverges: end-to-end MS2 — training with a skip
// plan and scaling still reduces loss on a small task.
func TestSkipTrainingStillConverges(t *testing.T) {
	cfg := model.Config{InputSize: 4, Hidden: 8, Layers: 2, SeqLen: 12, Batch: 8, OutSize: 2, Loss: model.SingleLoss}
	r := rng.New(2)
	net, _ := model.NewNetwork(cfg, r)

	// Synthetic task: class = sign of the last step's first feature.
	xs := make([]*tensor.Matrix, cfg.SeqLen)
	for i := range xs {
		xs[i] = tensor.New(cfg.Batch, cfg.InputSize)
		xs[i].RandInit(r, 1)
	}
	tg := &model.Targets{Classes: make([][]int, cfg.SeqLen)}
	for i := range tg.Classes {
		tg.Classes[i] = make([]int, cfg.Batch)
		for b := range tg.Classes[i] {
			if xs[cfg.SeqLen-1].At(b, 0) > 0 {
				tg.Classes[i][b] = 1
			}
		}
	}

	pred := NewPredictor(cfg.Loss, cfg.Layers, cfg.SeqLen)
	plan := Build(pred, 1.0, Config{Threshold: 0.15, Base: model.StoreRaw})
	if plan.SkippedFrac() == 0 {
		t.Fatal("test needs a plan that actually skips")
	}
	policy := plan.Policy()

	var first, last float64
	for step := 0; step < 40; step++ {
		res, err := net.Forward(xs, tg, policy)
		if err != nil {
			t.Fatal(err)
		}
		if step == 0 {
			first = res.Loss
		}
		last = res.Loss
		g := net.NewGradients()
		if err := net.Backward(res, policy, g, model.BackwardOpts{}); err != nil {
			t.Fatal(err)
		}
		if err := plan.ApplyScaling(g); err != nil {
			t.Fatal(err)
		}
		// Plain SGD step.
		for l := range net.Layer {
			for gi := 0; gi < 4; gi++ {
				for i := range net.Layer[l].W[gi].Data {
					net.Layer[l].W[gi].Data[i] -= 0.3 * g.Layer[l].W[gi].Data[i]
				}
				for i := range net.Layer[l].U[gi].Data {
					net.Layer[l].U[gi].Data[i] -= 0.3 * g.Layer[l].U[gi].Data[i]
				}
				for i := range net.Layer[l].B[gi] {
					net.Layer[l].B[gi][i] -= 0.3 * g.Layer[l].B[gi][i]
				}
			}
		}
		for i := range net.Proj.Data {
			net.Proj.Data[i] -= 0.3 * g.Proj.Data[i]
		}
		for i := range net.ProjB {
			net.ProjB[i] -= 0.3 * g.ProjB[i]
		}
	}
	if last >= first*0.7 {
		t.Fatalf("MS2 training failed to descend: %v -> %v", first, last)
	}
}

// Property: Eq. 5 on an exactly geometric loss decay limit + a·qⁿ
// predicts the next term limit + a·q³ exactly — the formula's
// raison d'être for smoothly converging training curves.
func TestPropertyEq5GeometricExact(t *testing.T) {
	f := func(seedRaw uint64) bool {
		r := rng.New(seedRaw)
		a := 1 + 9*r.Float64()     // initial gap
		q := 0.1 + 0.8*r.Float64() // ratio
		limit := 10 * r.Float64()  // asymptote
		var h LossHistory          // losses: limit + a·qⁿ
		for n := 0; n < 3; n++ {
			h.Record(limit + a*math.Pow(q, float64(n)))
		}
		pred, ok := h.Predict()
		if !ok {
			return false
		}
		want := limit + a*math.Pow(q, 3)
		return math.Abs(pred-want) < 1e-6*(1+want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
