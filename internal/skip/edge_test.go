package skip

import (
	"testing"

	"etalstm/internal/model"
)

// These tests pin the edge behavior of the MS2 planner — the corners a
// refactor is most likely to silently change. Each documents the
// contract it freezes.

// Eq. 5's denominator is loss_{n-3} − loss_{n-2}. When only that pair
// is equal (the general zero-denominator case, not a full plateau), the
// Δ² step is undefined and Predict must fall back to the last observed
// loss — still reporting ok, because three epochs of history exist.
func TestLossPredictZeroDenominator(t *testing.T) {
	var h LossHistory
	h.Record(5)
	h.Record(5) // den = 5 − 5 = 0
	h.Record(3) // but the loss did move afterwards
	pred, ok := h.Predict()
	if !ok {
		t.Fatal("zero denominator with 3 epochs must still predict")
	}
	if pred != 3 {
		t.Fatalf("zero denominator must fall back to the last loss: got %v want 3", pred)
	}
}

// Calibrate before any epoch has produced observations (nil grid, not
// merely zero-filled) must leave α untouched: there is nothing to fit.
func TestCalibrateBeforeAnyEpoch(t *testing.T) {
	p := NewPredictor(model.SingleLoss, 2, 4)
	p.Alpha = 3.5
	p.Calibrate(1, nil)
	if p.Alpha != 3.5 {
		t.Fatalf("calibrating on no observations changed α to %v", p.Alpha)
	}
}

// Threshold 0 is "unset" and must resolve to DefaultThreshold — the
// zero value of Config selects the paper's operating point, it does not
// disable skipping.
func TestThresholdZeroMeansDefault(t *testing.T) {
	p := NewPredictor(model.SingleLoss, 1, 16)
	zero := Build(p, 1, Config{Threshold: 0, Base: model.StoreRaw})
	def := Build(p, 1, Config{Threshold: DefaultThreshold, Base: model.StoreRaw})
	for l := range zero.Skip {
		for tt := range zero.Skip[l] {
			if zero.Skip[l][tt] != def.Skip[l][tt] {
				t.Fatalf("threshold 0 and DefaultThreshold disagree at (%d,%d)", l, tt)
			}
		}
	}
	if zero.SkippedFrac() == 0 {
		t.Fatal("default threshold on a 16-cell single-loss layer should skip something")
	}
}

// Threshold 1 marks every cell whose magnitude is below the layer
// maximum — the most aggressive relative setting. Two guarantees must
// survive it: the layer's maximum-magnitude cell always executes, and
// the skipped share never exceeds the MaxFrac cap (DefaultMaxFrac when
// unset).
func TestThresholdOneExtreme(t *testing.T) {
	p := NewPredictor(model.SingleLoss, 2, 10)
	plan := Build(p, 1, Config{Threshold: 1, Base: model.StoreRaw})
	for l, row := range plan.Skip {
		kept := 0
		for _, s := range row {
			if !s {
				kept++
			}
		}
		if kept == 0 {
			t.Fatalf("layer %d has no surviving BP cell", l)
		}
		// Single loss ⇒ magnitude peaks at the last timestamp; that cell
		// must be among the survivors.
		if row[len(row)-1] {
			t.Fatalf("layer %d skipped its maximum-magnitude cell", l)
		}
		skipped := len(row) - kept
		if frac := float64(skipped) / float64(len(row)); frac > DefaultMaxFrac {
			t.Fatalf("layer %d skips %.0f%%, above the %.0f%% cap", l, 100*frac, 100*DefaultMaxFrac)
		}
	}
	// Scaling must stay finite and ≥ 1: survivors absorb the skipped
	// mass, never shed it.
	for l, sc := range plan.Scale {
		if sc < 1 || sc != sc /* NaN */ {
			t.Fatalf("layer %d scale %v; want finite ≥ 1", l, sc)
		}
	}
}

// MaxFrac < 0 removes the cap entirely; with threshold 1 this pins the
// other extreme: every cell but the per-layer maximum may be skipped,
// but that one cell still survives (Build never starves a layer).
func TestThresholdOneUncapped(t *testing.T) {
	p := NewPredictor(model.SingleLoss, 1, 8)
	plan := Build(p, 1, Config{Threshold: 1, MaxFrac: -1, Base: model.StoreRaw})
	row := plan.Skip[0]
	kept := 0
	for _, s := range row {
		if !s {
			kept++
		}
	}
	if kept != 1 {
		t.Fatalf("uncapped threshold-1 plan kept %d cells, want exactly the maximum", kept)
	}
	if row[len(row)-1] {
		t.Fatal("the maximum-magnitude cell must be the survivor")
	}
}
