// Package skip implements MS2, η-LSTM's BP layer-length reduction
// (paper Sec. IV-B): predicting which BP cells produce insignificant
// weight gradients, skipping their execution (and the storage of their
// FW intermediates), and compensating the lost gradient mass with a
// convergence-aware scaling factor.
//
// The two closed-form models come straight from the paper:
//
//	Eq. 4:  δW_Mag = α · Σloss · (LN − layerID) / (LL − timeStamp)^β
//	Eq. 5:  pred_loss_n = loss_{n-1} − (loss_{n-2}−loss_{n-1})² / (loss_{n-3}−loss_{n-2})
//
// with β = +1 for single-loss models (gradients vanish toward early
// timestamps) and β = −1 for per-timestamp-loss models (gradients
// accumulate toward early timestamps).
package skip

import (
	"fmt"
	"math"

	"etalstm/internal/model"
)

// DefaultThreshold is the relative significance threshold: a BP cell is
// skipped when its predicted magnitude falls below Threshold × the
// layer's maximum predicted magnitude.
const DefaultThreshold = 0.08

// Predictor evaluates the paper's Eq. 4 for a fixed model geometry.
type Predictor struct {
	Alpha float64 // model/dataset factor, calibrated from epoch 0
	Beta  float64 // +1 single loss, −1 per-timestamp loss
	LN    int     // layer number
	LL    int     // layer length
	Loss  model.LossKind
}

// NewPredictor builds a predictor for the given loss topology. Alpha
// starts at 1 and should be calibrated with Calibrate after the first
// epoch (the paper computes α "using the results of the first training
// epoch").
func NewPredictor(loss model.LossKind, layers, seqLen int) *Predictor {
	beta := 1.0
	if loss != model.SingleLoss {
		// Per-timestamp and regression losses supervise every timestamp,
		// giving the "gradients grow toward early timestamps" pattern of
		// paper Fig. 8b.
		beta = -1
	}
	return &Predictor{Alpha: 1, Beta: beta, LN: layers, LL: seqLen, Loss: loss}
}

// SumLoss returns the Σloss term of Eq. 4 for a cell at timestamp t:
// the loss accumulated from the last timestamp down to t. For single-
// loss models that is the whole loss regardless of t; for per-timestamp
// models the per-step losses from t to LL−1 sum (we use the uniform
// split of the predicted epoch loss, matching how the predictor runs
// before FW produces actual per-step values).
func (p *Predictor) SumLoss(totalLoss float64, t int) float64 {
	if p.Loss == model.SingleLoss {
		return totalLoss
	}
	if p.LL == 0 {
		return totalLoss
	}
	return totalLoss * float64(p.LL-t) / float64(p.LL)
}

// Magnitude evaluates Eq. 4 for the BP cell at (layer, t), 0-indexed.
func (p *Predictor) Magnitude(totalLoss float64, layer, t int) float64 {
	sum := p.SumLoss(totalLoss, t)
	layerTerm := float64(p.LN - layer) // first layer largest, last layer == 1
	dist := float64(p.LL - t)          // distance from the end, ≥ 1
	if dist < 1 {
		dist = 1
	}
	return p.Alpha * sum * layerTerm / math.Pow(dist, p.Beta)
}

// Calibrate fits Alpha from observed per-cell gradient magnitudes of
// the first epoch: α := mean(observed / predicted-with-α-1). observed
// is indexed [layer][t]; zero entries are ignored.
func (p *Predictor) Calibrate(totalLoss float64, observed [][]float64) {
	saved := p.Alpha
	p.Alpha = 1
	var ratio float64
	n := 0
	for l := range observed {
		for t, obs := range observed[l] {
			if obs <= 0 {
				continue
			}
			pred := p.Magnitude(totalLoss, l, t)
			if pred <= 0 {
				continue
			}
			ratio += obs / pred
			n++
		}
	}
	if n == 0 {
		p.Alpha = saved
		return
	}
	p.Alpha = ratio / float64(n)
}

// LossHistory records per-epoch losses and extrapolates the next one
// with the paper's Eq. 5 (an Aitken Δ² step).
type LossHistory struct {
	losses []float64
}

// Record appends a completed epoch's loss.
func (h *LossHistory) Record(loss float64) { h.losses = append(h.losses, loss) }

// Len returns the number of recorded epochs.
func (h *LossHistory) Len() int { return len(h.losses) }

// Last returns the most recent recorded loss (0 if none).
func (h *LossHistory) Last() float64 {
	if len(h.losses) == 0 {
		return 0
	}
	return h.losses[len(h.losses)-1]
}

// Predict extrapolates the next epoch's loss. The first three epochs
// cannot predict (the paper runs them unmodified); ok is false then,
// and also when the denominator degenerates (plateaued loss), in which
// case callers should fall back to the last observed loss.
func (h *LossHistory) Predict() (pred float64, ok bool) {
	n := len(h.losses)
	if n < 3 {
		return 0, false
	}
	l1 := h.losses[n-1] // loss_{n-1}
	l2 := h.losses[n-2]
	l3 := h.losses[n-3]
	den := l3 - l2
	if math.Abs(den) < 1e-12 {
		return l1, true
	}
	d := l2 - l1
	pred = l1 - d*d/den
	if math.IsNaN(pred) || math.IsInf(pred, 0) {
		return l1, true
	}
	// A loss prediction below zero is an extrapolation artifact; clamp.
	if pred < 0 {
		pred = 0
	}
	return pred, true
}

// DefaultMaxFrac caps the per-layer skipped fraction. Eq. 4's power-law
// decay marks the vast majority of a very long layer insignificant; the
// convergence-aware design refuses to drop more than this share so the
// surviving gradients (even rescaled) keep enough signal.
const DefaultMaxFrac = 0.5

// Config tunes the skip planner.
type Config struct {
	// Threshold is the relative significance cutoff (0 means
	// DefaultThreshold).
	Threshold float64
	// AbsoluteThreshold, when positive, switches the planner to an
	// absolute cutoff: a cell is skipped when its predicted magnitude
	// falls below this value. This is how the paper's Eq. 5 loss
	// prediction feeds back — as the predicted loss shrinks across
	// epochs, more cells drop below the fixed bar. Calibrate the bar
	// against epoch-0 magnitudes (Predictor.Calibrate).
	AbsoluteThreshold float64
	// MaxFrac caps the skipped fraction per layer (0 means
	// DefaultMaxFrac; set negative for no cap).
	MaxFrac float64
	// Base is the storage mode for executed cells: model.StoreRaw for
	// pure MS2, model.StoreP1 when combined with MS1.
	Base model.CellStore
}

func (c Config) maxFrac() float64 {
	if c.MaxFrac == 0 {
		return DefaultMaxFrac
	}
	if c.MaxFrac < 0 {
		return 1
	}
	return c.MaxFrac
}

func (c Config) threshold() float64 {
	if c.Threshold == 0 {
		return DefaultThreshold
	}
	return c.Threshold
}

// Plan is a per-cell skip decision grid plus the per-layer scaling
// factors that offset the skipped gradient mass (paper Fig. 9).
type Plan struct {
	Skip  [][]bool  // [layer][t]; true = skip the BP cell
	Scale []float64 // per-layer amplification for surviving gradients
	base  model.CellStore
}

// Build constructs a skip plan from predicted loss. Every layer keeps
// at least its maximum-magnitude cell, so training never stalls.
func Build(p *Predictor, predictedLoss float64, cfg Config) *Plan {
	th := cfg.threshold()
	plan := &Plan{base: cfg.Base}
	for l := 0; l < p.LN; l++ {
		mags := make([]float64, p.LL)
		mx := 0.0
		for t := 0; t < p.LL; t++ {
			mags[t] = p.Magnitude(predictedLoss, l, t)
			if mags[t] > mx {
				mx = mags[t]
			}
		}
		row := make([]bool, p.LL)
		for t := 0; t < p.LL; t++ {
			switch {
			case cfg.AbsoluteThreshold > 0:
				row[t] = mags[t] < cfg.AbsoluteThreshold
			case mx > 0 && mags[t] < th*mx:
				row[t] = true
			}
		}
		// Never skip the layer's most significant cell.
		if mx > 0 {
			for t := 0; t < p.LL; t++ {
				if mags[t] == mx {
					row[t] = false
					break
				}
			}
		}
		capSkips(row, mags, cfg.maxFrac())
		var sumAll, sumKept float64
		for t := 0; t < p.LL; t++ {
			sumAll += mags[t]
			if !row[t] {
				sumKept += mags[t]
			}
		}
		scale := 1.0
		if sumKept > 0 {
			scale = sumAll / sumKept
		}
		plan.Skip = append(plan.Skip, row)
		plan.Scale = append(plan.Scale, scale)
	}
	return plan
}

// capSkips un-skips the highest-magnitude skipped cells until the
// skipped share of the layer is at most maxFrac.
func capSkips(row []bool, mags []float64, maxFrac float64) {
	allowed := int(maxFrac * float64(len(row)))
	skipped := 0
	for _, s := range row {
		if s {
			skipped++
		}
	}
	for skipped > allowed {
		best, bestMag := -1, -1.0
		for t, s := range row {
			if s && mags[t] > bestMag {
				best, bestMag = t, mags[t]
			}
		}
		if best < 0 {
			return
		}
		row[best] = false
		skipped--
	}
}

// NoSkip returns a plan that executes everything (used for the first
// three epochs, before Eq. 5 has history).
func NoSkip(layers, seqLen int, base model.CellStore) *Plan {
	plan := &Plan{base: base}
	for l := 0; l < layers; l++ {
		plan.Skip = append(plan.Skip, make([]bool, seqLen))
		plan.Scale = append(plan.Scale, 1)
	}
	return plan
}

// Policy adapts the plan to the model.StoragePolicy interface.
func (p *Plan) Policy() model.StoragePolicy {
	return model.PolicyFunc(func(layer, t int) model.CellStore {
		if layer < len(p.Skip) && t < len(p.Skip[layer]) && p.Skip[layer][t] {
			return model.StoreNone
		}
		return p.base
	})
}

// SkippedFrac returns the fraction of cells the plan skips.
func (p *Plan) SkippedFrac() float64 {
	total, skipped := 0, 0
	for _, row := range p.Skip {
		for _, s := range row {
			total++
			if s {
				skipped++
			}
		}
	}
	if total == 0 {
		return 0
	}
	return float64(skipped) / float64(total)
}

// ApplyScaling amplifies each layer's accumulated gradients by the
// plan's per-layer factor — the convergence-aware offset of Sec. IV-B.
func (p *Plan) ApplyScaling(grads *model.Gradients) error {
	if len(grads.Layer) != len(p.Scale) {
		return fmt.Errorf("skip: plan has %d layers, gradients %d", len(p.Scale), len(grads.Layer))
	}
	for l, g := range grads.Layer {
		if p.Scale[l] != 1 {
			g.Scale(float32(p.Scale[l]))
		}
	}
	return nil
}
