// Package corpus turns real text into LSTM training data: a byte-level
// tokenizer, a fixed embedding table, and chunked next-byte-prediction
// providers. It is the bridge from the synthetic Table I workloads to
// user-supplied corpora — the PTB-style language-modeling flow on any
// file.
package corpus

import (
	"fmt"
	"io"

	"etalstm/internal/model"
	"etalstm/internal/rng"
	"etalstm/internal/tensor"
	"etalstm/internal/train"
)

// VocabSize is the byte-level vocabulary (every possible byte).
const VocabSize = 256

// Corpus is tokenized text ready to batch.
type Corpus struct {
	tokens []byte
	emb    *tensor.Matrix // VocabSize×embedDim
}

// Load reads and tokenizes text from r. embedDim sets the input width;
// the embedding table is deterministic in seed (real pipelines learn
// it; a fixed random table keeps distinct bytes linearly separable,
// which is what the LSTM needs).
func Load(r io.Reader, embedDim int, seed uint64) (*Corpus, error) {
	if embedDim <= 0 {
		return nil, fmt.Errorf("corpus: embedDim %d must be positive", embedDim)
	}
	data, err := io.ReadAll(r)
	if err != nil {
		return nil, fmt.Errorf("corpus: reading text: %w", err)
	}
	if len(data) < 2 {
		return nil, fmt.Errorf("corpus: need at least 2 bytes of text, have %d", len(data))
	}
	emb := tensor.New(VocabSize, embedDim)
	emb.RandInit(rng.New(seed), 1)
	return &Corpus{tokens: data, emb: emb}, nil
}

// Len returns the token count.
func (c *Corpus) Len() int { return len(c.tokens) }

// EmbedDim returns the embedding width.
func (c *Corpus) EmbedDim() int { return c.emb.Cols }

// Config returns a model configuration for next-byte prediction over
// this corpus with the given unroll window and batch size.
func (c *Corpus) Config(hidden, layers, seqLen, batch int) model.Config {
	return model.Config{
		InputSize: c.EmbedDim(), Hidden: hidden, Layers: layers,
		SeqLen: seqLen, Batch: batch, OutSize: VocabSize,
		Loss: model.PerTimestampLoss,
	}
}

// Provider cuts the corpus into nBatches minibatches of batch parallel
// windows, each seqLen tokens, targets shifted by one (next-byte
// prediction). Windows are drawn at deterministic offsets so one epoch
// covers the text evenly.
func (c *Corpus) Provider(cfg model.Config, nBatches int, seed uint64) (train.Provider, error) {
	if cfg.InputSize != c.EmbedDim() {
		return nil, fmt.Errorf("corpus: config input %d != embed dim %d", cfg.InputSize, c.EmbedDim())
	}
	need := cfg.SeqLen + 1
	if c.Len() < need {
		return nil, fmt.Errorf("corpus: %d tokens < window %d", c.Len(), need)
	}
	r := rng.New(seed)
	p := &sliceProvider{}
	maxStart := c.Len() - need
	for b := 0; b < nBatches; b++ {
		xs := make([]*tensor.Matrix, cfg.SeqLen)
		tg := &model.Targets{Classes: make([][]int, cfg.SeqLen)}
		for t := range xs {
			xs[t] = tensor.New(cfg.Batch, cfg.InputSize)
			tg.Classes[t] = make([]int, cfg.Batch)
		}
		for i := 0; i < cfg.Batch; i++ {
			start := 0
			if maxStart > 0 {
				start = r.Intn(maxStart + 1)
			}
			for t := 0; t < cfg.SeqLen; t++ {
				tok := c.tokens[start+t]
				copy(xs[t].Row(i), c.emb.Row(int(tok)))
				tg.Classes[t][i] = int(c.tokens[start+t+1])
			}
		}
		p.batches = append(p.batches, train.Batch{Inputs: xs, Targets: tg})
	}
	return p, nil
}

type sliceProvider struct {
	batches []train.Batch
}

func (p *sliceProvider) NumBatches() int         { return len(p.batches) }
func (p *sliceProvider) Batch(i int) train.Batch { return p.batches[i] }

// Generate samples n bytes from net greedily, seeded with prime (which
// must be non-empty): the qualitative check that a byte-level model
// learned something.
func (c *Corpus) Generate(net *model.Network, prime []byte, n int) ([]byte, error) {
	if len(prime) == 0 {
		return nil, fmt.Errorf("corpus: Generate needs a non-empty prime")
	}
	cfg := net.Cfg
	if cfg.Batch != 1 {
		return nil, fmt.Errorf("corpus: Generate needs a batch-1 network, have %d", cfg.Batch)
	}
	out := append([]byte{}, prime...)
	state := net.ZeroState()
	window := make([]byte, 0, cfg.SeqLen)
	feed := func(chunk []byte) (byte, error) {
		// Pad the chunk to the network's unroll window.
		xs := make([]*tensor.Matrix, cfg.SeqLen)
		for t := range xs {
			xs[t] = tensor.New(1, cfg.InputSize)
			tok := byte(0)
			if t < len(chunk) {
				tok = chunk[t]
			}
			copy(xs[t].Row(0), c.emb.Row(int(tok)))
		}
		res, next, err := net.ForwardState(xs, &model.Targets{
			Classes: allMasked(cfg.SeqLen, 1),
		}, nil, state)
		if err != nil {
			return 0, err
		}
		state = next
		last := len(chunk) - 1
		if last < 0 {
			last = 0
		}
		logits := res.Logits[last]
		if logits == nil {
			return 0, fmt.Errorf("corpus: no logits at step %d", last)
		}
		return byte(model.Argmax(logits)[0]), nil
	}
	for _, b := range prime {
		window = append(window, b)
		if len(window) == cfg.SeqLen {
			if _, err := feed(window); err != nil {
				return nil, err
			}
			window = window[:0]
		}
	}
	for i := 0; i < n; i++ {
		chunk := window
		if len(chunk) == 0 {
			chunk = out[len(out)-1:]
		}
		nb, err := feed(chunk)
		if err != nil {
			return nil, err
		}
		out = append(out, nb)
		window = window[:0]
	}
	return out, nil
}

// allMasked builds class targets that mask every position (loss is
// evaluated but contributes nothing; Generate only needs the logits).
func allMasked(seqLen, batch int) [][]int {
	out := make([][]int, seqLen)
	for t := range out {
		row := make([]int, batch)
		for i := range row {
			row[i] = -1
		}
		out[t] = row
	}
	return out
}
