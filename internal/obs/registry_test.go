package obs

import (
	"math"
	"strings"
	"sync"
	"testing"
)

func TestCounterGauge(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c_total", "a counter")
	c.Inc()
	c.Add(4)
	c.Add(-10) // ignored: counters only go up
	if got := c.Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	g := r.Gauge("g", "a gauge")
	g.Set(-2.5)
	if got := g.Value(); got != -2.5 {
		t.Fatalf("gauge = %v, want -2.5", got)
	}
	// Upsert: same name returns the same instrument.
	if r.Counter("c_total", "other help") != c {
		t.Fatal("Counter upsert returned a different instrument")
	}
	if r.Gauge("g", "") != g {
		t.Fatal("Gauge upsert returned a different instrument")
	}
}

func TestKindMismatchPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("x", "")
	defer func() {
		if recover() == nil {
			t.Fatal("re-registering a counter as a gauge did not panic")
		}
	}()
	r.Gauge("x", "")
}

func TestHistogram(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat", "latency", 0, 10, 10, 8)
	for _, v := range []float64{1, 1, 2, 3, 9, 15, -1, math.NaN()} {
		h.Observe(v)
	}
	s := h.Snapshot()
	if s.Count != 7 { // NaN dropped, clamped values kept
		t.Fatalf("count = %d, want 7", s.Count)
	}
	if s.Bins[9] != 2 || s.Bins[0] != 1 { // 15 clamps in with 9 at the top, -1 into the bottom
		t.Fatalf("edge clamping wrong: bins = %v", s.Bins)
	}
	if s.Sum != 1+1+2+3+9+15-1 {
		t.Fatalf("sum = %v", s.Sum)
	}
	if s.Mean() == 0 || math.IsNaN(s.P50) || math.IsNaN(s.P99) {
		t.Fatalf("snapshot stats: mean=%v p50=%v p99=%v", s.Mean(), s.P50, s.P99)
	}
	if (HistSnapshot{}).Mean() != 0 {
		t.Fatal("empty snapshot mean should be 0")
	}
}

func TestHistogramWindowWraps(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("w", "", 0, 100, 10, 4)
	for i := 0; i < 100; i++ {
		h.Observe(1) // old window content
	}
	for i := 0; i < 4; i++ {
		h.Observe(50)
	}
	s := h.Snapshot()
	if s.P50 != 50 || s.P99 != 50 {
		t.Fatalf("window quantiles should reflect only recent samples: p50=%v p99=%v", s.P50, s.P99)
	}
	if s.Count != 104 {
		t.Fatalf("count = %d, want 104", s.Count)
	}
}

func TestWritePrometheus(t *testing.T) {
	r := NewRegistry()
	r.Counter("b_total", "second").Add(2)
	r.Gauge("a_gauge", "first").Set(1.5)
	r.GaugeFunc("c_fn", "computed", func() float64 { return 7 })
	h := r.Histogram("d_hist", "hist", 0, 4, 2, 8)
	h.Observe(1)
	h.Observe(3)

	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	want := []string{
		"# HELP a_gauge first\n# TYPE a_gauge gauge\na_gauge 1.5\n",
		"# TYPE b_total counter\nb_total 2\n",
		"c_fn 7\n",
		"# TYPE d_hist histogram\n",
		"d_hist_bucket{le=\"2\"} 1\n",
		"d_hist_bucket{le=\"4\"} 2\n",
		"d_hist_bucket{le=\"+Inf\"} 2\n",
		"d_hist_sum 4\n",
		"d_hist_count 2\n",
	}
	for _, w := range want {
		if !strings.Contains(out, w) {
			t.Errorf("prometheus output missing %q\n---\n%s", w, out)
		}
	}
	// Name-sorted: a_gauge before b_total before c_fn before d_hist.
	if !(strings.Index(out, "a_gauge") < strings.Index(out, "b_total") &&
		strings.Index(out, "b_total") < strings.Index(out, "c_fn") &&
		strings.Index(out, "c_fn") < strings.Index(out, "d_hist")) {
		t.Errorf("output not name-sorted:\n%s", out)
	}
}

func TestGaugeFuncReplace(t *testing.T) {
	r := NewRegistry()
	r.GaugeFunc("f", "", func() float64 { return 1 })
	r.GaugeFunc("f", "", func() float64 { return 2 })
	if got := r.Snapshot()["f"]; got != 2 {
		t.Fatalf("replaced GaugeFunc = %v, want 2", got)
	}
}

func TestSnapshot(t *testing.T) {
	r := NewRegistry()
	r.Counter("c_total", "").Add(3)
	r.Gauge("g", "").Set(0.5)
	h := r.Histogram("h", "", 0, 1, 4, 8)
	h.Observe(0.25)
	s := r.Snapshot()
	if s["c_total"] != 3 || s["g"] != 0.5 {
		t.Fatalf("snapshot scalars wrong: %v", s)
	}
	if s["h_count"] != 1 || s["h_sum"] != 0.25 || s["h_p50"] != 0.25 || s["h_p99"] != 0.25 {
		t.Fatalf("snapshot histogram wrong: %v", s)
	}
}

func TestFormatFloatNaN(t *testing.T) {
	if formatFloat(math.NaN()) != "0" {
		t.Fatal("NaN should export as 0")
	}
}

func TestConcurrentAccess(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 200; j++ {
				r.Counter("c_total", "").Inc()
				r.Gauge("g", "").Set(float64(j))
				r.Histogram("h", "", 0, 1, 4, 16).Observe(0.5)
				r.Snapshot()
			}
		}()
	}
	wg.Wait()
	if got := r.Counter("c_total", "").Value(); got != 8*200 {
		t.Fatalf("concurrent counter = %d, want %d", got, 8*200)
	}
}

func TestNewTrainRegistersAll(t *testing.T) {
	r := NewRegistry()
	ins := NewTrain(r)
	if ins.Epochs == nil || ins.StepLatency == nil || ins.AllReduceWait == nil {
		t.Fatal("NewTrain left instruments nil")
	}
	s := r.Snapshot()
	for _, name := range []string{
		MetricEpochsTotal, MetricEpochLoss, MetricEpochSeconds, MetricGradNorm,
		MetricClipEventsTotal, MetricMS1PruneRatio, MetricMS1StoredPairs,
		MetricMS2SkipRatio, MetricMS2PredLossError, MetricArenaHitsTotal,
		MetricArenaMissesTotal, MetricArenaBytesHeld,
	} {
		if _, ok := s[name]; !ok {
			t.Errorf("snapshot missing %s", name)
		}
	}
	// Re-binding on the same registry reuses the same instruments.
	if NewTrain(r).Epochs != ins.Epochs {
		t.Fatal("NewTrain did not upsert")
	}
}
