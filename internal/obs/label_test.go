package obs

import (
	"strings"
	"testing"
)

func TestLabeledSeriesAreDistinct(t *testing.T) {
	r := NewRegistry()
	a := r.CounterL("fleet_reqs_total", "per-replica requests", "replica", "http://a:1")
	b := r.CounterL("fleet_reqs_total", "per-replica requests", "replica", "http://b:2")
	if a == b {
		t.Fatal("different label values resolved to one counter")
	}
	a.Add(3)
	b.Inc()
	if a2 := r.CounterL("fleet_reqs_total", "", "replica", "http://a:1"); a2 != a {
		t.Fatal("same (name, label) did not upsert to the existing counter")
	}

	snap := r.Snapshot()
	if snap[`fleet_reqs_total{replica="http://a:1"}`] != 3 {
		t.Fatalf("snapshot missing labeled series a: %v", snap)
	}
	if snap[`fleet_reqs_total{replica="http://b:2"}`] != 1 {
		t.Fatalf("snapshot missing labeled series b: %v", snap)
	}

	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if got := strings.Count(out, "# TYPE fleet_reqs_total counter"); got != 1 {
		t.Fatalf("family TYPE header emitted %d times, want 1:\n%s", got, out)
	}
	if !strings.Contains(out, `fleet_reqs_total{replica="http://a:1"} 3`) ||
		!strings.Contains(out, `fleet_reqs_total{replica="http://b:2"} 1`) {
		t.Fatalf("prometheus output missing labeled samples:\n%s", out)
	}
}

func TestLabeledGaugeAndFunc(t *testing.T) {
	r := NewRegistry()
	g := r.GaugeL("fleet_queue_depth", "scraped depth", "replica", "a")
	g.Set(7)
	r.GaugeFuncL("fleet_p99_ms", "per-replica p99", "replica", "a", func() float64 { return 2.5 })
	snap := r.Snapshot()
	if snap[`fleet_queue_depth{replica="a"}`] != 7 {
		t.Fatalf("labeled gauge missing: %v", snap)
	}
	if snap[`fleet_p99_ms{replica="a"}`] != 2.5 {
		t.Fatalf("labeled gauge func missing: %v", snap)
	}
}

// TestSetInfoReplacesLabel pins the hot-swap behavior: re-setting an
// info gauge replaces the label value in place instead of accumulating
// one stale series per checkpoint generation.
func TestSetInfoReplacesLabel(t *testing.T) {
	r := NewRegistry()
	r.SetInfo("ckpt_digest", "served checkpoint digest", "digest", "aaaa")
	r.SetInfo("ckpt_digest", "served checkpoint digest", "digest", "bbbb")

	snap := r.Snapshot()
	if snap[`ckpt_digest{digest="bbbb"}`] != 1 {
		t.Fatalf("info gauge not updated: %v", snap)
	}
	if _, stale := snap[`ckpt_digest{digest="aaaa"}`]; stale {
		t.Fatalf("stale info series survived relabel: %v", snap)
	}

	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), `ckpt_digest{digest="bbbb"} 1`) {
		t.Fatalf("prometheus output missing info sample:\n%s", sb.String())
	}
	if !strings.Contains(sb.String(), "# TYPE ckpt_digest gauge") {
		t.Fatalf("info gauge not typed as gauge:\n%s", sb.String())
	}
}

func TestLabelValueEscaping(t *testing.T) {
	r := NewRegistry()
	r.SetInfo("weird", "", "v", "a\"b\\c\nd")
	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	want := `weird{v="a\"b\\c\nd"} 1`
	if !strings.Contains(sb.String(), want) {
		t.Fatalf("escaped label %q missing from:\n%s", want, sb.String())
	}
}

func TestLabeledKindMismatchPanics(t *testing.T) {
	r := NewRegistry()
	r.CounterL("x", "", "k", "v")
	defer func() {
		if recover() == nil {
			t.Fatal("re-registering a labeled counter as a gauge did not panic")
		}
	}()
	r.GaugeL("x", "", "k", "v")
}
