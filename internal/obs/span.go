package obs

import (
	"fmt"
	"strings"
	"time"
)

// Phase identifies one stage of a training step, following the paper's
// execution-order diagram (Fig. 2 / Sec. IV-A): the FW pass, the two
// halves of the reordered BP element-wise stage, the BP matrix
// multiplies, and the step-level stages around them.
type Phase uint8

const (
	// PhaseFW covers FW-MatMul + FW-EW (one forward cell), plus the
	// output projection.
	PhaseFW Phase = iota
	// PhaseBPEWP1 is the gradient-independent half of BP-EW — under MS1
	// it runs inside the FW pass (execution reordering), which is
	// exactly what the span placement shows.
	PhaseBPEWP1
	// PhaseBPEWP2 is the gradient-dependent half of BP-EW (the whole
	// BP-EW stage in the unreordered baseline flow).
	PhaseBPEWP2
	// PhaseBPMatMul covers Eq. 2/Eq. 3: propagated gradients and weight
	// gradient accumulation.
	PhaseBPMatMul
	// PhaseRecomputeFW is the checkpointed-BPTT segment replay: the FW
	// cells re-executed during BP to regenerate the intermediates that a
	// memory budget kept us from storing. It is extra work the
	// full-storage flow never does, so it gets its own row rather than
	// inflating PhaseFW.
	PhaseRecomputeFW
	// PhaseAllReduce is the data-parallel gradient merge (tree reduce).
	PhaseAllReduce
	// PhaseOptimizer is the reducer stage: averaging, clipping, and the
	// weight update.
	PhaseOptimizer

	// NumPhases bounds the phase enum.
	NumPhases
)

// String implements fmt.Stringer with the paper's stage names.
func (p Phase) String() string {
	switch p {
	case PhaseFW:
		return "FW"
	case PhaseBPEWP1:
		return "BP-EW-P1"
	case PhaseBPEWP2:
		return "BP-EW-P2"
	case PhaseBPMatMul:
		return "BP-MatMul"
	case PhaseRecomputeFW:
		return "recompute-FW"
	case PhaseAllReduce:
		return "all-reduce"
	case PhaseOptimizer:
		return "optimizer"
	}
	return fmt.Sprintf("Phase(%d)", int(p))
}

// Recorder accumulates per-phase wall time and span counts in fixed
// storage — Begin/End never allocate, whether the recorder is present
// or nil. Like a tensor.Workspace, a Recorder is confined to one
// goroutine at a time (one per serial trainer, one per data-parallel
// replica); aggregation across goroutines happens by Add after the
// goroutines are joined, never concurrently.
//
// The disabled path is a nil *Recorder: Begin returns the zero Span
// without reading the clock, End returns immediately — a pointer test
// per phase boundary, which is what keeps the hot path's 0 allocs/op
// guarantee (and its latency) intact when telemetry is off.
type Recorder struct {
	ns [NumPhases]int64
	n  [NumPhases]int64
}

// NewRecorder returns an empty recorder.
func NewRecorder() *Recorder { return &Recorder{} }

// Span is an in-flight phase measurement. The zero Span (from a nil
// recorder) is valid and End on it is a no-op.
type Span struct {
	r     *Recorder
	phase Phase
	t0    time.Time
}

// Begin opens a span for phase p. On a nil recorder it is free: no
// clock read, no allocation.
func (r *Recorder) Begin(p Phase) Span {
	if r == nil {
		return Span{}
	}
	return Span{r: r, phase: p, t0: time.Now()}
}

// End closes the span, folding its elapsed wall time into the recorder.
func (s Span) End() {
	if s.r == nil {
		return
	}
	s.r.ns[s.phase] += int64(time.Since(s.t0))
	s.r.n[s.phase]++
}

// Observe folds an externally measured duration into phase p (used
// where the caller already holds timestamps, e.g. the per-replica
// all-reduce wait).
func (r *Recorder) Observe(p Phase, d time.Duration) {
	if r == nil || d < 0 {
		return
	}
	r.ns[p] += int64(d)
	r.n[p]++
}

// Add merges another recorder's accumulated spans into r (replica
// recorders folding into the trainer's aggregate after an epoch).
func (r *Recorder) Add(o *Recorder) {
	if r == nil || o == nil {
		return
	}
	for p := Phase(0); p < NumPhases; p++ {
		r.ns[p] += o.ns[p]
		r.n[p] += o.n[p]
	}
}

// Observed returns how many spans have been recorded for phase p
// (0 on a nil recorder) — the cheap way for tests and assertions to
// check instrumentation is actually connected.
func (r *Recorder) Observed(p Phase) int64 {
	if r == nil {
		return 0
	}
	return r.n[p]
}

// Reset zeroes the recorder.
func (r *Recorder) Reset() {
	if r == nil {
		return
	}
	*r = Recorder{}
}

// PhaseSnapshot is a point-in-time copy of a recorder's accumulators.
// Two snapshots bracketing a sweep or an optimizer step Delta into the
// per-phase wall time of exactly that unit of work — which is how the
// tracing layer folds recorder phases into a span tree without adding
// any bookkeeping to the hot path.
type PhaseSnapshot struct {
	Ns [NumPhases]int64
	N  [NumPhases]int64
}

// Snapshot copies the accumulators (zero value on a nil recorder).
func (r *Recorder) Snapshot() PhaseSnapshot {
	if r == nil {
		return PhaseSnapshot{}
	}
	return PhaseSnapshot{Ns: r.ns, N: r.n}
}

// Delta returns s - prev per phase: the work recorded between the two
// snapshots.
func (s PhaseSnapshot) Delta(prev PhaseSnapshot) PhaseSnapshot {
	var d PhaseSnapshot
	for p := Phase(0); p < NumPhases; p++ {
		d.Ns[p] = s.Ns[p] - prev.Ns[p]
		d.N[p] = s.N[p] - prev.N[p]
	}
	return d
}

// PhaseStat is one row of a span breakdown.
type PhaseStat struct {
	Phase string
	Count int64
	Total time.Duration
}

// Breakdown returns the recorded phases in execution order, skipping
// phases that never ran.
func (r *Recorder) Breakdown() []PhaseStat {
	if r == nil {
		return nil
	}
	out := make([]PhaseStat, 0, NumPhases)
	for p := Phase(0); p < NumPhases; p++ {
		if r.n[p] == 0 {
			continue
		}
		out = append(out, PhaseStat{Phase: p.String(), Count: r.n[p], Total: time.Duration(r.ns[p])})
	}
	return out
}

// BreakdownTable renders phase stats as an aligned text table with each
// phase's share of the total recorded time — the etabench -phases
// output.
func BreakdownTable(rows []PhaseStat) string {
	var total time.Duration
	for _, r := range rows {
		total += r.Total
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%-12s %10s %12s %7s\n", "phase", "spans", "total", "share")
	for _, r := range rows {
		share := 0.0
		if total > 0 {
			share = 100 * float64(r.Total) / float64(total)
		}
		fmt.Fprintf(&b, "%-12s %10d %12s %6.1f%%\n",
			r.Phase, r.Count, r.Total.Round(time.Microsecond), share)
	}
	fmt.Fprintf(&b, "%-12s %10s %12s\n", "total", "", total.Round(time.Microsecond))
	return b.String()
}
