package obs

import "runtime/debug"

// MetricBuildInfo identifies the running binary on /metrics: constant
// 1, with the Go toolchain, module version and VCS revision as labels.
const MetricBuildInfo = "etalstm_build_info"

// RegisterBuildInfo registers the etalstm_build_info gauge on r from
// runtime/debug.ReadBuildInfo. Every binary calls it on each registry
// it exports (the process-default one and any per-server registries),
// so a scrape always says what is running. Fields that the build did
// not stamp (module version outside a release, revision without VCS)
// export as "unknown".
func RegisterBuildInfo(r *Registry) {
	goVersion, version, revision := "unknown", "unknown", "unknown"
	if bi, ok := debug.ReadBuildInfo(); ok {
		if bi.GoVersion != "" {
			goVersion = bi.GoVersion
		}
		if bi.Main.Version != "" && bi.Main.Version != "(devel)" {
			version = bi.Main.Version
		}
		for _, s := range bi.Settings {
			if s.Key == "vcs.revision" && s.Value != "" {
				revision = s.Value
			}
		}
	}
	r.SetInfoKV(MetricBuildInfo, "build identity of the running binary",
		"goversion", goVersion, "version", version, "revision", revision)
}
