// Package obs is the unified telemetry layer: a zero-dependency
// (stdlib + internal/stats only) metrics registry plus lightweight
// phase spans for the FW/BP hot path.
//
// The registry holds counters, gauges and fixed-bin histograms behind
// one concurrent surface with two exports — the Prometheus text format
// (GET /metrics) and a flat name→value snapshot (JSON-friendly, the
// etalstm.Metrics() API). Instruments are upserted: asking for a name
// that already exists returns the existing instrument, so several
// trainers (or a trainer and a server) in one process share counters
// instead of fighting over registration.
//
// The span half (span.go) breaks a training step into the paper's
// execution phases (FW, BP-EW-P1, BP-EW-P2, BP-MatMul, all-reduce,
// optimizer). Recorders are goroutine-confined like the workspace
// arenas they ride on, off by default, and allocation-free whether
// enabled or disabled — the hot-path 0 allocs/op guarantee holds either
// way (see internal/lstm's alloc regression test).
package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"etalstm/internal/stats"
)

// Counter is a monotonically increasing integer metric.
type Counter struct {
	v atomic.Int64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add increases the counter by n (n < 0 is ignored: counters only go
// up; use a Gauge for signed quantities).
func (c *Counter) Add(n int64) {
	if n > 0 {
		c.v.Add(n)
	}
}

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is a float64 metric that can go up and down.
type Gauge struct {
	bits atomic.Uint64
}

// Set stores v.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Value returns the last stored value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// Histogram is a concurrent fixed-bin histogram (equal-width bins over
// [Lo, Hi), edge-clamped — stats.Histogram under a mutex) that also
// keeps a bounded ring of recent raw observations so windowed p50/p99
// stay exact (stats.Quantiles) no matter how coarse the bins are.
type Histogram struct {
	mu   sync.Mutex
	h    *stats.Histogram
	sum  float64
	ring []float64
	idx  int
	n    int

	// Exemplar: the slowest (largest) recent observation that carried a
	// trace id — the "why was this tail slow?" pointer the latency
	// histograms attach so /statz and the Prometheus export can name a
	// concrete trace to pull from /debug/traces/{id}.
	exID  string
	exVal float64
	exAt  int64 // observation count when the exemplar was taken
	total int64
}

func newHistogram(lo, hi float64, bins, window int) *Histogram {
	if window <= 0 {
		window = 1024
	}
	return &Histogram{h: stats.NewHistogram(lo, hi, bins), ring: make([]float64, window)}
}

// Observe records one value. NaN observations are dropped so quantile
// and mean exports stay NaN-free. Allocation-free.
func (h *Histogram) Observe(v float64) { h.ObserveEx(v, "") }

// ObserveEx is Observe with an exemplar: a trace id naming the request
// behind the observation. The histogram keeps the largest recent
// exemplar — replaced when a bigger value arrives or when the held one
// ages out of the observation window — so the export always points at
// a representative slow trace, not a stale one.
func (h *Histogram) ObserveEx(v float64, traceID string) {
	if math.IsNaN(v) {
		return
	}
	h.mu.Lock()
	h.h.Observe(v)
	h.sum += v
	h.ring[h.idx] = v
	h.idx = (h.idx + 1) % len(h.ring)
	if h.n < len(h.ring) {
		h.n++
	}
	h.total++
	if traceID != "" &&
		(h.exID == "" || v >= h.exVal || h.total-h.exAt > int64(len(h.ring))) {
		h.exID, h.exVal, h.exAt = traceID, v, h.total
	}
	h.mu.Unlock()
}

// HistSnapshot is one consistent view of a histogram.
type HistSnapshot struct {
	Lo, Hi float64
	Bins   []int64
	Count  int64
	Sum    float64
	// P50/P99 are nearest-rank quantiles over the recent-observation
	// window (not the bins), so they are exact for the last window.
	P50, P99 float64
	// ExemplarTraceID/ExemplarValue name the slowest recent traced
	// observation ("" when no observation carried a trace id).
	ExemplarTraceID string
	ExemplarValue   float64
}

// Snapshot returns a copy of the histogram's state.
func (h *Histogram) Snapshot() HistSnapshot {
	h.mu.Lock()
	s := HistSnapshot{
		Lo:              h.h.Lo,
		Hi:              h.h.Hi,
		Bins:            append([]int64(nil), h.h.Bins...),
		Count:           h.h.Total(),
		Sum:             h.sum,
		ExemplarTraceID: h.exID,
		ExemplarValue:   h.exVal,
	}
	window := append([]float64(nil), h.ring[:h.n]...)
	h.mu.Unlock()
	qs := stats.Quantiles(window, 0.5, 0.99)
	s.P50, s.P99 = qs[0], qs[1]
	return s
}

// Mean returns Sum/Count (0 when empty).
func (s HistSnapshot) Mean() float64 {
	if s.Count == 0 {
		return 0
	}
	return s.Sum / float64(s.Count)
}

// kind tags what an entry holds.
type kind uint8

const (
	kindCounter kind = iota
	kindGauge
	kindGaugeFunc
	kindHistogram
	kindInfo
)

func (k kind) String() string {
	switch k {
	case kindCounter:
		return "counter"
	case kindGaugeFunc, kindGauge, kindInfo:
		return "gauge"
	case kindHistogram:
		return "histogram"
	}
	return "untyped"
}

type entry struct {
	name   string
	labels string // rendered `key="value"` label pair, "" for unlabeled
	help   string
	kind   kind

	counter *Counter
	gauge   *Gauge
	fn      func() float64
	hist    *Histogram
}

// series renders the full sample name including the label pair —
// `name` or `name{key="value"}` — used by both export formats.
func (e *entry) series() string {
	if e.labels == "" {
		return e.name
	}
	return e.name + "{" + e.labels + "}"
}

// renderLabel formats one key="value" pair with the value escaped the
// way the Prometheus text format requires (backslash, quote, newline).
func renderLabel(key, val string) string {
	var b strings.Builder
	b.WriteString(key)
	b.WriteString(`="`)
	for _, r := range val {
		switch r {
		case '\\':
			b.WriteString(`\\`)
		case '"':
			b.WriteString(`\"`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteRune(r)
		}
	}
	b.WriteByte('"')
	return b.String()
}

// Registry is a concurrent collection of named instruments.
type Registry struct {
	mu      sync.RWMutex
	entries map[string]*entry
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{entries: make(map[string]*entry)}
}

// Default is the process-wide registry: the training stack registers
// its instruments here, etalstm.Metrics() snapshots it, and etatrain's
// -metrics-addr serves it. Servers keep per-instance registries instead
// (their counters describe one Server's lifetime).
var Default = NewRegistry()

// key builds the registry map key for a (name, labels) pair. The 0xff
// separator cannot appear in a metric name, so labeled and unlabeled
// series under one family never collide.
func key(name, labels string) string {
	if labels == "" {
		return name
	}
	return name + "\xff" + labels
}

// lookup returns the existing entry under key after checking its kind,
// or nil when absent.
func (r *Registry) lookup(key string, k kind) *entry {
	if e, ok := r.entries[key]; ok {
		if e.kind != k {
			panic(fmt.Sprintf("obs: %q re-registered as %v, was %v", e.name, k, e.kind))
		}
		return e
	}
	return nil
}

// Counter returns the counter registered under name, creating it on
// first use. help is kept from the first registration.
func (r *Registry) Counter(name, help string) *Counter {
	return r.counter(name, "", help)
}

// CounterL is Counter with one label pair: each distinct (name, key,
// value) triple is its own series under the shared family name — how
// the fleet router keeps per-replica request counts.
func (r *Registry) CounterL(name, help, labelKey, labelVal string) *Counter {
	return r.counter(name, renderLabel(labelKey, labelVal), help)
}

func (r *Registry) counter(name, labels, help string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	k := key(name, labels)
	if e := r.lookup(k, kindCounter); e != nil {
		return e.counter
	}
	c := &Counter{}
	r.entries[k] = &entry{name: name, labels: labels, help: help, kind: kindCounter, counter: c}
	return c
}

// Gauge returns the gauge registered under name, creating it on first
// use.
func (r *Registry) Gauge(name, help string) *Gauge {
	return r.gauge(name, "", help)
}

// GaugeL is Gauge with one label pair (see CounterL).
func (r *Registry) GaugeL(name, help, labelKey, labelVal string) *Gauge {
	return r.gauge(name, renderLabel(labelKey, labelVal), help)
}

func (r *Registry) gauge(name, labels, help string) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	k := key(name, labels)
	if e := r.lookup(k, kindGauge); e != nil {
		return e.gauge
	}
	g := &Gauge{}
	r.entries[k] = &entry{name: name, labels: labels, help: help, kind: kindGauge, gauge: g}
	return g
}

// GaugeFunc registers a gauge whose value is computed at export time
// (queue depths, session counts, arena residency). Re-registering a
// name replaces the function — the newest owner wins.
func (r *Registry) GaugeFunc(name, help string, fn func() float64) {
	r.gaugeFunc(name, "", help, fn)
}

// GaugeFuncL is GaugeFunc with one label pair (see CounterL).
func (r *Registry) GaugeFuncL(name, help, labelKey, labelVal string, fn func() float64) {
	r.gaugeFunc(name, renderLabel(labelKey, labelVal), help, fn)
}

func (r *Registry) gaugeFunc(name, labels, help string, fn func() float64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	k := key(name, labels)
	if e := r.lookup(k, kindGaugeFunc); e != nil {
		e.fn = fn
		return
	}
	r.entries[k] = &entry{name: name, labels: labels, help: help, kind: kindGaugeFunc, fn: fn}
}

// SetInfo registers (or relabels) an info-style gauge: a series that is
// constantly 1 and carries its payload in the label value — e.g.
// etalstm_checkpoint_digest{digest="ab12…"} 1. The entry is keyed by
// name alone, so calling SetInfo again replaces the label in place (a
// checkpoint hot-swap updates the digest rather than accumulating one
// stale series per generation).
func (r *Registry) SetInfo(name, help, labelKey, labelVal string) {
	r.SetInfoKV(name, help, labelKey, labelVal)
}

// SetInfoKV is SetInfo with several label pairs (kv alternates key,
// value) — build-info style gauges carry goversion/version/revision in
// one series.
func (r *Registry) SetInfoKV(name, help string, kv ...string) {
	var b strings.Builder
	for i := 0; i+1 < len(kv); i += 2 {
		if b.Len() > 0 {
			b.WriteByte(',')
		}
		b.WriteString(renderLabel(kv[i], kv[i+1]))
	}
	labels := b.String()
	r.mu.Lock()
	defer r.mu.Unlock()
	if e := r.lookup(name, kindInfo); e != nil {
		e.labels = labels
		return
	}
	r.entries[name] = &entry{name: name, labels: labels, help: help, kind: kindInfo}
}

// Histogram returns the histogram registered under name, creating it
// with bins equal-width bins over [lo, hi) and a window-sized
// recent-observation ring on first use.
func (r *Registry) Histogram(name, help string, lo, hi float64, bins, window int) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	if e := r.lookup(name, kindHistogram); e != nil {
		return e.hist
	}
	h := newHistogram(lo, hi, bins, window)
	r.entries[name] = &entry{name: name, help: help, kind: kindHistogram, hist: h}
	return h
}

// sorted returns the entries in name order (the export order both
// formats use).
func (r *Registry) sorted() []*entry {
	r.mu.RLock()
	es := make([]*entry, 0, len(r.entries))
	for _, e := range r.entries {
		es = append(es, e)
	}
	r.mu.RUnlock()
	sort.Slice(es, func(i, j int) bool {
		if es[i].name != es[j].name {
			return es[i].name < es[j].name
		}
		return es[i].labels < es[j].labels
	})
	return es
}

// WritePrometheus writes every instrument in the Prometheus text
// exposition format (version 0.0.4), sorted by name. Labeled series
// under one family share a single HELP/TYPE header.
func (r *Registry) WritePrometheus(w io.Writer) error {
	prev := ""
	for _, e := range r.sorted() {
		if e.name != prev {
			prev = e.name
			if e.help != "" {
				if _, err := fmt.Fprintf(w, "# HELP %s %s\n", e.name, e.help); err != nil {
					return err
				}
			}
			if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", e.name, e.kind); err != nil {
				return err
			}
		}
		var err error
		switch e.kind {
		case kindCounter:
			_, err = fmt.Fprintf(w, "%s %d\n", e.series(), e.counter.Value())
		case kindGauge:
			_, err = fmt.Fprintf(w, "%s %s\n", e.series(), formatFloat(e.gauge.Value()))
		case kindGaugeFunc:
			_, err = fmt.Fprintf(w, "%s %s\n", e.series(), formatFloat(e.fn()))
		case kindInfo:
			_, err = fmt.Fprintf(w, "%s 1\n", e.series())
		case kindHistogram:
			err = writePromHistogram(w, e.name, e.hist.Snapshot())
		}
		if err != nil {
			return err
		}
	}
	return nil
}

// writePromHistogram emits the cumulative _bucket/_sum/_count triplet.
// The fixed-bin layout maps to le = Lo + (i+1)·width; the edge-clamped
// top bin plus the +Inf bucket keep the cumulative counts consistent.
func writePromHistogram(w io.Writer, name string, s HistSnapshot) error {
	width := (s.Hi - s.Lo) / float64(len(s.Bins))
	var cum int64
	for i, c := range s.Bins {
		cum += c
		le := s.Lo + float64(i+1)*width
		if _, err := fmt.Fprintf(w, "%s_bucket{le=%q} %d\n", name, formatFloat(le), cum); err != nil {
			return err
		}
	}
	// The +Inf bucket carries the exemplar (OpenMetrics syntax: a "#"
	// suffix with a labelset and the exemplar's value). Plain text-format
	// scrapers ignore everything after the sample value's line position;
	// OpenMetrics-aware ones surface the trace id next to the histogram.
	ex := ""
	if s.ExemplarTraceID != "" {
		ex = fmt.Sprintf(" # {%s} %s",
			renderLabel("trace_id", s.ExemplarTraceID), formatFloat(s.ExemplarValue))
	}
	if _, err := fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d%s\n", name, s.Count, ex); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "%s_sum %s\n", name, formatFloat(s.Sum)); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, "%s_count %d\n", name, s.Count)
	return err
}

// formatFloat renders a float the way Prometheus expects (shortest
// round-trip representation; NaN guarded to 0 so exports stay finite).
func formatFloat(v float64) string {
	if math.IsNaN(v) {
		v = 0
	}
	return fmt.Sprintf("%g", v)
}

// Snapshot flattens every instrument to name→value: counters and
// gauges directly; histograms contribute <name>_count, <name>_sum,
// <name>_p50 and <name>_p99. The map is JSON-ready and is what
// etalstm.Metrics() returns.
func (r *Registry) Snapshot() map[string]float64 {
	out := make(map[string]float64)
	for _, e := range r.sorted() {
		switch e.kind {
		case kindCounter:
			out[e.series()] = float64(e.counter.Value())
		case kindGauge:
			out[e.series()] = e.gauge.Value()
		case kindGaugeFunc:
			out[e.series()] = e.fn()
		case kindInfo:
			out[e.series()] = 1
		case kindHistogram:
			s := e.hist.Snapshot()
			out[e.name+"_count"] = float64(s.Count)
			out[e.name+"_sum"] = s.Sum
			out[e.name+"_p50"] = s.P50
			out[e.name+"_p99"] = s.P99
		}
	}
	return out
}
