package obs

// Training instrument names — the stable metric surface the README and
// the obs-smoke target grep for. Declared as constants so tests, CLIs
// and docs cannot drift from the registration site.
const (
	MetricEpochsTotal      = "etalstm_epochs_total"
	MetricEpochLoss        = "etalstm_epoch_loss"
	MetricEpochSeconds     = "etalstm_epoch_seconds"
	MetricGradNorm         = "etalstm_grad_norm"
	MetricClipEventsTotal  = "etalstm_clip_events_total"
	MetricStepLatency      = "etalstm_step_latency_seconds"
	MetricMS1PruneRatio    = "etalstm_ms1_prune_ratio"
	MetricMS1StoredPairs   = "etalstm_ms1_stored_pairs_total"
	MetricSparseBPDensity  = "etalstm_sparse_bp_density"
	MetricMS2SkipRatio     = "etalstm_ms2_skip_ratio"
	MetricMS2PredLossError = "etalstm_ms2_pred_loss_error"
	MetricArenaHitsTotal   = "etalstm_arena_hits_total"
	MetricArenaMissesTotal = "etalstm_arena_misses_total"
	MetricArenaBytesHeld   = "etalstm_arena_bytes_held"
	MetricAllReduceWait    = "etalstm_allreduce_wait_seconds"
	MetricCkptColumns      = "etalstm_ckpt_columns"
	MetricCkptStoredBytes  = "etalstm_ckpt_stored_bytes"
	MetricPeakStoredBytes  = "etalstm_bptt_peak_stored_bytes"
	MetricRecomputeRatio   = "etalstm_recompute_ratio"

	// Gradient-sync (internal/dist) instrument names.
	MetricDistWireBytes    = "etalstm_dist_wire_bytes_total"
	MetricDistDenseBytes   = "etalstm_dist_dense_bytes_total"
	MetricDistCompression  = "etalstm_dist_compression_ratio"
	MetricDistSteps        = "etalstm_dist_steps_total"
	MetricDistStaleSteps   = "etalstm_dist_stale_steps_total"
	MetricDistLateContribs = "etalstm_dist_late_contribs_total"
)

// Train bundles the training-side instruments. One bundle is created
// per trainer against a registry (normally Default); because the
// registry upserts by name, several trainers in one process share the
// counters and the latest writer owns each gauge.
type Train struct {
	// Epochs counts completed epochs; EpochLoss and EpochSeconds hold
	// the latest epoch's mean loss and wall time.
	Epochs       *Counter
	EpochLoss    *Gauge
	EpochSeconds *Gauge

	// GradNorm is the last pre-clip global gradient L2 norm;
	// ClipEvents counts optimizer steps where clipping actually
	// rescaled (norm exceeded the limit).
	GradNorm   *Gauge
	ClipEvents *Counter

	// StepLatency is the per-optimizer-step wall time (one step per
	// minibatch serial, one per group data-parallel).
	StepLatency *Histogram

	// MS1: the near-zero prune ratio of the latest epoch and the
	// cumulative value+index pairs the compressed P1 store holds
	// (kept = seen − pruned).
	MS1PruneRatio  *Gauge
	MS1StoredPairs *Counter

	// SparseBPDensity is the fraction of P1 operands the sparse backward
	// kernels actually touched in the latest epoch (1 − prune ratio;
	// stays 0 unless the trainer runs with SparseBackward). BP-EW-P2 and
	// BP-MatMul span time should track this gauge.
	SparseBPDensity *Gauge

	// MS2: the measured skipped-BP-cell ratio of the latest epoch and
	// the absolute error of the Eq. 5 loss extrapolation against the
	// loss the epoch actually produced.
	MS2SkipRatio     *Gauge
	MS2PredLossError *Gauge

	// Workspace arenas, aggregated over the master network and every
	// replica: cumulative free-list hits/misses and the bytes currently
	// held in free lists.
	ArenaHits   *Counter
	ArenaMisses *Counter
	ArenaBytes  *Gauge

	// AllReduceWait is the per-replica straggler wait: how long each
	// finished replica sat idle before its group's all-reduce began.
	AllReduceWait *Histogram

	// Checkpointed BPTT: the number of (h,s) checkpoint columns the
	// active plan keeps and the bytes they pin, the measured peak of
	// stored activation bytes over the latest epoch (max across
	// replicas), and the fraction of FW cells re-executed during BP.
	// All four sit at zero when training runs full-storage.
	CkptColumns    *Gauge
	CkptBytes      *Gauge
	PeakStored     *Gauge
	RecomputeRatio *Gauge
}

// Dist bundles the gradient-sync instruments: what the all-reduce
// transport seam (internal/dist) put on the wire and how staleness
// admission behaved. One bundle is created per sync against a registry
// (normally Default).
type Dist struct {
	// WireBytes counts gradient payload bytes actually shipped (both
	// directions for the TCP transport; the bytes the encoding would
	// ship for the in-process compressed mode). DenseBytes counts what
	// the same payloads would cost uncompressed, so WireBytes/DenseBytes
	// is the cumulative on-wire ratio.
	WireBytes  *Counter
	DenseBytes *Counter
	// Compression is the latest step's dense/wire payload ratio (≥ 1;
	// higher is better, 1 means no saving).
	Compression *Gauge
	// Steps counts merged optimizer steps the sync served; StaleSteps
	// counts the subset admitted without every replica (bounded
	// staleness); LateContribs counts late gradient sets folded into a
	// following step.
	Steps        *Counter
	StaleSteps   *Counter
	LateContribs *Counter
}

// NewDist registers (or re-binds) the gradient-sync instruments on r.
func NewDist(r *Registry) *Dist {
	return &Dist{
		WireBytes:    r.Counter(MetricDistWireBytes, "gradient payload bytes put on the wire by the sync transport"),
		DenseBytes:   r.Counter(MetricDistDenseBytes, "bytes the same gradient payloads would cost dense"),
		Compression:  r.Gauge(MetricDistCompression, "latest step's dense/wire gradient payload ratio"),
		Steps:        r.Counter(MetricDistSteps, "optimizer steps merged through the gradient sync"),
		StaleSteps:   r.Counter(MetricDistStaleSteps, "steps admitted without every replica (bounded staleness)"),
		LateContribs: r.Counter(MetricDistLateContribs, "late gradient contributions folded into a following step"),
	}
}

// NewTrain registers (or re-binds) the training instruments on r.
func NewTrain(r *Registry) *Train {
	return &Train{
		Epochs:       r.Counter(MetricEpochsTotal, "completed training epochs"),
		EpochLoss:    r.Gauge(MetricEpochLoss, "mean loss of the latest completed epoch"),
		EpochSeconds: r.Gauge(MetricEpochSeconds, "wall time of the latest completed epoch"),
		GradNorm:     r.Gauge(MetricGradNorm, "pre-clip global gradient L2 norm of the latest step"),
		ClipEvents:   r.Counter(MetricClipEventsTotal, "optimizer steps where gradient clipping rescaled"),
		StepLatency: r.Histogram(MetricStepLatency, "optimizer step wall time in seconds",
			0, 2.5, 50, 4096),
		MS1PruneRatio:    r.Gauge(MetricMS1PruneRatio, "MS1 near-zero P1 prune ratio of the latest epoch"),
		MS1StoredPairs:   r.Counter(MetricMS1StoredPairs, "cumulative value+index pairs kept by the compressed P1 store"),
		SparseBPDensity:  r.Gauge(MetricSparseBPDensity, "fraction of P1 operands touched by the sparse backward kernels"),
		MS2SkipRatio:     r.Gauge(MetricMS2SkipRatio, "MS2 skipped BP-cell ratio of the latest epoch"),
		MS2PredLossError: r.Gauge(MetricMS2PredLossError, "absolute error of the Eq. 5 loss extrapolation"),
		ArenaHits:        r.Counter(MetricArenaHitsTotal, "workspace arena free-list hits"),
		ArenaMisses:      r.Counter(MetricArenaMissesTotal, "workspace arena allocations (free-list misses)"),
		ArenaBytes:       r.Gauge(MetricArenaBytesHeld, "bytes currently held in workspace free lists"),
		AllReduceWait: r.Histogram(MetricAllReduceWait, "per-replica wait before the group all-reduce in seconds",
			0, 1, 50, 4096),
		CkptColumns:    r.Gauge(MetricCkptColumns, "checkpoint (h,s) columns kept by the active memory plan"),
		CkptBytes:      r.Gauge(MetricCkptStoredBytes, "bytes pinned by the checkpoint columns of the active plan"),
		PeakStored:     r.Gauge(MetricPeakStoredBytes, "measured peak stored activation bytes of the latest epoch"),
		RecomputeRatio: r.Gauge(MetricRecomputeRatio, "fraction of FW cells re-executed during BP of the latest epoch"),
	}
}
