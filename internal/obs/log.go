package obs

import (
	"io"
	"log/slog"
)

// Logger is the structured logger the serving and fleet components
// share: slog text output with a trace_id attribute riding the tracing
// spine, so a log line and the flight-recorder trace it belongs to
// carry the same identity.
//
// A nil *Logger is the silent logger — every method is a pointer test,
// which is what libraries default to so tests stay quiet; the CLIs
// install a real one on stderr.
type Logger struct {
	s *slog.Logger
}

// NewLogger builds a text-format logger writing to w.
func NewLogger(w io.Writer) *Logger {
	return &Logger{s: slog.New(slog.NewTextHandler(w, nil))}
}

// NewLoggerFunc adapts a printf-style sink (testing.T.Logf) into a
// Logger — the test harness shape.
func NewLoggerFunc(logf func(format string, args ...any)) *Logger {
	return NewLogger(writerFunc(func(p []byte) (int, error) {
		// Trim the handler's trailing newline; logf adds its own.
		if n := len(p); n > 0 && p[n-1] == '\n' {
			p = p[:n-1]
		}
		logf("%s", p)
		return len(p), nil
	}))
}

type writerFunc func(p []byte) (int, error)

func (f writerFunc) Write(p []byte) (int, error) { return f(p) }

// With returns a logger that adds the given attribute pairs to every
// record (nil-safe).
func (l *Logger) With(args ...any) *Logger {
	if l == nil {
		return nil
	}
	return &Logger{s: l.s.With(args...)}
}

// WithTrace returns a logger stamping trace_id on every record. An
// empty id (a request with tracing disabled) returns l unchanged.
func (l *Logger) WithTrace(traceID string) *Logger {
	if l == nil || traceID == "" {
		return l
	}
	return l.With("trace_id", traceID)
}

// Info logs at info level with alternating key/value args (nil-safe).
func (l *Logger) Info(msg string, args ...any) {
	if l == nil {
		return
	}
	l.s.Info(msg, args...)
}

// Warn logs at warn level (nil-safe).
func (l *Logger) Warn(msg string, args ...any) {
	if l == nil {
		return
	}
	l.s.Warn(msg, args...)
}

// Error logs at error level (nil-safe).
func (l *Logger) Error(msg string, args ...any) {
	if l == nil {
		return
	}
	l.s.Error(msg, args...)
}
