package obs

import (
	"strings"
	"testing"
	"time"
)

func TestRecorderSpans(t *testing.T) {
	r := NewRecorder()
	sp := r.Begin(PhaseFW)
	time.Sleep(time.Millisecond)
	sp.End()
	r.Begin(PhaseBPMatMul).End()
	r.Observe(PhaseAllReduce, 5*time.Millisecond)
	r.Observe(PhaseAllReduce, -time.Millisecond) // negative durations dropped

	rows := r.Breakdown()
	if len(rows) != 3 {
		t.Fatalf("breakdown rows = %d, want 3: %+v", len(rows), rows)
	}
	if rows[0].Phase != "FW" || rows[0].Count != 1 || rows[0].Total < time.Millisecond {
		t.Fatalf("FW row wrong: %+v", rows[0])
	}
	if rows[2].Phase != "all-reduce" || rows[2].Total != 5*time.Millisecond || rows[2].Count != 1 {
		t.Fatalf("all-reduce row wrong: %+v", rows[2])
	}
}

func TestNilRecorderIsFree(t *testing.T) {
	var r *Recorder
	sp := r.Begin(PhaseFW) // must not panic or read the clock
	sp.End()
	r.Observe(PhaseFW, time.Second)
	r.Add(NewRecorder())
	r.Reset()
	if r.Breakdown() != nil {
		t.Fatal("nil recorder breakdown should be nil")
	}
	if avg := testing.AllocsPerRun(100, func() {
		s := r.Begin(PhaseBPEWP2)
		s.End()
	}); avg > 0 {
		t.Fatalf("disabled span path allocates %.2f/op, want 0", avg)
	}
}

func TestEnabledRecorderZeroAlloc(t *testing.T) {
	r := NewRecorder()
	if avg := testing.AllocsPerRun(100, func() {
		s := r.Begin(PhaseBPEWP2)
		s.End()
	}); avg > 0 {
		t.Fatalf("enabled span path allocates %.2f/op, want 0", avg)
	}
}

func TestRecorderAddReset(t *testing.T) {
	a, b := NewRecorder(), NewRecorder()
	a.Observe(PhaseFW, time.Second)
	b.Observe(PhaseFW, 2*time.Second)
	b.Observe(PhaseOptimizer, time.Second)
	a.Add(b)
	rows := a.Breakdown()
	if rows[0].Total != 3*time.Second || rows[0].Count != 2 {
		t.Fatalf("merged FW row wrong: %+v", rows[0])
	}
	if rows[1].Phase != "optimizer" {
		t.Fatalf("want optimizer row, got %+v", rows[1])
	}
	a.Reset()
	if len(a.Breakdown()) != 0 {
		t.Fatal("reset recorder should be empty")
	}
}

func TestPhaseString(t *testing.T) {
	want := map[Phase]string{
		PhaseFW: "FW", PhaseBPEWP1: "BP-EW-P1", PhaseBPEWP2: "BP-EW-P2",
		PhaseBPMatMul: "BP-MatMul", PhaseAllReduce: "all-reduce", PhaseOptimizer: "optimizer",
	}
	for p, s := range want {
		if p.String() != s {
			t.Errorf("%d.String() = %q, want %q", p, p.String(), s)
		}
	}
	if !strings.Contains(Phase(99).String(), "99") {
		t.Error("unknown phase should print its number")
	}
}

func TestBreakdownTable(t *testing.T) {
	r := NewRecorder()
	r.Observe(PhaseFW, 3*time.Second)
	r.Observe(PhaseBPMatMul, time.Second)
	tbl := BreakdownTable(r.Breakdown())
	for _, want := range []string{"FW", "BP-MatMul", "75.0%", "25.0%", "total", "4s"} {
		if !strings.Contains(tbl, want) {
			t.Errorf("table missing %q:\n%s", want, tbl)
		}
	}
	if empty := BreakdownTable(nil); !strings.Contains(empty, "phase") {
		t.Errorf("empty table should still have a header:\n%s", empty)
	}
}
