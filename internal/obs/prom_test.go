package obs

import (
	"strconv"
	"strings"
	"testing"
)

// promSample is one parsed text-format sample line.
type promSample struct {
	name     string
	labels   map[string]string
	value    float64
	exemplar map[string]string // nil when the line carries none
}

// promDoc is the parsed exposition: TYPE declarations plus samples in
// document order.
type promDoc struct {
	types   map[string]string
	helps   map[string]string
	samples []promSample
}

// parsePromText is a minimal Prometheus text-format (0.0.4) reader with
// OpenMetrics exemplar suffixes — just enough syntax to round-trip what
// WritePrometheus emits, kept independent of the writer so the two can
// disagree.
func parsePromText(t *testing.T, text string) promDoc {
	t.Helper()
	doc := promDoc{types: map[string]string{}, helps: map[string]string{}}
	for ln, line := range strings.Split(text, "\n") {
		if line == "" {
			continue
		}
		if rest, ok := strings.CutPrefix(line, "# TYPE "); ok {
			f := strings.SplitN(rest, " ", 2)
			if len(f) != 2 {
				t.Fatalf("line %d: malformed TYPE: %q", ln+1, line)
			}
			doc.types[f[0]] = f[1]
			continue
		}
		if rest, ok := strings.CutPrefix(line, "# HELP "); ok {
			f := strings.SplitN(rest, " ", 2)
			if len(f) != 2 {
				t.Fatalf("line %d: malformed HELP: %q", ln+1, line)
			}
			doc.helps[f[0]] = f[1]
			continue
		}
		if strings.HasPrefix(line, "#") {
			t.Fatalf("line %d: unknown comment form: %q", ln+1, line)
		}
		s := promSample{labels: map[string]string{}}
		rest := line
		// Exemplar suffix: `<sample> # {<labelset>} <value>`.
		if body, ex, ok := strings.Cut(line, " # "); ok {
			rest = body
			open := strings.IndexByte(ex, '{')
			close := strings.LastIndexByte(ex, '}')
			if open != 0 || close < 0 {
				t.Fatalf("line %d: malformed exemplar: %q", ln+1, ex)
			}
			s.exemplar = parsePromLabels(t, ln+1, ex[open+1:close])
			if _, err := strconv.ParseFloat(strings.TrimSpace(ex[close+1:]), 64); err != nil {
				t.Fatalf("line %d: exemplar value: %v", ln+1, err)
			}
		}
		if open := strings.IndexByte(rest, '{'); open >= 0 {
			close := strings.LastIndexByte(rest, '}')
			if close < open {
				t.Fatalf("line %d: unbalanced braces: %q", ln+1, rest)
			}
			s.name = rest[:open]
			s.labels = parsePromLabels(t, ln+1, rest[open+1:close])
			rest = strings.TrimSpace(rest[close+1:])
		} else {
			f := strings.SplitN(rest, " ", 2)
			if len(f) != 2 {
				t.Fatalf("line %d: malformed sample: %q", ln+1, line)
			}
			s.name, rest = f[0], f[1]
		}
		v, err := strconv.ParseFloat(strings.TrimSpace(rest), 64)
		if err != nil {
			t.Fatalf("line %d: sample value: %v", ln+1, err)
		}
		s.value = v
		doc.samples = append(doc.samples, s)
	}
	return doc
}

// parsePromLabels decodes `k="v",k2="v2"` with text-format escapes.
func parsePromLabels(t *testing.T, ln int, s string) map[string]string {
	t.Helper()
	out := map[string]string{}
	for len(s) > 0 {
		eq := strings.Index(s, `="`)
		if eq < 0 {
			t.Fatalf("line %d: malformed labelset at %q", ln, s)
		}
		key := s[:eq]
		rest := s[eq+2:]
		var val strings.Builder
		i := 0
		for ; i < len(rest); i++ {
			if rest[i] == '\\' && i+1 < len(rest) {
				i++
				switch rest[i] {
				case 'n':
					val.WriteByte('\n')
				default:
					val.WriteByte(rest[i])
				}
				continue
			}
			if rest[i] == '"' {
				break
			}
			val.WriteByte(rest[i])
		}
		if i == len(rest) {
			t.Fatalf("line %d: unterminated label value for %q", ln, key)
		}
		out[key] = val.String()
		s = rest[i+1:]
		s = strings.TrimPrefix(s, ",")
	}
	return out
}

// TestPrometheusExportRoundTrip pins the text exposition against an
// independent reader: one instrument of every kind goes in, and the
// parsed export must reproduce every series, label, histogram bucket
// and the latency exemplar exactly.
func TestPrometheusExportRoundTrip(t *testing.T) {
	r := NewRegistry()
	r.Counter("etalstm_requests_total", "requests").Add(42)
	r.CounterL("etalstm_errors_total", "errors", "code", "429").Add(3)
	r.CounterL("etalstm_errors_total", "errors", "code", "500").Add(1)
	r.Gauge("etalstm_queue_depth", "queue depth").Set(7.5)
	r.GaugeFunc("etalstm_live", "liveness", func() float64 { return 1 })
	r.SetInfoKV("etalstm_build_info", "build identity",
		"goversion", "go1.22", "version", `v0.10.0 "tracing"`, "revision", "abc123")
	h := r.Histogram("etalstm_latency_ms", "latency", 0, 100, 4, 16)
	h.ObserveEx(10, "cafe0000000000000000000000000001") // bin 0
	h.ObserveEx(60, "cafe0000000000000000000000000002") // bin 2, slowest → exemplar
	h.ObserveEx(30, "cafe0000000000000000000000000003") // bin 1

	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	doc := parsePromText(t, sb.String())

	wantTypes := map[string]string{
		"etalstm_requests_total": "counter",
		"etalstm_errors_total":   "counter",
		"etalstm_queue_depth":    "gauge",
		"etalstm_live":           "gauge",
		"etalstm_build_info":     "gauge",
		"etalstm_latency_ms":     "histogram",
	}
	for name, kind := range wantTypes {
		if doc.types[name] != kind {
			t.Fatalf("TYPE %s = %q, want %q", name, doc.types[name], kind)
		}
		if doc.helps[name] == "" {
			t.Fatalf("no HELP line for %s", name)
		}
	}

	find := func(name string, labels map[string]string) *promSample {
		for i := range doc.samples {
			s := &doc.samples[i]
			if s.name != name {
				continue
			}
			match := len(s.labels) == len(labels)
			for k, v := range labels {
				if s.labels[k] != v {
					match = false
				}
			}
			if match {
				return s
			}
		}
		t.Fatalf("no sample %s%v in export:\n%s", name, labels, sb.String())
		return nil
	}
	if s := find("etalstm_requests_total", nil); s.value != 42 {
		t.Fatalf("requests_total = %v", s.value)
	}
	if s := find("etalstm_errors_total", map[string]string{"code": "429"}); s.value != 3 {
		t.Fatalf("errors{429} = %v", s.value)
	}
	if s := find("etalstm_errors_total", map[string]string{"code": "500"}); s.value != 1 {
		t.Fatalf("errors{500} = %v", s.value)
	}
	if s := find("etalstm_queue_depth", nil); s.value != 7.5 {
		t.Fatalf("queue_depth = %v", s.value)
	}
	if s := find("etalstm_live", nil); s.value != 1 {
		t.Fatalf("live = %v", s.value)
	}
	// The info gauge is constant 1 and its escaped label value survives.
	info := find("etalstm_build_info", map[string]string{
		"goversion": "go1.22", "version": `v0.10.0 "tracing"`, "revision": "abc123"})
	if info.value != 1 {
		t.Fatalf("build_info = %v, want constant 1", info.value)
	}

	// Histogram: buckets are cumulative and monotonic, +Inf carries the
	// total and the slowest observation's trace id as its exemplar.
	var buckets []promSample
	for _, s := range doc.samples {
		if s.name == "etalstm_latency_ms_bucket" {
			buckets = append(buckets, s)
		}
	}
	if len(buckets) != 5 { // 4 bins + +Inf, in document (le) order
		t.Fatalf("%d bucket samples, want 5", len(buckets))
	}
	prev := float64(-1)
	for _, b := range buckets {
		if b.value < prev {
			t.Fatalf("bucket counts not monotonic: %v then %v", prev, b.value)
		}
		prev = b.value
	}
	inf := buckets[len(buckets)-1]
	if inf.labels["le"] != "+Inf" || inf.value != 3 {
		t.Fatalf("+Inf bucket: %+v", inf)
	}
	if inf.exemplar["trace_id"] != "cafe0000000000000000000000000002" {
		t.Fatalf("+Inf exemplar = %v, want the slowest observation's trace id", inf.exemplar)
	}
	if s := find("etalstm_latency_ms_sum", nil); s.value != 100 {
		t.Fatalf("latency _sum = %v, want 100", s.value)
	}
	if s := find("etalstm_latency_ms_count", nil); s.value != 3 {
		t.Fatalf("latency _count = %v, want 3", s.value)
	}
}

// TestRegisterBuildInfo: the gauge lands in the export as a constant-1
// info series whose goversion label is always stamped (the toolchain is
// known even without VCS metadata).
func TestRegisterBuildInfo(t *testing.T) {
	r := NewRegistry()
	RegisterBuildInfo(r)
	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	doc := parsePromText(t, sb.String())
	for _, s := range doc.samples {
		if s.name != MetricBuildInfo {
			continue
		}
		if s.value != 1 {
			t.Fatalf("build_info = %v, want 1", s.value)
		}
		if !strings.HasPrefix(s.labels["goversion"], "go") {
			t.Fatalf("build_info goversion = %q", s.labels["goversion"])
		}
		for _, k := range []string{"version", "revision"} {
			if s.labels[k] == "" {
				t.Fatalf("build_info lacks the %s label: %v", k, s.labels)
			}
		}
		return
	}
	t.Fatalf("no %s sample in export:\n%s", MetricBuildInfo, sb.String())
}
