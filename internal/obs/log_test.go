package obs

import (
	"strings"
	"testing"
	"time"
)

// TestLoggerOutput pins the structured-log shape: slog text format,
// With-attrs on every record, trace_id stamped by WithTrace, and the
// three levels.
func TestLoggerOutput(t *testing.T) {
	var sb strings.Builder
	l := NewLogger(&sb)
	l.Info("request done", "status", 200)
	l.Warn("slow sweep", "ms", 12)
	l.Error("sweep failed", "err", "boom")
	out := sb.String()
	for _, want := range []string{
		"level=INFO", "level=WARN", "level=ERROR",
		`msg="request done"`, "status=200", "err=boom",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("log output lacks %q:\n%s", want, out)
		}
	}

	sb.Reset()
	l.With("replica", "a").WithTrace("cafe01").Info("routed")
	if out := sb.String(); !strings.Contains(out, "replica=a") || !strings.Contains(out, "trace_id=cafe01") {
		t.Fatalf("With/WithTrace attrs missing:\n%s", out)
	}

	// An empty trace id leaves the logger unchanged (no empty attr).
	sb.Reset()
	l.WithTrace("").Info("untraced")
	if out := sb.String(); strings.Contains(out, "trace_id") {
		t.Fatalf("empty trace id produced a trace_id attr:\n%s", out)
	}
}

// TestLoggerNilSafe: every method on a nil *Logger is a no-op, which
// is what library code relies on when no logger is installed.
func TestLoggerNilSafe(t *testing.T) {
	var l *Logger
	l.Info("dropped")
	l.Warn("dropped")
	l.Error("dropped")
	if l.With("k", "v") != nil {
		t.Fatal("nil.With must stay nil")
	}
	if l.WithTrace("cafe") != nil {
		t.Fatal("nil.WithTrace must stay nil")
	}
}

// TestLoggerFunc adapts a printf sink and strips the handler's
// trailing newline.
func TestLoggerFunc(t *testing.T) {
	var got []string
	l := NewLoggerFunc(func(format string, args ...any) {
		if format == "%s" && len(args) == 1 {
			got = append(got, string(args[0].([]byte)))
		}
	})
	l.Info("hello", "k", "v")
	if len(got) != 1 || !strings.Contains(got[0], `msg=hello`) {
		t.Fatalf("LoggerFunc output: %q", got)
	}
	if strings.HasSuffix(got[0], "\n") {
		t.Fatalf("trailing newline not trimmed: %q", got[0])
	}
}

// TestRecorderSnapshotDelta: two snapshots bracketing recorded work
// delta into exactly that work, nil recorders snapshot to zero, and
// Observed counts per phase.
func TestRecorderSnapshotDelta(t *testing.T) {
	var r Recorder
	sp := r.Begin(PhaseFW)
	time.Sleep(time.Millisecond)
	sp.End()
	before := r.Snapshot()

	sp = r.Begin(PhaseOptimizer)
	time.Sleep(time.Millisecond)
	sp.End()
	d := r.Snapshot().Delta(before)

	if d.N[PhaseFW] != 0 || d.Ns[PhaseFW] != 0 {
		t.Fatalf("delta leaked pre-snapshot FW work: %+v", d)
	}
	if d.N[PhaseOptimizer] != 1 || d.Ns[PhaseOptimizer] <= 0 {
		t.Fatalf("delta missed the optimizer span: %+v", d)
	}
	if r.Observed(PhaseFW) != 1 || r.Observed(PhaseOptimizer) != 1 {
		t.Fatalf("Observed: FW=%d Opt=%d", r.Observed(PhaseFW), r.Observed(PhaseOptimizer))
	}

	var nilRec *Recorder
	if s := nilRec.Snapshot(); s != (PhaseSnapshot{}) {
		t.Fatalf("nil recorder snapshot: %+v", s)
	}
	if nilRec.Observed(PhaseFW) != 0 {
		t.Fatal("nil recorder observed something")
	}
}

// TestNewDist registers the gradient-sync instruments.
func TestNewDist(t *testing.T) {
	r := NewRegistry()
	d := NewDist(r)
	d.Steps.Inc()
	d.WireBytes.Add(100)
	d.DenseBytes.Add(400)
	d.Compression.Set(4)
	snap := r.Snapshot()
	if snap[MetricDistSteps] != 1 || snap[MetricDistWireBytes] != 100 || snap[MetricDistCompression] != 4 {
		t.Fatalf("dist instruments not registered: %+v", snap)
	}
}
