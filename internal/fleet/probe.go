package fleet

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/url"
	"sort"
)

// ProbeOnce runs one health-probe round over every member and applies
// the hysteresis state machine: a failed /readyz degrades a Healthy
// replica immediately (it stays routed), EjectAfter consecutive
// failures eject it from the ring and drain its sessions to ring
// successors, RecoverAfter consecutive successes re-admit it. The
// background prober calls this every ProbeInterval; tests with
// ProbeInterval < 0 call it directly for deterministic ticks.
func (rt *Router) ProbeOnce(ctx context.Context) {
	rt.mu.Lock()
	ms := make([]*member, 0, len(rt.members))
	for _, m := range rt.members {
		ms = append(ms, m)
	}
	rt.mu.Unlock()
	sort.Slice(ms, func(i, j int) bool { return ms[i].url < ms[j].url })

	var depths []float64
	var toDrain []*member
	for _, m := range ms {
		ok, depth := rt.probe(ctx, m)
		rt.mu.Lock()
		if ok {
			m.fails = 0
			m.oks++
			m.depth.Set(depth)
			switch m.state {
			case stateDegraded:
				m.state = stateHealthy
				rt.opts.Log.Info("fleet: replica healthy again", "replica", m.url)
			case stateEjected:
				if m.oks >= rt.opts.RecoverAfter {
					m.state = stateHealthy
					before := rt.ring.Clone()
					rt.ring.Add(m.url)
					rt.lastRemap.Set(RemapFraction(before, rt.ring, 0))
					rt.rejoins.Inc()
					rt.opts.Log.Info("fleet: replica re-admitted", "replica", m.url, "consecutive_oks", m.oks)
				}
			}
			if m.state != stateEjected {
				depths = append(depths, depth)
			}
		} else {
			m.oks = 0
			m.fails++
			switch m.state {
			case stateHealthy:
				m.state = stateDegraded
				rt.opts.Log.Warn("fleet: replica degraded", "replica", m.url, "fails", m.fails, "eject_after", rt.opts.EjectAfter)
			case stateDegraded:
				if m.fails >= rt.opts.EjectAfter {
					m.state = stateEjected
					before := rt.ring.Clone()
					rt.ring.Remove(m.url)
					rt.lastRemap.Set(RemapFraction(before, rt.ring, 0))
					rt.ejections.Inc()
					toDrain = append(toDrain, m)
					rt.opts.Log.Warn("fleet: replica ejected", "replica", m.url, "fails", m.fails)
				}
			}
		}
		rt.mu.Unlock()
	}

	// Drain outside the lock: drains are HTTP calls against a replica
	// that is likely slow or half-dead.
	for _, m := range toDrain {
		rt.drain(ctx, m)
	}

	mean := 0.0
	for _, d := range depths {
		mean += d
	}
	if len(depths) > 0 {
		mean /= float64(len(depths))
	}
	rt.advice.Set(float64(rt.adv.tick(mean, len(depths))))
}

// probe checks one replica's /readyz within ProbeTimeout and, on
// success, scrapes its /metrics for the batch queue depth gauge.
func (rt *Router) probe(ctx context.Context, m *member) (bool, float64) {
	pctx, cancel := context.WithTimeout(ctx, rt.opts.ProbeTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(pctx, http.MethodGet, m.url+"/readyz", nil)
	if err != nil {
		return false, 0
	}
	resp, err := rt.client.Do(req)
	if err != nil {
		return false, 0
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return false, 0
	}

	mreq, err := http.NewRequestWithContext(pctx, http.MethodGet, m.url+"/metrics", nil)
	if err != nil {
		return true, 0
	}
	mresp, err := rt.client.Do(mreq)
	if err != nil {
		return true, 0
	}
	text, _ := io.ReadAll(io.LimitReader(mresp.Body, 1<<20))
	mresp.Body.Close()
	depth, _ := parseGauge(string(text), "etalstm_serve_queue_depth")
	return true, depth
}

// drain moves an ejected replica's sessions to their new ring owners:
// list its sessions, export each with eviction (the replica tombstones
// the id, so late requests get 410 Gone instead of a forked session),
// and import the state into the session key's new owner. A replica
// that died outright cannot be listed — its sessions are counted lost,
// and clients restart those conversations.
func (rt *Router) drain(ctx context.Context, m *member) {
	status, body, _, err := rt.forwardTimeout(ctx, m, http.MethodGet, "/v1/sessions", nil)
	if err != nil || status != http.StatusOK {
		rt.opts.Log.Error("fleet: cannot list sessions on ejected replica (sessions lost)", "replica", m.url, "err", err)
		return
	}
	var lst struct {
		Sessions []string `json:"sessions"`
	}
	if err := json.Unmarshal(body, &lst); err != nil {
		rt.opts.Log.Error("fleet: bad session list", "replica", m.url, "err", err)
		return
	}
	for _, id := range lst.Sessions {
		if rt.drainOne(ctx, m, id) {
			rt.sessionsMoved.Inc()
		} else {
			rt.sessLost.Inc()
		}
	}
	if n := len(lst.Sessions); n > 0 {
		rt.opts.Log.Info("fleet: drained sessions off ejected replica", "sessions", n, "replica", m.url)
	}
}

func (rt *Router) drainOne(ctx context.Context, m *member, id string) bool {
	path := "/v1/session/" + url.PathEscape(id) + "/state"
	status, state, _, err := rt.forwardTimeout(ctx, m, http.MethodGet, path+"?evict=1", nil)
	if err != nil || status != http.StatusOK {
		return false
	}
	rt.mu.Lock()
	dest := rt.members[rt.ring.Lookup("s:"+id)]
	rt.mu.Unlock()
	if dest == nil || dest == m {
		return false
	}
	status, _, _, err = rt.forwardTimeout(ctx, dest, http.MethodPut, path, state)
	return err == nil && status == http.StatusOK
}
