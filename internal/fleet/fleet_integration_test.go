package fleet

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"net/http/httputil"
	"net/url"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"etalstm/internal/model"
	"etalstm/internal/obs"
	"etalstm/internal/persist"
	"etalstm/internal/rng"
	"etalstm/internal/serve"
)

func realNet(t testing.TB, seed uint64) *model.Network {
	t.Helper()
	cfg := model.Config{InputSize: 4, Hidden: 8, Layers: 2, SeqLen: 8, Batch: 1, OutSize: 3, Loss: model.SingleLoss}
	net, err := model.NewNetwork(cfg, rng.New(seed))
	if err != nil {
		t.Fatal(err)
	}
	return net
}

// realReplica runs an actual serve.Server behind httptest.
func realReplica(t testing.TB, net *model.Network, opts serve.Options) (*serve.Server, *httptest.Server) {
	t.Helper()
	if opts.Window == 0 {
		opts.Window = time.Millisecond
	}
	s := serve.New(net, opts)
	hs := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		hs.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		s.Close(ctx)
	})
	return s, hs
}

// gate fronts a replica with a proxy whose /readyz can be forced to
// fail — a replica that is alive (data plane works, sessions are
// exportable) but failing health checks, the realistic eject-and-drain
// scenario.
func gate(t testing.TB, backend *httptest.Server) (*httptest.Server, *atomic.Bool) {
	t.Helper()
	u, err := url.Parse(backend.URL)
	if err != nil {
		t.Fatal(err)
	}
	proxy := httputil.NewSingleHostReverseProxy(u)
	var fail atomic.Bool
	hs := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/readyz" && fail.Load() {
			http.Error(w, "gate closed", http.StatusServiceUnavailable)
			return
		}
		proxy.ServeHTTP(w, r)
	}))
	t.Cleanup(hs.Close)
	return hs, &fail
}

// TestFleetDrainMigratesSessions is the ejection drain end to end with
// real replicas: a session's state moves to its ring successor when
// its replica is ejected, the moved session keeps answering through
// the router, and the old replica answers 410 Gone.
func TestFleetDrainMigratesSessions(t *testing.T) {
	net := realNet(t, 31)
	_, hsA := realReplica(t, net, serve.Options{MaxBatch: 4})
	_, hsB := realReplica(t, net, serve.Options{MaxBatch: 4})
	gateA, failA := gate(t, hsA)

	rt, err := New(Options{
		Replicas:      []string{gateA.URL, hsB.URL},
		ProbeInterval: -1,
		EjectAfter:    2,
		Log:           obs.NewLoggerFunc(t.Logf),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Close()
	hs := httptest.NewServer(rt.Handler())
	defer hs.Close()

	// Find a session id the ring assigns to the gated replica.
	var sid string
	for i := 0; i < 4096; i++ {
		id := fmt.Sprintf("drain-%d", i)
		if cands := rt.pick("s:"+id, true); len(cands) > 0 && cands[0].url == gateA.URL {
			sid = id
			break
		}
	}
	if sid == "" {
		t.Fatal("no session id maps to the gated replica")
	}

	infer := func(target, session string) int {
		body := `{"inputs":[[0.1,0.2,0.3,0.4]],"session":"` + session + `"}`
		resp, err := http.Post(target+"/v1/infer", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatalf("infer: %v", err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		return resp.StatusCode
	}
	for i := 0; i < 3; i++ {
		if code := infer(hs.URL, sid); code != 200 {
			t.Fatalf("seed request %d: HTTP %d", i, code)
		}
	}

	// Fail health on A; two probe rounds eject and drain it.
	failA.Store(true)
	rt.ProbeOnce(context.Background())
	rt.ProbeOnce(context.Background())

	st := rt.Status()
	if st.RingMembers != 1 {
		t.Fatalf("ring members = %d after ejection, want 1", st.RingMembers)
	}
	if got := rt.sessionsMoved.Value(); got != 1 {
		t.Fatalf("sessions moved = %d, want 1 (lost=%d)", got, rt.sessLost.Value())
	}

	// The session now lives on B…
	resp, err := http.Get(hsB.URL + "/v1/sessions")
	if err != nil {
		t.Fatal(err)
	}
	var lst struct {
		Sessions []string `json:"sessions"`
	}
	json.NewDecoder(resp.Body).Decode(&lst)
	resp.Body.Close()
	found := false
	for _, id := range lst.Sessions {
		if id == sid {
			found = true
		}
	}
	if !found {
		t.Fatalf("session %q not on successor after drain: %v", sid, lst.Sessions)
	}

	// …keeps answering through the router…
	if code := infer(hs.URL, sid); code != 200 {
		t.Fatalf("post-drain request through router: HTTP %d", code)
	}
	// …and the old replica refuses to resurrect it.
	if code := infer(gateA.URL, sid); code != http.StatusGone {
		t.Fatalf("late request on drained replica: HTTP %d, want 410", code)
	}
}

// TestFleetSwapZeroDrop is the hot-swap acceptance test: roll a new
// checkpoint across two real replicas while concurrent clients hammer
// the router — not one request may drop, and both replicas must end on
// the new generation with the expected content digest.
func TestFleetSwapZeroDrop(t *testing.T) {
	net1 := realNet(t, 41)
	net2 := realNet(t, 42)
	ckpt := filepath.Join(t.TempDir(), "next.ckpt")
	if err := persist.SaveFile(ckpt, net2); err != nil {
		t.Fatal(err)
	}
	wantDigest, err := persist.DigestFile(ckpt)
	if err != nil {
		t.Fatal(err)
	}

	sA, hsA := realReplica(t, net1, serve.Options{MaxBatch: 4, EnableAdmin: true})
	sB, hsB := realReplica(t, net1, serve.Options{MaxBatch: 4, EnableAdmin: true})
	rt, err := New(Options{
		Replicas:      []string{hsA.URL, hsB.URL},
		ProbeInterval: -1,
		Log:           obs.NewLoggerFunc(t.Logf),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Close()
	hs := httptest.NewServer(rt.Handler())
	defer hs.Close()

	// Concurrent clients: sticky sessions and stateless requests.
	var (
		wg      sync.WaitGroup
		stop    atomic.Bool
		dropped atomic.Int64
		served  atomic.Int64
	)
	client := &http.Client{}
	for c := 0; c < 4; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i := 0; !stop.Load(); i++ {
				body := fmt.Sprintf(`{"inputs":[[0.1,0.2,0.3,0.%d]]`, i%10)
				if c%2 == 0 {
					body += fmt.Sprintf(`,"session":"swap-%d"`, c)
				}
				body += "}"
				resp, err := client.Post(hs.URL+"/v1/infer", "application/json", strings.NewReader(body))
				if err != nil {
					dropped.Add(1)
					continue
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				if resp.StatusCode != 200 {
					t.Errorf("client %d request %d: HTTP %d during swap", c, i, resp.StatusCode)
					dropped.Add(1)
					continue
				}
				served.Add(1)
			}
		}(c)
	}

	// Let traffic establish, then roll the fleet under load.
	time.Sleep(50 * time.Millisecond)
	rep, err := rt.Swap(context.Background(), ckpt)
	if err != nil {
		t.Fatalf("swap: %v (report %+v)", err, rep)
	}
	time.Sleep(50 * time.Millisecond)
	stop.Store(true)
	wg.Wait()

	if dropped.Load() != 0 {
		t.Fatalf("%d requests dropped during the roll (%d served)", dropped.Load(), served.Load())
	}
	if served.Load() == 0 {
		t.Fatal("no traffic flowed during the swap — the zero-drop claim is vacuous")
	}
	if rep.Digest != wantDigest {
		t.Fatalf("swap digest %.12s, want %.12s", rep.Digest, wantDigest)
	}
	if len(rep.Rolled) != 2 {
		t.Fatalf("rolled %d replicas, want 2", len(rep.Rolled))
	}
	for _, s := range []*serve.Server{sA, sB} {
		gen, digest := s.Generation()
		if gen != 2 || digest != wantDigest {
			t.Fatalf("replica at generation %d digest %.12s, want 2/%.12s", gen, digest, wantDigest)
		}
		if st := s.Stats(); st.Failed != 0 {
			t.Fatalf("replica reports %d failed requests during swap", st.Failed)
		}
	}
	if got := rt.swapGen.Load(); got != 1 {
		t.Fatalf("fleet swap generation = %d, want 1", got)
	}
}

// TestFleetSwapBadPathAborts: a missing checkpoint must abort the roll
// before any replica changes generation.
func TestFleetSwapBadPathAborts(t *testing.T) {
	net1 := realNet(t, 51)
	sA, hsA := realReplica(t, net1, serve.Options{MaxBatch: 4, EnableAdmin: true})
	rt, err := New(Options{Replicas: []string{hsA.URL}, ProbeInterval: -1, Log: obs.NewLoggerFunc(t.Logf)})
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Close()

	if _, err := rt.Swap(context.Background(), filepath.Join(t.TempDir(), "missing.ckpt")); err == nil {
		t.Fatal("swap with missing checkpoint must fail")
	}
	if gen, _ := sA.Generation(); gen != 1 {
		t.Fatalf("generation moved to %d on failed swap, want 1", gen)
	}
	if got := rt.swapGen.Load(); got != 0 {
		t.Fatalf("fleet swap generation = %d after failed roll, want 0", got)
	}
}
