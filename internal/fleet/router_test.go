package fleet

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"etalstm/internal/obs"
)

// fakeReplica imitates an etaserve replica's HTTP surface closely
// enough to route against: /v1/model geometry, /v1/infer with an
// optional fixed service capacity, controllable /readyz, and a
// /metrics page carrying the queue-depth gauge the prober scrapes.
type fakeReplica struct {
	hs *httptest.Server

	failReady atomic.Bool
	shed      atomic.Bool  // 429 every infer with a Retry-After hint
	depth     atomic.Int64 // advertised queue depth

	mu       sync.Mutex
	requests int
	sessions map[string]int

	// sem + serviceTime model a replica with fixed capacity: capacity
	// concurrent requests, each taking serviceTime. Zero means answer
	// immediately.
	sem         chan struct{}
	serviceTime time.Duration
}

func newFakeReplica(t testing.TB, capacity int, serviceTime time.Duration) *fakeReplica {
	t.Helper()
	f := &fakeReplica{sessions: make(map[string]int), serviceTime: serviceTime}
	if capacity > 0 {
		f.sem = make(chan struct{}, capacity)
	}
	mux := http.NewServeMux()
	mux.HandleFunc("GET /v1/model", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		fmt.Fprint(w, `{"input_size":4,"hidden_size":8,"layers":2,"out_size":3,"loss":"single","max_seq_len":8,"max_batch":32}`)
	})
	mux.HandleFunc("POST /v1/infer", func(w http.ResponseWriter, r *http.Request) {
		if f.shed.Load() {
			w.Header().Set("Retry-After", "3")
			http.Error(w, "shedding", http.StatusTooManyRequests)
			return
		}
		body, _ := io.ReadAll(r.Body)
		var req struct {
			Session string `json:"session"`
		}
		json.Unmarshal(body, &req)
		if f.sem != nil {
			f.sem <- struct{}{}
			time.Sleep(f.serviceTime)
			<-f.sem
		}
		f.mu.Lock()
		f.requests++
		if req.Session != "" {
			f.sessions[req.Session]++
		}
		f.mu.Unlock()
		w.Header().Set("Content-Type", "application/json")
		fmt.Fprint(w, `{"output":[0.1,0.2,0.3]}`)
	})
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprint(w, `{"status":"ok"}`)
	})
	mux.HandleFunc("GET /readyz", func(w http.ResponseWriter, r *http.Request) {
		if f.failReady.Load() {
			http.Error(w, "not ready", http.StatusServiceUnavailable)
			return
		}
		fmt.Fprint(w, `{"status":"ready"}`)
	})
	mux.HandleFunc("GET /metrics", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprintf(w, "etalstm_serve_queue_depth %d\n", f.depth.Load())
	})
	mux.HandleFunc("GET /v1/sessions", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprint(w, `{"sessions":[]}`)
	})
	mux.HandleFunc("POST /v1/admin/reload", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		fmt.Fprint(w, `{"generation":2,"digest":"0a0b0c0d0e0f"}`)
	})
	f.hs = httptest.NewServer(mux)
	t.Cleanup(f.hs.Close)
	return f
}

func (f *fakeReplica) count() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.requests
}

func (f *fakeReplica) sessionCount(id string) int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.sessions[id]
}

// testRouter builds a router with the background prober disabled so
// tests drive membership deterministically through ProbeOnce.
func testRouter(t testing.TB, opts Options, replicas ...*fakeReplica) *Router {
	t.Helper()
	for _, f := range replicas {
		opts.Replicas = append(opts.Replicas, f.hs.URL)
	}
	opts.ProbeInterval = -1
	if opts.Log == nil {
		opts.Log = obs.NewLoggerFunc(t.Logf)
	}
	rt, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(rt.Close)
	return rt
}

func postInferJSON(t testing.TB, client *http.Client, target string, session string, k int) int {
	t.Helper()
	body := fmt.Sprintf(`{"inputs":[[0.1,0.2,0.3,%d.5]]`, k%7)
	if session != "" {
		body += fmt.Sprintf(`,"session":%q`, session)
	}
	body += "}"
	resp, err := client.Post(target+"/v1/infer", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatalf("infer: %v", err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	return resp.StatusCode
}

func TestRouterRequiresReplicas(t *testing.T) {
	if _, err := New(Options{}); err == nil {
		t.Fatal("New with no replicas must fail")
	}
}

// TestRouterStickyRouting: every request of one session lands on one
// replica, and many sessions spread over all replicas.
func TestRouterStickyRouting(t *testing.T) {
	fakes := []*fakeReplica{newFakeReplica(t, 0, 0), newFakeReplica(t, 0, 0), newFakeReplica(t, 0, 0)}
	rt := testRouter(t, Options{}, fakes...)
	hs := httptest.NewServer(rt.Handler())
	defer hs.Close()

	for i := 0; i < 12; i++ {
		if code := postInferJSON(t, hs.Client(), hs.URL, "pinned", i); code != 200 {
			t.Fatalf("request %d: HTTP %d", i, code)
		}
	}
	owners := 0
	for _, f := range fakes {
		if n := f.sessionCount("pinned"); n > 0 {
			owners++
			if n != 12 {
				t.Fatalf("owner got %d/12 requests for the pinned session", n)
			}
		}
	}
	if owners != 1 {
		t.Fatalf("session landed on %d replicas, want exactly 1", owners)
	}

	for i := 0; i < 96; i++ {
		postInferJSON(t, hs.Client(), hs.URL, fmt.Sprintf("spread-%d", i), i)
	}
	for i, f := range fakes {
		if f.count() == 0 {
			t.Fatalf("replica %d got no traffic across 96 sessions", i)
		}
	}
}

// TestRouterStatelessSpread: session-less requests spread over the
// fleet by body digest with a load tiebreak.
func TestRouterStatelessSpread(t *testing.T) {
	fakes := []*fakeReplica{newFakeReplica(t, 0, 0), newFakeReplica(t, 0, 0), newFakeReplica(t, 0, 0)}
	rt := testRouter(t, Options{}, fakes...)
	hs := httptest.NewServer(rt.Handler())
	defer hs.Close()

	for i := 0; i < 90; i++ {
		if code := postInferJSON(t, hs.Client(), hs.URL, "", i); code != 200 {
			t.Fatalf("request %d: HTTP %d", i, code)
		}
	}
	for i, f := range fakes {
		if f.count() < 10 {
			t.Fatalf("replica %d got %d/90 stateless requests — not spread", i, f.count())
		}
	}
}

// TestRouterFailover: a replica dying mid-traffic (no probe round has
// noticed yet) must not surface errors — requests fail over to ring
// successors.
func TestRouterFailover(t *testing.T) {
	fakes := []*fakeReplica{newFakeReplica(t, 0, 0), newFakeReplica(t, 0, 0), newFakeReplica(t, 0, 0)}
	rt := testRouter(t, Options{}, fakes...)
	hs := httptest.NewServer(rt.Handler())
	defer hs.Close()

	fakes[1].hs.Close() // dies without warning
	for i := 0; i < 48; i++ {
		if code := postInferJSON(t, hs.Client(), hs.URL, fmt.Sprintf("s-%d", i), i); code != 200 {
			t.Fatalf("request %d after replica death: HTTP %d", i, code)
		}
	}
	if rt.retries.Value() == 0 {
		t.Fatal("no failovers recorded though a replica is dead")
	}
	if rt.errs.Value() != 0 {
		t.Fatalf("%d requests failed every candidate; failover should have saved them", rt.errs.Value())
	}
}

// TestProberHysteresis drives the state machine tick by tick:
// 1 failure degrades (still routed), EjectAfter=3 ejects and shrinks
// the ring within the remap bound, RecoverAfter=2 successes re-admit.
func TestProberHysteresis(t *testing.T) {
	fakes := []*fakeReplica{newFakeReplica(t, 0, 0), newFakeReplica(t, 0, 0), newFakeReplica(t, 0, 0)}
	rt := testRouter(t, Options{EjectAfter: 3, RecoverAfter: 2}, fakes...)
	ctx := context.Background()

	stateOf := func(url string) string {
		for _, r := range rt.Status().Replicas {
			if r.URL == url {
				return r.State
			}
		}
		return "missing"
	}
	victim := fakes[1]

	rt.ProbeOnce(ctx)
	if got := stateOf(victim.hs.URL); got != "healthy" {
		t.Fatalf("initial probe: %s, want healthy", got)
	}

	victim.failReady.Store(true)
	rt.ProbeOnce(ctx)
	if got := stateOf(victim.hs.URL); got != "degraded" {
		t.Fatalf("after 1 failure: %s, want degraded", got)
	}
	if rt.Status().RingMembers != 3 {
		t.Fatal("degraded replica must stay in the ring")
	}

	rt.ProbeOnce(ctx)
	if got := stateOf(victim.hs.URL); got != "degraded" {
		t.Fatalf("after 2 failures: %s, want degraded (EjectAfter=3)", got)
	}

	rt.ProbeOnce(ctx)
	if got := stateOf(victim.hs.URL); got != "ejected" {
		t.Fatalf("after 3 failures: %s, want ejected", got)
	}
	if n := rt.Status().RingMembers; n != 2 {
		t.Fatalf("ring has %d members after ejection, want 2", n)
	}
	if got := rt.ejections.Value(); got != 1 {
		t.Fatalf("ejections counter = %d, want 1", got)
	}
	if frac := rt.lastRemap.Value(); frac <= 0 || frac > 1.5/3.0 {
		t.Fatalf("ejection remapped %.4f of keys, want in (0, 0.5]", frac)
	}

	// A flap — one good probe — must NOT re-admit (RecoverAfter=2).
	victim.failReady.Store(false)
	rt.ProbeOnce(ctx)
	if got := stateOf(victim.hs.URL); got != "ejected" {
		t.Fatalf("after 1 success: %s, want still ejected", got)
	}
	rt.ProbeOnce(ctx)
	if got := stateOf(victim.hs.URL); got != "healthy" {
		t.Fatalf("after 2 successes: %s, want healthy", got)
	}
	if n := rt.Status().RingMembers; n != 3 {
		t.Fatalf("ring has %d members after rejoin, want 3", n)
	}
	if got := rt.rejoins.Value(); got != 1 {
		t.Fatalf("rejoins counter = %d, want 1", got)
	}

	// Degraded -> healthy on a single success (no ejection happened).
	victim.failReady.Store(true)
	rt.ProbeOnce(ctx)
	victim.failReady.Store(false)
	rt.ProbeOnce(ctx)
	if got := stateOf(victim.hs.URL); got != "healthy" {
		t.Fatalf("degraded replica after 1 success: %s, want healthy", got)
	}
}

// TestRouterEndpoints smoke-tests the router's own HTTP surface.
func TestRouterEndpoints(t *testing.T) {
	fakes := []*fakeReplica{newFakeReplica(t, 0, 0), newFakeReplica(t, 0, 0)}
	fakes[0].depth.Store(7)
	rt := testRouter(t, Options{}, fakes...)
	hs := httptest.NewServer(rt.Handler())
	defer hs.Close()

	for _, path := range []string{"/healthz", "/readyz", "/fleet", "/statz", "/v1/model"} {
		resp, err := http.Get(hs.URL + path)
		if err != nil {
			t.Fatalf("%s: %v", path, err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != 200 {
			t.Fatalf("%s: HTTP %d", path, resp.StatusCode)
		}
	}

	postInferJSON(t, hs.Client(), hs.URL, "m", 1)
	rt.ProbeOnce(context.Background()) // scrape queue depths
	resp, err := http.Get(hs.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	text, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	for _, want := range []string{
		metricRequests, metricReplicas, metricSwapGen, metricScaleAdvice,
		metricReplicaReqs, metricReplicaQueueDepth, `replica="`,
	} {
		if !strings.Contains(string(text), want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
	if v, ok := parseGauge(string(text), metricReplicas); !ok || v != 2 {
		t.Fatalf("replicas gauge = %v/%v, want 2", v, ok)
	}

	var st FleetStatus
	resp, err = http.Get(hs.URL + "/fleet")
	if err != nil {
		t.Fatal(err)
	}
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(st.Replicas) != 2 || st.RingMembers != 2 {
		t.Fatalf("fleet status: %+v", st)
	}
	found := false
	for _, r := range st.Replicas {
		if r.URL == fakes[0].hs.URL && r.QueueDepth == 7 {
			found = true
		}
	}
	if !found {
		t.Fatalf("scraped queue depth not in /fleet: %+v", st.Replicas)
	}

	// Malformed bodies are the router's 400, not a replica's.
	resp, err = http.Post(hs.URL+"/v1/infer", "application/json", bytes.NewReader([]byte("{nope")))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("malformed body: HTTP %d, want 400", resp.StatusCode)
	}
}

// TestRouterReadyzEmpty: with every replica ejected the router itself
// reports not ready.
func TestRouterReadyzEmpty(t *testing.T) {
	f := newFakeReplica(t, 0, 0)
	rt := testRouter(t, Options{EjectAfter: 1}, f)
	hs := httptest.NewServer(rt.Handler())
	defer hs.Close()

	f.failReady.Store(true)
	rt.ProbeOnce(context.Background()) // degrade
	rt.ProbeOnce(context.Background()) // eject (EjectAfter=1 means first degraded failure ejects)
	resp, err := http.Get(hs.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("readyz with empty fleet: HTTP %d, want 503", resp.StatusCode)
	}
	if code := postInferJSON(t, hs.Client(), hs.URL, "x", 0); code != http.StatusServiceUnavailable {
		t.Fatalf("infer with empty fleet: HTTP %d, want 503", code)
	}
}

// TestRouterBackgroundProber: with a positive ProbeInterval the
// prober runs on its own and scrapes queue depths without any
// ProbeOnce call; Close stops it cleanly.
func TestRouterBackgroundProber(t *testing.T) {
	f := newFakeReplica(t, 0, 0)
	f.depth.Store(5)
	rt, err := New(Options{
		Replicas:      []string{f.hs.URL},
		ProbeInterval: 5 * time.Millisecond,
		Log:           obs.NewLoggerFunc(t.Logf),
	})
	if err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		if st := rt.Status(); len(st.Replicas) == 1 && st.Replicas[0].QueueDepth == 5 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("background prober never scraped the queue depth: %+v", rt.Status())
		}
		time.Sleep(2 * time.Millisecond)
	}
	rt.Close()
	rt.Close() // idempotent
}

// TestRouterSwapEndpoint drives POST /admin/swap over HTTP; the fakes
// answer the reload with a consistent digest, so the roll succeeds and
// bumps the fleet generation.
func TestRouterSwapEndpoint(t *testing.T) {
	fakes := []*fakeReplica{newFakeReplica(t, 0, 0), newFakeReplica(t, 0, 0)}
	rt := testRouter(t, Options{}, fakes...)
	hs := httptest.NewServer(rt.Handler())
	defer hs.Close()

	resp, err := http.Post(hs.URL+"/admin/swap", "application/json",
		strings.NewReader(`{"path":"/nonexistent/but/replicas/fake/it.ckpt"}`))
	if err != nil {
		t.Fatal(err)
	}
	var rep SwapReport
	if err := json.NewDecoder(resp.Body).Decode(&rep); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("swap: HTTP %d (%+v)", resp.StatusCode, rep)
	}
	if len(rep.Rolled) != 2 || rep.Digest != "0a0b0c0d0e0f" {
		t.Fatalf("swap report: %+v", rep)
	}
	if got := rt.swapGen.Load(); got != 1 {
		t.Fatalf("swap generation = %d, want 1", got)
	}

	resp, err = http.Post(hs.URL+"/admin/swap", "application/json", strings.NewReader(`{}`))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("swap without path: HTTP %d, want 400", resp.StatusCode)
	}
}

// TestRouterAllReplicasDead: with every replica unreachable (but none
// probed out yet) the router answers 502 and counts the exhaustion.
func TestRouterAllReplicasDead(t *testing.T) {
	fakes := []*fakeReplica{newFakeReplica(t, 0, 0), newFakeReplica(t, 0, 0)}
	rt := testRouter(t, Options{}, fakes...)
	hs := httptest.NewServer(rt.Handler())
	defer hs.Close()
	for _, f := range fakes {
		f.hs.Close()
	}
	if code := postInferJSON(t, hs.Client(), hs.URL, "s", 0); code != http.StatusBadGateway {
		t.Fatalf("all dead: HTTP %d, want 502", code)
	}
	if rt.errs.Value() != 1 {
		t.Fatalf("errors counter = %d, want 1", rt.errs.Value())
	}
	resp, err := http.Get(hs.URL + "/v1/model")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("model with all dead: HTTP %d, want 503", resp.StatusCode)
	}
}

func TestRingString(t *testing.T) {
	r := NewRing(4)
	r.Add("a")
	if got := r.String(); !strings.Contains(got, "members=1") || !strings.Contains(got, "points=4") {
		t.Fatalf("String = %q", got)
	}
}

// TestAdvisor drives the advice hysteresis table-style.
func TestAdvisor(t *testing.T) {
	cases := []struct {
		name     string
		depths   []float64
		replicas int
		want     []int
	}{
		{"calm holds", []float64{5, 5, 5, 5}, 4, []int{0, 0, 0, 0}},
		{"sustained overload advises up", []float64{20, 20, 20}, 4, []int{0, 0, 1}},
		{"burst does not flap", []float64{20, 20, 5, 20, 20}, 4, []int{0, 0, 0, 0, 0}},
		{"sustained idle advises down", []float64{0, 0, 0}, 4, []int{0, 0, -1}},
		{"never below one replica", []float64{0, 0, 0, 0}, 1, []int{0, 0, 0, 0}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			a := &advisor{up: 16, down: 1, need: 3}
			for i, d := range tc.depths {
				if got := a.tick(d, tc.replicas); got != tc.want[i] {
					t.Fatalf("tick %d (depth %.0f): advice %d, want %d", i, d, got, tc.want[i])
				}
			}
		})
	}
}
