package fleet

import (
	"sync"
	"sync/atomic"

	"etalstm/internal/obs"
	"etalstm/internal/stats"
)

// memberState is the hysteresis state machine of one replica:
//
//	Healthy --1 readyz failure--> Degraded (still routed)
//	Degraded --EjectAfter consecutive failures--> Ejected
//	    (removed from ring, sessions drained to successors)
//	Ejected --RecoverAfter consecutive successes--> Healthy
//	    (re-added to ring; ~1/N of keys remap back)
//	Degraded --1 success--> Healthy
//
// The two thresholds are deliberately asymmetric knobs: ejection needs
// enough consecutive failures that one slow probe cannot evict a
// replica carrying sessions, and recovery needs enough consecutive
// successes that a flapping replica cannot churn the ring.
type memberState int

const (
	stateHealthy memberState = iota
	stateDegraded
	stateEjected
)

func (s memberState) String() string {
	switch s {
	case stateHealthy:
		return "healthy"
	case stateDegraded:
		return "degraded"
	case stateEjected:
		return "ejected"
	}
	return "unknown"
}

// latWindow bounds the per-replica forwarding-latency sample the
// p50/p99 gauges are computed over.
const latWindow = 512

// latRing is a bounded ring of recent latencies (ms).
type latRing struct {
	mu   sync.Mutex
	buf  []float64
	next int
	full bool
}

func (l *latRing) observe(ms float64) {
	l.mu.Lock()
	if l.buf == nil {
		l.buf = make([]float64, latWindow)
	}
	l.buf[l.next] = ms
	l.next = (l.next + 1) % len(l.buf)
	if l.next == 0 {
		l.full = true
	}
	l.mu.Unlock()
}

// quantiles returns (p50, p99) over the retained window, zeros when
// empty.
func (l *latRing) quantiles() (float64, float64) {
	l.mu.Lock()
	n := l.next
	if l.full {
		n = len(l.buf)
	}
	sample := append([]float64(nil), l.buf[:n]...)
	l.mu.Unlock()
	if len(sample) == 0 {
		return 0, 0
	}
	qs := stats.Quantiles(sample, 0.5, 0.99)
	return qs[0], qs[1]
}

// member is one replica as the router sees it. The mutable fields
// (state, streak counters) are guarded by the router's mutex; the
// instruments and inflight are concurrency-safe on their own.
type member struct {
	url string

	state memberState
	// fails / oks count consecutive probe outcomes; each probe outcome
	// resets the opposite counter, which is what makes the thresholds
	// "consecutive" rather than cumulative.
	fails, oks int
	// inflight counts requests currently forwarded to this replica —
	// the power-of-two-choices signal for stateless routing. Atomic so
	// the forwarding hot path never takes the router mutex.
	inflight atomic.Int64

	reqs  *obs.Counter // forwarded requests
	errs  *obs.Counter // forwarding failures (transport error or 5xx)
	lats  *latRing
	depth *obs.Gauge // queue depth scraped from the replica's /metrics
}

func newMember(url string, reg *obs.Registry) *member {
	m := &member{
		url:   url,
		reqs:  reg.CounterL(metricReplicaReqs, "requests forwarded per replica", "replica", url),
		errs:  reg.CounterL(metricReplicaErrs, "forwarding failures per replica", "replica", url),
		lats:  &latRing{},
		depth: reg.GaugeL(metricReplicaQueueDepth, "queue depth scraped from the replica", "replica", url),
	}
	reg.GaugeFuncL(metricReplicaP50, "forwarding latency p50 per replica (ms)", "replica", url,
		func() float64 { p50, _ := m.lats.quantiles(); return p50 })
	reg.GaugeFuncL(metricReplicaP99, "forwarding latency p99 per replica (ms)", "replica", url,
		func() float64 { _, p99 := m.lats.quantiles(); return p99 })
	return m
}

// MemberStatus is one replica's row in the /fleet report.
type MemberStatus struct {
	URL        string  `json:"url"`
	State      string  `json:"state"`
	Fails      int     `json:"consecutive_fails"`
	Oks        int     `json:"consecutive_oks"`
	Inflight   int     `json:"inflight"`
	Requests   int64   `json:"requests"`
	Errors     int64   `json:"errors"`
	P50Ms      float64 `json:"p50_ms"`
	P99Ms      float64 `json:"p99_ms"`
	QueueDepth float64 `json:"queue_depth"`
}
