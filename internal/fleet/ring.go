// Package fleet is the horizontal serving tier: an HTTP router that
// spreads inference traffic over N etaserve replicas. Session ids map
// onto replicas through a consistent-hash ring with virtual nodes (so
// membership churn remaps only ~1/N of the session key space),
// stateless requests spread by body digest with a
// power-of-two-choices tiebreak, a prober ejects unhealthy replicas
// with hysteresis and drains their sessions to ring successors, and a
// rolling checkpoint hot-swap rolls the fleet one replica at a time
// with zero dropped requests. See DESIGN.md §14.
package fleet

import (
	"fmt"
	"sort"
	"strconv"
)

// defaultVNodes is the virtual-node count per member: enough that the
// largest member owns within a few percent of the mean arc share
// (relative spread ~1/sqrt(vnodes)), cheap enough that rebuilding on
// membership change is trivial.
const defaultVNodes = 128

// fnv1a64 is FNV-1a over s — stdlib hash/fnv allocates a hash.Hash per
// use; routing hashes on every request, so the 4-line loop is inlined
// here instead. Raw FNV-1a has weak avalanche on short near-identical
// strings (vnode keys differ only in a trailing counter), which skews
// ring arcs badly, so the result goes through a 64-bit finalizer
// (splitmix64's mixer) before use.
func fnv1a64(s string) uint64 {
	const (
		offset = 14695981039346656037
		prime  = 1099511628211
	)
	h := uint64(offset)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= prime
	}
	h ^= h >> 33
	h *= 0xff51afd7ed558ccd
	h ^= h >> 33
	h *= 0xc4ceb9fe1a85ec53
	h ^= h >> 33
	return h
}

// point is one virtual node: a position on the 64-bit ring owned by a
// member.
type point struct {
	hash   uint64
	member string
}

// Ring is a consistent-hash ring with virtual nodes. It is a value
// the router swaps atomically under its mutex; the ring itself is not
// concurrency-safe. Keys map to the owning member of the first vnode
// clockwise from the key's hash, so removing a member reassigns only
// the arcs that member owned (~1/N of the key space) and adding one
// claims only the arcs it now owns — every other key keeps its
// replica, which is what keeps session stickiness cheap under churn.
type Ring struct {
	vnodes int
	points []point // sorted by hash
	names  map[string]bool
}

// NewRing builds an empty ring with the given virtual-node count per
// member (0 = 128).
func NewRing(vnodes int) *Ring {
	if vnodes <= 0 {
		vnodes = defaultVNodes
	}
	return &Ring{vnodes: vnodes, names: make(map[string]bool)}
}

// Add inserts a member's virtual nodes; adding a present member is a
// no-op.
func (r *Ring) Add(member string) {
	if r.names[member] {
		return
	}
	r.names[member] = true
	for i := 0; i < r.vnodes; i++ {
		h := fnv1a64(member + "#" + strconv.Itoa(i))
		r.points = append(r.points, point{hash: h, member: member})
	}
	sort.Slice(r.points, func(i, j int) bool { return r.points[i].hash < r.points[j].hash })
}

// Remove deletes a member's virtual nodes; removing an absent member
// is a no-op.
func (r *Ring) Remove(member string) {
	if !r.names[member] {
		return
	}
	delete(r.names, member)
	kept := r.points[:0]
	for _, p := range r.points {
		if p.member != member {
			kept = append(kept, p)
		}
	}
	r.points = kept
}

// Size returns the member count.
func (r *Ring) Size() int { return len(r.names) }

// Members returns the member names, sorted.
func (r *Ring) Members() []string {
	ms := make([]string, 0, len(r.names))
	for m := range r.names {
		ms = append(ms, m)
	}
	sort.Strings(ms)
	return ms
}

// Has reports membership.
func (r *Ring) Has(member string) bool { return r.names[member] }

// Lookup returns the member owning key ("" on an empty ring).
func (r *Ring) Lookup(key string) string {
	if len(r.points) == 0 {
		return ""
	}
	return r.points[r.search(key)].member
}

// LookupN returns up to n distinct members in clockwise order from
// key's position: the owner first, then its successors — the failover
// and session-drain order.
func (r *Ring) LookupN(key string, n int) []string {
	if len(r.points) == 0 || n <= 0 {
		return nil
	}
	if n > len(r.names) {
		n = len(r.names)
	}
	out := make([]string, 0, n)
	seen := make(map[string]bool, n)
	for i, start := 0, r.search(key); len(out) < n && i < len(r.points); i++ {
		m := r.points[(start+i)%len(r.points)].member
		if !seen[m] {
			seen[m] = true
			out = append(out, m)
		}
	}
	return out
}

// search finds the index of the first vnode at or clockwise of key's
// hash.
func (r *Ring) search(key string) int {
	h := fnv1a64(key)
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if i == len(r.points) {
		i = 0
	}
	return i
}

// Clone returns an independent copy — how the router rebuilds
// membership without mutating the ring a concurrent Lookup may hold.
func (r *Ring) Clone() *Ring {
	c := &Ring{vnodes: r.vnodes,
		points: append([]point(nil), r.points...),
		names:  make(map[string]bool, len(r.names))}
	for m := range r.names {
		c.names[m] = true
	}
	return c
}

// RemapFraction measures the share of a synthetic key space whose
// owner differs between two rings — the consistency property the
// bounded remap acceptance test pins (ejecting one of N members must
// move ≤ 1.5/N of keys).
func RemapFraction(before, after *Ring, probes int) float64 {
	if probes <= 0 {
		probes = 4096
	}
	moved := 0
	for i := 0; i < probes; i++ {
		k := "probe-" + strconv.Itoa(i)
		if before.Lookup(k) != after.Lookup(k) {
			moved++
		}
	}
	return float64(moved) / float64(probes)
}

// String summarizes the ring for /fleet output.
func (r *Ring) String() string {
	return fmt.Sprintf("ring{members=%d vnodes=%d points=%d}", len(r.names), r.vnodes, len(r.points))
}
