package fleet

import (
	"bytes"
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"etalstm/internal/obs"
	"etalstm/internal/rtrace"
)

// maxBodyBytes bounds proxied request bodies, matching serve's limit.
const maxBodyBytes = 8 << 20

// Options tunes a Router; zero values select production-sensible
// defaults.
type Options struct {
	// Replicas are the etaserve base URLs the router starts with.
	Replicas []string
	// VNodes is the virtual-node count per replica (0 = 128).
	VNodes int
	// ProbeInterval is the health-probe period (0 = 1s). Negative
	// disables the background prober entirely — tests drive the state
	// machine deterministically through ProbeOnce.
	ProbeInterval time.Duration
	// ProbeTimeout bounds one /readyz probe (0 = 500ms).
	ProbeTimeout time.Duration
	// EjectAfter is how many consecutive probe failures eject a replica
	// from the ring (0 = 3).
	EjectAfter int
	// RecoverAfter is how many consecutive probe successes re-admit an
	// ejected replica (0 = 2).
	RecoverAfter int
	// RequestTimeout bounds one forwarded request (0 = 10s).
	RequestTimeout time.Duration
	// ScaleUpDepth / ScaleDownDepth / AdvisorTicks tune the advice-only
	// autoscale advisor: mean scraped queue depth above ScaleUpDepth
	// (0 = 16) for AdvisorTicks (0 = 3) consecutive probe rounds advises
	// +1, below ScaleDownDepth (0 = 1) with more than one replica
	// advises -1.
	ScaleUpDepth   float64
	ScaleDownDepth float64
	AdvisorTicks   int
	// Log receives membership and swap events as structured records
	// (nil = text log on stderr, preserving the old log.Printf behavior;
	// tests pass obs.NewLoggerFunc(t.Logf)).
	Log *obs.Logger
	// Tracer, when non-nil, traces routed requests (routing choice,
	// failover hops, shed decisions) into its flight recorder, forwards
	// trace context to replicas via the traceparent header, and mounts
	// GET /debug/traces (+ /debug/traces/{id}, which fans out to the
	// replicas and merges their spans into one cross-process tree).
	Tracer *rtrace.Tracer
}

func (o Options) withDefaults() Options {
	if o.ProbeInterval == 0 {
		o.ProbeInterval = time.Second
	}
	if o.ProbeTimeout <= 0 {
		o.ProbeTimeout = 500 * time.Millisecond
	}
	if o.EjectAfter <= 0 {
		o.EjectAfter = 3
	}
	if o.RecoverAfter <= 0 {
		o.RecoverAfter = 2
	}
	if o.RequestTimeout <= 0 {
		o.RequestTimeout = 10 * time.Second
	}
	if o.ScaleUpDepth <= 0 {
		o.ScaleUpDepth = 16
	}
	if o.ScaleDownDepth <= 0 {
		o.ScaleDownDepth = 1
	}
	if o.AdvisorTicks <= 0 {
		o.AdvisorTicks = 3
	}
	if o.Log == nil {
		o.Log = obs.NewLogger(os.Stderr)
	}
	return o
}

// Router fans inference traffic out over a fleet of etaserve replicas:
// session-sticky consistent hashing, digest-spread stateless requests,
// health-gated membership and rolling checkpoint swaps.
type Router struct {
	opts   Options
	reg    *obs.Registry
	client *http.Client
	mux    *http.ServeMux

	// mu guards ring and the members map (the map only grows; member
	// state fields are also guarded by mu).
	mu      sync.Mutex
	ring    *Ring
	members map[string]*member

	reqs, errs, retries     *obs.Counter
	ejections, rejoins      *obs.Counter
	sessionsMoved, sessLost *obs.Counter
	lastRemap, advice       *obs.Gauge
	swapGen                 atomic.Int64
	adv                     *advisor

	// swapMu serializes fleet-wide checkpoint rolls.
	swapMu    sync.Mutex
	stopProbe chan struct{}
	probeDone chan struct{}
	closeOnce sync.Once
}

// New builds a router over the given replicas. All replicas start
// Healthy and in the ring; the first probe round corrects optimism.
func New(opts Options) (*Router, error) {
	opts = opts.withDefaults()
	if len(opts.Replicas) == 0 {
		return nil, errors.New("fleet: no replicas configured")
	}
	rt := &Router{
		opts:      opts,
		reg:       obs.NewRegistry(),
		client:    &http.Client{},
		ring:      NewRing(opts.VNodes),
		members:   make(map[string]*member),
		stopProbe: make(chan struct{}),
		probeDone: make(chan struct{}),
		adv: &advisor{
			up:   opts.ScaleUpDepth,
			down: opts.ScaleDownDepth,
			need: opts.AdvisorTicks,
		},
	}
	rt.reqs = rt.reg.Counter(metricRequests, "requests accepted by the router")
	rt.errs = rt.reg.Counter(metricErrors, "requests that failed on every candidate replica")
	rt.retries = rt.reg.Counter(metricRetries, "failovers to a successor replica")
	rt.ejections = rt.reg.Counter(metricEjections, "replicas ejected from the ring")
	rt.rejoins = rt.reg.Counter(metricRejoins, "ejected replicas re-admitted")
	rt.sessionsMoved = rt.reg.Counter(metricSessionsMoved, "sessions drained to a successor replica")
	rt.sessLost = rt.reg.Counter(metricSessionsLost, "sessions lost because their replica died undrained")
	rt.lastRemap = rt.reg.Gauge(metricLastRemap, "key-space fraction remapped by the last membership change")
	rt.advice = rt.reg.Gauge(metricScaleAdvice, "autoscale advice: +1 add a replica, -1 remove one, 0 hold")
	rt.reg.GaugeFunc(metricReplicas, "replicas currently in the ring",
		func() float64 { rt.mu.Lock(); defer rt.mu.Unlock(); return float64(rt.ring.Size()) })
	rt.reg.GaugeFunc(metricSwapGen, "completed fleet checkpoint swaps",
		func() float64 { return float64(rt.swapGen.Load()) })
	obs.RegisterBuildInfo(rt.reg)

	for _, url := range opts.Replicas {
		url = strings.TrimRight(url, "/")
		if rt.members[url] != nil {
			continue
		}
		rt.members[url] = newMember(url, rt.reg)
		rt.ring.Add(url)
	}
	rt.mux = rt.routes()
	if opts.ProbeInterval > 0 {
		go rt.probeLoop()
	} else {
		close(rt.probeDone)
	}
	return rt, nil
}

// Close stops the background prober. Idempotent.
func (rt *Router) Close() {
	rt.closeOnce.Do(func() {
		close(rt.stopProbe)
		<-rt.probeDone
	})
}

func (rt *Router) probeLoop() {
	defer close(rt.probeDone)
	t := time.NewTicker(rt.opts.ProbeInterval)
	defer t.Stop()
	for {
		select {
		case <-t.C:
			rt.ProbeOnce(context.Background())
		case <-rt.stopProbe:
			return
		}
	}
}

func (rt *Router) routes() *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/infer", rt.handleInfer)
	mux.HandleFunc("GET /v1/model", rt.handleModel)
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
	})
	mux.HandleFunc("GET /readyz", rt.handleReadyz)
	mux.HandleFunc("GET /fleet", rt.handleFleet)
	mux.HandleFunc("GET /statz", rt.handleFleet)
	mux.HandleFunc("GET /metrics", rt.handleMetrics)
	mux.HandleFunc("POST /admin/swap", rt.handleSwap)
	if rt.opts.Tracer != nil {
		mux.Handle("GET /debug/traces", rt.opts.Tracer.Handler())
		mux.HandleFunc("GET /debug/traces/{id}", rt.handleTraceByID)
	}
	return mux
}

// Handler returns the router's HTTP handler with per-request panic
// isolation.
func (rt *Router) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		defer func() {
			if rec := recover(); rec != nil {
				httpError(w, http.StatusInternalServerError, fmt.Sprintf("internal error: %v", rec))
			}
		}()
		rt.mux.ServeHTTP(w, r)
	})
}

// sessionProbe is the one field the router reads out of an infer body.
type sessionProbe struct {
	Session string `json:"session"`
}

// handleInfer is the routing core. Session requests stick to the
// ring owner of "s:<id>"; stateless requests hash their body digest
// and take the less-loaded of the key's two ring candidates (power of
// two choices — digest affinity is a preference, balance is a
// guarantee). Transport errors, 5xx and 503 fail over to ring
// successors; 410 Gone means the session moved, and the successor
// (where the drain put it) is exactly the next candidate. A 429 shed
// fails over too — but only for stateless requests: a sticky session's
// state lives on its ring owner, so shedding there must surface to the
// client (with the replica's Retry-After intact) rather than fork the
// session on a successor.
func (rt *Router) handleInfer(w http.ResponseWriter, r *http.Request) {
	sp := rt.startSpan("router.request", r)
	defer sp.Finish()
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxBodyBytes))
	if err != nil {
		sp.Errorf("bad body")
		httpError(w, http.StatusBadRequest, fmt.Sprintf("reading body: %v", err))
		return
	}
	var probe sessionProbe
	if err := json.Unmarshal(body, &probe); err != nil {
		sp.Errorf("malformed JSON")
		httpError(w, http.StatusBadRequest, fmt.Sprintf("malformed JSON body: %v", err))
		return
	}
	rt.reqs.Inc()
	sticky := probe.Session != ""
	var key string
	if sticky {
		key = "s:" + probe.Session
	} else {
		sum := sha256.Sum256(body)
		key = "d:" + hex.EncodeToString(sum[:8])
	}
	sp.Attr("key", key)
	cands := rt.pick(key, sticky)
	if len(cands) == 0 {
		sp.Errorf("no routable replicas")
		httpError(w, http.StatusServiceUnavailable, "fleet: no routable replicas")
		return
	}
	sp.Event("route", "replica", cands[0].url, "candidates", strconv.Itoa(len(cands)))
	ctx, cancel := context.WithTimeout(r.Context(), rt.opts.RequestTimeout)
	defer cancel()
	var lastStatus int
	var lastBody []byte
	var lastHdr http.Header
	for i, m := range cands {
		if i > 0 {
			rt.retries.Inc()
			sp.Event("failover", "to", m.url, "after_status", strconv.Itoa(lastStatus))
		}
		status, respBody, hdr, err := rt.forward(ctx, m, http.MethodPost, "/v1/infer", body, sp.Traceparent())
		if err != nil {
			if ctx.Err() != nil {
				sp.SetError(ctx.Err())
				httpError(w, http.StatusGatewayTimeout, ctx.Err().Error())
				return
			}
			sp.Event("transport-error", "replica", m.url)
			continue // transport failure: next candidate
		}
		if status >= 500 || status == http.StatusGone ||
			(status == http.StatusTooManyRequests && !sticky) {
			// 5xx (including a draining replica's 503), moved sessions and
			// stateless sheds fail over; remember the answer — headers
			// included, a 429's Retry-After must survive to the client —
			// in case every candidate gives the same one.
			if status == http.StatusTooManyRequests {
				sp.Event("shed", "replica", m.url)
			}
			lastStatus, lastBody, lastHdr = status, respBody, hdr
			continue
		}
		sp.Attr("replica", m.url)
		w.Header().Set(replicaHeader, m.url)
		copyResponse(w, status, hdr, respBody)
		return
	}
	rt.errs.Inc()
	sp.Errorf("all candidates failed (last status %d)", lastStatus)
	if lastStatus != 0 {
		if lastHdr == nil {
			lastHdr = http.Header{}
		}
		if lastHdr.Get("Content-Type") == "" {
			lastHdr.Set("Content-Type", "application/json")
		}
		copyResponse(w, lastStatus, lastHdr, lastBody)
		return
	}
	httpError(w, http.StatusBadGateway, "fleet: all candidate replicas unreachable")
}

// replicaHeader names the replica that served a proxied request, so a
// client (or a test) can attribute a response without scraping /fleet.
const replicaHeader = "X-Eta-Replica"

// startSpan opens the router-side request span, continuing an inbound
// traceparent (loadgen-originated traces) or rooting a fresh one. nil
// when tracing is off.
func (rt *Router) startSpan(name string, r *http.Request) *rtrace.Span {
	t := rt.opts.Tracer
	if t == nil {
		return nil
	}
	if tid, psid, sampled, ok := rtrace.ParseTraceparent(r.Header.Get(rtrace.TraceparentHeader)); ok {
		return t.StartRemote(name, tid, psid, sampled)
	}
	return t.StartSpan(name)
}

// pick returns the candidate replicas for key in try order: the ring
// owner and its successors (all non-ejected). Stateless requests may
// swap the first two by in-flight load.
func (rt *Router) pick(key string, sticky bool) []*member {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	names := rt.ring.LookupN(key, 3)
	out := make([]*member, 0, len(names))
	for _, n := range names {
		if m := rt.members[n]; m != nil {
			out = append(out, m)
		}
	}
	if !sticky && len(out) >= 2 && out[1].inflight.Load() < out[0].inflight.Load() {
		out[0], out[1] = out[1], out[0]
	}
	return out
}

// forward proxies one request to a replica, recording per-replica
// counters, in-flight load and latency. A non-empty traceparent is
// propagated so the replica's request span joins the router's trace.
func (rt *Router) forward(ctx context.Context, m *member, method, path string, body []byte, traceparent string) (int, []byte, http.Header, error) {
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequestWithContext(ctx, method, m.url+path, rd)
	if err != nil {
		return 0, nil, nil, err
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	if traceparent != "" {
		req.Header.Set(rtrace.TraceparentHeader, traceparent)
	}
	m.inflight.Add(1)
	t0 := time.Now()
	resp, err := rt.client.Do(req)
	ms := float64(time.Since(t0)) / float64(time.Millisecond)
	m.inflight.Add(-1)
	m.reqs.Inc()
	m.lats.observe(ms)
	if err != nil {
		m.errs.Inc()
		return 0, nil, nil, err
	}
	defer resp.Body.Close()
	respBody, err := io.ReadAll(io.LimitReader(resp.Body, maxBodyBytes))
	if err != nil {
		m.errs.Inc()
		return 0, nil, nil, err
	}
	if resp.StatusCode >= 500 {
		m.errs.Inc()
	}
	return resp.StatusCode, respBody, resp.Header, nil
}

// forwardTimeout is forward bounded by the router's request timeout —
// for control-plane calls (drain, swap) that do not inherit a client
// request's context deadline.
func (rt *Router) forwardTimeout(ctx context.Context, m *member, method, path string, body []byte) (int, []byte, http.Header, error) {
	ctx, cancel := context.WithTimeout(ctx, rt.opts.RequestTimeout)
	defer cancel()
	return rt.forward(ctx, m, method, path, body, "")
}

// handleModel forwards the geometry probe to the first routable
// replica.
func (rt *Router) handleModel(w http.ResponseWriter, r *http.Request) {
	ctx, cancel := context.WithTimeout(r.Context(), rt.opts.RequestTimeout)
	defer cancel()
	for _, m := range rt.routable() {
		status, body, hdr, err := rt.forward(ctx, m, http.MethodGet, "/v1/model", nil, "")
		if err != nil || status >= 500 {
			continue
		}
		copyResponse(w, status, hdr, body)
		return
	}
	httpError(w, http.StatusServiceUnavailable, "fleet: no routable replicas")
}

func (rt *Router) handleReadyz(w http.ResponseWriter, r *http.Request) {
	if len(rt.routable()) == 0 {
		httpError(w, http.StatusServiceUnavailable, "fleet: no routable replicas")
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "ready"})
}

// FleetStatus is the /fleet (and /statz) JSON report.
type FleetStatus struct {
	Replicas       []MemberStatus `json:"replicas"`
	RingMembers    int            `json:"ring_members"`
	SwapGeneration int64          `json:"swap_generation"`
	ScaleAdvice    int            `json:"scale_advice"`
	Requests       int64          `json:"requests"`
	Errors         int64          `json:"errors"`
	Retries        int64          `json:"retries"`
	Ejections      int64          `json:"ejections"`
	Rejoins        int64          `json:"rejoins"`
	SessionsMoved  int64          `json:"sessions_moved"`
	SessionsLost   int64          `json:"sessions_lost"`
}

// Status snapshots the fleet as the router sees it.
func (rt *Router) Status() FleetStatus {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	st := FleetStatus{
		RingMembers:    rt.ring.Size(),
		SwapGeneration: rt.swapGen.Load(),
		ScaleAdvice:    int(rt.advice.Value()),
		Requests:       rt.reqs.Value(),
		Errors:         rt.errs.Value(),
		Retries:        rt.retries.Value(),
		Ejections:      rt.ejections.Value(),
		Rejoins:        rt.rejoins.Value(),
		SessionsMoved:  rt.sessionsMoved.Value(),
		SessionsLost:   rt.sessLost.Value(),
	}
	names := make([]string, 0, len(rt.members))
	for n := range rt.members {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		m := rt.members[n]
		p50, p99 := m.lats.quantiles()
		st.Replicas = append(st.Replicas, MemberStatus{
			URL:        m.url,
			State:      m.state.String(),
			Fails:      m.fails,
			Oks:        m.oks,
			Inflight:   int(m.inflight.Load()),
			Requests:   m.reqs.Value(),
			Errors:     m.errs.Value(),
			P50Ms:      p50,
			P99Ms:      p99,
			QueueDepth: m.depth.Value(),
		})
	}
	return st
}

func (rt *Router) handleFleet(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, rt.Status())
}

func (rt *Router) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	_ = rt.reg.WritePrometheus(w)
}

// swapRequest is the JSON body of POST /admin/swap.
type swapRequest struct {
	Path string `json:"path"`
}

func (rt *Router) handleSwap(w http.ResponseWriter, r *http.Request) {
	var req swapRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil || req.Path == "" {
		httpError(w, http.StatusBadRequest, "body must be {\"path\": \"/path/to/checkpoint\"}")
		return
	}
	rep, err := rt.Swap(r.Context(), req.Path)
	if err != nil {
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusBadGateway)
		json.NewEncoder(w).Encode(map[string]any{"error": err.Error(), "report": rep})
		return
	}
	writeJSON(w, http.StatusOK, rep)
}

// handleTraceByID resolves one trace id across the whole fleet: the
// router's local spans plus every routable replica's /debug/traces/{id}
// answer, merged and assembled into one tree — so a single id fetched
// from the router yields router request span → replica request span →
// sweep span → phase children, spanning processes.
func (rt *Router) handleTraceByID(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	tid, ok := rtrace.ParseTraceID(id)
	if !ok {
		httpError(w, http.StatusBadRequest, "malformed trace id")
		return
	}
	spans := rt.opts.Tracer.WireTrace(tid)
	ctx, cancel := context.WithTimeout(r.Context(), rt.opts.RequestTimeout)
	defer cancel()
	for _, m := range rt.routable() {
		status, body, _, err := rt.forward(ctx, m, http.MethodGet, "/debug/traces/"+id, nil, "")
		if err != nil || status != http.StatusOK {
			continue // replica without tracing, or trace aged out there
		}
		var tr rtrace.TraceResponse
		if json.Unmarshal(body, &tr) == nil {
			spans = append(spans, tr.Spans...)
		}
	}
	if len(spans) == 0 {
		httpError(w, http.StatusNotFound, "trace not found")
		return
	}
	writeJSON(w, http.StatusOK, rtrace.TraceResponse{
		TraceID: id, Spans: spans, Tree: rtrace.Assemble(spans),
	})
}

// routable snapshots the non-ejected members, sorted by URL for
// deterministic iteration.
func (rt *Router) routable() []*member {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	out := make([]*member, 0, len(rt.members))
	for _, m := range rt.members {
		if m.state != stateEjected {
			out = append(out, m)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].url < out[j].url })
	return out
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(v)
}

func httpError(w http.ResponseWriter, code int, msg string) {
	writeJSON(w, code, map[string]string{"error": msg})
}

func copyResponse(w http.ResponseWriter, status int, hdr http.Header, body []byte) {
	if ct := hdr.Get("Content-Type"); ct != "" {
		w.Header().Set("Content-Type", ct)
	}
	if ra := hdr.Get("Retry-After"); ra != "" {
		w.Header().Set("Retry-After", ra)
	}
	w.WriteHeader(status)
	w.Write(body)
}

// parseGauge extracts an unlabeled gauge sample from Prometheus text.
func parseGauge(text, name string) (float64, bool) {
	for _, line := range strings.Split(text, "\n") {
		if rest, ok := strings.CutPrefix(line, name+" "); ok {
			v, err := strconv.ParseFloat(strings.TrimSpace(rest), 64)
			if err == nil {
				return v, true
			}
		}
	}
	return 0, false
}
