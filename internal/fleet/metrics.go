package fleet

// Router metric names. Each Router owns a private obs.Registry for the
// same reason serve.Server does: the counters describe one router's
// lifetime. Per-replica series carry a replica="<url>" label.
const (
	metricReplicaReqs       = "etalstm_router_replica_requests_total"
	metricReplicaErrs       = "etalstm_router_replica_errors_total"
	metricReplicaP50        = "etalstm_router_replica_p50_ms"
	metricReplicaP99        = "etalstm_router_replica_p99_ms"
	metricReplicaQueueDepth = "etalstm_router_replica_queue_depth"

	metricRequests      = "etalstm_router_requests_total"
	metricErrors        = "etalstm_router_errors_total"
	metricRetries       = "etalstm_router_retries_total"
	metricReplicas      = "etalstm_router_replicas"
	metricEjections     = "etalstm_router_ejections_total"
	metricRejoins       = "etalstm_router_rejoins_total"
	metricSessionsMoved = "etalstm_router_sessions_moved_total"
	metricSessionsLost  = "etalstm_router_sessions_lost_total"
	metricLastRemap     = "etalstm_router_last_remap_fraction"
	metricSwapGen       = "etalstm_router_swap_generation"
	metricScaleAdvice   = "etalstm_router_scale_advice"
)
