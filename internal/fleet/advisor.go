package fleet

// advisor is the advice-only autoscale signal: it never changes the
// fleet, it sets a gauge an operator (or an external controller) can
// act on. Advice needs `need` consecutive probe rounds on the same
// side of a threshold before it fires — the same hysteresis idea as
// membership, so one bursty scrape cannot flap the signal.
type advisor struct {
	up, down             float64 // mean queue-depth thresholds
	need                 int     // consecutive rounds before advising
	upStreak, downStreak int
}

// tick folds one probe round's mean queue depth over the routable
// replicas into the advice: +1 add a replica, -1 remove one, 0 hold.
// Scaling below one replica is never advised.
func (a *advisor) tick(meanDepth float64, replicas int) int {
	if meanDepth > a.up {
		a.upStreak++
	} else {
		a.upStreak = 0
	}
	if meanDepth < a.down && replicas > 1 {
		a.downStreak++
	} else {
		a.downStreak = 0
	}
	switch {
	case a.upStreak >= a.need:
		return 1
	case a.downStreak >= a.need:
		return -1
	}
	return 0
}
