//go:build race

package fleet

// raceEnabled reports that this binary was built with -race; timing-
// sensitive scaling assertions skip themselves.
const raceEnabled = true
