package fleet

import (
	"fmt"
	"strconv"
	"testing"
)

func TestRingBasics(t *testing.T) {
	r := NewRing(0)
	if got := r.Lookup("k"); got != "" {
		t.Fatalf("empty ring Lookup = %q, want \"\"", got)
	}
	if got := r.LookupN("k", 2); got != nil {
		t.Fatalf("empty ring LookupN = %v, want nil", got)
	}
	r.Add("a")
	r.Add("b")
	r.Add("c")
	r.Add("b") // duplicate add is a no-op
	if r.Size() != 3 {
		t.Fatalf("Size = %d, want 3", r.Size())
	}
	if ms := r.Members(); len(ms) != 3 || ms[0] != "a" || ms[2] != "c" {
		t.Fatalf("Members = %v", ms)
	}
	if !r.Has("b") || r.Has("z") {
		t.Fatal("Has is wrong")
	}
	if got, again := r.Lookup("key-1"), r.Lookup("key-1"); got != again || got == "" {
		t.Fatalf("Lookup not deterministic: %q vs %q", got, again)
	}
	succ := r.LookupN("key-1", 3)
	if len(succ) != 3 {
		t.Fatalf("LookupN(3) = %v", succ)
	}
	if succ[0] != r.Lookup("key-1") {
		t.Fatal("LookupN[0] must be the owner")
	}
	seen := map[string]bool{}
	for _, m := range succ {
		if seen[m] {
			t.Fatalf("LookupN repeated member %q: %v", m, succ)
		}
		seen[m] = true
	}
	if got := r.LookupN("key-1", 10); len(got) != 3 {
		t.Fatalf("LookupN capped at member count: got %v", got)
	}
	r.Remove("z") // absent remove is a no-op
	r.Remove("b")
	if r.Size() != 2 || r.Has("b") {
		t.Fatalf("after Remove: size=%d has(b)=%v", r.Size(), r.Has("b"))
	}
	for i := 0; i < 256; i++ {
		if got := r.Lookup("k" + strconv.Itoa(i)); got == "b" {
			t.Fatal("removed member still owns keys")
		}
	}
}

// TestRingConsistency pins the property that makes the hash
// *consistent*: removing one member reassigns only the keys that
// member owned — every other key keeps its replica — and re-adding it
// restores the original assignment exactly.
func TestRingConsistency(t *testing.T) {
	r := NewRing(0)
	members := []string{"r0", "r1", "r2", "r3", "r4"}
	for _, m := range members {
		r.Add(m)
	}
	const keys = 4096
	before := make([]string, keys)
	for i := range before {
		before[i] = r.Lookup("key-" + strconv.Itoa(i))
	}

	r.Remove("r2")
	for i := range before {
		got := r.Lookup("key-" + strconv.Itoa(i))
		if before[i] != "r2" && got != before[i] {
			t.Fatalf("key-%d moved %s -> %s though its owner r2 was not removed", i, before[i], got)
		}
		if before[i] == "r2" && got == "r2" {
			t.Fatalf("key-%d still owned by removed member", i)
		}
	}

	r.Add("r2")
	for i := range before {
		if got := r.Lookup("key-" + strconv.Itoa(i)); got != before[i] {
			t.Fatalf("key-%d: %s after re-add, want original %s", i, got, before[i])
		}
	}
}

// TestRingRemapBounded is the ISSUE acceptance bound: ejecting one of
// N members must remap at most 1.5/N of the key space.
func TestRingRemapBounded(t *testing.T) {
	for _, n := range []int{2, 3, 4, 8} {
		before := NewRing(0)
		for i := 0; i < n; i++ {
			before.Add(fmt.Sprintf("replica-%d", i))
		}
		after := before.Clone()
		after.Remove("replica-0")
		frac := RemapFraction(before, after, 8192)
		bound := 1.5 / float64(n)
		if frac > bound {
			t.Errorf("N=%d: removing one member remapped %.4f of keys, bound %.4f", n, frac, bound)
		}
		// And it must actually remap the removed member's share — a
		// remap fraction near zero would mean the probe is vacuous.
		if frac < 0.5/float64(n) {
			t.Errorf("N=%d: remap fraction %.4f suspiciously low", n, frac)
		}
	}
}

// TestRingBalance checks virtual nodes spread load: with 8 members no
// member owns less than half or more than double its fair share.
func TestRingBalance(t *testing.T) {
	r := NewRing(0)
	const n = 8
	for i := 0; i < n; i++ {
		r.Add(fmt.Sprintf("replica-%d", i))
	}
	counts := map[string]int{}
	const keys = 8192
	for i := 0; i < keys; i++ {
		counts[r.Lookup("key-"+strconv.Itoa(i))]++
	}
	fair := float64(keys) / n
	for m, c := range counts {
		if float64(c) < fair/2 || float64(c) > fair*2 {
			t.Errorf("%s owns %d keys, fair share %.0f", m, c, fair)
		}
	}
	if len(counts) != n {
		t.Fatalf("only %d members own keys, want %d", len(counts), n)
	}
}

func TestRingClone(t *testing.T) {
	r := NewRing(16)
	r.Add("a")
	c := r.Clone()
	c.Add("b")
	if r.Has("b") || !c.Has("b") {
		t.Fatal("Clone is not independent")
	}
	if RemapFraction(r, r.Clone(), 1024) != 0 {
		t.Fatal("identical rings must remap nothing")
	}
}
