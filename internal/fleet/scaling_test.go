package fleet

import (
	"context"
	"net/http/httptest"
	"testing"
	"time"

	"etalstm/internal/serve"
)

// TestFleetScalingNearLinear is the ISSUE anti-regression bound:
// going from 1 to 4 replicas under Zipf(1.1) session skew must yield
// at least 3.2x aggregate throughput. Replicas are capacity-bound
// fakes (one request at a time, fixed 3ms service) so the measurement
// is about routing quality — how evenly the router spreads load when
// a hot session pins ~19% of sticky traffic to one replica — not
// about this machine's CPU count. The stateless majority spreads by
// digest with a power-of-two-choices load tiebreak, which is what
// pulls the hot replica's share down below 1/3.2.
func TestFleetScalingNearLinear(t *testing.T) {
	if raceEnabled {
		t.Skip("wall-clock throughput measurement; -race distorts timing")
	}
	if testing.Short() {
		t.Skip("multi-second throughput measurement")
	}

	run := func(n int) serve.LoadReport {
		fakes := make([]*fakeReplica, n)
		for i := range fakes {
			fakes[i] = newFakeReplica(t, 1, 3*time.Millisecond)
		}
		rt := testRouter(t, Options{}, fakes...)
		hs := httptest.NewServer(rt.Handler())
		defer hs.Close()
		rep, err := serve.RunLoad(context.Background(), serve.LoadOptions{
			Target:      hs.URL,
			Concurrency: 64,
			Requests:    600,
			SeqLen:      2,
			Sessions:    512,
			ZipfS:       1.1,
			SessionFrac: 0.15,
			Seed:        7,
		})
		if err != nil {
			t.Fatal(err)
		}
		if rep.Errors != 0 || rep.Rejected != 0 {
			t.Fatalf("%d replicas: %d errors, %d rejected — scaling number is meaningless", n, rep.Errors, rep.Rejected)
		}
		if rt.errs.Value() != 0 {
			t.Fatalf("%d replicas: router recorded %d exhausted requests", n, rt.errs.Value())
		}
		t.Logf("%d replicas: %s", n, rep)
		return rep
	}

	rep1 := run(1)
	rep4 := run(4)
	speedup := rep4.RPS / rep1.RPS
	t.Logf("1 -> 4 replicas: %.1f -> %.1f rps, speedup %.2fx", rep1.RPS, rep4.RPS, speedup)
	if speedup < 3.2 {
		t.Fatalf("1 -> 4 replica speedup %.2fx under Zipf(1.1) skew, want >= 3.2x", speedup)
	}
}
