package fleet

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"time"

	"etalstm/internal/persist"
)

// ReplicaSwap is one replica's row in a SwapReport.
type ReplicaSwap struct {
	URL        string `json:"url"`
	Generation int64  `json:"generation"`
	Digest     string `json:"digest"`
	Err        string `json:"error,omitempty"`
}

// SwapReport describes a fleet checkpoint roll.
type SwapReport struct {
	Digest string        `json:"digest"`
	Rolled []ReplicaSwap `json:"rolled"`
}

// Swap rolls the checkpoint at path across the fleet one replica at a
// time: tell the replica to reload (the replica loads onto a standby
// batcher, probes it, flips generations atomically and drains the old
// one — in-flight requests ride the flip, none drop), verify the
// loaded content digest matches the fleet-wide expectation, and
// health-verify before touching the next replica. Any failure aborts
// the roll with the already-swapped replicas recorded, so a bad
// checkpoint stops after damaging the smallest possible slice of the
// fleet. The path is resolved by each replica — the fleet shares a
// filesystem (or each replica has the file staged at the same path).
func (rt *Router) Swap(ctx context.Context, path string) (SwapReport, error) {
	rt.swapMu.Lock()
	defer rt.swapMu.Unlock()

	var rep SwapReport
	// When the router itself can read the checkpoint it pins the
	// expected digest before touching any replica; otherwise the first
	// replica's loaded digest anchors the fleet-wide agreement check.
	if d, err := persist.DigestFile(path); err == nil {
		rep.Digest = d
	}
	targets := rt.routable()
	if len(targets) == 0 {
		return rep, errors.New("fleet: no routable replicas to swap")
	}
	body, err := json.Marshal(map[string]string{"path": path})
	if err != nil {
		return rep, err
	}
	for _, m := range targets {
		rs := ReplicaSwap{URL: m.url}
		status, respBody, _, err := rt.forwardTimeout(ctx, m, http.MethodPost, "/v1/admin/reload", body)
		if err != nil {
			rs.Err = err.Error()
			rep.Rolled = append(rep.Rolled, rs)
			return rep, fmt.Errorf("fleet: swap aborted at %s: %w", m.url, err)
		}
		if status != http.StatusOK {
			rs.Err = fmt.Sprintf("HTTP %d: %s", status, respBody)
			rep.Rolled = append(rep.Rolled, rs)
			return rep, fmt.Errorf("fleet: swap aborted at %s: HTTP %d", m.url, status)
		}
		var ans struct {
			Generation int64  `json:"generation"`
			Digest     string `json:"digest"`
		}
		if err := json.Unmarshal(respBody, &ans); err != nil {
			rs.Err = err.Error()
			rep.Rolled = append(rep.Rolled, rs)
			return rep, fmt.Errorf("fleet: swap aborted, bad reload answer from %s: %w", m.url, err)
		}
		rs.Generation, rs.Digest = ans.Generation, ans.Digest
		if rep.Digest == "" {
			rep.Digest = ans.Digest
		}
		if ans.Digest != rep.Digest {
			rs.Err = "digest mismatch"
			rep.Rolled = append(rep.Rolled, rs)
			return rep, fmt.Errorf("fleet: swap aborted, %s loaded digest %.12s but fleet expects %.12s",
				m.url, ans.Digest, rep.Digest)
		}
		if err := rt.awaitReady(ctx, m); err != nil {
			rs.Err = err.Error()
			rep.Rolled = append(rep.Rolled, rs)
			return rep, fmt.Errorf("fleet: swap aborted: %w", err)
		}
		rep.Rolled = append(rep.Rolled, rs)
		rt.opts.Log.Info("fleet: replica swapped",
			"replica", m.url, "generation", ans.Generation, "digest", ans.Digest)
	}
	rt.swapGen.Add(1)
	rt.opts.Log.Info("fleet: checkpoint swap complete",
		"replicas", len(rep.Rolled), "digest", rep.Digest, "fleet_generation", rt.swapGen.Load())
	return rep, nil
}

// awaitReady polls a replica's /readyz until it answers OK — the
// health-verify step between replicas in a roll.
func (rt *Router) awaitReady(ctx context.Context, m *member) error {
	for i := 0; i < 50; i++ {
		if ok, _ := rt.probe(ctx, m); ok {
			return nil
		}
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-time.After(20 * time.Millisecond):
		}
	}
	return fmt.Errorf("replica %s not ready after reload", m.url)
}
