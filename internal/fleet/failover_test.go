package fleet

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"etalstm/internal/rtrace"
	"etalstm/internal/serve"
)

// TestRouterReplicaHeader: every proxied infer response names the
// replica that served it, so clients and tests can attribute answers
// without scraping /fleet.
func TestRouterReplicaHeader(t *testing.T) {
	fakes := []*fakeReplica{newFakeReplica(t, 0, 0), newFakeReplica(t, 0, 0)}
	rt := testRouter(t, Options{}, fakes...)
	hs := httptest.NewServer(rt.Handler())
	defer hs.Close()

	resp, err := hs.Client().Post(hs.URL+"/v1/infer", "application/json",
		strings.NewReader(`{"inputs":[[0.1,0.2,0.3,0.4]]}`))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("infer via router: HTTP %d", resp.StatusCode)
	}
	got := resp.Header.Get("X-Eta-Replica")
	if got != fakes[0].hs.URL && got != fakes[1].hs.URL {
		t.Fatalf("X-Eta-Replica = %q, want one of the replica URLs", got)
	}
}

// TestRouterAllShed429: when every candidate sheds a stateless request,
// the router must hand the client the replicas' 429 — Retry-After
// intact — not convert it into a 502.
func TestRouterAllShed429(t *testing.T) {
	fakes := []*fakeReplica{newFakeReplica(t, 0, 0), newFakeReplica(t, 0, 0), newFakeReplica(t, 0, 0)}
	for _, f := range fakes {
		f.shed.Store(true)
	}
	rt := testRouter(t, Options{}, fakes...)
	hs := httptest.NewServer(rt.Handler())
	defer hs.Close()

	resp, err := hs.Client().Post(hs.URL+"/v1/infer", "application/json",
		strings.NewReader(`{"inputs":[[0.5,0.5,0.5,0.5]]}`))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("all-shed stateless request: HTTP %d, want 429", resp.StatusCode)
	}
	if ra := resp.Header.Get("Retry-After"); ra != "3" {
		t.Fatalf("Retry-After = %q, want the replicas' hint %q", ra, "3")
	}
	if rt.retries.Value() == 0 {
		t.Fatal("stateless shed must have tried the ring successors first")
	}
}

// TestRouterSticky429NoFailover: a sticky session's state lives on its
// ring owner — shedding there must surface to the client immediately,
// never fork the session onto a successor.
func TestRouterSticky429NoFailover(t *testing.T) {
	fakes := []*fakeReplica{newFakeReplica(t, 0, 0), newFakeReplica(t, 0, 0), newFakeReplica(t, 0, 0)}
	for _, f := range fakes {
		f.shed.Store(true)
	}
	rt := testRouter(t, Options{}, fakes...)
	hs := httptest.NewServer(rt.Handler())
	defer hs.Close()

	resp, err := hs.Client().Post(hs.URL+"/v1/infer", "application/json",
		strings.NewReader(`{"inputs":[[0.1,0.2,0.3,0.4]],"session":"pinned"}`))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("shed sticky request: HTTP %d, want 429", resp.StatusCode)
	}
	if ra := resp.Header.Get("Retry-After"); ra != "3" {
		t.Fatalf("Retry-After = %q, want %q", ra, "3")
	}
	if got := rt.retries.Value(); got != 0 {
		t.Fatalf("%d failovers on a sticky shed; the session owner's 429 must be final", got)
	}
}

// TestRouterTraceFanout is the cross-process acceptance check: a traced
// request through the router leaves spans in two flight recorders
// (router + replica), and GET /debug/traces/{id} on the router merges
// them into one tree — router.request at the root with the replica's
// serve.request chain beneath it.
func TestRouterTraceFanout(t *testing.T) {
	routerTr := rtrace.New(rtrace.Options{Process: "router"})
	replicaTr := rtrace.New(rtrace.Options{Process: "replica"})
	net := realNet(t, 11)
	_, replica := realReplica(t, net, serve.Options{MaxBatch: 4, Window: time.Millisecond, Tracer: replicaTr})

	rt := testRouter(t, Options{Tracer: routerTr, Replicas: []string{replica.URL}})
	hs := httptest.NewServer(rt.Handler())
	defer hs.Close()

	tid, sid := rtrace.NewIDs()
	req, err := http.NewRequest(http.MethodPost, hs.URL+"/v1/infer",
		bytes.NewReader([]byte(`{"inputs":[[0.1,0.2,0.3,0.4],[0.4,0.3,0.2,0.1]]}`)))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set(rtrace.TraceparentHeader, rtrace.FormatTraceparent(tid, sid, true))
	resp, err := hs.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("traced infer via router: HTTP %d", resp.StatusCode)
	}

	tr, err := hs.Client().Get(hs.URL + "/debug/traces/" + tid.String())
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Body.Close()
	if tr.StatusCode != http.StatusOK {
		t.Fatalf("router GET /debug/traces/{id}: HTTP %d", tr.StatusCode)
	}
	var tres rtrace.TraceResponse
	if err := json.NewDecoder(tr.Body).Decode(&tres); err != nil {
		t.Fatal(err)
	}

	// The merged tree must chain router.request → serve.request →
	// serve.sweep across the two processes.
	var chain func(nodes []*rtrace.Node, names []string) bool
	chain = func(nodes []*rtrace.Node, names []string) bool {
		if len(names) == 0 {
			return true
		}
		for _, n := range nodes {
			if n.Name == names[0] && chain(n.Children, names[1:]) {
				return true
			}
			if chain(n.Children, names) {
				return true
			}
		}
		return false
	}
	if !chain(tres.Tree, []string{"router.request", "serve.request", "serve.sweep"}) {
		enc, _ := json.MarshalIndent(tres.Tree, "", "  ")
		t.Fatalf("merged trace lacks router.request → serve.request → serve.sweep:\n%s", enc)
	}
}
