//go:build !race

package fleet

// raceEnabled mirrors the serve package's pattern: the scaling
// benchmark measures wall-clock throughput, which the race detector's
// instrumentation distorts past usefulness, so it skips under -race.
const raceEnabled = false
