package sched

// This file adds the temporal view behind paper Fig. 10: within a
// phase, EW work only becomes available as MatMul output streams out
// (the producer-consumer dependency of the LSTM cell), so a statically
// provisioned EW module idles whenever its capacity outruns the
// availability rate — the "Idle Time of EW" the figure shades. R2A's
// swing PEs take MatMul duty during those gaps instead.

// TimelinePoint is one simulation slice of a phase execution.
type TimelinePoint struct {
	Cycle      int64
	MatMulBusy int // PEs doing MatMul work this slice
	EWBusy     int // PEs doing EW work this slice
	Idle       int // provisioned PEs with nothing ready
}

// Timeline is a phase execution trace plus its summary.
type Timeline struct {
	Points []TimelinePoint
	Cycles int64
	// IdlePEFrac is idle PE-cycles / total PE-cycles — Fig. 10's shaded
	// area as a number.
	IdlePEFrac float64
}

// simulate advances one phase slice by slice. mmPE/ewPE give each
// kind's capacity per cycle; under R2A (swing=true) idle capacity on
// either side converts to the other kind when that kind has ready work.
func simulate(w Workload, mmPE, ewPE int, swing bool, slice int64) Timeline {
	if slice < 1 {
		slice = 1
	}
	var tl Timeline
	mmLeft := float64(w.MatMulMACs)
	ewLeft := float64(w.EWOps)
	mmTotal := float64(w.MatMulMACs)
	// EW availability: proportional to MatMul progress (outputs stream
	// into the EW stage as they are produced).
	ewReady := 0.0
	if mmTotal == 0 {
		ewReady = ewLeft
	}
	var idlePE, totalPE float64

	for mmLeft > 0 || ewLeft > 0 {
		mmCap := float64(mmPE) * float64(slice)
		ewCap := float64(ewPE) * float64(slice)

		// Swing: PEs whose own kind has no ready work help the other.
		if swing {
			if mmLeft <= 0 {
				ewCap += mmCap
				mmCap = 0
			}
			if ewReady <= 0 && ewLeft > 0 || ewLeft <= 0 {
				// EW has nothing ready (or nothing at all): its PEs do
				// MatMul this slice.
				mmCap += ewCap
				ewCap = 0
			}
		}

		mmDone := mmCap
		if mmDone > mmLeft {
			mmDone = mmLeft
		}
		mmLeft -= mmDone
		if mmTotal > 0 {
			ewReady += float64(w.EWOps) * mmDone / mmTotal
		}

		ewDone := ewCap
		if ewDone > ewReady {
			ewDone = ewReady
		}
		if ewDone > ewLeft {
			ewDone = ewLeft
		}
		ewLeft -= ewDone
		ewReady -= ewDone

		total := float64(mmPE+ewPE) * float64(slice)
		busy := mmDone + ewDone
		idle := total - busy
		if idle < 0 {
			idle = 0
		}
		idlePE += idle
		totalPE += total

		tl.Cycles += slice
		tl.Points = append(tl.Points, TimelinePoint{
			Cycle:      tl.Cycles,
			MatMulBusy: int(mmDone / float64(slice)),
			EWBusy:     int(ewDone / float64(slice)),
			Idle:       int(idle / float64(slice)),
		})
		if len(tl.Points) > 1<<20 {
			break // runaway guard; the analytic model bounds real runs
		}
	}
	if totalPE > 0 {
		tl.IdlePEFrac = idlePE / totalPE
	}
	return tl
}

// StaticTimeline traces a phase under fixed module provisioning —
// Fig. 10's upper band, with the EW module idling while it waits for
// MatMul outputs.
func StaticTimeline(w Workload, a Alloc, slice int64) Timeline {
	return simulate(w, a.MatMulPEs, a.EWPEs, false, slice)
}

// DynamicTimeline traces a phase under R2A: the same PEs, but idle
// capacity swings to whichever kind has ready inputs.
func DynamicTimeline(w Workload, totalPEs int, slice int64) Timeline {
	a := StaticSplit(totalPEs, w)
	return simulate(w, a.MatMulPEs, a.EWPEs, true, slice)
}
