package sched

import (
	"testing"

	"etalstm/internal/lstm"
)

func lstmPhase() Workload {
	// One FW cell's mix at a realistic geometry: MatMul-dominant with a
	// dependent EW tail — the Fig. 10 shape.
	return FromOpCount(lstm.ForwardOps(512, 1024, 32))
}

func TestStaticTimelineShowsEWIdle(t *testing.T) {
	w := lstmPhase()
	// Provision EW generously (a mismatched design-time split).
	a := Alloc{MatMulPEs: 512, EWPEs: 512}
	tl := StaticTimeline(w, a, 1024)
	if tl.Cycles <= 0 || len(tl.Points) == 0 {
		t.Fatal("empty timeline")
	}
	if tl.IdlePEFrac < 0.2 {
		t.Fatalf("mismatched static allocation should idle substantially: %.3f", tl.IdlePEFrac)
	}
	// Early slices: the EW module waits for MatMul outputs.
	first := tl.Points[0]
	if first.EWBusy > first.MatMulBusy {
		t.Fatal("EW cannot outpace MatMul availability at the start")
	}
}

func TestDynamicTimelineSwingsIdleAway(t *testing.T) {
	w := lstmPhase()
	st := StaticTimeline(w, Alloc{MatMulPEs: 512, EWPEs: 512}, 1024)
	dy := DynamicTimeline(w, 1024, 1024)
	if dy.IdlePEFrac >= st.IdlePEFrac {
		t.Fatalf("R2A must reduce idle PE-cycles: %.3f vs %.3f", dy.IdlePEFrac, st.IdlePEFrac)
	}
	if dy.Cycles >= st.Cycles {
		t.Fatalf("R2A must finish sooner: %d vs %d", dy.Cycles, st.Cycles)
	}
	if dy.IdlePEFrac > 0.1 {
		t.Fatalf("R2A idle fraction %.3f too high", dy.IdlePEFrac)
	}
}

func TestTimelineConservesWork(t *testing.T) {
	// Total executed ops across slices must equal the workload.
	w := Workload{MatMulMACs: 100000, EWOps: 40000}
	for _, tl := range []Timeline{
		StaticTimeline(w, Alloc{MatMulPEs: 100, EWPEs: 100}, 64),
		DynamicTimeline(w, 200, 64),
	} {
		var mm, ew int64
		for _, p := range tl.Points {
			mm += int64(p.MatMulBusy) * 64
			ew += int64(p.EWBusy) * 64
		}
		// Slice quantization loses at most one slice per kind.
		if mm < w.MatMulMACs-64*200 || mm > w.MatMulMACs+64*200 {
			t.Fatalf("MatMul work mismatch: %d vs %d", mm, w.MatMulMACs)
		}
		if ew < w.EWOps-64*200 || ew > w.EWOps+64*200 {
			t.Fatalf("EW work mismatch: %d vs %d", ew, w.EWOps)
		}
	}
}

func TestTimelineEWOnlyWorkload(t *testing.T) {
	// With no MatMul, all EW is immediately available.
	w := Workload{EWOps: 5000}
	tl := DynamicTimeline(w, 100, 10)
	if tl.Cycles <= 0 {
		t.Fatal("EW-only timeline must run")
	}
	if tl.IdlePEFrac > 0.2 {
		t.Fatalf("EW-only under R2A should stay busy: %.3f", tl.IdlePEFrac)
	}
}

func TestTimelineEmptyWorkload(t *testing.T) {
	tl := StaticTimeline(Workload{}, Alloc{MatMulPEs: 4, EWPEs: 4}, 8)
	if tl.Cycles != 0 || len(tl.Points) != 0 {
		t.Fatalf("empty workload timeline: %+v", tl)
	}
}

func TestTimelineSliceClamp(t *testing.T) {
	tl := DynamicTimeline(Workload{MatMulMACs: 10}, 4, 0) // slice clamps to 1
	if tl.Cycles <= 0 {
		t.Fatal("clamped slice must still progress")
	}
}
