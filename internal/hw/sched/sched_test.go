package sched

import (
	"math"
	"testing"
	"testing/quick"

	"etalstm/internal/lstm"
)

func TestStaticSplitProportional(t *testing.T) {
	a := StaticSplit(100, Workload{MatMulMACs: 900, EWOps: 100})
	if a.MatMulPEs != 90 || a.EWPEs != 10 {
		t.Fatalf("split: %+v", a)
	}
}

func TestStaticSplitMinimumOne(t *testing.T) {
	a := StaticSplit(10, Workload{MatMulMACs: 1000000, EWOps: 1})
	if a.EWPEs < 1 || a.MatMulPEs < 1 {
		t.Fatalf("split must give each side a PE: %+v", a)
	}
	b := StaticSplit(10, Workload{})
	if b.MatMulPEs+b.EWPEs != 10 {
		t.Fatalf("empty ref split: %+v", b)
	}
}

func TestStaticSplitValidates(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	StaticSplit(1, Workload{})
}

func TestStaticMatchedWorkloadEfficient(t *testing.T) {
	w := Workload{MatMulMACs: 9000, EWOps: 1000}
	a := StaticSplit(100, w)
	r := Static(w, a, 100)
	if r.Utilization < 0.95 {
		t.Fatalf("matched workload should be near-fully utilized: %v", r.Utilization)
	}
}

// TestStaticMismatchedWorkloadIdles reproduces the Fig. 10 pathology:
// an allocation tuned for one mix wastes PEs on a different mix.
func TestStaticMismatchedWorkloadIdles(t *testing.T) {
	ref := Workload{MatMulMACs: 5000, EWOps: 5000} // design-time mix
	a := StaticSplit(100, ref)
	skewed := Workload{MatMulMACs: 9900, EWOps: 100} // runtime mix
	r := Static(skewed, a, 100)
	if r.Utilization > 0.6 {
		t.Fatalf("mismatched static should idle: utilization %v", r.Utilization)
	}
	d := Dynamic(skewed, 100)
	if d.Utilization < 0.9 {
		t.Fatalf("dynamic must stay busy: %v", d.Utilization)
	}
	if d.Cycles >= r.Cycles {
		t.Fatalf("dynamic %d must beat mismatched static %d", d.Cycles, r.Cycles)
	}
}

func TestDynamicNearIdeal(t *testing.T) {
	w := Workload{MatMulMACs: 100000, EWOps: 50000}
	r := Dynamic(w, 128)
	ideal := float64(w.Total()) / 128
	if float64(r.Cycles) < ideal {
		t.Fatal("cannot beat the work bound")
	}
	if float64(r.Cycles) > ideal*1.05 {
		t.Fatalf("dynamic overhead too high: %d vs ideal %v", r.Cycles, ideal)
	}
}

func TestDynamicEmptyWorkload(t *testing.T) {
	r := Dynamic(Workload{}, 32)
	if r.Cycles != 0 || r.Utilization != 0 {
		t.Fatalf("empty workload: %+v", r)
	}
}

func TestFromOpCount(t *testing.T) {
	o := lstm.OpCount{MatMulMACs: 10, EWMul: 2, EWAdd: 3, Activation: 4}
	w := FromOpCount(o)
	if w.MatMulMACs != 10 || w.EWOps != 9 {
		t.Fatalf("FromOpCount: %+v", w)
	}
}

func TestWorkloadAdd(t *testing.T) {
	w := Workload{MatMulMACs: 1, EWOps: 2}.Add(Workload{MatMulMACs: 3, EWOps: 4})
	if w.MatMulMACs != 4 || w.EWOps != 6 || w.Total() != 10 {
		t.Fatalf("Add: %+v", w)
	}
}

func TestRunPhasesSumsCycles(t *testing.T) {
	phases := []Workload{
		{MatMulMACs: 1000, EWOps: 100},
		{MatMulMACs: 100, EWOps: 1000},
	}
	a := StaticSplit(10, phases[0])
	st := RunPhases(phases, PolicyStatic, a, 10)
	dy := RunPhases(phases, PolicyDynamic, Alloc{}, 10)
	if dy.Cycles >= st.Cycles {
		t.Fatalf("dynamic %d must beat static %d across mixed phases", dy.Cycles, st.Cycles)
	}
	if dy.Utilization <= st.Utilization {
		t.Fatal("dynamic utilization must exceed static on mixed phases")
	}
}

// TestMS1WorkloadShiftHurtsStatic: the paper's motivation for R2A — the
// memory-saving optimizations make the per-cell mix irregular (MS1
// moves EW work into FW cells and shrinks BP cells), so a static split
// tuned on the unoptimized mix loses efficiency.
func TestMS1WorkloadShiftHurtsStatic(t *testing.T) {
	const input, hidden, batch = 512, 1024, 16
	fwBase := FromOpCount(lstm.ForwardOps(input, hidden, batch))
	bpBase := FromOpCount(lstm.BackwardOps(input, hidden, batch))
	alloc := StaticSplit(1280, fwBase.Add(bpBase)) // tuned on baseline mix

	// MS1 mix: FW gains P1 work; BP shrinks by 65 % sparsity.
	fwMS1 := fwBase.Add(FromOpCount(lstm.P1Ops(hidden, batch)))
	bpMS1 := FromOpCount(lstm.BackwardFromP1Ops(input, hidden, batch, 0.65))

	st := RunPhases([]Workload{fwMS1, bpMS1}, PolicyStatic, alloc, 1280)
	dy := RunPhases([]Workload{fwMS1, bpMS1}, PolicyDynamic, Alloc{}, 1280)
	if dy.Cycles >= st.Cycles {
		t.Fatalf("dynamic %d must beat static %d on the MS1 mix", dy.Cycles, st.Cycles)
	}
	if st.Utilization > 0.99 {
		t.Fatalf("static should show idle time on the shifted mix: %v", st.Utilization)
	}
}

// Property: dynamic never loses to static on the same workload, and
// utilizations stay in (0, 1].
func TestPropertyDynamicBeatsStatic(t *testing.T) {
	f := func(mmRaw, ewRaw uint32, refMM, refEW uint16) bool {
		w := Workload{MatMulMACs: int64(mmRaw%1000000) + 1, EWOps: int64(ewRaw % 1000000)}
		ref := Workload{MatMulMACs: int64(refMM) + 1, EWOps: int64(refEW) + 1}
		a := StaticSplit(64, ref)
		st := Static(w, a, 64)
		dy := Dynamic(w, 64)
		if dy.Utilization <= 0 || dy.Utilization > 1.0001 {
			return false
		}
		if st.Utilization <= 0 || st.Utilization > 1.0001 {
			return false
		}
		// Allow the 2% swing tax: dynamic must be within 3% of static
		// at worst, and usually far better.
		return float64(dy.Cycles) <= float64(st.Cycles)*1.03+1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestUtilizationComputation(t *testing.T) {
	w := Workload{MatMulMACs: 640, EWOps: 0}
	r := Dynamic(w, 64)
	// 640 ops / 64 PEs = 10 ideal cycles; 2% overhead → 10 cycles
	// (floor), utilization 1.0.
	if r.Cycles < 10 || r.Cycles > 11 {
		t.Fatalf("cycles: %d", r.Cycles)
	}
	if math.Abs(r.Utilization-float64(w.Total())/(float64(r.Cycles)*64)) > 1e-12 {
		t.Fatal("utilization formula")
	}
}
