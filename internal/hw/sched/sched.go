// Package sched models the computational-resource allocation policies
// the paper compares (Sec. V-A and V-C): static distribution of PEs
// into fixed MatMul and EW hardware modules (the prior-accelerator
// style of Fig. 10) versus η-LSTM's Runtime Resource Allocation (R2A)
// with swing PEs and swing channels.
//
// The unit of work is the lstm.OpCount-derived Workload: MatMul MACs
// and element-wise operations, each processed at one per PE-cycle.
package sched

import (
	"fmt"

	"etalstm/internal/lstm"
)

// Workload is the operation mix one phase must execute.
type Workload struct {
	MatMulMACs int64
	EWOps      int64
}

// FromOpCount converts an lstm.OpCount.
func FromOpCount(o lstm.OpCount) Workload {
	return Workload{MatMulMACs: o.MatMulMACs, EWOps: o.EWOps()}
}

// Add combines workloads.
func (w Workload) Add(o Workload) Workload {
	return Workload{MatMulMACs: w.MatMulMACs + o.MatMulMACs, EWOps: w.EWOps + o.EWOps}
}

// Total returns total operations.
func (w Workload) Total() int64 { return w.MatMulMACs + w.EWOps }

// Alloc is a static division of PEs between the two module kinds.
type Alloc struct {
	MatMulPEs int
	EWPEs     int
}

// StaticSplit divides totalPEs proportionally to a reference workload —
// how prior accelerators provision their MatMul and EW modules at
// design time (the paper's Static-Arch calibrates on TREC-10). Each
// side gets at least one PE.
func StaticSplit(totalPEs int, ref Workload) Alloc {
	if totalPEs < 2 {
		panic(fmt.Sprintf("sched: need ≥ 2 PEs, have %d", totalPEs))
	}
	t := ref.Total()
	if t == 0 {
		return Alloc{MatMulPEs: totalPEs / 2, EWPEs: totalPEs - totalPEs/2}
	}
	mm := int(float64(totalPEs) * float64(ref.MatMulMACs) / float64(t))
	if mm < 1 {
		mm = 1
	}
	if mm > totalPEs-1 {
		mm = totalPEs - 1
	}
	return Alloc{MatMulPEs: mm, EWPEs: totalPEs - mm}
}

// Result reports a schedule's outcome.
type Result struct {
	Cycles      int64
	Utilization float64 // total ops / (PEs × cycles)
}

// Static executes w under a fixed allocation: the MatMul module and EW
// module run concurrently on their own PEs, so the phase finishes when
// the slower module does; the faster module idles (the Fig. 10
// pathology).
func Static(w Workload, a Alloc, totalPEs int) Result {
	mmCycles := ceilDiv(w.MatMulMACs, int64(a.MatMulPEs))
	ewCycles := ceilDiv(w.EWOps, int64(a.EWPEs))
	cycles := mmCycles
	if ewCycles > cycles {
		cycles = ewCycles
	}
	return finish(w, cycles, totalPEs)
}

// SwingOverhead is the R2A switch cost: reassigning a PE between
// MatMul and EW duty flushes its pipeline, a small constant the paper's
// channel controller amortizes over channel-sized groups. Modeled as a
// fractional cycle tax on the ideal balanced schedule.
const SwingOverhead = 0.02

// Dynamic executes w under R2A: the scheduler initially splits PEs by
// the estimated mix and swings idle PEs to whichever operation has
// ready inputs, so all PEs stay busy until the work runs out
// (Sec. V-C: "there exists no pipeline stalls as the swing PEs design
// can effectively avoid dependency waiting").
func Dynamic(w Workload, totalPEs int) Result {
	if totalPEs < 1 {
		panic("sched: need ≥ 1 PE")
	}
	ideal := ceilDiv(w.Total(), int64(totalPEs))
	cycles := int64(float64(ideal) * (1 + SwingOverhead))
	if w.Total() > 0 && cycles < 1 {
		cycles = 1
	}
	return finish(w, cycles, totalPEs)
}

func finish(w Workload, cycles int64, totalPEs int) Result {
	r := Result{Cycles: cycles}
	if cycles > 0 && totalPEs > 0 {
		r.Utilization = float64(w.Total()) / (float64(cycles) * float64(totalPEs))
	}
	return r
}

func ceilDiv(a, b int64) int64 {
	if b <= 0 {
		panic("sched: division by non-positive PEs")
	}
	return (a + b - 1) / b
}

// PhaseSchedule runs a sequence of dependent phases (e.g. the FW cells
// of a layer, then its BP cells) under a policy, summing cycles.
type Policy int

// The two allocation policies.
const (
	PolicyStatic Policy = iota
	PolicyDynamic
)

// RunPhases schedules each phase in order and returns total cycles and
// aggregate utilization. alloc is used only by PolicyStatic.
func RunPhases(phases []Workload, policy Policy, alloc Alloc, totalPEs int) Result {
	var total Workload
	var cycles int64
	for _, ph := range phases {
		var r Result
		switch policy {
		case PolicyStatic:
			r = Static(ph, alloc, totalPEs)
		case PolicyDynamic:
			r = Dynamic(ph, totalPEs)
		default:
			panic(fmt.Sprintf("sched: unknown policy %d", policy))
		}
		cycles += r.Cycles
		total = total.Add(ph)
	}
	return finish(total, cycles, totalPEs)
}
