// Package accum implements η-LSTM's adder-based streaming accumulator
// (paper Sec. V-B, Fig. 11, Table III): a floating-point adder with a
// multi-cycle pipeline that nevertheless accepts one streaming input
// per cycle by accumulating into partial sums and merging them when the
// stream ends.
//
// A conventional FP accumulator needs dedicated single-cycle feedback
// logic (the Xilinx Accumulator IP converts to 64-bit fixed point to
// achieve it — paper Table III); η-LSTM instead reuses the Omni-PE's
// ordinary pipelined adder. The cost is a short merge tail at the end
// of the stream, which the paper bounds at < 2.87 % for streams of at
// least 1024 values.
package accum

import "fmt"

// Streaming is the cycle-accurate adder-based accumulator model. One
// value may be pushed per cycle; Drain merges the remaining partials.
type Streaming struct {
	// AddLatency is the adder pipeline depth in cycles (8 in the
	// paper's design; Fig. 11 illustrates with 2).
	AddLatency int

	cycle    int64
	buffered *float32  // one unpaired stream input awaiting a partner
	partials []float32 // completed partial sums
	pipeline []addOp   // in-flight additions
	issued   int64     // total additions issued (for utilization stats)
}

type addOp struct {
	done int64
	val  float32
}

// NewStreaming returns an accumulator with the given adder latency.
func NewStreaming(addLatency int) *Streaming {
	if addLatency < 1 {
		panic(fmt.Sprintf("accum: adder latency %d must be ≥ 1", addLatency))
	}
	return &Streaming{AddLatency: addLatency}
}

// Cycle returns the current cycle (number of Push/Idle steps so far).
func (s *Streaming) Cycle() int64 { return s.cycle }

// retire moves finished pipeline entries to the partial queue. Called
// at the start of each cycle.
func (s *Streaming) retire() {
	keep := s.pipeline[:0]
	for _, op := range s.pipeline {
		if op.done <= s.cycle {
			s.partials = append(s.partials, op.val)
		} else {
			keep = append(keep, op)
		}
	}
	s.pipeline = keep
}

func (s *Streaming) issue(a, b float32) {
	s.pipeline = append(s.pipeline, addOp{done: s.cycle + int64(s.AddLatency), val: a + b})
	s.issued++
}

// Push advances one cycle and feeds the next stream value. The
// controller policy matches Fig. 11: a new input pairs with the
// previously buffered input if one exists, otherwise with a ready
// partial sum, otherwise it waits buffered.
func (s *Streaming) Push(v float32) {
	s.cycle++
	s.retire()
	switch {
	case s.buffered != nil:
		a := *s.buffered
		s.buffered = nil
		s.issue(a, v)
	case len(s.partials) > 0:
		p := s.partials[0]
		s.partials = s.partials[1:]
		s.issue(p, v)
	default:
		v := v
		s.buffered = &v
	}
}

// step advances one cycle with no new input, pairing partials.
func (s *Streaming) step() {
	s.cycle++
	s.retire()
	switch {
	case s.buffered != nil && len(s.partials) > 0:
		a := *s.buffered
		s.buffered = nil
		p := s.partials[0]
		s.partials = s.partials[1:]
		s.issue(a, p)
	case len(s.partials) >= 2:
		a, b := s.partials[0], s.partials[1]
		s.partials = s.partials[2:]
		s.issue(a, b)
	}
}

// Drain runs the merge tail and returns the final sum and the total
// cycle count. An empty stream sums to 0.
func (s *Streaming) Drain() (sum float32, cycles int64) {
	for {
		inFlight := len(s.pipeline)
		nPart := len(s.partials)
		buf := 0
		if s.buffered != nil {
			buf = 1
		}
		remaining := inFlight + nPart + buf
		if remaining == 0 {
			return 0, s.cycle
		}
		if remaining == 1 && inFlight == 0 {
			if buf == 1 {
				return *s.buffered, s.cycle
			}
			return s.partials[0], s.cycle
		}
		s.step()
	}
}

// Accumulate sums values through the streaming model, returning the
// sum and total cycles — the top-level measurement of Table III's
// latency column.
func Accumulate(values []float32, addLatency int) (sum float32, cycles int64) {
	s := NewStreaming(addLatency)
	for _, v := range values {
		s.Push(v)
	}
	return s.Drain()
}

// IdealCycles returns the cycle count of a dedicated single-cycle-
// feedback accumulator (the Xilinx IP behaviour) for n inputs: one per
// cycle plus its fixed pipeline latency.
func IdealCycles(n int, ipLatency int) int64 {
	if n == 0 {
		return 0
	}
	return int64(n) + int64(ipLatency)
}

// Overhead returns the streaming design's relative latency overhead
// versus the ideal accumulator for n inputs — the quantity the paper
// bounds at < 2.87 % for n ≥ 1024 (Sec. VI-B5).
func Overhead(n, addLatency, ipLatency int) float64 {
	if n == 0 {
		return 0
	}
	vals := make([]float32, n)
	_, c := Accumulate(vals, addLatency)
	ideal := IdealCycles(n, ipLatency)
	return float64(c-ideal) / float64(ideal)
}
