package accum

// Resources models the FPGA cost of an accumulator design — the
// LUT/FF/power/latency comparison of paper Table III. The per-primitive
// costs are calibrated against the paper's post-synthesis numbers on
// the Xilinx Virtex UltraScale+ VCU128 at 500 MHz; the package exposes
// both totals and the primitive breakdown so ablations can vary one
// component.
type Resources struct {
	LUT int
	FF  int
	// Dynamic power in watts, split as Vivado Power Analysis reports it.
	ClockPower  float64
	SignalPower float64
	LogicPower  float64
	// PipelineLatency is the design's result latency in cycles for the
	// reference 32-value stream Table III measures.
	PipelineLatency int
}

// TotalPower returns the summed dynamic power.
func (r Resources) TotalPower() float64 { return r.ClockPower + r.SignalPower + r.LogicPower }

// Primitive cost table (LUT, FF) calibrated to UltraScale+ synthesis:
// a single-precision fabric adder, the fixed-point datapath the Xilinx
// IP builds, and the small controller/queue overheads.
const (
	fp32AdderLUT = 383 // pipelined single-precision adder
	fp32AdderFF  = 512

	ctrlLUT = 80 // partial-sum controller + MUXes of our design
	ctrlFF  = 96

	fixed64PathLUT = 438 // the IP's 32-bit float → 64-bit fixed datapath
	fixed64PathFF  = 457
)

// XilinxIP returns the resource model of the Xilinx Accumulator IP
// v12.0 (Table III row 1): it converts the FP32 stream into 64-bit
// fixed point to get single-cycle feedback, paying a wider datapath.
func XilinxIP() Resources {
	return Resources{
		LUT:             fp32AdderLUT + fixed64PathLUT, // 821
		FF:              fp32AdderFF + fixed64PathFF,   // 969
		ClockPower:      0.026,
		SignalPower:     0.031,
		LogicPower:      0.043,
		PipelineLatency: 20,
	}
}

// AdderBased returns the resource model of η-LSTM's streaming
// adder-based design (Table III row 2): the plain FP32 adder plus the
// partial-sum controller. The narrower datapath cuts LUT/FF and logic
// power; the merge tail raises reference-stream latency to 50 cycles.
func AdderBased() Resources {
	return Resources{
		LUT:             fp32AdderLUT + ctrlLUT, // 463
		FF:              fp32AdderFF + ctrlFF,   // 608
		ClockPower:      0.014,
		SignalPower:     0.039,
		LogicPower:      0.030,
		PipelineLatency: 50,
	}
}

// Savings summarizes design B relative to design A as fractional
// reductions (positive = B is cheaper).
type Savings struct {
	LUT     float64
	FF      float64
	Power   float64
	Latency float64 // negative when B is slower
}

// Compare returns the savings of b relative to a.
func Compare(a, b Resources) Savings {
	frac := func(x, y float64) float64 {
		if x == 0 {
			return 0
		}
		return 1 - y/x
	}
	return Savings{
		LUT:     frac(float64(a.LUT), float64(b.LUT)),
		FF:      frac(float64(a.FF), float64(b.FF)),
		Power:   frac(a.TotalPower(), b.TotalPower()),
		Latency: frac(float64(a.PipelineLatency), float64(b.PipelineLatency)),
	}
}
