package accum

import (
	"math"
	"testing"
	"testing/quick"

	"etalstm/internal/rng"
)

func TestAccumulateCorrectSum(t *testing.T) {
	vals := []float32{1, 2, 3, 4, 5, 6, 7, 8}
	sum, _ := Accumulate(vals, 2)
	if sum != 36 {
		t.Fatalf("sum: %v", sum)
	}
}

// TestFig11TimingChart reproduces the paper's Fig. 11 exactly: 8 values
// through a 2-cycle adder complete at cycle 12.
func TestFig11TimingChart(t *testing.T) {
	vals := []float32{1, 2, 4, 8, 16, 32, 64, 128} // "A".."H"
	sum, cycles := Accumulate(vals, 2)
	if sum != 255 {
		t.Fatalf("sum: %v", sum)
	}
	if cycles != 12 {
		t.Fatalf("Fig. 11: 8 values @ 2-cycle adder must finish at cycle 12, got %d", cycles)
	}
}

func TestEmptyStream(t *testing.T) {
	sum, cycles := Accumulate(nil, 8)
	if sum != 0 || cycles != 0 {
		t.Fatalf("empty: %v %d", sum, cycles)
	}
}

func TestSingleValue(t *testing.T) {
	sum, cycles := Accumulate([]float32{42}, 8)
	if sum != 42 {
		t.Fatalf("sum: %v", sum)
	}
	if cycles != 1 {
		t.Fatalf("single value should take 1 cycle, got %d", cycles)
	}
}

func TestTwoValues(t *testing.T) {
	sum, cycles := Accumulate([]float32{1, 2}, 8)
	if sum != 3 {
		t.Fatalf("sum: %v", sum)
	}
	// Issue at cycle 2, result after the 8-cycle adder latency.
	if cycles != 10 {
		t.Fatalf("two values @ 8-cycle adder: got %d want 10", cycles)
	}
}

func TestStreamingOneInputPerCycle(t *testing.T) {
	// The design's whole point: input acceptance never stalls — after
	// n pushes the model's clock reads exactly n.
	s := NewStreaming(8)
	for i := 0; i < 100; i++ {
		s.Push(1)
		if s.Cycle() != int64(i+1) {
			t.Fatalf("input stalled at cycle %d", s.Cycle())
		}
	}
}

// TestOverheadBoundPaper reproduces Table III's latency discussion: the
// streaming design's overhead versus the Xilinx IP is below 2.87 % for
// streams of ≥ 1024 inputs with the paper's 8-cycle adder.
func TestOverheadBoundPaper(t *testing.T) {
	for _, n := range []int{1024, 2048, 4096} {
		ov := Overhead(n, 8, 20)
		if ov >= 0.0287 {
			t.Errorf("n=%d: overhead %.4f ≥ 2.87%%", n, ov)
		}
		if ov < 0 {
			t.Errorf("n=%d: negative overhead %.4f (model broken)", n, ov)
		}
	}
}

func TestOverheadLargerForShortStreams(t *testing.T) {
	short := Overhead(32, 8, 20)
	long := Overhead(4096, 8, 20)
	if short <= long {
		t.Fatalf("merge tail must hurt short streams more: %v vs %v", short, long)
	}
}

func TestIdealCycles(t *testing.T) {
	if IdealCycles(0, 20) != 0 {
		t.Fatal("empty ideal")
	}
	if IdealCycles(100, 20) != 120 {
		t.Fatalf("IdealCycles: %d", IdealCycles(100, 20))
	}
}

func TestNewStreamingValidates(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewStreaming(0)
}

// Property: the streaming accumulator sums correctly for any stream and
// any adder latency 1..12.
func TestPropertySumCorrectness(t *testing.T) {
	f := func(seed uint64, latRaw uint8, nRaw uint16) bool {
		r := rng.New(seed)
		lat := 1 + int(latRaw)%12
		n := int(nRaw) % 500
		vals := make([]float32, n)
		var want float64
		for i := range vals {
			vals[i] = r.Uniform(-1, 1)
			want += float64(vals[i])
		}
		got, cycles := Accumulate(vals, lat)
		if n > 0 && cycles < int64(n) {
			return false // cannot finish before consuming the stream
		}
		return math.Abs(float64(got)-want) < 1e-3
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Property: total cycles are n plus a merge tail bounded by
// O(addLatency · log2(n)) — the design's latency guarantee.
func TestPropertyTailBound(t *testing.T) {
	f := func(nRaw uint16, latRaw uint8) bool {
		n := 2 + int(nRaw)%2000
		lat := 1 + int(latRaw)%12
		_, cycles := Accumulate(make([]float32, n), lat)
		tail := cycles - int64(n)
		bound := int64(lat) * int64(3+log2ceil(n))
		return tail >= 0 && tail <= bound
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func log2ceil(n int) int {
	k := 0
	for v := 1; v < n; v <<= 1 {
		k++
	}
	return k
}

func TestTableIIIResources(t *testing.T) {
	ip := XilinxIP()
	ours := AdderBased()
	if ip.LUT != 821 || ip.FF != 969 {
		t.Fatalf("Xilinx IP resources: %+v", ip)
	}
	if ours.LUT != 463 || ours.FF != 608 {
		t.Fatalf("adder-based resources: %+v", ours)
	}
	if math.Abs(ip.TotalPower()-0.1) > 1e-9 {
		t.Fatalf("IP power: %v", ip.TotalPower())
	}
	if math.Abs(ours.TotalPower()-0.083) > 1e-9 {
		t.Fatalf("our power: %v", ours.TotalPower())
	}
}

// TestTableIIISavings asserts the paper's headline comparisons: 43.61 %
// LUT, 37.25 % FF and 17 % power savings, with the IP faster on the
// reference stream.
func TestTableIIISavings(t *testing.T) {
	s := Compare(XilinxIP(), AdderBased())
	if math.Abs(s.LUT-0.4361) > 0.005 {
		t.Errorf("LUT savings %.4f, paper 43.61%%", s.LUT)
	}
	if math.Abs(s.FF-0.3725) > 0.005 {
		t.Errorf("FF savings %.4f, paper 37.25%%", s.FF)
	}
	if math.Abs(s.Power-0.17) > 0.005 {
		t.Errorf("power savings %.4f, paper 17%%", s.Power)
	}
	if s.Latency >= 0 {
		t.Errorf("our design must be slower on the reference stream: %v", s.Latency)
	}
}
