package sim

import (
	"testing"
	"testing/quick"
)

func TestEventOrdering(t *testing.T) {
	var e Engine
	var order []int
	e.At(5, func() { order = append(order, 5) })
	e.At(1, func() { order = append(order, 1) })
	e.At(3, func() { order = append(order, 3) })
	final := e.Run()
	if final != 5 {
		t.Fatalf("final cycle: %d", final)
	}
	if len(order) != 3 || order[0] != 1 || order[1] != 3 || order[2] != 5 {
		t.Fatalf("order: %v", order)
	}
}

func TestSameCycleFIFO(t *testing.T) {
	var e Engine
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		e.At(7, func() { order = append(order, i) })
	}
	e.Run()
	for i, v := range order {
		if v != i {
			t.Fatalf("same-cycle events must run FIFO: %v", order)
		}
	}
}

func TestEventsScheduleEvents(t *testing.T) {
	var e Engine
	hits := 0
	var chain func()
	chain = func() {
		hits++
		if hits < 5 {
			e.After(2, chain)
		}
	}
	e.At(0, chain)
	final := e.Run()
	if hits != 5 || final != 8 {
		t.Fatalf("hits=%d final=%d", hits, final)
	}
}

func TestPastSchedulingPanics(t *testing.T) {
	var e Engine
	e.At(10, func() {
		defer func() {
			if recover() == nil {
				t.Error("expected panic for past scheduling")
			}
		}()
		e.At(5, func() {})
	})
	e.Run()
}

func TestRunUntil(t *testing.T) {
	var e Engine
	ran := 0
	e.At(3, func() { ran++ })
	e.At(10, func() { ran++ })
	drained := e.RunUntil(5)
	if drained || ran != 1 || e.Now() != 5 || e.Pending() != 1 {
		t.Fatalf("RunUntil: drained=%v ran=%d now=%d pending=%d", drained, ran, e.Now(), e.Pending())
	}
	if !e.RunUntil(20) || ran != 2 {
		t.Fatal("second RunUntil must drain")
	}
}

func TestResourceSerializes(t *testing.T) {
	r := &Resource{CyclesPerItem: 4}
	if got := r.Reserve(0); got != 4 {
		t.Fatalf("first: %d", got)
	}
	// Arriving while busy queues behind.
	if got := r.Reserve(1); got != 8 {
		t.Fatalf("second: %d", got)
	}
	// Arriving after idle starts immediately.
	if got := r.Reserve(100); got != 104 {
		t.Fatalf("third: %d", got)
	}
}

func TestResourceReserveN(t *testing.T) {
	r := &Resource{CyclesPerItem: 2}
	if got := r.ReserveN(0, 10); got != 20 {
		t.Fatalf("ReserveN: %d", got)
	}
	if r.FreeAt() != 20 || r.BusyCycles() != 20 {
		t.Fatal("FreeAt/BusyCycles")
	}
}

// Property: Run returns the max scheduled cycle and executes every
// event exactly once.
func TestPropertyAllEventsRun(t *testing.T) {
	f := func(cyclesRaw []uint16) bool {
		var e Engine
		count := 0
		var maxC int64
		for _, c := range cyclesRaw {
			cc := int64(c)
			if cc > maxC {
				maxC = cc
			}
			e.At(cc, func() { count++ })
		}
		final := e.Run()
		if len(cyclesRaw) == 0 {
			return final == 0 && count == 0
		}
		return count == len(cyclesRaw) && final == maxC
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: a serial resource's completion times are strictly
// increasing and gaps are at least CyclesPerItem.
func TestPropertyResourceMonotone(t *testing.T) {
	f := func(arrivals []uint16) bool {
		r := &Resource{CyclesPerItem: 3}
		var prev int64 = -1
		at := int64(0)
		for _, a := range arrivals {
			at += int64(a % 10)
			done := r.Reserve(at)
			if prev >= 0 && done-prev < 3 {
				return false
			}
			prev = done
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
