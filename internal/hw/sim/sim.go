// Package sim provides the small discrete-event kernel under the
// η-LSTM hardware models: a cycle-granular event queue plus helper
// types for modeling pipelined, bandwidth-limited resources.
//
// The accelerator models are hybrid (DESIGN.md §6): micro components
// (the streaming accumulator, the Omni-PE datapath) step cycle by
// cycle and are verified against the paper's timing charts; macro
// components (cell scheduling, DMA transfers) run as events over
// cycle spans. This package serves the latter.
package sim

import (
	"container/heap"
	"fmt"
)

// Event is a callback scheduled at an absolute cycle.
type Event struct {
	Cycle int64
	Fn    func()

	seq int // tie-break: FIFO among same-cycle events
	idx int
}

type eventQueue []*Event

func (q eventQueue) Len() int { return len(q) }
func (q eventQueue) Less(i, j int) bool {
	if q[i].Cycle != q[j].Cycle {
		return q[i].Cycle < q[j].Cycle
	}
	return q[i].seq < q[j].seq
}
func (q eventQueue) Swap(i, j int) {
	q[i], q[j] = q[j], q[i]
	q[i].idx, q[j].idx = i, j
}
func (q *eventQueue) Push(x any) {
	e := x.(*Event)
	e.idx = len(*q)
	*q = append(*q, e)
}
func (q *eventQueue) Pop() any {
	old := *q
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*q = old[:n-1]
	return e
}

// Engine is a discrete-event simulator. The zero value is ready to use.
type Engine struct {
	now   int64
	seq   int
	queue eventQueue
}

// Now returns the current simulation cycle.
func (e *Engine) Now() int64 { return e.now }

// At schedules fn to run at absolute cycle c (panics if c is in the
// past — hardware cannot act retroactively).
func (e *Engine) At(c int64, fn func()) {
	if c < e.now {
		panic(fmt.Sprintf("sim: scheduling at cycle %d before now %d", c, e.now))
	}
	e.seq++
	heap.Push(&e.queue, &Event{Cycle: c, Fn: fn, seq: e.seq})
}

// After schedules fn delay cycles from now.
func (e *Engine) After(delay int64, fn func()) { e.At(e.now+delay, fn) }

// Run processes events until the queue drains, returning the final
// cycle.
func (e *Engine) Run() int64 {
	for e.queue.Len() > 0 {
		ev := heap.Pop(&e.queue).(*Event)
		e.now = ev.Cycle
		ev.Fn()
	}
	return e.now
}

// RunUntil processes events up to and including cycle limit; remaining
// events stay queued. It reports whether the queue drained.
func (e *Engine) RunUntil(limit int64) bool {
	for e.queue.Len() > 0 {
		if e.queue[0].Cycle > limit {
			e.now = limit
			return false
		}
		ev := heap.Pop(&e.queue).(*Event)
		e.now = ev.Cycle
		ev.Fn()
	}
	return true
}

// Pending returns the number of queued events.
func (e *Engine) Pending() int { return e.queue.Len() }

// Resource models a unit that serves requests serially at a fixed
// per-item cycle cost (a bus, a LUT unit, a DMA port). Reserve returns
// the cycle at which a request arriving at cycle `at` completes, and
// advances the resource's busy horizon.
type Resource struct {
	// CyclesPerItem is the service time of one request.
	CyclesPerItem int64
	freeAt        int64
}

// Reserve books one request arriving at cycle at; returns completion.
func (r *Resource) Reserve(at int64) int64 {
	start := at
	if r.freeAt > start {
		start = r.freeAt
	}
	r.freeAt = start + r.CyclesPerItem
	return r.freeAt
}

// ReserveN books n back-to-back requests arriving at cycle at.
func (r *Resource) ReserveN(at, n int64) int64 {
	start := at
	if r.freeAt > start {
		start = r.freeAt
	}
	r.freeAt = start + n*r.CyclesPerItem
	return r.freeAt
}

// FreeAt returns the cycle the resource next becomes idle.
func (r *Resource) FreeAt() int64 { return r.freeAt }

// BusyCycles returns the total cycles the resource has been booked.
func (r *Resource) BusyCycles() int64 { return r.freeAt }
