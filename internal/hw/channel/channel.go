package channel

import (
	"fmt"

	"etalstm/internal/hw/omnipe"
	"etalstm/internal/tensor"
)

// PEsPerChannel is the paper's channel width (Sec. V-D: "one channel is
// composed of 32 Omni-PEs and a channel controller").
const PEsPerChannel = 32

// Channel models one SIMT channel: 32 Omni-PEs driven by a channel
// controller that stripes vector work across them, a broadcast queue
// for shared operands, and the activation module. Operations return
// cycle counts assuming all PEs of the channel run in lockstep on
// equal stripes (the controller pads the last stripe).
type Channel struct {
	PEs        []*omnipe.PE
	Activation *ActivationModule

	broadcasts int64 // broadcast-queue pushes (shared operand reuse)
}

// New builds a channel with the paper's 32 PEs and the given PE
// pipeline configuration.
func New(cfg omnipe.Config) *Channel {
	c := &Channel{Activation: NewActivationModule()}
	for i := 0; i < PEsPerChannel; i++ {
		c.PEs = append(c.PEs, omnipe.New(cfg))
	}
	return c
}

// Broadcasts returns how many operands went through the broadcast
// queue (outer-product scalars shared by all PEs).
func (c *Channel) Broadcasts() int64 { return c.broadcasts }

// stripe splits n elements across the PEs: ceil(n / numPEs) per PE.
func (c *Channel) stripeLen(n int) int {
	return (n + len(c.PEs) - 1) / len(c.PEs)
}

// MatVec computes dst = m · v (m: rows×cols, v: len cols, dst: len
// rows). Rows distribute across PEs; each PE performs a streaming dot
// product. Returns the channel cycles: the slowest PE's busy time for
// its assigned rows.
func (c *Channel) MatVec(dst []float32, m *tensor.Matrix, v []float32) int64 {
	if len(v) != m.Cols || len(dst) != m.Rows {
		panic(fmt.Sprintf("channel: MatVec shapes m=%v v=%d dst=%d", m, len(v), len(dst)))
	}
	perPE := make([]int64, len(c.PEs))
	for r := 0; r < m.Rows; r++ {
		pe := r % len(c.PEs)
		sum, cycles := c.PEs[pe].DotProduct(m.Row(r), v)
		dst[r] = sum
		perPE[pe] += cycles
	}
	return maxOf(perPE)
}

// EWMul computes dst = a ⊙ b striped across the PEs.
func (c *Channel) EWMul(dst, a, b []float32) int64 {
	if len(a) != len(b) || len(dst) != len(a) {
		panic("channel: EWMul length mismatch")
	}
	return c.striped(len(a), func(pe *omnipe.PE, lo, hi int) int64 {
		return pe.EWMul(dst[lo:hi], a[lo:hi], b[lo:hi])
	})
}

// EWAdd computes dst = a + b striped across the PEs.
func (c *Channel) EWAdd(dst, a, b []float32) int64 {
	if len(a) != len(b) || len(dst) != len(a) {
		panic("channel: EWAdd length mismatch")
	}
	return c.striped(len(a), func(pe *omnipe.PE, lo, hi int) int64 {
		return pe.EWAdd(dst[lo:hi], a[lo:hi], b[lo:hi])
	})
}

// Outer accumulates dst += u ⊗ v (dst: len(u)×len(v)). Each u element
// broadcasts to the PEs through the broadcast queue; rows stripe across
// PEs.
func (c *Channel) Outer(dst *tensor.Matrix, u, v []float32) int64 {
	if dst.Rows != len(u) || dst.Cols != len(v) {
		panic(fmt.Sprintf("channel: Outer shapes dst=%v u=%d v=%d", dst, len(u), len(v)))
	}
	perPE := make([]int64, len(c.PEs))
	row := make([]float32, len(v))
	for r := 0; r < len(u); r++ {
		pe := r % len(c.PEs)
		c.broadcasts++
		cycles := c.PEs[pe].OuterRow(row, u[r], v)
		drow := dst.Row(r)
		for j := range drow {
			drow[j] += row[j]
		}
		perPE[pe] += cycles
	}
	return maxOf(perPE)
}

func (c *Channel) striped(n int, f func(pe *omnipe.PE, lo, hi int) int64) int64 {
	if n == 0 {
		return 0
	}
	stripe := c.stripeLen(n)
	var worst int64
	for i, pe := range c.PEs {
		lo := i * stripe
		if lo >= n {
			break
		}
		hi := lo + stripe
		if hi > n {
			hi = n
		}
		if cy := f(pe, lo, hi); cy > worst {
			worst = cy
		}
	}
	return worst
}

// Utilization returns mean PE busy cycles divided by the max — 1.0
// means perfectly balanced work.
func (c *Channel) Utilization() float64 {
	var sum, mx int64
	for _, pe := range c.PEs {
		b := pe.BusyCycles()
		sum += b
		if b > mx {
			mx = b
		}
	}
	if mx == 0 {
		return 0
	}
	return float64(sum) / float64(int64(len(c.PEs))*mx)
}

func maxOf(xs []int64) int64 {
	var mx int64
	for _, x := range xs {
		if x > mx {
			mx = x
		}
	}
	return mx
}
