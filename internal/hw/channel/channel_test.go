package channel

import (
	"math"
	"testing"
	"testing/quick"

	"etalstm/internal/hw/omnipe"
	"etalstm/internal/rng"
	"etalstm/internal/tensor"
)

func TestLUTSigmoidAccuracy(t *testing.T) {
	m := NewActivationModule()
	if err := m.Sigmoid.MaxError(10000); err > 1e-3 {
		t.Fatalf("sigmoid LUT max error %v", err)
	}
	if err := m.Tanh.MaxError(10000); err > 1e-3 {
		t.Fatalf("tanh LUT max error %v", err)
	}
}

func TestLUTSaturation(t *testing.T) {
	m := NewActivationModule()
	if got := m.Sigmoid.At(100); math.Abs(float64(got-1)) > 1e-3 {
		t.Fatalf("sigmoid(100)=%v", got)
	}
	if got := m.Sigmoid.At(-100); math.Abs(float64(got)) > 1e-3 {
		t.Fatalf("sigmoid(-100)=%v", got)
	}
	if got := m.Tanh.At(50); math.Abs(float64(got-1)) > 1e-3 {
		t.Fatalf("tanh(50)=%v", got)
	}
}

func TestLUTValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewLUT(tensor.Sigmoid32, 8, 1)
}

func TestActivationModuleCycles(t *testing.T) {
	m := NewActivationModule()
	xs := make([]float32, 100)
	dst := make([]float32, 100)
	c := m.ApplySigmoid(dst, xs)
	if c != 100 {
		t.Fatalf("sigmoid unit is 1 value/cycle: %d", c)
	}
	c2 := m.ApplyTanh(dst, xs)
	if c2 != 100 || m.BusyCycles() != 200 {
		t.Fatalf("tanh cycles %d busy %d", c2, m.BusyCycles())
	}
}

func TestChannelHas32PEs(t *testing.T) {
	c := New(omnipe.Default())
	if len(c.PEs) != 32 {
		t.Fatalf("channel PEs: %d", len(c.PEs))
	}
}

func TestMatVecCorrect(t *testing.T) {
	c := New(omnipe.Default())
	r := rng.New(1)
	m := tensor.New(64, 48)
	m.RandInit(r, 1)
	v := make([]float32, 48)
	for i := range v {
		v[i] = r.Uniform(-1, 1)
	}
	dst := make([]float32, 64)
	cycles := c.MatVec(dst, m, v)
	if cycles <= 0 {
		t.Fatal("cycles must be positive")
	}
	for row := 0; row < 64; row++ {
		var want float64
		for j := 0; j < 48; j++ {
			want += float64(m.At(row, j)) * float64(v[j])
		}
		if math.Abs(float64(dst[row])-want) > 1e-3 {
			t.Fatalf("row %d: %v want %v", row, dst[row], want)
		}
	}
}

func TestMatVecParallelSpeedup(t *testing.T) {
	// 32 PEs must process a 64-row MatVec in roughly the time one PE
	// takes for 2 rows.
	c := New(omnipe.Default())
	m := tensor.New(64, 256)
	v := make([]float32, 256)
	dst := make([]float32, 64)
	cycles := c.MatVec(dst, m, v)
	single := omnipe.New(omnipe.Default())
	_, oneRow := single.DotProduct(m.Row(0), v)
	if cycles > 2*oneRow+16 {
		t.Fatalf("channel MatVec %d cycles, one-PE row %d", cycles, oneRow)
	}
}

func TestEWOps(t *testing.T) {
	c := New(omnipe.Default())
	n := 100
	a := make([]float32, n)
	b := make([]float32, n)
	for i := range a {
		a[i] = float32(i)
		b[i] = 2
	}
	dst := make([]float32, n)
	if cy := c.EWMul(dst, a, b); cy <= 0 {
		t.Fatal("EWMul cycles")
	}
	if dst[10] != 20 {
		t.Fatalf("EWMul: %v", dst[10])
	}
	if cy := c.EWAdd(dst, a, b); cy <= 0 {
		t.Fatal("EWAdd cycles")
	}
	if dst[10] != 12 {
		t.Fatalf("EWAdd: %v", dst[10])
	}
}

func TestOuterAccumulates(t *testing.T) {
	c := New(omnipe.Default())
	u := []float32{1, 2}
	v := []float32{3, 4, 5}
	dst := tensor.New(2, 3)
	dst.Fill(1)
	cycles := c.Outer(dst, u, v)
	if cycles <= 0 {
		t.Fatal("cycles")
	}
	if dst.At(0, 0) != 4 || dst.At(1, 2) != 11 {
		t.Fatalf("Outer: %v", dst.Data)
	}
	if c.Broadcasts() != 2 {
		t.Fatalf("broadcast queue pushes: %d", c.Broadcasts())
	}
}

func TestUtilizationBalanced(t *testing.T) {
	c := New(omnipe.Default())
	m := tensor.New(320, 64) // 10 rows per PE, perfectly balanced
	v := make([]float32, 64)
	dst := make([]float32, 320)
	c.MatVec(dst, m, v)
	if u := c.Utilization(); u < 0.95 {
		t.Fatalf("balanced MatVec utilization %v", u)
	}
}

func TestUtilizationZeroIdle(t *testing.T) {
	c := New(omnipe.Default())
	if c.Utilization() != 0 {
		t.Fatal("idle channel utilization must be 0")
	}
}

func TestShapePanics(t *testing.T) {
	c := New(omnipe.Default())
	for name, fn := range map[string]func(){
		"matvec": func() { c.MatVec(make([]float32, 3), tensor.New(2, 2), make([]float32, 2)) },
		"ewmul":  func() { c.EWMul(make([]float32, 2), make([]float32, 3), make([]float32, 3)) },
		"outer":  func() { c.Outer(tensor.New(2, 2), make([]float32, 3), make([]float32, 2)) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", name)
				}
			}()
			fn()
		}()
	}
}

// Property: channel MatVec agrees with tensor.MatMul on random inputs.
func TestPropertyMatVecMatchesTensor(t *testing.T) {
	f := func(seed uint64) bool {
		r := rng.New(seed)
		rows := 1 + int(seed%50)
		cols := 1 + int((seed>>8)%40)
		m := tensor.New(rows, cols)
		m.RandInit(r, 1)
		v := tensor.New(cols, 1)
		v.RandInit(r, 1)
		want := tensor.MatMul(nil, m, v)
		dst := make([]float32, rows)
		c := New(omnipe.Default())
		c.MatVec(dst, m, v.Data)
		for i := range dst {
			if math.Abs(float64(dst[i]-want.Data[i])) > 1e-3 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}
