// Package channel models η-LSTM's channel architecture (paper Sec. V-D,
// Fig. 13b): 32 Omni-PEs behind a channel controller with a broadcast
// queue, plus a shared activation module holding one lookup-table
// sigmoid unit and one tanh unit.
package channel

import (
	"math"

	"etalstm/internal/tensor"
)

// LUT implements the lookup-table activation units of the activation
// module (Sec. V-D: "we further adopt a lookup table design to avoid
// the complex logic design for either the sigmoid or hyperbolic tangent
// unit"). The table covers [-Range, Range] with linear interpolation
// between entries; inputs beyond the range clamp to the saturated
// values, exactly as the hardware would.
type LUT struct {
	Range   float32
	entries []float32
	f       func(float32) float32 // reference, for saturation values
}

// NewLUT builds a table of n+1 entries for f over [-rng, rng].
func NewLUT(f func(float32) float32, rng float32, n int) *LUT {
	if n < 2 {
		panic("channel: LUT needs at least 2 intervals")
	}
	l := &LUT{Range: rng, entries: make([]float32, n+1), f: f}
	for i := range l.entries {
		x := -rng + 2*rng*float32(i)/float32(n)
		l.entries[i] = f(x)
	}
	return l
}

// At evaluates the LUT with linear interpolation.
func (l *LUT) At(x float32) float32 {
	if x <= -l.Range {
		return l.entries[0]
	}
	if x >= l.Range {
		return l.entries[len(l.entries)-1]
	}
	n := len(l.entries) - 1
	pos := (x + l.Range) / (2 * l.Range) * float32(n)
	i := int(pos)
	if i >= n {
		i = n - 1
	}
	frac := pos - float32(i)
	return l.entries[i] + frac*(l.entries[i+1]-l.entries[i])
}

// MaxError measures the LUT's worst absolute error against its
// reference over a dense sweep — the design-validation number for the
// activation module's table size.
func (l *LUT) MaxError(samples int) float64 {
	var worst float64
	for i := 0; i <= samples; i++ {
		x := -l.Range + 2*l.Range*float32(i)/float32(samples)
		e := math.Abs(float64(l.At(x) - l.f(x)))
		if e > worst {
			worst = e
		}
	}
	return worst
}

// ActivationModule is the per-channel activation unit: one sigmoid LUT
// and one tanh LUT, each processing one value per cycle (Sec. V-D keeps
// the module small because "the workloads of activation operations are
// much lower than other operations").
type ActivationModule struct {
	Sigmoid *LUT
	Tanh    *LUT

	busyCycles int64
}

// DefaultTableBits is the log2 table size of each activation LUT
// (1024 entries ≈ 4 KiB of on-chip storage per unit, < 1e-3 max error).
const DefaultTableBits = 10

// NewActivationModule builds the module with the default tables.
func NewActivationModule() *ActivationModule {
	n := 1 << DefaultTableBits
	return &ActivationModule{
		Sigmoid: NewLUT(tensor.Sigmoid32, 8, n),
		Tanh:    NewLUT(tensor.Tanh32, 4, n),
	}
}

// ApplySigmoid evaluates the sigmoid LUT over xs into dst, returning
// the cycles consumed (one value per cycle through the single unit).
func (m *ActivationModule) ApplySigmoid(dst, xs []float32) int64 {
	for i, x := range xs {
		dst[i] = m.Sigmoid.At(x)
	}
	c := int64(len(xs))
	m.busyCycles += c
	return c
}

// ApplyTanh evaluates the tanh LUT over xs into dst. The tanh unit is
// independent of the sigmoid unit, so sigmoid and tanh streams overlap.
func (m *ActivationModule) ApplyTanh(dst, xs []float32) int64 {
	for i, x := range xs {
		dst[i] = m.Tanh.At(x)
	}
	c := int64(len(xs))
	m.busyCycles += c
	return c
}

// BusyCycles returns the module's cumulative busy time.
func (m *ActivationModule) BusyCycles() int64 { return m.busyCycles }
