// Package dma models η-LSTM's customized DMA module (paper Sec. V-D,
// Fig. 14): the compression module that near-zero-prunes sparse traffic
// into value+index (WT data / WT index) queues on the way out, the
// decoder module that uses the index queue to gather only the needed
// dense operands on the way in, and the bandwidth-limited I/O interface
// to scratchpad/HBM.
//
// The model is functional (real compression through internal/compress)
// plus cycle accounting: every transfer books time on the I/O port at
// the configured bytes-per-cycle and tallies traffic per category, so
// the architecture layer can overlap DMA with compute and the
// experiment layer can report Fig. 17-style movement.
package dma

import (
	"fmt"

	"etalstm/internal/compress"
	"etalstm/internal/hw/sim"
	"etalstm/internal/tensor"
)

// Category labels traffic for the Fig. 4/17 accounting.
type Category int

// The paper's three data-movement categories.
const (
	Weights Category = iota
	Activations
	Intermediates
	numCategories
)

// String implements fmt.Stringer.
func (c Category) String() string {
	switch c {
	case Weights:
		return "weights"
	case Activations:
		return "activations"
	case Intermediates:
		return "intermediates"
	}
	return fmt.Sprintf("Category(%d)", int(c))
}

// Config sets the DMA's I/O bandwidth and pruning threshold.
type Config struct {
	// BytesPerCycle is the I/O interface bandwidth. The paper's setup
	// is 224 GB/s at 500 MHz = 448 B/cycle per board.
	BytesPerCycle int64
	// Threshold is the compression module's near-zero cutoff (0 means
	// compress.DefaultThreshold).
	Threshold float32
}

// Default returns the paper's per-board configuration.
func Default() Config { return Config{BytesPerCycle: 448} }

func (c Config) threshold() float32 {
	if c.Threshold == 0 {
		return compress.DefaultThreshold
	}
	return c.Threshold
}

// DMA is one DMA module instance.
type DMA struct {
	cfg  Config
	port sim.Resource

	traffic [numCategories]int64
}

// New builds a DMA module.
func New(cfg Config) *DMA {
	if cfg.BytesPerCycle <= 0 {
		panic(fmt.Sprintf("dma: BytesPerCycle %d must be positive", cfg.BytesPerCycle))
	}
	return &DMA{cfg: cfg, port: sim.Resource{CyclesPerItem: 1}}
}

// Traffic returns the cumulative bytes moved in category c.
func (d *DMA) Traffic(c Category) int64 { return d.traffic[c] }

// TotalTraffic returns all bytes moved.
func (d *DMA) TotalTraffic() int64 {
	var t int64
	for _, v := range d.traffic {
		t += v
	}
	return t
}

// BusyCycles returns the I/O port's cumulative booked cycles.
func (d *DMA) BusyCycles() int64 { return d.port.BusyCycles() }

func (d *DMA) book(at, bytes int64, cat Category) int64 {
	d.traffic[cat] += bytes
	cycles := (bytes + d.cfg.BytesPerCycle - 1) / d.cfg.BytesPerCycle
	return d.port.ReserveN(at, cycles)
}

// WriteDense transfers a dense matrix out through the WT data queue,
// returning the completion cycle for a request issued at cycle at.
func (d *DMA) WriteDense(at int64, m *tensor.Matrix, cat Category) int64 {
	return d.book(at, m.Bytes(), cat)
}

// WriteSparse runs the compression module on m (identifying it as
// sparse traffic), emits value+index queues, and returns the sparse
// record plus the completion cycle. Only the compressed bytes transit
// the I/O interface — the mechanism behind MS1's movement reduction.
func (d *DMA) WriteSparse(at int64, m *tensor.Matrix, cat Category) (*compress.Sparse, int64) {
	s := compress.Encode(m, d.cfg.threshold())
	done := d.book(at, s.Bytes(), cat)
	return s, done
}

// ReadDense transfers bytes of dense data in through the RD data queue.
func (d *DMA) ReadDense(at, bytes int64, cat Category) int64 {
	return d.book(at, bytes, cat)
}

// ReadSparse transfers a sparse record back in (value + index queues)
// and decodes it for the channels.
func (d *DMA) ReadSparse(at int64, s *compress.Sparse, cat Category) (*tensor.Matrix, int64) {
	done := d.book(at, s.Bytes(), cat)
	return s.MustDecode(nil), done
}

// GatherDense models the decoder module's index-driven load (Fig. 14:
// "using the index information of the sparse operand to locate the
// corresponding address"): only the dense elements at the sparse
// record's surviving indices are fetched. Returns the gathered values
// (aligned with s.Indices) and the completion cycle.
func (d *DMA) GatherDense(at int64, dense []float32, s *compress.Sparse, cat Category) ([]float32, int64) {
	if len(dense) != s.Rows*s.Cols {
		panic(fmt.Sprintf("dma: GatherDense dense len %d vs record %dx%d",
			len(dense), s.Rows, s.Cols))
	}
	out := make([]float32, len(s.Indices))
	for i, idx := range s.Indices {
		out[i] = dense[idx]
	}
	done := d.book(at, int64(len(out))*4, cat)
	return out, done
}

// SavedBytes returns how many bytes GatherDense avoided versus a full
// dense load of the record's shape.
func SavedBytes(s *compress.Sparse) int64 {
	dense := int64(s.Rows) * int64(s.Cols) * 4
	return dense - int64(s.NNZ())*4
}
