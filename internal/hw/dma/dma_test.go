package dma

import (
	"testing"

	"etalstm/internal/compress"
	"etalstm/internal/rng"
	"etalstm/internal/tensor"
)

func TestWriteDenseTrafficAndCycles(t *testing.T) {
	d := New(Config{BytesPerCycle: 100})
	m := tensor.New(10, 10) // 400 bytes
	done := d.WriteDense(0, m, Weights)
	if done != 4 {
		t.Fatalf("400B at 100B/cycle: done at %d", done)
	}
	if d.Traffic(Weights) != 400 || d.TotalTraffic() != 400 {
		t.Fatalf("traffic: %d", d.Traffic(Weights))
	}
}

func TestPortSerializes(t *testing.T) {
	d := New(Config{BytesPerCycle: 100})
	m := tensor.New(10, 10)
	first := d.WriteDense(0, m, Weights)
	second := d.WriteDense(0, m, Activations)
	if second <= first {
		t.Fatal("I/O port must serialize concurrent transfers")
	}
	if d.BusyCycles() != 8 {
		t.Fatalf("busy cycles: %d", d.BusyCycles())
	}
}

func TestWriteSparseCompresses(t *testing.T) {
	r := rng.New(1)
	d := New(Default())
	m := tensor.New(64, 64)
	for i := range m.Data {
		if r.Float64() < 0.7 {
			m.Data[i] = r.Uniform(-0.05, 0.05) // below threshold
		} else {
			m.Data[i] = r.Uniform(0.5, 1)
		}
	}
	s, _ := d.WriteSparse(0, m, Intermediates)
	if s.Sparsity() < 0.6 {
		t.Fatalf("sparsity: %v", s.Sparsity())
	}
	if d.Traffic(Intermediates) != s.Bytes() {
		t.Fatal("sparse write must move only compressed bytes")
	}
	if d.Traffic(Intermediates) >= m.Bytes() {
		t.Fatal("compressed traffic must be below dense size")
	}
}

func TestReadSparseRoundtrip(t *testing.T) {
	r := rng.New(2)
	d := New(Default())
	m := tensor.New(16, 16)
	m.RandInit(r, 1)
	s, _ := d.WriteSparse(0, m, Intermediates)
	dec, done := d.ReadSparse(0, s, Intermediates)
	if done <= 0 {
		t.Fatal("read must take time")
	}
	// Decoded equals the pruned original.
	want := s.MustDecode(nil)
	if !dec.Equal(want, 0) {
		t.Fatal("ReadSparse decode mismatch")
	}
}

func TestGatherDense(t *testing.T) {
	d := New(Default())
	m := tensor.NewFromData(1, 6, []float32{0, 0.5, 0, -0.9, 0.01, 0.3})
	s := compress.Encode(m, 0.1)
	dense := []float32{10, 20, 30, 40, 50, 60}
	got, _ := d.GatherDense(0, dense, s, Activations)
	// Surviving indices: 1, 3, 5.
	if len(got) != 3 || got[0] != 20 || got[1] != 40 || got[2] != 60 {
		t.Fatalf("gather: %v", got)
	}
	if d.Traffic(Activations) != 12 {
		t.Fatalf("gather traffic: %d", d.Traffic(Activations))
	}
	if SavedBytes(s) != int64(6*4-3*4) {
		t.Fatalf("SavedBytes: %d", SavedBytes(s))
	}
}

func TestGatherDenseValidates(t *testing.T) {
	d := New(Default())
	s := compress.Encode(tensor.New(2, 2), 0.1)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	d.GatherDense(0, make([]float32, 3), s, Activations)
}

func TestCategoryAccountingSeparate(t *testing.T) {
	d := New(Default())
	d.ReadDense(0, 100, Weights)
	d.ReadDense(0, 200, Activations)
	d.ReadDense(0, 300, Intermediates)
	if d.Traffic(Weights) != 100 || d.Traffic(Activations) != 200 || d.Traffic(Intermediates) != 300 {
		t.Fatal("category accounting")
	}
	if d.TotalTraffic() != 600 {
		t.Fatal("total")
	}
}

func TestConfigValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New(Config{BytesPerCycle: 0})
}

func TestCategoryString(t *testing.T) {
	if Weights.String() != "weights" || Intermediates.String() != "intermediates" {
		t.Fatal("category strings")
	}
}
