package cellengine

import (
	"fmt"

	"etalstm/internal/compress"
	"etalstm/internal/lstm"
	"etalstm/internal/tensor"
)

// LayerResult is one unrolled layer executed forward on hardware.
type LayerResult struct {
	// H[t] and S[t] are the per-timestamp outputs.
	H, S []*tensor.Matrix
	// Store[t] holds the compressed P1 planes of cell t — the DRAM
	// image the BP pass will decode.
	Store [][6]*compress.Sparse
	// ComputeCycles and DMACycles total the per-cell costs. Cells are
	// sequential (context dependency, paper Sec. II), so compute
	// cycles sum; DMA overlaps with the next cell's compute, so the
	// layer's wall-clock is max(compute, dma) at the layer level.
	ComputeCycles int64
	DMACycles     int64
}

// WallCycles returns the layer's modeled wall-clock assuming DMA and
// compute overlap (the swing-channel + queue design of Sec. V-D).
func (r *LayerResult) WallCycles() int64 {
	if r.DMACycles > r.ComputeCycles {
		return r.DMACycles
	}
	return r.ComputeCycles
}

// ForwardLayer executes all SeqLen cells of one layer on the hardware
// under the MS1 reordered flow: each cell produces h/s plus compressed
// P1 planes. xs[t] is the layer input at timestamp t; h0/s0 the initial
// state (zero matrices for a fresh sequence).
func (e *Engine) ForwardLayer(p *lstm.Params, xs []*tensor.Matrix, h0, s0 *tensor.Matrix) (*LayerResult, error) {
	if len(xs) == 0 {
		return nil, fmt.Errorf("cellengine: empty layer input")
	}
	res := &LayerResult{
		H:     make([]*tensor.Matrix, len(xs)),
		S:     make([]*tensor.Matrix, len(xs)),
		Store: make([][6]*compress.Sparse, len(xs)),
	}
	h, s := h0, s0
	for t := range xs {
		cell, err := e.ForwardCell(p, xs[t], h, s)
		if err != nil {
			return nil, fmt.Errorf("cellengine: cell %d: %w", t, err)
		}
		res.H[t] = cell.H
		res.S[t] = cell.S
		res.Store[t] = cell.Compressed
		res.ComputeCycles += cell.ComputeCycles
		res.DMACycles += cell.DMACycles
		h, s = cell.H, cell.S
	}
	return res, nil
}

// LayerBPResult is one layer's backward pass executed on hardware.
type LayerBPResult struct {
	// DX[t] is the gradient passed to the layer below at timestamp t.
	DX []*tensor.Matrix
	// DH0 and DS0 propagate into the carried-in state.
	DH0, DS0      *tensor.Matrix
	ComputeCycles int64
	DMACycles     int64
}

// BackwardLayer runs the BP cells of a layer in reverse timestamp
// order from the compressed store, accumulating weight gradients into
// grads. dY[t] may be nil where no output gradient arrives.
func (e *Engine) BackwardLayer(p *lstm.Params, grads *lstm.Grads, fw *LayerResult, xs []*tensor.Matrix, h0 *tensor.Matrix, dY []*tensor.Matrix) (*LayerBPResult, error) {
	if len(xs) != len(fw.H) || len(dY) != len(fw.H) {
		return nil, fmt.Errorf("cellengine: BackwardLayer length mismatch xs=%d fw=%d dY=%d",
			len(xs), len(fw.H), len(dY))
	}
	res := &LayerBPResult{DX: make([]*tensor.Matrix, len(xs))}
	var dH, dS *tensor.Matrix
	for t := len(xs) - 1; t >= 0; t-- {
		hPrev := h0
		if t > 0 {
			hPrev = fw.H[t-1]
		}
		in := lstm.BPInput{DY: dY[t], DH: dH, DS: dS}
		bp, err := e.BackwardCell(p, grads, xs[t], hPrev, fw.Store[t], in)
		if err != nil {
			return nil, fmt.Errorf("cellengine: BP cell %d: %w", t, err)
		}
		res.DX[t] = bp.Out.DX
		res.ComputeCycles += bp.ComputeCycles
		res.DMACycles += bp.DMACycles
		dH, dS = bp.Out.DHPrev, bp.Out.DSPrev
	}
	res.DH0, res.DS0 = dH, dS
	return res, nil
}
