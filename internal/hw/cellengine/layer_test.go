package cellengine

import (
	"testing"

	"etalstm/internal/lstm"
	"etalstm/internal/reorder"
	"etalstm/internal/rng"
	"etalstm/internal/tensor"
)

func layerSetup(seed uint64, input, hidden, batch, steps int) (*lstm.Params, []*tensor.Matrix, *tensor.Matrix, *tensor.Matrix) {
	r := rng.New(seed)
	p := lstm.NewParams(input, hidden)
	p.Init(r)
	xs := make([]*tensor.Matrix, steps)
	for t := range xs {
		xs[t] = tensor.New(batch, input)
		xs[t].RandInit(r, 1)
	}
	return p, xs, tensor.New(batch, hidden), tensor.New(batch, hidden)
}

// TestForwardLayerMatchesSoftware: the whole-layer hardware FW pass
// must track the software unrolled layer within LUT tolerance, which
// compounds over timestamps through the recurrent state.
func TestForwardLayerMatchesSoftware(t *testing.T) {
	const steps = 5
	p, xs, h0, s0 := layerSetup(1, 8, 12, 4, steps)
	e := smallEngine()
	res, err := e.ForwardLayer(p, xs, h0, s0)
	if err != nil {
		t.Fatal(err)
	}
	h, s := h0, s0
	for t0 := 0; t0 < steps; t0++ {
		var cache *lstm.FWCache
		h, s, cache = lstm.Forward(nil, p, xs[t0], h, s)
		_ = cache
		// Tolerance grows with timestamp as the LUT error feeds back
		// through h and s.
		tol := float32(2e-3 * float64(t0+2))
		if !res.H[t0].Equal(h, tol) {
			t.Errorf("H[%d] diverges beyond %v", t0, tol)
		}
		if !res.S[t0].Equal(s, tol) {
			t.Errorf("S[%d] diverges beyond %v", t0, tol)
		}
	}
	if res.ComputeCycles <= 0 || res.DMACycles <= 0 {
		t.Fatal("layer cycles must be positive")
	}
	if res.WallCycles() < res.DMACycles || res.WallCycles() < res.ComputeCycles {
		t.Fatal("wall cycles must cover the slower of compute/DMA")
	}
}

// TestDMACyclesArePerCellDeltas: the I/O port serializes across cells,
// but each cell must report only its own transfer time — later cells'
// DMACycles must not absorb earlier cells' queueing (regression test
// for the absolute-vs-delta accounting bug).
func TestDMACyclesArePerCellDeltas(t *testing.T) {
	p, xs, h0, s0 := layerSetup(11, 8, 16, 4, 6)
	e := smallEngine()
	var perCell []int64
	h, s := h0, s0
	for t0 := range xs {
		cell, err := e.ForwardCell(p, xs[t0], h, s)
		if err != nil {
			t.Fatal(err)
		}
		perCell = append(perCell, cell.DMACycles)
		h, s = cell.H, cell.S
	}
	// Cells move similar compressed volumes; the last cell's reported
	// DMA time must stay within a small factor of the first's rather
	// than growing with the accumulated port history.
	if perCell[len(perCell)-1] > 3*perCell[0]+4 {
		t.Fatalf("DMA accounting grows across cells: %v", perCell)
	}
}

func TestForwardLayerEmptyInput(t *testing.T) {
	p, _, h0, s0 := layerSetup(2, 4, 4, 2, 1)
	e := smallEngine()
	if _, err := e.ForwardLayer(p, nil, h0, s0); err == nil {
		t.Fatal("expected error for empty input")
	}
}

// TestBackwardLayerMatchesSoftware: full-layer hardware BPTT from the
// compressed store must match the software BPTT run on the hardware's
// own (pruned, LUT-quantized) forward state.
func TestBackwardLayerMatchesSoftware(t *testing.T) {
	const steps, batch, hidden, input = 4, 3, 10, 6
	p, xs, h0, s0 := layerSetup(3, input, hidden, batch, steps)
	e := smallEngine()
	fw, err := e.ForwardLayer(p, xs, h0, s0)
	if err != nil {
		t.Fatal(err)
	}

	r := rng.New(30)
	dY := make([]*tensor.Matrix, steps)
	for t0 := range dY {
		dY[t0] = tensor.New(batch, hidden)
		dY[t0].RandInit(r, 1)
	}

	gHW := lstm.NewGrads(p)
	bp, err := e.BackwardLayer(p, gHW, fw, xs, h0, dY)
	if err != nil {
		t.Fatal(err)
	}

	// Software reference: BackwardFromP1 over the decoded planes with
	// the hardware's own H sequence as activations.
	gSW := lstm.NewGrads(p)
	var dH, dS *tensor.Matrix
	dxWant := make([]*tensor.Matrix, steps)
	for t0 := steps - 1; t0 >= 0; t0-- {
		p1 := &lstm.P1{
			Pf: fw.Store[t0][0].MustDecode(nil), Pi: fw.Store[t0][1].MustDecode(nil),
			Pc: fw.Store[t0][2].MustDecode(nil), Po: fw.Store[t0][3].MustDecode(nil),
			Ps: fw.Store[t0][4].MustDecode(nil), Pfs: fw.Store[t0][5].MustDecode(nil),
		}
		hPrev := h0
		if t0 > 0 {
			hPrev = fw.H[t0-1]
		}
		out := lstm.BackwardFromP1(nil, p, gSW, xs[t0], hPrev, p1, lstm.BPInput{DY: dY[t0], DH: dH, DS: dS})
		dxWant[t0] = out.DX
		dH, dS = out.DHPrev, out.DSPrev
	}

	const tol = 5e-4
	for t0 := range dxWant {
		if !bp.DX[t0].Equal(dxWant[t0], tol) {
			t.Errorf("DX[%d] diverges", t0)
		}
	}
	if !bp.DH0.Equal(dH, tol) || !bp.DS0.Equal(dS, tol) {
		t.Error("carried-in gradients diverge")
	}
	for g := lstm.Gate(0); g < lstm.NumGates; g++ {
		if !gHW.W[g].Equal(gSW.W[g], 1e-3) {
			t.Errorf("W[%v] diverges", g)
		}
	}
}

func TestBackwardLayerLengthValidation(t *testing.T) {
	p, xs, h0, s0 := layerSetup(4, 4, 6, 2, 3)
	e := smallEngine()
	fw, err := e.ForwardLayer(p, xs, h0, s0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.BackwardLayer(p, nil, fw, xs[:2], h0, make([]*tensor.Matrix, 3)); err == nil {
		t.Fatal("expected length-mismatch error")
	}
}

// TestLayerStoreCompresses: across a trained-ish layer the compressed
// store must be smaller than the dense P1 planes it encodes.
func TestLayerStoreCompresses(t *testing.T) {
	p, xs, h0, s0 := layerSetup(5, 16, 32, 8, 4)
	e := smallEngine()
	fw, err := e.ForwardLayer(p, xs, h0, s0)
	if err != nil {
		t.Fatal(err)
	}
	var compressed, dense int64
	for t0 := range fw.Store {
		for _, s := range fw.Store[t0] {
			compressed += s.Bytes()
			dense += int64(s.Rows) * int64(s.Cols) * 4
		}
	}
	if compressed >= dense {
		t.Fatalf("store must compress: %d vs %d", compressed, dense)
	}
	// Consistency with the reorder package's accounting.
	rec := reorder.Encode(&lstm.P1{
		Pf: fw.Store[0][0].MustDecode(nil), Pi: fw.Store[0][1].MustDecode(nil),
		Pc: fw.Store[0][2].MustDecode(nil), Po: fw.Store[0][3].MustDecode(nil),
		Ps: fw.Store[0][4].MustDecode(nil), Pfs: fw.Store[0][5].MustDecode(nil),
	}, reorder.Config{})
	var cellBytes int64
	for _, s := range fw.Store[0] {
		cellBytes += s.Bytes()
	}
	if rec.Bytes() != cellBytes {
		t.Fatalf("store bytes %d disagree with reorder accounting %d", cellBytes, rec.Bytes())
	}
}
