package cellengine

import (
	"math"
	"testing"

	"etalstm/internal/compress"
	"etalstm/internal/hw/dma"
	"etalstm/internal/hw/omnipe"
	"etalstm/internal/hw/sched"
	"etalstm/internal/lstm"
	"etalstm/internal/reorder"
	"etalstm/internal/rng"
	"etalstm/internal/tensor"
)

func testSetup(seed uint64, input, hidden, batch int) (*lstm.Params, *tensor.Matrix, *tensor.Matrix, *tensor.Matrix) {
	r := rng.New(seed)
	p := lstm.NewParams(input, hidden)
	p.Init(r)
	x := tensor.New(batch, input)
	h := tensor.New(batch, hidden)
	s := tensor.New(batch, hidden)
	x.RandInit(r, 1)
	h.RandInit(r, 0.5)
	s.RandInit(r, 0.5)
	return p, x, h, s
}

func smallEngine() *Engine {
	return New(Config{Channels: 4, PE: omnipe.Default(), DMA: dma.Default()})
}

// TestForwardMatchesSoftware: the hardware FW cell must reproduce the
// software cell up to the activation LUT error.
func TestForwardMatchesSoftware(t *testing.T) {
	p, x, h0, s0 := testSetup(1, 12, 16, 6)
	e := smallEngine()
	res, err := e.ForwardCell(p, x, h0, s0)
	if err != nil {
		t.Fatal(err)
	}
	hSW, sSW, p1SW := lstm.ForwardWithP1(nil, p, x, h0, s0)

	const tol = 5e-3 // LUT max error 1e-3, compounded through the EW chain
	if !res.H.Equal(hSW, tol) {
		t.Error("hardware H diverges from software")
	}
	if !res.S.Equal(sSW, tol) {
		t.Error("hardware S diverges from software")
	}
	hw := res.P1.Matrices()
	sw := p1SW.Matrices()
	for i := range hw {
		if !hw[i].Equal(sw[i], tol) {
			t.Errorf("P1 plane %d diverges", i)
		}
	}
}

func TestForwardCycleAccounting(t *testing.T) {
	p, x, h0, s0 := testSetup(2, 8, 16, 4)
	e := smallEngine()
	res, err := e.ForwardCell(p, x, h0, s0)
	if err != nil {
		t.Fatal(err)
	}
	if res.ComputeCycles <= 0 || res.DMACycles <= 0 {
		t.Fatalf("cycles: compute=%d dma=%d", res.ComputeCycles, res.DMACycles)
	}
	if e.Cycles() != res.ComputeCycles {
		t.Fatalf("engine cycle accumulation: %d vs %d", e.Cycles(), res.ComputeCycles)
	}
	// The dominant stage is the 2·H·(In+H) MACs per sample per gate;
	// with 4 samples on 4 channels and 32 PEs each the compute time
	// must be within a small factor of the analytic bound.
	macs := int64(4 * (8*16 + 16*16)) // per sample
	lower := macs / 32
	if res.ComputeCycles < lower {
		t.Fatalf("compute %d below the physical bound %d", res.ComputeCycles, lower)
	}
}

func TestForwardDMACompression(t *testing.T) {
	p, x, h0, s0 := testSetup(3, 16, 32, 8)
	e := smallEngine()
	res, err := e.ForwardCell(p, x, h0, s0)
	if err != nil {
		t.Fatal(err)
	}
	var compressedBytes int64
	for _, s := range res.Compressed {
		if s == nil {
			t.Fatal("missing compressed plane")
		}
		compressedBytes += s.Bytes()
	}
	if e.DMA().Traffic(dma.Intermediates) != compressedBytes {
		t.Fatal("DMA must move exactly the compressed bytes")
	}
	// The compressed planes decode to the pruned P1.
	dec := res.Compressed[0].MustDecode(nil)
	pruned := res.P1.Pf.Clone()
	rec := reorder.Encode(&lstm.P1{
		Pf: pruned, Pi: pruned, Pc: pruned, Po: pruned, Ps: pruned, Pfs: pruned,
	}, reorder.Config{})
	want := rec.Planes[0].MustDecode(nil)
	if !dec.Equal(want, 0) {
		t.Fatal("compressed plane must equal the pruned P1 plane")
	}
}

func TestForwardShapeValidation(t *testing.T) {
	p, _, h0, s0 := testSetup(4, 8, 16, 4)
	e := smallEngine()
	bad := tensor.New(4, 9)
	if _, err := e.ForwardCell(p, bad, h0, s0); err == nil {
		t.Fatal("expected shape error")
	}
}

// TestBackwardMatchesSoftware: the hardware BP cell, fed the DMA's
// decoded (pruned) P1 planes, must match software BackwardFromP1 on the
// same pruned inputs.
func TestBackwardMatchesSoftware(t *testing.T) {
	p, x, h0, s0 := testSetup(5, 12, 16, 6)
	e := smallEngine()
	fw, err := e.ForwardCell(p, x, h0, s0)
	if err != nil {
		t.Fatal(err)
	}
	r := rng.New(50)
	dy := tensor.New(6, 16)
	ds := tensor.New(6, 16)
	dy.RandInit(r, 1)
	ds.RandInit(r, 1)

	gHW := lstm.NewGrads(p)
	bp, err := e.BackwardCell(p, gHW, x, h0, fw.Compressed, lstm.BPInput{DY: dy, DS: ds})
	if err != nil {
		t.Fatal(err)
	}

	// Software reference on the identical pruned P1 planes.
	p1 := &lstm.P1{
		Pf: fw.Compressed[0].MustDecode(nil), Pi: fw.Compressed[1].MustDecode(nil),
		Pc: fw.Compressed[2].MustDecode(nil), Po: fw.Compressed[3].MustDecode(nil),
		Ps: fw.Compressed[4].MustDecode(nil), Pfs: fw.Compressed[5].MustDecode(nil),
	}
	gSW := lstm.NewGrads(p)
	outSW := lstm.BackwardFromP1(nil, p, gSW, x, h0, p1, lstm.BPInput{DY: dy, DS: ds})

	const tol = 1e-4
	if !bp.Out.DX.Equal(outSW.DX, tol) {
		t.Error("DX diverges")
	}
	if !bp.Out.DHPrev.Equal(outSW.DHPrev, tol) {
		t.Error("DHPrev diverges")
	}
	if !bp.Out.DSPrev.Equal(outSW.DSPrev, tol) {
		t.Error("DSPrev diverges")
	}
	for g := lstm.Gate(0); g < lstm.NumGates; g++ {
		if !gHW.W[g].Equal(gSW.W[g], tol) {
			t.Errorf("W[%v] diverges", g)
		}
		if !gHW.U[g].Equal(gSW.U[g], tol) {
			t.Errorf("U[%v] diverges", g)
		}
		for j := range gHW.B[g] {
			if math.Abs(float64(gHW.B[g][j]-gSW.B[g][j])) > tol {
				t.Errorf("B[%v][%d] diverges", g, j)
			}
		}
	}
	if bp.ComputeCycles <= 0 {
		t.Fatal("BP cycles must be positive")
	}
}

func TestBackwardMissingPlane(t *testing.T) {
	p, x, h0, _ := testSetup(6, 8, 16, 4)
	e := smallEngine()
	var empty [6]*compress.Sparse
	if _, err := e.BackwardCell(p, nil, x, h0, empty, lstm.BPInput{}); err == nil {
		t.Fatal("expected error for missing planes")
	}
}

// TestEndToEndTrainingStepOnHardware: one full gradient step computed
// entirely on the hardware models must reduce the cell's loss —
// the hardware stack can actually train.
func TestEndToEndTrainingStepOnHardware(t *testing.T) {
	const input, hidden, batch = 8, 12, 4
	p, x, h0, s0 := testSetup(7, input, hidden, batch)
	r := rng.New(60)
	target := tensor.New(batch, hidden)
	target.RandInit(r, 0.5)

	loss := func() float64 {
		h, _, _ := lstm.Forward(nil, p, x, h0, s0)
		var l float64
		for k := range h.Data {
			d := float64(h.Data[k] - target.Data[k])
			l += d * d
		}
		return l
	}

	before := loss()
	for step := 0; step < 25; step++ {
		e := smallEngine()
		fw, err := e.ForwardCell(p, x, h0, s0)
		if err != nil {
			t.Fatal(err)
		}
		dy := tensor.New(batch, hidden)
		for k := range dy.Data {
			dy.Data[k] = 2 * (fw.H.Data[k] - target.Data[k])
		}
		grads := lstm.NewGrads(p)
		if _, err := e.BackwardCell(p, grads, x, h0, fw.Compressed, lstm.BPInput{DY: dy}); err != nil {
			t.Fatal(err)
		}
		const lr = 0.05
		for g := lstm.Gate(0); g < lstm.NumGates; g++ {
			for i := range p.W[g].Data {
				p.W[g].Data[i] -= lr * grads.W[g].Data[i]
			}
			for i := range p.U[g].Data {
				p.U[g].Data[i] -= lr * grads.U[g].Data[i]
			}
			for i := range p.B[g] {
				p.B[g][i] -= lr * grads.B[g][i]
			}
		}
	}
	after := loss()
	if after >= before*0.8 {
		t.Fatalf("hardware training failed to descend: %v -> %v", before, after)
	}
}

// TestCyclesConsistentWithAnalyticModel cross-validates the two
// modeling layers: the functional cell engine's measured compute
// cycles must land within a small factor of the analytic scheduler's
// prediction for the same per-sample workload on one 32-PE channel.
// (The functional engine pays pipeline fills and stripe tails the
// analytic model amortizes away, so it runs somewhat slower, never
// faster.)
func TestCyclesConsistentWithAnalyticModel(t *testing.T) {
	const input, hidden, batch = 64, 128, 4
	p, x, h0, s0 := testSetup(10, input, hidden, batch)
	e := New(Config{Channels: batch, PE: omnipe.Default(), DMA: dma.Default()})
	res, err := e.ForwardCell(p, x, h0, s0)
	if err != nil {
		t.Fatal(err)
	}
	// Per-sample FW + P1 work on one channel (batch 1).
	ops := lstm.ForwardOps(input, hidden, 1).Add(lstm.P1Ops(hidden, 1))
	pred := sched.Dynamic(sched.FromOpCount(ops), 32)
	lo := pred.Cycles
	hi := int64(float64(pred.Cycles) * 3)
	if res.ComputeCycles < lo || res.ComputeCycles > hi {
		t.Fatalf("functional %d cycles outside [%d, %d] of the analytic model",
			res.ComputeCycles, lo, hi)
	}
}

func TestTransposedWeightsCached(t *testing.T) {
	p, x, h0, s0 := testSetup(8, 8, 8, 2)
	e := smallEngine()
	if _, err := e.ForwardCell(p, x, h0, s0); err != nil {
		t.Fatal(err)
	}
	if len(e.wT) != 1 {
		t.Fatal("weights must be cached after first use")
	}
	if _, err := e.ForwardCell(p, x, h0, s0); err != nil {
		t.Fatal(err)
	}
	if len(e.wT) != 1 {
		t.Fatal("cache must be reused")
	}
}

func TestConfigValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New(Config{Channels: 0})
}

// TestMoreChannelsFewerCycles: with more channels the same batch
// spreads wider and the per-cell compute time drops.
func TestMoreChannelsFewerCycles(t *testing.T) {
	p, x, h0, s0 := testSetup(9, 16, 32, 8)
	small := New(Config{Channels: 2, PE: omnipe.Default(), DMA: dma.Default()})
	big := New(Config{Channels: 8, PE: omnipe.Default(), DMA: dma.Default()})
	rs, err := small.ForwardCell(p, x, h0, s0)
	if err != nil {
		t.Fatal(err)
	}
	rb, err := big.ForwardCell(p, x, h0, s0)
	if err != nil {
		t.Fatal(err)
	}
	if rb.ComputeCycles >= rs.ComputeCycles {
		t.Fatalf("8 channels (%d cycles) must beat 2 channels (%d cycles)",
			rb.ComputeCycles, rs.ComputeCycles)
	}
}
