// Package cellengine executes complete LSTM training cells on the
// modeled η-LSTM hardware: the channels (Omni-PEs) perform the MatMul
// and element-wise stages, the per-channel activation modules evaluate
// the LUT sigmoid/tanh, and the customized DMA compresses the BP-EW-P1
// products on their way to memory. It is the integration layer that
// ties Figs. 12–14 together and is cross-validated against the software
// cell in internal/lstm — the hardware computes the same numbers (up to
// the documented LUT activation error) while accounting cycles.
package cellengine

import (
	"fmt"

	"etalstm/internal/compress"
	"etalstm/internal/hw/channel"
	"etalstm/internal/hw/dma"
	"etalstm/internal/hw/omnipe"
	"etalstm/internal/lstm"
	"etalstm/internal/tensor"
)

// Config sizes the engine.
type Config struct {
	// Channels is how many 32-PE channels participate.
	Channels int
	// PE is the Omni-PE pipeline configuration.
	PE omnipe.Config
	// DMA is the I/O configuration (bandwidth, pruning threshold).
	DMA dma.Config
}

// Default returns a one-board slice of the paper configuration
// (40 channels).
func Default() Config {
	return Config{Channels: 40, PE: omnipe.Default(), DMA: dma.Default()}
}

// Engine executes cells on modeled hardware. It is not safe for
// concurrent use; each goroutine should own an Engine.
type Engine struct {
	cfg      Config
	channels []*channel.Channel
	dma      *dma.DMA

	// wT/uT cache transposed weights per layer Params (the channels
	// compute per-sample mat-vec products against H×In row-major
	// matrices; real hardware stores weights pre-transposed in the
	// scratchpad).
	wT map[*lstm.Params][lstm.NumGates]*tensor.Matrix
	uT map[*lstm.Params][lstm.NumGates]*tensor.Matrix

	totalCycles int64
}

// New builds an engine.
func New(cfg Config) *Engine {
	if cfg.Channels < 1 {
		panic(fmt.Sprintf("cellengine: need ≥ 1 channel, have %d", cfg.Channels))
	}
	e := &Engine{
		cfg: cfg,
		dma: dma.New(cfg.DMA),
		wT:  make(map[*lstm.Params][lstm.NumGates]*tensor.Matrix),
		uT:  make(map[*lstm.Params][lstm.NumGates]*tensor.Matrix),
	}
	for i := 0; i < cfg.Channels; i++ {
		e.channels = append(e.channels, channel.New(cfg.PE))
	}
	return e
}

// Cycles returns the engine's accumulated compute cycles (max across
// channels per stage, summed over stages).
func (e *Engine) Cycles() int64 { return e.totalCycles }

// DMA exposes the engine's DMA module for traffic inspection.
func (e *Engine) DMA() *dma.DMA { return e.dma }

// transposed returns (and caches) the pre-transposed weights of p.
func (e *Engine) transposed(p *lstm.Params) (w, u [lstm.NumGates]*tensor.Matrix) {
	if wt, ok := e.wT[p]; ok {
		return wt, e.uT[p]
	}
	for g := lstm.Gate(0); g < lstm.NumGates; g++ {
		w[g] = tensor.Transpose(nil, p.W[g])
		u[g] = tensor.Transpose(nil, p.U[g])
	}
	e.wT[p] = w
	e.uT[p] = u
	return w, u
}

// parallel runs fn for every batch sample, assigning sample i to
// channel i mod Channels, and returns the slowest channel's cycles —
// the SIMT execution of Fig. 13a.
func (e *Engine) parallel(batch int, fn func(sample int, ch *channel.Channel) int64) int64 {
	perChannel := make([]int64, len(e.channels))
	for i := 0; i < batch; i++ {
		c := i % len(e.channels)
		perChannel[c] += fn(i, e.channels[c])
	}
	var worst int64
	for _, v := range perChannel {
		if v > worst {
			worst = v
		}
	}
	e.totalCycles += worst
	return worst
}

// ForwardResult is one hardware FW cell execution.
type ForwardResult struct {
	H, S *tensor.Matrix
	// P1 are the reordered BP-EW-P1 products (dense, pre-compression).
	P1 *lstm.P1
	// Compressed are the six compressed P1 planes the DMA emitted.
	Compressed [6]*compress.Sparse
	// ComputeCycles is the channel-side time; DMACycles the I/O time.
	ComputeCycles int64
	DMACycles     int64
}

// ForwardCell executes one reordered FW cell (FW-MatMul, FW-EW with LUT
// activations, BP-EW-P1, DMA compression) for a whole minibatch.
func (e *Engine) ForwardCell(p *lstm.Params, x, hPrev, sPrev *tensor.Matrix) (*ForwardResult, error) {
	batch := x.Rows
	if x.Cols != p.Input || hPrev.Cols != p.Hidden || sPrev.Cols != p.Hidden {
		return nil, fmt.Errorf("cellengine: shape mismatch x=%v hPrev=%v sPrev=%v vs params in=%d hid=%d",
			x, hPrev, sPrev, p.Input, p.Hidden)
	}
	wT, uT := e.transposed(p)
	H := p.Hidden

	res := &ForwardResult{
		H: tensor.New(batch, H), S: tensor.New(batch, H),
		P1: &lstm.P1{
			Pf: tensor.New(batch, H), Pi: tensor.New(batch, H),
			Pc: tensor.New(batch, H), Po: tensor.New(batch, H),
			Ps: tensor.New(batch, H), Pfs: tensor.New(batch, H),
		},
	}

	gates := make([]*tensor.Matrix, lstm.NumGates)
	for g := range gates {
		gates[g] = tensor.New(batch, H)
	}
	tanhS := tensor.New(batch, H)

	compute := e.parallel(batch, func(i int, ch *channel.Channel) int64 {
		var cycles int64
		raw := make([]float32, H)
		tmp := make([]float32, H)
		for g := lstm.Gate(0); g < lstm.NumGates; g++ {
			// FW-MatMul: raw = Wᵀx_i + Uᵀh_i + b (two mat-vecs + add).
			cycles += ch.MatVec(raw, wT[g], x.Row(i))
			cycles += ch.MatVec(tmp, uT[g], hPrev.Row(i))
			cycles += ch.EWAdd(raw, raw, tmp)
			cycles += ch.EWAdd(raw, raw, p.B[g])
			// Activation module: one LUT unit per kind per channel.
			if g == lstm.GateC {
				cycles += ch.Activation.ApplyTanh(gates[g].Row(i), raw)
			} else {
				cycles += ch.Activation.ApplySigmoid(gates[g].Row(i), raw)
			}
		}
		// FW-EW: s = f⊙s' + i⊙c̃ ; h = o⊙tanh(s).
		fs := make([]float32, H)
		ic := make([]float32, H)
		cycles += ch.EWMul(fs, gates[lstm.GateF].Row(i), sPrev.Row(i))
		cycles += ch.EWMul(ic, gates[lstm.GateI].Row(i), gates[lstm.GateC].Row(i))
		cycles += ch.EWAdd(res.S.Row(i), fs, ic)
		cycles += ch.Activation.ApplyTanh(tanhS.Row(i), res.S.Row(i))
		cycles += ch.EWMul(res.H.Row(i), gates[lstm.GateO].Row(i), tanhS.Row(i))

		// BP-EW-P1 (the MS1 reorder): six products from gates/states.
		cycles += e.p1Row(ch, res.P1, i, gates, sPrev.Row(i), tanhS.Row(i))
		return cycles
	})
	res.ComputeCycles = compute

	// DMA: compress the six P1 planes (sparse path of Fig. 14). The
	// port serializes across cells, so the cell's own cost is the
	// port-time delta, not the absolute completion cycle.
	dmaStart := e.dma.BusyCycles()
	for pi, m := range res.P1.Matrices() {
		s, _ := e.dma.WriteSparse(dmaStart, m, dma.Intermediates)
		res.Compressed[pi] = s
	}
	res.DMACycles = e.dma.BusyCycles() - dmaStart
	return res, nil
}

// p1Row computes the six P1 products for one sample on one channel.
func (e *Engine) p1Row(ch *channel.Channel, p1 *lstm.P1, i int, gates []*tensor.Matrix, sPrevRow, tanhSRow []float32) int64 {
	H := len(sPrevRow)
	one := make([]float32, H)
	for k := range one {
		one[k] = 1
	}
	tmp := make([]float32, H)
	neg := make([]float32, H)
	var cycles int64

	sigDeriv := func(dst, gate []float32) {
		// gate⊙(1-gate): one negate-add and one multiply on the PEs.
		for k := range neg {
			neg[k] = -gate[k]
		}
		cycles += ch.EWAdd(tmp, one, neg)
		cycles += ch.EWMul(dst, gate, tmp)
	}

	f := gates[lstm.GateF].Row(i)
	in := gates[lstm.GateI].Row(i)
	c := gates[lstm.GateC].Row(i)
	o := gates[lstm.GateO].Row(i)

	// Pf = s' ⊙ f(1-f)
	sigDeriv(tmp, f)
	cycles += ch.EWMul(p1.Pf.Row(i), sPrevRow, tmp)
	// Pi = c̃ ⊙ i(1-i)
	sigDeriv(tmp, in)
	cycles += ch.EWMul(p1.Pi.Row(i), c, tmp)
	// Pc = i ⊙ (1-c̃²)
	cycles += ch.EWMul(tmp, c, c)
	for k := range neg {
		neg[k] = -tmp[k]
	}
	cycles += ch.EWAdd(tmp, one, neg)
	cycles += ch.EWMul(p1.Pc.Row(i), in, tmp)
	// Po = tanh(s) ⊙ o(1-o)
	sigDeriv(tmp, o)
	cycles += ch.EWMul(p1.Po.Row(i), tanhSRow, tmp)
	// Ps = o ⊙ (1-tanh²(s))
	cycles += ch.EWMul(tmp, tanhSRow, tanhSRow)
	for k := range neg {
		neg[k] = -tmp[k]
	}
	cycles += ch.EWAdd(tmp, one, neg)
	cycles += ch.EWMul(p1.Ps.Row(i), o, tmp)
	// Pfs = f (a copy through the datapath).
	copy(p1.Pfs.Row(i), f)
	return cycles
}

// BackwardResult is one hardware BP cell execution.
type BackwardResult struct {
	Out           lstm.BPOutput
	ComputeCycles int64
	DMACycles     int64
}

// BackwardCell executes one BP cell from compressed P1 records:
// the DMA decodes the planes (RD data/index queues), the channels run
// BP-EW-P2 and the BP-MatMul (δX/δH mat-vecs plus δW/δU outer
// products, accumulated into grads).
func (e *Engine) BackwardCell(p *lstm.Params, grads *lstm.Grads, x, hPrev *tensor.Matrix, compressed [6]*compress.Sparse, in lstm.BPInput) (*BackwardResult, error) {
	batch := x.Rows
	H := p.Hidden

	// DMA: read the compressed planes back (port-time delta, as in
	// ForwardCell).
	dmaStart := e.dma.BusyCycles()
	p1 := &lstm.P1{}
	dsts := []**tensor.Matrix{&p1.Pf, &p1.Pi, &p1.Pc, &p1.Po, &p1.Ps, &p1.Pfs}
	for i, s := range compressed {
		if s == nil {
			return nil, fmt.Errorf("cellengine: missing compressed plane %d", i)
		}
		m, _ := e.dma.ReadSparse(dmaStart, s, dma.Intermediates)
		*dsts[i] = m
	}
	dmaCycles := e.dma.BusyCycles() - dmaStart

	dGate := make([]*tensor.Matrix, lstm.NumGates)
	for g := range dGate {
		dGate[g] = tensor.New(batch, H)
	}
	dsPrev := tensor.New(batch, H)
	dx := tensor.New(batch, p.Input)
	dhPrev := tensor.New(batch, H)

	compute := e.parallel(batch, func(i int, ch *channel.Channel) int64 {
		var cycles int64
		dh := make([]float32, H)
		if in.DY != nil {
			cycles += ch.EWAdd(dh, dh, in.DY.Row(i))
		}
		if in.DH != nil {
			cycles += ch.EWAdd(dh, dh, in.DH.Row(i))
		}
		ds := make([]float32, H)
		cycles += ch.EWMul(ds, dh, p1.Ps.Row(i))
		if in.DS != nil {
			cycles += ch.EWAdd(ds, ds, in.DS.Row(i))
		}
		cycles += ch.EWMul(dGate[lstm.GateO].Row(i), dh, p1.Po.Row(i))
		cycles += ch.EWMul(dGate[lstm.GateF].Row(i), ds, p1.Pf.Row(i))
		cycles += ch.EWMul(dGate[lstm.GateI].Row(i), ds, p1.Pi.Row(i))
		cycles += ch.EWMul(dGate[lstm.GateC].Row(i), ds, p1.Pc.Row(i))
		cycles += ch.EWMul(dsPrev.Row(i), ds, p1.Pfs.Row(i))

		// BP-MatMul: δx_i += W_g·δgate_g ; δh_i += U_g·δgate_g.
		tmpIn := make([]float32, p.Input)
		tmpH := make([]float32, H)
		for g := lstm.Gate(0); g < lstm.NumGates; g++ {
			cycles += ch.MatVec(tmpIn, p.W[g], dGate[g].Row(i))
			cycles += ch.EWAdd(dx.Row(i), dx.Row(i), tmpIn)
			cycles += ch.MatVec(tmpH, p.U[g], dGate[g].Row(i))
			cycles += ch.EWAdd(dhPrev.Row(i), dhPrev.Row(i), tmpH)
		}
		return cycles
	})

	// Weight-gradient outer products (broadcast queue): δW_g += x ⊗ δg.
	if grads != nil {
		for g := lstm.Gate(0); g < lstm.NumGates; g++ {
			var worst int64
			for i := 0; i < batch; i++ {
				ch := e.channels[i%len(e.channels)]
				c1 := ch.Outer(grads.W[g], x.Row(i), dGate[g].Row(i))
				c2 := ch.Outer(grads.U[g], hPrev.Row(i), dGate[g].Row(i))
				if c1+c2 > worst {
					worst = c1 + c2
				}
			}
			compute += worst
			e.totalCycles += worst
			tensor.SumRows(grads.B[g], dGate[g])
		}
	}

	return &BackwardResult{
		Out:           lstm.BPOutput{DX: dx, DHPrev: dhPrev, DSPrev: dsPrev},
		ComputeCycles: compute,
		DMACycles:     dmaCycles,
	}, nil
}
