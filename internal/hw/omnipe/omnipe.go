// Package omnipe models η-LSTM's universal processing element (paper
// Sec. V-B, Fig. 12): one multiplier and one pipelined adder, joined by
// MUXes so the same datapath serves every operation LSTM training
// needs. The adder doubles as a streaming accumulator via the partial-
// sum scheme of internal/hw/accum.
//
// The model is functional and cycle-counted: each operation returns the
// numerically exact result plus the cycles the PE was busy, which the
// channel and architecture layers aggregate into utilization and
// latency figures.
package omnipe

import (
	"fmt"

	"etalstm/internal/hw/accum"
)

// Op selects the PE's datapath configuration (the MUX settings of
// Fig. 12).
type Op int

// The four operation modes of Sec. V-B.
const (
	OpMatVec Op = iota // inner product: multiplier + adder-as-accumulator
	OpEWMul            // element-wise multiply: multiplier only
	OpOuter            // outer product row: multiplier only, broadcast operand
	OpEWAdd            // element-wise add: adder only
)

// String implements fmt.Stringer.
func (o Op) String() string {
	switch o {
	case OpMatVec:
		return "matvec"
	case OpEWMul:
		return "ewmul"
	case OpOuter:
		return "outer"
	case OpEWAdd:
		return "ewadd"
	}
	return fmt.Sprintf("Op(%d)", int(o))
}

// Config sets the PE's pipeline depths. The paper's design runs the
// FP32 adder at 8 cycles (Sec. V-B) and the multiplier at 4.
type Config struct {
	MulLatency int
	AddLatency int
}

// Default returns the paper's pipeline configuration.
func Default() Config { return Config{MulLatency: 4, AddLatency: 8} }

func (c Config) validate() {
	if c.MulLatency < 1 || c.AddLatency < 1 {
		panic(fmt.Sprintf("omnipe: latencies must be ≥ 1: %+v", c))
	}
}

// PE is one Omni-PE instance. It accumulates busy-cycle statistics
// across operations so schedulers can compute utilization.
type PE struct {
	cfg Config

	busyCycles int64
	ops        int64
}

// New returns a PE with the given pipeline configuration.
func New(cfg Config) *PE {
	cfg.validate()
	return &PE{cfg: cfg}
}

// BusyCycles returns the cumulative cycles spent processing.
func (p *PE) BusyCycles() int64 { return p.busyCycles }

// Ops returns the number of operations executed.
func (p *PE) Ops() int64 { return p.ops }

func (p *PE) account(c int64) int64 {
	p.busyCycles += c
	p.ops++
	return c
}

// DotProduct computes Σ a_i·b_i in MatVec mode: operands stream through
// the multiplier one pair per cycle, products feed the adder-based
// accumulator. Cycles = n (streaming) + multiplier fill + merge tail.
func (p *PE) DotProduct(a, b []float32) (float32, int64) {
	if len(a) != len(b) {
		panic(fmt.Sprintf("omnipe: DotProduct lengths %d vs %d", len(a), len(b)))
	}
	if len(a) == 0 {
		return 0, 0
	}
	acc := accum.NewStreaming(p.cfg.AddLatency)
	for i := range a {
		acc.Push(a[i] * b[i])
	}
	sum, cycles := acc.Drain()
	total := cycles + int64(p.cfg.MulLatency)
	return sum, p.account(total)
}

// SparseDotProduct computes Σ a_i·b_i skipping pairs where a_i == 0 —
// the near-zero-operand skipping the DMA decoder enables (Sec. V-D):
// pruned operands never enter the multiplier, saving their cycles.
func (p *PE) SparseDotProduct(a, b []float32) (float32, int64) {
	if len(a) != len(b) {
		panic(fmt.Sprintf("omnipe: SparseDotProduct lengths %d vs %d", len(a), len(b)))
	}
	acc := accum.NewStreaming(p.cfg.AddLatency)
	pushed := 0
	for i := range a {
		if a[i] == 0 {
			continue
		}
		acc.Push(a[i] * b[i])
		pushed++
	}
	if pushed == 0 {
		return 0, 0
	}
	sum, cycles := acc.Drain()
	total := cycles + int64(p.cfg.MulLatency)
	return sum, p.account(total)
}

// EWMul computes dst_i = a_i·b_i through the multiplier, bypassing the
// adder (the Fig. 12 output MUX selects the multiplier port).
func (p *PE) EWMul(dst, a, b []float32) int64 {
	if len(a) != len(b) || len(dst) != len(a) {
		panic("omnipe: EWMul length mismatch")
	}
	for i := range a {
		dst[i] = a[i] * b[i]
	}
	if len(a) == 0 {
		return 0
	}
	return p.account(int64(len(a)) + int64(p.cfg.MulLatency))
}

// OuterRow computes one row of an outer product: dst_i = scalar·vec_i.
// The scalar arrives once through the broadcast queue; throughput is
// one product per cycle.
func (p *PE) OuterRow(dst []float32, scalar float32, vec []float32) int64 {
	if len(dst) != len(vec) {
		panic("omnipe: OuterRow length mismatch")
	}
	for i := range vec {
		dst[i] = scalar * vec[i]
	}
	if len(vec) == 0 {
		return 0
	}
	return p.account(int64(len(vec)) + int64(p.cfg.MulLatency))
}

// EWAdd computes dst_i = a_i+b_i through the adder, bypassing the
// multiplier (both PE inputs route to the adder's ports).
func (p *PE) EWAdd(dst, a, b []float32) int64 {
	if len(a) != len(b) || len(dst) != len(a) {
		panic("omnipe: EWAdd length mismatch")
	}
	for i := range a {
		dst[i] = a[i] + b[i]
	}
	if len(a) == 0 {
		return 0
	}
	return p.account(int64(len(a)) + int64(p.cfg.AddLatency))
}

// Resources returns the FPGA cost of one Omni-PE: FP multiplier + the
// adder-based accumulator datapath + queue/MUX control. Calibrated to
// the same primitive table as internal/hw/accum.
func Resources() accum.Resources {
	base := accum.AdderBased()
	return accum.Resources{
		LUT:             base.LUT + fp32MulLUT + muxLUT,
		FF:              base.FF + fp32MulFF + muxFF,
		ClockPower:      base.ClockPower + 0.008,
		SignalPower:     base.SignalPower + 0.013,
		LogicPower:      base.LogicPower + 0.016,
		PipelineLatency: base.PipelineLatency,
	}
}

// UnifiedPEResources returns the cost of the monolithic PE style the
// paper attributes to prior accelerators like E-PUR [33]: every PE
// carries multiply, add, dedicated accumulate and private activation
// logic, so it is much larger — which is why LSTM-Inf fits fewer PEs
// in the same fabric (Sec. V-A, "resource-consuming PE design").
func UnifiedPEResources() accum.Resources {
	omni := Resources()
	return accum.Resources{
		LUT:             omni.LUT + dedicatedAccumLUT + privateActLUT,
		FF:              omni.FF + dedicatedAccumFF + privateActFF,
		ClockPower:      omni.ClockPower * 1.6,
		SignalPower:     omni.SignalPower * 1.6,
		LogicPower:      omni.LogicPower * 1.7,
		PipelineLatency: omni.PipelineLatency,
	}
}

// Primitive costs (UltraScale+ calibration).
const (
	fp32MulLUT = 135 // DSP-assisted FP32 multiplier glue
	fp32MulFF  = 294
	muxLUT     = 52 // the five MUXes + controller of Fig. 12
	muxFF      = 40

	dedicatedAccumLUT = 438 // single-cycle accumulate datapath
	dedicatedAccumFF  = 457
	privateActLUT     = 210 // per-PE sigmoid/tanh LUT ports
	privateActFF      = 128
)
