package omnipe

import (
	"math"
	"testing"
	"testing/quick"

	"etalstm/internal/rng"
)

func TestDotProductCorrect(t *testing.T) {
	pe := New(Default())
	got, cycles := pe.DotProduct([]float32{1, 2, 3}, []float32{4, 5, 6})
	if got != 32 {
		t.Fatalf("dot: %v", got)
	}
	if cycles <= 3 {
		t.Fatalf("cycles must include pipeline fill: %d", cycles)
	}
}

func TestDotProductEmpty(t *testing.T) {
	pe := New(Default())
	got, cycles := pe.DotProduct(nil, nil)
	if got != 0 || cycles != 0 {
		t.Fatal("empty dot")
	}
}

func TestDotProductLengthPanic(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New(Default()).DotProduct([]float32{1}, []float32{1, 2})
}

func TestSparseDotSkipsZeros(t *testing.T) {
	pe := New(Default())
	a := make([]float32, 1000)
	b := make([]float32, 1000)
	for i := range b {
		b[i] = 1
	}
	a[0], a[999] = 2, 3
	got, cycles := pe.SparseDotProduct(a, b)
	if got != 5 {
		t.Fatalf("sparse dot: %v", got)
	}
	dense := New(Default())
	_, denseCycles := dense.DotProduct(a, b)
	if cycles >= denseCycles/10 {
		t.Fatalf("sparse execution must skip zero operands: %d vs %d", cycles, denseCycles)
	}
}

func TestSparseDotAllZero(t *testing.T) {
	pe := New(Default())
	got, cycles := pe.SparseDotProduct(make([]float32, 8), make([]float32, 8))
	if got != 0 || cycles != 0 {
		t.Fatal("all-zero sparse dot must cost nothing")
	}
}

func TestEWMul(t *testing.T) {
	pe := New(Default())
	dst := make([]float32, 3)
	cycles := pe.EWMul(dst, []float32{1, 2, 3}, []float32{2, 2, 2})
	if dst[0] != 2 || dst[2] != 6 {
		t.Fatalf("EWMul: %v", dst)
	}
	if cycles != 3+4 {
		t.Fatalf("EWMul cycles: %d", cycles)
	}
}

func TestEWAdd(t *testing.T) {
	pe := New(Default())
	dst := make([]float32, 2)
	cycles := pe.EWAdd(dst, []float32{1, 2}, []float32{10, 20})
	if dst[0] != 11 || dst[1] != 22 {
		t.Fatalf("EWAdd: %v", dst)
	}
	if cycles != 2+8 {
		t.Fatalf("EWAdd cycles: %d", cycles)
	}
}

func TestOuterRow(t *testing.T) {
	pe := New(Default())
	dst := make([]float32, 3)
	cycles := pe.OuterRow(dst, 2, []float32{1, 2, 3})
	if dst[0] != 2 || dst[2] != 6 {
		t.Fatalf("OuterRow: %v", dst)
	}
	if cycles != 3+4 {
		t.Fatalf("OuterRow cycles: %d", cycles)
	}
}

func TestBusyAccounting(t *testing.T) {
	pe := New(Default())
	dst := make([]float32, 4)
	c1 := pe.EWMul(dst, make([]float32, 4), make([]float32, 4))
	c2 := pe.EWAdd(dst, make([]float32, 4), make([]float32, 4))
	if pe.BusyCycles() != c1+c2 || pe.Ops() != 2 {
		t.Fatalf("accounting: busy=%d ops=%d", pe.BusyCycles(), pe.Ops())
	}
}

func TestThroughputOneOpPerCycle(t *testing.T) {
	// Streaming throughput: large vectors cost ~1 cycle per element
	// (pipeline fill amortized).
	pe := New(Default())
	n := 10000
	dst := make([]float32, n)
	cycles := pe.EWMul(dst, make([]float32, n), make([]float32, n))
	perOp := float64(cycles) / float64(n)
	if perOp > 1.01 {
		t.Fatalf("EW throughput %.4f cycles/op", perOp)
	}
	pe2 := New(Default())
	_, dotCycles := pe2.DotProduct(make([]float32, n), make([]float32, n))
	perMac := float64(dotCycles) / float64(n)
	if perMac > 1.02 {
		t.Fatalf("MAC throughput %.4f cycles/op", perMac)
	}
}

func TestConfigValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New(Config{MulLatency: 0, AddLatency: 8})
}

func TestOpString(t *testing.T) {
	for op, want := range map[Op]string{
		OpMatVec: "matvec", OpEWMul: "ewmul", OpOuter: "outer", OpEWAdd: "ewadd",
	} {
		if op.String() != want {
			t.Fatalf("%v != %s", op, want)
		}
	}
}

// TestOmniPESmallerThanUnified reproduces the Sec. V-A resource claim:
// the Omni-PE is substantially smaller than a monolithic PE, which is
// what lets η-LSTM pack more PEs per fabric than LSTM-Inf.
func TestOmniPESmallerThanUnified(t *testing.T) {
	omni := Resources()
	unified := UnifiedPEResources()
	if omni.LUT >= unified.LUT || omni.FF >= unified.FF {
		t.Fatalf("Omni-PE must be smaller: %+v vs %+v", omni, unified)
	}
	ratio := float64(unified.LUT) / float64(omni.LUT)
	if ratio < 1.5 || ratio > 3 {
		t.Fatalf("unified/omni LUT ratio %.2f outside the plausible band", ratio)
	}
	if omni.TotalPower() >= unified.TotalPower() {
		t.Fatal("Omni-PE must draw less power")
	}
}

// Property: DotProduct matches a float64 reference within tolerance for
// random vectors and latencies.
func TestPropertyDotProduct(t *testing.T) {
	f := func(seed uint64, nRaw uint8) bool {
		r := rng.New(seed)
		n := int(nRaw)%200 + 1
		a := make([]float32, n)
		b := make([]float32, n)
		var want float64
		for i := range a {
			a[i] = r.Uniform(-1, 1)
			b[i] = r.Uniform(-1, 1)
			want += float64(a[i]) * float64(b[i])
		}
		pe := New(Config{MulLatency: 1 + int(seed%5), AddLatency: 1 + int(seed%9)})
		got, _ := pe.DotProduct(a, b)
		return math.Abs(float64(got)-want) < 1e-3
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Property: SparseDotProduct equals DotProduct when the sparse operand
// has explicit zeros at pruned positions.
func TestPropertySparseEqualsDense(t *testing.T) {
	f := func(seed uint64) bool {
		r := rng.New(seed)
		n := 64
		a := make([]float32, n)
		b := make([]float32, n)
		for i := range a {
			if r.Float64() < 0.6 {
				a[i] = 0
			} else {
				a[i] = r.Uniform(-1, 1)
			}
			b[i] = r.Uniform(-1, 1)
		}
		d1, _ := New(Default()).DotProduct(a, b)
		d2, _ := New(Default()).SparseDotProduct(a, b)
		return math.Abs(float64(d1-d2)) < 1e-4
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
