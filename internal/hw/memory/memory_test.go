package memory

import (
	"math"
	"testing"
)

func TestScratchpadAllocFree(t *testing.T) {
	s := NewScratchpad(1000)
	if !s.Alloc(600) {
		t.Fatal("alloc within capacity must succeed")
	}
	if s.Alloc(500) {
		t.Fatal("over-capacity alloc must fail")
	}
	if !s.Alloc(400) {
		t.Fatal("exact fit must succeed")
	}
	if s.Used() != 1000 || s.Peak() != 1000 {
		t.Fatalf("used=%d peak=%d", s.Used(), s.Peak())
	}
	s.Free(1000)
	if s.Used() != 0 || s.Peak() != 1000 {
		t.Fatal("free must keep peak")
	}
}

func TestScratchpadFreeUnderflowPanics(t *testing.T) {
	s := NewScratchpad(10)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	s.Free(1)
}

func TestScratchpadEnergy(t *testing.T) {
	s := NewScratchpad(100)
	s.Read(50)
	s.Write(50)
	if s.TrafficBytes() != 100 {
		t.Fatal("traffic")
	}
	if math.Abs(s.EnergyPJ()-100*SRAMEnergyPJPerByte) > 1e-9 {
		t.Fatalf("energy: %v", s.EnergyPJ())
	}
}

func TestHBMTransferSerializes(t *testing.T) {
	h := NewHBM(448)
	done1 := h.Transfer(0, 4480) // 10 cycles
	if done1 != 10 {
		t.Fatalf("first transfer: %d", done1)
	}
	done2 := h.Transfer(5, 448) // must queue behind
	if done2 != 11 {
		t.Fatalf("second transfer: %d", done2)
	}
	if h.Traffic() != 4928 {
		t.Fatalf("traffic: %d", h.Traffic())
	}
}

func TestHBMIdleStart(t *testing.T) {
	h := NewHBM(100)
	h.Transfer(0, 100)
	done := h.Transfer(50, 100)
	if done != 51 {
		t.Fatalf("idle port must start at arrival: %d", done)
	}
}

func TestHBMCyclesRoundsUp(t *testing.T) {
	h := NewHBM(448)
	if h.Cycles(1) != 1 || h.Cycles(449) != 2 {
		t.Fatal("cycle rounding")
	}
}

func TestHBMEnergyExceedsSRAM(t *testing.T) {
	// The root of the paper's energy argument: off-chip bytes cost far
	// more than on-chip bytes.
	if HBMEnergyPJPerByte < 20*SRAMEnergyPJPerByte {
		t.Fatal("HBM energy per byte must dwarf SRAM")
	}
	h := NewHBM(448)
	h.Transfer(0, 1000)
	s := NewScratchpad(1 << 20)
	s.Read(1000)
	if h.EnergyPJ() <= s.EnergyPJ() {
		t.Fatal("same bytes must cost more off-chip")
	}
}

func TestValidation(t *testing.T) {
	for name, fn := range map[string]func(){
		"scratchpad": func() { NewScratchpad(0) },
		"hbm":        func() { NewHBM(-1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", name)
				}
			}()
			fn()
		}()
	}
}
