// Package memory models the η-LSTM accelerator's storage hierarchy
// (paper Fig. 13a): the on-chip scratchpad SRAM and the off-chip HBM,
// with capacity, bandwidth and per-access energy. The architecture
// layer books traffic here; the energy model reads the totals.
//
// Energy constants follow the Horowitz-style technology numbers listed
// in DESIGN.md §5; absolute joules are not claimed to match the paper's
// Vivado reports — energy *ratios* between design points are.
package memory

import "fmt"

// Energy per byte moved (picojoules). SRAM ≈ 0.16 pJ/B amortized over
// 64 KiB banks; HBM ≈ 10 pJ/B including PHY.
const (
	SRAMEnergyPJPerByte = 0.16
	HBMEnergyPJPerByte  = 10.0
)

// Scratchpad is the on-chip SRAM: capacity-checked allocations plus
// access-energy accounting. Bandwidth is effectively the channel
// fabric's and is not the bottleneck the paper studies, so reads and
// writes are counted but not serialized.
type Scratchpad struct {
	CapacityBytes int64

	used       int64
	peakUsed   int64
	readBytes  int64
	writeBytes int64
}

// NewScratchpad builds a scratchpad of the given capacity.
func NewScratchpad(capacity int64) *Scratchpad {
	if capacity <= 0 {
		panic(fmt.Sprintf("memory: scratchpad capacity %d", capacity))
	}
	return &Scratchpad{CapacityBytes: capacity}
}

// Alloc reserves bytes, reporting whether they fit. Peak usage is
// tracked for occupancy reports.
func (s *Scratchpad) Alloc(bytes int64) bool {
	if s.used+bytes > s.CapacityBytes {
		return false
	}
	s.used += bytes
	if s.used > s.peakUsed {
		s.peakUsed = s.used
	}
	return true
}

// Free releases bytes (panics on underflow — a model bug).
func (s *Scratchpad) Free(bytes int64) {
	if bytes > s.used {
		panic(fmt.Sprintf("memory: freeing %d with %d used", bytes, s.used))
	}
	s.used -= bytes
}

// Used returns current occupancy; Peak the high-water mark.
func (s *Scratchpad) Used() int64 { return s.used }

// Peak returns the maximum occupancy observed.
func (s *Scratchpad) Peak() int64 { return s.peakUsed }

// Read books a read of n bytes.
func (s *Scratchpad) Read(n int64) { s.readBytes += n }

// Write books a write of n bytes.
func (s *Scratchpad) Write(n int64) { s.writeBytes += n }

// EnergyPJ returns the scratchpad's access energy so far.
func (s *Scratchpad) EnergyPJ() float64 {
	return float64(s.readBytes+s.writeBytes) * SRAMEnergyPJPerByte
}

// TrafficBytes returns total bytes accessed.
func (s *Scratchpad) TrafficBytes() int64 { return s.readBytes + s.writeBytes }

// HBM is the off-chip memory: a bandwidth-limited port plus energy
// accounting. The paper's per-board interface runs at 224 GB/s against
// a 500 MHz fabric clock = 448 B/cycle.
type HBM struct {
	BytesPerCycle int64

	busyUntil int64
	traffic   int64
}

// NewHBM builds an HBM port with the given per-cycle bandwidth.
func NewHBM(bytesPerCycle int64) *HBM {
	if bytesPerCycle <= 0 {
		panic(fmt.Sprintf("memory: HBM bandwidth %d", bytesPerCycle))
	}
	return &HBM{BytesPerCycle: bytesPerCycle}
}

// Transfer books n bytes starting no earlier than cycle at; returns the
// completion cycle.
func (h *HBM) Transfer(at, n int64) int64 {
	start := at
	if h.busyUntil > start {
		start = h.busyUntil
	}
	cycles := (n + h.BytesPerCycle - 1) / h.BytesPerCycle
	h.busyUntil = start + cycles
	h.traffic += n
	return h.busyUntil
}

// Cycles returns the port time n bytes would take (no booking).
func (h *HBM) Cycles(n int64) int64 {
	return (n + h.BytesPerCycle - 1) / h.BytesPerCycle
}

// Traffic returns total bytes transferred.
func (h *HBM) Traffic() int64 { return h.traffic }

// BusyUntil returns the cycle the port frees up.
func (h *HBM) BusyUntil() int64 { return h.busyUntil }

// EnergyPJ returns the HBM access energy so far.
func (h *HBM) EnergyPJ() float64 { return float64(h.traffic) * HBMEnergyPJPerByte }
