package workload

import (
	"testing"

	"etalstm/internal/model"
	"etalstm/internal/rng"
	"etalstm/internal/train"
)

func TestSuiteMatchesTableI(t *testing.T) {
	want := []struct {
		name           string
		hidden, ln, ll int
		loss           model.LossKind
	}{
		{"TREC-10", 3072, 2, 18, model.SingleLoss},
		{"PTB", 1536, 4, 35, model.PerTimestampLoss},
		{"IMDB", 2048, 3, 100, model.SingleLoss},
		{"WAYMO", 1024, 3, 128, model.RegressionLoss},
		{"WMT", 1024, 4, 151, model.PerTimestampLoss},
		{"BABI", 1280, 5, 303, model.SingleLoss},
	}
	suite := Suite()
	if len(suite) != len(want) {
		t.Fatalf("suite size %d", len(suite))
	}
	for i, w := range want {
		b := suite[i]
		if b.Name != w.name || b.Cfg.Hidden != w.hidden || b.Cfg.Layers != w.ln ||
			b.Cfg.SeqLen != w.ll || b.Cfg.Loss != w.loss {
			t.Errorf("benchmark %d: got %+v want %+v", i, b, w)
		}
		if err := b.Cfg.Validate(); err != nil {
			t.Errorf("%s config invalid: %v", b.Name, err)
		}
		if b.Cfg.Batch != 128 {
			t.Errorf("%s: paper batch size is 128", b.Name)
		}
	}
}

func TestByName(t *testing.T) {
	b, err := ByName("PTB")
	if err != nil || b.Task != LanguageModeling {
		t.Fatalf("ByName(PTB): %v %v", b, err)
	}
	if _, err := ByName("nope"); err == nil {
		t.Fatal("expected error for unknown name")
	}
}

func TestScaled(t *testing.T) {
	b, _ := ByName("BABI")
	s := b.Scaled(32, 20, 8)
	if s.Cfg.Hidden != 1280/32 || s.Cfg.SeqLen != 20 || s.Cfg.Batch != 8 {
		t.Fatalf("Scaled: %+v", s.Cfg)
	}
	if s.Cfg.Loss != b.Cfg.Loss || s.Cfg.Layers != b.Cfg.Layers {
		t.Fatal("Scaled must preserve loss topology and depth")
	}
	if s.Vocab > 64 || s.Cfg.OutSize > 64 {
		t.Fatal("Scaled must cap vocab")
	}
	if err := s.Cfg.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestProviderShapes(t *testing.T) {
	for _, b := range Suite() {
		s := b.Scaled(64, 10, 4)
		prov := s.Provider(2, 1)
		if prov.NumBatches() != 2 {
			t.Fatalf("%s: NumBatches", b.Name)
		}
		batch := prov.Batch(0)
		if len(batch.Inputs) != s.Cfg.SeqLen {
			t.Fatalf("%s: %d input steps want %d", b.Name, len(batch.Inputs), s.Cfg.SeqLen)
		}
		for _, x := range batch.Inputs {
			if x.Rows != s.Cfg.Batch || x.Cols != s.Cfg.InputSize {
				t.Fatalf("%s: input shape %dx%d", b.Name, x.Rows, x.Cols)
			}
		}
		switch s.Cfg.Loss {
		case model.RegressionLoss:
			if len(batch.Targets.Regress) != s.Cfg.SeqLen {
				t.Fatalf("%s: regression targets", b.Name)
			}
		default:
			if len(batch.Targets.Classes) != s.Cfg.SeqLen {
				t.Fatalf("%s: class targets", b.Name)
			}
			for _, row := range batch.Targets.Classes {
				for _, c := range row {
					if c >= s.Cfg.OutSize {
						t.Fatalf("%s: class %d out of range", b.Name, c)
					}
				}
			}
		}
	}
}

func TestProviderDeterministic(t *testing.T) {
	b, _ := ByName("PTB")
	s := b.Scaled(64, 8, 4)
	p1 := s.Provider(1, 7)
	p2 := s.Provider(1, 7)
	b1, b2 := p1.Batch(0), p2.Batch(0)
	for t0 := range b1.Inputs {
		if !b1.Inputs[t0].Equal(b2.Inputs[t0], 0) {
			t.Fatal("same seed must reproduce inputs")
		}
	}
}

func TestProviderSeedsDiffer(t *testing.T) {
	b, _ := ByName("PTB")
	s := b.Scaled(64, 8, 4)
	b1 := s.Provider(1, 7).Batch(0)
	b2 := s.Provider(1, 8).Batch(0)
	if b1.Inputs[0].Equal(b2.Inputs[0], 1e-9) {
		t.Fatal("different seeds must differ")
	}
}

func TestSingleLossTargetsMasked(t *testing.T) {
	b, _ := ByName("IMDB")
	s := b.Scaled(64, 10, 4)
	batch := s.Provider(1, 1).Batch(0)
	for t0 := 0; t0 < s.Cfg.SeqLen-1; t0++ {
		for _, c := range batch.Targets.Classes[t0] {
			if c != -1 {
				t.Fatal("pre-final steps must be masked for single loss")
			}
		}
	}
	for _, c := range batch.Targets.Classes[s.Cfg.SeqLen-1] {
		if c < 0 || c >= s.Cfg.OutSize {
			t.Fatalf("final-step label %d", c)
		}
	}
}

// TestBenchmarksAreLearnable: every synthetic task must be learnable by
// its scaled model — the loss after a few epochs must drop measurably.
// This is what makes Fig. 6/8/Table II statistics meaningful.
func TestBenchmarksAreLearnable(t *testing.T) {
	for _, b := range Suite() {
		b := b
		t.Run(b.Name, func(t *testing.T) {
			s := b.Scaled(64, 12, 8)
			prov := s.Provider(3, 11)
			net, err := model.NewNetwork(s.Cfg, rng.New(13))
			if err != nil {
				t.Fatal(err)
			}
			tr := &train.Trainer{Net: net, Opt: &train.Adam{LR: 0.01}, Clip: 5}
			stats, err := tr.Run(prov, 8)
			if err != nil {
				t.Fatal(err)
			}
			first, last := stats[0].MeanLoss, stats[len(stats)-1].MeanLoss
			if last >= first*0.98 {
				t.Fatalf("task not learnable: %v -> %v", first, last)
			}
		})
	}
}

func TestFig3Sweeps(t *testing.T) {
	h := Fig3HiddenSweep()
	if len(h) != 5 || h[0].Label != "H256" || h[4].Cfg.Hidden != 3072 {
		t.Fatalf("hidden sweep: %+v", h)
	}
	for _, s := range h {
		if s.Cfg.Layers != 3 || s.Cfg.SeqLen != 35 {
			t.Fatal("hidden sweep must fix LN=3 LL=35")
		}
	}
	ln := Fig3LayerSweep()
	if len(ln) != 7 || ln[0].Cfg.Layers != 2 || ln[6].Cfg.Layers != 8 {
		t.Fatalf("layer sweep: %+v", ln)
	}
	ll := Fig3LengthSweep()
	if len(ll) != 5 || ll[4].Cfg.SeqLen != 303 {
		t.Fatalf("length sweep: %+v", ll)
	}
	all := AllFig3Sweeps()
	if len(all) != 17 {
		t.Fatalf("17 configs expected, got %d", len(all))
	}
}

func TestTaskString(t *testing.T) {
	if QuestionClassification.String() != "QC" || QuestionAnswering.String() != "QA" {
		t.Fatal("task strings")
	}
}
