// Package workload defines the six large-LSTM training benchmarks of
// paper Table I and generates synthetic datasets shaped like each task.
//
// The paper trains on real corpora (Penn TreeBank, IMDB, WMT, the Waymo
// open dataset, bAbI, TREC-10). Those are not redistributable inside an
// offline reproduction, so each benchmark here pairs the exact model
// geometry of Table I (hidden size, layer number, layer length) with a
// deterministic synthetic generator that preserves what η-LSTM's
// optimizations interact with: the loss topology (single vs
// per-timestamp vs regression), learnable sequential structure (so
// training actually converges and gate statistics are realistic), and
// the sequence lengths that drive the intermediate-variable footprint.
package workload

import (
	"fmt"

	"etalstm/internal/model"
	"etalstm/internal/rng"
	"etalstm/internal/tensor"
	"etalstm/internal/train"
)

// Task identifies the application domain of a benchmark (Table I's
// second column).
type Task int

// The six task kinds of Table I.
const (
	QuestionClassification Task = iota // QC — TREC-10
	LanguageModeling                   // LM — PTB
	SentimentAnalysis                  // SA — IMDB
	AutonomousDriving                  // AD — WAYMO
	MachineTranslation                 // MT — WMT
	QuestionAnswering                  // QA — BABI
)

// String implements fmt.Stringer.
func (t Task) String() string {
	switch t {
	case QuestionClassification:
		return "QC"
	case LanguageModeling:
		return "LM"
	case SentimentAnalysis:
		return "SA"
	case AutonomousDriving:
		return "AD"
	case MachineTranslation:
		return "MT"
	case QuestionAnswering:
		return "QA"
	}
	return fmt.Sprintf("Task(%d)", int(t))
}

// Benchmark couples a Table I model geometry with its synthetic task.
type Benchmark struct {
	Name string // dataset name as the paper spells it
	Task Task
	Cfg  model.Config
	// Vocab is the synthetic vocabulary size for token tasks (0 for
	// regression).
	Vocab int
}

// Suite returns the six benchmarks with the paper's exact geometry
// (Table I) and a batch size of 128 (Sec. VI-A). These configurations
// drive the cost models; use Scaled for configurations small enough to
// train in tests.
func Suite() []Benchmark {
	const batch = 128
	return []Benchmark{
		{
			Name: "TREC-10", Task: QuestionClassification, Vocab: 1000,
			Cfg: model.Config{InputSize: 512, Hidden: 3072, Layers: 2, SeqLen: 18,
				Batch: batch, OutSize: 10, Loss: model.SingleLoss},
		},
		{
			Name: "PTB", Task: LanguageModeling, Vocab: 1000,
			Cfg: model.Config{InputSize: 512, Hidden: 1536, Layers: 4, SeqLen: 35,
				Batch: batch, OutSize: 1000, Loss: model.PerTimestampLoss},
		},
		{
			Name: "IMDB", Task: SentimentAnalysis, Vocab: 1000,
			Cfg: model.Config{InputSize: 512, Hidden: 2048, Layers: 3, SeqLen: 100,
				Batch: batch, OutSize: 2, Loss: model.SingleLoss},
		},
		{
			Name: "WAYMO", Task: AutonomousDriving,
			Cfg: model.Config{InputSize: 8, Hidden: 1024, Layers: 3, SeqLen: 128,
				Batch: batch, OutSize: 4, Loss: model.RegressionLoss},
		},
		{
			Name: "WMT", Task: MachineTranslation, Vocab: 1000,
			Cfg: model.Config{InputSize: 512, Hidden: 1024, Layers: 4, SeqLen: 151,
				Batch: batch, OutSize: 1000, Loss: model.PerTimestampLoss},
		},
		{
			Name: "BABI", Task: QuestionAnswering, Vocab: 200,
			Cfg: model.Config{InputSize: 512, Hidden: 1280, Layers: 5, SeqLen: 303,
				Batch: batch, OutSize: 20, Loss: model.SingleLoss},
		},
	}
}

// ByName returns the suite benchmark with the given name.
func ByName(name string) (Benchmark, error) {
	for _, b := range Suite() {
		if b.Name == name {
			return b, nil
		}
	}
	return Benchmark{}, fmt.Errorf("workload: unknown benchmark %q", name)
}

// Scaled returns a copy of b shrunk for in-test training: hidden and
// input sizes divided by hiddenDiv, sequence length capped at maxSeq,
// batch at maxBatch, and token vocabularies capped at 64. The loss
// topology, layer count and task generator are unchanged, so the
// gradient-magnitude patterns (Fig. 8) and value distributions (Fig. 6)
// keep their shape.
func (b Benchmark) Scaled(hiddenDiv, maxSeq, maxBatch int) Benchmark {
	s := b
	s.Cfg.Hidden = maxInt(4, b.Cfg.Hidden/hiddenDiv)
	s.Cfg.InputSize = maxInt(4, b.Cfg.InputSize/hiddenDiv)
	if s.Cfg.SeqLen > maxSeq {
		s.Cfg.SeqLen = maxSeq
	}
	if s.Cfg.Batch > maxBatch {
		s.Cfg.Batch = maxBatch
	}
	if s.Vocab > 64 {
		s.Vocab = 64
		if s.Cfg.OutSize > 64 {
			s.Cfg.OutSize = 64
		}
	}
	return s
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// Provider materializes nBatches deterministic minibatches of b's
// synthetic task.
func (b Benchmark) Provider(nBatches int, seed uint64) train.Provider {
	r := rng.New(seed)
	p := &sliceProvider{}
	var emb *embedding
	if b.Vocab > 0 {
		emb = newEmbedding(b.Vocab, b.Cfg.InputSize, r.Split())
	}
	for i := 0; i < nBatches; i++ {
		p.batches = append(p.batches, b.generate(r, emb))
	}
	return p
}

type sliceProvider struct {
	batches []train.Batch
}

func (p *sliceProvider) NumBatches() int         { return len(p.batches) }
func (p *sliceProvider) Batch(i int) train.Batch { return p.batches[i] }

// embedding maps synthetic token ids to dense input vectors. Real
// pipelines learn this table; for workload generation a fixed random
// table preserves the property that matters (distinct tokens are
// linearly separable inputs).
type embedding struct {
	table *tensor.Matrix // Vocab×InputSize
}

func newEmbedding(vocab, dim int, r *rng.RNG) *embedding {
	e := &embedding{table: tensor.New(vocab, dim)}
	e.table.RandInit(r, 1)
	return e
}

// embed writes the embedding rows of tokens into a batch×dim matrix.
func (e *embedding) embed(tokens []int) *tensor.Matrix {
	out := tensor.New(len(tokens), e.table.Cols)
	for i, tok := range tokens {
		copy(out.Row(i), e.table.Row(tok))
	}
	return out
}

func (b Benchmark) generate(r *rng.RNG, emb *embedding) train.Batch {
	switch b.Task {
	case QuestionClassification:
		return genClassification(b, r, emb, 3)
	case SentimentAnalysis:
		return genClassification(b, r, emb, 2)
	case QuestionAnswering:
		return genQA(b, r, emb)
	case LanguageModeling:
		return genMarkovLM(b, r, emb)
	case MachineTranslation:
		return genTranslation(b, r, emb)
	case AutonomousDriving:
		return genTrajectory(b, r)
	}
	panic(fmt.Sprintf("workload: unhandled task %v", b.Task))
}

// genClassification builds single-loss batches where the class is
// announced by a marker token planted somewhere in the sequence — the
// classifier must carry that information to the end (TREC-10's question
// type, IMDB's sentiment markers).
func genClassification(b Benchmark, r *rng.RNG, emb *embedding, markerSpan int) train.Batch {
	cfg := b.Cfg
	classes := cfg.OutSize
	xs := make([][]int, cfg.SeqLen)
	for t := range xs {
		xs[t] = make([]int, cfg.Batch)
	}
	labels := make([]int, cfg.Batch)
	for i := 0; i < cfg.Batch; i++ {
		cls := r.Intn(classes)
		labels[i] = cls
		for t := 0; t < cfg.SeqLen; t++ {
			xs[t][i] = r.Intn(b.Vocab - classes*markerSpan)
		}
		// Plant marker tokens for the class spread across the sequence
		// (sentiment/type words occur throughout real text); the LSTM
		// must carry whichever it sees to the end.
		for k := 0; k < markerSpan; k++ {
			pos := r.Intn(cfg.SeqLen)
			xs[pos][i] = b.Vocab - 1 - cls*markerSpan - k
		}
	}
	return tokensToBatch(cfg, emb, xs, lastStepTargets(cfg, labels))
}

// genQA plants a fact token early and a matching question token late;
// the answer class is a function of the fact (bAbI's "where is X"
// pattern stretched over a 303-step context).
func genQA(b Benchmark, r *rng.RNG, emb *embedding) train.Batch {
	cfg := b.Cfg
	xs := make([][]int, cfg.SeqLen)
	for t := range xs {
		xs[t] = make([]int, cfg.Batch)
	}
	labels := make([]int, cfg.Batch)
	answers := cfg.OutSize
	for i := 0; i < cfg.Batch; i++ {
		ans := r.Intn(answers)
		labels[i] = ans
		for t := 0; t < cfg.SeqLen; t++ {
			xs[t][i] = r.Intn(b.Vocab - 2*answers)
		}
		// Fact token in the first quarter, question token near the end.
		factPos := r.Intn(maxInt(1, cfg.SeqLen/4))
		xs[factPos][i] = b.Vocab - 1 - ans
		xs[cfg.SeqLen-1][i] = b.Vocab - 1 - answers - ans
	}
	return tokensToBatch(cfg, emb, xs, lastStepTargets(cfg, labels))
}

// genMarkovLM builds per-timestamp next-token prediction over a sparse
// first-order Markov chain (each token has a small successor set), the
// structure that makes PTB-style language modeling learnable.
func genMarkovLM(b Benchmark, r *rng.RNG, emb *embedding) train.Batch {
	cfg := b.Cfg
	vocab := b.Vocab
	// Deterministic successor table shared per batch (seeded off r).
	succ := make([][3]int, vocab)
	chain := r.Split()
	for v := range succ {
		for k := 0; k < 3; k++ {
			succ[v][k] = chain.Intn(vocab)
		}
	}
	xs := make([][]int, cfg.SeqLen)
	tg := &model.Targets{Classes: make([][]int, cfg.SeqLen)}
	for t := range xs {
		xs[t] = make([]int, cfg.Batch)
		tg.Classes[t] = make([]int, cfg.Batch)
	}
	for i := 0; i < cfg.Batch; i++ {
		cur := r.Intn(vocab)
		for t := 0; t < cfg.SeqLen; t++ {
			xs[t][i] = cur
			next := succ[cur][r.Intn(3)]
			tg.Classes[t][i] = next % cfg.OutSize
			cur = next
		}
	}
	return tokensToBatch(cfg, emb, xs, tg)
}

// genTranslation builds per-timestamp sequence transduction: the target
// at step t is a fixed permutation of the source token at step t (a
// monotone word-for-word "translation", the learnable core of the
// WMT-style task).
func genTranslation(b Benchmark, r *rng.RNG, emb *embedding) train.Batch {
	cfg := b.Cfg
	vocab := b.Vocab
	perm := r.Split().Perm(vocab)
	xs := make([][]int, cfg.SeqLen)
	tg := &model.Targets{Classes: make([][]int, cfg.SeqLen)}
	for t := range xs {
		xs[t] = make([]int, cfg.Batch)
		tg.Classes[t] = make([]int, cfg.Batch)
	}
	for i := 0; i < cfg.Batch; i++ {
		for t := 0; t < cfg.SeqLen; t++ {
			tok := r.Intn(vocab)
			xs[t][i] = tok
			tg.Classes[t][i] = perm[tok] % cfg.OutSize
		}
	}
	return tokensToBatch(cfg, emb, xs, tg)
}

// genTrajectory builds regression batches of smooth 2-D kinematics:
// inputs are (position, velocity, acceleration, sensor noise) and the
// target is the next position/velocity — the WAYMO object-tracking
// shape.
func genTrajectory(b Benchmark, r *rng.RNG) train.Batch {
	cfg := b.Cfg
	xs := make([]*tensor.Matrix, cfg.SeqLen)
	tg := &model.Targets{Regress: make([]*tensor.Matrix, cfg.SeqLen)}
	for t := range xs {
		xs[t] = tensor.New(cfg.Batch, cfg.InputSize)
		tg.Regress[t] = tensor.New(cfg.Batch, cfg.OutSize)
	}
	const dt = 0.1
	for i := 0; i < cfg.Batch; i++ {
		px, py := float64(r.Norm()), float64(r.Norm())
		vx, vy := float64(r.Norm())*0.5, float64(r.Norm())*0.5
		for t := 0; t < cfg.SeqLen; t++ {
			ax, ay := r.Norm()*0.1, r.Norm()*0.1
			row := xs[t].Row(i)
			row[0] = float32(px)
			row[1] = float32(py)
			row[2] = float32(vx)
			row[3] = float32(vy)
			if cfg.InputSize > 4 {
				row[4] = float32(ax)
			}
			if cfg.InputSize > 5 {
				row[5] = float32(ay)
			}
			for j := 6; j < cfg.InputSize; j++ {
				row[j] = r.Norm32(0, 0.05) // sensor noise channels
			}
			vx += ax * dt
			vy += ay * dt
			px += vx * dt
			py += vy * dt
			trow := tg.Regress[t].Row(i)
			trow[0] = float32(px)
			if cfg.OutSize > 1 {
				trow[1] = float32(py)
			}
			if cfg.OutSize > 2 {
				trow[2] = float32(vx)
			}
			if cfg.OutSize > 3 {
				trow[3] = float32(vy)
			}
		}
	}
	return train.Batch{Inputs: xs, Targets: tg}
}

func lastStepTargets(cfg model.Config, labels []int) *model.Targets {
	tg := &model.Targets{Classes: make([][]int, cfg.SeqLen)}
	for t := range tg.Classes {
		row := make([]int, cfg.Batch)
		for i := range row {
			row[i] = -1
		}
		tg.Classes[t] = row
	}
	tg.Classes[cfg.SeqLen-1] = labels
	return tg
}

func tokensToBatch(cfg model.Config, emb *embedding, xs [][]int, tg *model.Targets) train.Batch {
	inputs := make([]*tensor.Matrix, cfg.SeqLen)
	for t := range inputs {
		inputs[t] = emb.embed(xs[t])
	}
	return train.Batch{Inputs: inputs, Targets: tg}
}

// SweepConfig describes one point of the paper's Fig. 3 model-size
// sweeps: vary one of hidden size, layer number, or layer length while
// fixing the other two (Sec. III-A).
type SweepConfig struct {
	Label string
	Cfg   model.Config
}

// Fig3HiddenSweep returns the Fig. 3a configurations: PTB task, 3
// layers, length 35, hidden ∈ {256, 512, 1024, 2048, 3072}.
func Fig3HiddenSweep() []SweepConfig {
	var out []SweepConfig
	for _, h := range []int{256, 512, 1024, 2048, 3072} {
		out = append(out, SweepConfig{
			Label: fmt.Sprintf("H%d", h),
			Cfg: model.Config{InputSize: 512, Hidden: h, Layers: 3, SeqLen: 35,
				Batch: 128, OutSize: 1000, Loss: model.PerTimestampLoss},
		})
	}
	return out
}

// Fig3LayerSweep returns the Fig. 3b configurations: hidden 2048,
// length 35, layers ∈ {2..8}.
func Fig3LayerSweep() []SweepConfig {
	var out []SweepConfig
	for ln := 2; ln <= 8; ln++ {
		out = append(out, SweepConfig{
			Label: fmt.Sprintf("LN%d", ln),
			Cfg: model.Config{InputSize: 512, Hidden: 2048, Layers: ln, SeqLen: 35,
				Batch: 128, OutSize: 1000, Loss: model.PerTimestampLoss},
		})
	}
	return out
}

// Fig3LengthSweep returns the Fig. 3c configurations: hidden 1024, 3
// layers, length ∈ {18, 35, 100, 151, 303}.
func Fig3LengthSweep() []SweepConfig {
	var out []SweepConfig
	for _, ll := range []int{18, 35, 100, 151, 303} {
		out = append(out, SweepConfig{
			Label: fmt.Sprintf("LL%d", ll),
			Cfg: model.Config{InputSize: 512, Hidden: 1024, Layers: 3, SeqLen: ll,
				Batch: 128, OutSize: 1000, Loss: model.PerTimestampLoss},
		})
	}
	return out
}

// AllFig3Sweeps returns the 17 configurations of Figs. 4 and 5 in
// paper order (H256..H3072, LN2..LN8, LL18..LL303).
func AllFig3Sweeps() []SweepConfig {
	out := Fig3HiddenSweep()
	out = append(out, Fig3LayerSweep()...)
	out = append(out, Fig3LengthSweep()...)
	return out
}
