package experiments

import (
	"fmt"

	"etalstm/internal/gpu"
	"etalstm/internal/memplan"
	"etalstm/internal/stats"
	"etalstm/internal/trace"
	"etalstm/internal/workload"
)

// fig3 renders one Fig. 3 panel: throughput (TFLOPS) and energy
// efficiency (GFLOPS/W) on both devices across a model-size sweep.
func fig3(id, title string, sweep []workload.SweepConfig) *Report {
	rep := &Report{
		ID: id, Title: title,
		Header: []string{"config", "RTX TFLOPS", "V100 TFLOPS", "RTX GFLOPS/W", "V100 GFLOPS/W"},
	}
	rtx, v100 := gpu.RTX5000(), gpu.V100()
	for _, sc := range sweep {
		r := gpu.Step(rtx, sc.Cfg)
		v := gpu.Step(v100, sc.Cfg)
		rtxThr, rtxEff := "OOM", "OOM"
		if !r.OOM {
			rtxThr = fmt.Sprintf("%.2f", r.Throughput/1e12)
			rtxEff = fmt.Sprintf("%.1f", r.GFLOPSperW)
		}
		rep.Add(sc.Label, rtxThr, fmt.Sprintf("%.2f", v.Throughput/1e12),
			rtxEff, fmt.Sprintf("%.1f", v.GFLOPSperW))
	}
	return rep
}

// Fig3a regenerates Fig. 3a: efficiency vs hidden size.
func Fig3a(Options) (*Report, error) {
	rep := fig3("fig3a", "LSTM training efficiency vs hidden size (LN=3, LL=35)", workload.Fig3HiddenSweep())
	rep.Note("paper: throughput rises then plateaus with hidden size; energy efficiency declines past the saturation point")
	return rep, nil
}

// Fig3b regenerates Fig. 3b: efficiency vs layer number.
func Fig3b(Options) (*Report, error) {
	rep := fig3("fig3b", "LSTM training efficiency vs layer number (H=2048, LL=35)", workload.Fig3LayerSweep())
	rep.Note("paper: throughput varies little with layer number but energy efficiency decreases; LN7/LN8 OOM on the 16 GB RTX 5000")
	return rep, nil
}

// Fig3c regenerates Fig. 3c: efficiency vs layer length.
func Fig3c(Options) (*Report, error) {
	rep := fig3("fig3c", "LSTM training efficiency vs layer length (H=1024, LN=3)", workload.Fig3LengthSweep())
	rep.Note("paper: longer layer lengths decrease both throughput and energy efficiency")
	return rep, nil
}

// Fig4 regenerates Fig. 4: DRAM data movement by category over the 17
// Fig. 3 configurations.
func Fig4(Options) (*Report, error) {
	rep := &Report{
		ID: "fig4", Title: "Data movement by parameter / activations / intermediate variables (GB per step)",
		Header: []string{"config", "parameter", "activations", "intermediate", "interm/act"},
	}
	var ratios []float64
	var pSum, aSum, iSum float64
	sweeps := workload.AllFig3Sweeps()
	for _, sc := range sweeps {
		m := trace.Baseline(sc.Cfg)
		ratio := float64(m.Intermediates) / float64(m.Activations)
		ratios = append(ratios, ratio)
		pSum += gb(m.Weights)
		aSum += gb(m.Activations)
		iSum += gb(m.Intermediates)
		rep.Add(sc.Label, gb(m.Weights), gb(m.Activations), gb(m.Intermediates), ratio)
	}
	n := float64(len(sweeps))
	rep.Add("Ave", pSum/n, aSum/n, iSum/n, stats.Mean(ratios))
	rep.Note("paper: intermediate-variable movement averages 4.34x the activation movement (up to 4.81x); measured average %.2fx", stats.Mean(ratios))
	return rep, nil
}

// Fig5 regenerates Fig. 5: memory footprint breakdown and total.
func Fig5(Options) (*Report, error) {
	rep := &Report{
		ID: "fig5", Title: "GPU memory footprint breakdown (fractions) and total size (GB)",
		Header: []string{"config", "parameter", "activations", "intermediate", "total GB"},
	}
	var fracs []float64
	for _, sc := range workload.AllFig3Sweeps() {
		b := memplan.Footprint(sc.Cfg, memplan.Baseline, memplan.Params{})
		total := float64(b.Total())
		fr := b.IntermediateFrac()
		fracs = append(fracs, fr)
		rep.Add(sc.Label,
			float64(b.Parameter)/total, float64(b.Activations)/total, fr, gb(b.Total()))
	}
	rep.Add("Ave", "", "", stats.Mean(fracs), "")
	rep.Note("paper: intermediate variables average 47.18%% of the footprint (up to 74.01%%); measured average %.1f%%, max %.1f%%",
		100*stats.Mean(fracs), 100*maxOf(fracs))
	return rep, nil
}

func gb(b int64) float64 { return float64(b) / 1e9 }

func maxOf(xs []float64) float64 {
	m := 0.0
	for _, x := range xs {
		if x > m {
			m = x
		}
	}
	return m
}
