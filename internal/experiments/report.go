// Package experiments contains one harness per table and figure of the
// paper's evaluation (and the Sec. III characterization): each harness
// regenerates the rows/series the paper reports from this repository's
// models and training substrate. DESIGN.md §4 maps every experiment to
// its modules; EXPERIMENTS.md records paper-vs-measured values.
package experiments

import (
	"fmt"
	"sort"
	"strings"
)

// Report is one regenerated table or figure: a header row, data rows
// and free-form notes (the paper's headline claims with our measured
// counterparts).
type Report struct {
	ID     string // e.g. "fig15a"
	Title  string
	Header []string
	Rows   [][]string
	Notes  []string
}

// Add appends a row of cells (stringified with %v).
func (r *Report) Add(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.3f", v)
		case string:
			row[i] = v
		default:
			row[i] = fmt.Sprintf("%v", c)
		}
	}
	r.Rows = append(r.Rows, row)
}

// Note appends a formatted note line.
func (r *Report) Note(format string, args ...any) {
	r.Notes = append(r.Notes, fmt.Sprintf(format, args...))
}

// String renders the report as an aligned text table.
func (r *Report) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s: %s ==\n", r.ID, r.Title)
	widths := make([]int, len(r.Header))
	for i, h := range r.Header {
		widths[i] = len(h)
	}
	for _, row := range r.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	writeRow(r.Header)
	for i, w := range widths {
		if i > 0 {
			b.WriteString("  ")
		}
		b.WriteString(strings.Repeat("-", w))
	}
	b.WriteByte('\n')
	for _, row := range r.Rows {
		writeRow(row)
	}
	for _, n := range r.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String()
}

// Options tunes the training-backed experiments.
type Options struct {
	// Quick shrinks training-based experiments to CI scale (smaller
	// models, fewer epochs). The cost models are exact either way.
	Quick bool
	// Seed makes training-based experiments reproducible.
	Seed uint64
}

// DefaultOptions returns the standard configuration (Quick, seed 42).
func DefaultOptions() Options { return Options{Quick: true, Seed: 42} }

// Runner regenerates one experiment.
type Runner func(Options) (*Report, error)

// Registry maps experiment ids to their runners.
func Registry() map[string]Runner {
	return map[string]Runner{
		"fig3a":       Fig3a,
		"fig3b":       Fig3b,
		"fig3c":       Fig3c,
		"fig4":        Fig4,
		"fig5":        Fig5,
		"fig6":        Fig6,
		"fig8":        Fig8,
		"fig11":       Fig11,
		"fig15a":      Fig15a,
		"fig15b":      Fig15b,
		"fig16":       Fig16,
		"fig17":       Fig17,
		"fig18":       Fig18,
		"table2":      Table2,
		"table3":      Table3,
		"scalability": Scalability,
		"gradsync":    GradSync,
		"sparsebp":    SparseBP,
	}
}

// IDs returns the registered experiment ids in sorted order.
func IDs() []string {
	reg := Registry()
	ids := make([]string, 0, len(reg))
	for id := range reg {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	return ids
}

// RunAll executes every registered experiment and returns the reports
// in id order.
func RunAll(opts Options) ([]*Report, error) {
	var out []*Report
	reg := Registry()
	for _, id := range IDs() {
		rep, err := reg[id](opts)
		if err != nil {
			return out, fmt.Errorf("experiments: %s: %w", id, err)
		}
		out = append(out, rep)
	}
	return out, nil
}
