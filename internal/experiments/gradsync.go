package experiments

import (
	"context"
	"fmt"

	"etalstm/internal/core"
	"etalstm/internal/dist"
	"etalstm/internal/model"
	"etalstm/internal/obs"
	"etalstm/internal/rng"
	"etalstm/internal/train"
	"etalstm/internal/workload"
)

// GradSync measures the gradient-sync compression trade-off: the same
// data-parallel run with the all-reduce payloads dense versus
// sparsified at several keep fractions (MS1's near-zero (value, index)
// idea applied to gradient traffic, with per-replica error feedback).
// Reported per operating point: payload bytes a wire transport would
// carry, the dense/wire compression ratio, and the final training loss
// against the dense run — the communication analogue of the paper's
// Fig. 17/18 DMA-reduction story.
func GradSync(opts Options) (*Report, error) {
	bench, epochs, batches, workers := gradSyncScale(opts)
	rep := &Report{
		ID: "gradsync", Title: "Compressed gradient sync: wire bytes vs final loss",
		Header: []string{"sync", "keep", "wire (KiB)", "dense (KiB)", "ratio", "final loss", "Δ vs dense"},
	}

	run := func(keep float64) (float64, *dist.Compressed, error) {
		net, err := model.NewNetwork(bench.Cfg, rng.New(opts.Seed))
		if err != nil {
			return 0, nil, err
		}
		tr := core.New(net, &train.Adam{LR: 0.01}, 5, core.Config{})
		tr.Workers = workers
		var sync *dist.Compressed
		if keep > 0 {
			// A private registry keeps the experiment's counters out of
			// the process-wide telemetry.
			sync = &dist.Compressed{
				Opts:    dist.CompressOptions{KeepFrac: keep},
				Metrics: obs.NewDist(obs.NewRegistry()),
			}
			tr.Sync = sync
		}
		prov := bench.Provider(batches, opts.Seed)
		var last float64
		for e := 0; e < epochs; e++ {
			st, err := tr.RunEpoch(context.Background(), prov, e)
			if err != nil {
				return 0, nil, err
			}
			last = st.MeanLoss
		}
		return last, sync, nil
	}

	denseLoss, _, err := run(0)
	if err != nil {
		return nil, err
	}
	rep.Add("dense", "1.000", "-", "-", "1.0x", fmt.Sprintf("%.4f", denseLoss), "0.0000")
	for _, keep := range []float64{0.10, 0.05, 0.01} {
		loss, sync, err := run(keep)
		if err != nil {
			return nil, err
		}
		rep.Add("top-k", fmt.Sprintf("%.3f", keep),
			fmt.Sprintf("%.1f", float64(sync.WireBytes())/1024),
			fmt.Sprintf("%.1f", float64(sync.DenseBytes())/1024),
			fmt.Sprintf("%.1fx", sync.Ratio()),
			fmt.Sprintf("%.4f", loss),
			fmt.Sprintf("%+.4f", loss-denseLoss))
	}
	rep.Note("error feedback carries dropped gradient mass into later steps, so the loss gap stays small while payloads shrink ~1/keep")
	rep.Note("the same compression runs across processes: etatrain -coordinator/-worker with -dist-keep (see README, distributed training)")
	return rep, nil
}

func gradSyncScale(opts Options) (workload.Benchmark, int, int, int) {
	b, _ := workload.ByName("IMDB")
	if opts.Quick {
		return b.Scaled(64, 12, 8), 4, 4, 2
	}
	return b.Scaled(16, 24, 16), 8, 8, 4
}
