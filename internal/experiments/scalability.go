package experiments

import (
	"fmt"

	"etalstm/internal/arch"
	"etalstm/internal/gpu"
	"etalstm/internal/workload"
)

// Scalability regenerates the Sec. V-D scalability claim: "by adding
// more channels, η-LSTM can achieve linearly increasing throughput".
// It sweeps the channel count of the full η-LSTM design on the WMT
// benchmark and reports step time, throughput and the speedup relative
// to the smallest build.
func Scalability(Options) (*Report, error) {
	b, err := workload.ByName("WMT")
	if err != nil {
		return nil, err
	}
	p := arch.DefaultOptParams(b.Cfg)
	dev := gpu.V100()

	rep := &Report{
		ID: "scalability", Title: "Throughput scaling with channel count (Sec. V-D)",
		Header: []string{"channels/board", "step (ms)", "TFLOPS", "speedup", "linear?"},
	}
	counts := []int{10, 20, 40, 80, 160}
	var base arch.Eval
	linear := true
	for i, ch := range counts {
		hw := arch.Paper()
		hw.ChannelsPerBoard = ch
		e := arch.Evaluate(arch.EtaLSTM, b.Cfg, hw, dev, p)
		if i == 0 {
			base = e
		}
		speedup := base.StepSeconds / e.StepSeconds
		ideal := float64(ch) / float64(counts[0])
		dev := speedup / ideal
		ok := dev > 0.9 && dev < 1.1
		if !ok {
			linear = false
		}
		rep.Add(fmt.Sprintf("%d", ch),
			fmt.Sprintf("%.2f", 1000*e.StepSeconds),
			fmt.Sprintf("%.2f", e.Throughput/1e12),
			fmt.Sprintf("%.2fx", speedup),
			fmt.Sprintf("%v (%.2f of ideal)", ok, dev))
	}
	if linear {
		rep.Note("throughput scales within 10%% of linear across a 16x channel range — the Sec. V-D claim holds while compute-bound")
	} else {
		rep.Note("scaling departs from linear where the HBM bandwidth begins to bind — the constraint Sec. V-D acknowledges")
	}
	return rep, nil
}
